package unigpu

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (§4), plus wall-clock benchmarks of the parallel host
// implementations and ablation benchmarks for the design choices DESIGN.md
// calls out. Run with:
//
//	go test -bench=. -benchmem
//
// Table benchmarks report the simulated per-model latency via
// b.ReportMetric (sim_ms_<model>); wall-clock benchmarks measure the real
// Go implementations.

import (
	"math/rand"
	"strings"
	"sync"
	"testing"

	"unigpu/internal/bench"
	"unigpu/internal/graphtuner"
	"unigpu/internal/ops"
	"unigpu/internal/sim"
	"unigpu/internal/templates"
	"unigpu/internal/tensor"
	"unigpu/internal/vision"
)

var (
	benchOnce sync.Once
	benchEst  *bench.Estimator
)

func estimator() *bench.Estimator {
	benchOnce.Do(func() { benchEst = bench.NewEstimator() })
	return benchEst
}

func metricName(model string) string {
	return "sim_ms_" + strings.ReplaceAll(model, ".", "_")
}

func benchTable(b *testing.B, n int) {
	e := estimator()
	var t bench.Table
	for i := 0; i < b.N; i++ {
		t = e.OverallTable(n)
	}
	for _, r := range t.Rows {
		b.ReportMetric(r.OursMs, metricName(r.Model))
	}
}

// BenchmarkTable1 regenerates Table 1 (ours vs OpenVINO on AWS DeepLens).
func BenchmarkTable1_DeepLens(b *testing.B) { benchTable(b, 1) }

// BenchmarkTable2 regenerates Table 2 (ours vs ACL on Acer aiSage).
func BenchmarkTable2_AiSage(b *testing.B) { benchTable(b, 2) }

// BenchmarkTable3 regenerates Table 3 (ours vs cuDNN on Jetson Nano).
func BenchmarkTable3_JetsonNano(b *testing.B) { benchTable(b, 3) }

// BenchmarkTable4 regenerates the vision-specific-operator ablation.
func BenchmarkTable4_VisionOps(b *testing.B) {
	e := estimator()
	var rows []bench.AblationRow
	for i := 0; i < b.N; i++ {
		rows = e.VisionAblation()
	}
	for _, r := range rows {
		b.ReportMetric(r.Speedup, "speedup_"+shortDevice(r.Device)+"_"+strings.ReplaceAll(r.Model, ".", "_"))
	}
}

// BenchmarkTable5 regenerates the conv-tuning ablation.
func BenchmarkTable5_Tuning(b *testing.B) {
	e := estimator()
	var rows []bench.AblationRow
	for i := 0; i < b.N; i++ {
		rows = e.TuningAblation()
	}
	for _, r := range rows {
		b.ReportMetric(r.Speedup, "speedup_"+shortDevice(r.Device)+"_"+strings.ReplaceAll(r.Model, ".", "_"))
	}
}

// BenchmarkFallback regenerates the §3.1.2 fallback-overhead experiment.
func BenchmarkFallback_SSDResNet50(b *testing.B) {
	e := estimator()
	var r bench.FallbackResult
	for i := 0; i < b.N; i++ {
		r = e.FallbackExperiment()
	}
	b.ReportMetric(r.AllGPUMs, "sim_ms_all_gpu")
	b.ReportMetric(r.FallbackMs, "sim_ms_fallback")
	b.ReportMetric(r.OverheadPct, "overhead_pct")
}

func shortDevice(name string) string {
	switch name {
	case "AWS DeepLens":
		return "deeplens"
	case "Acer aiSage":
		return "aisage"
	default:
		return "nano"
	}
}

// BenchmarkFigure2 exercises the segmented-sort pipeline (Figure 2) on the
// host: flatten, block sort, cooperative merges — real wall-clock time.
func BenchmarkFigure2_SegmentedSort(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 24528 // SSD512 candidate boxes
	data := make([]float32, n)
	for i := range data {
		data[i] = rng.Float32()
	}
	segs := vision.NewEvenSegments(sizesFor(n, 20)...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vision.SegmentedArgsort(data, segs, true)
	}
}

// BenchmarkFigure2_Ablation is the per-segment baseline Figure 2 replaces.
func BenchmarkFigure2_Ablation_NaiveSort(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 24528
	data := make([]float32, n)
	for i := range data {
		data[i] = rng.Float32()
	}
	segs := vision.NewEvenSegments(sizesFor(n, 20)...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vision.NaiveSegmentedArgsort(data, segs, true)
	}
}

func sizesFor(total, segments int) []int {
	out := make([]int, segments)
	base := total / segments
	for i := range out {
		out[i] = base
	}
	out[segments-1] += total - base*segments
	return out
}

// BenchmarkFigure3 exercises the three-stage register-blocked prefix sum.
func BenchmarkFigure3_PrefixSum(b *testing.B) {
	data := make([]float32, 1<<20)
	for i := range data {
		data[i] = float32(i % 7)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vision.PrefixSum(data, 16)
	}
}

// BenchmarkFigure3_Ablation is the naive whole-array Hillis-Steele scan.
func BenchmarkFigure3_Ablation_HillisSteele(b *testing.B) {
	data := make([]float32, 1<<16) // the O(n log n) formulation is far slower
	for i := range data {
		data[i] = float32(i % 7)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vision.HillisSteeleScan(data)
	}
}

// BenchmarkNMS measures the GPU-shaped divergence-free NMS on the host.
func BenchmarkNMS_BoxNMS(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	num := 6132
	dets := tensor.New(1, num, vision.DetWidth)
	for i := 0; i < num; i++ {
		x, y := rng.Float32()*500, rng.Float32()*500
		dets.Set(float32(rng.Intn(20)), 0, i, 0)
		dets.Set(rng.Float32(), 0, i, 1)
		dets.Set(x, 0, i, 2)
		dets.Set(y, 0, i, 3)
		dets.Set(x+5+rng.Float32()*40, 0, i, 4)
		dets.Set(y+5+rng.Float32()*40, 0, i, 5)
	}
	cfg := vision.NMSConfig{IoUThreshold: 0.45, ScoreThreshold: 0.01, TopK: 400, MaxOutput: 100}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vision.BoxNMS(dets, cfg)
	}
}

// BenchmarkConv2D measures the parallel host convolution (ResNet stage-2
// workload).
func BenchmarkConv2D_ResNetBlock(b *testing.B) {
	w := ops.ConvWorkload{N: 1, CIn: 64, H: 56, W: 56, COut: 64, KH: 3, KW: 3,
		StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	in := tensor.New(w.N, w.CIn, w.H, w.W)
	in.FillRandom(1)
	weight := tensor.New(w.COut, w.CIn, w.KH, w.KW)
	weight.FillRandom(2)
	b.SetBytes(int64(w.Bytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ops.Conv2D(in, weight, nil, w)
	}
}

// BenchmarkAblationGraphTuner compares the layout DP against the
// transform-oblivious greedy choice (the design choice behind §3.2.3's
// graph tuner).
func BenchmarkAblationGraphTuner_DPvsGreedy(b *testing.B) {
	chain := []ops.ConvWorkload{}
	for i := 0; i < 8; i++ {
		chain = append(chain, ops.ConvWorkload{N: 1, CIn: 64, H: 28, W: 28, COut: 64,
			KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1})
	}
	d := sim.MaliT860
	cands := make([][]graphtuner.Candidate, len(chain))
	for i, w := range chain {
		cands[i] = graphtuner.CandidatesFor(w, d, 16, 1)
	}
	var dp, greedy graphtuner.Plan
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dp = graphtuner.Optimize(chain, cands, d)
		greedy = graphtuner.Greedy(chain, cands, d)
	}
	b.ReportMetric(dp.TotalMs, "sim_ms_dp")
	b.ReportMetric(greedy.TotalMs, "sim_ms_greedy")
}

// BenchmarkAblationSubgroup prices the same Intel conv with and without
// the subgroup/GRF binding (§3.2.1).
func BenchmarkAblationSubgroup_Intel(b *testing.B) {
	w := ops.ConvWorkload{N: 1, CIn: 64, H: 28, W: 28, COut: 128, KH: 3, KW: 3,
		StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	with := templates.Config{TileCo: 8, TileH: 2, TileW: 4, VecW: 1, TileK: 2, UnrollKernel: true, UseSubgroup: true}
	without := with
	without.UseSubgroup = false
	var a, c float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a = templates.CostMs(w, with, sim.IntelHD505)
		c = templates.CostMs(w, without, sim.IntelHD505)
	}
	b.ReportMetric(a, "sim_ms_subgroup")
	b.ReportMetric(c, "sim_ms_plain")
}

// BenchmarkAblationVisionCost prices the optimized vs naive vision
// pipelines on each device (the modeled side of Table 4).
func BenchmarkAblationVisionCost(b *testing.B) {
	for _, p := range sim.Platforms() {
		p := p
		b.Run(shortDevice(p.Name), func(b *testing.B) {
			var opt, naive float64
			for i := 0; i < b.N; i++ {
				opt = vision.SegmentedSortCost(p.GPU, 10647) + vision.ScanCost(p.GPU, 10647) + vision.NMSCost(p.GPU, 10647, 100)
				naive = vision.NaiveSortCost(p.GPU, 10647, 80) + vision.NaiveScanCost(p.GPU, 10647) + 80*vision.NaiveNMSCost(p.GPU, 10647, 64)
			}
			b.ReportMetric(opt*1e3, "sim_ms_optimized")
			b.ReportMetric(naive*1e3, "sim_ms_naive")
		})
	}
}

// BenchmarkCompile measures end-to-end compilation (build + optimize +
// place + tune with warm caches).
func BenchmarkCompile_SqueezeNet(b *testing.B) {
	eng := NewEngine()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Compile("SqueezeNet1.0", JetsonNano, CompileOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInference measures functional host inference at a reduced input.
func BenchmarkInference_SqueezeNet64(b *testing.B) {
	eng := NewEngine()
	cm, err := eng.Compile("SqueezeNet1.0", JetsonNano, CompileOptions{InputSize: 64})
	if err != nil {
		b.Fatal(err)
	}
	in := NewTensor(cm.InputShape()...)
	in.FillRandom(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cm.Run(in); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFamilyVariants prices the ResNet family on the Jetson Nano —
// the §4.1 claim that variants track their evaluated representative.
func BenchmarkFamilyVariants_ResNet(b *testing.B) {
	e := estimator()
	names := []string{"ResNet18_v1", "ResNet34_v1", "ResNet50_v1", "ResNet101_v1"}
	var ms []float64
	for i := 0; i < b.N; i++ {
		ms = ms[:0]
		for _, name := range names {
			m := e.Model(name, sim.JetsonNano)
			ms = append(ms, e.TunedConvMs(m, sim.JetsonNano.GPU).TotalMs)
		}
	}
	for i, name := range names {
		b.ReportMetric(ms[i], metricName(name))
	}
}

// BenchmarkConv2DWinograd measures the F(2x2,3x3) algorithm against the
// direct convolution on the same workload — the 2.25x multiply reduction
// behind the vendor libraries' 3x3 kernels.
func BenchmarkConv2DWinograd_ResNetBlock(b *testing.B) {
	w := ops.ConvWorkload{N: 1, CIn: 64, H: 56, W: 56, COut: 64, KH: 3, KW: 3,
		StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	in := tensor.New(w.N, w.CIn, w.H, w.W)
	in.FillRandom(1)
	weight := tensor.New(w.COut, w.CIn, w.KH, w.KW)
	weight.FillRandom(2)
	b.SetBytes(int64(w.Bytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ops.Conv2DWinograd(in, weight, nil, w)
	}
}
