package unigpu

// End-to-end observability test: compile and run a seed model with tracing
// enabled, export the Chrome trace, and verify the span hierarchy and the
// required metric names survive the full pipeline (the ISSUE-1 acceptance
// criterion).

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"unigpu/internal/obs"
)

type traceEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	Args map[string]string `json:"args"`
}

func TestPipelineTraceExport(t *testing.T) {
	obs.Reset()
	obs.Enable()
	defer func() {
		obs.Disable()
		obs.Reset()
	}()

	eng := NewEngine()
	cm, err := eng.Compile("SqueezeNet1.0", DeepLens, CompileOptions{InputSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	in := NewTensor(cm.InputShape()...)
	in.FillRandom(7)
	if _, err := cm.Run(in); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := obs.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []traceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	if len(trace.TraceEvents) == 0 {
		t.Fatal("trace is empty")
	}

	byName := map[string][]traceEvent{}
	laneThreads := 0
	for _, ev := range trace.TraceEvents {
		if ev.Ph == "M" {
			// thread_name metadata announcing the per-lane tracks that
			// node spans carrying the lane attribute land on.
			if ev.Name != "thread_name" {
				t.Fatalf("metadata event %q, want thread_name", ev.Name)
			}
			laneThreads++
			continue
		}
		if ev.Ph != "X" {
			t.Fatalf("event %q has phase %q, want X", ev.Name, ev.Ph)
		}
		byName[ev.Name] = append(byName[ev.Name], ev)
	}
	if laneThreads == 0 {
		t.Error("no per-lane thread metadata despite lane-attributed node spans")
	}

	// The pipeline stages all show up.
	for _, want := range []string{
		"compile", "graph.optimize", "graph.pass.fold_batch_norm",
		"graph.pass.fuse_activations", "graph.pass.precompute_constants",
		"graph.place_devices", "tune.conv_plan", "graphtuner.candidates",
		"graphtuner.layout", "graphtuner.dp", "runtime.execute",
	} {
		if len(byName[want]) == 0 {
			t.Errorf("trace has no %q span", want)
		}
	}

	// Span nesting: graph passes under graph.optimize under compile;
	// tuning under the pricing stage; per-node spans under runtime.execute.
	id := func(ev traceEvent) string { return ev.Args["span_id"] }
	parent := func(ev traceEvent) string { return ev.Args["parent_id"] }
	compile := byName["compile"][0]
	if parent(compile) != "0" {
		t.Errorf("compile should be a root span, parent=%s", parent(compile))
	}
	gopt := byName["graph.optimize"][0]
	if parent(gopt) != id(compile) {
		t.Errorf("graph.optimize parent=%s, want compile=%s", parent(gopt), id(compile))
	}
	if pass := byName["graph.pass.fold_batch_norm"][0]; parent(pass) != id(gopt) {
		t.Errorf("fold_batch_norm parent=%s, want graph.optimize=%s", parent(pass), id(gopt))
	}
	plan := byName["tune.conv_plan"][0]
	if cand := byName["graphtuner.candidates"][0]; parent(cand) != id(plan) {
		t.Errorf("candidates parent=%s, want tune.conv_plan=%s", parent(cand), id(plan))
	}
	if layout := byName["graphtuner.layout"][0]; parent(layout) != id(byName["graphtuner.candidates"][0]) {
		t.Errorf("layout parent=%s, want candidates", parent(layout))
	}
	exec := byName["runtime.execute"][0]
	nodes := 0
	for _, ev := range trace.TraceEvents {
		if strings.HasPrefix(ev.Name, "node:") {
			nodes++
			if parent(ev) != id(exec) {
				t.Fatalf("node span %q parent=%s, want runtime.execute=%s", ev.Name, parent(ev), id(exec))
			}
		}
	}
	if nodes == 0 {
		t.Error("no per-node execution spans in trace")
	}

	// Required metrics were recorded and appear in the dump.
	if v := obs.DefaultRegistry.Counter("tune.trials").Value(); v == 0 {
		t.Error("tune.trials counter is zero")
	}
	if n := obs.DefaultRegistry.Histogram("exec.node_wall_ns").Count(); n == 0 {
		t.Error("exec.node_wall_ns histogram has no samples")
	}
	dump := obs.DumpMetrics()
	for _, want := range []string{"tune.trials", "exec.node_wall_ns", "graph.pass_mutations"} {
		if !strings.Contains(dump, want) {
			t.Errorf("metrics dump missing %q:\n%s", want, dump)
		}
	}
}

// TestTraceDisabledByDefault pins the zero-overhead contract: without
// Enable, running the pipeline records nothing.
func TestTraceDisabledByDefault(t *testing.T) {
	obs.Reset()
	eng := NewEngine()
	cm, err := eng.Compile("MobileNet1.0", JetsonNano, CompileOptions{InputSize: 32, SkipTuning: true})
	if err != nil {
		t.Fatal(err)
	}
	in := NewTensor(cm.InputShape()...)
	if _, err := cm.Run(in); err != nil {
		t.Fatal(err)
	}
	if recs := obs.Records(); len(recs) != 0 {
		t.Fatalf("disabled tracer collected %d spans", len(recs))
	}
	if n := obs.DefaultRegistry.Histogram("exec.node_wall_ns").Count(); n != 0 {
		t.Fatalf("hot-path histogram recorded %d samples while disabled", n)
	}
}
