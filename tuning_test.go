package unigpu

import (
	"path/filepath"
	"sync"
	"testing"

	"unigpu/internal/obs"
)

func tuneTrials() int64 { return obs.DefaultRegistry.Counter("tune.trials").Value() }

// TestConcurrentCompileSharedEngineAndDB compiles the same model
// concurrently on two platforms through one shared Engine and tuning
// database — the singleflight cache and the DB's locking must keep this
// race-free (run under -race) and deterministic.
func TestConcurrentCompileSharedEngineAndDB(t *testing.T) {
	db := NewTuningDB("")
	eng := NewEngineWith(EngineOptions{DB: db, Budget: 8, Jobs: 4})
	platforms := []*Platform{DeepLens, JetsonNano}

	const perPlatform = 2
	results := make([][]float64, len(platforms))
	var wg sync.WaitGroup
	for pi, p := range platforms {
		results[pi] = make([]float64, perPlatform)
		for r := 0; r < perPlatform; r++ {
			wg.Add(1)
			go func(pi, r int, p *Platform) {
				defer wg.Done()
				cm, err := eng.Compile("SqueezeNet1.0", p, CompileOptions{})
				if err != nil {
					t.Errorf("compile on %s: %v", p.Name, err)
					return
				}
				results[pi][r] = cm.PredictedLatencyMs
			}(pi, r, p)
		}
	}
	wg.Wait()
	for pi, p := range platforms {
		for r := 1; r < perPlatform; r++ {
			if results[pi][r] != results[pi][0] {
				t.Fatalf("%s: concurrent compiles disagree: %v", p.Name, results[pi])
			}
		}
	}
	if db.Len() == 0 {
		t.Fatal("compilation must store tuning winners in the database")
	}
}

// TestWarmDBCompileSkipsSearch checks determinism across the cache
// boundary: a fresh engine warmed from the persisted database must
// reproduce the cold engine's plan exactly, running zero tuning trials.
func TestWarmDBCompileSkipsSearch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "records.json")
	db, err := OpenTuningDB(path)
	if err != nil {
		t.Fatal(err)
	}
	cold := NewEngineWith(EngineOptions{DB: db, Budget: 8})
	cm1, err := cold.Compile("SqueezeNet1.0", JetsonNano, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := cold.SaveTuning(); err != nil {
		t.Fatal(err)
	}

	db2, err := OpenTuningDB(path)
	if err != nil {
		t.Fatal(err)
	}
	if db2.Len() == 0 {
		t.Fatal("saved database must not be empty")
	}
	warm := NewEngineWith(EngineOptions{DB: db2, Budget: 8})
	before := tuneTrials()
	cm2, err := warm.Compile("SqueezeNet1.0", JetsonNano, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := tuneTrials() - before; got != 0 {
		t.Fatalf("warm compile ran %d tuning trials, want 0", got)
	}
	if cm1.PredictedLatencyMs != cm2.PredictedLatencyMs ||
		cm1.ConvKernelMs != cm2.ConvKernelMs || cm1.TransformMs != cm2.TransformMs {
		t.Fatalf("warm compile diverged: cold %.6f/%.6f/%.6f, warm %.6f/%.6f/%.6f",
			cm1.PredictedLatencyMs, cm1.ConvKernelMs, cm1.TransformMs,
			cm2.PredictedLatencyMs, cm2.ConvKernelMs, cm2.TransformMs)
	}
}
