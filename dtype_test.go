package unigpu

import (
	"math"
	"testing"

	"unigpu/internal/tensor"
)

// dtypeBudget is the per-model relative-error budget for one precision
// mode, on the same metrics the unigpu-bench dtype table reports:
// classification outputs compare elementwise normalized by the largest
// finite reference magnitude; detection outputs (rank 3) compare the
// sorted confidence column only, because box coordinates are chaotic
// under random weights (the fp32 Yolov3 baseline already overflows exp).
type dtypeBudget struct {
	model string
	size  int
	fp16  float64
	int8  float64
}

// Budgets are roughly 2-3x the measured error so a real precision
// regression trips them, but RNG or ordering jitter does not. The int8
// column is generous by design: symmetric per-tensor activation
// quantization of random-weight nets costs real accuracy, which is why
// -dtype auto never picks int8 when fp16 wins the roofline.
var dtypeBudgets = []dtypeBudget{
	{"ResNet50_v1", 64, 0.05, 0.9},
	{"MobileNet1.0", 96, 0.05, 0.9},
	{"SqueezeNet1.0", 96, 0.06, 0.9},
	{"SSD_MobileNet1.0", 96, 0.10, 0.9},
	{"SSD_ResNet50", 64, 0.10, 0.9},
	{"Yolov3", 64, 0.10, 0.9},
}

func relErrVsRef(ref, got *tensor.Tensor) float64 {
	if ref.Rank() == 3 {
		rows := ref.Shape()[1]
		if g := got.Shape()[1]; g < rows {
			rows = g
		}
		worst := 0.0
		for i := 0; i < rows; i++ {
			r, g := float64(ref.At(0, i, 1)), float64(got.At(0, i, 1))
			if math.IsNaN(r) || math.IsNaN(g) {
				continue
			}
			if d := math.Abs(g - r); d > worst {
				worst = d
			}
		}
		return worst
	}
	scale, worst := 0.0, 0.0
	n := ref.Size()
	for i := 0; i < n; i++ {
		if v := math.Abs(float64(ref.GetF(i))); !math.IsInf(v, 0) && !math.IsNaN(v) && v > scale {
			scale = v
		}
	}
	if scale == 0 {
		scale = 1
	}
	for i := 0; i < n; i++ {
		r, g := float64(ref.GetF(i)), float64(got.GetF(i))
		if math.IsInf(r, 0) || math.IsNaN(r) || math.IsInf(g, 0) || math.IsNaN(g) {
			continue
		}
		if d := math.Abs(g-r) / scale; d > worst {
			worst = d
		}
	}
	return worst
}

// TestDTypeAccuracyBudgets runs the whole zoo under every reduced
// precision mode and holds each model to its budget against the fp32
// reference. fp32 itself must be bit-identical to a second fp32 compile
// (quantization off is a guaranteed no-op), and auto may never exceed
// the fp16 budget — the mode picks int8 only where the roofline says it
// pays, and the zoo devices make fp16 the winner.
func TestDTypeAccuracyBudgets(t *testing.T) {
	for _, b := range dtypeBudgets {
		t.Run(b.model, func(t *testing.T) {
			t.Parallel() // models are independent; keep the race run inside the per-package budget
			eng := NewEngine()
			in := NewTensor(1, 3, b.size, b.size)
			in.FillRandom(7)

			run := func(dtype string) *tensor.Tensor {
				cm, err := eng.Compile(b.model, DeepLens,
					CompileOptions{InputSize: b.size, SkipTuning: true, DType: dtype})
				if err != nil {
					t.Fatalf("compile %s: %v", dtype, err)
				}
				out, err := cm.Run(in)
				if err != nil {
					t.Fatalf("run %s: %v", dtype, err)
				}
				return out.Clone()
			}

			ref := run("fp32")
			// The quantization-off no-op guarantee (explicit "fp32" vs the
			// empty default, bit for bit) is checked on the cheapest model
			// only; recompiling the whole zoo twice would double the cost
			// for zero extra signal.
			if b.model == "SqueezeNet1.0" {
				again := run("")
				for i := 0; i < ref.Size(); i++ {
					rb, gb := math.Float32bits(ref.GetF(i)), math.Float32bits(again.GetF(i))
					if rb != gb {
						t.Fatalf("fp32 not bit-identical at elem %d: %#08x vs %#08x", i, rb, gb)
					}
				}
			}

			for _, tc := range []struct {
				dtype  string
				budget float64
			}{
				{"fp16", b.fp16},
				{"auto", b.fp16},
				{"int8", b.int8},
			} {
				if err := relErrVsRef(ref, run(tc.dtype)); err > tc.budget {
					t.Errorf("%s %s: rel error %.3e exceeds budget %.1e",
						b.model, tc.dtype, err, tc.budget)
				}
			}
		})
	}
}
