// Command bench2json converts `go test -bench -benchmem` text output into
// machine-readable JSON, so CI can archive benchmark results (make bench
// writes BENCH_runtime.json) and successive runs can be diffed. It can also
// gate on allocation regressions: -maxallocs "BenchmarkSessionRun=0" exits
// non-zero if the named benchmark reports more allocs/op than allowed (or
// is missing from the input entirely).
//
// With -baseline it additionally gates on wall-clock regressions: the
// fresh results are compared against a committed baseline JSON (make
// bench-regress compares against BENCH_baseline.json) and the run fails
// when a gated benchmark's best (minimum) ns/op exceeds the baseline's
// best by more than -maxregress percent. Run benchmarks with -count > 1
// so the minimum is meaningful. The comparison is skipped with a warning
// when the baseline was recorded on a different CPU — cross-machine
// ns/op deltas measure the machine, not the change.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	// Metrics holds custom b.ReportMetric values by unit (e.g. "flops").
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// File is the whole report.
type File struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	log.SetFlags(0)
	in := flag.String("in", "", "benchmark text output to parse (default stdin)")
	out := flag.String("out", "BENCH_runtime.json", "JSON file to write")
	maxAllocs := flag.String("maxallocs", "",
		`comma-separated allocation gates, e.g. "BenchmarkSessionRun=0"; a named benchmark exceeding its limit (or absent from the input) fails the run`)
	baseline := flag.String("baseline", "",
		"committed baseline JSON (a previous -out file) to compare wall clock against")
	maxRegress := flag.Float64("maxregress", 15,
		"with -baseline: fail when a gated benchmark's best ns/op exceeds the baseline's best by more than this percentage")
	gated := flag.String("gated", "",
		`with -baseline: comma-separated benchmark names to gate (matched after stripping the -<procs> suffix); empty gates every name present in both runs`)
	flag.Parse()

	r := os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		r = f
	}

	var file File
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			file.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			file.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			file.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			if res, ok := parseLine(line); ok {
				file.Results = append(file.Results, res)
			}
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	if len(file.Results) == 0 {
		log.Fatal("bench2json: no benchmark lines found in input")
	}
	data, err := json.MarshalIndent(&file, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if *out != "" && *out != "/dev/null" {
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("bench2json: %d results -> %s\n", len(file.Results), *out)
	}
	failed := false
	if errs := checkAllocGates(*maxAllocs, file.Results); len(errs) > 0 {
		for _, e := range errs {
			fmt.Fprintln(os.Stderr, "bench2json:", e)
		}
		failed = true
	}
	if *baseline != "" {
		if errs := checkRegression(*baseline, *maxRegress, *gated, file); len(errs) > 0 {
			for _, e := range errs {
				fmt.Fprintln(os.Stderr, "bench2json:", e)
			}
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

// normName strips the GOMAXPROCS suffix go test appends (-8 in
// "BenchmarkSessionRun-8"), so runs from machines with different core
// counts compare by benchmark identity.
func normName(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

// bestNs folds results to the minimum ns/op per normalized name — the
// least-noisy estimate of a benchmark's true cost across -count repeats.
func bestNs(results []Result) map[string]float64 {
	best := map[string]float64{}
	for _, r := range results {
		n := normName(r.Name)
		if v, ok := best[n]; !ok || r.NsPerOp < v {
			best[n] = r.NsPerOp
		}
	}
	return best
}

// checkRegression compares the fresh results against a baseline file and
// returns one error per gated benchmark whose best ns/op regressed past
// maxPct. A CPU-string mismatch skips the whole comparison with a warning
// (cross-machine deltas measure the machine); a gated name missing from
// the fresh run is an error so a renamed benchmark cannot silently drop
// its gate, while one missing from the baseline only warns (it is new).
func checkRegression(path string, maxPct float64, gated string, cur File) []string {
	data, err := os.ReadFile(path)
	if err != nil {
		return []string{fmt.Sprintf("read baseline: %v", err)}
	}
	var base File
	if err := json.Unmarshal(data, &base); err != nil {
		return []string{fmt.Sprintf("parse baseline %s: %v", path, err)}
	}
	if base.CPU != "" && cur.CPU != "" && base.CPU != cur.CPU {
		fmt.Fprintf(os.Stderr, "bench2json: baseline CPU %q != current CPU %q, skipping regression compare\n",
			base.CPU, cur.CPU)
		return nil
	}
	baseBest, curBest := bestNs(base.Results), bestNs(cur.Results)

	var names []string
	if gated != "" {
		// A gated name covers the benchmark itself and its sub-benchmark
		// variants Name/<sub>, same as the alloc gates. A name with no
		// match at all stays in the list so the missing-benchmark error
		// below fires — a renamed benchmark must not silently drop out.
		for _, n := range strings.Split(gated, ",") {
			if n = strings.TrimSpace(n); n == "" {
				continue
			}
			matched := false
			for cn := range curBest {
				if cn == n || strings.HasPrefix(cn, n+"/") {
					names = append(names, cn)
					matched = true
				}
			}
			if !matched {
				names = append(names, n)
			}
		}
		sort.Strings(names)
	} else {
		for n := range curBest {
			if _, ok := baseBest[n]; ok {
				names = append(names, n)
			}
		}
		sort.Strings(names)
	}

	var errs []string
	for _, n := range names {
		c, okC := curBest[n]
		b, okB := baseBest[n]
		switch {
		case !okC:
			errs = append(errs, fmt.Sprintf("gated benchmark %q missing from the fresh run", n))
		case !okB:
			fmt.Fprintf(os.Stderr, "bench2json: %s not in baseline %s, skipping (new benchmark?)\n", n, path)
		case c > b*(1+maxPct/100):
			errs = append(errs, fmt.Sprintf("%s regressed: %.0f ns/op vs baseline %.0f ns/op (+%.1f%%, limit %.0f%%)",
				n, c, b, 100*(c/b-1), maxPct))
		default:
			fmt.Printf("bench2json: %s ok: %.0f ns/op vs baseline %.0f ns/op (%+.1f%%)\n",
				n, c, b, 100*(c/b-1))
		}
	}
	return errs
}

// checkAllocGates enforces "Name=maxAllocs" specs against the parsed
// results. A spec matches a benchmark named exactly Name or any of its
// variants Name-<procs> / Name/<sub-benchmark>. A spec that matches
// nothing is itself an error — a silently renamed benchmark must not
// disable its gate.
func checkAllocGates(specs string, results []Result) []string {
	var errs []string
	for _, spec := range strings.Split(specs, ",") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		name, limitStr, ok := strings.Cut(spec, "=")
		if !ok {
			errs = append(errs, fmt.Sprintf("bad -maxallocs entry %q (want Name=limit)", spec))
			continue
		}
		limit, err := strconv.ParseInt(limitStr, 10, 64)
		if err != nil {
			errs = append(errs, fmt.Sprintf("bad -maxallocs limit in %q: %v", spec, err))
			continue
		}
		matched := false
		for _, r := range results {
			if r.Name != name && !strings.HasPrefix(r.Name, name+"-") && !strings.HasPrefix(r.Name, name+"/") {
				continue
			}
			matched = true
			if r.AllocsPerOp > limit {
				errs = append(errs, fmt.Sprintf("%s: %d allocs/op exceeds limit %d", r.Name, r.AllocsPerOp, limit))
			}
		}
		if !matched {
			errs = append(errs, fmt.Sprintf("gate %q matched no benchmark in the input", name))
		}
	}
	return errs
}

// parseLine parses e.g.
//
//	BenchmarkSessionRun  50  65209 ns/op  123 flops  0 B/op  0 allocs/op
func parseLine(line string) (Result, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || f[3] != "ns/op" {
		return Result{}, false
	}
	iters, err1 := strconv.ParseInt(f[1], 10, 64)
	ns, err2 := strconv.ParseFloat(f[2], 64)
	if err1 != nil || err2 != nil {
		return Result{}, false
	}
	res := Result{Name: f[0], Iterations: iters, NsPerOp: ns}
	for i := 4; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			continue
		}
		switch f[i+1] {
		case "B/op":
			res.BytesPerOp = int64(v)
		case "allocs/op":
			res.AllocsPerOp = int64(v)
		default:
			if res.Metrics == nil {
				res.Metrics = map[string]float64{}
			}
			res.Metrics[f[i+1]] = v
		}
	}
	return res, true
}
