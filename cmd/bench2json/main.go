// Command bench2json converts `go test -bench -benchmem` text output into
// machine-readable JSON, so CI can archive benchmark results (make bench
// writes BENCH_runtime.json) and successive runs can be diffed.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// File is the whole report.
type File struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	log.SetFlags(0)
	in := flag.String("in", "", "benchmark text output to parse (default stdin)")
	out := flag.String("out", "BENCH_runtime.json", "JSON file to write")
	flag.Parse()

	r := os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		r = f
	}

	var file File
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			file.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			file.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			file.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			if res, ok := parseLine(line); ok {
				file.Results = append(file.Results, res)
			}
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	if len(file.Results) == 0 {
		log.Fatal("bench2json: no benchmark lines found in input")
	}
	data, err := json.MarshalIndent(&file, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bench2json: %d results -> %s\n", len(file.Results), *out)
}

// parseLine parses e.g.
//
//	BenchmarkSessionRun  50  65209 ns/op  0 B/op  0 allocs/op
func parseLine(line string) (Result, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || f[3] != "ns/op" {
		return Result{}, false
	}
	iters, err1 := strconv.ParseInt(f[1], 10, 64)
	ns, err2 := strconv.ParseFloat(f[2], 64)
	if err1 != nil || err2 != nil {
		return Result{}, false
	}
	res := Result{Name: f[0], Iterations: iters, NsPerOp: ns}
	for i := 4; i+1 < len(f); i += 2 {
		v, err := strconv.ParseInt(f[i], 10, 64)
		if err != nil {
			continue
		}
		switch f[i+1] {
		case "B/op":
			res.BytesPerOp = v
		case "allocs/op":
			res.AllocsPerOp = v
		}
	}
	return res, true
}
