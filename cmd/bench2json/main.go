// Command bench2json converts `go test -bench -benchmem` text output into
// machine-readable JSON, so CI can archive benchmark results (make bench
// writes BENCH_runtime.json) and successive runs can be diffed. It can also
// gate on allocation regressions: -maxallocs "BenchmarkSessionRun=0" exits
// non-zero if the named benchmark reports more allocs/op than allowed (or
// is missing from the input entirely).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	// Metrics holds custom b.ReportMetric values by unit (e.g. "flops").
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// File is the whole report.
type File struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	log.SetFlags(0)
	in := flag.String("in", "", "benchmark text output to parse (default stdin)")
	out := flag.String("out", "BENCH_runtime.json", "JSON file to write")
	maxAllocs := flag.String("maxallocs", "",
		`comma-separated allocation gates, e.g. "BenchmarkSessionRun=0"; a named benchmark exceeding its limit (or absent from the input) fails the run`)
	flag.Parse()

	r := os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		r = f
	}

	var file File
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			file.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			file.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			file.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			if res, ok := parseLine(line); ok {
				file.Results = append(file.Results, res)
			}
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	if len(file.Results) == 0 {
		log.Fatal("bench2json: no benchmark lines found in input")
	}
	data, err := json.MarshalIndent(&file, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if *out != "" && *out != "/dev/null" {
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("bench2json: %d results -> %s\n", len(file.Results), *out)
	}
	if errs := checkAllocGates(*maxAllocs, file.Results); len(errs) > 0 {
		for _, e := range errs {
			fmt.Fprintln(os.Stderr, "bench2json:", e)
		}
		os.Exit(1)
	}
}

// checkAllocGates enforces "Name=maxAllocs" specs against the parsed
// results. A spec matches a benchmark named exactly Name or any of its
// variants Name-<procs> / Name/<sub-benchmark>. A spec that matches
// nothing is itself an error — a silently renamed benchmark must not
// disable its gate.
func checkAllocGates(specs string, results []Result) []string {
	var errs []string
	for _, spec := range strings.Split(specs, ",") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		name, limitStr, ok := strings.Cut(spec, "=")
		if !ok {
			errs = append(errs, fmt.Sprintf("bad -maxallocs entry %q (want Name=limit)", spec))
			continue
		}
		limit, err := strconv.ParseInt(limitStr, 10, 64)
		if err != nil {
			errs = append(errs, fmt.Sprintf("bad -maxallocs limit in %q: %v", spec, err))
			continue
		}
		matched := false
		for _, r := range results {
			if r.Name != name && !strings.HasPrefix(r.Name, name+"-") && !strings.HasPrefix(r.Name, name+"/") {
				continue
			}
			matched = true
			if r.AllocsPerOp > limit {
				errs = append(errs, fmt.Sprintf("%s: %d allocs/op exceeds limit %d", r.Name, r.AllocsPerOp, limit))
			}
		}
		if !matched {
			errs = append(errs, fmt.Sprintf("gate %q matched no benchmark in the input", name))
		}
	}
	return errs
}

// parseLine parses e.g.
//
//	BenchmarkSessionRun  50  65209 ns/op  123 flops  0 B/op  0 allocs/op
func parseLine(line string) (Result, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || f[3] != "ns/op" {
		return Result{}, false
	}
	iters, err1 := strconv.ParseInt(f[1], 10, 64)
	ns, err2 := strconv.ParseFloat(f[2], 64)
	if err1 != nil || err2 != nil {
		return Result{}, false
	}
	res := Result{Name: f[0], Iterations: iters, NsPerOp: ns}
	for i := 4; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			continue
		}
		switch f[i+1] {
		case "B/op":
			res.BytesPerOp = int64(v)
		case "allocs/op":
			res.AllocsPerOp = int64(v)
		default:
			if res.Metrics == nil {
				res.Metrics = map[string]float64{}
			}
			res.Metrics[f[i+1]] = v
		}
	}
	return res, true
}
