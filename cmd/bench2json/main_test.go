package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseLineMetrics(t *testing.T) {
	res, ok := parseLine("BenchmarkConvKernels/resnet50_c64/gemm-8  20  716360 ns/op  231211008 flops  0 B/op  0 allocs/op")
	if !ok {
		t.Fatal("line not parsed")
	}
	if res.Name != "BenchmarkConvKernels/resnet50_c64/gemm-8" || res.Iterations != 20 {
		t.Fatalf("parsed %+v", res)
	}
	if res.Metrics["flops"] != 231211008 {
		t.Fatalf("flops metric = %v", res.Metrics["flops"])
	}
	if res.BytesPerOp != 0 || res.AllocsPerOp != 0 {
		t.Fatalf("benchmem fields: %+v", res)
	}
}

func TestCheckAllocGates(t *testing.T) {
	results := []Result{
		{Name: "BenchmarkSessionRun-8", AllocsPerOp: 0},
		{Name: "BenchmarkSessionRunConcurrent-8", AllocsPerOp: 40},
		{Name: "BenchmarkOther-8", AllocsPerOp: 7},
	}
	if errs := checkAllocGates("BenchmarkSessionRun=0", results); len(errs) != 0 {
		t.Fatalf("clean gate failed: %v", errs)
	}
	// Note: SessionRunConcurrent does not match gate SessionRun (no "-" or
	// "/" boundary), so only the serial benchmark is gated above.
	if errs := checkAllocGates("BenchmarkOther=0", results); len(errs) != 1 {
		t.Fatalf("violation not reported: %v", errs)
	}
	if errs := checkAllocGates("BenchmarkMissing=0", results); len(errs) != 1 {
		t.Fatalf("missing benchmark must fail the gate: %v", errs)
	}
	if errs := checkAllocGates("junk", results); len(errs) != 1 {
		t.Fatalf("malformed spec must error: %v", errs)
	}
	if errs := checkAllocGates("", results); len(errs) != 0 {
		t.Fatalf("empty spec must pass: %v", errs)
	}
}

func TestCheckRegressionGatedSubBenchmarks(t *testing.T) {
	base := File{Results: []Result{
		{Name: "BenchmarkSessionRun/dtype=fp32-8", NsPerOp: 100},
		{Name: "BenchmarkSessionRun/dtype=fp16-8", NsPerOp: 100},
		{Name: "BenchmarkDenseInto-8", NsPerOp: 100},
	}}
	path := writeBaseline(t, base)

	cur := File{Results: []Result{
		{Name: "BenchmarkSessionRun/dtype=fp32-8", NsPerOp: 105},
		{Name: "BenchmarkSessionRun/dtype=fp16-8", NsPerOp: 300}, // regressed
		{Name: "BenchmarkDenseInto-8", NsPerOp: 100},
	}}
	// The gated parent name expands to every dtype sub-benchmark, so the
	// fp16 regression is caught even though only the parent is listed.
	errs := checkRegression(path, 15, "BenchmarkSessionRun,BenchmarkDenseInto", cur)
	if len(errs) != 1 || !contains(errs[0], "dtype=fp16") {
		t.Fatalf("want one fp16 regression, got %v", errs)
	}
	// A gated name matching nothing in the fresh run must fail loudly.
	errs = checkRegression(path, 15, "BenchmarkRenamed", cur)
	if len(errs) != 1 || !contains(errs[0], "missing") {
		t.Fatalf("missing gated benchmark must error, got %v", errs)
	}
}

func writeBaseline(t *testing.T, f File) string {
	t.Helper()
	data, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func contains(s, sub string) bool { return strings.Contains(s, sub) }
