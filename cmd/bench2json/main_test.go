package main

import "testing"

func TestParseLineMetrics(t *testing.T) {
	res, ok := parseLine("BenchmarkConvKernels/resnet50_c64/gemm-8  20  716360 ns/op  231211008 flops  0 B/op  0 allocs/op")
	if !ok {
		t.Fatal("line not parsed")
	}
	if res.Name != "BenchmarkConvKernels/resnet50_c64/gemm-8" || res.Iterations != 20 {
		t.Fatalf("parsed %+v", res)
	}
	if res.Metrics["flops"] != 231211008 {
		t.Fatalf("flops metric = %v", res.Metrics["flops"])
	}
	if res.BytesPerOp != 0 || res.AllocsPerOp != 0 {
		t.Fatalf("benchmem fields: %+v", res)
	}
}

func TestCheckAllocGates(t *testing.T) {
	results := []Result{
		{Name: "BenchmarkSessionRun-8", AllocsPerOp: 0},
		{Name: "BenchmarkSessionRunConcurrent-8", AllocsPerOp: 40},
		{Name: "BenchmarkOther-8", AllocsPerOp: 7},
	}
	if errs := checkAllocGates("BenchmarkSessionRun=0", results); len(errs) != 0 {
		t.Fatalf("clean gate failed: %v", errs)
	}
	// Note: SessionRunConcurrent does not match gate SessionRun (no "-" or
	// "/" boundary), so only the serial benchmark is gated above.
	if errs := checkAllocGates("BenchmarkOther=0", results); len(errs) != 1 {
		t.Fatalf("violation not reported: %v", errs)
	}
	if errs := checkAllocGates("BenchmarkMissing=0", results); len(errs) != 1 {
		t.Fatalf("missing benchmark must fail the gate: %v", errs)
	}
	if errs := checkAllocGates("junk", results); len(errs) != 1 {
		t.Fatalf("malformed spec must error: %v", errs)
	}
	if errs := checkAllocGates("", results); len(errs) != 0 {
		t.Fatalf("empty spec must pass: %v", errs)
	}
}
