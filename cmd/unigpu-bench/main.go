// Command unigpu-bench regenerates the paper's tables and figures,
// benchmarks the pooled serving runtime (-streams), and soaks the
// fault-tolerance machinery (-faults).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"unigpu"
	"unigpu/internal/autotvm"
	"unigpu/internal/bench"
	"unigpu/internal/graph"
	"unigpu/internal/models"
	"unigpu/internal/obs"
	"unigpu/internal/ops"
	"unigpu/internal/runtime"
	"unigpu/internal/sim"
	"unigpu/internal/tensor"
)

func main() {
	log.SetFlags(0)
	// Ctrl-C cancels the current phase (in-flight requests abort between
	// node dispatches; tables stop between models).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	table := flag.String("table", "all", "which artifact to regenerate: 1,2,3,4,5,fallback,figure2,figure3,irsize,experiments,kernels,fusion,dtype,all")
	dtype := flag.String("dtype", "fp32", "storage/compute precision for serving mode: fp32 | fp16 | int8 | auto")
	jsonPath := flag.String("json", "", "also write Tables 1-3 results as machine-readable JSON to this file")
	dbPath := flag.String("db", "", "tuning-records database path (warm DB skips the schedule searches)")
	jobs := flag.Int("jobs", 0, "parallel tuning workers (0 = GOMAXPROCS)")
	trace := flag.String("trace", "", "write a Chrome trace-event JSON file (chrome://tracing, Perfetto)")
	metrics := flag.Bool("metrics", false, "print the metrics dump after the run")
	streams := flag.Int("streams", 0, "serving mode: N concurrent clients, each with its own session over one shared plan (0 = off)")
	batchSz := flag.Int("batch", 0, "serving mode: coalesce concurrent client requests into batches of up to N, executed on a plan compiled for that batch size (with -streams; 0 = off)")
	linger := flag.Duration("linger", 2*time.Millisecond, "serving mode: max time the batcher holds a request waiting for companions (with -batch)")
	model := flag.String("model", "SqueezeNet1.0", "serving mode: model to serve")
	size := flag.Int("size", 64, "serving mode: square input size")
	requests := flag.Int("requests", 32, "serving mode: requests per client")
	workers := flag.Int("workers", 1, "serving mode: per-session CPU worker pool for concurrent node dispatch")
	gpuStreams := flag.Int("gpu-streams", 1, "serving mode: simulated GPU command queues per session")
	fleetMode := flag.Bool("fleet", false, "fleet serving soak: serve -model across the three paper platforms with latency-predictive routing and breaker-aware failover; with -fleet-kill >= 0, lose that device a third of the way in and (with -fleet-heal) heal it at two thirds; prints the per-device QPS/p99 table and the per-phase healthy/lost/heal-ramp summary")
	fleetKill := flag.Int("fleet-kill", 0, "fleet: replica index to kill mid-run (-1 = never kill)")
	fleetHeal := flag.Bool("fleet-heal", true, "fleet: heal the killed replica at two thirds of the run (scripted HealNow)")
	faults := flag.Bool("faults", false, "fault-injection soak: with -streams, serve through a SessionPool with seeded random faults and print degraded-mode QPS/p99; alone, print the healthy-vs-quarantined latency table per zoo model")
	faultRate := flag.Float64("fault-rate", 0.2, "faults: per-dispatch injection probability")
	faultSeed := flag.Int64("fault-seed", 1, "faults: injector RNG seed")
	faultHang := flag.Duration("fault-hang", 200*time.Microsecond, "faults: injected queue-hang stall")
	profile := flag.Bool("profile", false, "print the continuous profiler's rolling top-K table after the run (pool serving samples by default; this also attaches the profiler to pool-less -streams sessions)")
	listen := flag.String("listen", "", "serve live telemetry on this address for the run's duration: /metrics (Prometheus), /healthz, /debug/plans, /debug/requests, /debug/profile")
	flag.Parse()

	if *trace != "" || *metrics {
		obs.Enable()
	}
	if *listen != "" {
		srv, err := unigpu.ServeTelemetry(*listen)
		if err != nil {
			log.Fatalf("telemetry listen: %v", err)
		}
		defer srv.Close()
		log.Printf("telemetry on http://%s/metrics", srv.Addr())
	}
	if *fleetMode {
		clients := *streams
		if clients <= 0 {
			clients = 6
		}
		fleetServe(ctx, *model, *size, *dtype, clients, *requests, *fleetKill, *fleetHeal, *jsonPath)
		if *metrics {
			fmt.Print(obs.DumpMetrics())
		}
		return
	}
	if *faults && *streams == 0 {
		faultsTable(ctx)
		if *metrics {
			fmt.Print(obs.DumpMetrics())
		}
		return
	}
	if *streams > 0 {
		var cfg *sim.FaultConfig
		if *faults {
			cfg = &sim.FaultConfig{Seed: *faultSeed, Rate: *faultRate, HangLatency: *faultHang}
		}
		serve(ctx, *model, *size, *dtype, *streams, *requests, *workers, *gpuStreams, *batchSz, *linger, cfg, *profile, *jsonPath)
		if *metrics {
			fmt.Print(obs.DumpMetrics())
		}
		if *trace != "" {
			if err := obs.WriteChromeTraceFile(*trace); err != nil {
				log.Fatalf("write trace: %v", err)
			}
			log.Printf("trace written to %s (%d spans)", *trace, len(obs.Records()))
		}
		return
	}
	e := bench.NewEstimator()
	e.Jobs = *jobs
	if *dbPath != "" {
		db, err := autotvm.OpenDB(*dbPath)
		if err != nil {
			log.Fatalf("open db: %v", err)
		}
		e.DB = db
		defer func() {
			if err := db.Save(); err != nil {
				log.Fatalf("save db: %v", err)
			}
			log.Printf("tuning database %s holds %d records", *dbPath, db.Len())
		}()
	}
	defer func() {
		if *jsonPath != "" {
			if err := bench.WritePerfJSONFile(*jsonPath, e.PerfRecords()); err != nil {
				log.Fatalf("write json: %v", err)
			}
			log.Printf("perf records written to %s", *jsonPath)
		}
		if *trace != "" {
			if err := obs.WriteChromeTraceFile(*trace); err != nil {
				log.Fatalf("write trace: %v", err)
			}
			log.Printf("trace written to %s (%d spans)", *trace, len(obs.Records()))
		}
		if *metrics {
			fmt.Print(obs.DumpMetrics())
		}
	}()
	switch *table {
	case "experiments":
		fmt.Print(e.ExperimentsReport())
		return
	case "figure2":
		fmt.Print(bench.Figure2Demo())
		return
	case "figure3":
		fmt.Print(bench.Figure3Demo())
		return
	case "irsize":
		irL, cuL, clL := bench.IRSizeExperiment()
		fmt.Printf("vision pipeline in unified IR: %d lines -> %d CUDA + %d OpenCL lines\n", irL, cuL, clL)
		return
	case "kernels":
		kernelsTable()
		return
	case "fusion":
		fusionTable()
		return
	case "dtype":
		dtypeTable()
		return
	}
	switch *table {
	case "1", "2", "3":
		n := int((*table)[0] - '0')
		fmt.Print(e.OverallTable(n).Format())
	case "4":
		fmt.Print(bench.FormatAblation("Table 4: vision-specific operator optimizations", e.VisionAblation()))
	case "5":
		fmt.Print(bench.FormatAblation("Table 5: tuning-based conv optimizations", e.TuningAblation()))
	case "fallback":
		r := e.FallbackExperiment()
		fmt.Printf("all-GPU %.2f ms, NMS fallback %.2f ms, overhead %.2f%%\n", r.AllGPUMs, r.FallbackMs, r.OverheadPct)
	default:
		for n := 1; n <= 3; n++ {
			fmt.Print(e.OverallTable(n).Format())
			fmt.Println()
		}
		fmt.Print(bench.FormatAblation("Table 4", e.VisionAblation()))
		fmt.Println()
		fmt.Print(bench.FormatAblation("Table 5", e.TuningAblation()))
		r := e.FallbackExperiment()
		fmt.Printf("\nFallback: all-GPU %.2f ms, fallback %.2f ms, overhead %.2f%%\n", r.AllGPUMs, r.FallbackMs, r.OverheadPct)
	}
}

// kernelsTable measures real wall-clock inference per zoo model with every
// convolution forced to the direct kernel versus the cost-model selection
// (GEMM/depthwise/direct; Winograd stays off so outputs are bit-identical),
// and prints the selection breakdown. This is the source of the
// EXPERIMENTS.md "Convolution kernel selection" table. Inputs are shrunk
// from the paper sizes so the table regenerates in seconds on a laptop.
func kernelsTable() {
	sizes := []struct {
		name string
		size int
	}{
		{"ResNet50_v1", 96}, {"MobileNet1.0", 96}, {"SqueezeNet1.0", 96},
		{"SSD_MobileNet1.0", 128}, {"SSD_ResNet50", 128}, {"Yolov3", 96},
	}
	run := func(g *modelPlanInput) float64 {
		plan, err := runtime.NewPlan(g.graph)
		if err != nil {
			log.Fatalf("plan: %v", err)
		}
		s := plan.NewSession()
		if _, err := s.Run(g.feeds); err != nil { // warm-up
			log.Fatalf("run: %v", err)
		}
		best := 0.0
		for rep := 0; rep < 3; rep++ {
			t0 := time.Now()
			if _, err := s.Run(g.feeds); err != nil {
				log.Fatalf("run: %v", err)
			}
			if ms := float64(time.Since(t0).Microseconds()) / 1e3; rep == 0 || ms < best {
				best = ms
			}
		}
		return best
	}
	fmt.Println("Convolution kernel selection: direct-only vs selected (wall clock, Winograd off)")
	fmt.Printf("%-18s %6s %12s %12s %8s  %s\n", "model", "size", "direct ms", "selected ms", "speedup", "selection")
	for _, mc := range sizes {
		direct := buildModelPlanInput(mc.name, mc.size)
		graph.ForceConvKernel(direct.graph, ops.KernelDirect)
		directMs := run(direct)

		selected := buildModelPlanInput(mc.name, mc.size)
		counts := graph.SelectConvKernels(selected.graph, graph.KernelSelection{Device: sim.IntelHD505})
		selectedMs := run(selected)

		parts := make([]string, 0, len(counts))
		for _, k := range ops.ConvKernels {
			if counts[k] > 0 {
				parts = append(parts, fmt.Sprintf("%s:%d", k, counts[k]))
			}
		}
		fmt.Printf("%-18s %6d %12.2f %12.2f %7.2fx  %s\n",
			mc.name, mc.size, directMs, selectedMs, directMs/selectedMs, strings.Join(parts, " "))
	}
}

// fusionTable compares each zoo model before and after the generalized
// fusion passes: the "unfused" column runs only the pre-fusion pipeline
// (batch-norm folding, single-activation fusion, constant pre-computation),
// the "fused" column the full Optimize pipeline with residual-epilogue and
// elementwise-chain fusion. Reported per model: schedule node count, arena
// bytes, and best-of-3 wall clock. This is the source of the EXPERIMENTS.md
// "Graph-level operator fusion" table.
func fusionTable() {
	sizes := []struct {
		name string
		size int
	}{
		{"ResNet50_v1", 96}, {"MobileNet1.0", 96}, {"SqueezeNet1.0", 96},
		{"SSD_MobileNet1.0", 128}, {"SSD_ResNet50", 128}, {"Yolov3", 96},
	}
	build := func(name string, size int, fused bool) *modelPlanInput {
		m := models.Build(name, size, false)
		if fused {
			graph.Optimize(m.Graph)
		} else {
			graph.FoldBatchNorm(m.Graph)
			graph.FuseActivations(m.Graph)
			graph.PrecomputeConstants(m.Graph)
			m.Graph.EliminateDead()
		}
		feed := tensor.New(1, 3, size, size)
		feed.FillRandom(7)
		return &modelPlanInput{graph: m.Graph, feeds: map[string]*tensor.Tensor{"data": feed}}
	}
	measure := func(in *modelPlanInput) (nodes, arena, inter int, ms float64) {
		plan, err := runtime.NewPlan(in.graph)
		if err != nil {
			log.Fatalf("plan: %v", err)
		}
		s := plan.NewSession()
		if _, err := s.Run(in.feeds); err != nil { // warm-up
			log.Fatalf("run: %v", err)
		}
		best := 0.0
		for rep := 0; rep < 3; rep++ {
			t0 := time.Now()
			if _, err := s.Run(in.feeds); err != nil {
				log.Fatalf("run: %v", err)
			}
			if v := float64(time.Since(t0).Microseconds()) / 1e3; rep == 0 || v < best {
				best = v
			}
		}
		return plan.NumNodes(), plan.ArenaBytes(), plan.IntermediateBytes(), best
	}
	fmt.Println("Graph-level operator fusion: pre-fusion pipeline vs full Optimize")
	fmt.Printf("%-18s %6s %8s %8s %6s %10s %10s %10s %10s %9s %9s %8s\n",
		"model", "size", "nodes", "fused", "drop",
		"arena KiB", "fused KiB", "inter KiB", "fused KiB", "wall ms", "fused ms", "speedup")
	for _, mc := range sizes {
		n0, a0, i0, t0 := measure(build(mc.name, mc.size, false))
		n1, a1, i1, t1 := measure(build(mc.name, mc.size, true))
		fmt.Printf("%-18s %6d %8d %8d %5.1f%% %10d %10d %10d %10d %9.2f %9.2f %7.2fx\n",
			mc.name, mc.size, n0, n1, 100*float64(n0-n1)/float64(n0),
			a0/1024, a1/1024, i0/1024, i1/1024, t0, t1, t0/t1)
	}
}

// dtypeTable compares each zoo model compiled at fp32 / fp16 / int8 / auto:
// simulated latency, wall clock (best of 3), arena and intermediate bytes at
// per-slot element width, and the output error against the fp32 reference.
// Classification outputs compare elementwise (relative to the reference's
// max magnitude); detection outputs compare the sorted score column, which
// is stable under the box-coordinate blowups random-weight decode produces.
// This is the source of the EXPERIMENTS.md "Mixed precision" table.
func dtypeTable() {
	sizes := []struct {
		name string
		size int
	}{
		{"ResNet50_v1", 96}, {"MobileNet1.0", 96}, {"SqueezeNet1.0", 96},
		{"SSD_MobileNet1.0", 128}, {"SSD_ResNet50", 128}, {"Yolov3", 96},
	}
	fmt.Println("Mixed precision & quantization: per-dtype compile of the zoo (DeepLens, untuned schedules)")
	fmt.Printf("%-18s %-5s %9s %9s %10s %10s %7s %6s %12s\n",
		"model", "dtype", "sim ms", "wall ms", "arena KiB", "inter KiB", "casts", "fused", "max rel err")
	for _, mc := range sizes {
		var ref *tensor.Tensor
		for _, dt := range []string{"fp32", "fp16", "int8", "auto"} {
			eng := unigpu.NewEngine()
			cm, err := eng.Compile(mc.name, unigpu.DeepLens,
				unigpu.CompileOptions{InputSize: mc.size, SkipTuning: true, DType: dt})
			if err != nil {
				log.Fatalf("compile %s %s: %v", mc.name, dt, err)
			}
			plan, err := cm.Plan()
			if err != nil {
				log.Fatalf("plan %s %s: %v", mc.name, dt, err)
			}
			sess, err := cm.NewSession()
			if err != nil {
				log.Fatalf("session %s %s: %v", mc.name, dt, err)
			}
			in := tensor.New(1, 3, mc.size, mc.size)
			in.FillRandom(42)
			out, err := sess.Run(in) // warm-up
			if err != nil {
				log.Fatalf("run %s %s: %v", mc.name, dt, err)
			}
			best := 0.0
			for rep := 0; rep < 3; rep++ {
				t0 := time.Now()
				if out, err = sess.Run(in); err != nil {
					log.Fatalf("run %s %s: %v", mc.name, dt, err)
				}
				if v := float64(time.Since(t0).Microseconds()) / 1e3; rep == 0 || v < best {
					best = v
				}
			}
			relErr := 0.0
			if dt == "fp32" {
				ref = out.Clone()
			} else {
				relErr = outputRelErr(ref, out)
			}
			fmt.Printf("%-18s %-5s %9.2f %9.2f %10d %10d %7d %6d %12.2e\n",
				mc.name, dt, cm.PredictedLatencyMs, best,
				plan.ArenaBytes()/1024, plan.IntermediateBytes()/1024,
				cm.Quant.CastsInserted, cm.Quant.CastsFused, relErr)
		}
	}
}

// outputRelErr is the tolerance-harness error metric: elementwise max
// |got-ref| normalized by the reference's max finite magnitude; rank-3
// detection tensors compare the descending score column instead (box
// coordinates are chaotic under random weights — see EXPERIMENTS.md).
func outputRelErr(ref, got *tensor.Tensor) float64 {
	if ref.Rank() == 3 {
		return scoreColRelErr(ref, got)
	}
	scale, worst := 0.0, 0.0
	n := ref.Size()
	for i := 0; i < n; i++ {
		if v := math.Abs(float64(ref.GetF(i))); !math.IsInf(v, 0) && !math.IsNaN(v) && v > scale {
			scale = v
		}
	}
	if scale == 0 {
		scale = 1
	}
	for i := 0; i < n; i++ {
		r, g := float64(ref.GetF(i)), float64(got.GetF(i))
		if math.IsInf(r, 0) || math.IsNaN(r) || math.IsInf(g, 0) || math.IsNaN(g) {
			continue
		}
		if d := math.Abs(g-r) / scale; d > worst {
			worst = d
		}
	}
	return worst
}

// scoreColRelErr compares detection outputs on the sorted confidence
// column only (rows are [class score x1 y1 x2 y2], already score-ordered).
func scoreColRelErr(ref, got *tensor.Tensor) float64 {
	rows := ref.Shape()[1]
	if g := got.Shape()[1]; g < rows {
		rows = g
	}
	worst := 0.0
	for i := 0; i < rows; i++ {
		r, g := float64(ref.At(0, i, 1)), float64(got.At(0, i, 1))
		if math.IsNaN(r) || math.IsNaN(g) {
			continue
		}
		if d := math.Abs(g - r); d > worst {
			worst = d
		}
	}
	return worst
}

// modelPlanInput pairs an optimized model graph with its input feeds.
type modelPlanInput struct {
	graph *graph.Graph
	feeds map[string]*tensor.Tensor
}

func buildModelPlanInput(name string, size int) *modelPlanInput {
	m := models.Build(name, size, false)
	graph.Optimize(m.Graph)
	feed := tensor.New(1, 3, size, size)
	feed.FillRandom(7)
	return &modelPlanInput{graph: m.Graph, feeds: map[string]*tensor.Tensor{"data": feed}}
}

// servingReport is the machine-readable result of one serving run
// (-streams with -json): throughput and latency, and — under fault
// injection — the degraded-mode counters, breaker state, rolling SLO
// stats and the profiler's top-K table.
type servingReport struct {
	Model         string                  `json:"model"`
	Size          int                     `json:"size"`
	Streams       int                     `json:"streams"`
	Workers       int                     `json:"workers"`
	GPUStreams    int                     `json:"gpu_streams"`
	PlanNodes     int                     `json:"plan_nodes"`
	ArenaBytes    int                     `json:"arena_bytes"`
	Completed     int                     `json:"requests_completed"`
	WallMs        float64                 `json:"wall_ms"`
	QPS           float64                 `json:"qps"`
	P50Us         float64                 `json:"p50_us"`
	P99Us         float64                 `json:"p99_us"`
	Shed          int                     `json:"shed"`
	Batch         int                     `json:"batch,omitempty"`
	LingerUs      float64                 `json:"linger_us,omitempty"`
	BatchesFormed int64                   `json:"batches_formed,omitempty"`
	BatchesDegr   int64                   `json:"batches_degraded,omitempty"`
	MeanBatch     float64                 `json:"mean_batch,omitempty"`
	BatchP50      float64                 `json:"batch_p50,omitempty"`
	BatchP99      float64                 `json:"batch_p99,omitempty"`
	Faults        map[string]int64        `json:"faults,omitempty"`
	Retries       int64                   `json:"retries,omitempty"`
	CPUReexec     int64                   `json:"cpu_reexec,omitempty"`
	AdmissionShed int64                   `json:"admission_shed,omitempty"`
	Breaker       string                  `json:"breaker,omitempty"`
	SLO           []unigpu.SLOStats       `json:"slo,omitempty"`
	Profile       *unigpu.ProfileSnapshot `json:"profile,omitempty"`
}

// serve runs the concurrent-client throughput benchmark: one compiled
// plan, N clients issuing R back-to-back requests each. Without faults
// every client owns a pooled session; with a fault config the clients go
// through a SessionPool (admission control, shared circuit breaker) with
// seeded random faults injected into every GPU dispatch, and the report
// adds the degraded-mode counters plus the rolling SLO lines. Reports
// aggregate QPS and per-request p50/p99; jsonPath writes the full
// machine-readable servingReport.
func serve(ctx context.Context, model string, size int, dtype string, streams, requests, workers, gpuStreams, batch int, linger time.Duration, faultCfg *sim.FaultConfig, profile bool, jsonPath string) {
	eng := unigpu.NewEngine()
	cm, err := eng.Compile(model, unigpu.DeepLens, unigpu.CompileOptions{InputSize: size, SkipTuning: true, DType: dtype})
	if err != nil {
		log.Fatalf("compile: %v", err)
	}
	plan, err := cm.Plan()
	if err != nil {
		log.Fatalf("plan: %v", err)
	}
	log.Printf("serving %s size=%d: %d nodes, arena %d KiB (liveness peak %d KiB, %d KiB without reuse)",
		model, size, plan.NumNodes(), plan.ArenaBytes()/1024, plan.PeakLiveBytes()/1024, plan.IntermediateBytes()/1024)

	opts := unigpu.SessionOptions{Workers: workers, GPUStreams: gpuStreams}
	if profile {
		// Pool serving attaches the default profiler automatically; attach
		// it to pool-less per-client sessions too so -profile has data.
		opts.Profiler = obs.DefaultProfiler
	}
	var pool *unigpu.SessionPool
	var inj *sim.FaultInjector
	if faultCfg != nil || batch > 1 {
		if faultCfg != nil {
			inj = sim.NewFaultInjector(*faultCfg)
			opts.Faults = inj
		}
		poolSessions := (streams + 1) / 2 // undersized on purpose: exercises queueing
		poolOpts := unigpu.PoolOptions{
			Sessions: poolSessions, QueueDepth: streams, Session: opts,
		}
		if batch > 1 {
			poolOpts.Batch = &unigpu.BatchOptions{MaxBatch: batch, MaxLinger: linger, QueueDepth: 2 * streams}
		}
		pool, err = cm.NewSessionPool(poolOpts)
		if err != nil {
			log.Fatalf("pool: %v", err)
		}
		defer pool.Close()
		if batch > 1 {
			// Pre-compile every batch size the dispatcher can form, so
			// steady-state QPS excludes the one-time plan compiles.
			warm := make([]int, 0, batch-1)
			for n := 2; n <= batch; n++ {
				warm = append(warm, n)
			}
			t0 := time.Now()
			if err := pool.WarmBatches(warm...); err != nil {
				log.Fatalf("warm batch plans: %v", err)
			}
			log.Printf("batching: max batch %d, linger %v, %d batch plans compiled in %v",
				batch, linger, len(warm), time.Since(t0).Round(time.Millisecond))
		}
		if faultCfg != nil {
			log.Printf("fault soak: rate=%.2f seed=%d hang=%v, pool %d sessions, queue depth %d",
				faultCfg.Rate, faultCfg.Seed, faultCfg.HangLatency, poolSessions, streams)
		}
	}

	sessions := make([]*unigpu.Session, streams)
	inputs := make([]*unigpu.Tensor, streams)
	rng := rand.New(rand.NewSource(1))
	for i := range sessions {
		in := unigpu.NewTensor(cm.InputShape()...)
		d := in.Data()
		for j := range d {
			d[j] = rng.Float32()
		}
		inputs[i] = in
		if pool != nil {
			continue
		}
		if sessions[i], err = cm.NewSessionWith(opts); err != nil {
			log.Fatalf("session: %v", err)
		}
		if _, err := sessions[i].Run(in); err != nil { // warm-up
			log.Fatalf("warm-up run: %v", err)
		}
	}

	lat := make([][]time.Duration, streams)
	shed := make([]int, streams)
	var wg sync.WaitGroup
	wg.Add(streams)
	start := time.Now()
	for i := 0; i < streams; i++ {
		go func(i int) {
			defer wg.Done()
			lat[i] = make([]time.Duration, 0, requests)
			for r := 0; r < requests; r++ {
				if ctx.Err() != nil {
					return
				}
				t0 := time.Now()
				if pool != nil {
					_, err = pool.Run(ctx, inputs[i])
				} else {
					_, err = sessions[i].RunContext(ctx, inputs[i])
				}
				switch {
				case err == nil:
					lat[i] = append(lat[i], time.Since(t0))
				case err == unigpu.ErrOverloaded:
					shed[i]++
				case ctx.Err() != nil:
					return
				default:
					log.Fatalf("client %d: %v", i, err)
				}
			}
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)

	var all []time.Duration
	totalShed := 0
	for i, l := range lat {
		all = append(all, l...)
		totalShed += shed[i]
	}
	if len(all) == 0 {
		log.Fatal("no requests completed")
	}
	sort.Slice(all, func(a, b int) bool { return all[a] < all[b] })
	pct := func(p float64) time.Duration { return all[int(p*float64(len(all)-1))] }
	rep := servingReport{
		Model: model, Size: size, Streams: streams, Workers: workers, GPUStreams: gpuStreams,
		PlanNodes: plan.NumNodes(), ArenaBytes: plan.ArenaBytes(),
		Completed: len(all), WallMs: float64(wall.Microseconds()) / 1e3,
		QPS:   float64(len(all)) / wall.Seconds(),
		P50Us: float64(pct(0.50).Nanoseconds()) / 1e3,
		P99Us: float64(pct(0.99).Nanoseconds()) / 1e3,
		Shed:  totalShed,
	}
	fmt.Printf("streams=%d workers=%d gpu-streams=%d: %d requests in %v\n",
		streams, workers, gpuStreams, len(all), wall.Round(time.Millisecond))
	fmt.Printf("  throughput %.1f req/s, latency p50 %v p99 %v\n",
		rep.QPS, pct(0.50).Round(time.Microsecond), pct(0.99).Round(time.Microsecond))
	if batch > 1 {
		reg := obs.DefaultRegistry
		h := reg.Histogram("batch.size." + model)
		rep.Batch = batch
		rep.LingerUs = float64(linger.Microseconds())
		rep.BatchesFormed = reg.Counter("batch.formed." + model).Value()
		rep.BatchesDegr = reg.Counter("batch.degraded." + model).Value()
		if n := h.Count(); n > 0 {
			rep.MeanBatch = h.Sum() / float64(n)
			rep.BatchP50 = h.Quantile(0.50)
			rep.BatchP99 = h.Quantile(0.99)
		}
		fmt.Printf("  batching: %d batches (mean size %.1f, p50 %.0f, p99 %.0f), %d degraded to per-request\n",
			rep.BatchesFormed, rep.MeanBatch, rep.BatchP50, rep.BatchP99, rep.BatchesDegr)
	}
	if inj != nil {
		reg := obs.DefaultRegistry
		rep.Faults = inj.Counts()
		rep.Retries = reg.Counter("fault.retries").Value()
		rep.CPUReexec = reg.Counter("fault.cpu_reexec").Value()
		rep.AdmissionShed = reg.Counter("admission.shed").Value()
		rep.Breaker = pool.Breaker().State().String()
		fmt.Printf("  degraded mode: %d faults injected", inj.Total())
		for _, k := range sim.AllFaultKinds {
			if n := inj.Injected(k); n > 0 {
				fmt.Printf(" %s=%d", k, n)
			}
		}
		fmt.Printf("\n  retries %d, cpu re-exec %d, shed %d, breaker %v\n",
			rep.Retries, rep.CPUReexec, totalShed, pool.Breaker().State())
		rep.SLO = unigpu.SLOReport()
		for _, line := range strings.Split(strings.TrimRight(obs.FormatSLO(rep.SLO), "\n"), "\n") {
			if line != "" {
				fmt.Println("  " + line)
			}
		}
	}
	if profile {
		snap := unigpu.Profile()
		rep.Profile = &snap
		fmt.Print(obs.FormatProfile(snap))
	}
	if jsonPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Fatalf("marshal serving report: %v", err)
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			log.Fatalf("write serving report: %v", err)
		}
		log.Printf("serving report written to %s", jsonPath)
	}
}

// faultsTable prints the healthy-vs-degraded wall-clock table per zoo
// model: the degraded column quarantines the GPU (scripted device loss
// opens the circuit breaker on the first node) so every GPU-placed node
// re-executes on the CPU lane with the same bit-identical kernels. This
// is the source of the EXPERIMENTS.md fault-tolerance table. Inputs are
// shrunk so the table regenerates in seconds.
func faultsTable(ctx context.Context) {
	sizes := []struct {
		name string
		size int
	}{
		{"ResNet50_v1", 96}, {"MobileNet1.0", 96}, {"SqueezeNet1.0", 96},
		{"SSD_MobileNet1.0", 128}, {"SSD_ResNet50", 128}, {"Yolov3", 96},
	}
	run := func(s *runtime.Session, feeds map[string]*tensor.Tensor) (float64, []*tensor.Tensor) {
		outs, err := s.Run(feeds) // warm-up (and, degraded, opens the breaker)
		if err != nil {
			log.Fatalf("run: %v", err)
		}
		best := 0.0
		for rep := 0; rep < 3; rep++ {
			t0 := time.Now()
			if outs, err = s.Run(feeds); err != nil {
				log.Fatalf("run: %v", err)
			}
			if ms := float64(time.Since(t0).Microseconds()) / 1e3; rep == 0 || ms < best {
				best = ms
			}
		}
		return best, outs
	}
	fmt.Println("Fault tolerance: healthy vs degraded (GPU quarantined, CPU re-execution)")
	fmt.Printf("%-18s %6s %12s %14s %9s  %s\n", "model", "size", "healthy ms", "quarantined ms", "overhead", "bit-identical")
	for _, mc := range sizes {
		if ctx.Err() != nil {
			log.Print("interrupted")
			return
		}
		in := buildModelPlanInput(mc.name, mc.size)
		plan, err := runtime.NewPlan(in.graph)
		if err != nil {
			log.Fatalf("plan: %v", err)
		}
		healthyMs, healthyOut := run(plan.NewSession(), in.feeds)

		inj := sim.NewFaultInjector(sim.FaultConfig{}).Script(sim.FaultDeviceLost)
		br := runtime.NewBreaker(runtime.BreakerOptions{Threshold: 1, Probation: time.Hour})
		degradedMs, degradedOut := run(plan.NewSessionWith(runtime.SessionOptions{
			Faults: inj, Breaker: br, RetryBackoff: 10 * time.Microsecond,
		}), in.feeds)

		identical := len(healthyOut) == len(degradedOut)
		for k := 0; identical && k < len(healthyOut); k++ {
			h, d := healthyOut[k].Data(), degradedOut[k].Data()
			identical = len(h) == len(d)
			for j := 0; identical && j < len(h); j++ {
				identical = h[j] == d[j]
			}
		}
		fmt.Printf("%-18s %6d %12.2f %14.2f %8.1f%%  %v\n",
			mc.name, mc.size, healthyMs, degradedMs, 100*(degradedMs-healthyMs)/healthyMs, identical)
	}
}

type fleetPhaseReport struct {
	Phase     string  `json:"phase"`
	Completed int     `json:"requests_completed"`
	WallMs    float64 `json:"wall_ms"`
	QPS       float64 `json:"qps"`
	P50Us     float64 `json:"p50_us"`
	P99Us     float64 `json:"p99_us"`
}

type fleetReplicaReport struct {
	Name       string  `json:"name"`
	State      string  `json:"state"`
	Weight     float64 `json:"weight"`
	EstimateMs float64 `json:"estimate_ms"`
	Served     int64   `json:"served"`
	Share      float64 `json:"share"`
	P50Ms      float64 `json:"p50_ms"`
	P99Ms      float64 `json:"p99_ms"`
	Breaker    string  `json:"breaker"`
	DeviceLost bool    `json:"device_lost"`
}

type fleetReport struct {
	Model        string               `json:"model"`
	Size         int                  `json:"size"`
	Clients      int                  `json:"clients"`
	Requests     int                  `json:"requests_per_client"`
	Completed    int                  `json:"requests_completed"`
	Failed       int                  `json:"requests_failed"`
	WallMs       float64              `json:"wall_ms"`
	QPS          float64              `json:"qps"`
	BitIdentity  bool                 `json:"bit_identical"`
	Killed       string               `json:"killed,omitempty"`
	Healed       bool                 `json:"healed,omitempty"`
	HealedServed int64                `json:"healed_served,omitempty"`
	Phases       []fleetPhaseReport   `json:"phases,omitempty"`
	Replicas     []fleetReplicaReport `json:"replicas"`
	Failovers    int64                `json:"failovers"`
	Quarantines  int64                `json:"quarantines"`
	Heals        int64                `json:"heals"`
	Probes       int64                `json:"probes"`
}

// fleetServe soaks the multi-device fleet: one model compiled once per
// paper platform, N clients routed by predicted latency x load x health
// weight. With a kill script (-fleet-kill >= 0) the victim's device is
// lost a third of the way through the run and -fleet-heal resets and
// re-ramps it at two thirds, so the report splits into healthy / one
// device lost / heal-ramp phases — the source of the EXPERIMENTS.md
// fleet table. Every output is compared against a single-device reference
// execution; any divergence fails the run.
func fleetServe(ctx context.Context, model string, size int, dtype string, clients, requests, killIdx int, doHeal bool, jsonPath string) {
	eng := unigpu.NewEngine()
	t0 := time.Now()
	fleet, err := eng.NewFleet(model, unigpu.CompileOptions{InputSize: size, SkipTuning: true, DType: dtype}, unigpu.FleetOptions{
		Sessions:   2,
		QueueDepth: 2 * clients,
		Heal:       unigpu.HealPolicy{ProbeAfter: -1}, // heals are scripted below
		// Deterministic oracle routing: placements reproduce run to run,
		// and the healed replica (cheapest oracle) demonstrably ramps back
		// into the serving mix instead of hiding behind converged EWMAs.
		Router: unigpu.RouterOptions{EWMAAlpha: -1},
	})
	if err != nil {
		log.Fatalf("fleet: %v", err)
	}
	defer fleet.Close()
	log.Printf("fleet: %s size=%d, %d replicas compiled in %v", model, size, fleet.Len(), time.Since(t0).Round(time.Millisecond))
	for i := 0; i < fleet.Len(); i++ {
		log.Printf("  %-20s oracle %.2f ms", fleet.Name(i), fleet.Model(i).PredictedLatencyMs)
	}
	if killIdx >= fleet.Len() {
		log.Fatalf("-fleet-kill %d: fleet has %d replicas", killIdx, fleet.Len())
	}

	in := unigpu.NewTensor(fleet.Model(0).InputShape()...)
	rng := rand.New(rand.NewSource(1))
	d := in.Data()
	for j := range d {
		d[j] = rng.Float32()
	}
	ref, err := fleet.Model(0).Run(in) // single-device reference execution
	if err != nil {
		log.Fatalf("reference run: %v", err)
	}
	identical := func(got *tensor.Tensor) bool {
		if got == nil || !got.Shape().Equal(ref.Shape()) {
			return false
		}
		rd, gd := ref.Data(), got.Data()
		for i := range rd {
			if math.Float32bits(rd[i]) != math.Float32bits(gd[i]) {
				return false
			}
		}
		return true
	}

	total := clients * requests
	killAt, healAt := int64(total/3), int64(2*total/3)
	phaseNames := []string{"healthy", "one device lost", "heal ramp"}
	var (
		seq, phase         atomic.Int64
		mismatch, failures atomic.Int64
		servedAtHeal       atomic.Int64
		killOnce, healOnce sync.Once
	)
	phaseStart := make([]time.Time, 3)
	type sample struct {
		phase int
		d     time.Duration
	}
	lat := make([][]sample, clients)

	var wg sync.WaitGroup
	wg.Add(clients)
	start := time.Now()
	phaseStart[0] = start
	for c := 0; c < clients; c++ {
		go func(c int) {
			defer wg.Done()
			lat[c] = make([]sample, 0, requests)
			for r := 0; r < requests; r++ {
				if ctx.Err() != nil {
					return
				}
				n := seq.Add(1)
				if killIdx >= 0 && n >= killAt {
					killOnce.Do(func() {
						log.Printf("kill script: losing %s at request %d/%d", fleet.Name(killIdx), n, total)
						fleet.Kill(killIdx)
						phaseStart[1] = time.Now()
						phase.Store(1)
					})
				}
				if killIdx >= 0 && doHeal && n >= healAt {
					healOnce.Do(func() {
						for try := 0; try < 20; try++ {
							if fleet.HealNow(killIdx) {
								log.Printf("heal script: %s probed healthy at request %d/%d, ramping back in", fleet.Name(killIdx), n, total)
								servedAtHeal.Store(fleet.Served(killIdx))
								phaseStart[2] = time.Now()
								phase.Store(2)
								return
							}
							time.Sleep(5 * time.Millisecond)
						}
						log.Printf("heal script: %s did not recover after 20 probes", fleet.Name(killIdx))
					})
				}
				p := int(phase.Load())
				rt0 := time.Now()
				out, err := fleet.Run(ctx, in)
				switch {
				case err == nil:
					lat[c] = append(lat[c], sample{p, time.Since(rt0)})
					if !identical(out) {
						mismatch.Add(1)
					}
				case ctx.Err() != nil:
					return
				default:
					failures.Add(1)
					log.Printf("client %d: %v", c, err)
				}
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)

	var all []time.Duration
	byPhase := make([][]time.Duration, 3)
	for _, l := range lat {
		for _, s := range l {
			all = append(all, s.d)
			byPhase[s.phase] = append(byPhase[s.phase], s.d)
		}
	}
	if len(all) == 0 {
		log.Fatal("no requests completed")
	}
	sort.Slice(all, func(a, b int) bool { return all[a] < all[b] })
	pctOf := func(ds []time.Duration, p float64) time.Duration {
		return ds[int(p*float64(len(ds)-1))]
	}

	rep := fleetReport{
		Model: model, Size: size, Clients: clients, Requests: requests,
		Completed: len(all), Failed: int(failures.Load()),
		WallMs:      float64(wall.Microseconds()) / 1e3,
		QPS:         float64(len(all)) / wall.Seconds(),
		BitIdentity: mismatch.Load() == 0,
	}
	if killIdx >= 0 {
		rep.Killed = fleet.Name(killIdx)
		rep.Healed = doHeal && fleet.State(killIdx) != unigpu.ReplicaQuarantined
		if rep.Healed {
			rep.HealedServed = fleet.Served(killIdx) - servedAtHeal.Load()
		}
	}
	fmt.Printf("fleet: %d clients x %d requests: %d completed, %d failed in %v (%.1f req/s overall)\n",
		clients, requests, rep.Completed, rep.Failed, wall.Round(time.Millisecond), rep.QPS)
	fmt.Printf("  bit-identical to single-device reference: %v (%d requests checked)\n",
		rep.BitIdentity, rep.Completed)

	if killIdx >= 0 {
		fmt.Printf("\n  %-16s %9s %9s %12s %12s\n", "phase", "requests", "qps", "p50", "p99")
		ends := []time.Time{phaseStart[1], phaseStart[2], start.Add(wall)}
		for p, ds := range byPhase {
			if len(ds) == 0 || phaseStart[p].IsZero() {
				continue
			}
			end := ends[p]
			if end.IsZero() {
				end = start.Add(wall)
			}
			pw := end.Sub(phaseStart[p])
			sort.Slice(ds, func(a, b int) bool { return ds[a] < ds[b] })
			pr := fleetPhaseReport{
				Phase: phaseNames[p], Completed: len(ds),
				WallMs: float64(pw.Microseconds()) / 1e3,
				QPS:    float64(len(ds)) / pw.Seconds(),
				P50Us:  float64(pctOf(ds, 0.50).Nanoseconds()) / 1e3,
				P99Us:  float64(pctOf(ds, 0.99).Nanoseconds()) / 1e3,
			}
			rep.Phases = append(rep.Phases, pr)
			fmt.Printf("  %-16s %9d %9.1f %12v %12v\n", pr.Phase, pr.Completed, pr.QPS,
				pctOf(ds, 0.50).Round(time.Microsecond), pctOf(ds, 0.99).Round(time.Microsecond))
		}
	}

	fmt.Printf("\n  %-20s %-12s %6s %9s %8s %7s %10s %10s %-9s\n",
		"replica", "state", "weight", "est ms", "served", "share", "p50 ms", "p99 ms", "breaker")
	for _, st := range fleet.Stats() {
		rr := fleetReplicaReport{
			Name: st.Name, State: st.State.String(), Weight: st.Weight,
			EstimateMs: st.EstimateMs, Served: st.Served,
			Share: 100 * float64(st.Served) / float64(len(all)),
			P50Ms: st.P50Ms, P99Ms: st.P99Ms,
			Breaker: st.Breaker.String(), DeviceLost: st.DeviceLost,
		}
		rep.Replicas = append(rep.Replicas, rr)
		lost := ""
		if st.DeviceLost {
			lost = " (device lost)"
		}
		fmt.Printf("  %-20s %-12s %6.2f %9.2f %8d %6.1f%% %10.3f %10.3f %-9s%s\n",
			rr.Name, rr.State, rr.Weight, rr.EstimateMs, rr.Served, rr.Share, rr.P50Ms, rr.P99Ms, rr.Breaker, lost)
	}

	reg := obs.DefaultRegistry
	rep.Failovers = reg.Counter("fleet.failover").Value()
	rep.Quarantines = reg.Counter("fleet.quarantines").Value()
	rep.Heals = reg.Counter("fleet.heals").Value()
	rep.Probes = reg.Counter("fleet.probes").Value()
	fmt.Printf("\n  failovers %d, quarantines %d, heals %d, probes %d\n",
		rep.Failovers, rep.Quarantines, rep.Heals, rep.Probes)
	if rep.Healed {
		fmt.Printf("  healed %s served %d requests after ramp-in\n", rep.Killed, rep.HealedServed)
	}
	if !rep.BitIdentity {
		log.Fatalf("fleet soak: %d outputs diverged from the single-device reference", mismatch.Load())
	}
	if rep.Failed > 0 {
		log.Fatalf("fleet soak: %d requests failed", rep.Failed)
	}

	if jsonPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Fatalf("marshal fleet report: %v", err)
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			log.Fatalf("write fleet report: %v", err)
		}
		log.Printf("fleet report written to %s", jsonPath)
	}
}
