// Command unigpu-bench regenerates the paper's tables and figures.
package main

import (
	"flag"
	"fmt"
	"log"

	"unigpu/internal/autotvm"
	"unigpu/internal/bench"
	"unigpu/internal/obs"
)

func main() {
	log.SetFlags(0)
	table := flag.String("table", "all", "which artifact to regenerate: 1,2,3,4,5,fallback,figure2,figure3,irsize,experiments,all")
	jsonPath := flag.String("json", "", "also write Tables 1-3 results as machine-readable JSON to this file")
	dbPath := flag.String("db", "", "tuning-records database path (warm DB skips the schedule searches)")
	jobs := flag.Int("jobs", 0, "parallel tuning workers (0 = GOMAXPROCS)")
	trace := flag.String("trace", "", "write a Chrome trace-event JSON file (chrome://tracing, Perfetto)")
	metrics := flag.Bool("metrics", false, "print the metrics dump after the run")
	flag.Parse()

	if *trace != "" || *metrics {
		obs.Enable()
	}
	e := bench.NewEstimator()
	e.Jobs = *jobs
	if *dbPath != "" {
		db, err := autotvm.OpenDB(*dbPath)
		if err != nil {
			log.Fatalf("open db: %v", err)
		}
		e.DB = db
		defer func() {
			if err := db.Save(); err != nil {
				log.Fatalf("save db: %v", err)
			}
			log.Printf("tuning database %s holds %d records", *dbPath, db.Len())
		}()
	}
	defer func() {
		if *jsonPath != "" {
			if err := bench.WritePerfJSONFile(*jsonPath, e.PerfRecords()); err != nil {
				log.Fatalf("write json: %v", err)
			}
			log.Printf("perf records written to %s", *jsonPath)
		}
		if *trace != "" {
			if err := obs.WriteChromeTraceFile(*trace); err != nil {
				log.Fatalf("write trace: %v", err)
			}
			log.Printf("trace written to %s (%d spans)", *trace, len(obs.Records()))
		}
		if *metrics {
			fmt.Print(obs.DumpMetrics())
		}
	}()
	switch *table {
	case "experiments":
		fmt.Print(e.ExperimentsReport())
		return
	case "figure2":
		fmt.Print(bench.Figure2Demo())
		return
	case "figure3":
		fmt.Print(bench.Figure3Demo())
		return
	case "irsize":
		irL, cuL, clL := bench.IRSizeExperiment()
		fmt.Printf("vision pipeline in unified IR: %d lines -> %d CUDA + %d OpenCL lines\n", irL, cuL, clL)
		return
	}
	switch *table {
	case "1", "2", "3":
		n := int((*table)[0] - '0')
		fmt.Print(e.OverallTable(n).Format())
	case "4":
		fmt.Print(bench.FormatAblation("Table 4: vision-specific operator optimizations", e.VisionAblation()))
	case "5":
		fmt.Print(bench.FormatAblation("Table 5: tuning-based conv optimizations", e.TuningAblation()))
	case "fallback":
		r := e.FallbackExperiment()
		fmt.Printf("all-GPU %.2f ms, NMS fallback %.2f ms, overhead %.2f%%\n", r.AllGPUMs, r.FallbackMs, r.OverheadPct)
	default:
		for n := 1; n <= 3; n++ {
			fmt.Print(e.OverallTable(n).Format())
			fmt.Println()
		}
		fmt.Print(bench.FormatAblation("Table 4", e.VisionAblation()))
		fmt.Println()
		fmt.Print(bench.FormatAblation("Table 5", e.TuningAblation()))
		r := e.FallbackExperiment()
		fmt.Printf("\nFallback: all-GPU %.2f ms, fallback %.2f ms, overhead %.2f%%\n", r.AllGPUMs, r.FallbackMs, r.OverheadPct)
	}
}
