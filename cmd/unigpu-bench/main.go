// Command unigpu-bench regenerates the paper's tables and figures.
package main

import (
	"flag"
	"fmt"

	"unigpu/internal/bench"
)

func main() {
	table := flag.String("table", "all", "which artifact to regenerate: 1,2,3,4,5,fallback,figure2,figure3,irsize,experiments,all")
	flag.Parse()
	e := bench.NewEstimator()
	switch *table {
	case "experiments":
		fmt.Print(e.ExperimentsReport())
		return
	case "figure2":
		fmt.Print(bench.Figure2Demo())
		return
	case "figure3":
		fmt.Print(bench.Figure3Demo())
		return
	case "irsize":
		irL, cuL, clL := bench.IRSizeExperiment()
		fmt.Printf("vision pipeline in unified IR: %d lines -> %d CUDA + %d OpenCL lines\n", irL, cuL, clL)
		return
	}
	switch *table {
	case "1", "2", "3":
		n := int((*table)[0] - '0')
		fmt.Print(e.OverallTable(n).Format())
	case "4":
		fmt.Print(bench.FormatAblation("Table 4: vision-specific operator optimizations", e.VisionAblation()))
	case "5":
		fmt.Print(bench.FormatAblation("Table 5: tuning-based conv optimizations", e.TuningAblation()))
	case "fallback":
		r := e.FallbackExperiment()
		fmt.Printf("all-GPU %.2f ms, NMS fallback %.2f ms, overhead %.2f%%\n", r.AllGPUMs, r.FallbackMs, r.OverheadPct)
	default:
		for n := 1; n <= 3; n++ {
			fmt.Print(e.OverallTable(n).Format())
			fmt.Println()
		}
		fmt.Print(bench.FormatAblation("Table 4", e.VisionAblation()))
		fmt.Println()
		fmt.Print(bench.FormatAblation("Table 5", e.TuningAblation()))
		r := e.FallbackExperiment()
		fmt.Printf("\nFallback: all-GPU %.2f ms, fallback %.2f ms, overhead %.2f%%\n", r.AllGPUMs, r.FallbackMs, r.OverheadPct)
	}
}
