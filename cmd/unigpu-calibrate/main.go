// Command probe is a development calibration tool: it fits the vendor
// baseline class efficiencies to the paper's published baseline latencies.
package main

import (
	"fmt"

	"unigpu/internal/baselines"
	"unigpu/internal/bench"
	"unigpu/internal/sim"
)

type target struct {
	model string
	ms    float64
}

func main() {
	e := bench.NewEstimator()
	fit := func(p *sim.Platform, targets []target) {
		type decomp struct {
			flops [6]float64
			bytes [6]float64
			vis   float64
			want  float64
			name  string
		}
		var ds []decomp
		for _, t := range targets {
			m := e.Model(t.model, p)
			var d decomp
			d.want = t.ms
			d.name = t.model
			for _, w := range m.Convs {
				c := baselines.Classify(w)
				d.flops[c] += w.FLOPs()
				d.bytes[c] += w.Bytes()
			}
			d.vis = baselines.ForPlatform(p).VisionMs(m)
			ds = append(ds, d)
		}
		eval := func(eff [6]float64, d decomp) float64 {
			ms := d.vis
			for c := 0; c < 6; c++ {
				if d.flops[c] > 0 {
					ms += d.flops[c] / (p.GPU.PeakGFLOPs * 1e9 * p.GPU.BaseEfficiency * eff[c]) * 1e3
				}
			}
			return ms
		}
		cost := func(eff [6]float64) float64 {
			var err float64
			for _, d := range ds {
				r := eval(eff, d) / d.want
				if r < 1 {
					r = 1 / r
				}
				w := 1.0
				if d.name == "ResNet50_v1" {
					w = 4.0 // the headline comparison model
				}
				err += w * (r - 1) * (r - 1)
			}
			return err
		}
		eff := [6]float64{1, 1, 1, 1, 1, 1}
		for iter := 0; iter < 300; iter++ {
			for c := 0; c < 6; c++ {
				best, bestE := cost(eff), eff[c]
				for _, scale := range []float64{0.8, 0.9, 0.97, 1.03, 1.1, 1.25} {
					trial := eff
					trial[c] = eff[c] * scale
					if trial[c] < 0.05 || trial[c] > 6 {
						continue
					}
					if v := cost(trial); v < best {
						best, bestE = v, trial[c]
					}
				}
				eff[c] = bestE
			}
		}
		fmt.Printf("%s: eff = Conv3x3:%.3f Conv3x3Big:%.3f Conv1x1:%.3f ConvLarge:%.3f Depthwise:%.3f DenseFC:%.3f (err %.4f)\n",
			p.Name, eff[0], eff[1], eff[2], eff[3], eff[4], eff[5], cost(eff))
		for _, d := range ds {
			fmt.Printf("  %-18s want %8.1f got %8.1f (vis %.1f)\n", d.name, d.want, eval(eff, d), d.vis)
		}
	}

	fit(sim.DeepLens, []target{
		{"ResNet50_v1", 203.60}, {"MobileNet1.0", 53.48}, {"SqueezeNet1.0", 42.01},
	})
	fit(sim.AiSage, []target{
		{"ResNet50_v1", 358.17}, {"MobileNet1.0", 95.00}, {"SqueezeNet1.0", 77.10},
		{"SSD_MobileNet1.0", 216.87}, {"SSD_ResNet50", 737.90}, {"Yolov3", 1042.90},
	})
	fit(sim.JetsonNano, []target{
		{"ResNet50_v1", 117.22}, {"MobileNet1.0", 30.71}, {"SqueezeNet1.0", 42.98},
		{"SSD_MobileNet1.0", 197.3}, {"SSD_ResNet50", 478.33}, {"Yolov3", 802.41},
	})
	compose(e, "SSD_ResNet50", sim.JetsonNano)
	compose(e, "Yolov3", sim.JetsonNano)
}
