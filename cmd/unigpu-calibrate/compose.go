package main

import (
	"fmt"
	"sort"

	"unigpu/internal/bench"
	"unigpu/internal/sim"
)

// compose breaks a model's predicted latency into components and prints
// the most expensive tuned kernels.
func compose(e *bench.Estimator, name string, p *sim.Platform) {
	m := e.Model(name, p)
	plan := e.TunedConvMs(m, p.GPU)
	other := e.OtherOpsMs(m, p.GPU)
	vis := bench.OptimizedVisionMs(m.Vision, p.GPU)
	fmt.Printf("%s on %s: conv %.1f (kernel %.1f + transform %.1f) other %.1f vision %.1f\n",
		name, p.Name, plan.TotalMs, plan.KernelMs, plan.TransformMs, other, vis)
	type kv struct {
		k  string
		ms float64
	}
	agg := map[string]float64{}
	for i, c := range plan.Choices {
		agg[m.Convs[i].Key()+" "+c.Config.String()] += c.KernelMs
	}
	var list []kv
	for k, v := range agg {
		list = append(list, kv{k, v})
	}
	sort.Slice(list, func(i, j int) bool { return list[i].ms > list[j].ms })
	for i := 0; i < 8 && i < len(list); i++ {
		fmt.Printf("   %7.1f ms  %s\n", list[i].ms, list[i].k)
	}
}
