// Command unigpu-run compiles a model for a platform, runs one functional
// inference on synthetic input, and reports the predicted device latency
// with its breakdown plus the top output rows.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	"unigpu"
	"unigpu/internal/obs"
)

func main() {
	log.SetFlags(0)
	// Ctrl-C cancels the in-flight inference between node dispatches
	// instead of killing the process mid-run; a second Ctrl-C force-quits.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	model := flag.String("model", "SqueezeNet1.0", "model name (see -list)")
	device := flag.String("device", "nano", "deeplens | aisage | nano")
	size := flag.Int("size", 0, "square input size (0 = model default; small sizes run faster functionally)")
	fallback := flag.Bool("fallback-nms", false, "place NMS on the companion CPU (§3.1.2)")
	untuned := flag.Bool("untuned", false, "skip schedule tuning (Table 5's Before)")
	dtype := flag.String("dtype", "fp32", "storage/compute precision: fp32 | fp16 | int8 | auto")
	dbPath := flag.String("db", "", "tuning-records database path (warm DB skips the schedule search)")
	jobs := flag.Int("jobs", 0, "parallel tuning workers (0 = GOMAXPROCS)")
	list := flag.Bool("list", false, "list models and platforms")
	trace := flag.String("trace", "", "write a Chrome trace-event JSON file (chrome://tracing, Perfetto)")
	metrics := flag.Bool("metrics", false, "print the metrics dump after the run")
	listen := flag.String("listen", "", "serve live telemetry on this address for the run's duration (/metrics, /healthz, /debug/plans)")
	flag.Parse()

	if *trace != "" || *metrics {
		obs.Enable()
	}
	if *listen != "" {
		srv, err := unigpu.ServeTelemetry(*listen)
		if err != nil {
			log.Fatalf("telemetry listen: %v", err)
		}
		defer srv.Close()
		log.Printf("telemetry on http://%s/metrics", srv.Addr())
	}

	if *list {
		fmt.Println("models:", unigpu.ModelNames())
		for _, p := range unigpu.Platforms() {
			fmt.Printf("platform: %-20s GPU=%s CPU=%s\n", p.Name, p.GPU.Name, p.CPU.Name)
		}
		return
	}

	var platform *unigpu.Platform
	switch *device {
	case "deeplens":
		platform = unigpu.DeepLens
	case "aisage":
		platform = unigpu.AiSage
	case "nano":
		platform = unigpu.JetsonNano
	default:
		log.Fatalf("unknown device %q", *device)
	}

	var db *unigpu.TuningDB
	if *dbPath != "" {
		var err error
		db, err = unigpu.OpenTuningDB(*dbPath)
		if err != nil {
			log.Fatalf("open db: %v", err)
		}
	}
	eng := unigpu.NewEngineWith(unigpu.EngineOptions{DB: db, Jobs: *jobs})
	start := time.Now()
	cm, err := eng.Compile(*model, platform, unigpu.CompileOptions{
		InputSize:   *size,
		FallbackNMS: *fallback,
		SkipTuning:  *untuned,
		DType:       *dtype,
	})
	if err != nil {
		log.Fatal(err)
	}
	if db != nil {
		if err := eng.SaveTuning(); err != nil {
			log.Fatalf("save db: %v", err)
		}
		fmt.Printf("tuning database %s holds %d records\n", *dbPath, db.Len())
	}
	fmt.Printf("compiled %s for %s in %v\n", cm.Name, platform.Name, time.Since(start).Round(time.Millisecond))
	fmt.Printf("predicted latency: %.2f ms (conv %.2f + layout %.2f + vision %.2f + elementwise)\n",
		cm.PredictedLatencyMs, cm.ConvKernelMs, cm.TransformMs, cm.VisionMs)
	stats := cm.GraphStats()
	fmt.Printf("graph: %d ops (%d conv), %d on CPU, %d device copies\n",
		stats.Ops, stats.Convs, stats.OnCPU, stats.Copies)
	if cm.DType != "fp32" {
		fmt.Printf("precision %s: %d fp16 carriers, %d fp16 convs, %d int8 convs, %d casts inserted (%d fused away)\n",
			cm.DType, cm.Quant.FP16Nodes, cm.Quant.FP16Convs, cm.Quant.INT8Convs,
			cm.Quant.CastsInserted, cm.Quant.CastsFused)
	}

	in := unigpu.NewTensor(cm.InputShape()...)
	in.FillRandom(42)
	start = time.Now()
	out, err := cm.RunContext(ctx, in)
	if errors.Is(err, context.Canceled) {
		log.Fatal("interrupted: inference cancelled")
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("functional inference on host: %v, output %v\n", time.Since(start).Round(time.Millisecond), out.Shape())

	if out.Rank() == 3 { // detections
		fmt.Println("top detections [class score x1 y1 x2 y2]:")
		for i := 0; i < 5 && i < out.Shape()[1]; i++ {
			if out.At(0, i, 0) < 0 {
				break
			}
			fmt.Printf("  %3.0f %.3f  %7.1f %7.1f %7.1f %7.1f\n",
				out.At(0, i, 0), out.At(0, i, 1), out.At(0, i, 2), out.At(0, i, 3), out.At(0, i, 4), out.At(0, i, 5))
		}
	} else {
		best, bestP := 0, float32(0)
		for c := 0; c < out.Shape()[1]; c++ {
			if p := out.At(0, c); p > bestP {
				best, bestP = c, p
			}
		}
		fmt.Printf("top class: %d (p=%.4f)\n", best, bestP)
	}

	if *trace != "" {
		if err := obs.WriteChromeTraceFile(*trace); err != nil {
			log.Fatalf("write trace: %v", err)
		}
		fmt.Printf("trace written to %s (%d spans)\n", *trace, len(obs.Records()))
	}
	if *metrics {
		fmt.Print(obs.DumpMetrics())
	}
}
