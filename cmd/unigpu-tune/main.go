// Command unigpu-tune searches convolution schedules for a workload on a
// platform and maintains the tuning-records database (§3.2.3). It prints
// the winning configuration, its predicted latency, and the generated
// CUDA/OpenCL kernels.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"sync"

	"unigpu/internal/autotvm"
	"unigpu/internal/codegen"
	"unigpu/internal/graph"
	"unigpu/internal/models"
	"unigpu/internal/obs"
	"unigpu/internal/ops"
	"unigpu/internal/sim"
	"unigpu/internal/tensor"
	"unigpu/internal/templates"
)

func main() {
	log.SetFlags(0)
	// Ctrl-C stops scheduling new workloads; in-flight searches drain and
	// the tuning DB is flushed via the atomic DB.Save, so an interrupted
	// tune never loses or corrupts records. A second Ctrl-C force-quits.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	device := flag.String("device", "nano", "deeplens | aisage | nano")
	model := flag.String("model", "", "tune every conv workload of a model (e.g. ResNet50_v1)")
	budget := flag.Int("budget", 128, "measurement budget per workload")
	searcher := flag.String("search", "model", "search strategy: random | sa | model | grid")
	dbPath := flag.String("db", "tuning_records.json", "tuning-records database path")
	jobs := flag.Int("jobs", 0, "parallel tuning workers (0 = GOMAXPROCS)")
	emit := flag.Bool("emit", false, "print the generated CUDA/OpenCL for the best schedule")
	seed := flag.Int64("seed", 1, "search RNG seed")
	dtype := flag.String("dtype", "fp32",
		"also pin roofline kernel choices at this storage dtype: fp32 | fp16 | int8 | auto (auto pins all three)")
	trace := flag.String("trace", "", "write a Chrome trace-event JSON file (chrome://tracing, Perfetto)")
	metrics := flag.Bool("metrics", false, "print the metrics dump after tuning")
	listen := flag.String("listen", "", "serve live telemetry on this address for the run's duration (/metrics, /healthz, /debug/plans)")
	flag.Parse()

	if *trace != "" || *metrics {
		obs.Enable()
	}
	if *listen != "" {
		srv, err := obs.Serve(*listen)
		if err != nil {
			log.Fatalf("telemetry listen: %v", err)
		}
		defer srv.Close()
		log.Printf("telemetry on http://%s/metrics", srv.Addr())
	}

	var platform *sim.Platform
	switch *device {
	case "deeplens":
		platform = sim.DeepLens
	case "aisage":
		platform = sim.AiSage
	case "nano":
		platform = sim.JetsonNano
	default:
		log.Fatalf("unknown device %q", *device)
	}

	db, err := autotvm.OpenDB(*dbPath)
	if err != nil {
		log.Fatalf("open db: %v", err)
	}

	var workloads []ops.ConvWorkload
	if *model != "" {
		m := models.Build(*model, models.DefaultInputSize(*model), true)
		seen := map[string]bool{}
		for _, w := range m.Convs {
			if !seen[w.Key()] {
				seen[w.Key()] = true
				workloads = append(workloads, w)
			}
		}
		log.Printf("tuning %d unique conv workloads of %s on %s", len(workloads), *model, platform.Name)
	} else {
		// A representative default workload.
		workloads = []ops.ConvWorkload{{N: 1, CIn: 64, H: 56, W: 56, COut: 64,
			KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}}
	}

	search := map[string]func(autotvm.Task, autotvm.Options) autotvm.Result{
		"random": autotvm.RandomSearch,
		"sa":     autotvm.SimulatedAnnealing,
		"model":  autotvm.ModelGuidedSearch,
		"grid":   autotvm.GridSearch,
	}[*searcher]
	if search == nil {
		log.Fatalf("unknown search strategy %q", *searcher)
	}

	// Tune workloads in parallel over a bounded worker pool; results print
	// in workload order once everything has finished.
	nWorkers := *jobs
	if nWorkers <= 0 {
		nWorkers = runtime.GOMAXPROCS(0)
	}
	type outcome struct {
		res    autotvm.Result
		def    float64
		cached bool
	}
	results := make([]outcome, len(workloads))
	scheduled := make([]bool, len(workloads))
	var wg sync.WaitGroup
	sem := make(chan struct{}, nWorkers)
	for i, w := range workloads {
		if ctx.Err() != nil {
			break // interrupted: drain in-flight searches, then flush the DB
		}
		scheduled[i] = true
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, w ops.ConvWorkload) {
			defer wg.Done()
			defer func() { <-sem }()
			task := autotvm.Task{Workload: w, Device: platform.GPU}
			if cached, ok := db.Lookup(task); ok && cached.Trials >= *budget {
				results[i] = outcome{res: cached, cached: true}
				return
			}
			def := templates.CostMs(w, templates.DeviceDefaultConfig(w, platform.GPU), platform.GPU)
			res := search(task, autotvm.Options{Budget: *budget, Seed: *seed})
			results[i] = outcome{res: db.StoreBest(task, res), def: def}
		}(i, w)
	}
	wg.Wait()
	for i, w := range workloads {
		o := results[i]
		if !scheduled[i] {
			log.Printf("%-55s skipped (interrupted)", w.Key())
			continue
		}
		if o.cached {
			log.Printf("%-55s cached  %8.3f ms  %v", w.Key(), o.res.Ms, o.res.Config)
			continue
		}
		log.Printf("%-55s tuned   %8.3f ms  (default %8.3f ms, %.2fx, %d trials)  %v",
			w.Key(), o.res.Ms, o.def, o.def/o.res.Ms, o.res.Trials, o.res.Config)
		if *emit {
			k := templates.Schedule(w, o.res.Config, platform.GPU)
			fmt.Println("--- CUDA ---")
			fmt.Println(codegen.Emit(k, codegen.CUDA))
			fmt.Println("--- OpenCL ---")
			fmt.Println(codegen.Emit(k, codegen.OpenCL))
		}
	}
	// Pin per-dtype kernel-choice records for the tuned workloads so
	// later compiles at that precision resolve from the database instead
	// of re-running the cost model. Routing through SelectConvKernels on
	// a throwaway one-conv-per-workload graph reuses the exact selection
	// and no-clobber logic compiles see.
	if mode, ok := graph.ParseQuantMode(*dtype); !ok {
		log.Fatalf("unknown dtype %q (want fp32, fp16, int8, auto)", *dtype)
	} else if ctx.Err() == nil {
		var dts []tensor.DType
		switch mode {
		case graph.QuantFP16:
			dts = []tensor.DType{tensor.Float16}
		case graph.QuantINT8:
			dts = []tensor.DType{tensor.Int8}
		case graph.QuantAuto:
			dts = []tensor.DType{tensor.Float32, tensor.Float16, tensor.Int8}
		default:
			dts = []tensor.DType{tensor.Float32}
		}
		kg := graph.New()
		for i, w := range workloads {
			in := kg.Input(fmt.Sprintf("in%d", i), w.N, w.CIn, w.H, w.W)
			wt := kg.Constant(fmt.Sprintf("w%d", i),
				tensor.New(w.COut, w.CIn/max(1, w.Groups), w.KH, w.KW))
			for _, dt := range dts {
				kg.Apply(fmt.Sprintf("c%d_%s", i, dt), &graph.ConvOp{W: w, DType: dt}, in, wt)
			}
		}
		graph.SelectConvKernels(kg, graph.KernelSelection{Device: platform.GPU, DB: db})
		log.Printf("pinned kernel choices for %d workloads at %s", len(workloads), mode)
	}

	if err := db.Save(); err != nil {
		log.Fatalf("save db: %v", err)
	}
	if ctx.Err() != nil {
		log.Printf("interrupted: database %s flushed with %d records", *dbPath, db.Len())
	} else {
		log.Printf("database %s now holds %d records", *dbPath, db.Len())
	}

	if *trace != "" {
		if err := obs.WriteChromeTraceFile(*trace); err != nil {
			log.Fatalf("write trace: %v", err)
		}
		log.Printf("trace written to %s (%d spans)", *trace, len(obs.Records()))
	}
	if *metrics {
		fmt.Print(obs.DumpMetrics())
	}
}
