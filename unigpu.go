// Package unigpu is a unified optimization stack for CNN model inference
// on integrated GPUs — a from-scratch Go reproduction of Wang et al.,
// "A Unified Optimization Approach for CNN Model Inference on Integrated
// GPUs" (ICPP 2019).
//
// The stack compiles CNN models (ResNet, MobileNet, SqueezeNet, SSD,
// YOLOv3) through a unified tensor IR, searches convolution schedules with
// machine-learning-guided tuning (AutoTVM-style) plus a graph-level layout
// tuner, implements the vision-specific operators (segmented argsort,
// register-blocked prefix sum, divergence-free NMS) as GPU-shaped parallel
// algorithms, and supports falling individual operators back to the CPU.
// Because Go cannot drive Intel/Mali/Nvidia silicon, execution latency
// comes from calibrated analytical device models (see internal/sim and
// DESIGN.md), while functional results are computed exactly.
//
// Quick start:
//
//	eng := unigpu.NewEngine()
//	cm, err := eng.Compile("ResNet50_v1", unigpu.DeepLens, unigpu.CompileOptions{})
//	out, err := cm.Run(input)          // functional inference
//	ms := cm.PredictedLatencyMs        // simulated device latency
//
// Repeated inference should open a Session, which executes a compiled
// plan with pooled arena memory (zero steady-state allocations) and
// optional concurrent node dispatch:
//
//	sess, err := cm.NewSession()
//	out, err := sess.Run(input)        // out valid until the next sess.Run
package unigpu

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"unigpu/internal/autotvm"
	"unigpu/internal/bench"
	"unigpu/internal/graph"
	"unigpu/internal/models"
	"unigpu/internal/obs"
	"unigpu/internal/runtime"
	"unigpu/internal/sim"
	"unigpu/internal/tensor"
)

// Re-exported substrate types so callers outside this module can name them.
type (
	// Tensor is a dense float32 n-dimensional array.
	Tensor = tensor.Tensor
	// Platform couples an integrated GPU with its companion CPU.
	Platform = sim.Platform
	// Device is one compute device of an SoC.
	Device = sim.Device

	// FaultInjector deterministically injects simulated device failures
	// (transient kernel faults, queue hangs, device loss, memory
	// pressure) into GPU dispatches; attach one to a Device's Faults
	// field or pass it in SessionOptions.
	FaultInjector = sim.FaultInjector
	// FaultConfig parameterizes random fault injection.
	FaultConfig = sim.FaultConfig
	// Breaker is the per-device circuit breaker quarantining a failing
	// GPU (closed -> open -> half-open probe).
	Breaker = runtime.Breaker
	// NodeError is the structured failure of one graph node: the node,
	// its device, the cause, and — for recovered panics — the stack.
	NodeError = runtime.NodeError

	// TelemetryServer is a running live-telemetry listener (Prometheus
	// /metrics, /healthz, /debug/plans and friends); see ServeTelemetry.
	TelemetryServer = obs.Server
	// ProfileSnapshot is the continuous profiler's rolling top-K view of
	// where execution time goes, by (model, node, kernel kind, device).
	ProfileSnapshot = obs.ProfileSnapshot
	// RequestTrace is one sampled serving request's record: wall time
	// attributed to admission wait, queue wait, per-node execution,
	// retries/backoff and CPU re-execution, plus the node event stream.
	RequestTrace = obs.RequestTrace
	// SLOStats is one model's rolling serving health: windowed p50/p99,
	// error and shed counts, and the error-budget burn rate.
	SLOStats = obs.SLOStats
)

// ErrOverloaded is returned by SessionPool.Run when the admission
// controller sheds the request.
var ErrOverloaded = runtime.ErrOverloaded

// ErrPoolClosed is returned by SessionPool.Run for requests still queued
// (or arriving) after Close.
var ErrPoolClosed = runtime.ErrPoolClosed

// BatchOptions configures a SessionPool's batching front-end (see
// runtime.BatcherOptions): concurrent requests are coalesced — bounded by
// MaxBatch and MaxLinger — into one execution on a plan compiled for that
// batch size. PlanFor is wired automatically by NewSessionPool.
type BatchOptions = runtime.BatcherOptions

// NewFaultInjector creates a deterministic fault injector drawing random
// faults per cfg; attach it to a Device's Faults field (copy the shared
// platform first) or pass it in SessionOptions.
func NewFaultInjector(cfg FaultConfig) *FaultInjector { return sim.NewFaultInjector(cfg) }

// NewBreaker creates a closed per-device circuit breaker; zero options
// select the defaults (threshold 3, probation 250ms).
func NewBreaker(opts runtime.BreakerOptions) *Breaker { return runtime.NewBreaker(opts) }

// ServeTelemetry starts the opt-in live telemetry endpoints on addr
// (":0" picks a free port; read it back with Addr): Prometheus text at
// /metrics, liveness at /healthz (wired to breaker and pool state),
// compiled-plan metadata at /debug/plans, sampled request traces at
// /debug/requests (?format=chrome for a per-lane Chrome trace), and the
// rolling profiler at /debug/profile.
func ServeTelemetry(addr string) (*TelemetryServer, error) { return obs.Serve(addr) }

// Profile snapshots the continuous profiler all serving pools feed by
// default: the rolling top-K table of the hottest (model, node, kernel,
// device) workloads.
func Profile() ProfileSnapshot { return obs.Profile() }

// RequestTraces returns the recently retained sampled request traces,
// most recent last.
func RequestTraces() []RequestTrace { return obs.DefaultRequests.Snapshot() }

// SLOReport refreshes and returns the rolling serving-health stats for
// every model the default SLO monitor has seen.
func SLOReport() []SLOStats { return obs.DefaultSLO.Publish() }

// The three evaluation platforms of the paper (§4.1).
var (
	DeepLens   = sim.DeepLens
	AiSage     = sim.AiSage
	JetsonNano = sim.JetsonNano
)

// NewTensor allocates a zero-filled tensor.
func NewTensor(shape ...int) *Tensor { return tensor.New(shape...) }

// ModelNames lists the supported model zoo (§4.1).
func ModelNames() []string { return models.Names() }

// Platforms lists the three evaluation platforms in paper order.
func Platforms() []*Platform { return sim.Platforms() }

// TuningDB is the persistent tuning-records database of §3.2.3: tuning
// winners keyed by (device, workload), including the graph tuner's
// per-layout candidate sets, so a workload is never searched twice.
type TuningDB = autotvm.DB

// OpenTuningDB loads a tuning database from disk, creating an empty one if
// the file does not exist. A corrupt file is an error, never a silently
// empty database.
func OpenTuningDB(path string) (*TuningDB, error) { return autotvm.OpenDB(path) }

// NewTuningDB creates an in-memory tuning database; path may be empty for
// no persistence.
func NewTuningDB(path string) *TuningDB { return autotvm.NewDB(path) }

// Engine owns the tuning caches shared across compilations (the per-
// platform schedule database of §3.2.3).
type Engine struct {
	est *bench.Estimator
}

// EngineOptions configures the tuning pipeline shared by an engine's
// compilations.
type EngineOptions struct {
	// DB is an optional persistent tuning-records database: Compile
	// consults it before searching and stores winners after, so a warm
	// database makes a cold Compile near-instant. Call SaveTuning (or
	// DB.Save) to persist it.
	DB *TuningDB
	// Jobs bounds the parallel tuning worker pool (0 = GOMAXPROCS).
	Jobs int
	// Budget overrides the per-layout search budget (0 = default 48).
	Budget int
	// Seed overrides the search RNG seed (0 = default 1).
	Seed int64
}

// NewEngine creates an engine with default search budgets.
func NewEngine() *Engine { return &Engine{est: bench.NewEstimator()} }

// NewEngineWith creates an engine with an attached tuning database and
// explicit parallelism/budget settings.
func NewEngineWith(opts EngineOptions) *Engine {
	est := bench.NewEstimator()
	est.DB = opts.DB
	est.Jobs = opts.Jobs
	if opts.Budget > 0 {
		est.Budget = opts.Budget
	}
	if opts.Seed != 0 {
		est.Seed = opts.Seed
	}
	return &Engine{est: est}
}

// TuningDB returns the engine's tuning database, or nil.
func (e *Engine) TuningDB() *TuningDB { return e.est.DB }

// SaveTuning persists the engine's tuning database, if one with a backing
// path was provided.
func (e *Engine) SaveTuning() error {
	if e.est.DB == nil {
		return nil
	}
	return e.est.DB.Save()
}

// CompileOptions configures one compilation.
type CompileOptions struct {
	// InputSize overrides the model's default square input (224/512/320).
	InputSize int
	// SkipTuning compiles with the pre-tuning default schedules (the
	// "Before" configuration of Table 5).
	SkipTuning bool
	// NaiveVisionOps disables the §3.1 vision-operator optimizations (the
	// "Before" configuration of Table 4).
	NaiveVisionOps bool
	// FallbackNMS places box_nms (and its sorting) on the companion CPU
	// instead of the integrated GPU (§3.1.2).
	FallbackNMS bool
	// AllowWinograd lets the conv kernel selector pick the F(2x2,3x3)
	// Winograd algorithm where profitable. Winograd reassociates the
	// reduction, so outputs can differ from the direct kernel by float32
	// rounding (~1e-4); with it off (the default) every selected kernel is
	// bit-identical to direct and model outputs are unchanged.
	AllowWinograd bool
	// DType selects the storage/compute precision policy: "" or "fp32"
	// (default — bit-identical to the goldens), "fp16" (binary16 storage,
	// fp32 accumulation), "int8" (symmetric int8 convolutions over fp16
	// carriers), or "auto" (per-conv roofline choice among the three).
	// Non-fp32 modes run graph quantization with seeded calibration;
	// outputs always come back float32.
	DType string
}

// CompiledModel is a model optimized for one platform.
type CompiledModel struct {
	Name     string
	Platform *Platform
	// PredictedLatencyMs is the end-to-end latency on the simulated
	// device: tuned conv kernels + layout transforms + elementwise ops +
	// vision-operator pipeline (+ fallback copies when enabled).
	PredictedLatencyMs float64
	// ConvKernelMs / TransformMs / VisionMs break the prediction down.
	ConvKernelMs float64
	TransformMs  float64
	VisionMs     float64
	// NodesOnCPU counts operators placed on the companion CPU.
	NodesOnCPU int
	// CopiesInserted counts device_copy nodes from the placement pass.
	CopiesInserted int
	// ConvKernels counts the convolutions assigned to each algorithm by
	// the kernel-selection pass (keys: direct, depthwise, winograd, gemm).
	ConvKernels map[string]int
	// DType is the compiled precision policy ("fp32", "fp16", "int8",
	// "auto") and Quant what the quantization pass did (zero for fp32).
	DType string
	Quant graph.QuantizeStats

	model    *models.Model
	planOnce sync.Once
	plan     *runtime.Plan
	planErr  error

	// Batched-plan compilation state: the compile-time knobs that must be
	// replayed when rebuilding the model at batch N, and the per-batch-size
	// plan cache (singleflight via each slot's sync.Once).
	db            *TuningDB
	allowWinograd bool
	placement     graph.PlacementOptions
	quant         graph.QuantizeOptions
	batchMu       sync.Mutex
	batchPlans    map[int]*batchPlanSlot
}

type batchPlanSlot struct {
	once sync.Once
	plan *runtime.Plan
	err  error
}

// Compile builds, graph-optimizes, places, tunes and prices a model. The
// whole compilation runs under a "compile" tracing span with child spans
// per stage (graph passes, placement, schedule/layout tuning, pricing).
func (e *Engine) Compile(name string, p *Platform, opts CompileOptions) (*CompiledModel, error) {
	sp := obs.Start("compile", obs.KV("model", name), obs.KV("platform", p.Name))
	defer sp.End()
	known := false
	for _, n := range models.Names() {
		if n == name {
			known = true
			break
		}
	}
	if !known {
		return nil, fmt.Errorf("unigpu: unknown model %q (have %v)", name, models.Names())
	}
	size := opts.InputSize
	if size == 0 {
		size = models.DefaultInputSize(name)
		if p == AiSage && (name == "SSD_MobileNet1.0" || name == "SSD_ResNet50") {
			size = 300 // Mali memory limitation (§4.2)
		}
	}
	bsp := obs.Start("frontend.build", obs.KVInt("input_size", size))
	m := models.Build(name, size, false)
	bsp.End()
	graph.Optimize(m.Graph)

	cm := &CompiledModel{Name: name, Platform: p, model: m}

	// Mixed-precision lowering (before kernel selection, so the selector
	// prices and records kernels at each conv's storage dtype).
	mode, ok := graph.ParseQuantMode(opts.DType)
	if !ok {
		return nil, fmt.Errorf("unigpu: unknown dtype %q (want fp32, fp16, int8, auto)", opts.DType)
	}
	cm.quant = graph.QuantizeOptions{Mode: mode, Device: p.GPU}
	qstats, err := graph.QuantizeGraph(m.Graph, cm.quant)
	if err != nil {
		return nil, fmt.Errorf("unigpu: quantize %s: %w", name, err)
	}
	cm.DType = mode.String()
	cm.Quant = qstats

	// Per-workload conv algorithm selection: the roofline cost model picks
	// among direct / depthwise / winograd / gemm for every conv, with
	// tuning-DB kernel records taking precedence, and the runtime prepacks
	// weights for the chosen kernel at plan time.
	ksp := obs.Start("select.kernels", obs.KV("device", p.GPU.Name))
	counts := graph.SelectConvKernels(m.Graph, graph.KernelSelection{
		Device: p.GPU, DB: e.est.DB, AllowWinograd: opts.AllowWinograd,
	})
	cm.ConvKernels = make(map[string]int, len(counts))
	for k, c := range counts {
		cm.ConvKernels[k.String()] = c
	}
	ksp.End()

	// Device placement (§3.1.2): everything GPU-friendly stays on the GPU;
	// the fallback option sends NMS (and the detection decode it sorts
	// for) to the CPU.
	placement := graph.PlacementOptions{}
	if opts.FallbackNMS {
		placement.FallbackKinds = map[string]bool{"box_nms": true, "multibox_detection": true}
	}
	cm.db = e.est.DB
	cm.allowWinograd = opts.AllowWinograd
	cm.placement = placement
	cm.CopiesInserted = graph.PlaceDevices(m.Graph, placement)
	cm.NodesOnCPU = m.Graph.Summary().OnCPU

	// Latency prediction on the simulated device.
	psp := obs.Start("price", obs.KV("device", p.GPU.Name))
	var convMs, transformMs float64
	if opts.SkipTuning {
		convMs = e.est.UntunedConvMs(m, p.GPU)
	} else {
		plan := e.est.TunedConvMs(m, p.GPU)
		convMs = plan.KernelMs
		transformMs = plan.TransformMs
	}
	// Tuning searches schedules in fp32; narrowed convolutions scale the
	// tuned kernel time by the roofline dtype ratio (exactly 1 for fp32).
	convMs *= graph.DTypeConvScale(m.Graph, p.GPU)
	var visMs float64
	switch {
	case m.Vision == nil:
	case opts.FallbackNMS:
		visMs = bench.FallbackVisionMs(m.Vision, p)
	case opts.NaiveVisionOps:
		visMs = bench.NaiveVisionMs(m.Vision, p.GPU)
	default:
		visMs = bench.OptimizedVisionMs(m.Vision, p.GPU)
	}
	psp.End()
	cm.ConvKernelMs = convMs
	cm.TransformMs = transformMs
	cm.VisionMs = visMs
	cm.PredictedLatencyMs = convMs + transformMs + e.est.OtherOpsMs(m, p.GPU) + visMs
	sp.SetAttrs(obs.KVFloat("predicted_ms", cm.PredictedLatencyMs),
		obs.KVInt("copies", cm.CopiesInserted))
	return cm, nil
}

// InputShape returns the expected input tensor shape (1, 3, s, s).
func (cm *CompiledModel) InputShape() []int {
	s := cm.model.InputSize
	return []int{1, 3, s, s}
}

// Plan returns the model's compiled execution plan (topological schedule,
// dependency counts, arena-slot assignment), building it on first use. The
// plan is immutable and shared by every session of this model.
func (cm *CompiledModel) Plan() (*runtime.Plan, error) {
	cm.planOnce.Do(func() {
		cm.plan, cm.planErr = runtime.NewPlan(cm.model.Graph)
		if cm.planErr == nil {
			cm.plan.SetLabel(cm.Name + "@" + cm.Platform.Name)
		}
	})
	return cm.plan, cm.planErr
}

// PlanForBatch returns a plan compiled for a (n, 3, s, s) input, rebuilding
// the model at batch n and replaying the same kernel-selection and
// placement decisions as the original compile (same tuning DB, so a warm
// database makes the rebuild fast). Plans are cached per batch size with
// singleflight compilation; n <= 1 returns the canonical per-request plan.
// Weight seeding is batch-independent, so the batched plan computes exactly
// the same function per batch row as the per-request plan.
func (cm *CompiledModel) PlanForBatch(n int) (*runtime.Plan, error) {
	if n <= 1 {
		return cm.Plan()
	}
	cm.batchMu.Lock()
	if cm.batchPlans == nil {
		cm.batchPlans = map[int]*batchPlanSlot{}
	}
	sl, ok := cm.batchPlans[n]
	if !ok {
		sl = &batchPlanSlot{}
		cm.batchPlans[n] = sl
	}
	cm.batchMu.Unlock()
	sl.once.Do(func() {
		sp := obs.Start("compile.batch_plan", obs.KV("model", cm.Name), obs.KVInt("batch", n))
		defer sp.End()
		m := models.BuildN(cm.Name, cm.model.InputSize, n, false)
		graph.Optimize(m.Graph)
		if _, qerr := graph.QuantizeGraph(m.Graph, cm.quant); qerr != nil {
			sl.err = qerr
			return
		}
		graph.SelectConvKernels(m.Graph, graph.KernelSelection{
			Device: cm.Platform.GPU, DB: cm.db, AllowWinograd: cm.allowWinograd,
		})
		graph.PlaceDevices(m.Graph, cm.placement)
		sl.plan, sl.err = runtime.NewPlan(m.Graph)
		if sl.err == nil {
			sl.plan.SetLabel(fmt.Sprintf("%s@%s#b%d", cm.Name, cm.Platform.Name, n))
		}
	})
	return sl.plan, sl.err
}

// SessionOptions configures one inference session (see runtime.SessionOptions).
type SessionOptions = runtime.SessionOptions

// Session is a reusable inference loop over the model's compiled plan. It
// owns a preallocated arena for every intermediate tensor, so steady-state
// Run calls perform no heap allocations for intermediates. A Session is
// not safe for concurrent use; open one Session per goroutine — they share
// the plan and each costs only its arena.
type Session struct {
	sess  *runtime.Session
	feeds map[string]*tensor.Tensor
}

// NewSession opens a serial zero-allocation inference session.
func (cm *CompiledModel) NewSession() (*Session, error) {
	return cm.NewSessionWith(SessionOptions{})
}

// NewSessionWith opens a session with explicit scheduling options
// (concurrent worker pool, simulated GPU command-queue streams, profiling,
// fault tolerance). When no injector is given explicitly, the session
// picks up the one attached to the platform's GPU device, so faults
// injected at the device level reach every session automatically.
func (cm *CompiledModel) NewSessionWith(opts SessionOptions) (*Session, error) {
	plan, err := cm.Plan()
	if err != nil {
		return nil, err
	}
	if opts.Faults == nil {
		opts.Faults = cm.Platform.GPU.Faults
	}
	if opts.Model == "" {
		opts.Model = cm.Name
	}
	return &Session{
		sess:  plan.NewSessionWith(opts),
		feeds: map[string]*tensor.Tensor{},
	}, nil
}

// Run executes one inference. The returned tensor is arena-backed: it is
// valid until this session's next Run and must be copied to outlive it.
func (s *Session) Run(input *Tensor) (*Tensor, error) {
	return s.RunContext(context.Background(), input)
}

// RunContext is Run with cancellation: the context is honoured between
// node dispatches and inside the simulated GPU queue wait, and a cancelled
// run leaves the session reusable.
func (s *Session) RunContext(ctx context.Context, input *Tensor) (*Tensor, error) {
	s.feeds["data"] = input
	outs, err := s.sess.RunContext(ctx, s.feeds)
	if err != nil {
		return nil, err
	}
	return outs[0], nil
}

// PoolOptions configures a SessionPool (see runtime.PoolOptions).
type PoolOptions = runtime.PoolOptions

// SessionPool is the serving edge over one compiled model: a fixed set of
// pooled sessions behind an admission controller with a bounded wait
// queue, deadline-aware load shedding (ErrOverloaded), and — under fault
// injection — one circuit breaker shared by every pooled session.
type SessionPool struct {
	pool *runtime.SessionPool
}

// NewSessionPool opens a session pool. As with NewSessionWith, the
// platform GPU's fault injector is picked up when none is set explicitly.
func (cm *CompiledModel) NewSessionPool(opts PoolOptions) (*SessionPool, error) {
	plan, err := cm.Plan()
	if err != nil {
		return nil, err
	}
	if opts.Session.Faults == nil {
		opts.Session.Faults = cm.Platform.GPU.Faults
	}
	if opts.Session.Model == "" {
		opts.Session.Model = cm.Name
	}
	if opts.Batch != nil && opts.Batch.PlanFor == nil {
		b := *opts.Batch // don't mutate the caller's options
		b.PlanFor = cm.PlanForBatch
		opts.Batch = &b
	}
	return &SessionPool{pool: runtime.NewSessionPool(plan, opts)}, nil
}

// WarmBatches pre-compiles the batched plans for the given batch sizes,
// blocking until each is ready; a no-op when batching is off. Benchmarks
// call it so steady-state numbers exclude the one-time compiles.
func (p *SessionPool) WarmBatches(sizes ...int) error {
	if b := p.pool.Batcher(); b != nil {
		return b.Warm(sizes...)
	}
	return nil
}

// Close stops the pool's batching dispatcher (if any); queued requests
// fail with ErrPoolClosed. The per-request path keeps working.
func (p *SessionPool) Close() { p.pool.Close() }

// Run admits one inference request, executes it on a pooled session, and
// returns a copy of the output (safe to keep; the session returns to the
// pool). Requests past the pool's capacity and queue depth are shed with
// ErrOverloaded; expired deadlines shed with ctx.Err().
func (p *SessionPool) Run(ctx context.Context, input *Tensor) (*Tensor, error) {
	outs, err := p.pool.Run(ctx, map[string]*tensor.Tensor{"data": input})
	if err != nil {
		return nil, err
	}
	return outs[0], nil
}

// Breaker returns the pool's shared circuit breaker (nil without fault
// injection).
func (p *SessionPool) Breaker() *Breaker { return p.pool.Breaker() }

// Run executes the compiled model functionally on the host and returns the
// output tensor (class probabilities, or detections [class, score, box]).
// Each call runs a throwaway session; for repeated inference use
// NewSession, which reuses the arena and skips per-call planning.
func (cm *CompiledModel) Run(input *Tensor) (*Tensor, error) {
	res, err := runtime.Execute(cm.model.Graph, map[string]*tensor.Tensor{"data": input})
	if err != nil {
		return nil, err
	}
	return res.Outputs[0], nil
}

// RunContext is Run with cancellation: a SIGINT-bound or deadline context
// aborts the inference between node dispatches. Like NewSessionWith, it
// honours a fault injector attached to the platform's GPU device.
func (cm *CompiledModel) RunContext(ctx context.Context, input *Tensor) (*Tensor, error) {
	s, err := cm.NewSession()
	if err != nil {
		return nil, err
	}
	return s.RunContext(ctx, input)
}

// GraphStats summarises the optimized graph.
func (cm *CompiledModel) GraphStats() graph.Stats { return cm.model.Graph.Summary() }

// Experiments exposes the paper's evaluation harness (Tables 1-5, the
// fallback experiment) on this engine's caches.
func (e *Engine) Experiments() *bench.Estimator { return e.est }

// ---- Fleet serving ----

type (
	// HealPolicy schedules how a quarantined fleet replica returns to
	// service: probe wait, probe timeout, and the traffic ramp.
	HealPolicy = runtime.HealPolicy
	// RouterOptions configures fleet placement scoring (EWMA correction
	// of the roofline cost oracle by observed latency).
	RouterOptions = runtime.RouterOptions
	// ReplicaStats is one fleet replica's serving snapshot: state,
	// weight, latency estimate and observed p50/p99, served counts,
	// breaker and device health.
	ReplicaStats = runtime.ReplicaStats
	// ReplicaState is a fleet replica's lifecycle state (active,
	// quarantined, probing, ramping).
	ReplicaState = runtime.ReplicaState
)

// Re-exported replica lifecycle states.
const (
	ReplicaActive      = runtime.ReplicaActive
	ReplicaQuarantined = runtime.ReplicaQuarantined
	ReplicaProbing     = runtime.ReplicaProbing
	ReplicaRamping     = runtime.ReplicaRamping
)

// FleetOptions configures Engine.NewFleet.
type FleetOptions struct {
	// Platforms are the device replicas, one per entry; repeating a
	// platform makes homogeneous replicas. Default: the paper's three
	// evaluation platforms (DeepLens, aiSage, Jetson Nano).
	Platforms []*Platform
	// Sessions and QueueDepth size each replica's pool (defaults 2, 8).
	Sessions   int
	QueueDepth int
	// Faults supplies one injector per replica, index-aligned with
	// Platforms; missing or nil entries get a quiet scripted injector
	// (Rate 0, seeded by replica index) so Kill/Heal scripting always
	// works.
	Faults []*FaultInjector
	// Heal schedules quarantined-replica recovery; Router tunes
	// placement scoring. Zero values select the defaults.
	Heal   HealPolicy
	Router RouterOptions
}

// Fleet serves one model across N device replicas: per-replica compiled
// plans (each tuned for its platform), latency-predictive routing seeded
// by the roofline cost oracle, breaker-aware failover that drains a lost
// device's traffic to the survivors, and a probe-then-ramp heal lifecycle.
// Outputs are bit-identical regardless of which replica serves.
type Fleet struct {
	fleet  *runtime.Fleet
	models []*CompiledModel
}

// NewFleet compiles the model once per platform and assembles the serving
// fleet. Each replica gets its own plan, session pool, fault injector and
// circuit breaker, named <platform>-<index> (e.g. "aws-deeplens-0").
func (e *Engine) NewFleet(model string, copts CompileOptions, fopts FleetOptions) (*Fleet, error) {
	plats := fopts.Platforms
	if len(plats) == 0 {
		plats = Platforms()
	}
	sessions := fopts.Sessions
	if sessions <= 0 {
		sessions = 2
	}
	depth := fopts.QueueDepth
	if depth <= 0 {
		depth = 8
	}
	f := &Fleet{}
	reps := make([]runtime.ReplicaConfig, len(plats))
	for i, p := range plats {
		cm, err := e.Compile(model, p, copts)
		if err != nil {
			return nil, err
		}
		plan, err := cm.Plan()
		if err != nil {
			return nil, err
		}
		name := fmt.Sprintf("%s-%d", replicaSlug(p.Name), i)
		var inj *FaultInjector
		if i < len(fopts.Faults) {
			inj = fopts.Faults[i]
		}
		if inj == nil {
			inj = NewFaultInjector(FaultConfig{Seed: int64(i), Device: name})
		}
		reps[i] = runtime.ReplicaConfig{
			Name:      name,
			Plan:      plan,
			PredictMs: cm.PredictedLatencyMs,
			Pool: runtime.PoolOptions{
				Sessions:   sessions,
				QueueDepth: depth,
				Session:    runtime.SessionOptions{Model: model, Faults: inj},
			},
		}
		f.models = append(f.models, cm)
	}
	fl, err := runtime.NewFleet(runtime.FleetOptions{
		Replicas: reps,
		Router:   fopts.Router,
		Heal:     fopts.Heal,
	})
	if err != nil {
		return nil, err
	}
	f.fleet = fl
	return f, nil
}

// replicaSlug turns a platform name into a metric-safe replica label:
// lower-case, runs of non-alphanumerics collapsed to single dashes.
func replicaSlug(name string) string {
	var b strings.Builder
	dash := false
	for _, r := range strings.ToLower(name) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
			dash = false
		default:
			if !dash && b.Len() > 0 {
				b.WriteByte('-')
				dash = true
			}
		}
	}
	return strings.TrimSuffix(b.String(), "-")
}

// Run places one request on the best replica (predicted latency x load x
// health weight) and fails over down the ranking on replica errors; the
// output is bit-identical no matter which replica serves.
func (f *Fleet) Run(ctx context.Context, input *Tensor) (*Tensor, error) {
	outs, err := f.fleet.Run(ctx, map[string]*tensor.Tensor{"data": input})
	if err != nil {
		return nil, err
	}
	return outs[0], nil
}

// Len returns the number of replicas; Name returns replica i's label.
func (f *Fleet) Len() int          { return f.fleet.Len() }
func (f *Fleet) Name(i int) string { return f.fleet.Name(i) }

// Model returns the compiled model serving replica i (its predicted
// latency seeds the router's cost oracle).
func (f *Fleet) Model(i int) *CompiledModel { return f.models[i] }

// State returns replica i's lifecycle state; Served how many requests it
// has completed.
func (f *Fleet) State(i int) ReplicaState { return f.fleet.State(i) }
func (f *Fleet) Served(i int) int64       { return f.fleet.Served(i) }

// Kill deterministically loses replica i's device mid-run (the soak's
// kill script); the fleet quarantines it and drains traffic to survivors.
func (f *Fleet) Kill(i int) { f.fleet.Kill(i) }

// HealNow resets replica i's device and probes it immediately, bypassing
// the heal schedule; it reports whether the probe recovered the replica
// (which then ramps back to full traffic share).
func (f *Fleet) HealNow(i int) bool { return f.fleet.HealNow(i) }

// Stats snapshots every replica's serving state (also exposed live at
// /debug/fleet when telemetry is being served).
func (f *Fleet) Stats() []ReplicaStats { return f.fleet.Stats() }

// Close stops the heal supervisor and every replica pool.
func (f *Fleet) Close() { f.fleet.Close() }
