GO ?= go

.PHONY: build test vet race verify bench trace

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# verify is the CI gate: compile everything, lint, and run the full test
# suite under the race detector.
verify:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# trace produces a sample Chrome trace + metrics dump from a quick run.
trace:
	$(GO) run ./cmd/unigpu-run -model SqueezeNet1.0 -size 64 -trace trace.json -metrics
