GO ?= go

.PHONY: build test vet race verify bench bench-regress bench-baseline trace soak

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race -timeout 25m ./...

# verify is the CI gate: compile everything, lint, and run the full test
# suite under the race detector. The explicit -timeout covers the
# whole-zoo accuracy sweeps (goldens, fusion cross-checks, dtype
# budgets), which exceed Go's default 10m per-package budget under the
# race scheduler when packages contend for CPU.
verify:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test -race -timeout 25m ./...

# bench runs the runtime + ops benchmarks (session hot path, pooled
# kernels, per-kernel conv comparisons, dispatch overhead), archives them
# as BENCH_runtime.json, and fails if the steady-state serial session run
# regresses above zero allocations per op.
bench:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime 20x ./internal/runtime ./internal/ops | tee bench.out
	$(GO) run ./cmd/bench2json -in bench.out -out BENCH_runtime.json -maxallocs 'BenchmarkSessionRun=0'

# bench-regress guards the serving hot path's wall clock: it re-runs the
# gated benchmarks (best of -count 3) and compares against the committed
# BENCH_baseline.json, failing on a >15% ns/op regression. The comparison
# skips itself with a warning when the baseline was recorded on a
# different CPU. After an intentional performance change, refresh the
# baseline with `make bench-baseline` and commit it.
GATED_BENCH  = BenchmarkSessionRun$$|BenchmarkConv2DInto$$|BenchmarkDenseInto$$
GATED_NAMES  = BenchmarkSessionRun,BenchmarkConv2DInto,BenchmarkDenseInto

bench-regress:
	$(GO) test -run '^$$' -bench '$(GATED_BENCH)' -benchmem -benchtime 200x -count 3 ./internal/runtime ./internal/ops | tee bench_regress.out
	$(GO) run ./cmd/bench2json -in bench_regress.out -out '' -baseline BENCH_baseline.json -maxregress 15 -gated '$(GATED_NAMES)'

bench-baseline:
	$(GO) test -run '^$$' -bench '$(GATED_BENCH)' -benchmem -benchtime 200x -count 3 ./internal/runtime ./internal/ops | tee bench_regress.out
	$(GO) run ./cmd/bench2json -in bench_regress.out -out BENCH_baseline.json

# soak hammers the fault-tolerant runtime: 500 session runs with seeded
# random fault injection (transient kernels, queue hangs, device loss,
# memory pressure) under the race detector, alternating serial and
# concurrent schedulers, asserting bit-identical outputs and no
# goroutine leaks throughout. The batched soak pushes the same seeded
# faults through the request-coalescing front-end (gather/batched
# run/scatter, per-request degradation on batch faults, pool Close).
# The fleet soak serves the same seeded load across three device
# replicas, kills one a third of the way in and heals it at two thirds,
# asserting zero non-deadline failures, bit-identical outputs and that
# the healed device serves again.
soak:
	UNIGPU_SOAK_RUNS=500 $(GO) test -race -run 'TestFaultSoak|TestBatchedFaultSoak|TestFleetSoak' -count=1 -v ./internal/runtime

# trace produces a sample Chrome trace + metrics dump from a quick run.
trace:
	$(GO) run ./cmd/unigpu-run -model SqueezeNet1.0 -size 64 -trace trace.json -metrics
