GO ?= go

.PHONY: build test vet race verify bench trace soak

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# verify is the CI gate: compile everything, lint, and run the full test
# suite under the race detector.
verify:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test -race ./...

# bench runs the runtime + ops benchmarks (session hot path, pooled
# kernels, per-kernel conv comparisons, dispatch overhead), archives them
# as BENCH_runtime.json, and fails if the steady-state serial session run
# regresses above zero allocations per op.
bench:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime 20x ./internal/runtime ./internal/ops | tee bench.out
	$(GO) run ./cmd/bench2json -in bench.out -out BENCH_runtime.json -maxallocs 'BenchmarkSessionRun=0'

# soak hammers the fault-tolerant runtime: 500 session runs with seeded
# random fault injection (transient kernels, queue hangs, device loss,
# memory pressure) under the race detector, alternating serial and
# concurrent schedulers, asserting bit-identical outputs and no
# goroutine leaks throughout.
soak:
	UNIGPU_SOAK_RUNS=500 $(GO) test -race -run 'TestFaultSoak' -count=1 -v ./internal/runtime

# trace produces a sample Chrome trace + metrics dump from a quick run.
trace:
	$(GO) run ./cmd/unigpu-run -model SqueezeNet1.0 -size 64 -trace trace.json -metrics
