package templates_test

import (
	"testing"

	"unigpu/internal/exec"
	"unigpu/internal/ops"
	"unigpu/internal/sim"
	"unigpu/internal/templates"
	"unigpu/internal/tensor"
)

// runLowered executes a lowered conv kernel and compares against ops.Conv2D.
func checkConfig(t *testing.T, w ops.ConvWorkload, cfg templates.Config, d *sim.Device) {
	t.Helper()
	k := templates.Schedule(w, cfg, d)

	in := tensor.New(w.N, w.CIn, w.H, w.W)
	in.FillRandom(31)
	g := max(1, w.Groups)
	weight := tensor.New(w.COut, w.CIn/g, w.KH, w.KW)
	weight.FillRandom(32)
	want := ops.Conv2D(in, weight, nil, w)

	env := exec.NewEnv()
	env.Bind("data", in.Data())
	env.Bind("weight", weight.Data())
	out := make([]float32, want.Size())
	env.Bind("out", out)
	if err := exec.RunKernel(k, env); err != nil {
		t.Fatalf("cfg %v: %v", cfg, err)
	}
	got := tensor.FromData(out, want.Shape()...)
	if !tensor.AllClose(got, want, 1e-4) {
		t.Fatalf("cfg %v on %s: max diff %g", cfg, d.Name, tensor.MaxAbsDiff(got, want))
	}
}

var smallConv = ops.ConvWorkload{
	N: 1, CIn: 4, H: 10, W: 10, COut: 8, KH: 3, KW: 3,
	StrideH: 1, StrideW: 1, PadH: 1, PadW: 1,
}

var smallDepthwise = ops.ConvWorkload{
	N: 1, CIn: 6, H: 9, W: 9, COut: 6, KH: 3, KW: 3,
	StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, Groups: 6,
}

func TestDefaultConfigCorrect(t *testing.T) {
	checkConfig(t, smallConv, templates.DefaultConfig(), sim.MaxwellNano)
	checkConfig(t, smallDepthwise, templates.DefaultConfig(), sim.MaxwellNano)
}

func TestManyConfigsCorrectOnAllDevices(t *testing.T) {
	// Sample the space broadly: every lowered schedule must compute the
	// same convolution.
	for _, d := range []*sim.Device{sim.IntelHD505, sim.MaliT860, sim.MaxwellNano} {
		space := templates.ConfigSpace(smallConv, d)
		if len(space) < 20 {
			t.Fatalf("%s: space too small (%d)", d.Name, len(space))
		}
		step := len(space) / 12
		for i := 0; i < len(space); i += step {
			checkConfig(t, smallConv, space[i], d)
		}
	}
}

func TestDepthwiseConfigsCorrect(t *testing.T) {
	space := templates.ConfigSpace(smallDepthwise, sim.MaliT860)
	step := max(1, len(space)/8)
	for i := 0; i < len(space); i += step {
		checkConfig(t, smallDepthwise, space[i], sim.MaliT860)
	}
}

func TestStridedConvCorrect(t *testing.T) {
	w := ops.ConvWorkload{N: 1, CIn: 3, H: 11, W: 11, COut: 4, KH: 3, KW: 3,
		StrideH: 2, StrideW: 2, PadH: 1, PadW: 1}
	checkConfig(t, w, templates.Config{TileCo: 4, TileH: 2, TileW: 2, VecW: 2, TileK: 1, UnrollKernel: true}, sim.MaxwellNano)
}

func TestSubgroupConfigOnlyOnIntel(t *testing.T) {
	spaceIntel := templates.ConfigSpace(smallConv, sim.IntelHD505)
	spaceMali := templates.ConfigSpace(smallConv, sim.MaliT860)
	hasSG := func(cs []templates.Config) bool {
		for _, c := range cs {
			if c.UseSubgroup {
				return true
			}
		}
		return false
	}
	if !hasSG(spaceIntel) {
		t.Fatal("Intel space should include subgroup configs")
	}
	if hasSG(spaceMali) {
		t.Fatal("Mali space must not include subgroup configs")
	}
	// And subgroup schedules are still correct.
	checkConfig(t, smallConv, templates.Config{TileCo: 8, TileH: 1, TileW: 2, VecW: 1, TileK: 1, UseSubgroup: true}, sim.IntelHD505)
}

func TestTunedConfigBeatsDefaultCost(t *testing.T) {
	w := ops.ConvWorkload{N: 1, CIn: 64, H: 56, W: 56, COut: 64, KH: 3, KW: 3,
		StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	for _, d := range []*sim.Device{sim.IntelHD505, sim.MaliT860, sim.MaxwellNano} {
		def := templates.CostMs(w, templates.DefaultConfig(), d)
		best := def
		space := templates.ConfigSpace(w, d)
		for i := 0; i < len(space); i += 7 {
			if c := templates.CostMs(w, space[i], d); c < best {
				best = c
			}
		}
		if best >= def {
			t.Errorf("%s: no config beats the default (%.3f ms)", d.Name, def)
		}
		if def/best < 1.5 {
			t.Errorf("%s: tuning headroom only %.2fx", d.Name, def/best)
		}
	}
}

func TestConfigSpacePruning(t *testing.T) {
	tiny := ops.ConvWorkload{N: 1, CIn: 2, H: 3, W: 3, COut: 2, KH: 1, KW: 1, StrideH: 1, StrideW: 1}
	for _, c := range templates.ConfigSpace(tiny, sim.MaxwellNano) {
		if c.TileCo > 2 || c.TileH > 3 || c.TileW > 3 {
			t.Fatalf("config %v exceeds workload bounds", c)
		}
		if c.VecW > c.TileW || c.TileW%c.VecW != 0 {
			t.Fatalf("config %v has invalid vector split", c)
		}
	}
}
