// Package templates builds the optimized conv2d schedule templates of
// §3.2.2 — the "main template" of Figure 1 that AutoTVM searches. One
// algorithm definition (direct convolution over NCHW) is scheduled per
// configuration: output channels split across blocks and threads (or Intel
// subgroup lanes), the feature map split along height, the width tile
// vectorized, and the kernel loops unrolled — exactly the heuristics the
// paper lists. Every configuration lowers to loop IR that is functionally
// validated against internal/ops and priced by internal/sim.
package templates

import (
	"fmt"
	"sort"

	"unigpu/internal/ir"
	"unigpu/internal/ops"
	"unigpu/internal/sim"
	"unigpu/internal/te"
)

// Config is one point in the conv template's search space.
type Config struct {
	TileCo int // output channels per block (thread/subgroup lanes)
	TileH  int // output rows per block
	TileW  int // output columns per block
	VecW   int // SIMD lanes on the innermost width axis (divides TileW)
	TileK  int // reduction split; the inner part is unrolled
	// UnrollKernel unrolls the kh/kw taps (§3.2.2 loop unrolling).
	UnrollKernel bool
	// UseSubgroup binds the channel lanes to an Intel subgroup so weights
	// stay in the shared GRFs (§3.2.1); ignored on other vendors.
	UseSubgroup bool
}

func (c Config) String() string {
	return fmt.Sprintf("co%d_h%d_w%d_v%d_k%d_u%v_sg%v",
		c.TileCo, c.TileH, c.TileW, c.VecW, c.TileK, c.UnrollKernel, c.UseSubgroup)
}

// DefaultConfig is the schedule used before tuning (the "Before" column of
// Table 5): a plain one-work-item-per-output mapping with no tiling,
// vectorization or unrolling — what a direct, correct GPU port does.
func DefaultConfig() Config {
	return Config{TileCo: 1, TileH: 1, TileW: 1, VecW: 1, TileK: 1}
}

// DeviceDefaultConfig is the schedule each backend ships before any tuning
// (Table 5's "Before"): a fixed thread mapping that is reasonable on Intel
// (whose OpenCL driver packs work items into SIMD-8 threads), mediocre on
// Mali, and poor on CUDA where 4 threads fill an eighth of a warp — the
// reason the Jetson Nano shows the largest tuning gains in Table 5.
func DeviceDefaultConfig(w ops.ConvWorkload, d *sim.Device) Config {
	var c Config
	switch d.Vendor {
	case sim.Intel:
		c = Config{TileCo: 8, TileH: 1, TileW: 8, VecW: 1, TileK: 1}
	case sim.ARM:
		c = Config{TileCo: 2, TileH: 1, TileW: 4, VecW: 1, TileK: 1}
	default:
		c = Config{TileCo: 1, TileH: 1, TileW: 4, VecW: 1, TileK: 1}
	}
	c.TileCo = min(c.TileCo, w.COut)
	c.TileH = min(c.TileH, w.OutH())
	c.TileW = min(c.TileW, w.OutW())
	return c
}

// ConfigSpace enumerates the candidate configurations for a workload on a
// device, pruned to shapes the hardware can schedule (§3.2.3: "the shape
// of the work groups significantly matters").
func ConfigSpace(w ops.ConvWorkload, d *sim.Device) []Config {
	// Tile sizes include exact divisors of the extents so feature maps
	// like 14x14 and odd head channel counts (84, 126) can be covered
	// without boundary guards — weight reuse per block is what keeps the
	// deep layers off the memory roof.
	tileCos := withDivisors([]int{1, 2, 4, 8, 16, 32}, w.COut, 32)
	tileHs := withDivisors([]int{1, 2, 4, 8}, w.OutH(), 16)
	tileWs := withDivisors([]int{1, 2, 4, 8, 16}, w.OutW(), 32)
	vecs := []int{1, 2, 4, 8}
	tileKs := []int{1, 2, 4}

	oh, ow := w.OutH(), w.OutW()
	var out []Config
	for _, co := range tileCos {
		if co > w.COut {
			continue
		}
		for _, th := range tileHs {
			if th > oh {
				continue
			}
			for _, tw := range tileWs {
				if tw > ow {
					continue
				}
				for _, v := range vecs {
					if v > tw || v > d.SIMDWidth || tw%v != 0 {
						continue
					}
					threads := co * th * (tw / v)
					if threads > 1024 { // CUDA/OpenCL per-block limit
						continue
					}
					for _, tk := range tileKs {
						if !w.IsDepthwise() && tk > w.CIn {
							continue
						}
						for _, unroll := range []bool{false, true} {
							cfgs := []Config{{TileCo: co, TileH: th, TileW: tw, VecW: v, TileK: tk, UnrollKernel: unroll}}
							if d.HasSubgroups && co >= 4 {
								sg := cfgs[0]
								sg.UseSubgroup = true
								cfgs = append(cfgs, sg)
							}
							out = append(out, cfgs...)
						}
					}
				}
			}
		}
	}
	return out
}

// withDivisors extends base with the divisors of n up to limit, sorted and
// de-duplicated.
func withDivisors(base []int, n, limit int) []int {
	seen := map[int]bool{}
	for _, v := range base {
		seen[v] = true
	}
	out := append([]int(nil), base...)
	for d := 1; d <= n && d <= limit; d++ {
		if n%d == 0 && !seen[d] {
			seen[d] = true
			out = append(out, d)
		}
	}
	sort.Ints(out)
	return out
}

// Declare builds the unscheduled tensor-expression form of the workload.
// Padding is handled with predicated (Select) loads, never divergent
// branches.
func Declare(w ops.ConvWorkload) *te.Tensor {
	if w.IsDepthwise() {
		return declareDepthwise(w)
	}
	return declareDirect(w)
}

func declareDirect(w ops.ConvWorkload) *te.Tensor {
	A := te.Placeholder("data", w.N, w.CIn, w.H, w.W)
	W := te.Placeholder("weight", w.COut, w.CIn, w.KH, w.KW)
	oh, ow := w.OutH(), w.OutW()
	return te.Sum("out", []int{w.N, w.COut, oh, ow}, []int{w.CIn, w.KH, w.KW},
		func(ax, r []ir.Expr) ir.Expr {
			iy := ir.Add(ir.Mul(ax[2], ir.Imm(w.StrideH)), ir.Sub(r[1], ir.Imm(w.PadH)))
			ix := ir.Add(ir.Mul(ax[3], ir.Imm(w.StrideW)), ir.Sub(r[2], ir.Imm(w.PadW)))
			inBounds := ir.And(
				ir.And(ir.GE(iy, ir.Imm(0)), ir.LT(iy, ir.Imm(w.H))),
				ir.And(ir.GE(ix, ir.Imm(0)), ir.LT(ix, ir.Imm(w.W))))
			val := te.If(inBounds, A.Access(ax[0], r[0], iy, ix), ir.FImm(0))
			return ir.Mul(val, W.Access(ax[1], r[0], r[1], r[2]))
		})
}

func declareDepthwise(w ops.ConvWorkload) *te.Tensor {
	A := te.Placeholder("data", w.N, w.CIn, w.H, w.W)
	W := te.Placeholder("weight", w.COut, 1, w.KH, w.KW)
	oh, ow := w.OutH(), w.OutW()
	return te.Sum("out", []int{w.N, w.COut, oh, ow}, []int{w.KH, w.KW},
		func(ax, r []ir.Expr) ir.Expr {
			iy := ir.Add(ir.Mul(ax[2], ir.Imm(w.StrideH)), ir.Sub(r[0], ir.Imm(w.PadH)))
			ix := ir.Add(ir.Mul(ax[3], ir.Imm(w.StrideW)), ir.Sub(r[1], ir.Imm(w.PadW)))
			inBounds := ir.And(
				ir.And(ir.GE(iy, ir.Imm(0)), ir.LT(iy, ir.Imm(w.H))),
				ir.And(ir.GE(ix, ir.Imm(0)), ir.LT(ix, ir.Imm(w.W))))
			val := te.If(inBounds, A.Access(ax[0], ax[1], iy, ix), ir.FImm(0))
			return ir.Mul(val, W.Access(ax[1], ir.Imm(0), r[0], r[1]))
		})
}

// Schedule applies the configuration to the workload and lowers it.
func Schedule(w ops.ConvWorkload, cfg Config, d *sim.Device) *te.Kernel {
	out := Declare(w)
	s := te.NewSchedule(out)
	ax := s.SpatialAxes() // n, co, oh, ow

	coO, coI := s.Split(ax[1], cfg.TileCo)
	ohO, ohI := s.Split(ax[2], cfg.TileH)
	owO, owI := s.Split(ax[3], cfg.TileW)

	lanes := []te.Axis{coI, ohI}
	var vec te.Axis
	hasVec := false
	if cfg.VecW > 1 {
		owIO, owII := s.Split(owI, cfg.VecW)
		lanes = append(lanes, owIO)
		vec = owII
		hasVec = true
		s.Reorder(ax[0], coO, ohO, owO, coI, ohI, owIO, owII)
	} else {
		lanes = append(lanes, owI)
		s.Reorder(ax[0], coO, ohO, owO, coI, ohI, owI)
	}

	s.Bind(coO, ir.ForThreadBlock)
	s.Bind(ohO, ir.ForThreadBlock)
	s.Bind(owO, ir.ForThreadBlock)
	if cfg.UseSubgroup && d.HasSubgroups {
		s.Bind(lanes[0], ir.ForSubgroup)
	} else {
		s.Bind(lanes[0], ir.ForThread)
	}
	for _, l := range lanes[1:] {
		s.Bind(l, ir.ForThread)
	}
	if hasVec {
		s.Vectorize(vec)
	}

	r := s.ReduceAxes()
	if !w.IsDepthwise() && cfg.TileK > 1 {
		_, ci := s.Split(r[0], cfg.TileK)
		s.Unroll(ci)
	}
	if cfg.UnrollKernel {
		// kh/kw are the last two reduce axes in both variants.
		rr := s.ReduceAxes()
		s.Unroll(rr[len(rr)-2])
		s.Unroll(rr[len(rr)-1])
	}
	return te.Lower("conv_"+w.Key(), s)
}

// DepthwisePenalty reflects that depthwise convolutions have no input-
// channel reduction to amortise data movement over: per multiply-accumulate
// they move an order of magnitude more data and expose far less ILP than
// dense convolutions, which the loop-level model under-prices.
const DepthwisePenalty = 3.0

// DepthwiseIntelPenalty is the additional factor of §4.2: "our depth-wise
// convolution has not been fully optimized for Intel Graphics" — the
// subgroup/GRF blocking the Intel template relies on does not apply to the
// single-input-channel reduction. (Optimizing this is the paper's stated
// future work.)
const DepthwiseIntelPenalty = 4.7

// CostMs prices a configuration on a device in milliseconds.
func CostMs(w ops.ConvWorkload, cfg Config, d *sim.Device) float64 {
	k := Schedule(w, cfg, d)
	c := sim.CostKernel(d, k)
	ms := c.Seconds * 1e3
	if w.IsDepthwise() {
		// The penalty applies to execution, not to driver dispatch.
		launch := c.LaunchSeconds * 1e3
		exec := (ms - launch) * DepthwisePenalty
		if d.HasSubgroups {
			exec *= DepthwiseIntelPenalty
		}
		ms = exec + launch
	}
	return ms
}
