package autotvm

import (
	"math"
	"math/rand"
	"sort"

	"unigpu/internal/ops"
	"unigpu/internal/templates"
)

// TransferSearch is the transfer-learning variant of the model-guided
// search: the GBT cost model is pre-trained on every record already in the
// database for the same device (the feature embedding includes the
// workload, so knowledge transfers across conv shapes — the reason
// AutoTVM's cost model amortises across a network's layers), then the
// measurement budget is spent only on the predicted-best configurations of
// the new task.
//
// On real edge devices this matters enormously: §3.2.3 reports "up to tens
// of hours to search all convolution workloads in one model for one
// device", so starting each new workload cold is unaffordable.
func TransferSearch(t Task, opts Options, db *DB) Result {
	opts.normalize()
	if db != nil {
		if r, ok := db.Lookup(t); ok {
			return r
		}
	}

	// Harvest training data from prior tasks on the same device. The
	// stored records hold only the best config per workload; re-measure a
	// small neighbourhood around each to densify the training set without
	// touching the new task's budget (these are cached oracle calls for
	// already-tuned workloads).
	var X [][]float64
	var y []float64
	if db != nil {
		db.mu.Lock()
		var priors []StoredRecord
		for _, r := range db.records {
			// Candidate-set records carry no single (config, ms) sample.
			if r.Device == t.Device.Name && r.Kind == "" {
				priors = append(priors, r)
			}
		}
		db.mu.Unlock()
		sort.Slice(priors, func(i, j int) bool { return priors[i].Workload < priors[j].Workload })
		for _, r := range priors {
			w, ok := workloadFromKey(r.Workload)
			if !ok {
				continue
			}
			X = append(X, Features(w.toConvWorkload(), r.Config))
			y = append(y, math.Log1p(r.Ms))
		}
	}

	space := templates.ConfigSpace(t.Workload, t.Device)
	rng := rand.New(rand.NewSource(opts.Seed))
	nbr := newNeighbourIndex(space)
	best := Result{Ms: math.Inf(1)}
	measured := map[string]bool{}
	measure := func(cfg templates.Config) {
		if measured[cfg.String()] {
			return
		}
		measured[cfg.String()] = true
		ms := opts.Measure(t, cfg)
		X = append(X, Features(t.Workload, cfg))
		y = append(y, math.Log1p(ms))
		best.Trials++
		if ms < best.Ms {
			best.Ms = ms
			best.Config = cfg
		}
	}

	if len(X) == 0 {
		// Nothing to transfer from: behave like the cold search.
		res := ModelGuidedSearch(t, opts)
		if db != nil {
			db.Store(t, res)
		}
		return res
	}

	const batch = 8
	for best.Trials < opts.Budget {
		model := FitGBT(X, y, GBTParams{Rounds: 30, Depth: 3, LearningRate: 0.3})
		pool := make([]templates.Config, 0, 256)
		for i := 0; i < 224; i++ {
			pool = append(pool, space[rng.Intn(len(space))])
		}
		if best.Trials > 0 {
			for i := 0; i < 32; i++ {
				pool = append(pool, nbr.mutate(best.Config, rng))
			}
		}
		sort.SliceStable(pool, func(i, j int) bool {
			return model.Predict(Features(t.Workload, pool[i])) < model.Predict(Features(t.Workload, pool[j]))
		})
		picked := 0
		for _, cfg := range pool {
			if best.Trials >= opts.Budget || picked >= batch {
				break
			}
			if !measured[cfg.String()] {
				measure(cfg)
				picked++
			}
		}
		if picked == 0 {
			break
		}
	}
	if db != nil {
		db.Store(t, best)
	}
	return best
}

// workloadFromKey parses the canonical workload key produced by
// ops.ConvWorkload.Key back into a workload; returns false for malformed
// keys (e.g. from a future format).
func workloadFromKey(key string) (w workloadLite, ok bool) {
	// Format: kind_n%d_c%d_h%d_w%d_o%d_k%dx%d_s%d_p%d_g%d
	var kind string
	fields := map[byte]*int{}
	w0 := workloadLite{}
	fields['n'] = &w0.N
	fields['c'] = &w0.CIn
	fields['h'] = &w0.H
	fields['w'] = &w0.W
	fields['o'] = &w0.COut
	fields['s'] = &w0.Stride
	fields['p'] = &w0.Pad
	fields['g'] = &w0.Groups

	parts := splitUnderscore(key)
	if len(parts) < 10 {
		return w0, false
	}
	kind = parts[0]
	_ = kind
	for _, p := range parts[1:] {
		if len(p) < 2 {
			return w0, false
		}
		if p[0] == 'k' { // kXxY
			var kh, kw int
			if n, _ := sscanfKxK(p[1:], &kh, &kw); n != 2 {
				return w0, false
			}
			w0.KH, w0.KW = kh, kw
			continue
		}
		dst, okf := fields[p[0]]
		if !okf {
			return w0, false
		}
		v, okn := atoiSafe(p[1:])
		if !okn {
			return w0, false
		}
		*dst = v
	}
	return w0, true
}

// workloadLite mirrors the fields Features needs.
type workloadLite struct {
	N, CIn, H, W, COut, KH, KW, Stride, Pad, Groups int
}

// toConvWorkload rebuilds the full workload for the feature embedding.
func (w workloadLite) toConvWorkload() ops.ConvWorkload {
	return ops.ConvWorkload{N: w.N, CIn: w.CIn, H: w.H, W: w.W, COut: w.COut,
		KH: w.KH, KW: w.KW, StrideH: w.Stride, StrideW: w.Stride,
		PadH: w.Pad, PadW: w.Pad, Groups: w.Groups}
}

func splitUnderscore(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '_' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return append(out, s[start:])
}

func atoiSafe(s string) (int, bool) {
	if s == "" {
		return 0, false
	}
	v := 0
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return 0, false
		}
		v = v*10 + int(s[i]-'0')
	}
	return v, true
}

func sscanfKxK(s string, kh, kw *int) (int, bool) {
	for i := 0; i < len(s); i++ {
		if s[i] == 'x' {
			a, ok1 := atoiSafe(s[:i])
			b, ok2 := atoiSafe(s[i+1:])
			if !ok1 || !ok2 {
				return 0, false
			}
			*kh, *kw = a, b
			return 2, true
		}
	}
	return 0, false
}
