package autotvm

import (
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"unigpu/internal/ops"
	"unigpu/internal/sim"
	"unigpu/internal/templates"
)

var testWorkload = ops.ConvWorkload{
	N: 1, CIn: 32, H: 28, W: 28, COut: 64, KH: 3, KW: 3,
	StrideH: 1, StrideW: 1, PadH: 1, PadW: 1,
}

func testTask() Task { return Task{Workload: testWorkload, Device: sim.MaxwellNano} }

func TestRandomSearchImprovesOnDefault(t *testing.T) {
	def := templates.CostMs(testWorkload, templates.DefaultConfig(), sim.MaxwellNano)
	res := RandomSearch(testTask(), Options{Budget: 64, Seed: 1})
	if res.Ms >= def {
		t.Fatalf("random search (%.3f ms) should beat the default (%.3f ms)", res.Ms, def)
	}
	if res.Trials != 64 {
		t.Fatalf("trials = %d", res.Trials)
	}
}

func TestSimulatedAnnealingImproves(t *testing.T) {
	def := templates.CostMs(testWorkload, templates.DefaultConfig(), sim.MaxwellNano)
	res := SimulatedAnnealing(testTask(), Options{Budget: 64, Seed: 2})
	if res.Ms >= def {
		t.Fatalf("SA (%.3f ms) should beat default (%.3f ms)", res.Ms, def)
	}
}

func TestModelGuidedBeatsRandomAtEqualBudget(t *testing.T) {
	// Averaged over seeds, the GBT-guided search should find schedules at
	// least as good as pure random sampling with the same budget.
	var mg, rnd float64
	seeds := []int64{1, 2, 3, 4, 5}
	for _, s := range seeds {
		mg += ModelGuidedSearch(testTask(), Options{Budget: 48, Seed: s}).Ms
		rnd += RandomSearch(testTask(), Options{Budget: 48, Seed: s}).Ms
	}
	mg /= float64(len(seeds))
	rnd /= float64(len(seeds))
	if mg > rnd*1.05 {
		t.Fatalf("model-guided mean %.4f ms should be <= random mean %.4f ms", mg, rnd)
	}
}

func TestModelGuidedNearGridOptimum(t *testing.T) {
	// On a small space the guided search should land within 25% of the
	// exhaustive optimum using a fraction of the measurements.
	small := Task{
		Workload: ops.ConvWorkload{N: 1, CIn: 16, H: 14, W: 14, COut: 16, KH: 3, KW: 3,
			StrideH: 1, StrideW: 1, PadH: 1, PadW: 1},
		Device: sim.MaliT860,
	}
	grid := GridSearch(small, Options{})
	guided := ModelGuidedSearch(small, Options{Budget: grid.Trials / 6, Seed: 3})
	if guided.Ms > grid.Ms*1.25 {
		t.Fatalf("guided %.4f ms vs grid optimum %.4f ms (budget %d vs %d)",
			guided.Ms, grid.Ms, guided.Trials, grid.Trials)
	}
}

func TestSearchDeterminism(t *testing.T) {
	a := ModelGuidedSearch(testTask(), Options{Budget: 32, Seed: 7})
	b := ModelGuidedSearch(testTask(), Options{Budget: 32, Seed: 7})
	if a.Ms != b.Ms || a.Config != b.Config {
		t.Fatal("same seed must reproduce the same search")
	}
}

func TestGBTFitsSimpleFunction(t *testing.T) {
	// y = 3*x0 + step(x1): the model must beat predicting the mean.
	rng := rand.New(rand.NewSource(5))
	n := 200
	X := make([][]float64, n)
	y := make([]float64, n)
	var mean float64
	for i := range X {
		x0, x1 := rng.Float64(), rng.Float64()
		X[i] = []float64{x0, x1}
		y[i] = 3 * x0
		if x1 > 0.5 {
			y[i] += 2
		}
		mean += y[i]
	}
	mean /= float64(n)
	m := FitGBT(X, y, GBTParams{Rounds: 40, Depth: 3, LearningRate: 0.3})
	var errModel, errMean float64
	for i := range X {
		errModel += math.Abs(m.Predict(X[i]) - y[i])
		errMean += math.Abs(mean - y[i])
	}
	if errModel > errMean/4 {
		t.Fatalf("GBT error %.3f should be well under mean-predictor error %.3f", errModel, errMean)
	}
}

func TestGBTEmptyTrainingSet(t *testing.T) {
	m := FitGBT(nil, nil, GBTParams{})
	if m.Predict([]float64{1, 2}) != 0 {
		t.Fatal("empty model should predict the zero base")
	}
}

func TestGBTRanksConfigs(t *testing.T) {
	// Train on half the measured space; the model must rank a clearly bad
	// config worse than a clearly good one.
	task := testTask()
	space := templates.ConfigSpace(task.Workload, task.Device)
	var X [][]float64
	var y []float64
	for i := 0; i < len(space); i += 2 {
		X = append(X, Features(task.Workload, space[i]))
		y = append(y, math.Log1p(SimMeasurer(task, space[i])))
	}
	m := FitGBT(X, y, GBTParams{Rounds: 30, Depth: 3, LearningRate: 0.3})

	bad := templates.DefaultConfig()
	good := templates.Config{TileCo: 8, TileH: 2, TileW: 8, VecW: 4, TileK: 2, UnrollKernel: true}
	if m.Predict(Features(task.Workload, good)) >= m.Predict(Features(task.Workload, bad)) {
		t.Fatal("model should rank the tiled config above the naive one")
	}
}

func TestDBRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "records.json")
	db := NewDB(path)
	task := testTask()
	res := Result{Config: templates.Config{TileCo: 4, TileH: 2, TileW: 4, VecW: 2, TileK: 1}, Ms: 1.25, Trials: 10}
	db.Store(task, res)
	if err := db.Save(); err != nil {
		t.Fatal(err)
	}

	db2, err := OpenDB(path)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := db2.Lookup(task)
	if !ok || got.Ms != 1.25 || got.Config != res.Config {
		t.Fatalf("lookup = %+v ok=%v", got, ok)
	}
	// Different device misses.
	other := Task{Workload: task.Workload, Device: sim.IntelHD505}
	if _, ok := db2.Lookup(other); ok {
		t.Fatal("different device must not hit the cache")
	}
}

func TestOpenDBMissingFile(t *testing.T) {
	db, err := OpenDB(filepath.Join(t.TempDir(), "absent.json"))
	if err != nil || db.Len() != 0 {
		t.Fatalf("missing file should open empty, err=%v", err)
	}
}

func TestTuneUsesCache(t *testing.T) {
	db := NewDB("")
	task := testTask()
	calls := 0
	counting := func(tk Task, cfg templates.Config) float64 {
		calls++
		return SimMeasurer(tk, cfg)
	}
	first := Tune(task, Options{Budget: 24, Seed: 1, Measure: counting}, db)
	after := calls
	second := Tune(task, Options{Budget: 24, Seed: 1, Measure: counting}, db)
	if calls != after {
		t.Fatal("second Tune must be served from the database")
	}
	if first.Config != second.Config {
		t.Fatal("cached result must match")
	}
}

func TestFeaturesShapeStable(t *testing.T) {
	f1 := Features(testWorkload, templates.DefaultConfig())
	f2 := Features(testWorkload, templates.Config{TileCo: 8, TileH: 2, TileW: 8, VecW: 4, TileK: 2})
	if len(f1) != len(f2) || len(f1) == 0 {
		t.Fatal("feature vectors must have a fixed length")
	}
}

func TestNeighbourIndexMatchesBruteForce(t *testing.T) {
	space := templates.ConfigSpace(testWorkload, sim.MaxwellNano)
	ni := newNeighbourIndex(space)
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 25; trial++ {
		cur := space[rng.Intn(len(space))]
		var want []int
		for j, c := range space {
			if diffKnobs(c, cur) == 1 {
				want = append(want, j)
			}
		}
		got := ni.neighbours(cur)
		if len(got) != len(want) {
			t.Fatalf("config %v: %d neighbours via index, %d via scan", cur, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("config %v: neighbour lists diverge at %d: %d vs %d", cur, i, got[i], want[i])
			}
		}
	}
}

func TestSeedBatchMeasuresUniqueConfigs(t *testing.T) {
	// With a budget of 4x the space, the seed phase wants the whole space;
	// drawing with replacement used to shrink it silently. Now every
	// unique config must be measured exactly once.
	small := Task{
		Workload: ops.ConvWorkload{N: 1, CIn: 16, H: 14, W: 14, COut: 16, KH: 3, KW: 3,
			StrideH: 1, StrideW: 1, PadH: 1, PadW: 1},
		Device: sim.MaliT860,
	}
	space := templates.ConfigSpace(small.Workload, small.Device)
	unique := map[string]bool{}
	for _, c := range space {
		unique[c.String()] = true
	}
	res := ModelGuidedSearch(small, Options{Budget: 4 * len(space), Seed: 1})
	if res.Trials != len(unique) {
		t.Fatalf("seed phase measured %d configs, want all %d unique configs", res.Trials, len(unique))
	}
}
