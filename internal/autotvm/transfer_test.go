package autotvm

import (
	"testing"

	"unigpu/internal/ops"
	"unigpu/internal/sim"
)

func TestWorkloadKeyRoundTrip(t *testing.T) {
	ws := []ops.ConvWorkload{
		{N: 1, CIn: 64, H: 56, W: 56, COut: 64, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, Groups: 1},
		{N: 2, CIn: 32, H: 28, W: 28, COut: 32, KH: 3, KW: 3, StrideH: 2, StrideW: 2, PadH: 1, PadW: 1, Groups: 32},
		{N: 1, CIn: 3, H: 224, W: 224, COut: 64, KH: 7, KW: 7, StrideH: 2, StrideW: 2, PadH: 3, PadW: 3},
	}
	for _, w := range ws {
		lite, ok := workloadFromKey(w.Key())
		if !ok {
			t.Fatalf("could not parse key %q", w.Key())
		}
		back := lite.toConvWorkload()
		if back.Key() != w.Key() {
			t.Fatalf("round trip %q -> %q", w.Key(), back.Key())
		}
	}
	if _, ok := workloadFromKey("garbage"); ok {
		t.Fatal("malformed keys must be rejected")
	}
	if _, ok := workloadFromKey("conv2d_n1_cX_h1_w1_o1_k1x1_s1_p0_g1"); ok {
		t.Fatal("non-numeric fields must be rejected")
	}
}

func TestTransferSearchUsesPriors(t *testing.T) {
	d := sim.MaxwellNano
	db := NewDB("")

	// Tune a spread of ResNet-like workloads to seed the database.
	seeds := []ops.ConvWorkload{
		{N: 1, CIn: 64, H: 56, W: 56, COut: 64, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1},
		{N: 1, CIn: 128, H: 28, W: 28, COut: 128, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1},
		{N: 1, CIn: 64, H: 56, W: 56, COut: 256, KH: 1, KW: 1, StrideH: 1, StrideW: 1},
		{N: 1, CIn: 256, H: 14, W: 14, COut: 256, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1},
	}
	for i, w := range seeds {
		Tune(Task{Workload: w, Device: d}, Options{Budget: 48, Seed: int64(i + 1)}, db)
	}
	if db.Len() != len(seeds) {
		t.Fatalf("db holds %d records", db.Len())
	}

	// A new, related workload with a tiny budget: transfer should do at
	// least as well as a cold random search with the same budget, averaged
	// over seeds.
	novel := Task{
		Workload: ops.ConvWorkload{N: 1, CIn: 512, H: 7, W: 7, COut: 512, KH: 3, KW: 3,
			StrideH: 1, StrideW: 1, PadH: 1, PadW: 1},
		Device: d,
	}
	var transfer, cold float64
	for s := int64(1); s <= 5; s++ {
		freshDB := NewDB("")
		for i, w := range seeds {
			Tune(Task{Workload: w, Device: d}, Options{Budget: 48, Seed: int64(i + 1)}, freshDB)
		}
		transfer += TransferSearch(novel, Options{Budget: 16, Seed: s}, freshDB).Ms
		cold += RandomSearch(novel, Options{Budget: 16, Seed: s}).Ms
	}
	if transfer > cold*1.05 {
		t.Fatalf("transfer mean %.4f ms should be <= cold random mean %.4f ms", transfer/5, cold/5)
	}
}

func TestTransferSearchStoresResult(t *testing.T) {
	db := NewDB("")
	task := Task{
		Workload: ops.ConvWorkload{N: 1, CIn: 16, H: 14, W: 14, COut: 16, KH: 3, KW: 3,
			StrideH: 1, StrideW: 1, PadH: 1, PadW: 1},
		Device: sim.MaliT860,
	}
	first := TransferSearch(task, Options{Budget: 16, Seed: 1}, db)
	if db.Len() != 1 {
		t.Fatal("result must be stored")
	}
	second := TransferSearch(task, Options{Budget: 16, Seed: 2}, db)
	if second.Config != first.Config {
		t.Fatal("second call must hit the database")
	}
}

func TestTransferSearchColdFallback(t *testing.T) {
	// With an empty database it degenerates to the cold model-guided
	// search and still returns a sensible result.
	task := testTask()
	res := TransferSearch(task, Options{Budget: 24, Seed: 4}, NewDB(""))
	cold := ModelGuidedSearch(task, Options{Budget: 24, Seed: 4})
	if res.Ms != cold.Ms {
		t.Fatalf("empty-db transfer (%.4f) should equal cold search (%.4f)", res.Ms, cold.Ms)
	}
}
