// Package autotvm implements the machine-learning-based schedule search of
// §3.2.3: given a conv workload, a device, and the template's configuration
// space, it finds a low-latency schedule using random search, simulated
// annealing, or a gradient-boosted-trees cost model (the XGBoost stand-in
// AutoTVM uses), and persists the winner in a tuning-records database so a
// workload is never searched twice on the same platform.
//
// On real hardware each measurement is an on-device run; here the measurer
// is the simulator's cost model — the same (schedule -> latency) oracle
// role.
package autotvm

import (
	"math"
	"math/rand"
	"sort"
	"strconv"

	"unigpu/internal/obs"
	"unigpu/internal/ops"
	"unigpu/internal/sim"
	"unigpu/internal/templates"
)

// Task is one tuning job: a workload on a device.
type Task struct {
	Workload ops.ConvWorkload
	Device   *sim.Device
}

// Measurer evaluates a configuration's latency in milliseconds.
type Measurer func(t Task, cfg templates.Config) float64

// SimMeasurer prices the lowered schedule on the simulated device.
func SimMeasurer(t Task, cfg templates.Config) float64 {
	return templates.CostMs(t.Workload, cfg, t.Device)
}

// Result is the outcome of tuning one task.
type Result struct {
	Config templates.Config
	Ms     float64
	Trials int
}

// Options controls a tuning run.
type Options struct {
	Budget  int      // measurement budget (trials)
	Seed    int64    // RNG seed (deterministic searches)
	Measure Measurer // defaults to SimMeasurer
}

func (o *Options) normalize() {
	if o.Budget <= 0 {
		o.Budget = 128
	}
	if o.Measure == nil {
		o.Measure = SimMeasurer
	}
}

// traced runs one searcher under an autotvm.task span, counting every
// measurement into tune.trials / tune.trial_ms and recording the winner in
// the tune.best_ms gauge.
func traced(search string, t Task, opts Options, run func(Task, Options) Result) Result {
	opts.normalize()
	sp := obs.Start("autotvm.task",
		obs.KV("search", search), obs.KV("workload", t.Workload.Key()), obs.KV("device", t.Device.Name))
	inner := opts.Measure
	opts.Measure = func(t Task, cfg templates.Config) float64 {
		ms := inner(t, cfg)
		obs.Count("tune.trials", 1)
		obs.Observe("tune.trial_ms", ms)
		return ms
	}
	res := run(t, opts)
	sp.SetAttrs(obs.KVInt("trials", res.Trials), obs.KVFloat("best_ms", res.Ms))
	sp.End()
	obs.SetGauge("tune.best_ms", res.Ms)
	return res
}

// RandomSearch samples the space uniformly.
func RandomSearch(t Task, opts Options) Result {
	return traced("random", t, opts, randomSearch)
}

func randomSearch(t Task, opts Options) Result {
	opts.normalize()
	space := templates.ConfigSpace(t.Workload, t.Device)
	rng := rand.New(rand.NewSource(opts.Seed))
	best := Result{Ms: math.Inf(1)}
	for i := 0; i < opts.Budget; i++ {
		cfg := space[rng.Intn(len(space))]
		ms := opts.Measure(t, cfg)
		best.Trials++
		if ms < best.Ms {
			best.Ms = ms
			best.Config = cfg
		}
	}
	return best
}

// GridSearch measures every configuration; exact but only affordable for
// small spaces (used as ground truth in tests).
func GridSearch(t Task, opts Options) Result {
	return traced("grid", t, opts, gridSearch)
}

func gridSearch(t Task, opts Options) Result {
	opts.normalize()
	best := Result{Ms: math.Inf(1)}
	for _, cfg := range templates.ConfigSpace(t.Workload, t.Device) {
		ms := opts.Measure(t, cfg)
		best.Trials++
		if ms < best.Ms {
			best.Ms = ms
			best.Config = cfg
		}
	}
	return best
}

// SimulatedAnnealing walks the space by mutating one knob at a time with a
// Metropolis acceptance rule and geometric cooling.
func SimulatedAnnealing(t Task, opts Options) Result {
	return traced("sa", t, opts, simulatedAnnealing)
}

func simulatedAnnealing(t Task, opts Options) Result {
	opts.normalize()
	space := templates.ConfigSpace(t.Workload, t.Device)
	rng := rand.New(rand.NewSource(opts.Seed))
	nbr := newNeighbourIndex(space)

	cur := space[rng.Intn(len(space))]
	curMs := opts.Measure(t, cur)
	best := Result{Config: cur, Ms: curMs, Trials: 1}
	temp := curMs // initial temperature on the scale of the objective
	for i := 1; i < opts.Budget; i++ {
		cand := nbr.mutate(cur, rng)
		ms := opts.Measure(t, cand)
		best.Trials++
		if ms < best.Ms {
			best.Ms = ms
			best.Config = cand
		}
		if ms < curMs || rng.Float64() < math.Exp(-(ms-curMs)/math.Max(temp, 1e-9)) {
			cur, curMs = cand, ms
		}
		temp *= 0.96
	}
	return best
}

// knobCount is the number of tunable knobs in templates.Config.
const knobCount = 7

// neighbourIndex answers "which configs differ from cur in exactly one
// knob" without rescanning the space on every SA step (previously
// O(budget × |space|) per search). It is built once per search in
// O(knobCount × |space|): for each knob k, configs are grouped by their
// signature with knob k wildcarded, so two configs share a group iff they
// agree on every other knob. A config's one-knob neighbours are then the
// union of its k-groups minus itself, each neighbour appearing in exactly
// one group (the group of the knob it differs in).
type neighbourIndex struct {
	space  []templates.Config
	groups [knobCount]map[string][]int
}

func newNeighbourIndex(space []templates.Config) *neighbourIndex {
	ni := &neighbourIndex{space: space}
	for k := 0; k < knobCount; k++ {
		ni.groups[k] = make(map[string][]int, len(space))
		for i, c := range space {
			sig := wildcardSig(c, k)
			ni.groups[k][sig] = append(ni.groups[k][sig], i)
		}
	}
	return ni
}

// wildcardSig renders c with knob k replaced by a wildcard.
func wildcardSig(c templates.Config, k int) string {
	knobs := [knobCount]string{
		strconv.Itoa(c.TileCo), strconv.Itoa(c.TileH), strconv.Itoa(c.TileW),
		strconv.Itoa(c.VecW), strconv.Itoa(c.TileK),
		strconv.FormatBool(c.UnrollKernel), strconv.FormatBool(c.UseSubgroup),
	}
	knobs[k] = "*"
	return knobs[0] + "|" + knobs[1] + "|" + knobs[2] + "|" + knobs[3] + "|" +
		knobs[4] + "|" + knobs[5] + "|" + knobs[6]
}

// neighbours returns the space indices one knob away from cur, in space
// order (matching what a linear diffKnobs scan would produce).
func (ni *neighbourIndex) neighbours(cur templates.Config) []int {
	var out []int
	for k := 0; k < knobCount; k++ {
		for _, i := range ni.groups[k][wildcardSig(cur, k)] {
			if ni.space[i] != cur {
				out = append(out, i)
			}
		}
	}
	sort.Ints(out)
	return out
}

// mutate picks a random neighbour: a config from the space sharing all but
// one knob with cur when possible, else a random point.
func (ni *neighbourIndex) mutate(cur templates.Config, rng *rand.Rand) templates.Config {
	nbrs := ni.neighbours(cur)
	if len(nbrs) == 0 {
		return ni.space[rng.Intn(len(ni.space))]
	}
	return ni.space[nbrs[rng.Intn(len(nbrs))]]
}

func diffKnobs(a, b templates.Config) int {
	n := 0
	if a.TileCo != b.TileCo {
		n++
	}
	if a.TileH != b.TileH {
		n++
	}
	if a.TileW != b.TileW {
		n++
	}
	if a.VecW != b.VecW {
		n++
	}
	if a.TileK != b.TileK {
		n++
	}
	if a.UnrollKernel != b.UnrollKernel {
		n++
	}
	if a.UseSubgroup != b.UseSubgroup {
		n++
	}
	return n
}

// ModelGuidedSearch is the AutoTVM loop: measure a seed batch, fit a
// gradient-boosted-trees cost model on (features -> latency), then
// repeatedly rank a large candidate pool with the model and spend the
// measurement budget only on the predicted-best unmeasured configs.
func ModelGuidedSearch(t Task, opts Options) Result {
	return traced("model", t, opts, modelGuidedSearch)
}

func modelGuidedSearch(t Task, opts Options) Result {
	opts.normalize()
	space := templates.ConfigSpace(t.Workload, t.Device)
	rng := rand.New(rand.NewSource(opts.Seed))
	nbr := newNeighbourIndex(space)

	type sample struct {
		cfg templates.Config
		ms  float64
	}
	measured := map[string]bool{}
	var samples []sample
	best := Result{Ms: math.Inf(1)}

	measure := func(cfg templates.Config) {
		if measured[cfg.String()] {
			return
		}
		measured[cfg.String()] = true
		ms := opts.Measure(t, cfg)
		samples = append(samples, sample{cfg, ms})
		best.Trials++
		if ms < best.Ms {
			best.Ms = ms
			best.Config = cfg
		}
	}

	// Seed the model with seedN *unique* measured configs: drawing with
	// replacement silently shrank the seed batch whenever the RNG repeated
	// itself.
	seedN := min(opts.Budget/4+1, len(space))
	for _, idx := range rng.Perm(len(space)) {
		if best.Trials >= seedN {
			break
		}
		measure(space[idx])
	}

	const batch = 8
	for best.Trials < opts.Budget {
		X := make([][]float64, len(samples))
		y := make([]float64, len(samples))
		for i, s := range samples {
			X[i] = Features(t.Workload, s.cfg)
			y[i] = math.Log1p(s.ms) // compress the dynamic range
		}
		model := FitGBT(X, y, GBTParams{Rounds: 30, Depth: 3, LearningRate: 0.3})

		// Rank a candidate pool: random points plus neighbours of the best.
		pool := make([]templates.Config, 0, 256)
		for i := 0; i < 192; i++ {
			pool = append(pool, space[rng.Intn(len(space))])
		}
		for i := 0; i < 64; i++ {
			pool = append(pool, nbr.mutate(best.Config, rng))
		}
		sort.SliceStable(pool, func(i, j int) bool {
			return model.Predict(Features(t.Workload, pool[i])) < model.Predict(Features(t.Workload, pool[j]))
		})
		picked := 0
		for _, cfg := range pool {
			if best.Trials >= opts.Budget || picked >= batch {
				break
			}
			if !measured[cfg.String()] {
				measure(cfg)
				picked++
			}
		}
		if picked == 0 {
			break // space exhausted
		}
	}
	return best
}

// Features embeds a (workload, config) pair for the cost model.
func Features(w ops.ConvWorkload, c templates.Config) []float64 {
	lg := func(v int) float64 { return math.Log2(float64(max(1, v))) }
	threads := c.TileCo * c.TileH * (c.TileW / max(1, c.VecW))
	blocks := ceilDiv(w.COut, c.TileCo) * ceilDiv(w.OutH(), c.TileH) * ceilDiv(w.OutW(), c.TileW)
	return []float64{
		lg(c.TileCo), lg(c.TileH), lg(c.TileW), lg(c.VecW), float64(c.TileK),
		b2f(c.UnrollKernel), b2f(c.UseSubgroup),
		lg(threads), lg(blocks),
		lg(w.CIn), lg(w.COut), lg(w.OutH() * w.OutW()), lg(w.KH * w.KW),
	}
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
