package autotvm

import "sort"

// GBTParams configures gradient-boosted regression trees — the stand-in
// for the XGBoost cost model AutoTVM uses to rank candidate schedules.
type GBTParams struct {
	Rounds       int
	Depth        int
	LearningRate float64
	MinLeaf      int
}

// GBTModel is an additive ensemble of regression trees.
type GBTModel struct {
	base  float64
	trees []*treeNode
	lr    float64
}

type treeNode struct {
	feature int
	thresh  float64
	value   float64 // leaf prediction
	lo, hi  *treeNode
	isLeaf  bool
}

// FitGBT trains on rows X with targets y.
func FitGBT(X [][]float64, y []float64, p GBTParams) *GBTModel {
	if p.Rounds <= 0 {
		p.Rounds = 30
	}
	if p.Depth <= 0 {
		p.Depth = 3
	}
	if p.LearningRate <= 0 {
		p.LearningRate = 0.3
	}
	if p.MinLeaf <= 0 {
		p.MinLeaf = 2
	}
	m := &GBTModel{lr: p.LearningRate}
	if len(X) == 0 {
		return m
	}
	for _, v := range y {
		m.base += v
	}
	m.base /= float64(len(y))

	resid := make([]float64, len(y))
	for i := range y {
		resid[i] = y[i] - m.base
	}
	idx := make([]int, len(y))
	for i := range idx {
		idx[i] = i
	}
	for r := 0; r < p.Rounds; r++ {
		t := buildTree(X, resid, idx, p.Depth, p.MinLeaf)
		m.trees = append(m.trees, t)
		for i := range resid {
			resid[i] -= p.LearningRate * t.predict(X[i])
		}
	}
	return m
}

// Predict returns the model's estimate for one feature row.
func (m *GBTModel) Predict(x []float64) float64 {
	out := m.base
	for _, t := range m.trees {
		out += m.lr * t.predict(x)
	}
	return out
}

func (t *treeNode) predict(x []float64) float64 {
	for !t.isLeaf {
		if x[t.feature] <= t.thresh {
			t = t.lo
		} else {
			t = t.hi
		}
	}
	return t.value
}

func buildTree(X [][]float64, resid []float64, idx []int, depth, minLeaf int) *treeNode {
	if depth == 0 || len(idx) < 2*minLeaf {
		return leaf(resid, idx)
	}
	bestFeat, bestThresh, bestGain := -1, 0.0, 0.0
	total, totalSq := sums(resid, idx)
	n := float64(len(idx))
	baseErr := totalSq - total*total/n

	nf := len(X[0])
	vals := make([]float64, 0, len(idx))
	for f := 0; f < nf; f++ {
		vals = vals[:0]
		for _, i := range idx {
			vals = append(vals, X[i][f])
		}
		sort.Float64s(vals)
		// Candidate thresholds between distinct values.
		for k := 1; k < len(vals); k++ {
			if vals[k] == vals[k-1] {
				continue
			}
			th := (vals[k] + vals[k-1]) / 2
			var ls, lss, ln float64
			for _, i := range idx {
				if X[i][f] <= th {
					ls += resid[i]
					lss += resid[i] * resid[i]
					ln++
				}
			}
			rn := n - ln
			if ln < float64(minLeaf) || rn < float64(minLeaf) {
				continue
			}
			rs := total - ls
			rss := totalSq - lss
			err := (lss - ls*ls/ln) + (rss - rs*rs/rn)
			if gain := baseErr - err; gain > bestGain {
				bestGain, bestFeat, bestThresh = gain, f, th
			}
		}
	}
	if bestFeat < 0 {
		return leaf(resid, idx)
	}
	var lo, hi []int
	for _, i := range idx {
		if X[i][bestFeat] <= bestThresh {
			lo = append(lo, i)
		} else {
			hi = append(hi, i)
		}
	}
	return &treeNode{
		feature: bestFeat,
		thresh:  bestThresh,
		lo:      buildTree(X, resid, lo, depth-1, minLeaf),
		hi:      buildTree(X, resid, hi, depth-1, minLeaf),
	}
}

func leaf(resid []float64, idx []int) *treeNode {
	var s float64
	for _, i := range idx {
		s += resid[i]
	}
	if len(idx) > 0 {
		s /= float64(len(idx))
	}
	return &treeNode{isLeaf: true, value: s}
}

func sums(resid []float64, idx []int) (s, ss float64) {
	for _, i := range idx {
		s += resid[i]
		ss += resid[i] * resid[i]
	}
	return
}
