package autotvm

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"unigpu/internal/templates"
)

// DB is the tuning-records database of §3.2.3: "In order to prevent
// replicated searching in the future, we maintain a database to store the
// results for every convolution workload on each hardware platform." It
// holds two kinds of record under disjoint keys: single best-schedule
// results from the searchers (Tune), and per-layout candidate sets from
// the graph tuner (StoreCandidates), so a whole graph-tuning pass
// round-trips through the database.
type DB struct {
	mu      sync.Mutex
	path    string
	records map[string]StoredRecord
}

// KindCandidates marks a record holding a graph-tuner candidate set
// rather than a single searched schedule.
const KindCandidates = "candidates"

// KindKernel marks a record holding a conv algorithm choice (direct /
// depthwise / winograd / gemm) for a workload, as written by the graph
// kernel-selection pass and consulted on later compiles to override the
// cost model.
const KindKernel = "kernel"

// StoredCandidate is one per-layout (block, schedule) choice of a
// graph-tuner search, mirroring graphtuner.Candidate without importing it.
type StoredCandidate struct {
	Block    int              `json:"block"`
	Config   templates.Config `json:"config"`
	KernelMs float64          `json:"kernel_ms"`
}

// StoredRecord is one persisted tuning result.
type StoredRecord struct {
	Device   string           `json:"device"`
	Workload string           `json:"workload"`
	Kind     string           `json:"kind,omitempty"` // "" = single schedule
	Config   templates.Config `json:"config"`
	Ms       float64          `json:"ms"`
	Trials   int              `json:"trials"`
	// Budget is the per-layout search budget a candidate-set record was
	// produced with; a lookup asking for a bigger budget misses so a cheap
	// early search never permanently shadows a better one.
	Budget     int               `json:"budget,omitempty"`
	Candidates []StoredCandidate `json:"candidates,omitempty"`
	// Kernel is the conv algorithm name of a KindKernel record.
	Kernel string `json:"kernel,omitempty"`
	// DType is the storage dtype a KindKernel record was selected for.
	// Empty means fp32: records written before mixed precision existed
	// load (and keep their keys) unchanged.
	DType string `json:"dtype,omitempty"`
}

func (r StoredRecord) key() string {
	if r.Kind != "" {
		return r.Device + "|" + r.Kind + "|" + dtypeKeySuffix(r.DType) + r.Workload
	}
	return r.Device + "|" + r.Workload
}

// dtypeKeySuffix maps a record dtype to its key segment. fp32 (and the
// legacy empty string) contribute nothing, so pre-existing databases keep
// resolving under the exact keys they were written with.
func dtypeKeySuffix(dtype string) string {
	if dtype == "" || dtype == "fp32" {
		return ""
	}
	return dtype + "|"
}

// NewDB creates an in-memory database; path may be empty for no
// persistence.
func NewDB(path string) *DB {
	return &DB{path: path, records: map[string]StoredRecord{}}
}

// OpenDB loads a database from disk if the file exists. A file that exists
// but cannot be parsed is an error, never a silently empty database.
func OpenDB(path string) (*DB, error) {
	db := NewDB(path)
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return db, nil
	}
	if err != nil {
		return nil, err
	}
	var recs []StoredRecord
	if err := json.Unmarshal(data, &recs); err != nil {
		return nil, fmt.Errorf("autotvm: tuning database %s is corrupt (%v); delete or restore the file", path, err)
	}
	for _, r := range recs {
		db.records[r.key()] = r
	}
	return db, nil
}

// Save persists the database as a sorted JSON array. The file is written
// to a temporary sibling and renamed into place so a crash mid-write never
// corrupts an existing database.
func (db *DB) Save() error {
	if db.path == "" {
		return nil
	}
	db.mu.Lock()
	recs := make([]StoredRecord, 0, len(db.records))
	for _, r := range db.records {
		recs = append(recs, r)
	}
	db.mu.Unlock()
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].Device != recs[j].Device {
			return recs[i].Device < recs[j].Device
		}
		if recs[i].Kind != recs[j].Kind {
			return recs[i].Kind < recs[j].Kind
		}
		return recs[i].Workload < recs[j].Workload
	})
	data, err := json.MarshalIndent(recs, "", "  ")
	if err != nil {
		return err
	}
	dir := filepath.Dir(db.path)
	tmp, err := os.CreateTemp(dir, filepath.Base(db.path)+".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), db.path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// Lookup returns the stored result for a task.
func (db *DB) Lookup(t Task) (Result, bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	r, ok := db.records[t.Device.Name+"|"+t.Workload.Key()]
	if !ok {
		return Result{}, false
	}
	return Result{Config: r.Config, Ms: r.Ms, Trials: r.Trials}, true
}

// Store records a result for a task.
func (db *DB) Store(t Task, res Result) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.records[t.Device.Name+"|"+t.Workload.Key()] = StoredRecord{
		Device:   t.Device.Name,
		Workload: t.Workload.Key(),
		Config:   res.Config,
		Ms:       res.Ms,
		Trials:   res.Trials,
	}
}

// StoreBest records res for the task unless an existing record is already
// faster, in which case only the search effort (trials / budget) is
// raised so the spent budget is remembered and not re-spent. It returns
// the record now in the database. The compare-and-store runs under one
// lock so concurrent tuners of the same task cannot clobber a faster
// result.
func (db *DB) StoreBest(t Task, res Result) Result {
	return db.storeBest(t, res, res.Trials)
}

func (db *DB) storeBest(t Task, res Result, budget int) Result {
	db.mu.Lock()
	defer db.mu.Unlock()
	key := t.Device.Name + "|" + t.Workload.Key()
	if old, ok := db.records[key]; ok && old.Ms <= res.Ms {
		if res.Trials > old.Trials || budget > old.Budget {
			old.Trials = max(old.Trials, res.Trials)
			old.Budget = max(old.Budget, budget)
			db.records[key] = old
		}
		return Result{Config: old.Config, Ms: old.Ms, Trials: old.Trials}
	}
	db.records[key] = StoredRecord{
		Device:   t.Device.Name,
		Workload: t.Workload.Key(),
		Config:   res.Config,
		Ms:       res.Ms,
		Trials:   res.Trials,
		Budget:   max(budget, res.Trials),
	}
	return res
}

// lookupWithBudget returns a cached result only if it was produced by a
// search at least budget trials deep (an exhausted space counts by its
// requested budget, not by the trials it managed to run).
func (db *DB) lookupWithBudget(t Task, budget int) (Result, bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	r, ok := db.records[t.Device.Name+"|"+t.Workload.Key()]
	if !ok || max(r.Trials, r.Budget) < budget {
		return Result{}, false
	}
	return Result{Config: r.Config, Ms: r.Ms, Trials: r.Trials}, true
}

// LookupCandidates returns the stored graph-tuner candidate set for a
// (device, workload) pair, provided it was produced with at least
// minBudget trials per layout.
func (db *DB) LookupCandidates(device, workload string, minBudget int) ([]StoredCandidate, bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	r, ok := db.records[device+"|"+KindCandidates+"|"+workload]
	if !ok || r.Budget < minBudget {
		return nil, false
	}
	out := make([]StoredCandidate, len(r.Candidates))
	copy(out, r.Candidates)
	return out, true
}

// StoreCandidates records a graph-tuner candidate set for a (device,
// workload) pair, replacing any smaller-budget set.
func (db *DB) StoreCandidates(device, workload string, budget int, cands []StoredCandidate) {
	db.mu.Lock()
	defer db.mu.Unlock()
	key := device + "|" + KindCandidates + "|" + workload
	if old, ok := db.records[key]; ok && old.Budget > budget {
		return // an existing deeper search wins
	}
	stored := make([]StoredCandidate, len(cands))
	copy(stored, cands)
	db.records[key] = StoredRecord{
		Device:     device,
		Workload:   workload,
		Kind:       KindCandidates,
		Budget:     budget,
		Candidates: stored,
	}
}

// LookupKernelChoice returns the stored conv algorithm name for a
// (device, workload) pair at fp32 storage, if a kernel record exists.
func (db *DB) LookupKernelChoice(device, workload string) (string, bool) {
	return db.LookupKernelChoiceDType(device, workload, "")
}

// LookupKernelChoiceDType is LookupKernelChoice for an explicit storage
// dtype. "" and "fp32" resolve the legacy (dtype-less) key, so databases
// written before mixed precision keep working.
func (db *DB) LookupKernelChoiceDType(device, workload, dtype string) (string, bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	r, ok := db.records[device+"|"+KindKernel+"|"+dtypeKeySuffix(dtype)+workload]
	if !ok || r.Kernel == "" {
		return "", false
	}
	return r.Kernel, true
}

// StoreKernelChoice records the conv algorithm chosen for a (device,
// workload) pair at fp32 storage together with its estimated
// per-invocation cost.
func (db *DB) StoreKernelChoice(device, workload, kernel string, ms float64) {
	db.StoreKernelChoiceDType(device, workload, "", kernel, ms)
}

// StoreKernelChoiceDType is StoreKernelChoice for an explicit storage
// dtype ("" and "fp32" both write the legacy fp32 record).
func (db *DB) StoreKernelChoiceDType(device, workload, dtype, kernel string, ms float64) {
	if dtype == "fp32" {
		dtype = ""
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	db.records[device+"|"+KindKernel+"|"+dtypeKeySuffix(dtype)+workload] = StoredRecord{
		Device:   device,
		Workload: workload,
		Kind:     KindKernel,
		Kernel:   kernel,
		DType:    dtype,
		Ms:       ms,
	}
}

// Len returns the number of stored records.
func (db *DB) Len() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return len(db.records)
}

// Tune returns the cached result for the task or runs the model-guided
// search and stores the winner. A cached record produced with a smaller
// measurement budget than opts.Budget does not satisfy the lookup — the
// task is re-searched and the faster of the two results kept — so a cheap
// early search never permanently shadows a better one.
func Tune(t Task, opts Options, db *DB) Result {
	opts.normalize()
	if db != nil {
		if r, ok := db.lookupWithBudget(t, opts.Budget); ok {
			return r
		}
	}
	res := ModelGuidedSearch(t, opts)
	if db != nil {
		return db.storeBest(t, res, opts.Budget)
	}
	return res
}
