package autotvm

import (
	"encoding/json"
	"os"
	"sort"
	"sync"

	"unigpu/internal/templates"
)

// DB is the tuning-records database of §3.2.3: "In order to prevent
// replicated searching in the future, we maintain a database to store the
// results for every convolution workload on each hardware platform."
type DB struct {
	mu      sync.Mutex
	path    string
	records map[string]StoredRecord
}

// StoredRecord is one persisted tuning result.
type StoredRecord struct {
	Device   string           `json:"device"`
	Workload string           `json:"workload"`
	Config   templates.Config `json:"config"`
	Ms       float64          `json:"ms"`
	Trials   int              `json:"trials"`
}

// NewDB creates an in-memory database; path may be empty for no
// persistence.
func NewDB(path string) *DB {
	return &DB{path: path, records: map[string]StoredRecord{}}
}

// OpenDB loads a database from disk if the file exists.
func OpenDB(path string) (*DB, error) {
	db := NewDB(path)
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return db, nil
	}
	if err != nil {
		return nil, err
	}
	var recs []StoredRecord
	if err := json.Unmarshal(data, &recs); err != nil {
		return nil, err
	}
	for _, r := range recs {
		db.records[r.Device+"|"+r.Workload] = r
	}
	return db, nil
}

// Save persists the database as a sorted JSON array.
func (db *DB) Save() error {
	if db.path == "" {
		return nil
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	recs := make([]StoredRecord, 0, len(db.records))
	for _, r := range db.records {
		recs = append(recs, r)
	}
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].Device != recs[j].Device {
			return recs[i].Device < recs[j].Device
		}
		return recs[i].Workload < recs[j].Workload
	})
	data, err := json.MarshalIndent(recs, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(db.path, data, 0o644)
}

// Lookup returns the stored result for a task.
func (db *DB) Lookup(t Task) (Result, bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	r, ok := db.records[t.Device.Name+"|"+t.Workload.Key()]
	if !ok {
		return Result{}, false
	}
	return Result{Config: r.Config, Ms: r.Ms, Trials: r.Trials}, true
}

// Store records a result for a task.
func (db *DB) Store(t Task, res Result) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.records[t.Device.Name+"|"+t.Workload.Key()] = StoredRecord{
		Device:   t.Device.Name,
		Workload: t.Workload.Key(),
		Config:   res.Config,
		Ms:       res.Ms,
		Trials:   res.Trials,
	}
}

// Len returns the number of stored records.
func (db *DB) Len() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return len(db.records)
}

// Tune returns the cached result for the task or runs the model-guided
// search and stores the winner.
func Tune(t Task, opts Options, db *DB) Result {
	if db != nil {
		if r, ok := db.Lookup(t); ok {
			return r
		}
	}
	res := ModelGuidedSearch(t, opts)
	if db != nil {
		db.Store(t, res)
	}
	return res
}
