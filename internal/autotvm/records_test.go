package autotvm

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"unigpu/internal/templates"
)

func TestSaveLeavesNoTempFiles(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "records.json")
	db := NewDB(path)
	db.Store(testTask(), Result{Config: templates.DefaultConfig(), Ms: 1, Trials: 4})
	for i := 0; i < 3; i++ { // repeated saves reuse the rename path
		if err := db.Save(); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "records.json" {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("expected only records.json after Save, got %v", names)
	}
}

func TestOpenDBCorruptFileIsAnError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "records.json")
	if err := os.WriteFile(path, []byte(`{"this is": "not a record array"`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDB(path); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("corrupt file must produce a clear error, got %v", err)
	}
}

func TestOpenDBTruncatedFileIsAnError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "records.json")
	db := NewDB(path)
	db.Store(testTask(), Result{Config: templates.DefaultConfig(), Ms: 1, Trials: 4})
	if err := db.Save(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDB(path); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("truncated file must produce a clear error, got %v", err)
	}
}

func TestTuneReSearchesOnBiggerBudget(t *testing.T) {
	db := NewDB("")
	task := testTask()
	calls := 0
	counting := func(tk Task, cfg templates.Config) float64 {
		calls++
		return SimMeasurer(tk, cfg)
	}
	first := Tune(task, Options{Budget: 8, Seed: 1, Measure: counting}, db)
	afterFirst := calls
	second := Tune(task, Options{Budget: 32, Seed: 1, Measure: counting}, db)
	if calls == afterFirst {
		t.Fatal("a bigger budget must re-search, not return the shallow cached record")
	}
	if second.Ms > first.Ms {
		t.Fatalf("re-search returned %.6f ms, worse than the cached %.6f ms", second.Ms, first.Ms)
	}
	afterSecond := calls
	if third := Tune(task, Options{Budget: 32, Seed: 1, Measure: counting}, db); calls != afterSecond {
		t.Fatal("an equal budget must now be served from the database")
	} else if third.Config != second.Config {
		t.Fatal("cached result must match the deep search")
	}
	// Shallower requests keep hitting too.
	if Tune(task, Options{Budget: 8, Seed: 1, Measure: counting}, db); calls != afterSecond {
		t.Fatal("a smaller budget must be served from the database")
	}
}

func TestTuneKeepsFasterEarlierResult(t *testing.T) {
	db := NewDB("")
	task := testTask()
	// A record faster than anything the cost model can produce, from a
	// 1-trial "search": the budget upgrade must re-search but never
	// overwrite the faster result.
	fast := Result{Config: templates.DefaultConfig(), Ms: 1e-12, Trials: 1}
	db.Store(task, fast)
	res := Tune(task, Options{Budget: 16, Seed: 1}, db)
	if res.Ms != fast.Ms || res.Config != fast.Config {
		t.Fatalf("faster earlier record must be kept, got %.6g ms %v", res.Ms, res.Config)
	}
	// The re-search effort is remembered, so the next call at this budget
	// does not search again.
	calls := 0
	counting := func(tk Task, cfg templates.Config) float64 {
		calls++
		return SimMeasurer(tk, cfg)
	}
	Tune(task, Options{Budget: 16, Seed: 1, Measure: counting}, db)
	if calls != 0 {
		t.Fatalf("budget already spent must not be re-spent, ran %d measurements", calls)
	}
}

func TestCandidateRecordsRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "records.json")
	db := NewDB(path)
	cands := []StoredCandidate{
		{Block: 1, Config: templates.Config{TileCo: 1, TileH: 1, TileW: 4, VecW: 1, TileK: 1}, KernelMs: 0.75},
		{Block: 4, Config: templates.Config{TileCo: 4, TileH: 2, TileW: 8, VecW: 4, TileK: 2, UnrollKernel: true}, KernelMs: 0.25},
	}
	db.StoreCandidates("dev", "wl", 48, cands)

	got, ok := db.LookupCandidates("dev", "wl", 48)
	if !ok || !reflect.DeepEqual(got, cands) {
		t.Fatalf("lookup = %+v ok=%v", got, ok)
	}
	if _, ok := db.LookupCandidates("dev", "wl", 64); ok {
		t.Fatal("a deeper-budget request must miss a shallow candidate set")
	}
	if _, ok := db.LookupCandidates("otherdev", "wl", 48); ok {
		t.Fatal("different device must miss")
	}

	// A shallower set never downgrades a deeper one.
	db.StoreCandidates("dev", "wl", 16, cands[:1])
	if got, ok := db.LookupCandidates("dev", "wl", 48); !ok || len(got) != 2 {
		t.Fatal("shallow StoreCandidates must not replace the deeper set")
	}

	// Candidate sets and single schedule records share a workload without
	// clobbering each other.
	task := testTask()
	db.StoreCandidates("dev", task.Workload.Key(), 8, cands)
	db.Store(task, Result{Config: cands[1].Config, Ms: 0.25, Trials: 8})
	if _, ok := db.Lookup(task); !ok {
		t.Fatal("single record lost after StoreCandidates on the same workload")
	}

	if err := db.Save(); err != nil {
		t.Fatal(err)
	}
	db2, err := OpenDB(path)
	if err != nil {
		t.Fatal(err)
	}
	if db2.Len() != db.Len() {
		t.Fatalf("reloaded %d records, want %d", db2.Len(), db.Len())
	}
	got, ok = db2.LookupCandidates("dev", "wl", 48)
	if !ok || !reflect.DeepEqual(got, cands) {
		t.Fatalf("candidates did not survive the disk round-trip: %+v ok=%v", got, ok)
	}
}

func TestStoreBestConcurrent(t *testing.T) {
	db := NewDB("")
	task := testTask()
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 50; i++ {
				db.StoreBest(task, Result{Config: templates.DefaultConfig(),
					Ms: float64(1+(g+i)%7) * 0.5, Trials: i})
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	r, ok := db.Lookup(task)
	if !ok || r.Ms != 0.5 {
		t.Fatalf("best result must survive concurrent stores, got %.3f ok=%v", r.Ms, ok)
	}
}

// TestKernelChoiceRecordsRoundTrip: conv algorithm records live under their
// own kind key — they never collide with schedule or candidate records for
// the same workload — and survive the disk round-trip.
func TestKernelChoiceRecordsRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "records.json")
	db := NewDB(path)

	db.StoreKernelChoice("dev", "wl", "gemm", 0.42)
	if name, ok := db.LookupKernelChoice("dev", "wl"); !ok || name != "gemm" {
		t.Fatalf("lookup = %q, %v", name, ok)
	}
	if _, ok := db.LookupKernelChoice("otherdev", "wl"); ok {
		t.Fatal("different device must miss")
	}

	// Kernel, candidate, and schedule records share a workload key space
	// without clobbering each other.
	task := testTask()
	db.StoreKernelChoice(task.Device.Name, task.Workload.Key(), "winograd", 0.2)
	db.Store(task, Result{Ms: 0.25, Trials: 8})
	db.StoreCandidates(task.Device.Name, task.Workload.Key(), 8, nil)
	if _, ok := db.Lookup(task); !ok {
		t.Fatal("schedule record lost after StoreKernelChoice on the same workload")
	}
	if name, ok := db.LookupKernelChoice(task.Device.Name, task.Workload.Key()); !ok || name != "winograd" {
		t.Fatalf("kernel record lost: %q, %v", name, ok)
	}

	// A newer choice replaces the old one.
	db.StoreKernelChoice("dev", "wl", "direct", 0.9)
	if name, _ := db.LookupKernelChoice("dev", "wl"); name != "direct" {
		t.Fatalf("re-store did not replace: %q", name)
	}

	if err := db.Save(); err != nil {
		t.Fatal(err)
	}
	db2, err := OpenDB(path)
	if err != nil {
		t.Fatal(err)
	}
	if name, ok := db2.LookupKernelChoice("dev", "wl"); !ok || name != "direct" {
		t.Fatalf("kernel record did not survive the disk round-trip: %q, %v", name, ok)
	}
}

// TestKernelChoiceDTypeRoundTrip: per-dtype kernel records survive a
// save/load cycle under distinct keys, and fp32 stays on the legacy
// (dtype-less) key so databases written before the dtype field still
// resolve through both the plain and the explicit-fp32 lookups.
func TestKernelChoiceDTypeRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "records.json")
	db := NewDB(path)
	const dev, wl = "testdev", "conv n1c64"
	db.StoreKernelChoice(dev, wl, "winograd", 1.5)
	db.StoreKernelChoiceDType(dev, wl, "fp16", "gemm", 0.9)
	db.StoreKernelChoiceDType(dev, wl, "int8", "gemm", 0.7)
	// "fp32" must alias the legacy record, not create a second key.
	db.StoreKernelChoiceDType(dev, wl, "fp32", "direct", 1.4)
	if err := db.Save(); err != nil {
		t.Fatal(err)
	}

	loaded, err := OpenDB(path)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		dtype, kernel string
	}{
		{"", "direct"}, {"fp32", "direct"}, {"fp16", "gemm"}, {"int8", "gemm"},
	}
	for _, tc := range cases {
		got, ok := loaded.LookupKernelChoiceDType(dev, wl, tc.dtype)
		if !ok || got != tc.kernel {
			t.Errorf("dtype %q: got %q/%v, want %q", tc.dtype, got, ok, tc.kernel)
		}
	}
	if got, ok := loaded.LookupKernelChoice(dev, wl); !ok || got != "direct" {
		t.Errorf("legacy lookup got %q/%v, want direct", got, ok)
	}

	// A database written without the dtype field (pre-dtype schema) must
	// still resolve: strip the field by rewriting the record by hand.
	legacy := filepath.Join(t.TempDir(), "legacy.json")
	if err := os.WriteFile(legacy, []byte(`[{"device":"testdev","kind":"kernel","workload":"conv n1c64","kernel":"direct","ms":1.4}]`), 0o644); err != nil {
		t.Fatal(err)
	}
	ldb, err := OpenDB(legacy)
	if err != nil {
		t.Fatal(err)
	}
	for _, dt := range []string{"", "fp32"} {
		if got, ok := ldb.LookupKernelChoiceDType(dev, wl, dt); !ok || got != "direct" {
			t.Errorf("legacy file dtype %q: got %q/%v, want direct", dt, got, ok)
		}
	}
}
