package graphtuner

import (
	"math"
	"reflect"
	"testing"

	"unigpu/internal/ops"
	"unigpu/internal/sim"
)

func conv(cin, hw, cout, k, stride, pad int) ops.ConvWorkload {
	return ops.ConvWorkload{N: 1, CIn: cin, H: hw, W: hw, COut: cout, KH: k, KW: k,
		StrideH: stride, StrideW: stride, PadH: pad, PadW: pad}
}

func TestCandidatesCoverLayouts(t *testing.T) {
	w := conv(32, 28, 64, 3, 1, 1)
	cands := CandidatesFor(w, sim.MaxwellNano, 16, 1)
	if len(cands) < 4 {
		t.Fatalf("expected several layout candidates, got %d", len(cands))
	}
	seen := map[int]bool{}
	for _, c := range cands {
		if c.Config.TileCo%c.Block != 0 {
			t.Fatalf("candidate config blocking %d incompatible with layout block %d", c.Config.TileCo, c.Block)
		}
		if !(c.KernelMs > 0) || math.IsInf(c.KernelMs, 0) {
			t.Fatalf("bad kernel cost %v", c.KernelMs)
		}
		if seen[c.Block] {
			t.Fatalf("duplicate block %d", c.Block)
		}
		seen[c.Block] = true
	}
}

func TestTransformMs(t *testing.T) {
	w := conv(64, 56, 64, 3, 1, 1)
	if TransformMs(w, 8, 8, sim.MaliT860) != 0 {
		t.Fatal("same layout must be free")
	}
	tm := TransformMs(w, 1, 8, sim.MaliT860)
	if !(tm > 0) {
		t.Fatal("layout change must cost time")
	}
	// Bigger tensors cost more to transform.
	big := conv(64, 112, 64, 3, 1, 1)
	if TransformMs(big, 1, 8, sim.MaliT860) <= tm {
		t.Fatal("transform cost should scale with tensor size")
	}
}

func TestDPNeverWorseThanGreedy(t *testing.T) {
	chain := []ops.ConvWorkload{
		conv(3, 56, 32, 3, 1, 1),
		conv(32, 56, 32, 3, 1, 1),
		conv(32, 56, 64, 1, 1, 0),
		conv(64, 56, 64, 3, 1, 1),
		conv(64, 56, 16, 1, 1, 0),
	}
	for _, d := range []*sim.Device{sim.IntelHD505, sim.MaliT860, sim.MaxwellNano} {
		cands := make([][]Candidate, len(chain))
		for i, w := range chain {
			cands[i] = CandidatesFor(w, d, 12, 7)
		}
		dp := Optimize(chain, cands, d)
		greedy := Greedy(chain, cands, d)
		if dp.TotalMs > greedy.TotalMs+1e-9 {
			t.Errorf("%s: DP %.4f ms worse than greedy %.4f ms", d.Name, dp.TotalMs, greedy.TotalMs)
		}
		if len(dp.Choices) != len(chain) {
			t.Fatal("plan must choose a layout per node")
		}
	}
}

func TestDPAvoidsTransformsWhenKernelsTie(t *testing.T) {
	// Two identical nodes with two layouts of equal kernel cost: the DP
	// must pick matching layouts (zero transforms); a transform-oblivious
	// choice could alternate.
	w := conv(16, 28, 16, 3, 1, 1)
	cands := [][]Candidate{
		{{Block: 4, KernelMs: 1.0}, {Block: 8, KernelMs: 1.0}},
		{{Block: 4, KernelMs: 1.0}, {Block: 8, KernelMs: 1.0}},
	}
	plan := Optimize([]ops.ConvWorkload{w, w}, cands, sim.MaxwellNano)
	if plan.Choices[0].Block != plan.Choices[1].Block {
		t.Fatalf("DP should align layouts: %d vs %d", plan.Choices[0].Block, plan.Choices[1].Block)
	}
}

func TestDPAcceptsTransformWhenKernelGainDominates(t *testing.T) {
	w := conv(16, 28, 16, 3, 1, 1)
	// Node 2's block-8 kernel is massively faster: worth a transform.
	cands := [][]Candidate{
		{{Block: 4, KernelMs: 1.0}, {Block: 8, KernelMs: 5.0}},
		{{Block: 4, KernelMs: 50.0}, {Block: 8, KernelMs: 1.0}},
	}
	plan := Optimize([]ops.ConvWorkload{w, w}, cands, sim.MaxwellNano)
	if plan.Choices[0].Block != 4 || plan.Choices[1].Block != 8 {
		t.Fatalf("DP should switch layouts for a large kernel gain, got %d,%d",
			plan.Choices[0].Block, plan.Choices[1].Block)
	}
	if plan.TransformCnt == 0 {
		t.Fatal("plan should record the transform")
	}
}

func TestPlanAccounting(t *testing.T) {
	chain := []ops.ConvWorkload{conv(8, 14, 16, 3, 1, 1), conv(16, 14, 16, 3, 1, 1)}
	plan := TuneSequence(chain, sim.IntelHD505, 10, 3)
	if math.Abs(plan.TotalMs-(plan.KernelMs+plan.TransformMs)) > 1e-6 {
		t.Fatalf("total %.6f != kernel %.6f + transform %.6f", plan.TotalMs, plan.KernelMs, plan.TransformMs)
	}
}

func TestEmptySequence(t *testing.T) {
	plan := Optimize(nil, nil, sim.MaxwellNano)
	if plan.TotalMs != 0 || len(plan.Choices) != 0 {
		t.Fatal("empty sequence should yield an empty plan")
	}
}

func TestCandidatesForConcurrentlyDeterministic(t *testing.T) {
	// The per-layout searches run concurrently but each has its own
	// deterministic RNG, so repeated runs must agree exactly, in order.
	w := conv(32, 28, 64, 3, 1, 1)
	want := CandidatesFor(w, sim.MaxwellNano, 16, 1)
	for i := 0; i < 5; i++ {
		got := CandidatesFor(w, sim.MaxwellNano, 16, 1)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("run %d diverged:\n got %+v\nwant %+v", i, got, want)
		}
	}
}
