// Package graphtuner implements the graph-level layout tuning of §3.2.3
// (the GraphTuner box of Figure 1, after [26]): each convolution prefers a
// data layout NCHW[x]c matching its best schedule's channel blocking, but
// neighbouring convolutions that disagree on x pay a layout-transform
// kernel between them. The tuner runs dynamic programming over the conv
// sequence to minimise total (kernel + transform) time — trading a
// per-kernel optimum against transformation overhead, exactly the
// trade-off the paper describes.
package graphtuner

import (
	"math"
	"math/rand"
	"sync"
	"sync/atomic"

	"unigpu/internal/obs"
	"unigpu/internal/ops"
	"unigpu/internal/sim"
	"unigpu/internal/templates"
)

// Candidate is one (layout, schedule) choice for a conv node.
type Candidate struct {
	Block    int // channel block x of NCHW[x]c (1 = plain NCHW)
	Config   templates.Config
	KernelMs float64
}

// LayoutBlocks are the channel blockings considered per node.
var LayoutBlocks = []int{1, 2, 4, 8, 16, 32}

// CandidatesFor tunes the workload once per candidate layout: the search is
// restricted to schedules whose output-channel blocking equals the layout
// block, so the candidate's kernel time reflects operating natively in
// that layout.
func CandidatesFor(w ops.ConvWorkload, d *sim.Device, budget int, seed int64) []Candidate {
	return CandidatesForUnder(nil, w, d, budget, seed)
}

// CandidatesForUnder is CandidatesFor with an explicit parent span, for
// callers running several searches concurrently (the implicit span stack
// assumes sequential calls). The per-layout searches themselves run
// concurrently — each layout has an independent restricted space and its
// own deterministic RNG (seed + block), so the result is identical to the
// sequential search.
func CandidatesForUnder(parent *obs.Span, w ops.ConvWorkload, d *sim.Device, budget int, seed int64) []Candidate {
	var sp *obs.Span
	if parent != nil {
		sp = parent.Child("graphtuner.candidates",
			obs.KV("workload", w.Key()), obs.KV("device", d.Name))
	} else {
		sp = obs.Start("graphtuner.candidates",
			obs.KV("workload", w.Key()), obs.KV("device", d.Name))
	}
	defer sp.End()
	space := templates.ConfigSpace(w, d)
	results := make([]*Candidate, len(LayoutBlocks))
	var measured atomic.Int64
	var wg sync.WaitGroup
	for bi, b := range LayoutBlocks {
		if b > w.COut {
			continue
		}
		wg.Add(1)
		go func(bi, b int) {
			defer wg.Done()
			lsp := sp.Child("graphtuner.layout", obs.KVInt("block", b))
			defer lsp.End()
			// A schedule is compatible with layout NCHW[b]c when its output-
			// channel tile is a multiple of the block, so the kernel writes
			// whole blocks.
			var restricted []templates.Config
			for _, c := range space {
				if c.TileCo%b == 0 {
					restricted = append(restricted, c)
				}
			}
			if len(restricted) == 0 {
				return
			}
			rng := rand.New(rand.NewSource(seed + int64(b)))
			best := Candidate{Block: b, KernelMs: math.Inf(1)}
			trials := budget
			if trials >= len(restricted) {
				trials = len(restricted) // grid when affordable
				for _, c := range restricted {
					if ms := templates.CostMs(w, c, d); ms < best.KernelMs {
						best.KernelMs = ms
						best.Config = c
					}
				}
			} else {
				for i := 0; i < trials; i++ {
					c := restricted[rng.Intn(len(restricted))]
					if ms := templates.CostMs(w, c, d); ms < best.KernelMs {
						best.KernelMs = ms
						best.Config = c
					}
				}
			}
			measured.Add(int64(trials))
			lsp.SetAttrs(obs.KVInt("trials", trials), obs.KVFloat("best_ms", best.KernelMs))
			results[bi] = &best
		}(bi, b)
	}
	wg.Wait()
	out := make([]Candidate, 0, len(results))
	for _, r := range results {
		if r != nil {
			out = append(out, *r)
		}
	}
	obs.Count("tune.trials", measured.Load())
	sp.SetAttrs(obs.KVInt("trials", int(measured.Load())), obs.KVInt("layouts", len(out)))
	return out
}

// TransformMs prices converting one activation of the workload's input
// shape between channel blockings on the device: a bandwidth-bound
// re-layout kernel plus launch overhead; free when the blocks agree.
func TransformMs(w ops.ConvWorkload, fromBlock, toBlock int, d *sim.Device) float64 {
	if fromBlock == toBlock {
		return 0
	}
	elems := float64(w.N * w.CIn * w.H * w.W)
	return sim.CostFlopsBytes(d, 0, 2*elems /* read + write */, 4, 1) * 1e3
}

// Plan is the tuner's decision for a conv sequence.
type Plan struct {
	Choices      []Candidate // one per workload
	KernelMs     float64
	TransformMs  float64
	TotalMs      float64
	TransformCnt int
}

// Optimize runs the DP over a topological conv sequence: state j at node i
// is "node i runs in layout block j"; the transition charges the layout
// transform between consecutive blocks. The first conv additionally pays
// the NCHW -> blocked packing of the network input when it picks a blocked
// layout.
func Optimize(workloads []ops.ConvWorkload, cands [][]Candidate, d *sim.Device) Plan {
	n := len(workloads)
	if n == 0 {
		return Plan{}
	}
	sp := obs.Start("graphtuner.dp", obs.KVInt("convs", n))
	defer sp.End()
	const inf = math.MaxFloat64
	dp := make([][]float64, n)
	arg := make([][]int, n)

	dp[0] = make([]float64, len(cands[0]))
	arg[0] = make([]int, len(cands[0]))
	for j, c := range cands[0] {
		dp[0][j] = c.KernelMs + TransformMs(workloads[0], 1, c.Block, d)
	}
	for i := 1; i < n; i++ {
		dp[i] = make([]float64, len(cands[i]))
		arg[i] = make([]int, len(cands[i]))
		for j, c := range cands[i] {
			best, bestK := inf, 0
			for k, prev := range cands[i-1] {
				t := dp[i-1][k] + TransformMs(workloads[i], prev.Block, c.Block, d)
				if t < best {
					best, bestK = t, k
				}
			}
			dp[i][j] = best + c.KernelMs
			arg[i][j] = bestK
		}
	}

	// Backtrack from the cheapest final state.
	bestJ, best := 0, inf
	for j, v := range dp[n-1] {
		if v < best {
			best, bestJ = v, j
		}
	}
	plan := Plan{Choices: make([]Candidate, n), TotalMs: best}
	j := bestJ
	for i := n - 1; i >= 0; i-- {
		plan.Choices[i] = cands[i][j]
		plan.KernelMs += cands[i][j].KernelMs
		j = arg[i][j]
	}
	prev := 1
	for i, c := range plan.Choices {
		t := TransformMs(workloads[i], prev, c.Block, d)
		if t > 0 {
			plan.TransformCnt++
		}
		plan.TransformMs += t
		prev = c.Block
	}
	sp.SetAttrs(obs.KVFloat("total_ms", plan.TotalMs), obs.KVInt("transforms", plan.TransformCnt))
	return plan
}

// Greedy is the ablation baseline: every node takes its individually
// fastest kernel and pays whatever transforms result.
func Greedy(workloads []ops.ConvWorkload, cands [][]Candidate, d *sim.Device) Plan {
	n := len(workloads)
	plan := Plan{Choices: make([]Candidate, n)}
	for i := range workloads {
		best := Candidate{KernelMs: math.Inf(1)}
		for _, c := range cands[i] {
			if c.KernelMs < best.KernelMs {
				best = c
			}
		}
		plan.Choices[i] = best
		plan.KernelMs += best.KernelMs
	}
	prev := 1
	for i, c := range plan.Choices {
		t := TransformMs(workloads[i], prev, c.Block, d)
		if t > 0 {
			plan.TransformCnt++
		}
		plan.TransformMs += t
		prev = c.Block
	}
	plan.TotalMs = plan.KernelMs + plan.TransformMs
	return plan
}

// TuneSequence is the convenience entry: generate candidates per node and
// run the DP.
func TuneSequence(workloads []ops.ConvWorkload, d *sim.Device, budget int, seed int64) Plan {
	sp := obs.Start("graphtuner.tune_sequence",
		obs.KVInt("convs", len(workloads)), obs.KV("device", d.Name))
	defer sp.End()
	cands := make([][]Candidate, len(workloads))
	for i, w := range workloads {
		cands[i] = CandidatesFor(w, d, budget, seed)
	}
	return Optimize(workloads, cands, d)
}
