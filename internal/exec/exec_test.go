package exec

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"unigpu/internal/ir"
)

func run(t *testing.T, s ir.Stmt, bufs map[string][]float32) *Env {
	t.Helper()
	env := NewEnv()
	for n, b := range bufs {
		env.Bind(n, b)
	}
	if err := Run(s, env); err != nil {
		t.Fatal(err)
	}
	return env
}

func TestForLoopAndStore(t *testing.T) {
	i := ir.NewVar("i")
	s := &ir.For{Var: i, Min: ir.Imm(2), Extent: ir.Imm(3), Kind: ir.ForSerial,
		Body: &ir.Store{Buffer: "out", Index: ir.Sub(i, ir.Imm(2)), Value: ir.Mul(i, i)}}
	out := make([]float32, 3)
	run(t, s, map[string][]float32{"out": out})
	want := []float32{4, 9, 16}
	for k := range want {
		if out[k] != want[k] {
			t.Fatalf("out = %v, want %v", out, want)
		}
	}
}

func TestLoopVariableScoping(t *testing.T) {
	// An inner loop reusing a variable name must restore the outer value.
	i := ir.NewVar("i")
	inner := &ir.For{Var: ir.NewVar("i"), Min: ir.Imm(10), Extent: ir.Imm(1), Kind: ir.ForSerial,
		Body: &ir.Store{Buffer: "tmp", Index: ir.Imm(0), Value: ir.Imm(0)}}
	s := &ir.For{Var: i, Min: ir.Imm(0), Extent: ir.Imm(2), Kind: ir.ForSerial,
		Body: ir.SeqOf(inner, &ir.Store{Buffer: "out", Index: i, Value: i})}
	out := make([]float32, 2)
	run(t, s, map[string][]float32{"out": out, "tmp": make([]float32, 1)})
	if out[0] != 0 || out[1] != 1 {
		t.Fatalf("outer loop variable corrupted: %v", out)
	}
}

func TestLetAndIf(t *testing.T) {
	x := ir.NewVar("x")
	s := &ir.LetStmt{Var: x, Value: ir.Imm(5),
		Body: &ir.IfThenElse{
			Cond: ir.LT(x, ir.Imm(10)),
			Then: &ir.Store{Buffer: "out", Index: ir.Imm(0), Value: x},
			Else: &ir.Store{Buffer: "out", Index: ir.Imm(0), Value: ir.Imm(-1)},
		}}
	out := make([]float32, 1)
	run(t, s, map[string][]float32{"out": out})
	if out[0] != 5 {
		t.Fatalf("let/if = %v", out[0])
	}
}

func TestAllocateScoping(t *testing.T) {
	s := &ir.Allocate{Buffer: "scratch", Type: ir.Float32, Size: ir.Imm(4), Scope: ir.ScopeLocal,
		Body: ir.SeqOf(
			&ir.Store{Buffer: "scratch", Index: ir.Imm(1), Value: ir.FImm(3.5)},
			&ir.Store{Buffer: "out", Index: ir.Imm(0), Value: ir.LoadF("scratch", ir.Imm(1))},
		)}
	out := make([]float32, 1)
	env := run(t, s, map[string][]float32{"out": out})
	if out[0] != 3.5 {
		t.Fatalf("allocate = %v", out[0])
	}
	if env.Buffer("scratch") != nil {
		t.Fatal("allocation must not leak out of its scope")
	}
}

func TestIntrinsics(t *testing.T) {
	cases := []struct {
		fn   string
		arg  float64
		want float64
	}{
		{"exp", 0, 1},
		{"log", 1, 0},
		{"sqrt", 9, 3},
		{"abs", -2, 2},
		{"floor", 2.7, 2},
		{"sigmoid", 0, 0.5},
	}
	for _, c := range cases {
		s := &ir.Store{Buffer: "out", Index: ir.Imm(0),
			Value: &ir.Call{Fn: c.fn, Args: []ir.Expr{ir.FImm(float32(c.arg))}, Type: ir.Float32}}
		out := make([]float32, 1)
		run(t, s, map[string][]float32{"out": out})
		if math.Abs(float64(out[0])-c.want) > 1e-6 {
			t.Errorf("%s(%v) = %v, want %v", c.fn, c.arg, out[0], c.want)
		}
	}
}

func TestIntegerDivisionTruncates(t *testing.T) {
	s := &ir.Store{Buffer: "out", Index: ir.Imm(0),
		Value: ir.Div(ir.Add(ir.NewVar("a"), ir.Imm(0)), ir.NewVar("b"))}
	out := make([]float32, 1)
	env := NewEnv()
	env.Bind("out", out)
	env.scalars["a"] = 7
	env.scalars["b"] = 2
	if err := Run(s, env); err != nil {
		t.Fatal(err)
	}
	if out[0] != 3 {
		t.Fatalf("7/2 = %v, want 3 (truncating int division)", out[0])
	}
}

func TestErrorsAreReportedNotPanics(t *testing.T) {
	cases := []struct {
		name string
		s    ir.Stmt
		want string
	}{
		{"unbound store", &ir.Store{Buffer: "nope", Index: ir.Imm(0), Value: ir.Imm(1)}, "unbound buffer"},
		{"unbound load", &ir.Store{Buffer: "out", Index: ir.Imm(0), Value: ir.LoadF("nope", ir.Imm(0))}, "unbound buffer"},
		{"oob store", &ir.Store{Buffer: "out", Index: ir.Imm(9), Value: ir.Imm(1)}, "out of range"},
		{"unbound var", &ir.Store{Buffer: "out", Index: ir.NewVar("ghost"), Value: ir.Imm(1)}, "unbound variable"},
		{"barrier", &ir.Barrier{Scope: ir.ScopeShared}, "lockstep"},
		{"unknown intrinsic", &ir.Evaluate{Value: &ir.Call{Fn: "warp_vote", Type: ir.Float32}}, "unknown intrinsic"},
	}
	for _, c := range cases {
		env := NewEnv()
		env.Bind("out", make([]float32, 1))
		err := Run(c.s, env)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want substring %q", c.name, err, c.want)
		}
	}
}

func TestPanicErrorCarriesStack(t *testing.T) {
	// A kernel mis-execution must be diagnosable: the recovered error
	// carries the interpreter stack pointing at the failing statement.
	s := &ir.Store{Buffer: "out", Index: ir.Imm(9), Value: ir.Imm(1)}
	env := NewEnv()
	env.Bind("out", make([]float32, 1))
	err := Run(s, env)
	if err == nil {
		t.Fatal("out-of-range store must error")
	}
	for _, want := range []string{"goroutine", "execStmt"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error lacks stack frame %q:\n%v", want, err)
		}
	}
}

func TestSelectIsLazy(t *testing.T) {
	// The untaken branch must not be evaluated: padding guards rely on it.
	cond := ir.LT(ir.Imm(0), ir.Imm(1)) // true -> A
	s := &ir.Store{Buffer: "out", Index: ir.Imm(0),
		Value: &ir.Select{Cond: cond, A: ir.FImm(1), B: ir.LoadF("out", ir.Imm(99))}}
	out := make([]float32, 1)
	run(t, s, map[string][]float32{"out": out}) // would error if B evaluated
	if out[0] != 1 {
		t.Fatalf("select = %v", out[0])
	}
}

func TestGPUAxisKindsIterateSequentially(t *testing.T) {
	// blockIdx/threadIdx axes behave as loops under interpretation.
	b := ir.NewVar("b")
	tt := ir.NewVar("t")
	s := &ir.For{Var: b, Min: ir.Imm(0), Extent: ir.Imm(2), Kind: ir.ForThreadBlock,
		Body: &ir.For{Var: tt, Min: ir.Imm(0), Extent: ir.Imm(3), Kind: ir.ForThread,
			Body: &ir.Store{Buffer: "out", Index: ir.Add(ir.Mul(b, ir.Imm(3)), tt), Value: ir.Imm(1)}}}
	out := make([]float32, 6)
	run(t, s, map[string][]float32{"out": out})
	for i, v := range out {
		if v != 1 {
			t.Fatalf("thread (%d) did not execute", i)
		}
	}
}

func TestFloatModUsesMathMod(t *testing.T) {
	// 7.5 mod 2 = 1.5; the old int(a)%int(b) silently truncated to 1.
	e := &ir.Binary{Op: ir.OpMod, A: &ir.FloatImm{Value: 7.5}, B: &ir.FloatImm{Value: 2}}
	if got := evalBinary(e, 7.5, 2); got != math.Mod(7.5, 2) {
		t.Fatalf("float mod = %v, want %v", got, math.Mod(7.5, 2))
	}
	// Negative operands follow math.Mod (sign of the dividend).
	if got := evalBinary(e, -7.5, 2); got != math.Mod(-7.5, 2) {
		t.Fatalf("float mod = %v, want %v", got, math.Mod(-7.5, 2))
	}
}

func TestIntModStaysTruncating(t *testing.T) {
	e := &ir.Binary{Op: ir.OpMod, A: &ir.Var{Name: "a", Type: ir.Int32}, B: &ir.Var{Name: "b", Type: ir.Int32}}
	if got := evalBinary(e, 7, 2); got != 1 {
		t.Fatalf("int mod = %v, want 1", got)
	}
}

func TestIntDivisionByZeroPanicMessage(t *testing.T) {
	for _, op := range []ir.BinOp{ir.OpDiv, ir.OpMod} {
		e := &ir.Binary{Op: op, A: &ir.Var{Name: "a", Type: ir.Int32}, B: &ir.Var{Name: "b", Type: ir.Int32}}
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("%v by zero must panic", op)
				}
				if msg := fmt.Sprint(r); !strings.Contains(msg, "by zero") {
					t.Fatalf("%v by zero panic %q should name the cause, not be a raw runtime error", op, msg)
				}
			}()
			evalBinary(e, 1, 0)
		}()
	}
}
