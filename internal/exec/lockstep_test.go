package exec

import (
	"testing"

	"unigpu/internal/ir"
)

// cooperativeReduction builds the canonical cooperative kernel: each
// thread stages one element into shared memory, the block synchronises,
// then thread 0 reduces the staged tile.
//
//	blockIdx b {
//	  alloc shared[T] @shared
//	  threadIdx t {
//	    shared[t] = in[b*T + t]
//	    barrier(shared)
//	    if (t == 0) { acc = sum(shared); out[b] = acc }
//	  }
//	}
func cooperativeReduction(blocks, threads int) ir.Stmt {
	b := ir.NewVar("b")
	t := ir.NewVar("t")
	k := ir.NewVar("k")

	sumLoop := &ir.For{Var: k, Min: ir.Imm(0), Extent: ir.Imm(threads), Kind: ir.ForSerial,
		Body: &ir.Store{Buffer: "acc", Index: ir.Imm(0),
			Value: ir.Add(ir.LoadF("acc", ir.Imm(0)), ir.LoadF("shared", k))}}
	reduce := &ir.Allocate{Buffer: "acc", Type: ir.Float32, Size: ir.Imm(1), Scope: ir.ScopeLocal,
		Body: ir.SeqOf(
			&ir.Store{Buffer: "acc", Index: ir.Imm(0), Value: ir.FImm(0)},
			sumLoop,
			&ir.Store{Buffer: "out", Index: b, Value: ir.LoadF("acc", ir.Imm(0))},
		)}

	threadBody := ir.SeqOf(
		&ir.Store{Buffer: "shared", Index: t, Value: ir.LoadF("in", ir.Add(ir.Mul(b, ir.Imm(threads)), t))},
		&ir.Barrier{Scope: ir.ScopeShared},
		&ir.IfThenElse{Cond: &ir.Binary{Op: ir.OpEQ, A: t, B: ir.Imm(0)}, Then: reduce},
	)
	return &ir.For{Var: b, Min: ir.Imm(0), Extent: ir.Imm(blocks), Kind: ir.ForThreadBlock,
		Body: &ir.Allocate{Buffer: "shared", Type: ir.Float32, Size: ir.Imm(threads), Scope: ir.ScopeShared,
			Body: &ir.For{Var: t, Min: ir.Imm(0), Extent: ir.Imm(threads), Kind: ir.ForThread,
				Body: threadBody}}}
}

func TestRunCooperativeReduction(t *testing.T) {
	blocks, threads := 3, 8
	kernel := cooperativeReduction(blocks, threads)

	in := make([]float32, blocks*threads)
	var wants []float32
	for b := 0; b < blocks; b++ {
		var s float32
		for i := 0; i < threads; i++ {
			in[b*threads+i] = float32(b*100 + i)
			s += in[b*threads+i]
		}
		wants = append(wants, s)
	}
	out := make([]float32, blocks)
	env := NewEnv()
	env.Bind("in", in)
	env.Bind("out", out)
	if err := RunCooperative(kernel, env); err != nil {
		t.Fatal(err)
	}
	for b, want := range wants {
		if out[b] != want {
			t.Fatalf("block %d sum = %v, want %v", b, out[b], want)
		}
	}
}

func TestPlainRunRejectsBarriers(t *testing.T) {
	// Without fission, the sequential interpreter must refuse (thread 0
	// would read shared slots other threads have not written yet).
	kernel := cooperativeReduction(1, 4)
	env := NewEnv()
	env.Bind("in", make([]float32, 4))
	env.Bind("out", make([]float32, 1))
	if err := Run(kernel, env); err == nil {
		t.Fatal("plain Run must reject cooperative kernels")
	}
}

func TestFissionSplitsPhases(t *testing.T) {
	kernel := cooperativeReduction(1, 4)
	rewritten := fissionBarriers(kernel)
	barriers, threadLoops := 0, 0
	ir.WalkStmt(rewritten, func(s ir.Stmt) bool {
		switch v := s.(type) {
		case *ir.Barrier:
			barriers++
		case *ir.For:
			if v.Kind == ir.ForThread {
				threadLoops++
			}
		}
		return true
	})
	if barriers != 0 {
		t.Fatalf("fission left %d barriers", barriers)
	}
	if threadLoops != 2 {
		t.Fatalf("one barrier should split the thread loop into 2 phases, got %d", threadLoops)
	}
}

func TestFissionNoOpWithoutBarriers(t *testing.T) {
	i := ir.NewVar("i")
	s := &ir.For{Var: i, Min: ir.Imm(0), Extent: ir.Imm(4), Kind: ir.ForThread,
		Body: &ir.Store{Buffer: "out", Index: i, Value: i}}
	if fissionBarriers(s) != ir.Stmt(s) {
		t.Fatal("barrier-free kernels must pass through unchanged")
	}
}

func TestRunCooperativeMultipleBarriers(t *testing.T) {
	// Two barriers -> three phases: stage, square in place, copy out.
	tvar := ir.NewVar("t")
	threads := 5
	body := ir.SeqOf(
		&ir.Store{Buffer: "shared", Index: tvar, Value: ir.LoadF("in", tvar)},
		&ir.Barrier{Scope: ir.ScopeShared},
		// Read a neighbour (wraps) — only safe after the barrier.
		&ir.Store{Buffer: "shared2", Index: tvar,
			Value: ir.LoadF("shared", ir.Mod(ir.Add(tvar, ir.Imm(1)), ir.Imm(threads)))},
		&ir.Barrier{Scope: ir.ScopeShared},
		&ir.Store{Buffer: "out", Index: tvar, Value: ir.LoadF("shared2", tvar)},
	)
	kernel := &ir.Allocate{Buffer: "shared", Type: ir.Float32, Size: ir.Imm(threads), Scope: ir.ScopeShared,
		Body: &ir.Allocate{Buffer: "shared2", Type: ir.Float32, Size: ir.Imm(threads), Scope: ir.ScopeShared,
			Body: &ir.For{Var: tvar, Min: ir.Imm(0), Extent: ir.Imm(threads), Kind: ir.ForThread, Body: body}}}

	in := []float32{10, 20, 30, 40, 50}
	out := make([]float32, threads)
	env := NewEnv()
	env.Bind("in", in)
	env.Bind("out", out)
	if err := RunCooperative(kernel, env); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < threads; i++ {
		if want := in[(i+1)%threads]; out[i] != want {
			t.Fatalf("out[%d] = %v, want neighbour %v", i, out[i], want)
		}
	}
}
