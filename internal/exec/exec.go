// Package exec interprets lowered loop IR deterministically, playing the
// role the CUDA/OpenCL driver plays on real silicon: it is how the stack
// validates that a scheduled kernel computes the same function as the
// reference operator, for every schedule the search visits.
//
// GPU-bound axes (blockIdx/threadIdx/subgroup) are iterated sequentially,
// which is semantically equivalent for kernels whose threads do not
// communicate through shared memory. Cooperative kernels — barriers between
// thread phases, the stage-to-shared-then-compute pattern — are handled by
// RunCooperative via barrier fission (see lockstep.go); Run itself rejects
// raw barriers so silent mis-execution is impossible. The vision operators
// additionally implement their algorithms natively in internal/vision and
// validate against sequential references.
package exec

import (
	"fmt"
	"math"
	"runtime/debug"

	"unigpu/internal/ir"
	"unigpu/internal/te"
)

// Env holds the buffers and scalar bindings visible to a kernel.
type Env struct {
	buffers map[string][]float32
	scalars map[string]float64
}

// NewEnv returns an empty environment.
func NewEnv() *Env {
	return &Env{buffers: map[string][]float32{}, scalars: map[string]float64{}}
}

// Bind attaches a named buffer.
func (e *Env) Bind(name string, data []float32) { e.buffers[name] = data }

// Buffer returns the named buffer, or nil.
func (e *Env) Buffer(name string) []float32 { return e.buffers[name] }

// RunKernel executes a lowered kernel with inputs and output bound by name.
func RunKernel(k *te.Kernel, env *Env) error {
	for _, in := range k.Inputs {
		if env.Buffer(in) == nil {
			return fmt.Errorf("exec: kernel %s input %q not bound", k.Name, in)
		}
	}
	if env.Buffer(k.Output.Name) == nil {
		return fmt.Errorf("exec: kernel %s output %q not bound", k.Name, k.Output.Name)
	}
	return Run(k.Body, env)
}

// Run executes a statement tree against the environment. A panic inside
// the interpreter (out-of-range store, unbound buffer, unknown intrinsic)
// is returned as an error carrying the interpreter stack, so a
// mis-executed kernel points at the offending statement, not just the
// message.
func Run(s ir.Stmt, env *Env) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("exec: %v\n%s", r, debug.Stack())
		}
	}()
	execStmt(s, env)
	return nil
}

func execStmt(s ir.Stmt, env *Env) {
	switch v := s.(type) {
	case *ir.For:
		lo := int(evalExpr(v.Min, env))
		n := int(evalExpr(v.Extent, env))
		name := v.Var.Name
		saved, had := env.scalars[name]
		for i := 0; i < n; i++ {
			env.scalars[name] = float64(lo + i)
			execStmt(v.Body, env)
		}
		if had {
			env.scalars[name] = saved
		} else {
			delete(env.scalars, name)
		}
	case *ir.Store:
		buf, ok := env.buffers[v.Buffer]
		if !ok {
			panic(fmt.Sprintf("store to unbound buffer %q", v.Buffer))
		}
		idx := int(evalExpr(v.Index, env))
		if idx < 0 || idx >= len(buf) {
			panic(fmt.Sprintf("store index %d out of range for %q (len %d)", idx, v.Buffer, len(buf)))
		}
		buf[idx] = float32(evalExpr(v.Value, env))
	case *ir.LetStmt:
		name := v.Var.Name
		saved, had := env.scalars[name]
		env.scalars[name] = evalExpr(v.Value, env)
		execStmt(v.Body, env)
		if had {
			env.scalars[name] = saved
		} else {
			delete(env.scalars, name)
		}
	case *ir.IfThenElse:
		if evalExpr(v.Cond, env) != 0 {
			execStmt(v.Then, env)
		} else if v.Else != nil {
			execStmt(v.Else, env)
		}
	case *ir.Allocate:
		size := int(evalExpr(v.Size, env))
		saved, had := env.buffers[v.Buffer]
		env.buffers[v.Buffer] = make([]float32, size)
		execStmt(v.Body, env)
		if had {
			env.buffers[v.Buffer] = saved
		} else {
			delete(env.buffers, v.Buffer)
		}
	case *ir.Seq:
		for _, st := range v.Stmts {
			execStmt(st, env)
		}
	case *ir.Barrier:
		// Sequential interpretation: only legal when threads do not
		// communicate. Cooperative kernels must not be interpreted.
		panic("barrier requires lockstep thread execution; cooperative kernels are validated natively (see internal/vision)")
	case *ir.Evaluate:
		evalExpr(v.Value, env)
	default:
		panic(fmt.Sprintf("unknown statement %T", s))
	}
}

func evalExpr(e ir.Expr, env *Env) float64 {
	switch v := e.(type) {
	case *ir.Var:
		val, ok := env.scalars[v.Name]
		if !ok {
			panic(fmt.Sprintf("unbound variable %q", v.Name))
		}
		return val
	case *ir.IntImm:
		return float64(v.Value)
	case *ir.FloatImm:
		return float64(v.Value)
	case *ir.Binary:
		a, b := evalExpr(v.A, env), evalExpr(v.B, env)
		return evalBinary(v, a, b)
	case *ir.Select:
		if evalExpr(v.Cond, env) != 0 {
			return evalExpr(v.A, env)
		}
		return evalExpr(v.B, env)
	case *ir.Load:
		buf, ok := env.buffers[v.Buffer]
		if !ok {
			panic(fmt.Sprintf("load from unbound buffer %q", v.Buffer))
		}
		idx := int(evalExpr(v.Index, env))
		if idx < 0 || idx >= len(buf) {
			panic(fmt.Sprintf("load index %d out of range for %q (len %d)", idx, v.Buffer, len(buf)))
		}
		return float64(buf[idx])
	case *ir.Call:
		return evalCall(v, env)
	case *ir.Cast:
		val := evalExpr(v.Value, env)
		if v.To == ir.Int32 {
			return float64(int(val))
		}
		if v.To == ir.Float32 {
			return float64(float32(val))
		}
		return val
	default:
		panic(fmt.Sprintf("unknown expression %T", e))
	}
}

func evalBinary(v *ir.Binary, a, b float64) float64 {
	isInt := v.A.DType() == ir.Int32 && v.B.DType() == ir.Int32
	switch v.Op {
	case ir.OpAdd:
		return a + b
	case ir.OpSub:
		return a - b
	case ir.OpMul:
		return a * b
	case ir.OpDiv:
		if isInt {
			if int(b) == 0 {
				panic(fmt.Sprintf("integer division by zero: %v / %v", v.A, v.B))
			}
			return float64(int(a) / int(b)) // truncating, like C and Go
		}
		return a / b
	case ir.OpMod:
		if isInt {
			if int(b) == 0 {
				panic(fmt.Sprintf("integer modulo by zero: %v %% %v", v.A, v.B))
			}
			return float64(int(a) % int(b))
		}
		return math.Mod(a, b)
	case ir.OpMin:
		return math.Min(a, b)
	case ir.OpMax:
		return math.Max(a, b)
	case ir.OpLT:
		return b2f(a < b)
	case ir.OpLE:
		return b2f(a <= b)
	case ir.OpGT:
		return b2f(a > b)
	case ir.OpGE:
		return b2f(a >= b)
	case ir.OpEQ:
		return b2f(a == b)
	case ir.OpNE:
		return b2f(a != b)
	case ir.OpAnd:
		return b2f(a != 0 && b != 0)
	case ir.OpOr:
		return b2f(a != 0 || b != 0)
	}
	panic(fmt.Sprintf("unknown operator %v", v.Op))
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func evalCall(c *ir.Call, env *Env) float64 {
	// Every known intrinsic takes one or two arguments; evaluating them
	// directly keeps kernel inner loops free of per-call slice allocations.
	if len(c.Args) < 1 || len(c.Args) > 2 {
		panic(fmt.Sprintf("unknown intrinsic %q with %d args", c.Fn, len(c.Args)))
	}
	a0 := evalExpr(c.Args[0], env)
	var a1 float64
	if len(c.Args) == 2 {
		a1 = evalExpr(c.Args[1], env)
	}
	switch c.Fn {
	case "exp":
		return math.Exp(a0)
	case "log":
		return math.Log(a0)
	case "sqrt":
		return math.Sqrt(a0)
	case "abs":
		return math.Abs(a0)
	case "floor":
		return math.Floor(a0)
	case "sigmoid":
		return 1 / (1 + math.Exp(-a0))
	case "pow":
		return math.Pow(a0, a1)
	// The Intel subgroup primitives degenerate to plain data movement under
	// sequential single-lane semantics.
	case "intel_sub_group_block_read", "intel_sub_group_shuffle":
		return a0
	}
	panic(fmt.Sprintf("unknown intrinsic %q", c.Fn))
}
