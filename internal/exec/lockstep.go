package exec

import (
	"unigpu/internal/ir"
)

// Barrier fission: a thread loop whose body is a sequence with top-level
// barriers,
//
//	threadIdx t { phase0; barrier; phase1; ... }
//
// is semantically equivalent (for these synchronisation patterns) to
// running each phase as a complete loop over the threads:
//
//	threadIdx t { phase0 }; threadIdx t { phase1 }; ...
//
// which a sequential interpreter can execute faithfully. This covers the
// canonical cooperative GPU pattern — stage into shared memory, barrier,
// compute — without needing true lockstep suspension. Kernels whose
// barriers sit deeper (inside data-dependent control flow) remain
// rejected, matching CUDA's own requirement that barriers be uniformly
// executed.

// fissionBarriers rewrites every GPU-thread loop containing top-level
// barriers into a sequence of barrier-free thread loops. Returns the
// rewritten statement.
func fissionBarriers(s ir.Stmt) ir.Stmt {
	switch v := s.(type) {
	case *ir.For:
		body := fissionBarriers(v.Body)
		if v.Kind == ir.ForThread || v.Kind == ir.ForSubgroup {
			phases := splitAtBarriers(body)
			if len(phases) > 1 {
				out := make([]ir.Stmt, len(phases))
				for i, ph := range phases {
					out[i] = &ir.For{Var: v.Var, Min: v.Min, Extent: v.Extent, Kind: v.Kind, Body: ph}
				}
				return ir.SeqOf(out...)
			}
		}
		if body == v.Body {
			return v
		}
		return &ir.For{Var: v.Var, Min: v.Min, Extent: v.Extent, Kind: v.Kind, Body: body}
	case *ir.Seq:
		changed := false
		out := make([]ir.Stmt, len(v.Stmts))
		for i, st := range v.Stmts {
			out[i] = fissionBarriers(st)
			changed = changed || out[i] != st
		}
		if !changed {
			return v
		}
		return &ir.Seq{Stmts: out}
	case *ir.Allocate:
		body := fissionBarriers(v.Body)
		if body == v.Body {
			return v
		}
		return &ir.Allocate{Buffer: v.Buffer, Type: v.Type, Size: v.Size, Scope: v.Scope, Body: body}
	case *ir.LetStmt:
		body := fissionBarriers(v.Body)
		if body == v.Body {
			return v
		}
		return &ir.LetStmt{Var: v.Var, Value: v.Value, Body: body}
	case *ir.IfThenElse:
		then := fissionBarriers(v.Then)
		var els ir.Stmt
		if v.Else != nil {
			els = fissionBarriers(v.Else)
		}
		if then == v.Then && els == v.Else {
			return v
		}
		return &ir.IfThenElse{Cond: v.Cond, Then: then, Else: els}
	default:
		return s
	}
}

// splitAtBarriers cuts a statement at its top-level barriers; a statement
// without top-level barriers yields one phase.
func splitAtBarriers(s ir.Stmt) []ir.Stmt {
	seq, ok := s.(*ir.Seq)
	if !ok {
		if _, isBarrier := s.(*ir.Barrier); isBarrier {
			return []ir.Stmt{ir.SeqOf()}
		}
		return []ir.Stmt{s}
	}
	var phases []ir.Stmt
	var cur []ir.Stmt
	for _, st := range seq.Stmts {
		if _, isBarrier := st.(*ir.Barrier); isBarrier {
			phases = append(phases, ir.SeqOf(cur...))
			cur = nil
			continue
		}
		cur = append(cur, st)
	}
	phases = append(phases, ir.SeqOf(cur...))
	return phases
}

// RunCooperative executes a statement tree that may contain cooperative
// (barrier-synchronised) thread loops, applying barrier fission first.
// Shared allocations must enclose the thread loops they serve (the usual
// kernel shape), so the staged data survives across phases.
func RunCooperative(s ir.Stmt, env *Env) error {
	return Run(fissionBarriers(s), env)
}
