package te

import (
	"fmt"

	"unigpu/internal/ir"
)

// Kernel is a lowered tensor computation: a loop-IR body plus its buffer
// parameters. The same Kernel is interpreted (internal/exec), priced
// (internal/sim), and printed as CUDA/OpenCL (internal/codegen).
type Kernel struct {
	Name   string
	Inputs []string // input buffer names in first-use order
	Output *Tensor
	Body   ir.Stmt
	Sched  *Schedule
}

// Lower materialises the schedule into a loop nest.
//
// Shape of the result for a reduction op:
//
//	spatial loops {
//	  alloc acc[1] @local
//	  acc[0] = init
//	  reduce loops { if guards { acc[0] = combine(acc[0], body) } }
//	  if guards { out[flat] = acc[0] }
//	}
//
// Boundary guards appear only for splits whose factor does not divide the
// parent extent, matching how TVM emits likely-conditions.
func Lower(name string, s *Schedule) *Kernel {
	op := s.Op

	// Spatial leaves must all precede reduce leaves so the scalar
	// accumulator lowering is valid.
	firstReduce := len(s.leaves)
	for i, n := range s.leaves {
		if n.reduce {
			firstReduce = i
			break
		}
	}
	for _, n := range s.leaves[firstReduce:] {
		if !n.reduce {
			panic("te: spatial axis ordered inside a reduction axis; reorder reduce axes innermost")
		}
	}

	rootExpr, guards := s.resolveRoots()

	// Substitute derived-axis expressions into the body and output index.
	subst := func(e ir.Expr) ir.Expr {
		for node, ex := range rootExpr {
			e = ir.SubstExpr(e, node.iv.Var.Name, ex)
		}
		return e
	}
	body := subst(op.Body)

	outIdx := ir.Expr(ir.Imm(0))
	for i, iv := range op.Axes {
		outIdx = ir.Mul(outIdx, ir.Imm(op.Out.Shape[i]))
		ax := ir.Expr(iv.Var)
		if ex, ok := rootExpr[s.rootNode(iv)]; ok {
			ax = ex
		}
		outIdx = ir.Add(outIdx, ax)
	}
	outIdx = subst(outIdx)

	guard := func(inner ir.Stmt) ir.Stmt {
		for i := len(guards) - 1; i >= 0; i-- {
			inner = &ir.IfThenElse{Cond: guards[i], Then: inner}
		}
		return inner
	}

	var innerBody ir.Stmt
	if len(op.ReduceAxes) == 0 {
		innerBody = guard(&ir.Store{Buffer: op.Out.Name, Index: outIdx, Value: body})
	} else {
		accName := name + "_acc"
		upd := guard(&ir.Store{Buffer: accName, Index: ir.Imm(0),
			Value: &ir.Binary{Op: op.Combine, A: ir.LoadF(accName, ir.Imm(0)), B: body}})
		red := upd
		for i := len(s.leaves) - 1; i >= firstReduce; i-- {
			red = wrapLoop(s.leaves[i], red)
		}
		final := ir.Stmt(&ir.Store{Buffer: op.Out.Name, Index: outIdx, Value: ir.LoadF(accName, ir.Imm(0))})
		for i := len(s.spatialGuards) - 1; i >= 0; i-- {
			final = &ir.IfThenElse{Cond: s.spatialGuards[i], Then: final}
		}
		innerBody = &ir.Allocate{Buffer: accName, Type: ir.Float32, Size: ir.Imm(1), Scope: ir.ScopeLocal,
			Body: ir.SeqOf(
				&ir.Store{Buffer: accName, Index: ir.Imm(0), Value: op.Init},
				red,
				final,
			)}
	}

	stmt := innerBody
	for i := min(firstReduce, len(s.leaves)) - 1; i >= 0; i-- {
		stmt = wrapLoop(s.leaves[i], stmt)
	}

	k := &Kernel{Name: name, Output: op.Out, Body: stmt, Sched: s}
	k.Inputs = collectInputs(op, stmt)
	return k
}

func wrapLoop(n *axisNode, body ir.Stmt) ir.Stmt {
	return &ir.For{Var: n.iv.Var, Min: ir.Imm(0), Extent: ir.Imm(n.iv.Extent), Kind: n.kind, Body: body}
}

// rootNode finds the axis node holding the given root IterVar.
func (s *Schedule) rootNode(iv *IterVar) *axisNode {
	for n := range s.roots {
		if n.iv == iv {
			return n
		}
	}
	return nil
}

// resolveRoots expresses every non-leaf axis in terms of leaf loop
// variables and collects boundary-guard conditions for non-dividing splits.
// Guards over spatial-only expressions are additionally remembered in
// s.spatialGuards so reduction lowering can re-apply them to the final
// store.
func (s *Schedule) resolveRoots() (map[*axisNode]ir.Expr, []ir.Expr) {
	exprOf := make(map[*axisNode]ir.Expr)
	node := func(n *axisNode) ir.Expr {
		if e, ok := exprOf[n]; ok {
			return e
		}
		return n.iv.Var
	}
	var guards []ir.Expr
	s.spatialGuards = nil
	for i := len(s.relations) - 1; i >= 0; i-- {
		switch r := s.relations[i].(type) {
		case *splitRel:
			e := ir.Add(ir.Mul(node(r.outer), ir.Imm(r.factor)), node(r.inner))
			exprOf[r.parent] = e
			if r.parent.iv.Extent%r.factor != 0 {
				g := ir.LT(e, ir.Imm(r.parent.iv.Extent))
				guards = append(guards, g)
				if !r.parent.reduce {
					s.spatialGuards = append(s.spatialGuards, g)
				}
			}
		case *fuseRel:
			f := node(r.fused)
			exprOf[r.a] = ir.Div(f, ir.Imm(r.b.iv.Extent))
			exprOf[r.b] = ir.Mod(f, ir.Imm(r.b.iv.Extent))
		}
	}
	// Keep only root-axis entries; intermediate derived axes are already
	// folded into the root expressions via the reverse walk above... except
	// that the reverse walk resolves children before parents, so parents'
	// expressions may still reference intermediate axis variables. Fix by
	// substituting until closed.
	for n, e := range exprOf {
		exprOf[n] = closeOver(e, exprOf)
	}
	for i, g := range guards {
		guards[i] = closeOver(g, exprOf)
	}
	for i, g := range s.spatialGuards {
		s.spatialGuards[i] = closeOver(g, exprOf)
	}
	// Drop non-root entries.
	for n := range exprOf {
		if !s.roots[n] {
			delete(exprOf, n)
		}
	}
	return exprOf, guards
}

// closeOver substitutes derived-axis variables until the expression refers
// only to leaf loop variables.
func closeOver(e ir.Expr, exprOf map[*axisNode]ir.Expr) ir.Expr {
	for iter := 0; iter < 64; iter++ {
		changed := false
		for n, ex := range exprOf {
			next := ir.SubstExpr(e, n.iv.Var.Name, ex)
			if next != e {
				e = next
				changed = true
			}
		}
		if !changed {
			return e
		}
	}
	panic("te: cyclic axis relations")
}

// collectInputs finds input buffers loaded by the kernel body, in first-use
// order, excluding the op's own output and in-kernel temporaries.
func collectInputs(op *ComputeOp, body ir.Stmt) []string {
	allocs := map[string]bool{}
	ir.WalkStmt(body, func(s ir.Stmt) bool {
		if a, ok := s.(*ir.Allocate); ok {
			allocs[a.Buffer] = true
		}
		return true
	})
	seen := map[string]bool{op.Out.Name: true}
	var inputs []string
	ir.WalkStmtExprs(body, func(e ir.Expr) {
		if l, ok := e.(*ir.Load); ok && !seen[l.Buffer] && !allocs[l.Buffer] {
			seen[l.Buffer] = true
			inputs = append(inputs, l.Buffer)
		}
	})
	return inputs
}

func (s *Schedule) String() string {
	out := ""
	for _, l := range s.LeafInfos() {
		out += fmt.Sprintf("%s[%d]:%s ", l.Name, l.Extent, l.Kind)
	}
	return out
}
