package te

import (
	"fmt"

	"unigpu/internal/ir"
)

// Axis is a handle to one loop axis of a scheduled stage. Schedule
// primitives consume and produce Axis handles, exactly like TVM's s[C].op
// axis objects.
type Axis struct {
	node *axisNode
}

// Extent returns the axis's iteration extent.
func (a Axis) Extent() int { return a.node.iv.Extent }

// Name returns the underlying loop variable name.
func (a Axis) Name() string { return a.node.iv.Var.Name }

type axisNode struct {
	iv      *IterVar
	kind    ir.ForKind
	reduce  bool
	derived bool // produced by split/fuse, not a root axis of the op
}

// relation records how derived axes reconstruct their parents.
type relation interface{ isRelation() }

type splitRel struct {
	parent, outer, inner *axisNode
	factor               int
}

func (*splitRel) isRelation() {}

type fuseRel struct {
	a, b, fused *axisNode
}

func (*fuseRel) isRelation() {}

// Schedule is a mutable plan for lowering one ComputeOp.
type Schedule struct {
	Op        *ComputeOp
	leaves    []*axisNode // loop order, outermost first
	relations []relation
	roots     map[*axisNode]bool
	// spatialGuards is populated by resolveRoots during lowering: boundary
	// guards that involve only spatial axes, re-applied to the final store
	// of a reduction kernel.
	spatialGuards []ir.Expr
}

// NewSchedule creates the default schedule: spatial axes outermost in
// declaration order, then reduce axes, all serial.
func NewSchedule(t *Tensor) *Schedule {
	if t.Op == nil {
		panic("te: cannot schedule a placeholder")
	}
	s := &Schedule{Op: t.Op, roots: map[*axisNode]bool{}}
	for _, iv := range t.Op.Axes {
		n := &axisNode{iv: iv}
		s.leaves = append(s.leaves, n)
		s.roots[n] = true
	}
	for _, iv := range t.Op.ReduceAxes {
		n := &axisNode{iv: iv, reduce: true}
		s.leaves = append(s.leaves, n)
		s.roots[n] = true
	}
	return s
}

// SpatialAxes returns handles for the output axes in declaration order.
// Valid immediately after NewSchedule (before any splits).
func (s *Schedule) SpatialAxes() []Axis {
	var out []Axis
	for _, n := range s.leaves {
		if !n.reduce {
			out = append(out, Axis{n})
		}
	}
	return out
}

// ReduceAxes returns handles for the reduction axes.
func (s *Schedule) ReduceAxes() []Axis {
	var out []Axis
	for _, n := range s.leaves {
		if n.reduce {
			out = append(out, Axis{n})
		}
	}
	return out
}

func (s *Schedule) leafIndex(n *axisNode) int {
	for i, l := range s.leaves {
		if l == n {
			return i
		}
	}
	return -1
}

// Split divides axis into (outer, inner) with the inner extent equal to
// factor. If factor does not divide the extent, the lowering emits a
// boundary guard. The two new axes replace the original in the loop order.
func (s *Schedule) Split(a Axis, factor int) (outer, inner Axis) {
	if factor <= 0 {
		panic("te: split factor must be positive")
	}
	idx := s.leafIndex(a.node)
	if idx < 0 {
		panic(fmt.Sprintf("te: axis %s is not a current leaf", a.Name()))
	}
	ext := a.node.iv.Extent
	o := &axisNode{iv: newIter(a.Name()+".o", (ext+factor-1)/factor), reduce: a.node.reduce, derived: true}
	i := &axisNode{iv: newIter(a.Name()+".i", factor), reduce: a.node.reduce, derived: true}
	s.relations = append(s.relations, &splitRel{parent: a.node, outer: o, inner: i, factor: factor})
	s.leaves = append(s.leaves[:idx], append([]*axisNode{o, i}, s.leaves[idx+1:]...)...)
	return Axis{o}, Axis{i}
}

// Tile splits two axes and reorders to (xo, yo, xi, yi), the classic loop
// tiling of §3.2.2 ("spatial packing").
func (s *Schedule) Tile(x, y Axis, xFactor, yFactor int) (xo, yo, xi, yi Axis) {
	xo, xi = s.Split(x, xFactor)
	yo, yi = s.Split(y, yFactor)
	s.Reorder(xo, yo, xi, yi)
	return
}

// Fuse merges two adjacent axes into one with the product extent.
func (s *Schedule) Fuse(a, b Axis) Axis {
	ia, ib := s.leafIndex(a.node), s.leafIndex(b.node)
	if ia < 0 || ib < 0 {
		panic("te: fuse of non-leaf axis")
	}
	if ib != ia+1 {
		panic("te: fused axes must be adjacent in the current loop order")
	}
	if a.node.reduce != b.node.reduce {
		panic("te: cannot fuse a spatial axis with a reduce axis")
	}
	f := &axisNode{
		iv:      newIter(a.Name()+"."+b.Name()+".f", a.node.iv.Extent*b.node.iv.Extent),
		reduce:  a.node.reduce,
		derived: true,
	}
	s.relations = append(s.relations, &fuseRel{a: a.node, b: b.node, fused: f})
	s.leaves = append(s.leaves[:ia], append([]*axisNode{f}, s.leaves[ib+1:]...)...)
	return Axis{f}
}

// Reorder places the given axes in the stated relative order, keeping axes
// not mentioned in their current positions.
func (s *Schedule) Reorder(axes ...Axis) {
	want := make([]*axisNode, 0, len(axes))
	mentioned := map[*axisNode]bool{}
	for _, a := range axes {
		if s.leafIndex(a.node) < 0 {
			panic(fmt.Sprintf("te: reorder of non-leaf axis %s", a.Name()))
		}
		if mentioned[a.node] {
			panic("te: duplicate axis in reorder")
		}
		mentioned[a.node] = true
		want = append(want, a.node)
	}
	k := 0
	for i, n := range s.leaves {
		if mentioned[n] {
			s.leaves[i] = want[k]
			k++
		}
	}
}

// Bind assigns the axis to a GPU hardware dimension.
func (s *Schedule) Bind(a Axis, kind ir.ForKind) {
	if !kind.IsGPUBound() {
		panic("te: Bind requires a GPU axis kind")
	}
	if a.node.reduce {
		panic("te: cannot bind a reduction axis to a hardware dimension")
	}
	a.node.kind = kind
}

// Unroll marks the axis for full unrolling.
func (s *Schedule) Unroll(a Axis) { a.node.kind = ir.ForUnrolled }

// Vectorize maps the axis onto SIMD lanes. Only innermost axes should be
// vectorized; lowering validates this.
func (s *Schedule) Vectorize(a Axis) { a.node.kind = ir.ForVectorized }

// Parallel marks the axis for CPU multi-threading (fallback operators).
func (s *Schedule) Parallel(a Axis) { a.node.kind = ir.ForParallel }

// Leaves exposes the current loop order as (name, extent, kind, isReduce)
// tuples for the cost model.
type LeafInfo struct {
	Name   string
	Extent int
	Kind   ir.ForKind
	Reduce bool
}

// LeafInfos returns the loop order outermost-first.
func (s *Schedule) LeafInfos() []LeafInfo {
	out := make([]LeafInfo, len(s.leaves))
	for i, n := range s.leaves {
		out[i] = LeafInfo{Name: n.iv.Var.Name, Extent: n.iv.Extent, Kind: n.kind, Reduce: n.reduce}
	}
	return out
}
