package te_test

import (
	"strings"
	"testing"
	"testing/quick"

	"unigpu/internal/exec"
	"unigpu/internal/ir"
	"unigpu/internal/te"
)

// matmul declares C[m,n] = sum_k A[m,k]*B[k,n].
func matmul(m, n, k int) (*te.Tensor, *te.Tensor, *te.Tensor) {
	A := te.Placeholder("A", m, k)
	B := te.Placeholder("B", k, n)
	C := te.Sum("C", []int{m, n}, []int{k}, func(ax, r []ir.Expr) ir.Expr {
		return ir.Mul(A.Access(ax[0], r[0]), B.Access(r[0], ax[1]))
	})
	return A, B, C
}

func refMatmul(a, b []float32, m, n, k int) []float32 {
	c := make([]float32, m*n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float32
			for kk := 0; kk < k; kk++ {
				s += a[i*k+kk] * b[kk*n+j]
			}
			c[i*n+j] = s
		}
	}
	return c
}

func runMatmul(t *testing.T, m, n, k int, schedule func(s *te.Schedule)) []float32 {
	t.Helper()
	_, _, C := matmul(m, n, k)
	s := te.NewSchedule(C)
	if schedule != nil {
		schedule(s)
	}
	kern := te.Lower("matmul", s)
	env := exec.NewEnv()
	a := make([]float32, m*k)
	b := make([]float32, k*n)
	for i := range a {
		a[i] = float32(i%7) - 3
	}
	for i := range b {
		b[i] = float32(i%5) - 2
	}
	c := make([]float32, m*n)
	env.Bind("A", a)
	env.Bind("B", b)
	env.Bind("C", c)
	if err := exec.RunKernel(kern, env); err != nil {
		t.Fatalf("run: %v", err)
	}
	want := refMatmul(a, b, m, n, k)
	for i := range want {
		if c[i] != want[i] {
			t.Fatalf("element %d = %v, want %v (schedule %v)", i, c[i], want[i], s)
		}
	}
	return c
}

func TestDefaultScheduleMatmul(t *testing.T) {
	runMatmul(t, 4, 5, 6, nil)
}

func TestSplitDividing(t *testing.T) {
	runMatmul(t, 8, 8, 8, func(s *te.Schedule) {
		ax := s.SpatialAxes()
		s.Split(ax[0], 4)
	})
}

func TestSplitNonDividingEmitsGuards(t *testing.T) {
	runMatmul(t, 7, 5, 3, func(s *te.Schedule) {
		ax := s.SpatialAxes()
		s.Split(ax[0], 4) // 7 does not divide by 4 -> guard
	})
}

func TestTileAndReorder(t *testing.T) {
	runMatmul(t, 9, 7, 5, func(s *te.Schedule) {
		ax := s.SpatialAxes()
		s.Tile(ax[0], ax[1], 4, 4)
	})
}

func TestSplitReduceAxis(t *testing.T) {
	runMatmul(t, 4, 4, 10, func(s *te.Schedule) {
		r := s.ReduceAxes()
		ro, ri := s.Split(r[0], 3) // non-dividing reduce split
		s.Reorder(ro, ri)
	})
}

func TestFuse(t *testing.T) {
	runMatmul(t, 6, 4, 3, func(s *te.Schedule) {
		ax := s.SpatialAxes()
		s.Fuse(ax[0], ax[1])
	})
}

func TestBindUnrollVectorize(t *testing.T) {
	runMatmul(t, 8, 8, 4, func(s *te.Schedule) {
		ax := s.SpatialAxes()
		mo, mi := s.Split(ax[0], 2)
		no, ni := s.Split(ax[1], 4)
		s.Reorder(mo, no, mi, ni)
		s.Bind(mo, ir.ForThreadBlock)
		s.Bind(no, ir.ForThread)
		s.Unroll(mi)
		s.Vectorize(ni)
	})
}

func TestDeepSplitChain(t *testing.T) {
	runMatmul(t, 16, 4, 4, func(s *te.Schedule) {
		ax := s.SpatialAxes()
		_, mi := s.Split(ax[0], 8)
		_, mii := s.Split(mi, 4)
		s.Split(mii, 2)
	})
}

func TestFuseThenSplit(t *testing.T) {
	runMatmul(t, 6, 4, 3, func(s *te.Schedule) {
		ax := s.SpatialAxes()
		f := s.Fuse(ax[0], ax[1])
		s.Split(f, 5) // 24 not divisible by 5 -> guard over fused axis
	})
}

func TestElementwiseCompute(t *testing.T) {
	A := te.Placeholder("A", 3, 4)
	B := te.Compute("B", []int{3, 4}, func(ax []ir.Expr) ir.Expr {
		return ir.Add(A.Access(ax[0], ax[1]), ir.FImm(1))
	})
	s := te.NewSchedule(B)
	ax := s.SpatialAxes()
	s.Split(ax[1], 3)
	k := te.Lower("add1", s)
	env := exec.NewEnv()
	a := make([]float32, 12)
	for i := range a {
		a[i] = float32(i)
	}
	b := make([]float32, 12)
	env.Bind("A", a)
	env.Bind("B", b)
	if err := exec.RunKernel(k, env); err != nil {
		t.Fatal(err)
	}
	for i := range b {
		if b[i] != float32(i)+1 {
			t.Fatalf("b[%d] = %v", i, b[i])
		}
	}
	if len(k.Inputs) != 1 || k.Inputs[0] != "A" {
		t.Fatalf("inputs = %v", k.Inputs)
	}
}

func TestMaxReducePooling(t *testing.T) {
	A := te.Placeholder("A", 1, 4, 4)
	P := te.MaxReduce("P", []int{1, 2, 2}, []int{2, 2}, func(ax, r []ir.Expr) ir.Expr {
		return A.Access(ax[0], ir.Add(ir.Mul(ax[1], ir.Imm(2)), r[0]), ir.Add(ir.Mul(ax[2], ir.Imm(2)), r[1]))
	})
	s := te.NewSchedule(P)
	k := te.Lower("pool", s)
	env := exec.NewEnv()
	a := []float32{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}
	p := make([]float32, 4)
	env.Bind("A", a)
	env.Bind("P", p)
	if err := exec.RunKernel(k, env); err != nil {
		t.Fatal(err)
	}
	want := []float32{6, 8, 14, 16}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("pool = %v, want %v", p, want)
		}
	}
}

func TestConv2DLoweredMatchesNaive(t *testing.T) {
	// 1x3x5x5 input, 2x3x3x3 weights, stride 1, no padding -> 1x2x3x3.
	ci, h, w, co, kk := 3, 5, 5, 2, 3
	oh, ow := h-kk+1, w-kk+1
	A := te.Placeholder("A", 1, ci, h, w)
	W := te.Placeholder("W", co, ci, kk, kk)
	C := te.Sum("C", []int{1, co, oh, ow}, []int{ci, kk, kk}, func(ax, r []ir.Expr) ir.Expr {
		return ir.Mul(
			A.Access(ax[0], r[0], ir.Add(ax[2], r[1]), ir.Add(ax[3], r[2])),
			W.Access(ax[1], r[0], r[1], r[2]))
	})
	s := te.NewSchedule(C)
	ax := s.SpatialAxes()
	s.Bind(ax[1], ir.ForThreadBlock)
	ho, hi := s.Split(ax[2], 2)
	s.Bind(ho, ir.ForThread)
	s.Unroll(hi)
	r := s.ReduceAxes()
	s.Unroll(r[1])
	s.Unroll(r[2])
	k := te.Lower("conv", s)

	a := make([]float32, ci*h*w)
	wt := make([]float32, co*ci*kk*kk)
	for i := range a {
		a[i] = float32(i%11) - 5
	}
	for i := range wt {
		wt[i] = float32(i%3) - 1
	}
	c := make([]float32, co*oh*ow)
	env := exec.NewEnv()
	env.Bind("A", a)
	env.Bind("W", wt)
	env.Bind("C", c)
	if err := exec.RunKernel(k, env); err != nil {
		t.Fatal(err)
	}
	for o := 0; o < co; o++ {
		for y := 0; y < oh; y++ {
			for x := 0; x < ow; x++ {
				var sum float32
				for i := 0; i < ci; i++ {
					for dy := 0; dy < kk; dy++ {
						for dx := 0; dx < kk; dx++ {
							sum += a[i*h*w+(y+dy)*w+(x+dx)] * wt[o*ci*kk*kk+i*kk*kk+dy*kk+dx]
						}
					}
				}
				if got := c[o*oh*ow+y*ow+x]; got != sum {
					t.Fatalf("conv[%d,%d,%d] = %v, want %v", o, y, x, got, sum)
				}
			}
		}
	}
}

func TestScheduleValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	_, _, C := matmul(4, 4, 4)
	mustPanic("schedule placeholder", func() { te.NewSchedule(te.Placeholder("P", 2)) })
	mustPanic("bad split factor", func() {
		s := te.NewSchedule(C)
		s.Split(s.SpatialAxes()[0], 0)
	})
	mustPanic("split stale axis", func() {
		s := te.NewSchedule(C)
		a := s.SpatialAxes()[0]
		s.Split(a, 2)
		s.Split(a, 2) // a is no longer a leaf
	})
	mustPanic("bind reduce axis", func() {
		s := te.NewSchedule(C)
		s.Bind(s.ReduceAxes()[0], ir.ForThread)
	})
	mustPanic("bind serial kind", func() {
		s := te.NewSchedule(C)
		s.Bind(s.SpatialAxes()[0], ir.ForSerial)
	})
	mustPanic("fuse non-adjacent", func() {
		s := te.NewSchedule(C)
		s.Fuse(s.SpatialAxes()[0], s.ReduceAxes()[0])
	})
	mustPanic("spatial inside reduce", func() {
		s := te.NewSchedule(C)
		ax, r := s.SpatialAxes(), s.ReduceAxes()
		s.Reorder(r[0], ax[0])
		te.Lower("bad", s)
	})
}

func TestLeafInfos(t *testing.T) {
	_, _, C := matmul(8, 8, 8)
	s := te.NewSchedule(C)
	ax := s.SpatialAxes()
	mo, mi := s.Split(ax[0], 4)
	s.Bind(mo, ir.ForThreadBlock)
	s.Vectorize(mi)
	infos := s.LeafInfos()
	if len(infos) != 4 {
		t.Fatalf("got %d leaves", len(infos))
	}
	if infos[0].Kind != ir.ForThreadBlock || infos[0].Extent != 2 {
		t.Fatalf("leaf 0 = %+v", infos[0])
	}
	if infos[1].Kind != ir.ForVectorized || infos[1].Extent != 4 {
		t.Fatalf("leaf 1 = %+v", infos[1])
	}
	if !infos[3].Reduce {
		t.Fatal("last leaf should be the reduction")
	}
}

func TestLoweredIRShape(t *testing.T) {
	_, _, C := matmul(4, 4, 4)
	s := te.NewSchedule(C)
	k := te.Lower("mm", s)
	p := ir.Print(k.Body)
	for _, want := range []string{"alloc float32 mm_acc[1] @local", "mm_acc[0] = 0f"} {
		if !strings.Contains(p, want) {
			t.Fatalf("lowered IR missing %q:\n%s", want, p)
		}
	}
	if len(k.Inputs) != 2 {
		t.Fatalf("inputs = %v", k.Inputs)
	}
}

// Property: any random pair of split factors over any matmul axis preserves
// the computed result.
func TestPropertyRandomSplitsPreserveSemantics(t *testing.T) {
	f := func(fa, fb uint8, axis uint8) bool {
		m, n, k := 6, 5, 7
		_, _, C := matmul(m, n, k)
		s := te.NewSchedule(C)
		axes := append(s.SpatialAxes(), s.ReduceAxes()...)
		a := axes[int(axis)%len(axes)]
		f1 := int(fa)%5 + 1
		f2 := int(fb)%3 + 1
		_, inner := s.Split(a, f1)
		s.Split(inner, f2)
		kern := te.Lower("mm", s)
		av := make([]float32, m*k)
		bv := make([]float32, k*n)
		for i := range av {
			av[i] = float32((i*13)%7) - 3
		}
		for i := range bv {
			bv[i] = float32((i*7)%5) - 2
		}
		cv := make([]float32, m*n)
		env := exec.NewEnv()
		env.Bind("A", av)
		env.Bind("B", bv)
		env.Bind("C", cv)
		if err := exec.RunKernel(kern, env); err != nil {
			return false
		}
		want := refMatmul(av, bv, m, n, k)
		for i := range want {
			if cv[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
