// Package te implements the tensor-expression layer: declarative tensor
// computations (Placeholder / Compute / reductions) plus a schedule tree
// whose primitives — split, tile, fuse, reorder, bind, unroll, vectorize —
// rewrite how the computation lowers to the loop IR of internal/ir.
//
// This mirrors the Halide-inherited design the paper builds on (§2.3): the
// algorithm is written once, and per-device optimization is expressed purely
// as a schedule, so one definition of conv2d serves Intel, Mali, and Nvidia
// templates alike.
package te

import (
	"fmt"

	"unigpu/internal/ir"
)

// Tensor is a symbolic tensor: either a placeholder (external input) or the
// result of a ComputeOp.
type Tensor struct {
	Name  string
	Shape []int
	Op    *ComputeOp // nil for placeholders
}

// NumElements returns the flat element count.
func (t *Tensor) NumElements() int {
	n := 1
	for _, d := range t.Shape {
		n *= d
	}
	return n
}

// Access builds a load of the tensor at the given (row-major) coordinates.
func (t *Tensor) Access(idx ...ir.Expr) ir.Expr {
	if len(idx) != len(t.Shape) {
		panic(fmt.Sprintf("te: %s has rank %d, got %d indices", t.Name, len(t.Shape), len(idx)))
	}
	return ir.LoadF(t.Name, t.flatIndex(idx))
}

func (t *Tensor) flatIndex(idx []ir.Expr) ir.Expr {
	flat := ir.Expr(ir.Imm(0))
	for i, d := range t.Shape {
		_ = d
		flat = ir.Mul(flat, ir.Imm(t.Shape[i]))
		flat = ir.Add(flat, idx[i])
	}
	return flat
}

// Placeholder declares an external input tensor.
func Placeholder(name string, shape ...int) *Tensor {
	return &Tensor{Name: name, Shape: shape}
}

// IterVar is an iteration axis with a static extent.
type IterVar struct {
	Var    *ir.Var
	Extent int
}

func newIter(name string, extent int) *IterVar {
	return &IterVar{Var: ir.NewVar(name), Extent: extent}
}

// ComputeOp defines an output tensor elementwise over its axes, optionally
// reducing over ReduceAxes with the Combine operator starting from Init.
type ComputeOp struct {
	Out        *Tensor
	Axes       []*IterVar // one per output dimension
	ReduceAxes []*IterVar
	Body       ir.Expr // value in terms of Axes (+ ReduceAxes) variables
	Init       ir.Expr // reduction identity; nil for pure elementwise ops
	Combine    ir.BinOp
}

// Compute declares an elementwise tensor: out[axes...] = f(axes...).
func Compute(name string, shape []int, f func(axes []ir.Expr) ir.Expr) *Tensor {
	op := &ComputeOp{}
	exprs := make([]ir.Expr, len(shape))
	for i, d := range shape {
		iv := newIter(fmt.Sprintf("%s_ax%d", name, i), d)
		op.Axes = append(op.Axes, iv)
		exprs[i] = iv.Var
	}
	op.Body = f(exprs)
	t := &Tensor{Name: name, Shape: shape, Op: op}
	op.Out = t
	return t
}

// Sum declares a reduction tensor:
// out[axes...] = sum over raxes of f(axes..., raxes...).
func Sum(name string, shape []int, reduceExtents []int,
	f func(axes, raxes []ir.Expr) ir.Expr) *Tensor {
	return reduce(name, shape, reduceExtents, f, ir.OpAdd, ir.FImm(0))
}

// MaxReduce declares a max-reduction tensor (used by max pooling).
func MaxReduce(name string, shape []int, reduceExtents []int,
	f func(axes, raxes []ir.Expr) ir.Expr) *Tensor {
	return reduce(name, shape, reduceExtents, f, ir.OpMax, ir.FImm(-3.4e38))
}

func reduce(name string, shape, reduceExtents []int,
	f func(axes, raxes []ir.Expr) ir.Expr, combine ir.BinOp, init ir.Expr) *Tensor {
	op := &ComputeOp{Combine: combine, Init: init}
	exprs := make([]ir.Expr, len(shape))
	for i, d := range shape {
		iv := newIter(fmt.Sprintf("%s_ax%d", name, i), d)
		op.Axes = append(op.Axes, iv)
		exprs[i] = iv.Var
	}
	rexprs := make([]ir.Expr, len(reduceExtents))
	for i, d := range reduceExtents {
		iv := newIter(fmt.Sprintf("%s_r%d", name, i), d)
		op.ReduceAxes = append(op.ReduceAxes, iv)
		rexprs[i] = iv.Var
	}
	op.Body = f(exprs, rexprs)
	t := &Tensor{Name: name, Shape: shape, Op: op}
	op.Out = t
	return t
}

// If is a guarded value: cond ? then : else (predication, not branching).
func If(cond, then, els ir.Expr) ir.Expr { return &ir.Select{Cond: cond, A: then, B: els} }
