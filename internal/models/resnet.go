package models

import (
	"unigpu/internal/graph"
	"unigpu/internal/ops"
)

// buildResNet50 constructs ResNet50_v1 (GluonCV): 7x7/2 stem, 3-4-6-3
// bottleneck stages with 1x1 projection shortcuts, global average pooling
// and a 1000-way classifier.
func buildResNet50(size, batch int, lite bool) *Model {
	b := newBuilder(lite)
	b.batch = batch
	in := b.input(size)

	x := b.conv("stem", in, 64, 7, 2, 3, 1, true, ops.ActReLU)
	x = b.maxpool("stem_pool", x, 3, 2, 1)

	stages := []struct {
		blocks, mid, out, stride int
	}{
		{3, 64, 256, 1},
		{4, 128, 512, 2},
		{6, 256, 1024, 2},
		{3, 512, 2048, 2},
	}
	for si, st := range stages {
		for blk := 0; blk < st.blocks; blk++ {
			stride := 1
			if blk == 0 {
				stride = st.stride
			}
			x = b.bottleneck(x, st.mid, st.out, stride, si, blk)
		}
	}

	x = b.g.Apply("gap", &graph.GlobalPoolOp{}, x)
	x = b.g.Apply("flatten", &graph.FlattenOp{}, x)
	x = b.dense("fc", x, 1000)
	x = b.g.Apply("prob", &graph.SoftmaxOp{}, x)
	b.g.SetOutputs(x)
	return &Model{Graph: b.g, Convs: b.convs}
}

// bottleneck is the 1x1 -> 3x3 -> 1x1 residual block with an optional
// projection shortcut.
func (b *builder) bottleneck(x *graph.Node, mid, out, stride, stage, blk int) *graph.Node {
	shortcut := x
	needProj := x.OutShape[1] != out || stride != 1
	y := b.conv("res_a", x, mid, 1, 1, 0, 1, true, ops.ActReLU)
	y = b.conv("res_b", y, mid, 3, stride, 1, 1, true, ops.ActReLU)
	y = b.conv("res_c", y, out, 1, 1, 0, 1, true, ops.ActNone)
	if needProj {
		shortcut = b.conv("res_proj", x, out, 1, stride, 0, 1, true, ops.ActNone)
	}
	sum := b.g.Apply(b.unique("res_add"), &graph.AddOp{}, y, shortcut)
	return b.g.Apply(b.unique("res_relu"), &graph.ActivationOp{Act: ops.ActReLU}, sum)
}

// backboneResNet50 builds the ResNet50 feature extractor for SSD, returning
// the stride-8, stride-16 and stride-32 feature maps (stages 2-4).
func (b *builder) backboneResNet50(in *graph.Node) (c3, c4, c5 *graph.Node) {
	x := b.conv("stem", in, 64, 7, 2, 3, 1, true, ops.ActReLU)
	x = b.maxpool("stem_pool", x, 3, 2, 1)
	stages := []struct {
		blocks, mid, out, stride int
	}{
		{3, 64, 256, 1},
		{4, 128, 512, 2},
		{6, 256, 1024, 2},
		{3, 512, 2048, 2},
	}
	var taps []*graph.Node
	for si, st := range stages {
		for blk := 0; blk < st.blocks; blk++ {
			stride := 1
			if blk == 0 {
				stride = st.stride
			}
			x = b.bottleneck(x, st.mid, st.out, stride, si, blk)
		}
		taps = append(taps, x)
	}
	return taps[1], taps[2], taps[3]
}
