package models

import (
	"unigpu/internal/graph"
	"unigpu/internal/ops"
)

// fire adds a SqueezeNet fire module: squeeze 1x1 -> parallel expand 1x1
// and expand 3x3, concatenated on channels.
func (b *builder) fire(x *graph.Node, squeeze, expand1, expand3 int) *graph.Node {
	s := b.conv("fire_squeeze", x, squeeze, 1, 1, 0, 1, false, ops.ActReLU)
	e1 := b.conv("fire_e1", s, expand1, 1, 1, 0, 1, false, ops.ActReLU)
	e3 := b.conv("fire_e3", s, expand3, 3, 1, 1, 1, false, ops.ActReLU)
	return b.g.Apply(b.unique("fire_concat"), &graph.ConcatOp{}, e1, e3)
}

// buildSqueezeNet constructs SqueezeNet 1.0: 7x7/2 stem, eight fire
// modules with interleaved max pooling, and a fully convolutional
// classifier head. Its many small 1x1 workloads are why untuned schedules
// are catastrophic and tuning gains are the largest of Table 5.
func buildSqueezeNet(size, batch int, lite bool) *Model {
	b := newBuilder(lite)
	b.batch = batch
	in := b.input(size)

	x := b.conv("stem", in, 96, 7, 2, 3, 1, false, ops.ActReLU)
	x = b.maxpool("pool1", x, 3, 2, 0)
	x = b.fire(x, 16, 64, 64)
	x = b.fire(x, 16, 64, 64)
	x = b.fire(x, 32, 128, 128)
	x = b.maxpool("pool4", x, 3, 2, 0)
	x = b.fire(x, 32, 128, 128)
	x = b.fire(x, 48, 192, 192)
	x = b.fire(x, 48, 192, 192)
	x = b.fire(x, 64, 256, 256)
	x = b.maxpool("pool8", x, 3, 2, 0)
	x = b.fire(x, 64, 256, 256)

	x = b.conv("conv10", x, 1000, 1, 1, 0, 1, false, ops.ActReLU)
	x = b.g.Apply("gap", &graph.GlobalPoolOp{}, x)
	x = b.g.Apply("flatten", &graph.FlattenOp{}, x)
	x = b.g.Apply("prob", &graph.SoftmaxOp{}, x)
	b.g.SetOutputs(x)
	return &Model{Graph: b.g, Convs: b.convs}
}
