package models

import (
	"unigpu/internal/graph"
	"unigpu/internal/ops"
)

// mobileNetBlocks are the 13 depthwise-separable blocks of MobileNet 1.0:
// (output channels of the pointwise conv, stride of the depthwise conv).
var mobileNetBlocks = []struct {
	out, stride int
}{
	{64, 1},
	{128, 2}, {128, 1},
	{256, 2}, {256, 1},
	{512, 2}, {512, 1}, {512, 1}, {512, 1}, {512, 1}, {512, 1},
	{1024, 2}, {1024, 1},
}

// buildMobileNet constructs MobileNet1.0: a 3x3/2 stem followed by 13
// depthwise-separable blocks, global pooling and the classifier. The
// depthwise convolutions are the workloads the paper notes are not yet
// fully optimized on Intel Graphics (§4.2).
func buildMobileNet(size, batch int, lite bool) *Model {
	b := newBuilder(lite)
	b.batch = batch
	in := b.input(size)
	x := b.mobileNetBackbone(in)
	x = b.g.Apply("gap", &graph.GlobalPoolOp{}, x)
	x = b.g.Apply("flatten", &graph.FlattenOp{}, x)
	x = b.dense("fc", x, 1000)
	x = b.g.Apply("prob", &graph.SoftmaxOp{}, x)
	b.g.SetOutputs(x)
	return &Model{Graph: b.g, Convs: b.convs}
}

func (b *builder) mobileNetBackbone(in *graph.Node) *graph.Node {
	x := b.conv("stem", in, 32, 3, 2, 1, 1, true, ops.ActReLU)
	for _, blk := range mobileNetBlocks {
		cin := x.OutShape[1]
		x = b.conv("dw", x, cin, 3, blk.stride, 1, cin, true, ops.ActReLU)
		x = b.conv("pw", x, blk.out, 1, 1, 0, 1, true, ops.ActReLU)
	}
	return x
}

// mobileNetSSDTaps returns the stride-8, stride-16 and stride-32 feature
// maps used by the SSD head (after blocks 5, 11 and 13).
func (b *builder) mobileNetSSDTaps(in *graph.Node) (t0, t1, t2 *graph.Node) {
	x := b.conv("stem", in, 32, 3, 2, 1, 1, true, ops.ActReLU)
	for i, blk := range mobileNetBlocks {
		cin := x.OutShape[1]
		x = b.conv("dw", x, cin, 3, blk.stride, 1, cin, true, ops.ActReLU)
		x = b.conv("pw", x, blk.out, 1, 1, 0, 1, true, ops.ActReLU)
		if i == 4 {
			t0 = x
		}
		if i == 10 {
			t1 = x
		}
	}
	return t0, t1, x
}
