package models

import (
	"unigpu/internal/graph"
	"unigpu/internal/ops"
	"unigpu/internal/tensor"
	"unigpu/internal/vision"
)

// ssdNumClasses is the VOC foreground class count of the GluonCV SSD
// variants the paper evaluates.
const ssdNumClasses = 20

// ssdAnchorCounts is the anchors-per-cell schedule over the six feature
// maps (strides 8, 16, 32, 64, 128, 256). With a 512x512 input this yields
// ~24.5k candidate boxes, matching the classic SSD512 anchor budget; at
// 300x300 it yields ~8.7k, matching SSD300.
var ssdAnchorCounts = []int{4, 6, 6, 6, 4, 4}

// ssdSizes are the normalized anchor scales per map.
var ssdSizes = [][]float32{
	{0.07, 0.1}, {0.15, 0.22}, {0.3, 0.37}, {0.45, 0.52}, {0.6, 0.67}, {0.8, 0.94},
}

// ssdRatios yields the ratio list producing the configured anchor count
// (len(sizes) + len(ratios) - 1 anchors).
func ssdRatios(anchors, numSizes int) []float32 {
	all := []float32{1, 2, 0.5, 3, 1.0 / 3}
	return all[:anchors-numSizes+1]
}

// buildSSD constructs SSD with the requested backbone: feature taps at
// strides 16 and 32, three extra downsampling stages, per-map class and
// location heads, pre-computed multibox priors, and the vision-specific
// decode + NMS tail (§3.1).
func buildSSD(size, batch int, lite bool, backbone string) *Model {
	b := newBuilder(lite)
	b.batch = batch
	in := b.input(size)

	var f0, f1, f2 *graph.Node
	if backbone == "ResNet50_v1" {
		f0, f1, f2 = b.backboneResNet50(in)
	} else {
		f0, f1, f2 = b.mobileNetSSDTaps(in)
	}

	// Extra feature layers: 1x1 squeeze + 3x3/2 downsample.
	feats := []*graph.Node{f0, f1, f2}
	x := f2
	for i := 0; i < 3; i++ {
		x = b.conv("extra_sq", x, 256, 1, 1, 0, 1, true, ops.ActReLU)
		x = b.conv("extra_dn", x, 512, 3, 2, 1, 1, true, ops.ActReLU)
		feats = append(feats, x)
	}

	// Per-map heads + priors.
	var clsRows, locRows []*graph.Node
	var priors []*tensor.Tensor
	totalBoxes := 0
	for i, f := range feats {
		a := ssdAnchorCounts[i]
		k := ssdNumClasses + 1
		cls := b.conv("cls_head", f, a*k, 3, 1, 1, 1, false, ops.ActNone)
		loc := b.conv("loc_head", f, a*4, 3, 1, 1, 1, false, ops.ActNone)
		clsR := b.g.Apply(b.unique("cls_rows"), &graph.HeadReshapeOp{Anchors: a, Attrs: k}, cls)
		clsR = b.g.Apply(b.unique("cls_prob"), &graph.SoftmaxOp{}, clsR)
		locR := b.g.Apply(b.unique("loc_rows"), &graph.HeadReshapeOp{Anchors: a, Attrs: 4}, loc)
		clsRows = append(clsRows, clsR)
		locRows = append(locRows, locR)

		fh, fw := f.OutShape[2], f.OutShape[3]
		priors = append(priors, vision.MultiboxPrior(fh, fw, ssdSizes[i], ssdRatios(a, len(ssdSizes[i]))))
		totalBoxes += fh * fw * a
	}

	clsAll := b.g.Apply("cls_concat", &graph.ConcatOp{}, clsRows...)
	locAll := b.g.Apply("loc_concat", &graph.ConcatOp{}, locRows...)

	// Priors depend only on shapes: pre-computed at build time (the
	// constant pre-computation of §3.2.3).
	anchorData := tensor.New(1, totalBoxes, 4)
	off := 0
	for _, p := range priors {
		copy(anchorData.Data()[off:], p.Data())
		off += p.Size()
	}
	anchors := b.g.Constant("anchors", anchorData)

	det := b.g.Apply("detection", &graph.SSDDetectionOp{
		Cfg: vision.NMSConfig{IoUThreshold: 0.45, ScoreThreshold: 0.01, TopK: 400, MaxOutput: 100},
	}, clsAll, locAll, anchors)
	b.g.SetOutputs(det)

	return &Model{
		Graph: b.g,
		Convs: b.convs,
		Vision: &VisionProfile{
			Boxes:   totalBoxes,
			Classes: ssdNumClasses,
			Kept:    100,
			Heads:   len(feats),
		},
	}
}
