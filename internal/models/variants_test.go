package models

import (
	"math"
	"testing"

	"unigpu/internal/graph"
	"unigpu/internal/runtime"
	"unigpu/internal/tensor"
)

func TestFamilyVariantsBuild(t *testing.T) {
	for rep, variants := range Families() {
		for _, v := range variants {
			m := Build(v, 224, true)
			if err := m.Graph.Validate(); err != nil {
				t.Errorf("%s (family %s): %v", v, rep, err)
			}
			if len(m.Convs) == 0 {
				t.Errorf("%s: no conv workloads", v)
			}
		}
	}
}

func TestResNetFamilyOrdering(t *testing.T) {
	// Deeper variants must cost more; published MAC counts (x2 flops):
	// 18: ~3.6G, 34: ~7.3G, 50: ~8.2G, 101: ~15.6G.
	wants := map[string][2]float64{
		"ResNet18_v1":  {3.0, 4.5},
		"ResNet34_v1":  {6.5, 8.2},
		"ResNet50_v1":  {7.0, 9.0},
		"ResNet101_v1": {14.0, 17.5},
	}
	prev := 0.0
	for _, name := range Families()["ResNet50_v1"] {
		m := Build(name, 224, true)
		gf := m.TotalConvFLOPs() / 1e9
		w := wants[name]
		if gf < w[0] || gf > w[1] {
			t.Errorf("%s: %.2f GFLOPs outside [%v, %v]", name, gf, w[0], w[1])
		}
		if gf <= prev {
			t.Errorf("%s: family must be ordered by depth (%.2f <= %.2f)", name, gf, prev)
		}
		prev = gf
	}
}

func TestMobileNetWidthMultiplier(t *testing.T) {
	full := Build("MobileNet1.0", 224, true).TotalConvFLOPs()
	half := Build("MobileNet0.5", 224, true).TotalConvFLOPs()
	quarter := Build("MobileNet0.25", 224, true).TotalConvFLOPs()
	if !(quarter < half && half < full) {
		t.Fatalf("width multiplier must shrink compute: %.2e %.2e %.2e", quarter, half, full)
	}
	// The 0.5 variant is roughly a quarter of the compute (alpha^2 on the
	// pointwise convs dominates).
	if r := half / full; r < 0.2 || r > 0.4 {
		t.Fatalf("MobileNet0.5 / 1.0 flops ratio = %.2f, expected ~0.25-0.3", r)
	}
}

func TestSqueezeNet11LighterThan10(t *testing.T) {
	v10 := Build("SqueezeNet1.0", 224, true).TotalConvFLOPs()
	v11 := Build("SqueezeNet1.1", 224, true).TotalConvFLOPs()
	if r := v11 / v10; r > 0.6 {
		t.Fatalf("SqueezeNet1.1 should be ~2.4x lighter, ratio %.2f", r)
	}
}

func TestVariantsExecuteFunctionally(t *testing.T) {
	for _, name := range []string{"ResNet18_v1", "MobileNet0.25", "SqueezeNet1.1"} {
		m := Build(name, 64, false)
		graph.Optimize(m.Graph)
		feed := tensor.New(1, 3, 64, 64)
		feed.FillRandom(5)
		res, err := runtime.Execute(m.Graph, map[string]*tensor.Tensor{"data": feed})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var sum float64
		for _, v := range res.Outputs[0].Data() {
			sum += float64(v)
		}
		if math.Abs(sum-1) > 1e-3 {
			t.Fatalf("%s: softmax sums to %v", name, sum)
		}
	}
}

func TestUnknownVariantPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown model should panic")
		}
	}()
	Build("ResNet152_v1", 224, true)
}
