package models

import (
	"fmt"
	"strings"

	"unigpu/internal/graph"
	"unigpu/internal/ops"
)

// §4.1: "These models all have multiple variants (e.g. ResNet-18,
// ResNet-50, etc. ...) to form a model family. For the sake of space, we
// only evaluate our solution on one variant of each model family." The
// stack supports the families; this file provides the other variants. The
// family-consistency benchmark checks that per-variant results track the
// evaluated representative.

// resnetStage describes one residual stage.
type resnetStage struct {
	blocks, mid, out, stride int
}

var resnetConfigs = map[int]struct {
	stages     []resnetStage
	bottleneck bool
}{
	18:  {[]resnetStage{{2, 64, 64, 1}, {2, 128, 128, 2}, {2, 256, 256, 2}, {2, 512, 512, 2}}, false},
	34:  {[]resnetStage{{3, 64, 64, 1}, {4, 128, 128, 2}, {6, 256, 256, 2}, {3, 512, 512, 2}}, false},
	50:  {[]resnetStage{{3, 64, 256, 1}, {4, 128, 512, 2}, {6, 256, 1024, 2}, {3, 512, 2048, 2}}, true},
	101: {[]resnetStage{{3, 64, 256, 1}, {4, 128, 512, 2}, {23, 256, 1024, 2}, {3, 512, 2048, 2}}, true},
}

// buildResNet constructs any supported ResNet-v1 depth.
func buildResNet(depth, size, batch int, lite bool) *Model {
	cfg, ok := resnetConfigs[depth]
	if !ok {
		panic(fmt.Sprintf("models: unsupported ResNet depth %d", depth))
	}
	b := newBuilder(lite)
	b.batch = batch
	in := b.input(size)
	x := b.conv("stem", in, 64, 7, 2, 3, 1, true, ops.ActReLU)
	x = b.maxpool("stem_pool", x, 3, 2, 1)
	for _, st := range cfg.stages {
		for blk := 0; blk < st.blocks; blk++ {
			stride := 1
			if blk == 0 {
				stride = st.stride
			}
			if cfg.bottleneck {
				x = b.bottleneck(x, st.mid, st.out, stride, 0, blk)
			} else {
				x = b.basicBlock(x, st.out, stride)
			}
		}
	}
	x = b.g.Apply("gap", &graph.GlobalPoolOp{}, x)
	x = b.g.Apply("flatten", &graph.FlattenOp{}, x)
	x = b.dense("fc", x, 1000)
	x = b.g.Apply("prob", &graph.SoftmaxOp{}, x)
	b.g.SetOutputs(x)
	return &Model{Graph: b.g, Convs: b.convs}
}

// basicBlock is the two-3x3 residual unit of ResNet-18/34.
func (b *builder) basicBlock(x *graph.Node, out, stride int) *graph.Node {
	shortcut := x
	y := b.conv("res_a", x, out, 3, stride, 1, 1, true, ops.ActReLU)
	y = b.conv("res_b", y, out, 3, 1, 1, 1, true, ops.ActNone)
	if x.OutShape[1] != out || stride != 1 {
		shortcut = b.conv("res_proj", x, out, 1, stride, 0, 1, true, ops.ActNone)
	}
	sum := b.g.Apply(b.unique("res_add"), &graph.AddOp{}, y, shortcut)
	return b.g.Apply(b.unique("res_relu"), &graph.ActivationOp{Act: ops.ActReLU}, sum)
}

// buildMobileNetAlpha constructs MobileNet with a width multiplier
// (MobileNet0.5, MobileNet0.25, ...).
func buildMobileNetAlpha(alpha float32, size, batch int, lite bool) *Model {
	b := newBuilder(lite)
	b.batch = batch
	in := b.input(size)
	scale := func(c int) int { return max(8, int(float32(c)*alpha)) }
	x := b.conv("stem", in, scale(32), 3, 2, 1, 1, true, ops.ActReLU)
	for _, blk := range mobileNetBlocks {
		cin := x.OutShape[1]
		x = b.conv("dw", x, cin, 3, blk.stride, 1, cin, true, ops.ActReLU)
		x = b.conv("pw", x, scale(blk.out), 1, 1, 0, 1, true, ops.ActReLU)
	}
	x = b.g.Apply("gap", &graph.GlobalPoolOp{}, x)
	x = b.g.Apply("flatten", &graph.FlattenOp{}, x)
	x = b.dense("fc", x, 1000)
	x = b.g.Apply("prob", &graph.SoftmaxOp{}, x)
	b.g.SetOutputs(x)
	return &Model{Graph: b.g, Convs: b.convs}
}

// buildSqueezeNet11 constructs SqueezeNet 1.1: the 3x3/2 stem with earlier
// pooling that cuts compute ~2.4x at equal accuracy.
func buildSqueezeNet11(size, batch int, lite bool) *Model {
	b := newBuilder(lite)
	b.batch = batch
	in := b.input(size)
	x := b.conv("stem", in, 64, 3, 2, 0, 1, false, ops.ActReLU)
	x = b.maxpool("pool1", x, 3, 2, 0)
	x = b.fire(x, 16, 64, 64)
	x = b.fire(x, 16, 64, 64)
	x = b.maxpool("pool3", x, 3, 2, 0)
	x = b.fire(x, 32, 128, 128)
	x = b.fire(x, 32, 128, 128)
	x = b.maxpool("pool5", x, 3, 2, 0)
	x = b.fire(x, 48, 192, 192)
	x = b.fire(x, 48, 192, 192)
	x = b.fire(x, 64, 256, 256)
	x = b.fire(x, 64, 256, 256)
	x = b.conv("conv10", x, 1000, 1, 1, 0, 1, false, ops.ActReLU)
	x = b.g.Apply("gap", &graph.GlobalPoolOp{}, x)
	x = b.g.Apply("flatten", &graph.FlattenOp{}, x)
	x = b.g.Apply("prob", &graph.SoftmaxOp{}, x)
	b.g.SetOutputs(x)
	return &Model{Graph: b.g, Convs: b.convs}
}

// Families maps each evaluated representative to the other variants this
// stack builds.
func Families() map[string][]string {
	return map[string][]string{
		"ResNet50_v1":   {"ResNet18_v1", "ResNet34_v1", "ResNet50_v1", "ResNet101_v1"},
		"MobileNet1.0":  {"MobileNet0.25", "MobileNet0.5", "MobileNet1.0"},
		"SqueezeNet1.0": {"SqueezeNet1.0", "SqueezeNet1.1"},
	}
}

// buildVariant handles the non-representative family members; returns nil
// for unknown names.
func buildVariant(name string, size, batch int, lite bool) *Model {
	switch {
	case name == "ResNet18_v1":
		return buildResNet(18, size, batch, lite)
	case name == "ResNet34_v1":
		return buildResNet(34, size, batch, lite)
	case name == "ResNet101_v1":
		return buildResNet(101, size, batch, lite)
	case name == "MobileNet0.5":
		return buildMobileNetAlpha(0.5, size, batch, lite)
	case name == "MobileNet0.25":
		return buildMobileNetAlpha(0.25, size, batch, lite)
	case name == "SqueezeNet1.1":
		return buildSqueezeNet11(size, batch, lite)
	case strings.HasPrefix(name, "ResNet"):
		panic("models: unsupported ResNet variant " + name)
	default:
		return nil
	}
}
