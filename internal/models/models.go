// Package models defines the six evaluation networks of §4.1 exactly as
// architectural workloads — layer-by-layer channel counts, kernel sizes,
// strides and paddings matching the GluonCV model zoo variants the paper
// measures: ResNet50_v1, MobileNet1.0, SqueezeNet1.0, SSD_MobileNet1.0,
// SSD_ResNet50 and YOLOv3. Weights are synthetic (inference latency depends
// on shapes, not values); each builder emits both an executable graph and
// the topological conv-workload sequence the tuners and the latency tables
// consume.
package models

import (
	"fmt"

	"unigpu/internal/graph"
	"unigpu/internal/ops"
	"unigpu/internal/tensor"
	"unigpu/internal/vision"
)

// VisionProfile summarises a detection model's post-processing workload:
// the inputs to the vision-specific operators of §3.1.
type VisionProfile struct {
	Boxes   int // candidate boxes entering NMS per image
	Classes int // foreground classes (the naive formulation sorts per class)
	Kept    int // boxes surviving NMS (suppression sweeps)
	Heads   int // detection heads / decode kernels
}

// Model couples a built graph with its tuning workloads.
type Model struct {
	Name      string
	InputSize int
	Batch     int // input batch size the graph was built at (>= 1)
	Graph     *graph.Graph
	Convs     []ops.ConvWorkload // topological conv sequence (dense folded in as 1x1)
	Vision    *VisionProfile     // nil for classification models
}

// IsDetection reports whether the model has vision-specific
// post-processing.
func (m *Model) IsDetection() bool { return m.Vision != nil }

// TotalConvFLOPs sums the convolution work.
func (m *Model) TotalConvFLOPs() float64 {
	var t float64
	for _, w := range m.Convs {
		t += w.FLOPs()
	}
	return t
}

// builder threads graph construction state through the architecture code.
type builder struct {
	g     *graph.Graph
	seed  int64
	lite  bool // skip weight randomisation (workload-only callers)
	batch int  // input batch size (>= 1)
	convs []ops.ConvWorkload
	names map[string]int
}

func newBuilder(lite bool) *builder {
	return &builder{g: graph.New(), seed: 1, lite: lite, batch: 1, names: map[string]int{}}
}

// input adds the model's data input at the builder's batch size. Weight
// seeding is independent of the batch, so the same model built at any two
// batch sizes computes the identical function per batch row.
func (b *builder) input(size int) *graph.Node {
	return b.g.Input("data", b.batch, 3, size, size)
}

func (b *builder) unique(name string) string {
	b.names[name]++
	if b.names[name] > 1 {
		return fmt.Sprintf("%s_%d", name, b.names[name])
	}
	return name
}

func (b *builder) weight(name string, shape ...int) *graph.Node {
	t := tensor.New(shape...)
	if !b.lite {
		b.seed++
		t.FillRandom(b.seed)
		// Keep magnitudes tame so deep nets do not overflow float32.
		scale := float32(0.2)
		for i := range t.Data() {
			t.Data()[i] *= scale
		}
	}
	return b.g.Constant(b.unique(name), t)
}

func (b *builder) bnParams(name string, c int) (gamma, beta, mean, variance *graph.Node) {
	g := tensor.New(c)
	g.Fill(1)
	bt := tensor.New(c)
	mn := tensor.New(c)
	vr := tensor.New(c)
	vr.Fill(1)
	if !b.lite {
		b.seed++
		bt.FillRandom(b.seed)
		b.seed++
		mn.FillRandom(b.seed)
	}
	return b.g.Constant(b.unique(name+"_gamma"), g), b.g.Constant(b.unique(name+"_beta"), bt),
		b.g.Constant(b.unique(name+"_mean"), mn), b.g.Constant(b.unique(name+"_var"), vr)
}

// conv adds conv(+BN)(+activation) and records the workload. groups=cin
// gives a depthwise conv.
func (b *builder) conv(name string, x *graph.Node, cout, k, stride, pad, groups int, bn bool, act ops.Activation) *graph.Node {
	s := x.OutShape
	w := ops.ConvWorkload{
		N: s[0], CIn: s[1], H: s[2], W: s[3],
		COut: cout, KH: k, KW: k,
		StrideH: stride, StrideW: stride, PadH: pad, PadW: pad,
		Groups: groups,
	}
	b.convs = append(b.convs, w)
	g := max(1, groups)
	weight := b.weight(name+"_w", cout, s[1]/g, k, k)
	node := b.g.Apply(b.unique(name), &graph.ConvOp{W: w}, x, weight)
	if bn {
		ga, be, mn, vr := b.bnParams(name, cout)
		node = b.g.Apply(b.unique(name+"_bn"), &graph.BatchNormOp{Eps: 1e-5}, node, ga, be, mn, vr)
	}
	switch act {
	case ops.ActReLU:
		node = b.g.Apply(b.unique(name+"_relu"), &graph.ActivationOp{Act: ops.ActReLU}, node)
	case ops.ActLeakyReLU:
		node = b.g.Apply(b.unique(name+"_leaky"), &graph.ActivationOp{Act: ops.ActLeakyReLU, Alpha: 0.1}, node)
	}
	return node
}

// dense adds a fully connected layer, accounted as a 1x1 conv workload.
func (b *builder) dense(name string, x *graph.Node, units int) *graph.Node {
	in := x.OutShape[1]
	b.convs = append(b.convs, ops.ConvWorkload{
		N: x.OutShape[0], CIn: in, H: 1, W: 1, COut: units, KH: 1, KW: 1, StrideH: 1, StrideW: 1,
	})
	w := b.weight(name+"_w", units, in)
	bias := b.weight(name+"_b", units)
	return b.g.Apply(b.unique(name), &graph.DenseOp{}, x, w, bias)
}

func (b *builder) maxpool(name string, x *graph.Node, k, stride, pad int) *graph.Node {
	return b.g.Apply(b.unique(name), &graph.PoolOp{PoolKind: ops.MaxPool, Kernel: k, Stride: stride, Pad: pad}, x)
}

// Registry -------------------------------------------------------------------

// Names lists the evaluation models in paper order (Tables 1-3).
func Names() []string {
	return []string{"ResNet50_v1", "MobileNet1.0", "SqueezeNet1.0",
		"SSD_MobileNet1.0", "SSD_ResNet50", "Yolov3"}
}

// Classification lists the image-classification subset (Table 5).
func Classification() []string { return Names()[:3] }

// Detection lists the object-detection subset (Table 4).
func Detection() []string { return Names()[3:] }

// Build constructs a model at the given square input size. Each call
// returns a fresh graph (passes mutate graphs in place, so instances must
// not be shared between experiments). lite skips weight randomisation for
// workload-only uses.
func Build(name string, inputSize int, lite bool) *Model {
	return BuildN(name, inputSize, 1, lite)
}

// BuildN constructs a model with a (batch, 3, size, size) input. Weight
// seeding does not depend on the batch, so BuildN(name, s, n, lite)
// computes exactly the same function per batch row as Build(name, s, lite)
// — the property the batched serving front-end relies on. Every operator
// in the zoo (including the detection decode and NMS tails) treats the
// leading dimension as independent rows.
func BuildN(name string, inputSize, batch int, lite bool) *Model {
	if batch < 1 {
		batch = 1
	}
	var m *Model
	switch name {
	case "ResNet50_v1":
		m = buildResNet50(inputSize, batch, lite)
	case "MobileNet1.0":
		m = buildMobileNet(inputSize, batch, lite)
	case "SqueezeNet1.0":
		m = buildSqueezeNet(inputSize, batch, lite)
	case "SSD_MobileNet1.0":
		m = buildSSD(inputSize, batch, lite, "MobileNet1.0")
	case "SSD_ResNet50":
		m = buildSSD(inputSize, batch, lite, "ResNet50_v1")
	case "Yolov3":
		m = buildYoloV3(inputSize, batch, lite)
	default:
		if m = buildVariant(name, inputSize, batch, lite); m == nil {
			panic("models: unknown model " + name)
		}
	}
	m.Name = name
	m.InputSize = inputSize
	m.Batch = batch
	return m
}

// DefaultInputSize mirrors §4.1: classification at 224, detection at 512
// (reduced to 300 on aiSage by the caller). The paper does not state the
// YOLOv3 input size; 320 (a standard GluonCV yolo3 option) is the size at
// which the reported latencies are consistent with the ResNet-calibrated
// device efficiencies on all three platforms, so the reproduction uses it.
func DefaultInputSize(name string) int {
	switch name {
	case "Yolov3":
		return 320
	case "SSD_MobileNet1.0", "SSD_ResNet50":
		return 512
	default:
		return 224
	}
}

var _ = vision.DetWidth // vision types appear in the SSD/YOLO builders
