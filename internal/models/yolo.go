package models

import (
	"unigpu/internal/graph"
	"unigpu/internal/ops"
	"unigpu/internal/vision"
)

// yoloNumClasses is the COCO class count of GluonCV yolo3_darknet53_coco.
const yoloNumClasses = 80

// yoloAnchors are the standard YOLOv3 anchor sizes (input pixels) per head,
// large-stride head first.
var yoloAnchors = [][][2]float32{
	{{116, 90}, {156, 198}, {373, 326}}, // stride 32
	{{30, 61}, {62, 45}, {59, 119}},     // stride 16
	{{10, 13}, {16, 30}, {33, 23}},      // stride 8
}

// darknetRes adds one Darknet-53 residual unit: 1x1 half-channels then 3x3
// back, with a skip connection.
func (b *builder) darknetRes(x *graph.Node, ch int) *graph.Node {
	y := b.conv("dk_a", x, ch/2, 1, 1, 0, 1, true, ops.ActLeakyReLU)
	y = b.conv("dk_b", y, ch, 3, 1, 1, 1, true, ops.ActLeakyReLU)
	return b.g.Apply(b.unique("dk_add"), &graph.AddOp{}, y, x)
}

// buildYoloV3 constructs YOLOv3 on Darknet-53: the [1,2,8,8,4] residual
// backbone, three detection heads with feature-pyramid upsampling routes,
// per-head decode, and a final NMS over the concatenated detections.
func buildYoloV3(size, batch int, lite bool) *Model {
	b := newBuilder(lite)
	b.batch = batch
	in := b.input(size)

	x := b.conv("stem", in, 32, 3, 1, 1, 1, true, ops.ActLeakyReLU)
	stageBlocks := []int{1, 2, 8, 8, 4}
	stageCh := []int{64, 128, 256, 512, 1024}
	var taps []*graph.Node
	for si, blocks := range stageBlocks {
		x = b.conv("down", x, stageCh[si], 3, 2, 1, 1, true, ops.ActLeakyReLU)
		for i := 0; i < blocks; i++ {
			x = b.darknetRes(x, stageCh[si])
		}
		taps = append(taps, x)
	}
	c3, c4, c5 := taps[2], taps[3], taps[4] // strides 8, 16, 32

	attrs := 3 * (5 + yoloNumClasses)
	var dets []*graph.Node
	totalBoxes := 0

	// Head 1 (stride 32).
	h1, route1 := b.yoloHead(c5, 512)
	out1 := b.conv("out1", h1, attrs, 1, 1, 0, 1, false, ops.ActNone)
	dets = append(dets, b.g.Apply("decode1", &graph.YoloDecodeOp{
		Anchors: yoloAnchors[0], NumClasses: yoloNumClasses, Stride: 32}, out1))
	totalBoxes += out1.OutShape[2] * out1.OutShape[3] * 3

	// Head 2 (stride 16): route up + concat with c4.
	r := b.conv("route1", route1, 256, 1, 1, 0, 1, true, ops.ActLeakyReLU)
	r = b.g.Apply("up1", &graph.UpsampleOp{}, r)
	merged := b.g.Apply("cat1", &graph.ConcatOp{}, r, c4)
	h2, route2 := b.yoloHead(merged, 256)
	out2 := b.conv("out2", h2, attrs, 1, 1, 0, 1, false, ops.ActNone)
	dets = append(dets, b.g.Apply("decode2", &graph.YoloDecodeOp{
		Anchors: yoloAnchors[1], NumClasses: yoloNumClasses, Stride: 16}, out2))
	totalBoxes += out2.OutShape[2] * out2.OutShape[3] * 3

	// Head 3 (stride 8).
	r2 := b.conv("route2", route2, 128, 1, 1, 0, 1, true, ops.ActLeakyReLU)
	r2 = b.g.Apply("up2", &graph.UpsampleOp{}, r2)
	merged2 := b.g.Apply("cat2", &graph.ConcatOp{}, r2, c3)
	h3, _ := b.yoloHead(merged2, 128)
	out3 := b.conv("out3", h3, attrs, 1, 1, 0, 1, false, ops.ActNone)
	dets = append(dets, b.g.Apply("decode3", &graph.YoloDecodeOp{
		Anchors: yoloAnchors[2], NumClasses: yoloNumClasses, Stride: 8}, out3))
	totalBoxes += out3.OutShape[2] * out3.OutShape[3] * 3

	all := b.g.Apply("det_concat", &graph.ConcatOp{}, dets...)
	nms := b.g.Apply("nms", &graph.BoxNMSOp{
		Cfg: vision.NMSConfig{IoUThreshold: 0.45, ScoreThreshold: 0.01, TopK: 400, MaxOutput: 100},
	}, all)
	b.g.SetOutputs(nms)

	return &Model{
		Graph: b.g,
		Convs: b.convs,
		Vision: &VisionProfile{
			Boxes:   totalBoxes,
			Classes: yoloNumClasses,
			Kept:    100,
			Heads:   3,
		},
	}
}

// yoloHead is the five-conv neck: alternating 1x1/3x3. It returns the
// 3x3-expanded feature for the output conv and the 1x1 route tap.
func (b *builder) yoloHead(x *graph.Node, ch int) (headOut, route *graph.Node) {
	x = b.conv("neck_a", x, ch, 1, 1, 0, 1, true, ops.ActLeakyReLU)
	x = b.conv("neck_b", x, ch*2, 3, 1, 1, 1, true, ops.ActLeakyReLU)
	x = b.conv("neck_c", x, ch, 1, 1, 0, 1, true, ops.ActLeakyReLU)
	x = b.conv("neck_d", x, ch*2, 3, 1, 1, 1, true, ops.ActLeakyReLU)
	route = b.conv("neck_e", x, ch, 1, 1, 0, 1, true, ops.ActLeakyReLU)
	headOut = b.conv("neck_f", route, ch*2, 3, 1, 1, 1, true, ops.ActLeakyReLU)
	return headOut, route
}
