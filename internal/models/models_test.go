package models

import (
	"math"
	"testing"

	"unigpu/internal/graph"
	"unigpu/internal/runtime"
	"unigpu/internal/tensor"
)

func TestAllModelsBuildAndValidate(t *testing.T) {
	for _, name := range Names() {
		m := Build(name, DefaultInputSize(name), true)
		if err := m.Graph.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if len(m.Convs) == 0 {
			t.Errorf("%s: no conv workloads", name)
		}
		if m.IsDetection() != (m.Vision != nil) {
			t.Errorf("%s: detection flag inconsistent", name)
		}
	}
}

func TestResNet50Architecture(t *testing.T) {
	m := Build("ResNet50_v1", 224, true)
	// 1 stem + 16 blocks * 3 + 4 projections + 1 fc = 54 conv workloads.
	if len(m.Convs) != 54 {
		t.Fatalf("ResNet50 conv count = %d, want 54", len(m.Convs))
	}
	// ~4.1 GMACs per sample at 224, counted as 2 flops per MAC.
	gf := m.TotalConvFLOPs() / 1e9
	if gf < 7.0 || gf > 9.0 {
		t.Fatalf("ResNet50 FLOPs = %.2f G, expected ~8.2 G", gf)
	}
	// Stem is 7x7/2 at 64 channels.
	stem := m.Convs[0]
	if stem.KH != 7 || stem.StrideH != 2 || stem.COut != 64 {
		t.Fatalf("stem = %+v", stem)
	}
}

func TestMobileNetArchitecture(t *testing.T) {
	m := Build("MobileNet1.0", 224, true)
	// stem + 13*(dw+pw) + fc = 28.
	if len(m.Convs) != 28 {
		t.Fatalf("MobileNet conv count = %d, want 28", len(m.Convs))
	}
	gf := m.TotalConvFLOPs() / 1e9
	if gf < 0.9 || gf > 1.5 {
		t.Fatalf("MobileNet FLOPs = %.2f G, expected ~1.1 G (2x MACs)", gf)
	}
	depthwise := 0
	for _, w := range m.Convs {
		if w.IsDepthwise() {
			depthwise++
		}
	}
	if depthwise != 13 {
		t.Fatalf("depthwise convs = %d, want 13", depthwise)
	}
}

func TestSqueezeNetArchitecture(t *testing.T) {
	m := Build("SqueezeNet1.0", 224, true)
	// stem + 8 fires * 3 + conv10 = 26.
	if len(m.Convs) != 26 {
		t.Fatalf("SqueezeNet conv count = %d, want 26", len(m.Convs))
	}
	gf := m.TotalConvFLOPs() / 1e9
	if gf < 1.0 || gf > 2.6 {
		t.Fatalf("SqueezeNet FLOPs = %.2f G, expected ~1.7 G (2x MACs)", gf)
	}
}

func TestSSDArchitectures(t *testing.T) {
	ssd := Build("SSD_ResNet50", 512, true)
	if ssd.Vision == nil {
		t.Fatal("SSD must have a vision profile")
	}
	// SSD512 generates tens of thousands of candidate boxes.
	if ssd.Vision.Boxes < 15000 || ssd.Vision.Boxes > 40000 {
		t.Fatalf("SSD512 boxes = %d", ssd.Vision.Boxes)
	}
	// aiSage variant at 300 produces far fewer.
	small := Build("SSD_ResNet50", 300, true)
	if small.Vision.Boxes >= ssd.Vision.Boxes {
		t.Fatal("300x300 SSD must have fewer boxes than 512x512")
	}
	mb := Build("SSD_MobileNet1.0", 512, true)
	if mb.TotalConvFLOPs() >= ssd.TotalConvFLOPs() {
		t.Fatal("SSD-MobileNet must be lighter than SSD-ResNet50")
	}
}

func TestYoloV3Architecture(t *testing.T) {
	m := Build("Yolov3", 416, true)
	// Darknet-53 has 52 convs; three heads add 6+1 each plus routes.
	if len(m.Convs) < 70 || len(m.Convs) > 85 {
		t.Fatalf("YOLOv3 conv count = %d", len(m.Convs))
	}
	// (13^2 + 26^2 + 52^2) * 3 = 10647 boxes.
	if m.Vision.Boxes != 10647 {
		t.Fatalf("YOLOv3 boxes = %d, want 10647", m.Vision.Boxes)
	}
	gf := m.TotalConvFLOPs() / 1e9
	if gf < 45 || gf > 90 {
		t.Fatalf("YOLOv3 FLOPs = %.1f G, expected ~66 G (2x MACs)", gf)
	}
}

func TestBuildReturnsFreshInstances(t *testing.T) {
	// Passes mutate graphs in place, so two builds must never alias.
	a := Build("ResNet50_v1", 224, true)
	b := Build("ResNet50_v1", 224, true)
	if a == b || a.Graph == b.Graph {
		t.Fatal("Build must return fresh instances")
	}
	if len(a.Convs) != len(b.Convs) {
		t.Fatal("builds must be deterministic")
	}
}

// Functional smoke tests at reduced input size: graphs execute end to end
// and produce sane outputs.

func TestClassificationModelsExecute(t *testing.T) {
	for _, name := range Classification() {
		m := Build(name, 64, false)
		graph.Optimize(m.Graph)
		feed := tensor.New(1, 3, 64, 64)
		feed.FillRandom(42)
		res, err := runtime.Execute(m.Graph, map[string]*tensor.Tensor{"data": feed})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out := res.Outputs[0]
		if out.Shape()[len(out.Shape())-1] != 1000 {
			t.Fatalf("%s: output shape %v", name, out.Shape())
		}
		var sum float64
		for _, v := range out.Data() {
			if math.IsNaN(float64(v)) {
				t.Fatalf("%s: NaN in output", name)
			}
			sum += float64(v)
		}
		if math.Abs(sum-1) > 1e-3 {
			t.Fatalf("%s: softmax sums to %v", name, sum)
		}
	}
}

func TestSSDExecutesAtReducedSize(t *testing.T) {
	m := Build("SSD_MobileNet1.0", 128, false)
	graph.Optimize(m.Graph)
	feed := tensor.New(1, 3, 128, 128)
	feed.FillRandom(9)
	res, err := runtime.Execute(m.Graph, map[string]*tensor.Tensor{"data": feed})
	if err != nil {
		t.Fatal(err)
	}
	out := res.Outputs[0]
	if out.Shape()[2] != 6 {
		t.Fatalf("detection width = %d", out.Shape()[2])
	}
	// Scores are in [0, 1] and sorted descending among valid rows.
	prev := float32(2)
	for i := 0; i < out.Shape()[1]; i++ {
		if out.At(0, i, 0) < 0 {
			break
		}
		sc := out.At(0, i, 1)
		if sc < 0 || sc > 1 || sc > prev {
			t.Fatalf("row %d: score %v (prev %v)", i, sc, prev)
		}
		prev = sc
	}
}

func TestYoloExecutesAtReducedSize(t *testing.T) {
	m := Build("Yolov3", 96, false)
	graph.Optimize(m.Graph)
	feed := tensor.New(1, 3, 96, 96)
	feed.FillRandom(11)
	res, err := runtime.Execute(m.Graph, map[string]*tensor.Tensor{"data": feed})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs[0].Shape()[2] != 6 {
		t.Fatalf("yolo output shape %v", res.Outputs[0].Shape())
	}
}

func TestOptimizePassesShrinkDetectionGraphs(t *testing.T) {
	m := Build("SSD_MobileNet1.0", 128, false)
	before := len(m.Graph.OpNodes())
	graph.Optimize(m.Graph)
	after := len(m.Graph.OpNodes())
	if after >= before {
		t.Fatalf("optimization should remove nodes: %d -> %d", before, after)
	}
	for _, n := range m.Graph.OpNodes() {
		if n.Op.Kind() == "batch_norm" {
			t.Fatal("batch norms must all fold")
		}
	}
}
