package sim

import (
	"math"
	"sort"

	"unigpu/internal/ir"
	"unigpu/internal/te"
)

// Cost is the predicted execution profile of one kernel on one device.
type Cost struct {
	Seconds        float64
	ComputeSeconds float64
	MemorySeconds  float64
	LaunchSeconds  float64

	FLOPs        float64
	TrafficBytes float64

	Occupancy  float64 // fraction of hardware threads kept busy
	WarpUtil   float64 // lockstep-lane utilization
	Divergence float64 // fraction of guarded (divergent) work
	Efficiency float64 // achieved fraction of peak compute
}

// CostKernel prices a lowered kernel on the device. The model is a roofline
// (max of compute and memory time) whose compute efficiency is degraded by
// the schedule-visible factors of §2.1: load balancing across compute
// units, warp/SIMD packing, thread divergence, loop overhead; and whose
// memory traffic is reduced by the reuse that tiling keeps within the
// register/shared/L2 working set, scaled by access coalescing.
func CostKernel(d *Device, k *te.Kernel) Cost {
	a := analyzeKernel(k)
	return costFromAnalysis(d, a)
}

func costFromAnalysis(d *Device, a *analysis) Cost {
	c := Cost{FLOPs: a.flops}

	blocks := math.Max(1, a.blockIters)
	threadsPerBlock := math.Max(1, a.threadIters)

	// Occupancy: enough resident threads to hide latency, and block count
	// balanced across compute units (tail effect).
	totalThreads := blocks * threadsPerBlock
	c.Occupancy = math.Min(1, totalThreads/float64(d.MaxConcurrentThreads()))
	cus := float64(d.ComputeUnits)
	if blocks < cus {
		c.Occupancy *= blocks / cus
	} else {
		waves := math.Ceil(blocks / cus)
		c.Occupancy *= blocks / (waves * cus)
	}

	// Lockstep packing: partially filled warps/subgroups waste lanes.
	ws := float64(max(1, d.WarpSize))
	c.WarpUtil = threadsPerBlock / (math.Ceil(threadsPerBlock/ws) * ws)

	// Divergence: guarded work forces both warp paths to issue. Without
	// shared memory (Mali) there is no cheap re-convergence staging, so
	// the penalty is harsher (§4.3).
	c.Divergence = a.divergentFraction
	divPenalty := 1 - 0.5*c.Divergence
	if d.IsGPU && !d.HasSharedMem {
		divPenalty = 1 - 0.7*c.Divergence
	}

	// Unrolling buys ILP and removes loop exit tests (§3.2.2); a serial,
	// un-unrolled innermost loop pays control overhead instead.
	boost := 1.0
	if a.innerUnroll > 1 {
		boost *= math.Min(1.30, 1+0.06*math.Log2(float64(a.innerUnroll)+1))
	}
	if a.innerVector > 1 {
		lanes := math.Min(float64(a.innerVector), float64(d.SIMDWidth))
		boost *= math.Min(1.6, 1+0.18*math.Log2(1+lanes))
	}
	if a.innerSerial {
		boost *= 0.80
	}
	// Subgroup register blocking on Intel: operands come from the shared
	// GRF instead of memory, improving issue efficiency (§3.2.1).
	if a.usesSubgroup && d.HasSubgroups {
		boost *= 1.25
	}
	// Abundant parallelism: kernels with many waves of work amortise
	// scheduling bubbles and reach a higher fraction of peak — why the
	// large-input detection backbones run more efficiently than 224x224
	// classification layers.
	if waves := totalThreads / float64(d.MaxConcurrentThreads()); waves > 1 {
		boost *= math.Min(1.45, 1+0.09*math.Log2(waves))
	}

	eff := d.BaseEfficiency * c.Occupancy * c.WarpUtil * divPenalty * boost
	eff = math.Min(eff, d.BaseEfficiency*2.1)
	c.Efficiency = eff

	if a.flops > 0 {
		c.ComputeSeconds = a.flops / (d.PeakGFLOPs * 1e9 * math.Max(eff, 1e-4))
	}

	// Memory traffic with tiling-aware reuse and coalescing: in-block
	// reuse is captured by the registers/shared working set, and cross-
	// block reuse (neighbouring blocks re-reading weights or halo data) by
	// the device L2 with a temporal-locality window.
	cache := d.cacheBytes(threadsPerBlock)
	l2 := d.L2KB * 1024 * 4 // blocks scheduled close in time share L2 lines
	var traffic float64
	for _, acc := range a.accesses {
		fpPerBlock := acc.footprintPerBlock * 4
		footprint := blocks * fpPerBlock
		streaming := acc.iters * 4
		if footprint > streaming {
			footprint = streaming
		}
		// A footprint that fits the working set is fully reused; beyond
		// capacity, evictions ramp the traffic toward streaming.
		missBlock := clamp01(fpPerBlock/cache - 1)
		bytes := footprint + (streaming-footprint)*missBlock

		global := acc.footprintGlobal * 4
		if global < bytes {
			missL2 := clamp01(global/l2 - 1)
			bytes = global + (bytes-global)*missL2
		}
		bytes *= acc.coalesceWaste(d)
		traffic += bytes
	}
	c.TrafficBytes = traffic
	c.MemorySeconds = traffic / (d.MemBandwidthGBs * 1e9)

	c.LaunchSeconds = d.KernelLaunchUs * 1e-6
	c.Seconds = math.Max(c.ComputeSeconds, c.MemorySeconds) + c.LaunchSeconds
	return c
}

// cacheBytes is the effective reuse capacity available to one block: the
// register files of its resident threads, the shared-local memory if the
// architecture has it, and a per-unit share of L2.
func (d *Device) cacheBytes(threadsPerBlock float64) float64 {
	regs := d.RegisterKBPerThread * 1024 * math.Min(threadsPerBlock, float64(d.ThreadsPerUnit*max(1, d.WarpSize)))
	shared := 0.0
	if d.HasSharedMem {
		shared = d.SharedMemKB * 1024
	}
	l2 := d.L2KB * 1024 / float64(d.ComputeUnits)
	return math.Max(1, regs+shared+l2)
}

func clamp01(x float64) float64 { return math.Max(0, math.Min(1, x)) }

// access records one global-buffer load or store site.
type access struct {
	buffer            string
	iters             float64 // dynamic executions of the site
	footprintPerBlock float64 // distinct elements touched per block
	footprintGlobal   float64 // distinct elements touched by the whole launch
	stride            int     // flat-index stride along the coalescing axis
	isStore           bool
}

// coalesceWaste is the traffic inflation from strided access: a stride-s
// pattern touches s-times the useful cache lines, capped at the line size.
func (a *access) coalesceWaste(d *Device) float64 {
	if !d.IsGPU {
		return 1
	}
	s := a.stride
	if s < 0 {
		s = -s
	}
	if s <= 1 {
		return 1
	}
	const lineFloats = 16
	return math.Min(float64(s), lineFloats)
}

// analysis is the schedule-visible summary the cost model consumes.
type analysis struct {
	flops             float64
	blockIters        float64 // product of blockIdx-bound extents
	threadIters       float64 // product of thread/subgroup-bound extents
	divergentFraction float64
	innerUnroll       int
	innerVector       int
	innerSerial       bool
	usesSubgroup      bool
	accesses          []*access
	globalBufs        map[string]bool
}

type loopFrame struct {
	name   string
	extent int
	kind   ir.ForKind
}

func analyzeKernel(k *te.Kernel) *analysis {
	a := &analysis{globalBufs: map[string]bool{k.Output.Name: true}}
	for _, in := range k.Inputs {
		a.globalBufs[in] = true
	}
	a.blockIters, a.threadIters = 1, 1
	var frames []loopFrame
	var guardedWork, totalWork float64
	var walk func(s ir.Stmt, guarded bool)
	walk = func(s ir.Stmt, guarded bool) {
		switch v := s.(type) {
		case *ir.For:
			ext := extentOf(v.Extent)
			switch v.Kind {
			case ir.ForThreadBlock:
				a.blockIters *= float64(ext)
			case ir.ForThread:
				a.threadIters *= float64(ext)
			case ir.ForSubgroup:
				a.threadIters *= float64(ext)
				a.usesSubgroup = true
			}
			frames = append(frames, loopFrame{v.Var.Name, ext, v.Kind})
			walk(v.Body, guarded)
			frames = frames[:len(frames)-1]
		case *ir.Store:
			iters := itersOf(frames)
			totalWork += iters
			if guarded {
				guardedWork += iters
			}
			a.flops += float64(countFloatOps(v.Value)) * iters
			a.noteInnermost(frames)
			a.recordAccesses(v, frames)
		case *ir.LetStmt:
			walk(v.Body, guarded)
		case *ir.IfThenElse:
			walk(v.Then, true)
			if v.Else != nil {
				walk(v.Else, true)
			}
		case *ir.Allocate:
			walk(v.Body, guarded)
		case *ir.Seq:
			for _, st := range v.Stmts {
				walk(st, guarded)
			}
		}
	}
	walk(k.Body, false)
	if totalWork > 0 {
		a.divergentFraction = guardedWork / totalWork
	}
	return a
}

// noteInnermost classifies the innermost loop enclosing real work.
func (a *analysis) noteInnermost(frames []loopFrame) {
	for i := len(frames) - 1; i >= 0; i-- {
		f := frames[i]
		if f.kind.IsGPUBound() {
			continue // hardware axes are not in-kernel loops
		}
		switch f.kind {
		case ir.ForUnrolled:
			if f.extent > a.innerUnroll {
				a.innerUnroll = f.extent
			}
		case ir.ForVectorized:
			if f.extent > a.innerVector {
				a.innerVector = f.extent
			}
		default:
			if f.extent > 1 {
				a.innerSerial = true
			}
		}
		return
	}
}

// recordAccesses collects every global load in the stored value plus the
// store itself.
func (a *analysis) recordAccesses(st *ir.Store, frames []loopFrame) {
	iters := itersOf(frames)
	coalesceVar := coalescingAxis(frames)
	record := func(buf string, idx ir.Expr, isStore bool) {
		if !a.globalBufs[buf] {
			return
		}
		a.accesses = append(a.accesses, &access{
			buffer:            buf,
			iters:             iters,
			footprintPerBlock: footprint(idx, frames),
			footprintGlobal:   footprintGlobal(idx, frames),
			stride:            strideOf(idx, coalesceVar),
			isStore:           isStore,
		})
	}
	ir.WalkExpr(st.Value, func(e ir.Expr) {
		if l, ok := e.(*ir.Load); ok {
			record(l.Buffer, l.Index, false)
		}
	})
	record(st.Buffer, st.Index, true)
}

func itersOf(frames []loopFrame) float64 {
	n := 1.0
	for _, f := range frames {
		n *= float64(f.extent)
	}
	return n
}

// coalescingAxis picks the loop variable whose stride determines memory
// coalescing: the innermost thread/subgroup axis, else the innermost
// vectorized axis, else the innermost loop.
func coalescingAxis(frames []loopFrame) string {
	for i := len(frames) - 1; i >= 0; i-- {
		if frames[i].kind == ir.ForThread || frames[i].kind == ir.ForSubgroup {
			return frames[i].name
		}
	}
	for i := len(frames) - 1; i >= 0; i-- {
		if frames[i].kind == ir.ForVectorized {
			return frames[i].name
		}
	}
	if len(frames) > 0 {
		return frames[len(frames)-1].name
	}
	return ""
}

// strideOf evaluates d(index)/d(var) numerically with all other variables
// at zero. Non-linear indices report their local stride at the origin.
func strideOf(idx ir.Expr, varName string) int {
	if varName == "" {
		return 1
	}
	at := func(v int) float64 {
		bounds := map[string][2]float64{varName: {float64(v), float64(v)}}
		lo, _ := interval(idx, bounds)
		return lo
	}
	return int(at(1) - at(0))
}

// footprint estimates the number of distinct elements the index expression
// can touch within one block (block variables pinned), and footprintGlobal
// the distinct elements across the whole launch. Affine accesses are
// treated as a union of strided progressions: contributions are merged in
// ascending stride order, so overlapping sliding-window taps (kh against
// oh, kw against ow) extend a contiguous span instead of multiplying the
// count, and disjoint large-stride axes replicate it.
func footprint(idx ir.Expr, frames []loopFrame) float64 {
	return footprintWith(idx, frames, false)
}

func footprintGlobal(idx ir.Expr, frames []loopFrame) float64 {
	return footprintWith(idx, frames, true)
}

func footprintWith(idx ir.Expr, frames []loopFrame, includeBlocks bool) float64 {
	bounds := map[string][2]float64{}
	type se struct{ stride, extent float64 }
	var terms []se
	for _, f := range frames {
		if f.kind == ir.ForThreadBlock && !includeBlocks {
			bounds[f.name] = [2]float64{0, 0}
			continue
		}
		bounds[f.name] = [2]float64{0, float64(f.extent - 1)}
		if s := strideOf(idx, f.name); s != 0 && f.extent > 1 {
			terms = append(terms, se{math.Abs(float64(s)), float64(f.extent)})
		}
	}
	lo, hi := interval(idx, bounds)
	rangeSize := math.Max(1, hi-lo+1)

	sort.Slice(terms, func(i, j int) bool { return terms[i].stride < terms[j].stride })
	span, count := 1.0, 1.0
	for _, t := range terms {
		if t.stride <= span {
			span += t.stride * (t.extent - 1) // contiguous/overlapping extension
		} else {
			count *= t.extent // disjoint replication of the current chunks
		}
	}
	return math.Max(1, math.Min(count*span, rangeSize))
}

// interval performs interval arithmetic over the expression. Unknown
// variables default to [0,0].
func interval(e ir.Expr, bounds map[string][2]float64) (lo, hi float64) {
	switch v := e.(type) {
	case *ir.Var:
		if b, ok := bounds[v.Name]; ok {
			return b[0], b[1]
		}
		return 0, 0
	case *ir.IntImm:
		return float64(v.Value), float64(v.Value)
	case *ir.FloatImm:
		return float64(v.Value), float64(v.Value)
	case *ir.Binary:
		alo, ahi := interval(v.A, bounds)
		blo, bhi := interval(v.B, bounds)
		switch v.Op {
		case ir.OpAdd:
			return alo + blo, ahi + bhi
		case ir.OpSub:
			return alo - bhi, ahi - blo
		case ir.OpMul:
			c := []float64{alo * blo, alo * bhi, ahi * blo, ahi * bhi}
			return minSlice(c), maxSlice(c)
		case ir.OpDiv:
			if blo == bhi && blo != 0 {
				x, y := alo/blo, ahi/blo
				return math.Min(x, y), math.Max(x, y)
			}
			return alo, ahi
		case ir.OpMod:
			if blo == bhi && blo > 0 {
				return 0, math.Min(ahi, blo-1)
			}
			return alo, ahi
		case ir.OpMin:
			return math.Min(alo, blo), math.Min(ahi, bhi)
		case ir.OpMax:
			return math.Max(alo, blo), math.Max(ahi, bhi)
		default:
			return 0, 1
		}
	case *ir.Select:
		alo, ahi := interval(v.A, bounds)
		blo, bhi := interval(v.B, bounds)
		return math.Min(alo, blo), math.Max(ahi, bhi)
	case *ir.Cast:
		return interval(v.Value, bounds)
	case *ir.Load:
		return 0, 0 // value range irrelevant to addressing
	default:
		return 0, 0
	}
}

func minSlice(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		m = math.Min(m, x)
	}
	return m
}

func maxSlice(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		m = math.Max(m, x)
	}
	return m
}

// countFloatOps counts floating-point operations in an expression tree.
func countFloatOps(e ir.Expr) int {
	n := 0
	ir.WalkExpr(e, func(ex ir.Expr) {
		switch v := ex.(type) {
		case *ir.Binary:
			if v.A.DType() == ir.Float32 || v.B.DType() == ir.Float32 {
				n++
			}
		case *ir.Call:
			if v.Type == ir.Float32 {
				n += 4 // transcendental cost in flop-equivalents
			}
		case *ir.Select:
			n++
		}
	})
	return n
}

func extentOf(e ir.Expr) int {
	if imm, ok := e.(*ir.IntImm); ok {
		return imm.Value
	}
	return 1
}
