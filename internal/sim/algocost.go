package sim

// dtypeRate returns the device's throughput multiplier for an element
// width in bytes: 1 for fp32, FP16Rate for 2-byte storage, Int8Rate for
// 1-byte storage. Unset (zero) rates default to 1, so devices without
// declared reduced-precision units price fp16/int8 arithmetic at fp32
// speed — storage traffic still shrinks with the element width.
func (d *Device) dtypeRate(elemBytes float64) float64 {
	switch elemBytes {
	case 2:
		if d.FP16Rate > 0 {
			return d.FP16Rate
		}
	case 1:
		if d.Int8Rate > 0 {
			return d.Int8Rate
		}
	}
	return 1
}

// AlgoSeconds is a roofline estimate for one kernel invocation described
// by its flop count, the number of elements moved, the element width in
// bytes, and a relative arithmetic efficiency (how well the implementation
// converts the device's achievable peak into useful work; see
// ops.KernelProfile). Reduced-precision storage pays for fewer bytes on
// the memory side and earns the device's dtype throughput multiplier on
// the compute side. It is used by the graph-level conv kernel selector to
// rank alternative algorithms (and dtypes) for the same workload — the
// absolute seconds matter less than the per-workload ordering.
func (d *Device) AlgoSeconds(flops, elems, elemBytes, eff float64) float64 {
	if eff <= 0 {
		eff = 1e-3
	}
	if elemBytes <= 0 {
		elemBytes = 4
	}
	compute := flops / (d.PeakGFLOPs * 1e9 * d.dtypeRate(elemBytes) * d.BaseEfficiency * eff)
	memory := elems * elemBytes / (d.MemBandwidthGBs * 1e9)
	t := compute
	if memory > t {
		t = memory
	}
	return t + d.KernelLaunchUs*1e-6
}
