package sim

// AlgoSeconds is a roofline estimate for one kernel invocation described by
// its flop count, bytes moved, and relative arithmetic efficiency (how well
// the implementation converts the device's achievable peak into useful
// work; see ops.KernelProfile). It is used by the graph-level conv kernel
// selector to rank alternative algorithms for the same workload — the
// absolute seconds matter less than the per-workload ordering.
func (d *Device) AlgoSeconds(flops, bytes, eff float64) float64 {
	if eff <= 0 {
		eff = 1e-3
	}
	compute := flops / (d.PeakGFLOPs * 1e9 * d.BaseEfficiency * eff)
	memory := bytes / (d.MemBandwidthGBs * 1e9)
	t := compute
	if memory > t {
		t = memory
	}
	return t + d.KernelLaunchUs*1e-6
}
