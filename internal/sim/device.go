// Package sim models the integrated GPUs (and their companion CPUs) of the
// paper's three evaluation platforms — AWS DeepLens (Intel HD 505), Acer
// aiSage (ARM Mali T-860), and Nvidia Jetson Nano (Maxwell) — and prices
// lowered kernels on them.
//
// This package is the hardware substitution required by the reproduction:
// Go cannot drive the real silicon, so an analytical performance model
// stands in for it. The model prices exactly the mechanisms the paper's
// optimizations act through — occupancy/load balancing, SIMD utilization,
// register blocking and cache reuse, memory coalescing, thread divergence,
// shared-memory availability, and kernel-launch/global-sync overheads — so
// that better schedules genuinely cost less and per-device differences
// (e.g. Mali's missing shared memory) shape the results the way the paper
// reports.
package sim

// Vendor identifies the GPU programming ecosystem.
type Vendor int

const (
	Intel Vendor = iota
	ARM
	Nvidia
	GenericCPU
)

func (v Vendor) String() string {
	switch v {
	case Intel:
		return "intel"
	case ARM:
		return "arm"
	case Nvidia:
		return "nvidia"
	}
	return "cpu"
}

// API is the programming interface used for code generation on a device.
type API int

const (
	OpenCL API = iota
	CUDA
	Native // CPU fallback
)

func (a API) String() string {
	switch a {
	case OpenCL:
		return "opencl"
	case CUDA:
		return "cuda"
	}
	return "native"
}

// Device describes one compute device of an SoC.
type Device struct {
	Name   string
	Vendor Vendor
	API    API
	IsGPU  bool

	// ComputeUnits: EUs on Intel, shader cores on Mali, SMs on Nvidia,
	// hardware cores on a CPU (§2.1).
	ComputeUnits int
	// SIMDWidth is the per-unit vector width in fp32 lanes.
	SIMDWidth int
	// WarpSize is the number of threads scheduled in lockstep (32 on
	// Nvidia; the subgroup size on Intel; 1 quad-pipe on Mali).
	WarpSize int
	// ThreadsPerUnit is how many hardware threads a unit keeps in flight
	// to hide memory latency.
	ThreadsPerUnit int

	PeakGFLOPs      float64 // theoretical fp32 peak
	MemBandwidthGBs float64 // shared-DRAM bandwidth visible to this device

	// HasSharedMem: per-block shared/local memory. False on Mali Midgard,
	// which is why load balancing and divergence matter more there (§4.3).
	HasSharedMem bool
	// HasSubgroups: Intel's register-file-sharing subgroup extension.
	HasSubgroups bool

	RegisterKBPerThread float64 // GRF budget per hardware thread
	SharedMemKB         float64 // per compute unit
	L2KB                float64

	KernelLaunchUs float64 // driver overhead per kernel launch
	GlobalSyncUs   float64 // cost of a device-wide synchronization
	CopyLatencyUs  float64 // CPU<->GPU handoff latency (shared DRAM, small)

	// BaseEfficiency is the fraction of peak a perfectly scheduled kernel
	// reaches in practice on this device (driver, ISA and DVFS losses).
	BaseEfficiency float64

	// FP16Rate and Int8Rate are throughput multipliers over the fp32 peak
	// for half-precision and 8-bit-integer arithmetic (e.g. 2 when the
	// device issues packed 2x fp16 per fp32 lane). Zero means "no declared
	// reduced-precision units": arithmetic is priced at fp32 speed and only
	// the memory traffic shrinks.
	FP16Rate float64
	Int8Rate float64

	// Faults optionally injects runtime failures into this device's
	// simulated dispatches (nil = always healthy). The runtime consults it
	// for every GPU-placed node; see FaultInjector. Attach per-Device —
	// tests should copy a platform device rather than mutate the shared
	// globals above.
	Faults *FaultInjector
}

// Platform couples the integrated GPU with its companion CPU, mirroring the
// SoCs used in §4.1.
type Platform struct {
	Name string
	GPU  *Device
	CPU  *Device
}

// The three evaluation platforms. GPU/CPU peak-FLOPs ratios match the
// paper's stated 5.16x, 6.77x and 2.48x.
var (
	// IntelHD505 is the AWS DeepLens GPU: Gen9 HD Graphics 505, 18 EUs,
	// OpenCL with the Intel subgroup extension.
	IntelHD505 = &Device{
		Name: "Intel HD Graphics 505", Vendor: Intel, API: OpenCL, IsGPU: true,
		ComputeUnits: 18, SIMDWidth: 8, WarpSize: 8, ThreadsPerUnit: 7,
		PeakGFLOPs: 216.0, MemBandwidthGBs: 12.8,
		HasSharedMem: true, HasSubgroups: true,
		RegisterKBPerThread: 4, SharedMemKB: 64, L2KB: 768,
		// The Atom host driving the OpenCL queue makes per-kernel dispatch
		// expensive on DeepLens, which penalises many-small-kernel models
		// (SqueezeNet) more than deep-but-chunky ones (ResNet).
		KernelLaunchUs: 280, GlobalSyncUs: 90, CopyLatencyUs: 9,
		BaseEfficiency: 0.17,
		// Gen9 EUs issue packed 2x fp16 per fp32 lane; no int8 dot units.
		FP16Rate: 2.0,
	}
	AtomE3930 = &Device{
		Name: "Intel Atom x5-E3930", Vendor: GenericCPU, API: Native,
		ComputeUnits: 2, SIMDWidth: 4, WarpSize: 1, ThreadsPerUnit: 1,
		PeakGFLOPs: 41.9, MemBandwidthGBs: 12.8,
		RegisterKBPerThread: 2, L2KB: 2048,
		KernelLaunchUs: 1, GlobalSyncUs: 2, CopyLatencyUs: 0,
		BaseEfficiency: 0.55,
	}

	// MaliT860 is the Acer aiSage GPU: Midgard 4th generation, 4 shader
	// cores, OpenCL, no shared-local memory.
	MaliT860 = &Device{
		Name: "ARM Mali T-860 MP4", Vendor: ARM, API: OpenCL, IsGPU: true,
		ComputeUnits: 4, SIMDWidth: 4, WarpSize: 4, ThreadsPerUnit: 16,
		PeakGFLOPs: 104.0, MemBandwidthGBs: 10.6,
		HasSharedMem: false, HasSubgroups: false,
		RegisterKBPerThread: 1, SharedMemKB: 0, L2KB: 256,
		KernelLaunchUs: 32, GlobalSyncUs: 55, CopyLatencyUs: 12,
		BaseEfficiency: 0.20,
		// Midgard's arithmetic pipes are 128-bit vector: twice the fp16
		// lanes and 4x-packed int8 ops (priced conservatively at 2x).
		FP16Rate: 2.0, Int8Rate: 2.0,
	}
	RK3399CPU = &Device{
		Name: "RK3399 Cortex-A72", Vendor: GenericCPU, API: Native,
		ComputeUnits: 2, SIMDWidth: 4, WarpSize: 1, ThreadsPerUnit: 1,
		PeakGFLOPs: 15.4, MemBandwidthGBs: 10.6,
		RegisterKBPerThread: 2, L2KB: 1024,
		KernelLaunchUs: 1, GlobalSyncUs: 2, CopyLatencyUs: 0,
		BaseEfficiency: 0.55,
	}

	// MaxwellNano is the Jetson Nano GPU: 128 CUDA cores in one Maxwell
	// SM pair, CUDA.
	MaxwellNano = &Device{
		Name: "Nvidia Maxwell 128-core", Vendor: Nvidia, API: CUDA, IsGPU: true,
		ComputeUnits: 1, SIMDWidth: 128, WarpSize: 32, ThreadsPerUnit: 64,
		PeakGFLOPs: 235.8, MemBandwidthGBs: 25.6,
		HasSharedMem: true, HasSubgroups: false,
		RegisterKBPerThread: 1, SharedMemKB: 64, L2KB: 256,
		KernelLaunchUs: 9, GlobalSyncUs: 14, CopyLatencyUs: 5,
		BaseEfficiency: 0.27,
		// Tegra-generation Maxwell issues paired fp16x2 FMAs; int8 has no
		// dedicated dot-product path (that arrives with Pascal's dp4a).
		FP16Rate: 2.0,
	}
	CortexA57 = &Device{
		Name: "Jetson Nano Cortex-A57", Vendor: GenericCPU, API: Native,
		ComputeUnits: 4, SIMDWidth: 4, WarpSize: 1, ThreadsPerUnit: 1,
		PeakGFLOPs: 95.1, MemBandwidthGBs: 25.6,
		RegisterKBPerThread: 2, L2KB: 2048,
		KernelLaunchUs: 1, GlobalSyncUs: 2, CopyLatencyUs: 0,
		BaseEfficiency: 0.55,
	}

	DeepLens   = &Platform{Name: "AWS DeepLens", GPU: IntelHD505, CPU: AtomE3930}
	AiSage     = &Platform{Name: "Acer aiSage", GPU: MaliT860, CPU: RK3399CPU}
	JetsonNano = &Platform{Name: "Nvidia Jetson Nano", GPU: MaxwellNano, CPU: CortexA57}
)

// Platforms lists the three evaluation devices in paper order.
func Platforms() []*Platform { return []*Platform{DeepLens, AiSage, JetsonNano} }

// PeakRatio returns the GPU:CPU theoretical peak ratio quoted in §1.
func (p *Platform) PeakRatio() float64 { return p.GPU.PeakGFLOPs / p.CPU.PeakGFLOPs }

// MaxConcurrentThreads is how many hardware threads the device keeps
// resident at once.
func (d *Device) MaxConcurrentThreads() int {
	return d.ComputeUnits * d.ThreadsPerUnit * max(1, d.WarpSize)
}
