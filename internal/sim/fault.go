package sim

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"unigpu/internal/obs"
)

// FaultKind enumerates the device failures the simulator can inject. They
// model the runtime hazards a production serving stack must survive on
// real silicon: flaky kernels, stalled command queues, lost devices, and
// allocation failures under memory pressure.
type FaultKind int

const (
	// FaultTransientKernel is a one-off kernel-execution failure: the
	// dispatch fails, an immediate retry may succeed.
	FaultTransientKernel FaultKind = iota
	// FaultQueueHang stalls the command queue for the configured latency
	// before failing the dispatch (the queue is reset). The stall honours
	// context cancellation.
	FaultQueueHang
	// FaultDeviceLost removes the device: the faulting dispatch and every
	// subsequent one fail permanently until Heal is called.
	FaultDeviceLost
	// FaultMemPressure is a transient device-arena allocation failure.
	FaultMemPressure

	numFaultKinds = 4
)

func (k FaultKind) String() string {
	switch k {
	case FaultTransientKernel:
		return "transient_kernel"
	case FaultQueueHang:
		return "queue_hang"
	case FaultDeviceLost:
		return "device_lost"
	case FaultMemPressure:
		return "mem_pressure"
	}
	return fmt.Sprintf("fault(%d)", int(k))
}

// AllFaultKinds lists every injectable fault kind.
var AllFaultKinds = []FaultKind{FaultTransientKernel, FaultQueueHang, FaultDeviceLost, FaultMemPressure}

// Fault is the error returned by a faulted dispatch.
type Fault struct {
	Kind FaultKind
	Node string // the dispatch that faulted
}

func (f *Fault) Error() string {
	return fmt.Sprintf("sim: injected %s fault dispatching %q", f.Kind, f.Node)
}

// Transient reports whether a retry of the same dispatch may succeed.
// Device loss is permanent until the device heals.
func (f *Fault) Transient() bool { return f.Kind != FaultDeviceLost }

// FaultConfig parameterizes random fault injection. The zero value injects
// nothing (scripted faults still fire).
type FaultConfig struct {
	// Seed makes the fault sequence deterministic: the same seed and the
	// same dispatch order produce the same faults.
	Seed int64
	// Rate is the per-dispatch probability of injecting a fault.
	Rate float64
	// Kinds restricts which kinds are drawn; empty means AllFaultKinds.
	Kinds []FaultKind
	// HangLatency is the stall injected by FaultQueueHang (default 2ms).
	HangLatency time.Duration
	// MaxFaults bounds the total number of randomly injected faults
	// (0 = unlimited). Scripted faults are not counted against it.
	MaxFaults int
	// Device labels this injector's metrics with the replica it models
	// (fault.injected.<kind>.<device>), so a fleet scrape distinguishes
	// which device faulted. Empty keeps the single-device metric names
	// (fault.injected.<kind>) unchanged.
	Device string
}

// FaultInjector deterministically injects device failures into simulated
// GPU dispatches. One injector models one device's health; attach it to a
// Device (Device.Faults) or hand it to a runtime session directly. All
// methods are safe for concurrent use. A nil injector is healthy: Dispatch
// returns nil.
type FaultInjector struct {
	mu     sync.Mutex
	cfg    FaultConfig
	rng    *rand.Rand
	script []FaultKind
	lost   bool
	total  int64
	byKind [numFaultKinds]int64
}

// NewFaultInjector creates an injector drawing random faults per cfg.
func NewFaultInjector(cfg FaultConfig) *FaultInjector {
	return &FaultInjector{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Script appends faults that fire deterministically, one per dispatch, in
// order, before any random draws. A scripted FaultDeviceLost leaves the
// device lost afterwards, like a random one.
func (f *FaultInjector) Script(kinds ...FaultKind) *FaultInjector {
	f.mu.Lock()
	f.script = append(f.script, kinds...)
	f.mu.Unlock()
	return f
}

// Dispatch simulates submitting one kernel (named for the graph node) to
// the device's command queue. It returns nil for a healthy dispatch, a
// *Fault when a failure is injected, or ctx.Err() when the context is
// cancelled during an injected queue hang.
func (f *FaultInjector) Dispatch(ctx context.Context, node string) error {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	if f.lost {
		f.mu.Unlock()
		return &Fault{Kind: FaultDeviceLost, Node: node}
	}
	kind := FaultKind(-1)
	switch {
	case len(f.script) > 0:
		kind = f.script[0]
		f.script = f.script[1:]
	case f.cfg.Rate > 0 &&
		(f.cfg.MaxFaults == 0 || f.total < int64(f.cfg.MaxFaults)) &&
		f.rng.Float64() < f.cfg.Rate:
		kinds := f.cfg.Kinds
		if len(kinds) == 0 {
			kinds = AllFaultKinds
		}
		kind = kinds[f.rng.Intn(len(kinds))]
	}
	if kind < 0 {
		f.mu.Unlock()
		return nil
	}
	f.total++
	f.byKind[kind]++
	if kind == FaultDeviceLost {
		f.lost = true
	}
	hang := f.cfg.HangLatency
	f.mu.Unlock()

	f.countInjected(kind)
	if kind == FaultQueueHang {
		if hang <= 0 {
			hang = 2 * time.Millisecond
		}
		t := time.NewTimer(hang)
		select {
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		case <-t.C:
		}
	}
	return &Fault{Kind: kind, Node: node}
}

// countInjected bumps the injected-fault counter, labelled per device when
// the injector carries a Device name (fleet replicas) and under the
// original single-device name otherwise.
func (f *FaultInjector) countInjected(kind FaultKind) {
	name := "fault.injected." + kind.String()
	if f.cfg.Device != "" {
		name += "." + f.cfg.Device
	}
	obs.Count(name, 1)
}

// Kill deterministically removes the device — the scripted counterpart of
// a random FaultDeviceLost: every subsequent dispatch fails permanently
// until Heal. Fleet soaks use it to lose a device at an exact point in the
// request schedule. Killing an already-lost device is a no-op.
func (f *FaultInjector) Kill() {
	if f == nil {
		return
	}
	f.mu.Lock()
	if f.lost {
		f.mu.Unlock()
		return
	}
	f.lost = true
	f.total++
	f.byKind[FaultDeviceLost]++
	f.mu.Unlock()
	f.countInjected(FaultDeviceLost)
}

// DeviceLost reports whether a FaultDeviceLost has fired and the device
// has not healed.
func (f *FaultInjector) DeviceLost() bool {
	if f == nil {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.lost
}

// Heal restores a lost device (a driver reset), so subsequent dispatches
// go back to the configured random behaviour.
func (f *FaultInjector) Heal() {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.lost = false
	f.mu.Unlock()
}

// Total returns how many faults have been injected.
func (f *FaultInjector) Total() int64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.total
}

// Injected returns how many faults of the given kind have been injected.
func (f *FaultInjector) Injected(kind FaultKind) int64 {
	if f == nil || kind < 0 || kind >= numFaultKinds {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.byKind[kind]
}

// Counts snapshots the injected-fault totals by kind name, omitting kinds
// that never fired — the shape serving reports embed.
func (f *FaultInjector) Counts() map[string]int64 {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[string]int64, numFaultKinds)
	for _, k := range AllFaultKinds {
		if f.byKind[k] > 0 {
			out[k.String()] = f.byKind[k]
		}
	}
	return out
}
