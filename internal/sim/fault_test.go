package sim

import (
	"context"
	"errors"
	"testing"
	"time"

	"unigpu/internal/obs"
)

// TestFaultInjectorDeterminism: the same seed and dispatch order must
// produce the same fault sequence — the soak's reproducibility hinges on it.
func TestFaultInjectorDeterminism(t *testing.T) {
	sequence := func() []string {
		inj := NewFaultInjector(FaultConfig{
			Seed: 42, Rate: 0.5, HangLatency: time.Microsecond,
			Kinds: []FaultKind{FaultTransientKernel, FaultQueueHang, FaultMemPressure},
		})
		var seq []string
		for i := 0; i < 200; i++ {
			err := inj.Dispatch(context.Background(), "n")
			if err == nil {
				seq = append(seq, "ok")
				continue
			}
			var f *Fault
			if !errors.As(err, &f) {
				t.Fatalf("dispatch error is %T, want *Fault", err)
			}
			seq = append(seq, f.Kind.String())
		}
		return seq
	}
	a, b := sequence(), sequence()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sequence diverges at %d: %s != %s", i, a[i], b[i])
		}
	}
}

// TestFaultInjectorScript: scripted faults fire in order before random
// draws, and counters attribute them per kind.
func TestFaultInjectorScript(t *testing.T) {
	inj := NewFaultInjector(FaultConfig{}).
		Script(FaultTransientKernel, FaultMemPressure)
	err := inj.Dispatch(context.Background(), "a")
	var f *Fault
	if !errors.As(err, &f) || f.Kind != FaultTransientKernel || !f.Transient() {
		t.Fatalf("first dispatch: got %v, want transient_kernel", err)
	}
	err = inj.Dispatch(context.Background(), "b")
	if !errors.As(err, &f) || f.Kind != FaultMemPressure || !f.Transient() {
		t.Fatalf("second dispatch: got %v, want mem_pressure", err)
	}
	if err := inj.Dispatch(context.Background(), "c"); err != nil {
		t.Fatalf("script drained, dispatch should be healthy: %v", err)
	}
	if inj.Total() != 2 || inj.Injected(FaultTransientKernel) != 1 || inj.Injected(FaultMemPressure) != 1 {
		t.Fatalf("counters: total=%d tk=%d mp=%d", inj.Total(),
			inj.Injected(FaultTransientKernel), inj.Injected(FaultMemPressure))
	}
}

// TestFaultInjectorDeviceLoss: a lost device fails every subsequent
// dispatch (non-transient) until healed.
func TestFaultInjectorDeviceLoss(t *testing.T) {
	inj := NewFaultInjector(FaultConfig{}).Script(FaultDeviceLost)
	err := inj.Dispatch(context.Background(), "a")
	var f *Fault
	if !errors.As(err, &f) || f.Kind != FaultDeviceLost || f.Transient() {
		t.Fatalf("got %v, want permanent device_lost", err)
	}
	if !inj.DeviceLost() {
		t.Fatal("device must be lost")
	}
	for i := 0; i < 3; i++ {
		if err := inj.Dispatch(context.Background(), "b"); !errors.As(err, &f) || f.Kind != FaultDeviceLost {
			t.Fatalf("lost device dispatch %d: got %v", i, err)
		}
	}
	if got := inj.Injected(FaultDeviceLost); got != 1 {
		t.Fatalf("device loss injected once, counted %d", got)
	}
	inj.Heal()
	if inj.DeviceLost() {
		t.Fatal("healed device must not be lost")
	}
	if err := inj.Dispatch(context.Background(), "c"); err != nil {
		t.Fatalf("healed dispatch: %v", err)
	}
}

// TestFaultInjectorHangCancel: a queue hang respects context cancellation
// instead of stalling for the full latency.
func TestFaultInjectorHangCancel(t *testing.T) {
	inj := NewFaultInjector(FaultConfig{HangLatency: 10 * time.Second}).Script(FaultQueueHang)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err := inj.Dispatch(ctx, "a")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("cancel took %v, hang not interruptible", elapsed)
	}
}

// TestFaultInjectorMaxFaults: the random-fault budget caps injections, so
// soaks can guarantee eventual success.
func TestFaultInjectorMaxFaults(t *testing.T) {
	inj := NewFaultInjector(FaultConfig{
		Seed: 1, Rate: 1.0, MaxFaults: 5,
		Kinds: []FaultKind{FaultTransientKernel},
	})
	faults := 0
	for i := 0; i < 100; i++ {
		if err := inj.Dispatch(context.Background(), "n"); err != nil {
			faults++
		}
	}
	if faults != 5 {
		t.Fatalf("injected %d faults, want MaxFaults=5", faults)
	}
}

// TestNilInjectorHealthy: a nil injector is a healthy device.
func TestNilInjectorHealthy(t *testing.T) {
	var inj *FaultInjector
	if err := inj.Dispatch(context.Background(), "n"); err != nil {
		t.Fatalf("nil injector must be healthy: %v", err)
	}
	if inj.DeviceLost() || inj.Total() != 0 {
		t.Fatal("nil injector must report no faults")
	}
}

// TestFaultInjectorKill: Kill is the scripted device loss — immediate,
// idempotent, counted as a FaultDeviceLost, and reversed by Heal.
func TestFaultInjectorKill(t *testing.T) {
	inj := NewFaultInjector(FaultConfig{})
	if inj.DeviceLost() {
		t.Fatal("fresh injector reports device lost")
	}
	inj.Kill()
	if !inj.DeviceLost() {
		t.Fatal("Kill did not lose the device")
	}
	err := inj.Dispatch(context.Background(), "n")
	var f *Fault
	if !errors.As(err, &f) || f.Kind != FaultDeviceLost {
		t.Fatalf("dispatch after Kill: got %v, want FaultDeviceLost", err)
	}
	inj.Kill() // idempotent: no double count
	if got := inj.Injected(FaultDeviceLost); got != 1 {
		t.Fatalf("Injected(FaultDeviceLost) = %d, want 1", got)
	}
	inj.Heal()
	if inj.DeviceLost() {
		t.Fatal("Heal did not restore the device")
	}
	if err := inj.Dispatch(context.Background(), "n"); err != nil {
		t.Fatalf("dispatch after Heal: %v", err)
	}
	// nil-safe scripting: a replica without an injector ignores both.
	var nilInj *FaultInjector
	nilInj.Kill()
	nilInj.Heal()
}

// TestFaultInjectorDeviceLabel: an injector carrying a Device name counts
// faults under fault.injected.<kind>.<device>; without one the original
// single-device metric names are untouched (backward compatibility).
func TestFaultInjectorDeviceLabel(t *testing.T) {
	labelled := obs.DefaultRegistry.Counter("fault.injected.device_lost.test-dev-7")
	legacy := obs.DefaultRegistry.Counter("fault.injected.device_lost")
	l0, g0 := labelled.Value(), legacy.Value()

	NewFaultInjector(FaultConfig{Device: "test-dev-7"}).Kill()
	if got := labelled.Value() - l0; got != 1 {
		t.Fatalf("labelled counter rose by %d, want 1", got)
	}
	if got := legacy.Value() - g0; got != 0 {
		t.Fatalf("labelled Kill leaked %d into the legacy counter", got)
	}

	NewFaultInjector(FaultConfig{}).Kill()
	if got := legacy.Value() - g0; got != 1 {
		t.Fatalf("legacy counter rose by %d, want 1", got)
	}
}
