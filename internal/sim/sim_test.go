package sim

import (
	"math"
	"testing"

	"unigpu/internal/ir"
	"unigpu/internal/te"
)

// gemmKernel lowers an m×n×k matmul with an optional schedule hook.
func gemmKernel(m, n, k int, schedule func(s *te.Schedule)) *te.Kernel {
	A := te.Placeholder("A", m, k)
	B := te.Placeholder("B", k, n)
	C := te.Sum("C", []int{m, n}, []int{k}, func(ax, r []ir.Expr) ir.Expr {
		return ir.Mul(A.Access(ax[0], r[0]), B.Access(r[0], ax[1]))
	})
	s := te.NewSchedule(C)
	if schedule != nil {
		schedule(s)
	}
	return te.Lower("gemm", s)
}

func naiveGPU(s *te.Schedule) {
	ax := s.SpatialAxes()
	s.Bind(ax[0], ir.ForThreadBlock) // one row per block, one thread
}

func tunedGPU(s *te.Schedule) {
	ax := s.SpatialAxes()
	mo, mi := s.Split(ax[0], 8)
	no, ni := s.Split(ax[1], 64)
	nio, nii := s.Split(ni, 4)
	s.Reorder(mo, no, mi, nio, nii)
	s.Bind(mo, ir.ForThreadBlock)
	s.Bind(no, ir.ForThreadBlock)
	s.Bind(mi, ir.ForThread)
	s.Bind(nio, ir.ForThread)
	r := s.ReduceAxes()
	_, ri := s.Split(r[0], 4)
	s.Unroll(ri)
	s.Vectorize(nii)
}

func TestDevicePeakRatiosMatchPaper(t *testing.T) {
	cases := []struct {
		p    *Platform
		want float64
	}{
		{DeepLens, 5.16},
		{AiSage, 6.77},
		{JetsonNano, 2.48},
	}
	for _, c := range cases {
		if got := c.p.PeakRatio(); math.Abs(got-c.want) > 0.02 {
			t.Errorf("%s peak ratio = %.2f, want %.2f (paper §1)", c.p.Name, got, c.want)
		}
	}
}

func TestMaliHasNoSharedMemory(t *testing.T) {
	if MaliT860.HasSharedMem {
		t.Fatal("Mali Midgard must not have shared memory (§4.3)")
	}
	if !IntelHD505.HasSubgroups || MaliT860.HasSubgroups {
		t.Fatal("only Intel Graphics has the subgroup extension")
	}
	if MaxwellNano.API != CUDA || IntelHD505.API != OpenCL || MaliT860.API != OpenCL {
		t.Fatal("driver APIs wrong")
	}
}

func TestCostPositiveAndFinite(t *testing.T) {
	k := gemmKernel(64, 64, 64, tunedGPU)
	for _, p := range Platforms() {
		c := CostKernel(p.GPU, k)
		if !(c.Seconds > 0) || math.IsInf(c.Seconds, 0) || math.IsNaN(c.Seconds) {
			t.Errorf("%s: bad cost %v", p.Name, c.Seconds)
		}
		if c.FLOPs < 2*64*64*64*0.9 {
			t.Errorf("%s: flops %v too low", p.Name, c.FLOPs)
		}
	}
}

func TestTunedBeatsNaive(t *testing.T) {
	// The fundamental property the whole search relies on: a tiled,
	// thread-rich, vectorized schedule must be priced well below a
	// one-thread-per-block naive schedule, on every GPU.
	naive := gemmKernel(256, 256, 256, naiveGPU)
	tuned := gemmKernel(256, 256, 256, tunedGPU)
	for _, p := range Platforms() {
		cn := CostKernel(p.GPU, naive)
		ct := CostKernel(p.GPU, tuned)
		if ct.Seconds >= cn.Seconds {
			t.Errorf("%s: tuned %.6fs not faster than naive %.6fs", p.Name, ct.Seconds, cn.Seconds)
		}
		if cn.Seconds/ct.Seconds < 2 {
			t.Errorf("%s: tuned/naive speedup only %.2fx", p.Name, cn.Seconds/ct.Seconds)
		}
	}
}

func TestOccupancyIncreasesWithThreads(t *testing.T) {
	few := gemmKernel(128, 128, 32, func(s *te.Schedule) {
		ax := s.SpatialAxes()
		s.Bind(ax[0], ir.ForThreadBlock)
	})
	many := gemmKernel(128, 128, 32, func(s *te.Schedule) {
		ax := s.SpatialAxes()
		s.Bind(ax[0], ir.ForThreadBlock)
		s.Bind(ax[1], ir.ForThread)
	})
	cf := CostKernel(MaxwellNano, few)
	cm := CostKernel(MaxwellNano, many)
	if cm.Occupancy <= cf.Occupancy {
		t.Fatalf("more threads should raise occupancy: %v vs %v", cm.Occupancy, cf.Occupancy)
	}
}

func TestWarpUtilPenalizesPartialWarps(t *testing.T) {
	mk := func(threads int) *te.Kernel {
		return gemmKernel(64, 64, 8, func(s *te.Schedule) {
			ax := s.SpatialAxes()
			s.Bind(ax[0], ir.ForThreadBlock)
			_, ni := s.Split(ax[1], threads)
			s.Bind(ni, ir.ForThread)
		})
	}
	full := CostKernel(MaxwellNano, mk(32))
	partial := CostKernel(MaxwellNano, mk(16)) // half a warp idle
	if partial.WarpUtil >= full.WarpUtil {
		t.Fatalf("partial warp util %v should be below full %v", partial.WarpUtil, full.WarpUtil)
	}
	if math.Abs(partial.WarpUtil-0.5) > 1e-9 {
		t.Fatalf("16/32 threads should give 0.5 warp util, got %v", partial.WarpUtil)
	}
}

func TestDivergenceMeasuredAndWorseOnMali(t *testing.T) {
	// A non-dividing split introduces a boundary guard -> divergent work.
	guarded := gemmKernel(100, 64, 16, func(s *te.Schedule) {
		ax := s.SpatialAxes()
		mo, mi := s.Split(ax[0], 32) // 100 % 32 != 0 -> guard
		s.Bind(mo, ir.ForThreadBlock)
		s.Bind(mi, ir.ForThread)
	})
	clean := gemmKernel(96, 64, 16, func(s *te.Schedule) {
		ax := s.SpatialAxes()
		mo, mi := s.Split(ax[0], 32)
		s.Bind(mo, ir.ForThreadBlock)
		s.Bind(mi, ir.ForThread)
	})
	cg := CostKernel(MaliT860, guarded)
	cc := CostKernel(MaliT860, clean)
	if cg.Divergence <= 0 || cc.Divergence != 0 {
		t.Fatalf("divergence: guarded=%v clean=%v", cg.Divergence, cc.Divergence)
	}
	// Same guarded kernel should lose relatively more efficiency on Mali
	// (no shared memory) than on Nvidia.
	effLossMali := CostKernel(MaliT860, guarded).Efficiency / CostKernel(MaliT860, clean).Efficiency
	effLossNano := CostKernel(MaxwellNano, guarded).Efficiency / CostKernel(MaxwellNano, clean).Efficiency
	if effLossMali >= effLossNano {
		t.Fatalf("divergence penalty on Mali (%.3f) should exceed Nvidia (%.3f)", effLossMali, effLossNano)
	}
}

func TestSubgroupBoostOnlyOnIntel(t *testing.T) {
	sub := gemmKernel(64, 64, 16, func(s *te.Schedule) {
		ax := s.SpatialAxes()
		s.Bind(ax[0], ir.ForThreadBlock)
		_, ni := s.Split(ax[1], 8)
		s.Bind(ni, ir.ForSubgroup)
	})
	plain := gemmKernel(64, 64, 16, func(s *te.Schedule) {
		ax := s.SpatialAxes()
		s.Bind(ax[0], ir.ForThreadBlock)
		_, ni := s.Split(ax[1], 8)
		s.Bind(ni, ir.ForThread)
	})
	if CostKernel(IntelHD505, sub).Efficiency <= CostKernel(IntelHD505, plain).Efficiency {
		t.Fatal("subgroup binding should boost efficiency on Intel")
	}
	if CostKernel(MaliT860, sub).Efficiency > CostKernel(MaliT860, plain).Efficiency {
		t.Fatal("subgroup binding must not boost Mali (no subgroups)")
	}
}

func TestTilingReducesTraffic(t *testing.T) {
	// Blocking the reduction keeps the working set in cache; an untiled
	// kernel streams B from DRAM every row. The matrices are large enough
	// that cross-block L2 reuse cannot hide the difference.
	untiled := gemmKernel(2048, 2048, 2048, func(s *te.Schedule) {
		ax := s.SpatialAxes()
		s.Bind(ax[0], ir.ForThreadBlock)
		_, ni := s.Split(ax[1], 64)
		s.Bind(ni, ir.ForThread)
	})
	tiled := gemmKernel(2048, 2048, 2048, func(s *te.Schedule) {
		ax := s.SpatialAxes()
		mo, mi := s.Split(ax[0], 64)
		s.Bind(mo, ir.ForThreadBlock)
		no, ni := s.Split(ax[1], 64)
		s.Bind(no, ir.ForThreadBlock)
		s.Bind(ni, ir.ForThread)
		_ = mi
		_ = no
	})
	cu := CostKernel(MaxwellNano, untiled)
	ct := CostKernel(MaxwellNano, tiled)
	if ct.TrafficBytes >= cu.TrafficBytes {
		t.Fatalf("tiled traffic %.0f should be below untiled %.0f", ct.TrafficBytes, cu.TrafficBytes)
	}
}

func TestCoalescingWaste(t *testing.T) {
	a := &access{stride: 1}
	if a.coalesceWaste(MaxwellNano) != 1 {
		t.Fatal("unit stride is coalesced")
	}
	a.stride = 64
	if a.coalesceWaste(MaxwellNano) != 16 {
		t.Fatal("large stride should cap at the cache line (16 floats)")
	}
	a.stride = -4
	if a.coalesceWaste(MaxwellNano) != 4 {
		t.Fatal("negative strides count by magnitude")
	}
	if a.coalesceWaste(AtomE3930) != 1 {
		t.Fatal("CPU accesses are not warp-coalesced")
	}
}

func TestIntervalArithmetic(t *testing.T) {
	x, y := ir.NewVar("x"), ir.NewVar("y")
	bounds := map[string][2]float64{"x": {0, 3}, "y": {0, 4}}
	lo, hi := interval(ir.Add(ir.Mul(x, ir.Imm(5)), y), bounds)
	if lo != 0 || hi != 19 {
		t.Fatalf("interval(5x+y) = [%v,%v], want [0,19]", lo, hi)
	}
	lo, hi = interval(ir.Sub(x, y), bounds)
	if lo != -4 || hi != 3 {
		t.Fatalf("interval(x-y) = [%v,%v], want [-4,3]", lo, hi)
	}
	lo, hi = interval(ir.Mod(x, ir.Imm(2)), bounds)
	if lo != 0 || hi != 1 {
		t.Fatalf("interval(x%%2) = [%v,%v], want [0,1]", lo, hi)
	}
}

func TestOpaqueCosts(t *testing.T) {
	c := CostFlopsBytes(MaxwellNano, 1e9, 250e3, 4, 1.0)
	if !(c > 0 && c < 1) {
		t.Fatalf("opaque cost = %v", c)
	}
	// Memory-bound workload should be priced by bandwidth.
	cm := CostFlopsBytes(MaxwellNano, 1e3, 64e6, 4, 1.0)
	if cm < 256e6/(MaxwellNano.MemBandwidthGBs*1e9) {
		t.Fatal("memory-bound cost below bandwidth bound")
	}
	if CopyCost(DeepLens, 4e6) <= 0 {
		t.Fatal("copy cost must be positive")
	}
	if GlobalSyncCost(MaliT860) <= GlobalSyncCost(MaxwellNano) == (MaliT860.GlobalSyncUs <= MaxwellNano.GlobalSyncUs) == false {
		t.Fatal("sync cost ordering should follow device parameters")
	}
}

func TestCostDeterminism(t *testing.T) {
	k := gemmKernel(128, 128, 128, tunedGPU)
	a := CostKernel(IntelHD505, k)
	b := CostKernel(IntelHD505, k)
	if a != b {
		t.Fatal("cost model must be deterministic")
	}
}
