package sim

import "math"

// CostFlopsBytes prices a workload characterized only by its arithmetic
// and traffic volumes — elems elements of elemBytes width each, moved once
// — at a given fraction of the device's base efficiency. It is used for
// operators accounted at the graph level without lowering through te
// (elementwise tails, CPU-fallback operators, vendor-library profile
// entries). elemBytes <= 0 defaults to fp32 width.
func CostFlopsBytes(d *Device, flops, elems, elemBytes, relEff float64) float64 {
	if elemBytes <= 0 {
		elemBytes = 4
	}
	eff := math.Max(1e-4, d.BaseEfficiency*relEff)
	compute := flops / (d.PeakGFLOPs * 1e9 * d.dtypeRate(elemBytes) * eff)
	mem := elems * elemBytes / (d.MemBandwidthGBs * 1e9)
	return math.Max(compute, mem) + d.KernelLaunchUs*1e-6
}

// CopyCost prices moving bytes between the CPU and the integrated GPU of a
// platform. Both share DRAM (§3.1.2), so the cost is a cache flush plus a
// bandwidth term, not a PCIe transfer — this is why fallback is cheap.
func CopyCost(p *Platform, bytes float64) float64 {
	bw := math.Min(p.GPU.MemBandwidthGBs, p.CPU.MemBandwidthGBs) * 1e9
	return p.GPU.CopyLatencyUs*1e-6 + bytes/bw
}

// GlobalSyncCost is the price of a device-wide synchronization, which on
// GPUs requires ending and relaunching a kernel. The register-blocked scan
// exists to avoid paying this log(n) times (§3.1.1).
func GlobalSyncCost(d *Device) float64 { return d.GlobalSyncUs * 1e-6 }

// LaunchCost is the per-kernel driver overhead.
func LaunchCost(d *Device) float64 { return d.KernelLaunchUs * 1e-6 }
