package ops

import (
	"sync/atomic"
	"testing"

	"unigpu/internal/tensor"
)

// randT makes a deterministic pseudo-random tensor.
func randT(seed int64, shape ...int) *tensor.Tensor {
	t := tensor.New(shape...)
	t.FillRandom(seed)
	return t
}

func assertSame(t *testing.T, name string, got, want *tensor.Tensor) {
	t.Helper()
	if !got.Shape().Equal(want.Shape()) {
		t.Fatalf("%s: shape %v, want %v", name, got.Shape(), want.Shape())
	}
	gd, wd := got.Data(), want.Data()
	for i := range wd {
		if gd[i] != wd[i] {
			t.Fatalf("%s: differs at %d: %v != %v", name, i, gd[i], wd[i])
		}
	}
}

// TestIntoVariantsMatchAllocating: every *Into kernel must be bit-identical
// to its allocating wrapper — the pooled runtime swaps them in freely.
func TestIntoVariantsMatchAllocating(t *testing.T) {
	in := randT(1, 1, 6, 9, 9)
	w := ConvWorkload{N: 1, CIn: 6, COut: 4, H: 9, W: 9, KH: 3, KW: 3,
		StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	weight := randT(2, 4, 6, 3, 3)
	bias := randT(3, 4)

	conv := Conv2D(in, weight, bias, w)
	convInto := tensor.New(conv.Shape()...)
	Conv2DInto(convInto, in, weight, bias, w)
	assertSame(t, "conv2d", convInto, conv)

	x := randT(4, 1, 4, 8, 8)
	checks := []struct {
		name string
		ref  *tensor.Tensor
		into func(out *tensor.Tensor)
	}{
		{"relu", ReLU(x), func(o *tensor.Tensor) { ReLUInto(o, x) }},
		{"leaky_relu", LeakyReLU(x, 0.1), func(o *tensor.Tensor) { LeakyReLUInto(o, x, 0.1) }},
		{"sigmoid", Sigmoid(x), func(o *tensor.Tensor) { SigmoidInto(o, x) }},
		{"pool_max", Pool2D(x, MaxPool, 2, 2, 0), func(o *tensor.Tensor) { Pool2DInto(o, x, MaxPool, 2, 2, 0) }},
		{"pool_avg", Pool2D(x, AvgPool, 3, 2, 1), func(o *tensor.Tensor) { Pool2DInto(o, x, AvgPool, 3, 2, 1) }},
		{"global_avg", GlobalAvgPool(x), func(o *tensor.Tensor) { GlobalAvgPoolInto(o, x) }},
		{"upsample", UpsampleNearest2x(x), func(o *tensor.Tensor) { UpsampleNearest2xInto(o, x) }},
	}
	for _, c := range checks {
		out := tensor.New(c.ref.Shape()...)
		out.Fill(-123) // poison: Into must overwrite every element
		c.into(out)
		assertSame(t, c.name, out, c.ref)
	}

	y := randT(5, 1, 4, 8, 8)
	sum := Add(x, y)
	sumInto := tensor.New(sum.Shape()...)
	AddInto(sumInto, x, y)
	assertSame(t, "add", sumInto, sum)

	cat := Concat(x, y)
	catInto := tensor.New(cat.Shape()...)
	ConcatInto(catInto, x, y)
	assertSame(t, "concat", catInto, cat)

	gamma, beta, mean, vr := randT(6, 4), randT(7, 4), randT(8, 4), randT(9, 4)
	vd := vr.Data()
	for i := range vd {
		if vd[i] < 0 {
			vd[i] = -vd[i]
		}
		vd[i] += 0.5
	}
	bn := BatchNormInference(x, gamma, beta, mean, vr, 1e-5)
	bnInto := tensor.New(bn.Shape()...)
	BatchNormInferenceInto(bnInto, x, gamma, beta, mean, vr, 1e-5)
	assertSame(t, "batchnorm", bnInto, bn)

	logits := randT(10, 2, 10)
	sm := Softmax(logits)
	smInto := tensor.New(sm.Shape()...)
	SoftmaxInto(smInto, logits)
	assertSame(t, "softmax", smInto, sm)

	dw, db := randT(11, 5, 4*8*8), randT(12, 5)
	flat := Flatten(x)
	d := Dense(flat, dw, db)
	dInto := tensor.New(d.Shape()...)
	DenseInto(dInto, flat, dw, db)
	assertSame(t, "dense", dInto, d)
}

// TestParallelForCoversAllJobs: the atomic work queue runs every job
// exactly once regardless of worker count.
func TestParallelForCoversAllJobs(t *testing.T) {
	for _, n := range []int{0, 1, 7, 64, 1000} {
		hits := make([]int32, n)
		parallelFor(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d: job %d ran %d times", n, i, h)
			}
		}
	}
}

func BenchmarkConv2DInto(b *testing.B) {
	w := ConvWorkload{N: 1, CIn: 32, COut: 32, H: 28, W: 28, KH: 3, KW: 3,
		StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	in := randT(1, 1, 32, 28, 28)
	weight := randT(2, 32, 32, 3, 3)
	bias := randT(3, 32)
	out := tensor.New(1, 32, w.OutH(), w.OutW())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Conv2DInto(out, in, weight, bias, w)
	}
}

func BenchmarkDenseInto(b *testing.B) {
	in := randT(1, 4, 1024)
	weight := randT(2, 1000, 1024)
	bias := randT(3, 1000)
	out := tensor.New(4, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DenseInto(out, in, weight, bias)
	}
}

// BenchmarkParallelForDispatch isolates scheduling overhead: many tiny
// jobs, so the atomic-counter work queue dominates the measurement.
func BenchmarkParallelForDispatch(b *testing.B) {
	var sink atomic.Int64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		parallelFor(1024, func(j int) { sink.Add(int64(j)) })
	}
}
