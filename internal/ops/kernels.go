package ops

import (
	"fmt"

	"unigpu/internal/tensor"
)

// ConvKernel identifies one of the convolution algorithm implementations
// the selector can choose between per workload.
type ConvKernel int

const (
	// KernelAuto defers the choice to DefaultKernel (or to the graph-level
	// selection pass, which writes a concrete kernel onto the operator).
	KernelAuto ConvKernel = iota
	// KernelDirect is the boundary-hoisted direct loop (Conv2DInto). It
	// handles every workload shape and is the bit-exactness reference.
	KernelDirect
	// KernelDepthwise is the Groups==CIn==COut specialization
	// (Conv2DDepthwiseInto); bit-identical to direct.
	KernelDepthwise
	// KernelWinograd is F(2x2,3x3) minimal filtering for dense 3x3
	// stride-1 convs; numerically ~1e-4 from direct, never auto-selected
	// unless the caller opts in (see graph.KernelSelection.AllowWinograd).
	KernelWinograd
	// KernelGEMM is the im2col + packed cache-blocked GEMM path;
	// bit-identical to direct (single ascending-k accumulator per output).
	KernelGEMM
)

// ConvKernels lists the concrete (non-Auto) kernels in a stable order.
var ConvKernels = []ConvKernel{KernelDirect, KernelDepthwise, KernelWinograd, KernelGEMM}

func (k ConvKernel) String() string {
	switch k {
	case KernelAuto:
		return "auto"
	case KernelDirect:
		return "direct"
	case KernelDepthwise:
		return "depthwise"
	case KernelWinograd:
		return "winograd"
	case KernelGEMM:
		return "gemm"
	}
	return fmt.Sprintf("ConvKernel(%d)", int(k))
}

// ParseConvKernel is the inverse of String; it recognizes the names stored
// in tuning-DB kernel records.
func ParseConvKernel(s string) (ConvKernel, bool) {
	for _, k := range append([]ConvKernel{KernelAuto}, ConvKernels...) {
		if k.String() == s {
			return k, true
		}
	}
	return KernelAuto, false
}

// KernelSupported reports whether kernel k can execute workload w.
func KernelSupported(k ConvKernel, w ConvWorkload) bool {
	switch k {
	case KernelAuto, KernelDirect, KernelGEMM:
		return true
	case KernelDepthwise:
		return w.IsDepthwise()
	case KernelWinograd:
		return WinogradSupported(w)
	}
	return false
}

// DefaultKernel picks a kernel for w without a cost model: depthwise gets
// the specialized kernel, everything else the GEMM path. Winograd is never
// a default (it changes numerics) — it must be selected explicitly.
func DefaultKernel(w ConvWorkload) ConvKernel {
	if w.IsDepthwise() {
		return KernelDepthwise
	}
	return KernelGEMM
}

// KernelProfile estimates the work kernel k does on workload w: flops and
// elements moved (for a roofline model such as sim.Device.AlgoSeconds,
// which multiplies by the element width of the conv's storage dtype) plus
// a relative arithmetic efficiency in (0,1] capturing how well the
// implementation converts peak flops into useful work. The absolute values
// matter less than the ordering they induce per workload.
func KernelProfile(w ConvWorkload, k ConvKernel) (flops, elems, eff float64) {
	flops = w.FLOPs()
	elems = w.Elems()
	switch k {
	case KernelDirect:
		// Scalar loop, little register reuse; the hoisted bounds still
		// leave it latency-bound on the tap chain.
		eff = 0.35
	case KernelDepthwise:
		// Same loop structure but one plane per job: tiny working set,
		// no channel reduction, much friendlier to cache.
		eff = 0.55
	case KernelWinograd:
		// 2.25x fewer multiplies, paid for with transform arithmetic on
		// every 4x4 tile and a transformed-filter read.
		tiles := float64(w.N) * float64((w.OutH()+1)/2) * float64((w.OutW()+1)/2)
		transform := tiles * float64(w.CIn) * (32 + 16) // data transform + tile FMAs bookkeeping
		flops = flops/WinogradMultiplyReduction + 2*transform
		elems += float64(WinogradPackedElems(w))
		eff = 0.60
	case KernelGEMM:
		// Packed panels give the microkernel dense register reuse, but
		// the im2col scratch is written then re-read once per (n,group).
		g := max(1, w.Groups)
		kdim := (w.CIn / g) * w.KH * w.KW
		nCols := w.OutH() * w.OutW()
		elems += 2 * float64(w.N*g) * float64(kdim) * float64(nCols)
		eff = 0.80
		// Tiny reductions or few output pixels leave panels underfilled.
		if kdim < 32 {
			eff *= 0.6
		}
		if nCols < 64 {
			eff *= 0.6
		}
	default:
		eff = 0.35
	}
	return flops, elems, eff
}

// PreparedConv is a convolution bound to a concrete kernel with its weights
// repacked into that kernel's layout (and storage dtype). Prepared at plan
// time, it is read-only and safe to share across concurrently running
// sessions.
type PreparedConv struct {
	w      ConvWorkload
	kernel ConvKernel
	dtype  tensor.DType   // storage dtype the kernel computes over
	weight *tensor.Tensor // original OIHW weights (direct/depthwise)
	packed []float32      // GEMM packed-A panels or Winograd U, else nil

	weight16 []uint16  // fp16 OIHW weights (direct/depthwise)
	packed16 []uint16  // fp16 GEMM packed-A panels
	packed8  []int8    // int8 GEMM packed-A panels
	wscale   []float32 // int8 per-output-channel weight scales
}

// PrepareConv resolves kernel k for workload w (KernelAuto picks
// DefaultKernel; unsupported choices fall back to KernelDirect) and packs
// weight into the kernel's layout, at fp32 storage.
func PrepareConv(w ConvWorkload, k ConvKernel, weight *tensor.Tensor) *PreparedConv {
	return PrepareConvDType(w, k, weight, tensor.Float32)
}

// PrepareConvDType is PrepareConv for an explicit storage dtype. The fp32
// path is identical to the historical PrepareConv. Under fp16 the weights
// are narrowed to binary16 at pack time (Winograd has no reduced-precision
// variant and falls back to the GEMM path). Int8 always uses the quantized
// GEMM path with symmetric per-output-channel weight scales; the input's
// per-tensor scale is read off the tensor at run time.
func PrepareConvDType(w ConvWorkload, k ConvKernel, weight *tensor.Tensor, dt tensor.DType) *PreparedConv {
	if k == KernelAuto {
		k = DefaultKernel(w)
	}
	if !KernelSupported(k, w) {
		k = KernelDirect
	}
	if dt != tensor.Float32 && k == KernelWinograd {
		k = KernelGEMM
	}
	if dt == tensor.Int8 {
		k = KernelGEMM
	}
	p := &PreparedConv{w: w, kernel: k, dtype: dt, weight: weight}
	switch dt {
	case tensor.Float16:
		switch k {
		case KernelGEMM:
			p.packed16 = PackConvWeightsGEMMF16(weight, w)
		default: // direct / depthwise read OIHW fp16 weights
			p.weight16 = EncodeF16Slice(weight.Data())
		}
	case tensor.Int8:
		p.packed8, p.wscale = PackConvWeightsInt8(weight, w)
	default:
		switch k {
		case KernelGEMM:
			p.packed = PackConvWeightsGEMM(weight, w)
		case KernelWinograd:
			p.packed = PackConvWeightsWinograd(weight, w)
		}
	}
	return p
}

// Kernel returns the concrete kernel this conv was prepared for.
func (p *PreparedConv) Kernel() ConvKernel { return p.kernel }

// DType returns the storage dtype this conv was prepared for.
func (p *PreparedConv) DType() tensor.DType { return p.dtype }

// Workload returns the conv workload.
func (p *PreparedConv) Workload() ConvWorkload { return p.w }

// PackedElems returns the size of the repacked weight buffer (0 for
// kernels that read the original OIHW weights).
func (p *PreparedConv) PackedElems() int {
	return len(p.packed) + len(p.packed16) + len(p.packed8)
}

// ScratchElems returns the per-run scratch requirement in elements of
// ScratchDType. The runtime reserves this as an arena slot so Session.Run
// allocates nothing; RunInto also accepts nil scratch and allocates
// locally.
func (p *PreparedConv) ScratchElems() int {
	if p.kernel == KernelGEMM {
		return GEMMScratchElems(p.w)
	}
	return 0
}

// ScratchDType returns the element type of the scratch buffer: int8 for
// the quantized GEMM path (im2col panels hold codes), float32 otherwise
// (the fp16 GEMM decodes into fp32 panels at pack time).
func (p *PreparedConv) ScratchDType() tensor.DType {
	if p.dtype == tensor.Int8 && p.kernel == KernelGEMM {
		return tensor.Int8
	}
	return tensor.Float32
}

// RunInto executes the prepared convolution into out. scratch may be nil
// (or short), in which case the kernel allocates its own.
func (p *PreparedConv) RunInto(out, in, bias *tensor.Tensor, scratch []float32) {
	p.RunIntoEpilogue(out, in, bias, nil, scratch, nil, false)
}

// RunIntoEpilogue is RunInto with the fused residual epilogue: residual
// (same shape as out, nil for none) is added into every output element
// before the fused activation, or after it when postAct is set — the
// ResNet conv→add→relu and Darknet conv(+act)→add patterns respectively.
// Every kernel applies the identical per-element epilogue order, so the
// result is bit-identical to running the add (and activation) as separate
// kernels. residual must not alias out. scratch8 is only read by the int8
// GEMM path (see ScratchDType); either scratch may be nil.
func (p *PreparedConv) RunIntoEpilogue(out, in, bias, residual *tensor.Tensor, scratch []float32, scratch8 []int8, postAct bool) {
	switch p.dtype {
	case tensor.Float16:
		switch p.kernel {
		case KernelDepthwise:
			conv2DDepthwiseF16Into(out, in, p.weight16, bias, residual, p.w, postAct)
		case KernelGEMM:
			conv2DGEMMF16Into(out, in, bias, residual, p.w, p.packed16, scratch, postAct)
		default:
			conv2DDirectF16Into(out, in, p.weight16, bias, residual, p.w, postAct)
		}
		return
	case tensor.Int8:
		conv2DGEMMInt8Into(out, in, bias, residual, p.w, p.packed8, p.wscale, scratch8, postAct)
		return
	}
	var rd []float32
	if residual != nil {
		rd = residual.Data()
	}
	switch p.kernel {
	case KernelDepthwise:
		conv2DDepthwiseInto(out, in, p.weight, bias, rd, p.w, postAct)
	case KernelWinograd:
		conv2DWinogradPackedInto(out, in, bias, rd, p.w, p.packed, postAct)
	case KernelGEMM:
		conv2DGEMMInto(out, in, bias, rd, p.w, p.packed, scratch, postAct)
	default:
		conv2DDirectInto(out, in, p.weight, bias, rd, p.w, postAct)
	}
}
