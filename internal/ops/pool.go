package ops

import (
	"math"

	"unigpu/internal/tensor"
)

// PoolKind selects the pooling reduction.
type PoolKind int

const (
	MaxPool PoolKind = iota
	AvgPool
)

// Pool2D applies kernel×kernel pooling with the given stride and padding
// over NCHW input. Average pooling excludes padding from the divisor
// (count_include_pad=false), matching GluonCV defaults.
func Pool2D(in *tensor.Tensor, kind PoolKind, kernel, stride, pad int) *tensor.Tensor {
	s := in.Shape()
	oh := (s[2]+2*pad-kernel)/stride + 1
	ow := (s[3]+2*pad-kernel)/stride + 1
	out := tensor.New(s[0], s[1], oh, ow)
	Pool2DInto(out, in, kind, kernel, stride, pad)
	return out
}

// Pool2DInto applies pooling into a caller-provided (N, C, OutH, OutW)
// tensor.
func Pool2DInto(out, in *tensor.Tensor, kind PoolKind, kernel, stride, pad int) {
	s := in.Shape()
	n, c, h, w := s[0], s[1], s[2], s[3]
	oh := (h+2*pad-kernel)/stride + 1
	ow := (w+2*pad-kernel)/stride + 1
	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < c; ci++ {
			for y := 0; y < oh; y++ {
				for x := 0; x < ow; x++ {
					var acc float64
					count := 0
					if kind == MaxPool {
						acc = math.Inf(-1)
					}
					for ky := 0; ky < kernel; ky++ {
						iy := y*stride - pad + ky
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < kernel; kx++ {
							ix := x*stride - pad + kx
							if ix < 0 || ix >= w {
								continue
							}
							v := float64(in.At(ni, ci, iy, ix))
							if kind == MaxPool {
								acc = math.Max(acc, v)
							} else {
								acc += v
							}
							count++
						}
					}
					if kind == AvgPool && count > 0 {
						acc /= float64(count)
					}
					out.Set(float32(acc), ni, ci, y, x)
				}
			}
		}
	}
}

// GlobalAvgPool reduces each channel plane to one value: (N,C,H,W)->(N,C,1,1).
func GlobalAvgPool(in *tensor.Tensor) *tensor.Tensor {
	s := in.Shape()
	out := tensor.New(s[0], s[1], 1, 1)
	GlobalAvgPoolInto(out, in)
	return out
}

// GlobalAvgPoolInto reduces each channel plane to one value into out.
func GlobalAvgPoolInto(out, in *tensor.Tensor) {
	s := in.Shape()
	n, c, hw := s[0], s[1], s[2]*s[3]
	if !allFloat32(out, in) {
		for p := 0; p < n*c; p++ {
			base := p * hw
			var sum float64
			for i := 0; i < hw; i++ {
				sum += float64(in.GetF(base + i))
			}
			out.SetF(p, float32(sum/float64(hw)))
		}
		return
	}
	id, od := in.Data(), out.Data()
	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < c; ci++ {
			base := (ni*c + ci) * hw
			var sum float64
			for i := 0; i < hw; i++ {
				sum += float64(id[base+i])
			}
			od[ni*c+ci] = float32(sum / float64(hw))
		}
	}
}
