package ops

import "unigpu/internal/tensor"

// im2col-GEMM convolution backend.
//
// The convolution is lowered per (batch, group) to C = A * B where
//
//	A is the (coutPerG x K) weight matrix, K = cinPerG*KH*KW,
//	B is the (K x OutH*OutW) im2col matrix of input patches,
//
// and C is the (coutPerG x OutH*OutW) output plane. Both operands are
// packed into panel layouts so the microkernel streams contiguously:
//
//	packed A: row panels of gemmMR, element (i, k) at panel(i)*K*MR + k*MR + i%MR
//	packed B: col panels of gemmNR, element (k, j) at panel(j)*K*NR + k*NR + j%NR
//
// Macro blocking (gemmMC x gemmNC output tiles) provides the parallelFor
// grain and keeps each worker's A/B panels hot in cache. The K dimension is
// deliberately NOT split (KC == K): every output element accumulates in one
// register in ascending-k order starting from its bias value, which makes
// the GEMM path bit-identical to the direct kernel's ascending (ci, ky, kx)
// tap order (padding taps contribute an exact 0*w = +-0).
const (
	gemmMR = 4   // microkernel rows (output channels)
	gemmNR = 4   // microkernel cols (output pixels)
	gemmMC = 64  // macro-tile rows per parallel job
	gemmNC = 128 // macro-tile cols per parallel job
)

func roundUp(n, m int) int { return (n + m - 1) / m * m }

// GEMMPackedWeightElems returns the length of the packed-A buffer produced
// by PackConvWeightsGEMM for workload w.
func GEMMPackedWeightElems(w ConvWorkload) int {
	g := max(1, w.Groups)
	cinPerG := w.CIn / g
	coutPerG := w.COut / g
	k := cinPerG * w.KH * w.KW
	return g * roundUp(coutPerG, gemmMR) * k
}

// GEMMScratchElems returns the im2col scratch (packed-B) size in float32
// elements for workload w. The buffer covers one (batch, group) plane; the
// batch/group loop is serial so a single buffer is reused.
func GEMMScratchElems(w ConvWorkload) int {
	g := max(1, w.Groups)
	cinPerG := w.CIn / g
	k := cinPerG * w.KH * w.KW
	return k * roundUp(w.OutH()*w.OutW(), gemmNR)
}

// PackConvWeightsGEMM packs OIHW conv weights into the GEMM row-panel
// layout. Done once at plan time; the result is read-only and shared across
// sessions.
func PackConvWeightsGEMM(weight *tensor.Tensor, w ConvWorkload) []float32 {
	g := max(1, w.Groups)
	cinPerG := w.CIn / g
	coutPerG := w.COut / g
	k := cinPerG * w.KH * w.KW
	mPad := roundUp(coutPerG, gemmMR)

	wd := weight.Data()
	packed := make([]float32, g*mPad*k)
	for grp := 0; grp < g; grp++ {
		gBase := grp * mPad * k
		for i := 0; i < mPad; i++ {
			panel := i / gemmMR
			lane := i % gemmMR
			if i >= coutPerG {
				continue // zero-padded tail row
			}
			co := grp*coutPerG + i
			wBase := co * k // OIHW row co is already k-contiguous
			pBase := gBase + panel*k*gemmMR + lane
			for kk := 0; kk < k; kk++ {
				packed[pBase+kk*gemmMR] = wd[wBase+kk]
			}
		}
	}
	return packed
}

// im2colPacked fills bp with the packed-B im2col panels for one
// (batch, group) input plane. Out-of-bounds taps and tail columns are
// written as exact zeros.
func im2colPacked(bp []float32, ind []float32, w ConvWorkload, n, grp int) {
	g := max(1, w.Groups)
	cinPerG := w.CIn / g
	oh, ow := w.OutH(), w.OutW()
	nCols := oh * ow
	k := cinPerG * w.KH * w.KW
	nPanels := (nCols + gemmNR - 1) / gemmNR
	ciBase := grp * cinPerG

	parallelFor(nPanels, func(p int) {
		pBase := p * k * gemmNR
		for j := 0; j < gemmNR; j++ {
			col := p*gemmNR + j
			if col >= nCols {
				for kk := 0; kk < k; kk++ {
					bp[pBase+kk*gemmNR+j] = 0
				}
				continue
			}
			y := col / ow
			x := col % ow
			iy0 := y*w.StrideH - w.PadH
			ix0 := x*w.StrideW - w.PadW
			dst := pBase + j
			for ci := 0; ci < cinPerG; ci++ {
				iPlane := (n*w.CIn+ciBase+ci)*w.H*w.W + ix0
				for ky := 0; ky < w.KH; ky++ {
					iy := iy0 + ky
					rowOK := iy >= 0 && iy < w.H
					iRow := iPlane + iy*w.W
					for kx := 0; kx < w.KW; kx++ {
						var v float32
						if rowOK {
							if ix := ix0 + kx; ix >= 0 && ix < w.W {
								v = ind[iRow+kx]
							}
						}
						bp[dst] = v
						dst += gemmNR
					}
				}
			}
		}
	})
}

// conv2DGEMMInto runs the im2col-GEMM convolution with the full fused
// epilogue (bias, optional residual row rd, activation; see convEpilogue).
// packedA must come from PackConvWeightsGEMM; scratch must hold
// GEMMScratchElems(w) float32s (pass nil to allocate locally).
func conv2DGEMMInto(out, in, bias *tensor.Tensor, rd []float32, w ConvWorkload, packedA, scratch []float32, postAct bool) {
	g := max(1, w.Groups)
	cinPerG := w.CIn / g
	coutPerG := w.COut / g
	k := cinPerG * w.KH * w.KW
	oh, ow := w.OutH(), w.OutW()
	nCols := oh * ow
	mPad := roundUp(coutPerG, gemmMR)

	if need := GEMMScratchElems(w); len(scratch) < need {
		scratch = make([]float32, need)
	}
	ind := in.Data()
	od := out.Data()
	var bd []float32
	if bias != nil {
		bd = bias.Data()
	}

	mBlocks := (coutPerG + gemmMC - 1) / gemmMC
	nBlocks := (nCols + gemmNC - 1) / gemmNC

	for n := 0; n < w.N; n++ {
		for grp := 0; grp < g; grp++ {
			im2colPacked(scratch, ind, w, n, grp)
			pa := packedA[grp*mPad*k : (grp+1)*mPad*k]
			outBase := (n*w.COut + grp*coutPerG) * nCols
			parallelFor(mBlocks*nBlocks, func(job int) {
				mb := job / nBlocks
				nb := job % nBlocks
				i0, i1 := mb*gemmMC, min((mb+1)*gemmMC, coutPerG)
				j0, j1 := nb*gemmNC, min((nb+1)*gemmNC, nCols)
				for i := i0; i < i1; i += gemmMR {
					for j := j0; j < j1; j += gemmNR {
						gemmMicro(od, pa, scratch, bd, rd, w, grp, coutPerG, k, nCols, outBase, i, j, postAct)
					}
				}
			})
		}
	}
}

// gemmMicro computes one gemmMR x gemmNR output tile: 16 register
// accumulators initialized to the row's bias, accumulated over the full K
// extent in ascending order, with the epilogue (residual + activation)
// applied at write-out.
func gemmMicro(od, pa, pb, bd, rd []float32, w ConvWorkload, grp, coutPerG, k, nCols, outBase, i0, j0 int, postAct bool) {
	var c00, c01, c02, c03 float32
	var c10, c11, c12, c13 float32
	var c20, c21, c22, c23 float32
	var c30, c31, c32, c33 float32
	if bd != nil {
		coBase := grp*coutPerG + i0
		b0 := bd[coBase]
		b1, b2, b3 := b0, b0, b0
		if i0+1 < coutPerG {
			b1 = bd[coBase+1]
		}
		if i0+2 < coutPerG {
			b2 = bd[coBase+2]
		}
		if i0+3 < coutPerG {
			b3 = bd[coBase+3]
		}
		c00, c01, c02, c03 = b0, b0, b0, b0
		c10, c11, c12, c13 = b1, b1, b1, b1
		c20, c21, c22, c23 = b2, b2, b2, b2
		c30, c31, c32, c33 = b3, b3, b3, b3
	}

	ap := pa[(i0/gemmMR)*k*gemmMR:]
	bp := pb[(j0/gemmNR)*k*gemmNR:]
	for kk := 0; kk < k; kk++ {
		a := ap[kk*gemmMR : kk*gemmMR+gemmMR]
		b := bp[kk*gemmNR : kk*gemmNR+gemmNR]
		a0, a1, a2, a3 := a[0], a[1], a[2], a[3]
		b0, b1, b2, b3 := b[0], b[1], b[2], b[3]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
		c20 += a2 * b0
		c21 += a2 * b1
		c22 += a2 * b2
		c23 += a2 * b3
		c30 += a3 * b0
		c31 += a3 * b1
		c32 += a3 * b2
		c33 += a3 * b3
	}

	mv := coutPerG - i0 // valid rows in this tile
	nv := nCols - j0    // valid cols in this tile
	act := w.FusedActivation
	writeGemmRow(od, rd, outBase+(i0+0)*nCols+j0, nv, act, postAct, c00, c01, c02, c03)
	if mv > 1 {
		writeGemmRow(od, rd, outBase+(i0+1)*nCols+j0, nv, act, postAct, c10, c11, c12, c13)
	}
	if mv > 2 {
		writeGemmRow(od, rd, outBase+(i0+2)*nCols+j0, nv, act, postAct, c20, c21, c22, c23)
	}
	if mv > 3 {
		writeGemmRow(od, rd, outBase+(i0+3)*nCols+j0, nv, act, postAct, c30, c31, c32, c33)
	}
}

func writeGemmRow(od, rd []float32, base, nv int, act Activation, postAct bool, v0, v1, v2, v3 float32) {
	od[base] = convEpilogue(v0, rd, base, act, postAct)
	if nv > 1 {
		od[base+1] = convEpilogue(v1, rd, base+1, act, postAct)
	}
	if nv > 2 {
		od[base+2] = convEpilogue(v2, rd, base+2, act, postAct)
	}
	if nv > 3 {
		od[base+3] = convEpilogue(v3, rd, base+3, act, postAct)
	}
}
