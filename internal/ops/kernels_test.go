package ops

import (
	"fmt"
	"math/rand"
	"testing"

	"unigpu/internal/tensor"
)

// naiveConv2D is a frozen copy of the original per-tap-bounds-checked
// direct loop (the seed implementation). Every production kernel except
// Winograd must reproduce it bit-for-bit: same bias-initialized
// accumulator, same ascending (ci, ky, kx) tap order.
func naiveConv2D(in, weight, bias *tensor.Tensor, w ConvWorkload) *tensor.Tensor {
	out := tensor.New(w.N, w.COut, w.OutH(), w.OutW())
	oh, ow := w.OutH(), w.OutW()
	g := max(1, w.Groups)
	cinPerG := w.CIn / g
	coutPerG := w.COut / g
	ind, wd, od := in.Data(), weight.Data(), out.Data()
	var bd []float32
	if bias != nil {
		bd = bias.Data()
	}
	for n := 0; n < w.N; n++ {
		for co := 0; co < w.COut; co++ {
			grp := co / coutPerG
			ciBase := grp * cinPerG
			var b float32
			if bd != nil {
				b = bd[co]
			}
			for y := 0; y < oh; y++ {
				for x := 0; x < ow; x++ {
					sum := b
					for ci := 0; ci < cinPerG; ci++ {
						wBase := ((co * cinPerG) + ci) * w.KH * w.KW
						iBase := (n*w.CIn + ciBase + ci) * w.H * w.W
						for ky := 0; ky < w.KH; ky++ {
							iy := y*w.StrideH - w.PadH + ky
							if iy < 0 || iy >= w.H {
								continue
							}
							for kx := 0; kx < w.KW; kx++ {
								ix := x*w.StrideW - w.PadW + kx
								if ix < 0 || ix >= w.W {
									continue
								}
								sum += ind[iBase+iy*w.W+ix] * wd[wBase+ky*w.KW+kx]
							}
						}
					}
					od[((n*w.COut+co)*oh+y)*ow+x] = applyActivation(sum, w.FusedActivation)
				}
			}
		}
	}
	return out
}

// kernelEdgeCases covers the shapes that break naive index math: odd
// channels per group, padding wider than the kernel, pointwise stride-2,
// rectangular kernels/inputs, depthwise with and without stride.
func kernelEdgeCases() []ConvWorkload {
	return []ConvWorkload{
		{N: 1, CIn: 6, COut: 8, H: 9, W: 9, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, HasBias: true, FusedActivation: ActReLU},
		// odd channels per group: 9/3 = 3 in, 6/3 = 2 out per group
		{N: 2, CIn: 9, COut: 6, H: 7, W: 5, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, Groups: 3, HasBias: true},
		// pad > kernel
		{N: 1, CIn: 3, COut: 4, H: 6, W: 6, KH: 3, KW: 3, StrideH: 2, StrideW: 2, PadH: 4, PadW: 4, HasBias: true},
		// 1x1 stride-2 (projection shortcut)
		{N: 1, CIn: 8, COut: 16, H: 8, W: 8, KH: 1, KW: 1, StrideH: 2, StrideW: 2, HasBias: true, FusedActivation: ActLeakyReLU},
		// depthwise, stride 1 and 2
		{N: 1, CIn: 8, COut: 8, H: 9, W: 9, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, Groups: 8, HasBias: true, FusedActivation: ActReLU},
		{N: 2, CIn: 5, COut: 5, H: 8, W: 10, KH: 3, KW: 3, StrideH: 2, StrideW: 2, PadH: 1, PadW: 1, Groups: 5},
		// rectangular kernel, no bias, no padding
		{N: 1, CIn: 4, COut: 3, H: 6, W: 11, KH: 1, KW: 3, StrideH: 1, StrideW: 1},
		// 5x5 stride-2 (squeezenet-style stem)
		{N: 1, CIn: 3, COut: 10, H: 13, W: 13, KH: 5, KW: 5, StrideH: 2, StrideW: 2, PadH: 2, PadW: 2, HasBias: true},
	}
}

func convInputs(w ConvWorkload, seed int64) (in, weight, bias *tensor.Tensor) {
	g := max(1, w.Groups)
	in = randT(seed, w.N, w.CIn, w.H, w.W)
	weight = randT(seed+1, w.COut, w.CIn/g, w.KH, w.KW)
	if w.HasBias {
		bias = randT(seed+2, w.COut)
	}
	return in, weight, bias
}

// TestKernelsBitIdenticalToNaive: direct (hoisted bounds), depthwise, and
// im2col-GEMM must all be bit-identical to the frozen naive reference on
// every edge case — this is what keeps whole-zoo golden outputs stable when
// Winograd is not selected.
func TestKernelsBitIdenticalToNaive(t *testing.T) {
	for i, w := range kernelEdgeCases() {
		in, weight, bias := convInputs(w, int64(100+i))
		want := naiveConv2D(in, weight, bias, w)
		for _, k := range []ConvKernel{KernelDirect, KernelDepthwise, KernelGEMM} {
			if !KernelSupported(k, w) {
				continue
			}
			t.Run(fmt.Sprintf("%s/%s", w.Key(), k), func(t *testing.T) {
				p := PrepareConv(w, k, weight)
				if p.Kernel() != k {
					t.Fatalf("PrepareConv resolved %v, want %v", p.Kernel(), k)
				}
				out := tensor.New(want.Shape()...)
				out.Fill(-123)
				// Poisoned scratch: the kernel must not read stale values.
				scratch := make([]float32, p.ScratchElems())
				for j := range scratch {
					scratch[j] = float32(-1e30)
				}
				p.RunInto(out, in, bias, scratch)
				assertSame(t, k.String(), out, want)

				// nil scratch must also work (allocating fallback).
				out2 := tensor.New(want.Shape()...)
				p.RunInto(out2, in, bias, nil)
				assertSame(t, k.String()+"/nil-scratch", out2, want)
			})
		}
	}
}

// TestConvAutoMatchesNaive: the public Conv2D entry point (whatever kernel
// it routes to) must stay bit-identical to the seed's naive loop.
func TestConvAutoMatchesNaive(t *testing.T) {
	for i, w := range kernelEdgeCases() {
		in, weight, bias := convInputs(w, int64(500+i))
		want := naiveConv2D(in, weight, bias, w)
		got := Conv2D(in, weight, bias, w)
		assertSame(t, w.Key(), got, want)
	}
}

// TestKernelsRandomizedCrossCheck draws random workload shapes and verifies
// every supported kernel against the naive reference (bit-identical except
// Winograd, which gets the documented 1e-4 tolerance).
func TestKernelsRandomizedCrossCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		g := 1
		if rng.Intn(3) == 0 {
			g = 1 + rng.Intn(3)
		}
		w := ConvWorkload{
			N:       1 + rng.Intn(2),
			CIn:     g * (1 + rng.Intn(4)),
			H:       3 + rng.Intn(10),
			W:       3 + rng.Intn(10),
			COut:    g * (1 + rng.Intn(4)),
			KH:      1 + rng.Intn(3),
			KW:      1 + rng.Intn(3),
			StrideH: 1 + rng.Intn(2),
			StrideW: 1 + rng.Intn(2),
			PadH:    rng.Intn(3),
			PadW:    rng.Intn(3),
			Groups:  g,
			HasBias: rng.Intn(2) == 0,
		}
		if w.OutH() < 1 || w.OutW() < 1 {
			continue
		}
		w.FusedActivation = Activation(rng.Intn(3))
		in, weight, bias := convInputs(w, int64(trial))
		want := naiveConv2D(in, weight, bias, w)
		for _, k := range ConvKernels {
			if !KernelSupported(k, w) {
				continue
			}
			p := PrepareConv(w, k, weight)
			out := tensor.New(want.Shape()...)
			p.RunInto(out, in, bias, nil)
			if k == KernelWinograd {
				if !tensor.AllClose(out, want, 1e-4) {
					t.Fatalf("trial %d %s winograd: max |diff| = %g > 1e-4", trial, w.Key(), tensor.MaxAbsDiff(out, want))
				}
				continue
			}
			assertSame(t, fmt.Sprintf("trial %d %s %s", trial, w.Key(), k), out, want)
		}
	}
}

// TestWinogradIntoTolerance documents the Winograd numeric contract: the
// F(2x2,3x3) transform reassociates the reduction, so results differ from
// direct by float32 rounding — bounded here at 1e-4 absolute — while
// Conv2DWinogradInto must be bit-identical to the allocating
// Conv2DWinograd.
func TestWinogradIntoTolerance(t *testing.T) {
	w := ConvWorkload{N: 1, CIn: 6, COut: 8, H: 12, W: 9, KH: 3, KW: 3,
		StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, HasBias: true, FusedActivation: ActReLU}
	in, weight, bias := convInputs(w, 42)

	direct := Conv2D(in, weight, bias, w)
	wino := Conv2DWinograd(in, weight, bias, w)
	winoInto := tensor.New(direct.Shape()...)
	winoInto.Fill(-123)
	Conv2DWinogradInto(winoInto, in, weight, bias, w)

	assertSame(t, "winograd-into vs winograd", winoInto, wino)
	if !tensor.AllClose(wino, direct, 1e-4) {
		t.Fatalf("winograd vs direct: max |diff| = %g, want <= 1e-4", tensor.MaxAbsDiff(wino, direct))
	}
}

// TestPreparedConvSharedAcrossGoroutines: a PreparedConv is read-only after
// PrepareConv; concurrent RunInto calls with distinct scratch must agree.
func TestPreparedConvSharedAcrossGoroutines(t *testing.T) {
	w := ConvWorkload{N: 1, CIn: 8, COut: 8, H: 10, W: 10, KH: 3, KW: 3,
		StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, HasBias: true}
	in, weight, bias := convInputs(w, 9)
	p := PrepareConv(w, KernelGEMM, weight)
	want := naiveConv2D(in, weight, bias, w)

	const workers = 4
	outs := make([]*tensor.Tensor, workers)
	done := make(chan int, workers)
	for i := 0; i < workers; i++ {
		i := i
		go func() {
			out := tensor.New(want.Shape()...)
			p.RunInto(out, in, bias, make([]float32, p.ScratchElems()))
			outs[i] = out
			done <- i
		}()
	}
	for i := 0; i < workers; i++ {
		<-done
	}
	for i, out := range outs {
		assertSame(t, fmt.Sprintf("worker %d", i), out, want)
	}
}

func TestParseConvKernel(t *testing.T) {
	for _, k := range append([]ConvKernel{KernelAuto}, ConvKernels...) {
		got, ok := ParseConvKernel(k.String())
		if !ok || got != k {
			t.Fatalf("ParseConvKernel(%q) = %v, %v", k.String(), got, ok)
		}
	}
	if _, ok := ParseConvKernel("nope"); ok {
		t.Fatal("ParseConvKernel accepted junk")
	}
}
