package ops

import (
	"runtime"
	"sync"

	"unigpu/internal/tensor"
)

// Conv2D computes a (possibly grouped/depthwise) 2-D convolution in NCHW
// with OIHW weights, optional bias, and an optional fused activation. The
// spatial-output loop is parallelized across host cores.
func Conv2D(in, weight, bias *tensor.Tensor, w ConvWorkload) *tensor.Tensor {
	oh, ow := w.OutH(), w.OutW()
	out := tensor.New(w.N, w.COut, oh, ow)
	g := max(1, w.Groups)
	cinPerG := w.CIn / g
	coutPerG := w.COut / g

	ind := in.Data()
	wd := weight.Data()
	od := out.Data()

	parallelFor(w.N*w.COut, func(job int) {
		n := job / w.COut
		co := job % w.COut
		grp := co / coutPerG
		ciBase := grp * cinPerG
		var b float32
		if bias != nil {
			b = bias.Data()[co]
		}
		for y := 0; y < oh; y++ {
			for x := 0; x < ow; x++ {
				sum := b
				for ci := 0; ci < cinPerG; ci++ {
					wBase := ((co * cinPerG) + ci) * w.KH * w.KW
					iBase := (n*w.CIn + ciBase + ci) * w.H * w.W
					for ky := 0; ky < w.KH; ky++ {
						iy := y*w.StrideH - w.PadH + ky
						if iy < 0 || iy >= w.H {
							continue
						}
						for kx := 0; kx < w.KW; kx++ {
							ix := x*w.StrideW - w.PadW + kx
							if ix < 0 || ix >= w.W {
								continue
							}
							sum += ind[iBase+iy*w.W+ix] * wd[wBase+ky*w.KW+kx]
						}
					}
				}
				od[((n*w.COut+co)*oh+y)*ow+x] = applyActivation(sum, w.FusedActivation)
			}
		}
	})
	return out
}

func applyActivation(v float32, a Activation) float32 {
	switch a {
	case ActReLU:
		if v < 0 {
			return 0
		}
	case ActLeakyReLU:
		if v < 0 {
			return 0.1 * v
		}
	}
	return v
}

// parallelFor runs jobs [0,n) across host cores.
func parallelFor(n int, f func(i int)) {
	workers := runtime.NumCPU()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int, n)
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				f(i)
			}
		}()
	}
	wg.Wait()
}

// Dense computes out[n,o] = sum_i in[n,i]*W[o,i] + bias[o].
func Dense(in, weight, bias *tensor.Tensor) *tensor.Tensor {
	n := in.Shape()[0]
	k := in.Shape()[1]
	o := weight.Shape()[0]
	out := tensor.New(n, o)
	ind, wd, od := in.Data(), weight.Data(), out.Data()
	parallelFor(n*o, func(job int) {
		ni, oi := job/o, job%o
		var sum float32
		if bias != nil {
			sum = bias.Data()[oi]
		}
		for i := 0; i < k; i++ {
			sum += ind[ni*k+i] * wd[oi*k+i]
		}
		od[ni*o+oi] = sum
	})
	return out
}
