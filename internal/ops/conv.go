package ops

import (
	"runtime"
	"sync"
	"sync/atomic"

	"unigpu/internal/tensor"
)

// Conv2D computes a (possibly grouped/depthwise) 2-D convolution in NCHW
// with OIHW weights, optional bias, and an optional fused activation. The
// spatial-output loop is parallelized across host cores.
func Conv2D(in, weight, bias *tensor.Tensor, w ConvWorkload) *tensor.Tensor {
	out := tensor.New(w.N, w.COut, w.OutH(), w.OutW())
	Conv2DInto(out, in, weight, bias, w)
	return out
}

// Conv2DInto is Conv2D computing into a caller-provided output tensor of
// shape (N, COut, OutH, OutW); it allocates no intermediate storage.
//
// Boundary checks are hoisted out of the tap loop: for each output row the
// in-bounds ky range is computed once, and for each output pixel the
// in-bounds kx range is computed once, so the inner loop runs branch-free.
// Taps still accumulate in ascending (ci, ky, kx) order, which keeps the
// result bit-identical to the naive per-tap-branching loop.
func Conv2DInto(out, in, weight, bias *tensor.Tensor, w ConvWorkload) {
	conv2DDirectInto(out, in, weight, bias, nil, w, false)
}

// conv2DDirectInto is the direct kernel with the full fused epilogue:
// bias, an optional residual row (res, same shape as out) and the fused
// activation, applied per element in convEpilogue order.
func conv2DDirectInto(out, in, weight, bias *tensor.Tensor, rd []float32, w ConvWorkload, postAct bool) {
	oh, ow := w.OutH(), w.OutW()
	g := max(1, w.Groups)
	cinPerG := w.CIn / g
	coutPerG := w.COut / g

	ind := in.Data()
	wd := weight.Data()
	od := out.Data()
	var bd []float32
	if bias != nil {
		bd = bias.Data()
	}

	parallelFor(w.N*w.COut, func(job int) {
		n := job / w.COut
		co := job % w.COut
		grp := co / coutPerG
		ciBase := grp * cinPerG
		var b float32
		if bd != nil {
			b = bd[co]
		}
		for y := 0; y < oh; y++ {
			iy0 := y*w.StrideH - w.PadH
			ky0, ky1 := clampKernelRange(iy0, w.H, w.KH)
			for x := 0; x < ow; x++ {
				ix0 := x*w.StrideW - w.PadW
				kx0, kx1 := clampKernelRange(ix0, w.W, w.KW)
				sum := b
				for ci := 0; ci < cinPerG; ci++ {
					wBase := ((co * cinPerG) + ci) * w.KH * w.KW
					iBase := (n*w.CIn+ciBase+ci)*w.H*w.W + ix0
					for ky := ky0; ky < ky1; ky++ {
						iRow := iBase + (iy0+ky)*w.W
						wRow := wBase + ky*w.KW
						for kx := kx0; kx < kx1; kx++ {
							sum += ind[iRow+kx] * wd[wRow+kx]
						}
					}
				}
				oi := ((n*w.COut+co)*oh+y)*ow + x
				od[oi] = convEpilogue(sum, rd, oi, w.FusedActivation, postAct)
			}
		}
	})
}

// clampKernelRange returns the half-open [k0,k1) kernel-tap range for which
// base+k lands inside [0,size), given kernel extent kext.
func clampKernelRange(base, size, kext int) (int, int) {
	k0, k1 := 0, kext
	if base < 0 {
		k0 = -base
	}
	if base+kext > size {
		k1 = size - base
	}
	if k1 < k0 {
		k1 = k0
	}
	return k0, k1
}

func applyActivation(v float32, a Activation) float32 {
	switch a {
	case ActReLU:
		if v < 0 {
			return 0
		}
	case ActLeakyReLU:
		if v < 0 {
			return LeakyAlpha * v
		}
	}
	return v
}

// convEpilogue finishes one conv output element: the optional fused
// residual row rd (indexed like the output) is added before the activation
// for the ResNet conv→add→relu pattern, or after it (postAct) for the
// Darknet conv(+act)→add pattern. The per-element operation order matches
// the unfused AddInto/activation kernels exactly, so fusing is
// bit-preserving.
func convEpilogue(v float32, rd []float32, oi int, a Activation, postAct bool) float32 {
	if rd != nil && !postAct {
		v += rd[oi]
	}
	v = applyActivation(v, a)
	if rd != nil && postAct {
		v += rd[oi]
	}
	return v
}

// parallelFor runs jobs [0,n) across host cores. Workers claim jobs off an
// atomic counter, so setup cost is O(workers), not O(n) channel sends.
func parallelFor(n int, f func(i int)) {
	workers := runtime.NumCPU()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				f(i)
			}
		}()
	}
	wg.Wait()
}

// Dense computes out[n,o] = sum_i in[n,i]*W[o,i] + bias[o].
func Dense(in, weight, bias *tensor.Tensor) *tensor.Tensor {
	out := tensor.New(in.Shape()[0], weight.Shape()[0])
	DenseInto(out, in, weight, bias)
	return out
}

// DenseInto is Dense computing into a caller-provided (N, O) tensor.
func DenseInto(out, in, weight, bias *tensor.Tensor) {
	DenseActInto(out, in, weight, bias, ActNone)
}

// DenseActInto is DenseInto with a fused activation epilogue: the
// activation is applied to each finished accumulator exactly as a separate
// elementwise pass would, so fusing it is bit-preserving.
func DenseActInto(out, in, weight, bias *tensor.Tensor, act Activation) {
	n := in.Shape()[0]
	k := in.Shape()[1]
	o := weight.Shape()[0]
	var bd []float32
	if bias != nil {
		bd = bias.Data()
	}
	if !allFloat32(out, in, weight) {
		parallelFor(n*o, func(job int) {
			ni, oi := job/o, job%o
			var sum float32
			if bd != nil {
				sum = bd[oi]
			}
			for i := 0; i < k; i++ {
				sum += in.GetF(ni*k+i) * weight.GetF(oi*k+i)
			}
			out.SetF(ni*o+oi, applyActivation(sum, act))
		})
		return
	}
	ind, wd, od := in.Data(), weight.Data(), out.Data()
	parallelFor(n*o, func(job int) {
		ni, oi := job/o, job%o
		var sum float32
		if bd != nil {
			sum = bd[oi]
		}
		for i := 0; i < k; i++ {
			sum += ind[ni*k+i] * wd[oi*k+i]
		}
		od[ni*o+oi] = applyActivation(sum, act)
	})
}
