package ops

import (
	"unigpu/internal/tensor"
)

// Conv2DPacked computes a dense 2-D convolution operating natively in the
// blocked NCHW[b]c activation layout with OIHW[b]o weights — the layout
// family the graph tuner assigns (§3.2.3). Blocked layouts keep the
// innermost dimension a fixed SIMD-friendly channel block, which is what
// the vectorized schedules the tuner selects assume.
//
// in is (N, ceil(CIn/b), H, W, b); weight is (ceil(COut/b), CIn, KH, KW, b)
// from tensor.ConvertOIHW; the result is (N, ceil(COut/b), OutH, OutW, b).
// Channels beyond CIn/COut are zero padding.
func Conv2DPacked(in, weight, bias *tensor.Tensor, w ConvWorkload, block int) *tensor.Tensor {
	if w.Groups > 1 {
		panic("ops: packed layout supports dense convolutions only")
	}
	oh, ow := w.OutH(), w.OutW()
	coBlocks := (w.COut + block - 1) / block
	ciBlocks := (w.CIn + block - 1) / block
	out := tensor.New(w.N, coBlocks, oh, ow, block)

	ind, wd, od := in.Data(), weight.Data(), out.Data()
	var bd []float32
	if bias != nil {
		bd = bias.Data()
	}
	inStrideCB := w.H * w.W * block // one input channel block plane
	parallelFor(w.N*coBlocks, func(job int) {
		n := job / coBlocks
		cb := job % coBlocks
		acc := make([]float32, block) // one accumulator per job, not per pixel
		for y := 0; y < oh; y++ {
			for x := 0; x < ow; x++ {
				for v := range acc {
					acc[v] = 0
				}
				if bd != nil {
					for v := 0; v < block; v++ {
						if co := cb*block + v; co < w.COut {
							acc[v] = bd[co]
						}
					}
				}
				for ib := 0; ib < ciBlocks; ib++ {
					for ic := 0; ic < block; ic++ {
						ci := ib*block + ic
						if ci >= w.CIn {
							break
						}
						for ky := 0; ky < w.KH; ky++ {
							iy := y*w.StrideH - w.PadH + ky
							if iy < 0 || iy >= w.H {
								continue
							}
							for kx := 0; kx < w.KW; kx++ {
								ix := x*w.StrideW - w.PadW + kx
								if ix < 0 || ix >= w.W {
									continue
								}
								iv := ind[(n*ciBlocks+ib)*inStrideCB+(iy*w.W+ix)*block+ic]
								wBase := ((cb*w.CIn+ci)*w.KH+ky)*w.KW*block + kx*block
								// The innermost loop runs over the output
								// channel block: the vectorizable axis.
								for v := 0; v < block; v++ {
									acc[v] += iv * wd[wBase+v]
								}
							}
						}
					}
				}
				oBase := ((n*coBlocks+cb)*oh+y)*ow*block + x*block
				for v := 0; v < block; v++ {
					od[oBase+v] = applyActivation(acc[v], w.FusedActivation)
				}
			}
		}
	})
	return out
}
