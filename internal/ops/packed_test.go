package ops

import (
	"testing"
	"testing/quick"

	"unigpu/internal/tensor"
)

func TestConv2DPackedMatchesPlain(t *testing.T) {
	cases := []struct {
		w     ConvWorkload
		block int
	}{
		{ConvWorkload{N: 1, CIn: 8, H: 10, W: 10, COut: 16, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}, 4},
		{ConvWorkload{N: 2, CIn: 6, H: 7, W: 9, COut: 10, KH: 3, KW: 3, StrideH: 2, StrideW: 2, PadH: 1, PadW: 1}, 4}, // non-dividing channels
		{ConvWorkload{N: 1, CIn: 16, H: 6, W: 6, COut: 8, KH: 1, KW: 1, StrideH: 1, StrideW: 1}, 8},
		{ConvWorkload{N: 1, CIn: 5, H: 8, W: 8, COut: 7, KH: 5, KW: 5, StrideH: 1, StrideW: 1, PadH: 2, PadW: 2, HasBias: true, FusedActivation: ActReLU}, 2},
	}
	for _, c := range cases {
		w, block := c.w, c.block
		in := tensor.New(w.N, w.CIn, w.H, w.W)
		in.FillRandom(3)
		weight := tensor.New(w.COut, w.CIn, w.KH, w.KW)
		weight.FillRandom(4)
		var bias *tensor.Tensor
		if w.HasBias {
			bias = tensor.New(w.COut)
			bias.FillRandom(5)
		}
		want := Conv2D(in, weight, bias, w)

		packedIn := tensor.ConvertNCHW(in, "NCHW", tensor.Layout(blockedLayout(block)), w.N, w.CIn, w.H, w.W)
		packedW := tensor.ConvertOIHW(weight, block)
		packedOut := Conv2DPacked(packedIn, packedW, bias, w, block)

		back := tensor.ConvertNCHW(packedOut, tensor.Layout(blockedLayout(block)), "NCHW",
			w.N, w.COut, w.OutH(), w.OutW())
		if !tensor.AllClose(back, want, 1e-4) {
			t.Errorf("%s block %d: packed conv diverges (max diff %g)",
				w.Key(), block, tensor.MaxAbsDiff(back, want))
		}
	}
}

func blockedLayout(b int) string {
	switch b {
	case 2:
		return "NCHW2c"
	case 4:
		return "NCHW4c"
	case 8:
		return "NCHW8c"
	}
	return "NCHW"
}

func TestConv2DPackedRejectsGrouped(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("grouped conv should panic in packed layout")
		}
	}()
	w := ConvWorkload{N: 1, CIn: 4, H: 4, W: 4, COut: 4, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, Groups: 4}
	Conv2DPacked(tensor.New(1, 1, 4, 4, 4), tensor.New(1, 4, 3, 3, 4), nil, w, 4)
}

func TestPropertyPackedConvAnyBlock(t *testing.T) {
	f := func(seed int64, blkRaw uint8) bool {
		block := []int{2, 4, 8}[int(blkRaw)%3]
		w := ConvWorkload{N: 1, CIn: 5, H: 6, W: 6, COut: 9, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
		in := tensor.New(w.N, w.CIn, w.H, w.W)
		in.FillRandom(seed)
		weight := tensor.New(w.COut, w.CIn, w.KH, w.KW)
		weight.FillRandom(seed + 1)
		want := Conv2D(in, weight, nil, w)
		packedIn := tensor.ConvertNCHW(in, "NCHW", tensor.Layout(blockedLayout(block)), w.N, w.CIn, w.H, w.W)
		packedOut := Conv2DPacked(packedIn, tensor.ConvertOIHW(weight, block), nil, w, block)
		back := tensor.ConvertNCHW(packedOut, tensor.Layout(blockedLayout(block)), "NCHW", w.N, w.COut, w.OutH(), w.OutW())
		return tensor.AllClose(back, want, 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
