package ops

import (
	"math"

	"unigpu/internal/tensor"
)

// LeakyAlpha is the leaky-ReLU slope the fused conv/dense epilogues bake in
// (the zoo's Darknet models all use 0.1). The graph-level fusion passes only
// fold a leaky activation into an epilogue when its slope matches, so fusion
// never silently changes the function.
const LeakyAlpha float32 = 0.1

// ElementwiseKind names one stage of a fused elementwise chain.
type ElementwiseKind int

const (
	EwReLU ElementwiseKind = iota
	EwLeakyReLU
	EwSigmoid
	// EwAdd sums the running value with the next extra input (residual
	// connections folded into the chain).
	EwAdd
)

func (k ElementwiseKind) String() string {
	switch k {
	case EwReLU:
		return "relu"
	case EwLeakyReLU:
		return "leaky_relu"
	case EwSigmoid:
		return "sigmoid"
	case EwAdd:
		return "add"
	}
	return "elementwise"
}

// ElementwiseStage is one operation of a fused producer→consumer chain.
type ElementwiseStage struct {
	Kind  ElementwiseKind
	Alpha float32 // EwLeakyReLU slope
}

// FusedElementwiseInto applies a chain of elementwise stages to in, making a
// single pass over memory instead of one pass per stage. Each EwAdd stage
// consumes the next tensor from extras (the chain value is always the left
// addend, matching AddInto's operand order). Per-element stage order is
// identical to running the stages as separate kernels, so the result is
// bit-identical to the unfused chain. out may alias in; it must not alias
// any extra.
func FusedElementwiseInto(out, in *tensor.Tensor, extras []*tensor.Tensor, stages []ElementwiseStage) {
	if !allFloat32(out, in) || !allFloat32(extras...) {
		fusedElementwiseTypedInto(out, in, extras, stages)
		return
	}
	od, id := out.Data(), in.Data()
	// Resolve the extras' backing slices once, outside the element loop.
	// The fixed buffer keeps typical chains (one or two residual adds)
	// allocation-free on the session hot path.
	nAdd := 0
	for _, st := range stages {
		if st.Kind == EwAdd {
			nAdd++
		}
	}
	if nAdd != len(extras) {
		panic("ops: FusedElementwiseInto extras do not match the add stages")
	}
	var exbuf [4][]float32
	exd := exbuf[:0]
	for _, e := range extras {
		if e.Size() != in.Size() {
			panic("ops: FusedElementwiseInto add operand shape mismatch")
		}
		exd = append(exd, e.Data())
	}
	for i, v := range id {
		ei := 0
		for _, st := range stages {
			switch st.Kind {
			case EwReLU:
				if v < 0 {
					v = 0
				}
			case EwLeakyReLU:
				if v < 0 {
					v = st.Alpha * v
				}
			case EwSigmoid:
				v = float32(1 / (1 + math.Exp(-float64(v))))
			case EwAdd:
				v += exd[ei][i]
				ei++
			}
		}
		od[i] = v
	}
}

// fusedElementwiseTypedInto is the dtype-aware slow path: identical stage
// order, reduced-precision operands widened on load.
func fusedElementwiseTypedInto(out, in *tensor.Tensor, extras []*tensor.Tensor, stages []ElementwiseStage) {
	nAdd := 0
	for _, st := range stages {
		if st.Kind == EwAdd {
			nAdd++
		}
	}
	if nAdd != len(extras) {
		panic("ops: FusedElementwiseInto extras do not match the add stages")
	}
	for _, e := range extras {
		if e.Size() != in.Size() {
			panic("ops: FusedElementwiseInto add operand shape mismatch")
		}
	}
	n := in.Size()
	for i := 0; i < n; i++ {
		v := in.GetF(i)
		ei := 0
		for _, st := range stages {
			switch st.Kind {
			case EwReLU:
				if v < 0 {
					v = 0
				}
			case EwLeakyReLU:
				if v < 0 {
					v = st.Alpha * v
				}
			case EwSigmoid:
				v = float32(1 / (1 + math.Exp(-float64(v))))
			case EwAdd:
				v += extras[ei].GetF(i)
				ei++
			}
		}
		out.SetF(i, v)
	}
}
