// Package ops implements the CNN operator library: reference (and
// host-parallel) implementations of every operator the six evaluation
// models need. The graph runtime executes these for functional results,
// while per-operator latency on the simulated devices comes from the
// schedule templates + cost model; the te-lowered kernels are validated
// against these references on reduced shapes.
package ops

import "fmt"

// ConvWorkload identifies one convolution workload: the unit of tuning in
// AutoTVM (§3.2.3, "we maintain a database ... for every convolution
// workload on each hardware platform").
type ConvWorkload struct {
	N, CIn, H, W    int // input batch, channels, height, width
	COut, KH, KW    int // output channels, kernel size
	StrideH         int
	StrideW         int
	PadH, PadW      int
	Groups          int // CIn == Groups == COut for depthwise
	HasBias         bool
	FusedActivation Activation
}

// Activation names the elementwise epilogue fused into a conv kernel.
type Activation int

const (
	ActNone Activation = iota
	ActReLU
	ActLeakyReLU
)

// OutH returns the output height.
func (w ConvWorkload) OutH() int { return (w.H+2*w.PadH-w.KH)/w.StrideH + 1 }

// OutW returns the output width.
func (w ConvWorkload) OutW() int { return (w.W+2*w.PadW-w.KW)/w.StrideW + 1 }

// IsDepthwise reports whether this is a depthwise convolution.
func (w ConvWorkload) IsDepthwise() bool { return w.Groups > 1 && w.Groups == w.CIn && w.CIn == w.COut }

// Is1x1 reports whether the kernel is pointwise.
func (w ConvWorkload) Is1x1() bool { return w.KH == 1 && w.KW == 1 }

// FLOPs counts multiply-accumulate work as 2 flops each.
func (w ConvWorkload) FLOPs() float64 {
	g := max(1, w.Groups)
	macs := float64(w.N) * float64(w.COut) * float64(w.OutH()) * float64(w.OutW()) *
		float64(w.CIn/g) * float64(w.KH) * float64(w.KW)
	return 2 * macs
}

// Elems is the compulsory traffic in elements: input + weights + output,
// once each. Multiply by the element width for bytes.
func (w ConvWorkload) Elems() float64 {
	g := max(1, w.Groups)
	in := w.N * w.CIn * w.H * w.W
	wt := w.COut * (w.CIn / g) * w.KH * w.KW
	out := w.N * w.COut * w.OutH() * w.OutW()
	return float64(in + wt + out)
}

// Bytes is the compulsory traffic at fp32 element width.
func (w ConvWorkload) Bytes() float64 { return 4 * w.Elems() }

// Key is the canonical database key for the tuning-records store.
func (w ConvWorkload) Key() string {
	kind := "conv2d"
	if w.IsDepthwise() {
		kind = "depthwise"
	}
	return fmt.Sprintf("%s_n%d_c%d_h%d_w%d_o%d_k%dx%d_s%d_p%d_g%d",
		kind, w.N, w.CIn, w.H, w.W, w.COut, w.KH, w.KW, w.StrideH, w.PadH, max(1, w.Groups))
}

func (w ConvWorkload) String() string { return w.Key() }
