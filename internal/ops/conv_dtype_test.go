package ops

import (
	"math"
	"testing"

	"unigpu/internal/tensor"
)

// dtypeConvCases are the workload shapes the fp16/int8 kernels are
// cross-checked on: pointwise, padded 3x3, strided, depthwise, grouped,
// and the fused residual epilogue.
func dtypeConvCases() []ConvWorkload {
	return []ConvWorkload{
		{N: 1, CIn: 8, COut: 12, H: 9, W: 9, KH: 1, KW: 1, StrideH: 1, StrideW: 1, HasBias: true},
		{N: 2, CIn: 6, COut: 10, H: 8, W: 8, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1,
			HasBias: true, FusedActivation: ActReLU},
		{N: 1, CIn: 5, COut: 7, H: 11, W: 7, KH: 3, KW: 3, StrideH: 2, StrideW: 2, PadH: 1, PadW: 1,
			HasBias: true, FusedActivation: ActLeakyReLU},
		{N: 1, CIn: 8, COut: 8, H: 7, W: 7, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1,
			Groups: 8, HasBias: true, FusedActivation: ActReLU},
		{N: 1, CIn: 8, COut: 12, H: 6, W: 6, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1,
			Groups: 2, HasBias: true},
		{N: 1, CIn: 4, COut: 6, H: 10, W: 10, KH: 5, KW: 5, StrideH: 1, StrideW: 1, PadH: 2, PadW: 2,
			HasBias: true},
	}
}

// refMaxAbs is the normalization scale for relative-error checks.
func refMaxAbs(t *tensor.Tensor) float64 {
	m := 0.0
	for i := 0; i < t.Size(); i++ {
		if v := math.Abs(float64(t.GetF(i))); v > m {
			m = v
		}
	}
	if m == 0 {
		return 1
	}
	return m
}

// crossCheck runs the dtype kernel against the frozen fp32 reference and
// fails when the normalized error exceeds tol.
func crossCheck(t *testing.T, w ConvWorkload, dt tensor.DType, residual bool, tol float64) {
	t.Helper()
	in, weight, bias := convInputs(w, 31)
	var res *tensor.Tensor
	if residual {
		res = randT(37, w.N, w.COut, w.OutH(), w.OutW())
	}

	// fp32 reference through the same prepared-kernel entry point.
	ref := tensor.New(w.N, w.COut, w.OutH(), w.OutW())
	pref := PrepareConvDType(w, KernelAuto, weight, tensor.Float32)
	pref.RunIntoEpilogue(ref, in, bias, res, make([]float32, pref.ScratchElems()), nil, false)

	p := PrepareConvDType(w, KernelAuto, weight, dt)
	if p.DType() != dt {
		t.Fatalf("prepared dtype %v, want %v", p.DType(), dt)
	}
	tin := tensor.Convert(in, dt, 0)
	out := tensor.NewTyped(tensor.Float16, w.N, w.COut, w.OutH(), w.OutW())
	var scratch8 []int8
	if p.ScratchDType() == tensor.Int8 {
		scratch8 = make([]int8, p.ScratchElems())
	}
	p.RunIntoEpilogue(out, tin, bias, res, make([]float32, p.ScratchElems()), scratch8, false)

	scale := refMaxAbs(ref)
	worst := 0.0
	for i := 0; i < ref.Size(); i++ {
		if d := math.Abs(float64(out.GetF(i)-ref.GetF(i))) / scale; d > worst {
			worst = d
		}
	}
	if worst > tol {
		t.Errorf("%v %s residual=%v: max normalized error %.3e exceeds %.1e (kernel %s)",
			w, dt, residual, worst, tol, p.Kernel())
	}
}

// TestConvFP16CrossCheck: fp16-storage convolutions (fp32 accumulate)
// must stay within half-precision rounding of the fp32 reference.
func TestConvFP16CrossCheck(t *testing.T) {
	for _, w := range dtypeConvCases() {
		crossCheck(t, w, tensor.Float16, false, 1e-2)
		crossCheck(t, w, tensor.Float16, true, 1e-2)
	}
}

// TestConvInt8CrossCheck: symmetric int8 with per-channel weight scales
// must stay within the coarser quantization budget.
func TestConvInt8CrossCheck(t *testing.T) {
	for _, w := range dtypeConvCases() {
		crossCheck(t, w, tensor.Int8, false, 0.08)
		crossCheck(t, w, tensor.Int8, true, 0.08)
	}
}

// TestPackConvWeightsInt8Scales: every output channel's scale covers its
// own max |w|, so no weight saturates when quantized with it.
func TestPackConvWeightsInt8Scales(t *testing.T) {
	w := ConvWorkload{N: 1, CIn: 6, COut: 9, H: 5, W: 5, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	_, weight, _ := convInputs(w, 53)
	_, scales := PackConvWeightsInt8(weight, w)
	if len(scales) != w.COut {
		t.Fatalf("got %d scales, want %d", len(scales), w.COut)
	}
	wd := weight.Data()
	k := w.CIn * w.KH * w.KW
	for co := 0; co < w.COut; co++ {
		m := 0.0
		for i := 0; i < k; i++ {
			if v := math.Abs(float64(wd[co*k+i])); v > m {
				m = v
			}
		}
		if got, want := scales[co], tensor.Int8Scale(m); got != want {
			t.Errorf("channel %d scale %g, want %g", co, got, want)
		}
	}
}

// TestElementwiseTypedPaths: the generic guard paths of the elementwise
// kernels must agree with the fp32 fast paths within half rounding when
// tensors ride fp16 carriers.
func TestElementwiseTypedPaths(t *testing.T) {
	a := randT(61, 2, 4, 5, 5)
	b := randT(62, 2, 4, 5, 5)
	ah := tensor.Convert(a, tensor.Float16, 0)
	bh := tensor.Convert(b, tensor.Float16, 0)

	want := tensor.New(2, 4, 5, 5)
	AddInto(want, a, b)
	got := tensor.NewTyped(tensor.Float16, 2, 4, 5, 5)
	AddInto(got, ah, bh)
	for i := 0; i < want.Size(); i++ {
		if d := math.Abs(float64(got.GetF(i) - want.GetF(i))); d > 1e-2 {
			t.Fatalf("AddInto fp16 elem %d: %g vs %g", i, got.GetF(i), want.GetF(i))
		}
	}

	wantR := tensor.New(2, 4, 5, 5)
	ReLUInto(wantR, a)
	gotR := tensor.NewTyped(tensor.Float16, 2, 4, 5, 5)
	ReLUInto(gotR, ah)
	for i := 0; i < wantR.Size(); i++ {
		if d := math.Abs(float64(gotR.GetF(i) - wantR.GetF(i))); d > 1e-2 {
			t.Fatalf("ReLUInto fp16 elem %d: %g vs %g", i, gotR.GetF(i), wantR.GetF(i))
		}
	}
}
