package ops

import (
	"math"

	"unigpu/internal/tensor"
)

// Every operator here comes in two forms: the allocating reference
// (ReLU, Add, ...) and an *Into variant computing into a caller-provided
// output tensor. The pooled graph runtime executes the Into forms against
// arena-backed buffers so the steady-state run loop never allocates.

// allFloat32 reports whether every tensor carries fp32 storage — the
// precondition for the raw-slice fast paths below. Reduced-precision
// operands take the dtype-aware loops instead (same arithmetic, widened
// on load, narrowed on store).
func allFloat32(ts ...*tensor.Tensor) bool {
	for _, t := range ts {
		if t != nil && t.DType() != tensor.Float32 {
			return false
		}
	}
	return true
}

// ReLU applies max(0, x) elementwise.
func ReLU(in *tensor.Tensor) *tensor.Tensor {
	out := tensor.New(in.Shape()...)
	ReLUInto(out, in)
	return out
}

// ReLUInto applies max(0, x) into out (which may alias in).
func ReLUInto(out, in *tensor.Tensor) {
	if !allFloat32(out, in) {
		n := in.Size()
		for i := 0; i < n; i++ {
			v := in.GetF(i)
			if v < 0 {
				v = 0
			}
			out.SetF(i, v)
		}
		return
	}
	d, id := out.Data(), in.Data()
	for i, v := range id {
		if v < 0 {
			d[i] = 0
		} else {
			d[i] = v
		}
	}
}

// LeakyReLU applies x<0 ? alpha*x : x elementwise.
func LeakyReLU(in *tensor.Tensor, alpha float32) *tensor.Tensor {
	out := tensor.New(in.Shape()...)
	LeakyReLUInto(out, in, alpha)
	return out
}

// LeakyReLUInto applies the leaky rectifier into out.
func LeakyReLUInto(out, in *tensor.Tensor, alpha float32) {
	if !allFloat32(out, in) {
		n := in.Size()
		for i := 0; i < n; i++ {
			v := in.GetF(i)
			if v < 0 {
				v = alpha * v
			}
			out.SetF(i, v)
		}
		return
	}
	d, id := out.Data(), in.Data()
	for i, v := range id {
		if v < 0 {
			d[i] = alpha * v
		} else {
			d[i] = v
		}
	}
}

// Sigmoid applies the logistic function elementwise.
func Sigmoid(in *tensor.Tensor) *tensor.Tensor {
	out := tensor.New(in.Shape()...)
	SigmoidInto(out, in)
	return out
}

// SigmoidInto applies the logistic function into out.
func SigmoidInto(out, in *tensor.Tensor) {
	if !allFloat32(out, in) {
		n := in.Size()
		for i := 0; i < n; i++ {
			out.SetF(i, float32(1/(1+math.Exp(-float64(in.GetF(i))))))
		}
		return
	}
	d, id := out.Data(), in.Data()
	for i, v := range id {
		d[i] = float32(1 / (1 + math.Exp(-float64(v))))
	}
}

// Add computes the elementwise sum of two same-shape tensors (residual
// connections).
func Add(a, b *tensor.Tensor) *tensor.Tensor {
	out := tensor.New(a.Shape()...)
	AddInto(out, a, b)
	return out
}

// AddInto sums a and b elementwise into out.
func AddInto(out, a, b *tensor.Tensor) {
	if !a.Shape().Equal(b.Shape()) {
		panic("ops: Add shape mismatch " + a.Shape().String() + " vs " + b.Shape().String())
	}
	if !allFloat32(out, a, b) {
		n := a.Size()
		for i := 0; i < n; i++ {
			out.SetF(i, a.GetF(i)+b.GetF(i))
		}
		return
	}
	d, ad, bd := out.Data(), a.Data(), b.Data()
	for i := range d {
		d[i] = ad[i] + bd[i]
	}
}

// BatchNormInference applies the folded affine form of batch norm:
// y = gamma * (x - mean) / sqrt(var + eps) + beta, per channel (NCHW).
func BatchNormInference(in, gamma, beta, mean, variance *tensor.Tensor, eps float32) *tensor.Tensor {
	out := tensor.New(in.Shape()...)
	BatchNormInferenceInto(out, in, gamma, beta, mean, variance, eps)
	return out
}

// BatchNormInferenceInto applies inference-mode batch norm into out.
func BatchNormInferenceInto(out, in, gamma, beta, mean, variance *tensor.Tensor, eps float32) {
	s := in.Shape()
	c, hw := s[1], s[2]*s[3]
	d, id := out.Data(), in.Data()
	gd, bd, md, vd := gamma.Data(), beta.Data(), mean.Data(), variance.Data()
	for n := 0; n < s[0]; n++ {
		for ci := 0; ci < c; ci++ {
			scale := gd[ci] / float32(math.Sqrt(float64(vd[ci]+eps)))
			shift := bd[ci] - md[ci]*scale
			base := (n*c + ci) * hw
			for i := 0; i < hw; i++ {
				d[base+i] = id[base+i]*scale + shift
			}
		}
	}
}

// FoldBatchNorm rewrites (gamma, beta, mean, var) into the equivalent
// (scale, shift) pair used after constant pre-computation (§3.2.3
// "simplifying inference for batch-norm").
func FoldBatchNorm(gamma, beta, mean, variance *tensor.Tensor, eps float32) (scale, shift *tensor.Tensor) {
	c := gamma.Shape()[0]
	scale, shift = tensor.New(c), tensor.New(c)
	for i := 0; i < c; i++ {
		sc := gamma.Data()[i] / float32(math.Sqrt(float64(variance.Data()[i]+eps)))
		scale.Data()[i] = sc
		shift.Data()[i] = beta.Data()[i] - mean.Data()[i]*sc
	}
	return scale, shift
}

// Softmax normalizes along the last axis.
func Softmax(in *tensor.Tensor) *tensor.Tensor {
	out := tensor.New(in.Shape()...)
	SoftmaxInto(out, in)
	return out
}

// SoftmaxInto normalizes along the last axis into out (may alias in).
func SoftmaxInto(out, in *tensor.Tensor) {
	s := in.Shape()
	last := s[len(s)-1]
	rows := in.Size() / last
	d, id := out.Data(), in.Data()
	for r := 0; r < rows; r++ {
		src := id[r*last : (r+1)*last]
		row := d[r*last : (r+1)*last]
		maxV := src[0]
		for _, v := range src {
			if v > maxV {
				maxV = v
			}
		}
		var sum float64
		for i, v := range src {
			e := math.Exp(float64(v - maxV))
			row[i] = float32(e)
			sum += e
		}
		for i := range row {
			row[i] = float32(float64(row[i]) / sum)
		}
	}
}

// Concat joins tensors along the channel axis (axis 1, NCHW).
func Concat(ts ...*tensor.Tensor) *tensor.Tensor {
	if len(ts) == 0 {
		panic("ops: Concat of nothing")
	}
	s0 := ts[0].Shape()
	totalC := 0
	for _, t := range ts {
		totalC += t.Shape()[1]
	}
	out := tensor.New(s0[0], totalC, s0[2], s0[3])
	ConcatInto(out, ts...)
	return out
}

// ConcatInto joins tensors along the channel axis into out.
func ConcatInto(out *tensor.Tensor, ts ...*tensor.Tensor) {
	if len(ts) == 0 {
		panic("ops: Concat of nothing")
	}
	s0 := ts[0].Shape()
	n, h, w := s0[0], s0[2], s0[3]
	totalC := out.Shape()[1]
	for _, t := range ts {
		s := t.Shape()
		if s[0] != n || s[2] != h || s[3] != w {
			panic("ops: Concat non-channel dims must match")
		}
	}
	if !allFloat32(out) || !allFloat32(ts...) {
		cOff := 0
		for _, t := range ts {
			c := t.Shape()[1]
			chw := c * h * w
			for ni := 0; ni < n; ni++ {
				src := ni * chw
				dst := (ni*totalC + cOff) * h * w
				for i := 0; i < chw; i++ {
					out.SetF(dst+i, t.GetF(src+i))
				}
			}
			cOff += c
		}
		return
	}
	cOff := 0
	od := out.Data()
	for _, t := range ts {
		c := t.Shape()[1]
		for ni := 0; ni < n; ni++ {
			src := t.Data()[ni*c*h*w : (ni+1)*c*h*w]
			dst := od[(ni*totalC+cOff)*h*w : (ni*totalC+cOff+c)*h*w]
			copy(dst, src)
		}
		cOff += c
	}
}

// UpsampleNearest2x doubles spatial resolution by nearest neighbour (the
// YOLOv3 route/upsample block).
func UpsampleNearest2x(in *tensor.Tensor) *tensor.Tensor {
	s := in.Shape()
	out := tensor.New(s[0], s[1], 2*s[2], 2*s[3])
	UpsampleNearest2xInto(out, in)
	return out
}

// UpsampleNearest2xInto doubles spatial resolution into out.
func UpsampleNearest2xInto(out, in *tensor.Tensor) {
	s := in.Shape()
	n, c, h, w := s[0], s[1], s[2], s[3]
	if !allFloat32(out, in) {
		for p := 0; p < n*c; p++ {
			iBase := p * h * w
			oBase := p * 4 * h * w
			for y := 0; y < 2*h; y++ {
				srcRow := iBase + (y/2)*w
				dstRow := oBase + y*2*w
				for x := 0; x < 2*w; x++ {
					out.SetF(dstRow+x, in.GetF(srcRow+x/2))
				}
			}
		}
		return
	}
	od, id := out.Data(), in.Data()
	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < c; ci++ {
			iBase := (ni*c + ci) * h * w
			oBase := (ni*c + ci) * 4 * h * w
			for y := 0; y < 2*h; y++ {
				srcRow := id[iBase+(y/2)*w : iBase+(y/2)*w+w]
				dstRow := od[oBase+y*2*w : oBase+(y+1)*2*w]
				for x := 0; x < 2*w; x++ {
					dstRow[x] = srcRow[x/2]
				}
			}
		}
	}
}

// Flatten reshapes (N, C, H, W) to (N, C*H*W).
func Flatten(in *tensor.Tensor) *tensor.Tensor {
	s := in.Shape()
	return in.Reshape(s[0], in.Size()/s[0])
}
