package ops

import (
	"math"

	"unigpu/internal/tensor"
)

// ReLU applies max(0, x) elementwise.
func ReLU(in *tensor.Tensor) *tensor.Tensor {
	out := in.Clone()
	d := out.Data()
	for i, v := range d {
		if v < 0 {
			d[i] = 0
		}
	}
	return out
}

// LeakyReLU applies x<0 ? alpha*x : x elementwise.
func LeakyReLU(in *tensor.Tensor, alpha float32) *tensor.Tensor {
	out := in.Clone()
	d := out.Data()
	for i, v := range d {
		if v < 0 {
			d[i] = alpha * v
		}
	}
	return out
}

// Sigmoid applies the logistic function elementwise.
func Sigmoid(in *tensor.Tensor) *tensor.Tensor {
	out := in.Clone()
	d := out.Data()
	for i, v := range d {
		d[i] = float32(1 / (1 + math.Exp(-float64(v))))
	}
	return out
}

// Add computes the elementwise sum of two same-shape tensors (residual
// connections).
func Add(a, b *tensor.Tensor) *tensor.Tensor {
	if !a.Shape().Equal(b.Shape()) {
		panic("ops: Add shape mismatch " + a.Shape().String() + " vs " + b.Shape().String())
	}
	out := a.Clone()
	d, bd := out.Data(), b.Data()
	for i := range d {
		d[i] += bd[i]
	}
	return out
}

// BatchNormInference applies the folded affine form of batch norm:
// y = gamma * (x - mean) / sqrt(var + eps) + beta, per channel (NCHW).
func BatchNormInference(in, gamma, beta, mean, variance *tensor.Tensor, eps float32) *tensor.Tensor {
	s := in.Shape()
	c, hw := s[1], s[2]*s[3]
	out := in.Clone()
	d := out.Data()
	for n := 0; n < s[0]; n++ {
		for ci := 0; ci < c; ci++ {
			scale := gamma.Data()[ci] / float32(math.Sqrt(float64(variance.Data()[ci]+eps)))
			shift := beta.Data()[ci] - mean.Data()[ci]*scale
			base := (n*c + ci) * hw
			for i := 0; i < hw; i++ {
				d[base+i] = d[base+i]*scale + shift
			}
		}
	}
	return out
}

// FoldBatchNorm rewrites (gamma, beta, mean, var) into the equivalent
// (scale, shift) pair used after constant pre-computation (§3.2.3
// "simplifying inference for batch-norm").
func FoldBatchNorm(gamma, beta, mean, variance *tensor.Tensor, eps float32) (scale, shift *tensor.Tensor) {
	c := gamma.Shape()[0]
	scale, shift = tensor.New(c), tensor.New(c)
	for i := 0; i < c; i++ {
		sc := gamma.Data()[i] / float32(math.Sqrt(float64(variance.Data()[i]+eps)))
		scale.Data()[i] = sc
		shift.Data()[i] = beta.Data()[i] - mean.Data()[i]*sc
	}
	return scale, shift
}

// Softmax normalizes along the last axis.
func Softmax(in *tensor.Tensor) *tensor.Tensor {
	s := in.Shape()
	last := s[len(s)-1]
	rows := in.Size() / last
	out := in.Clone()
	d := out.Data()
	for r := 0; r < rows; r++ {
		row := d[r*last : (r+1)*last]
		maxV := row[0]
		for _, v := range row {
			if v > maxV {
				maxV = v
			}
		}
		var sum float64
		for i, v := range row {
			e := math.Exp(float64(v - maxV))
			row[i] = float32(e)
			sum += e
		}
		for i := range row {
			row[i] = float32(float64(row[i]) / sum)
		}
	}
	return out
}

// Concat joins tensors along the channel axis (axis 1, NCHW).
func Concat(ts ...*tensor.Tensor) *tensor.Tensor {
	if len(ts) == 0 {
		panic("ops: Concat of nothing")
	}
	s0 := ts[0].Shape()
	n, h, w := s0[0], s0[2], s0[3]
	totalC := 0
	for _, t := range ts {
		s := t.Shape()
		if s[0] != n || s[2] != h || s[3] != w {
			panic("ops: Concat non-channel dims must match")
		}
		totalC += s[1]
	}
	out := tensor.New(n, totalC, h, w)
	cOff := 0
	for _, t := range ts {
		c := t.Shape()[1]
		for ni := 0; ni < n; ni++ {
			src := t.Data()[ni*c*h*w : (ni+1)*c*h*w]
			dst := out.Data()[(ni*totalC+cOff)*h*w : (ni*totalC+cOff+c)*h*w]
			copy(dst, src)
		}
		cOff += c
	}
	return out
}

// UpsampleNearest2x doubles spatial resolution by nearest neighbour (the
// YOLOv3 route/upsample block).
func UpsampleNearest2x(in *tensor.Tensor) *tensor.Tensor {
	s := in.Shape()
	n, c, h, w := s[0], s[1], s[2], s[3]
	out := tensor.New(n, c, 2*h, 2*w)
	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < c; ci++ {
			for y := 0; y < 2*h; y++ {
				for x := 0; x < 2*w; x++ {
					out.Set(in.At(ni, ci, y/2, x/2), ni, ci, y, x)
				}
			}
		}
	}
	return out
}

// Flatten reshapes (N, C, H, W) to (N, C*H*W).
func Flatten(in *tensor.Tensor) *tensor.Tensor {
	s := in.Shape()
	return in.Reshape(s[0], in.Size()/s[0])
}
