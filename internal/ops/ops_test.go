package ops

import (
	"math"
	"testing"
	"testing/quick"

	"unigpu/internal/tensor"
)

// naiveConv is an intentionally dumb reference for cross-checking.
func naiveConv(in, weight, bias *tensor.Tensor, w ConvWorkload) *tensor.Tensor {
	oh, ow := w.OutH(), w.OutW()
	out := tensor.New(w.N, w.COut, oh, ow)
	g := max(1, w.Groups)
	cinPerG, coutPerG := w.CIn/g, w.COut/g
	for n := 0; n < w.N; n++ {
		for co := 0; co < w.COut; co++ {
			for y := 0; y < oh; y++ {
				for x := 0; x < ow; x++ {
					var sum float32
					if bias != nil {
						sum = bias.At(co)
					}
					grp := co / coutPerG
					for ci := 0; ci < cinPerG; ci++ {
						for ky := 0; ky < w.KH; ky++ {
							for kx := 0; kx < w.KW; kx++ {
								iy := y*w.StrideH - w.PadH + ky
								ix := x*w.StrideW - w.PadW + kx
								if iy < 0 || iy >= w.H || ix < 0 || ix >= w.W {
									continue
								}
								sum += in.At(n, grp*cinPerG+ci, iy, ix) * weight.At(co, ci, ky, kx)
							}
						}
					}
					out.Set(applyActivation(sum, w.FusedActivation), n, co, y, x)
				}
			}
		}
	}
	return out
}

func randomConvInputs(w ConvWorkload, seed int64) (in, weight, bias *tensor.Tensor) {
	g := max(1, w.Groups)
	in = tensor.New(w.N, w.CIn, w.H, w.W)
	in.FillRandom(seed)
	weight = tensor.New(w.COut, w.CIn/g, w.KH, w.KW)
	weight.FillRandom(seed + 1)
	if w.HasBias {
		bias = tensor.New(w.COut)
		bias.FillRandom(seed + 2)
	}
	return
}

func TestConv2DMatchesNaive(t *testing.T) {
	cases := []ConvWorkload{
		{N: 1, CIn: 3, H: 8, W: 8, COut: 4, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, HasBias: true},
		{N: 2, CIn: 4, H: 7, W: 9, COut: 6, KH: 3, KW: 3, StrideH: 2, StrideW: 2, PadH: 1, PadW: 1},
		{N: 1, CIn: 8, H: 6, W: 6, COut: 8, KH: 1, KW: 1, StrideH: 1, StrideW: 1},                                // pointwise
		{N: 1, CIn: 8, H: 10, W: 10, COut: 8, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, Groups: 8}, // depthwise
		{N: 1, CIn: 8, H: 6, W: 6, COut: 4, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, Groups: 2},   // grouped
		{N: 1, CIn: 3, H: 9, W: 9, COut: 2, KH: 5, KW: 5, StrideH: 2, StrideW: 2, PadH: 2, PadW: 2, FusedActivation: ActReLU},
	}
	for _, w := range cases {
		in, weight, bias := randomConvInputs(w, 7)
		got := Conv2D(in, weight, bias, w)
		want := naiveConv(in, weight, bias, w)
		if !tensor.AllClose(got, want, 1e-5) {
			t.Errorf("%s: max diff %g", w, tensor.MaxAbsDiff(got, want))
		}
	}
}

func TestConvOutputShape(t *testing.T) {
	w := ConvWorkload{N: 1, CIn: 3, H: 224, W: 224, COut: 64, KH: 7, KW: 7, StrideH: 2, StrideW: 2, PadH: 3, PadW: 3}
	if w.OutH() != 112 || w.OutW() != 112 {
		t.Fatalf("resnet stem output = %dx%d, want 112x112", w.OutH(), w.OutW())
	}
}

func TestConvWorkloadFLOPs(t *testing.T) {
	w := ConvWorkload{N: 1, CIn: 2, H: 4, W: 4, COut: 3, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	// 3 out channels * 16 pixels * 2 in channels * 9 taps * 2.
	if got := w.FLOPs(); got != float64(3*16*2*9*2) {
		t.Fatalf("FLOPs = %v", got)
	}
	dw := ConvWorkload{N: 1, CIn: 4, H: 4, W: 4, COut: 4, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, Groups: 4}
	if !dw.IsDepthwise() {
		t.Fatal("should be depthwise")
	}
	if got := dw.FLOPs(); got != float64(4*16*1*9*2) {
		t.Fatalf("depthwise FLOPs = %v", got)
	}
}

func TestWorkloadKeyDistinguishes(t *testing.T) {
	a := ConvWorkload{N: 1, CIn: 64, H: 56, W: 56, COut: 64, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	b := a
	b.StrideH = 2
	if a.Key() == b.Key() {
		t.Fatal("different strides must produce different keys")
	}
	if a.Key() != a.Key() {
		t.Fatal("keys must be stable")
	}
}

func TestDense(t *testing.T) {
	in := tensor.FromData([]float32{1, 2, 3}, 1, 3)
	w := tensor.FromData([]float32{1, 0, 0, 0, 1, 1}, 2, 3)
	b := tensor.FromData([]float32{10, 20}, 2)
	out := Dense(in, w, b)
	if out.At(0, 0) != 11 || out.At(0, 1) != 25 {
		t.Fatalf("dense = %v", out.Data())
	}
}

func TestReLUFamily(t *testing.T) {
	in := tensor.FromData([]float32{-2, 0, 3}, 3)
	r := ReLU(in)
	if r.At(0) != 0 || r.At(2) != 3 {
		t.Fatalf("relu = %v", r.Data())
	}
	l := LeakyReLU(in, 0.1)
	if math.Abs(float64(l.At(0)+0.2)) > 1e-6 || l.At(2) != 3 {
		t.Fatalf("leaky = %v", l.Data())
	}
	s := Sigmoid(tensor.FromData([]float32{0}, 1))
	if math.Abs(float64(s.At(0))-0.5) > 1e-6 {
		t.Fatalf("sigmoid(0) = %v", s.At(0))
	}
	// Input must be untouched.
	if in.At(0) != -2 {
		t.Fatal("activations must not mutate their input")
	}
}

func TestAddAndShapeMismatch(t *testing.T) {
	a := tensor.FromData([]float32{1, 2}, 2)
	b := tensor.FromData([]float32{3, 4}, 2)
	if got := Add(a, b); got.At(1) != 6 {
		t.Fatalf("add = %v", got.Data())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected shape-mismatch panic")
		}
	}()
	Add(a, tensor.New(3))
}

func TestBatchNormFoldEquivalence(t *testing.T) {
	c := 5
	in := tensor.New(2, c, 3, 3)
	in.FillRandom(11)
	gamma, beta, mean, variance := tensor.New(c), tensor.New(c), tensor.New(c), tensor.New(c)
	gamma.FillRandom(1)
	beta.FillRandom(2)
	mean.FillRandom(3)
	variance.FillFunc(func(i int) float32 { return 0.5 + float32(i)*0.1 })
	const eps = 1e-5

	want := BatchNormInference(in, gamma, beta, mean, variance, eps)

	// Folded form: y = x*scale + shift must agree exactly.
	scale, shift := FoldBatchNorm(gamma, beta, mean, variance, eps)
	got := in.Clone()
	d := got.Data()
	hw := 9
	for n := 0; n < 2; n++ {
		for ci := 0; ci < c; ci++ {
			base := (n*c + ci) * hw
			for i := 0; i < hw; i++ {
				d[base+i] = d[base+i]*scale.At(ci) + shift.At(ci)
			}
		}
	}
	if !tensor.AllClose(got, want, 1e-6) {
		t.Fatalf("folded BN diverges: %g", tensor.MaxAbsDiff(got, want))
	}
}

func TestSoftmax(t *testing.T) {
	in := tensor.FromData([]float32{1, 2, 3, 1000, 1000, 1000}, 2, 3)
	out := Softmax(in)
	for r := 0; r < 2; r++ {
		var sum float64
		for i := 0; i < 3; i++ {
			sum += float64(out.At(r, i))
		}
		if math.Abs(sum-1) > 1e-5 {
			t.Fatalf("row %d sums to %v", r, sum)
		}
	}
	if out.At(0, 2) <= out.At(0, 0) {
		t.Fatal("softmax must be monotone")
	}
	// Large inputs must not overflow (max subtraction).
	if math.Abs(float64(out.At(1, 0))-1.0/3) > 1e-5 {
		t.Fatalf("uniform large row should be 1/3, got %v", out.At(1, 0))
	}
}

func TestMaxAndAvgPool(t *testing.T) {
	in := tensor.FromData([]float32{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 1, 1, 4, 4)
	mp := Pool2D(in, MaxPool, 2, 2, 0)
	if !mp.Shape().Equal(tensor.Shape{1, 1, 2, 2}) || mp.At(0, 0, 0, 0) != 6 || mp.At(0, 0, 1, 1) != 16 {
		t.Fatalf("maxpool = %v", mp.Data())
	}
	ap := Pool2D(in, AvgPool, 2, 2, 0)
	if ap.At(0, 0, 0, 0) != 3.5 {
		t.Fatalf("avgpool = %v", ap.Data())
	}
	// Padding excluded from divisor.
	ap2 := Pool2D(in, AvgPool, 3, 2, 1)
	if ap2.At(0, 0, 0, 0) != (1+2+5+6)/4.0 {
		t.Fatalf("padded avgpool corner = %v, want 3.5", ap2.At(0, 0, 0, 0))
	}
}

func TestGlobalAvgPool(t *testing.T) {
	in := tensor.New(1, 2, 2, 2)
	in.FillFunc(func(i int) float32 { return float32(i) })
	g := GlobalAvgPool(in)
	if g.At(0, 0, 0, 0) != 1.5 || g.At(0, 1, 0, 0) != 5.5 {
		t.Fatalf("gap = %v", g.Data())
	}
}

func TestConcat(t *testing.T) {
	a := tensor.New(1, 2, 2, 2)
	a.Fill(1)
	b := tensor.New(1, 3, 2, 2)
	b.Fill(2)
	c := Concat(a, b)
	if !c.Shape().Equal(tensor.Shape{1, 5, 2, 2}) {
		t.Fatalf("concat shape = %v", c.Shape())
	}
	if c.At(0, 1, 1, 1) != 1 || c.At(0, 2, 0, 0) != 2 {
		t.Fatal("concat channel placement wrong")
	}
}

func TestUpsampleNearest(t *testing.T) {
	in := tensor.FromData([]float32{1, 2, 3, 4}, 1, 1, 2, 2)
	up := UpsampleNearest2x(in)
	if !up.Shape().Equal(tensor.Shape{1, 1, 4, 4}) {
		t.Fatalf("upsample shape = %v", up.Shape())
	}
	if up.At(0, 0, 0, 1) != 1 || up.At(0, 0, 3, 3) != 4 || up.At(0, 0, 2, 1) != 3 {
		t.Fatalf("upsample = %v", up.Data())
	}
}

func TestFlatten(t *testing.T) {
	in := tensor.New(2, 3, 4, 4)
	f := Flatten(in)
	if !f.Shape().Equal(tensor.Shape{2, 48}) {
		t.Fatalf("flatten shape = %v", f.Shape())
	}
}

func TestPropertyConvLinearity(t *testing.T) {
	// conv(a*x) == a*conv(x) when bias is nil: catches indexing bugs
	// independent of a reference implementation.
	w := ConvWorkload{N: 1, CIn: 3, H: 6, W: 6, COut: 2, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	f := func(seed int64, scaleRaw uint8) bool {
		scale := float32(scaleRaw%7) + 1
		in, weight, _ := randomConvInputs(w, seed)
		base := Conv2D(in, weight, nil, w)
		scaled := in.Clone()
		for i, v := range scaled.Data() {
			scaled.Data()[i] = v * scale
		}
		got := Conv2D(scaled, weight, nil, w)
		want := base.Clone()
		for i := range want.Data() {
			want.Data()[i] *= scale
		}
		return tensor.AllClose(got, want, 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestParallelForCoversAllIndices(t *testing.T) {
	n := 1000
	seen := make([]int32, n)
	parallelFor(n, func(i int) { seen[i]++ })
	for i, v := range seen {
		if v != 1 {
			t.Fatalf("index %d executed %d times", i, v)
		}
	}
	// Zero jobs must not hang.
	parallelFor(0, func(int) { t.Fatal("should not run") })
}
