package ops

import (
	"unigpu/internal/tensor"
)

// Conv2DWinograd computes a stride-1 3x3 convolution with the Winograd
// F(2x2, 3x3) minimal-filtering algorithm: each 2x2 output tile costs 16
// multiplies in the transform domain instead of 36 — a 2.25x reduction in
// multiplications. This is the algorithm behind the vendor libraries'
// hand-tuned 3x3 kernels (clDNN, cuDNN), and the reason the fitted baseline
// profiles in internal/baselines can exceed 1.0 "efficiency" against
// direct-convolution flop counting.
//
// Y = Aᵀ [ (G g Gᵀ) ⊙ (Bᵀ d B) ] A   per 4x4 input tile.
func Conv2DWinograd(in, weight, bias *tensor.Tensor, w ConvWorkload) *tensor.Tensor {
	if w.KH != 3 || w.KW != 3 || w.StrideH != 1 || w.StrideW != 1 || w.Groups > 1 {
		panic("ops: Winograd F(2x2,3x3) requires a dense 3x3 stride-1 convolution")
	}
	oh, ow := w.OutH(), w.OutW()
	out := tensor.New(w.N, w.COut, oh, ow)

	// Pre-transform all filters: U[co][ci] = G g Gᵀ (4x4).
	type m4 = [4][4]float32
	U := make([][]m4, w.COut)
	for co := 0; co < w.COut; co++ {
		U[co] = make([]m4, w.CIn)
		for ci := 0; ci < w.CIn; ci++ {
			var g [3][3]float32
			for y := 0; y < 3; y++ {
				for x := 0; x < 3; x++ {
					g[y][x] = weight.At(co, ci, y, x)
				}
			}
			U[co][ci] = filterTransform(g)
		}
	}

	tilesY := (oh + 1) / 2
	tilesX := (ow + 1) / 2
	parallelFor(w.N*w.COut, func(job int) {
		n := job / w.COut
		co := job % w.COut
		var b float32
		if bias != nil {
			b = bias.Data()[co]
		}
		for ty := 0; ty < tilesY; ty++ {
			for tx := 0; tx < tilesX; tx++ {
				// Accumulate in the transform domain across input channels.
				var acc m4
				for ci := 0; ci < w.CIn; ci++ {
					var d m4
					for y := 0; y < 4; y++ {
						iy := ty*2 - w.PadH + y
						for x := 0; x < 4; x++ {
							ix := tx*2 - w.PadW + x
							if iy >= 0 && iy < w.H && ix >= 0 && ix < w.W {
								d[y][x] = in.At(n, ci, iy, ix)
							}
						}
					}
					v := dataTransform(d)
					u := U[co][ci]
					for y := 0; y < 4; y++ {
						for x := 0; x < 4; x++ {
							acc[y][x] += u[y][x] * v[y][x] // the 16 multiplies
						}
					}
				}
				y2 := outputTransform(acc)
				for dy := 0; dy < 2; dy++ {
					oy := ty*2 + dy
					if oy >= oh {
						continue
					}
					for dx := 0; dx < 2; dx++ {
						ox := tx*2 + dx
						if ox >= ow {
							continue
						}
						out.Set(applyActivation(y2[dy][dx]+b, w.FusedActivation), n, co, oy, ox)
					}
				}
			}
		}
	})
	return out
}

// filterTransform computes G g Gᵀ with
// G = [1 0 0; 1/2 1/2 1/2; 1/2 -1/2 1/2; 0 0 1].
func filterTransform(g [3][3]float32) [4][4]float32 {
	var tmp [4][3]float32
	for c := 0; c < 3; c++ {
		g0, g1, g2 := g[0][c], g[1][c], g[2][c]
		tmp[0][c] = g0
		tmp[1][c] = 0.5 * (g0 + g1 + g2)
		tmp[2][c] = 0.5 * (g0 - g1 + g2)
		tmp[3][c] = g2
	}
	var u [4][4]float32
	for r := 0; r < 4; r++ {
		t0, t1, t2 := tmp[r][0], tmp[r][1], tmp[r][2]
		u[r][0] = t0
		u[r][1] = 0.5 * (t0 + t1 + t2)
		u[r][2] = 0.5 * (t0 - t1 + t2)
		u[r][3] = t2
	}
	return u
}

// dataTransform computes Bᵀ d B with
// Bᵀ = [1 0 -1 0; 0 1 1 0; 0 -1 1 0; 0 1 0 -1].
func dataTransform(d [4][4]float32) [4][4]float32 {
	var tmp [4][4]float32
	for c := 0; c < 4; c++ {
		d0, d1, d2, d3 := d[0][c], d[1][c], d[2][c], d[3][c]
		tmp[0][c] = d0 - d2
		tmp[1][c] = d1 + d2
		tmp[2][c] = d2 - d1
		tmp[3][c] = d1 - d3
	}
	var v [4][4]float32
	for r := 0; r < 4; r++ {
		t0, t1, t2, t3 := tmp[r][0], tmp[r][1], tmp[r][2], tmp[r][3]
		v[r][0] = t0 - t2
		v[r][1] = t1 + t2
		v[r][2] = t2 - t1
		v[r][3] = t1 - t3
	}
	return v
}

// outputTransform computes Aᵀ m A with Aᵀ = [1 1 1 0; 0 1 -1 -1].
func outputTransform(m [4][4]float32) [2][2]float32 {
	var tmp [2][4]float32
	for c := 0; c < 4; c++ {
		m0, m1, m2, m3 := m[0][c], m[1][c], m[2][c], m[3][c]
		tmp[0][c] = m0 + m1 + m2
		tmp[1][c] = m1 - m2 - m3
	}
	var y [2][2]float32
	for r := 0; r < 2; r++ {
		t0, t1, t2, t3 := tmp[r][0], tmp[r][1], tmp[r][2], tmp[r][3]
		y[r][0] = t0 + t1 + t2
		y[r][1] = t1 - t2 - t3
	}
	return y
}

// WinogradMultiplyReduction is the multiplication saving of F(2x2,3x3):
// 36 multiplies per 2x2 output tile direct vs 16 in the transform domain.
const WinogradMultiplyReduction = 36.0 / 16.0

// WinogradSupported reports whether the F(2x2,3x3) kernel applies to w.
func WinogradSupported(w ConvWorkload) bool {
	return w.KH == 3 && w.KW == 3 && w.StrideH == 1 && w.StrideW == 1 && w.Groups <= 1
}

// WinogradPackedElems returns the length of the packed transformed-filter
// buffer produced by PackConvWeightsWinograd.
func WinogradPackedElems(w ConvWorkload) int { return w.COut * w.CIn * 16 }

// PackConvWeightsWinograd pre-transforms all 3x3 filters into the Winograd
// domain: U[co][ci] = G g Gᵀ, stored flat at (co*CIn+ci)*16 + y*4 + x.
// Done once at plan time and shared read-only across sessions.
func PackConvWeightsWinograd(weight *tensor.Tensor, w ConvWorkload) []float32 {
	wd := weight.Data()
	packed := make([]float32, WinogradPackedElems(w))
	for co := 0; co < w.COut; co++ {
		for ci := 0; ci < w.CIn; ci++ {
			var g [3][3]float32
			base := (co*w.CIn + ci) * 9
			for y := 0; y < 3; y++ {
				for x := 0; x < 3; x++ {
					g[y][x] = wd[base+y*3+x]
				}
			}
			u := filterTransform(g)
			uBase := (co*w.CIn + ci) * 16
			for y := 0; y < 4; y++ {
				for x := 0; x < 4; x++ {
					packed[uBase+y*4+x] = u[y][x]
				}
			}
		}
	}
	return packed
}

// Conv2DWinogradInto is Conv2DWinograd computing into a caller-provided
// output tensor; it transforms the filters on the fly (allocating) and
// delegates to the packed kernel. Results are bit-identical to
// Conv2DWinograd and agree with the direct kernel to within float32
// rounding of the transform arithmetic (~1e-4 relative; see the golden
// tolerance tests).
func Conv2DWinogradInto(out, in, weight, bias *tensor.Tensor, w ConvWorkload) {
	conv2DWinogradPackedInto(out, in, bias, nil, w, PackConvWeightsWinograd(weight, w), false)
}

// conv2DWinogradPackedInto runs F(2x2,3x3) with pre-transformed filters
// (from PackConvWeightsWinograd) and the full fused epilogue (bias,
// optional residual row rd, activation; see convEpilogue). It allocates
// nothing: all tile state lives in fixed-size stack arrays.
func conv2DWinogradPackedInto(out, in, bias *tensor.Tensor, rd []float32, w ConvWorkload, packedU []float32, postAct bool) {
	if !WinogradSupported(w) {
		panic("ops: Winograd F(2x2,3x3) requires a dense 3x3 stride-1 convolution")
	}
	oh, ow := w.OutH(), w.OutW()
	ind := in.Data()
	od := out.Data()
	var bd []float32
	if bias != nil {
		bd = bias.Data()
	}

	tilesY := (oh + 1) / 2
	tilesX := (ow + 1) / 2
	parallelFor(w.N*w.COut, func(job int) {
		n := job / w.COut
		co := job % w.COut
		var b float32
		if bd != nil {
			b = bd[co]
		}
		for ty := 0; ty < tilesY; ty++ {
			for tx := 0; tx < tilesX; tx++ {
				var acc [4][4]float32
				for ci := 0; ci < w.CIn; ci++ {
					var d [4][4]float32
					iPlane := (n*w.CIn + ci) * w.H * w.W
					for y := 0; y < 4; y++ {
						iy := ty*2 - w.PadH + y
						if iy < 0 || iy >= w.H {
							continue
						}
						iRow := iPlane + iy*w.W
						for x := 0; x < 4; x++ {
							ix := tx*2 - w.PadW + x
							if ix >= 0 && ix < w.W {
								d[y][x] = ind[iRow+ix]
							}
						}
					}
					v := dataTransform(d)
					u := packedU[(co*w.CIn+ci)*16:]
					for y := 0; y < 4; y++ {
						for x := 0; x < 4; x++ {
							acc[y][x] += u[y*4+x] * v[y][x]
						}
					}
				}
				y2 := outputTransform(acc)
				for dy := 0; dy < 2; dy++ {
					oy := ty*2 + dy
					if oy >= oh {
						continue
					}
					oRow := ((n*w.COut+co)*oh + oy) * ow
					for dx := 0; dx < 2; dx++ {
						ox := tx*2 + dx
						if ox >= ow {
							continue
						}
						od[oRow+ox] = convEpilogue(y2[dy][dx]+b, rd, oRow+ox, w.FusedActivation, postAct)
					}
				}
			}
		}
	})
}
