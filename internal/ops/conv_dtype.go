package ops

import "unigpu/internal/tensor"

// Reduced-precision convolution backends. All of them follow the
// accumulate-in-fp32 discipline: fp16 kernels read binary16 storage, widen
// each operand on load, accumulate the reduction in float32, and narrow
// once at the epilogue store; the int8 GEMM accumulates in int32 and
// dequantizes with per-output-channel weight scales at write-out. The
// fused epilogue (bias, residual, activation) is applied in the exact same
// per-element order as the fp32 kernels, so the only error sources are the
// storage narrowings themselves — which is what the per-dtype tolerance
// harness budgets.

// convEpilogueT is convEpilogue with a dtype-tagged residual operand: the
// residual of a quantized conv usually lives in fp16 storage, so it is
// read through the widening accessor.
func convEpilogueT(v float32, res *tensor.Tensor, oi int, a Activation, postAct bool) float32 {
	if res != nil && !postAct {
		v += res.GetF(oi)
	}
	v = applyActivation(v, a)
	if res != nil && postAct {
		v += res.GetF(oi)
	}
	return v
}

// EncodeF16Slice converts a float32 slice to binary16 bits.
func EncodeF16Slice(src []float32) []uint16 {
	dst := make([]uint16, len(src))
	for i, v := range src {
		dst[i] = tensor.F16Encode(v)
	}
	return dst
}

// conv2DDirectF16Into is the boundary-hoisted direct loop over fp16
// storage: fp16 input and weights, fp32 accumulation, dtype-aware store.
func conv2DDirectF16Into(out, in *tensor.Tensor, w16 []uint16, bias, res *tensor.Tensor, w ConvWorkload, postAct bool) {
	oh, ow := w.OutH(), w.OutW()
	g := max(1, w.Groups)
	cinPerG := w.CIn / g
	coutPerG := w.COut / g

	ind := in.Half()
	var bd []float32
	if bias != nil {
		bd = bias.Data()
	}

	parallelFor(w.N*w.COut, func(job int) {
		n := job / w.COut
		co := job % w.COut
		grp := co / coutPerG
		ciBase := grp * cinPerG
		var b float32
		if bd != nil {
			b = bd[co]
		}
		for y := 0; y < oh; y++ {
			iy0 := y*w.StrideH - w.PadH
			ky0, ky1 := clampKernelRange(iy0, w.H, w.KH)
			for x := 0; x < ow; x++ {
				ix0 := x*w.StrideW - w.PadW
				kx0, kx1 := clampKernelRange(ix0, w.W, w.KW)
				sum := b
				for ci := 0; ci < cinPerG; ci++ {
					wBase := ((co * cinPerG) + ci) * w.KH * w.KW
					iBase := (n*w.CIn+ciBase+ci)*w.H*w.W + ix0
					for ky := ky0; ky < ky1; ky++ {
						iRow := iBase + (iy0+ky)*w.W
						wRow := wBase + ky*w.KW
						for kx := kx0; kx < kx1; kx++ {
							sum += tensor.F16Decode(ind[iRow+kx]) * tensor.F16Decode(w16[wRow+kx])
						}
					}
				}
				oi := ((n*w.COut+co)*oh+y)*ow + x
				out.SetF(oi, convEpilogueT(sum, res, oi, w.FusedActivation, postAct))
			}
		}
	})
}

// conv2DDepthwiseF16Into is the depthwise specialization over fp16 storage.
func conv2DDepthwiseF16Into(out, in *tensor.Tensor, w16 []uint16, bias, res *tensor.Tensor, w ConvWorkload, postAct bool) {
	oh, ow := w.OutH(), w.OutW()
	ind := in.Half()
	var bd []float32
	if bias != nil {
		bd = bias.Data()
	}

	parallelFor(w.N*w.COut, func(job int) {
		n := job / w.COut
		c := job % w.COut
		var b float32
		if bd != nil {
			b = bd[c]
		}
		wBase := c * w.KH * w.KW
		iPlane := (n*w.CIn + c) * w.H * w.W
		for y := 0; y < oh; y++ {
			iy0 := y*w.StrideH - w.PadH
			ky0, ky1 := clampKernelRange(iy0, w.H, w.KH)
			for x := 0; x < ow; x++ {
				ix0 := x*w.StrideW - w.PadW
				kx0, kx1 := clampKernelRange(ix0, w.W, w.KW)
				sum := b
				iBase := iPlane + ix0
				for ky := ky0; ky < ky1; ky++ {
					iRow := iBase + (iy0+ky)*w.W
					wRow := wBase + ky*w.KW
					for kx := kx0; kx < kx1; kx++ {
						sum += tensor.F16Decode(ind[iRow+kx]) * tensor.F16Decode(w16[wRow+kx])
					}
				}
				oi := ((n*w.COut+c)*oh+y)*ow + x
				out.SetF(oi, convEpilogueT(sum, res, oi, w.FusedActivation, postAct))
			}
		}
	})
}

// PackConvWeightsGEMMF16 packs OIHW conv weights into the GEMM row-panel
// layout in binary16 storage — the same panel geometry as the fp32 packer,
// at half the bytes. The microkernel widens each A lane on load.
func PackConvWeightsGEMMF16(weight *tensor.Tensor, w ConvWorkload) []uint16 {
	g := max(1, w.Groups)
	cinPerG := w.CIn / g
	coutPerG := w.COut / g
	k := cinPerG * w.KH * w.KW
	mPad := roundUp(coutPerG, gemmMR)

	wd := weight.Data()
	packed := make([]uint16, g*mPad*k)
	for grp := 0; grp < g; grp++ {
		gBase := grp * mPad * k
		for i := 0; i < mPad; i++ {
			panel := i / gemmMR
			lane := i % gemmMR
			if i >= coutPerG {
				continue // zero-padded tail row (binary16 zero is 0x0000)
			}
			co := grp*coutPerG + i
			wBase := co * k
			pBase := gBase + panel*k*gemmMR + lane
			for kk := 0; kk < k; kk++ {
				packed[pBase+kk*gemmMR] = tensor.F16Encode(wd[wBase+kk])
			}
		}
	}
	return packed
}

// im2colPackedF16 fills bp with packed-B im2col panels decoded from an
// fp16 input plane — the fp16→fp32 cast is fused into the packing pass, so
// no separate cast kernel (or buffer) exists on the GEMM path.
func im2colPackedF16(bp []float32, ind []uint16, w ConvWorkload, n, grp int) {
	g := max(1, w.Groups)
	cinPerG := w.CIn / g
	oh, ow := w.OutH(), w.OutW()
	nCols := oh * ow
	k := cinPerG * w.KH * w.KW
	nPanels := (nCols + gemmNR - 1) / gemmNR
	ciBase := grp * cinPerG

	parallelFor(nPanels, func(p int) {
		pBase := p * k * gemmNR
		for j := 0; j < gemmNR; j++ {
			col := p*gemmNR + j
			if col >= nCols {
				for kk := 0; kk < k; kk++ {
					bp[pBase+kk*gemmNR+j] = 0
				}
				continue
			}
			y := col / ow
			x := col % ow
			iy0 := y*w.StrideH - w.PadH
			ix0 := x*w.StrideW - w.PadW
			dst := pBase + j
			for ci := 0; ci < cinPerG; ci++ {
				iPlane := (n*w.CIn+ciBase+ci)*w.H*w.W + ix0
				for ky := 0; ky < w.KH; ky++ {
					iy := iy0 + ky
					rowOK := iy >= 0 && iy < w.H
					iRow := iPlane + iy*w.W
					for kx := 0; kx < w.KW; kx++ {
						var v float32
						if rowOK {
							if ix := ix0 + kx; ix >= 0 && ix < w.W {
								v = tensor.F16Decode(ind[iRow+kx])
							}
						}
						bp[dst] = v
						dst += gemmNR
					}
				}
			}
		}
	})
}

// conv2DGEMMF16Into runs the im2col-GEMM convolution over fp16 storage:
// packedA16 from PackConvWeightsGEMMF16, input decoded into fp32 scratch
// panels during packing, fp32 accumulation, dtype-aware store.
func conv2DGEMMF16Into(out, in, bias, res *tensor.Tensor, w ConvWorkload, packedA16 []uint16, scratch []float32, postAct bool) {
	g := max(1, w.Groups)
	cinPerG := w.CIn / g
	coutPerG := w.COut / g
	k := cinPerG * w.KH * w.KW
	oh, ow := w.OutH(), w.OutW()
	nCols := oh * ow
	mPad := roundUp(coutPerG, gemmMR)

	if need := GEMMScratchElems(w); len(scratch) < need {
		scratch = make([]float32, need)
	}
	ind := in.Half()
	var bd []float32
	if bias != nil {
		bd = bias.Data()
	}

	mBlocks := (coutPerG + gemmMC - 1) / gemmMC
	nBlocks := (nCols + gemmNC - 1) / gemmNC

	for n := 0; n < w.N; n++ {
		for grp := 0; grp < g; grp++ {
			im2colPackedF16(scratch, ind, w, n, grp)
			pa := packedA16[grp*mPad*k : (grp+1)*mPad*k]
			outBase := (n*w.COut + grp*coutPerG) * nCols
			parallelFor(mBlocks*nBlocks, func(job int) {
				mb := job / nBlocks
				nb := job % nBlocks
				i0, i1 := mb*gemmMC, min((mb+1)*gemmMC, coutPerG)
				j0, j1 := nb*gemmNC, min((nb+1)*gemmNC, nCols)
				for i := i0; i < i1; i += gemmMR {
					for j := j0; j < j1; j += gemmNR {
						gemmMicroF16(out, res, pa, scratch, bd, w, grp, coutPerG, k, nCols, outBase, i, j, postAct)
					}
				}
			})
		}
	}
}

// gemmMicroF16 computes one gemmMR x gemmNR tile with fp32 accumulators,
// decoding the fp16 A lanes on load (B panels were decoded at pack time).
func gemmMicroF16(out, res *tensor.Tensor, pa []uint16, pb, bd []float32, w ConvWorkload, grp, coutPerG, k, nCols, outBase, i0, j0 int, postAct bool) {
	var c00, c01, c02, c03 float32
	var c10, c11, c12, c13 float32
	var c20, c21, c22, c23 float32
	var c30, c31, c32, c33 float32
	if bd != nil {
		coBase := grp*coutPerG + i0
		b0 := bd[coBase]
		b1, b2, b3 := b0, b0, b0
		if i0+1 < coutPerG {
			b1 = bd[coBase+1]
		}
		if i0+2 < coutPerG {
			b2 = bd[coBase+2]
		}
		if i0+3 < coutPerG {
			b3 = bd[coBase+3]
		}
		c00, c01, c02, c03 = b0, b0, b0, b0
		c10, c11, c12, c13 = b1, b1, b1, b1
		c20, c21, c22, c23 = b2, b2, b2, b2
		c30, c31, c32, c33 = b3, b3, b3, b3
	}

	ap := pa[(i0/gemmMR)*k*gemmMR:]
	bp := pb[(j0/gemmNR)*k*gemmNR:]
	for kk := 0; kk < k; kk++ {
		a := ap[kk*gemmMR : kk*gemmMR+gemmMR]
		b := bp[kk*gemmNR : kk*gemmNR+gemmNR]
		a0 := tensor.F16Decode(a[0])
		a1 := tensor.F16Decode(a[1])
		a2 := tensor.F16Decode(a[2])
		a3 := tensor.F16Decode(a[3])
		b0, b1, b2, b3 := b[0], b[1], b[2], b[3]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
		c20 += a2 * b0
		c21 += a2 * b1
		c22 += a2 * b2
		c23 += a2 * b3
		c30 += a3 * b0
		c31 += a3 * b1
		c32 += a3 * b2
		c33 += a3 * b3
	}

	mv := coutPerG - i0
	nv := nCols - j0
	act := w.FusedActivation
	writeGemmRowT(out, res, outBase+(i0+0)*nCols+j0, nv, act, postAct, c00, c01, c02, c03)
	if mv > 1 {
		writeGemmRowT(out, res, outBase+(i0+1)*nCols+j0, nv, act, postAct, c10, c11, c12, c13)
	}
	if mv > 2 {
		writeGemmRowT(out, res, outBase+(i0+2)*nCols+j0, nv, act, postAct, c20, c21, c22, c23)
	}
	if mv > 3 {
		writeGemmRowT(out, res, outBase+(i0+3)*nCols+j0, nv, act, postAct, c30, c31, c32, c33)
	}
}

// writeGemmRowT is writeGemmRow with dtype-aware stores and a dtype-tagged
// residual operand.
func writeGemmRowT(out, res *tensor.Tensor, base, nv int, act Activation, postAct bool, v0, v1, v2, v3 float32) {
	out.SetF(base, convEpilogueT(v0, res, base, act, postAct))
	if nv > 1 {
		out.SetF(base+1, convEpilogueT(v1, res, base+1, act, postAct))
	}
	if nv > 2 {
		out.SetF(base+2, convEpilogueT(v2, res, base+2, act, postAct))
	}
	if nv > 3 {
		out.SetF(base+3, convEpilogueT(v3, res, base+3, act, postAct))
	}
}

// PackConvWeightsInt8 packs OIHW conv weights into the GEMM row-panel
// layout quantized to int8 with symmetric per-output-channel scales:
// scales[co] maps channel co's codes back to weight values. Padded tail
// rows are zero with scale 1.
func PackConvWeightsInt8(weight *tensor.Tensor, w ConvWorkload) (packed []int8, scales []float32) {
	g := max(1, w.Groups)
	cinPerG := w.CIn / g
	coutPerG := w.COut / g
	k := cinPerG * w.KH * w.KW
	mPad := roundUp(coutPerG, gemmMR)

	wd := weight.Data()
	scales = make([]float32, w.COut)
	for co := 0; co < w.COut; co++ {
		maxAbs := 0.0
		for kk := 0; kk < k; kk++ {
			v := float64(wd[co*k+kk])
			if v < 0 {
				v = -v
			}
			if v > maxAbs {
				maxAbs = v
			}
		}
		scales[co] = tensor.Int8Scale(maxAbs)
	}

	packed = make([]int8, g*mPad*k)
	for grp := 0; grp < g; grp++ {
		gBase := grp * mPad * k
		for i := 0; i < mPad; i++ {
			panel := i / gemmMR
			lane := i % gemmMR
			if i >= coutPerG {
				continue // zero tail row
			}
			co := grp*coutPerG + i
			wBase := co * k
			pBase := gBase + panel*k*gemmMR + lane
			s := scales[co]
			for kk := 0; kk < k; kk++ {
				packed[pBase+kk*gemmMR] = tensor.QuantizeInt8(wd[wBase+kk], s)
			}
		}
	}
	return packed, scales
}

// im2colPackedInt8 fills bp with packed-B im2col panels of int8 codes read
// straight from the quantized input plane (zero-padding taps are exact:
// the int8 code 0 dequantizes to 0 under any scale).
func im2colPackedInt8(bp []int8, ind []int8, w ConvWorkload, n, grp int) {
	g := max(1, w.Groups)
	cinPerG := w.CIn / g
	oh, ow := w.OutH(), w.OutW()
	nCols := oh * ow
	k := cinPerG * w.KH * w.KW
	nPanels := (nCols + gemmNR - 1) / gemmNR
	ciBase := grp * cinPerG

	parallelFor(nPanels, func(p int) {
		pBase := p * k * gemmNR
		for j := 0; j < gemmNR; j++ {
			col := p*gemmNR + j
			if col >= nCols {
				for kk := 0; kk < k; kk++ {
					bp[pBase+kk*gemmNR+j] = 0
				}
				continue
			}
			y := col / ow
			x := col % ow
			iy0 := y*w.StrideH - w.PadH
			ix0 := x*w.StrideW - w.PadW
			dst := pBase + j
			for ci := 0; ci < cinPerG; ci++ {
				iPlane := (n*w.CIn+ciBase+ci)*w.H*w.W + ix0
				for ky := 0; ky < w.KH; ky++ {
					iy := iy0 + ky
					rowOK := iy >= 0 && iy < w.H
					iRow := iPlane + iy*w.W
					for kx := 0; kx < w.KW; kx++ {
						var v int8
						if rowOK {
							if ix := ix0 + kx; ix >= 0 && ix < w.W {
								v = ind[iRow+kx]
							}
						}
						bp[dst] = v
						dst += gemmNR
					}
				}
			}
		}
	})
}

// conv2DGEMMInt8Into runs the quantized im2col-GEMM convolution: int8
// input codes (per-tensor scale, from calibration) against int8 weight
// panels (per-output-channel scales), int32 accumulation, dequantize +
// bias + residual + activation at the epilogue. The dequantization
// constant of row co is in.Scale() * wscales[co].
func conv2DGEMMInt8Into(out, in, bias, res *tensor.Tensor, w ConvWorkload, packedA []int8, wscales []float32, scratch8 []int8, postAct bool) {
	g := max(1, w.Groups)
	cinPerG := w.CIn / g
	coutPerG := w.COut / g
	k := cinPerG * w.KH * w.KW
	oh, ow := w.OutH(), w.OutW()
	nCols := oh * ow
	mPad := roundUp(coutPerG, gemmMR)

	if need := GEMMScratchElems(w); len(scratch8) < need {
		scratch8 = make([]int8, need)
	}
	ind := in.Int8Data()
	sIn := in.Scale()
	var bd []float32
	if bias != nil {
		bd = bias.Data()
	}

	mBlocks := (coutPerG + gemmMC - 1) / gemmMC
	nBlocks := (nCols + gemmNC - 1) / gemmNC

	for n := 0; n < w.N; n++ {
		for grp := 0; grp < g; grp++ {
			im2colPackedInt8(scratch8, ind, w, n, grp)
			pa := packedA[grp*mPad*k : (grp+1)*mPad*k]
			outBase := (n*w.COut + grp*coutPerG) * nCols
			parallelFor(mBlocks*nBlocks, func(job int) {
				mb := job / nBlocks
				nb := job % nBlocks
				i0, i1 := mb*gemmMC, min((mb+1)*gemmMC, coutPerG)
				j0, j1 := nb*gemmNC, min((nb+1)*gemmNC, nCols)
				for i := i0; i < i1; i += gemmMR {
					for j := j0; j < j1; j += gemmNR {
						gemmMicroInt8(out, res, pa, scratch8, bd, wscales, sIn, w, grp, coutPerG, k, nCols, outBase, i, j, postAct)
					}
				}
			})
		}
	}
}

// gemmMicroInt8 computes one gemmMR x gemmNR tile in int32, then
// dequantizes (row scale = sIn * wscales[co]), adds bias and applies the
// fused epilogue at write-out.
func gemmMicroInt8(out, res *tensor.Tensor, pa, pb []int8, bd, wscales []float32, sIn float32, w ConvWorkload, grp, coutPerG, k, nCols, outBase, i0, j0 int, postAct bool) {
	var c00, c01, c02, c03 int32
	var c10, c11, c12, c13 int32
	var c20, c21, c22, c23 int32
	var c30, c31, c32, c33 int32

	ap := pa[(i0/gemmMR)*k*gemmMR:]
	bp := pb[(j0/gemmNR)*k*gemmNR:]
	for kk := 0; kk < k; kk++ {
		a := ap[kk*gemmMR : kk*gemmMR+gemmMR]
		b := bp[kk*gemmNR : kk*gemmNR+gemmNR]
		a0, a1, a2, a3 := int32(a[0]), int32(a[1]), int32(a[2]), int32(a[3])
		b0, b1, b2, b3 := int32(b[0]), int32(b[1]), int32(b[2]), int32(b[3])
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
		c20 += a2 * b0
		c21 += a2 * b1
		c22 += a2 * b2
		c23 += a2 * b3
		c30 += a3 * b0
		c31 += a3 * b1
		c32 += a3 * b2
		c33 += a3 * b3
	}

	coBase := grp*coutPerG + i0
	mv := coutPerG - i0
	nv := nCols - j0
	act := w.FusedActivation
	row := func(r int, v0, v1, v2, v3 int32) {
		co := coBase + r
		s := sIn * wscales[co]
		var b float32
		if bd != nil {
			b = bd[co]
		}
		base := outBase + (i0+r)*nCols + j0
		writeGemmRowT(out, res, base, nv, act, postAct,
			float32(v0)*s+b, float32(v1)*s+b, float32(v2)*s+b, float32(v3)*s+b)
	}
	row(0, c00, c01, c02, c03)
	if mv > 1 {
		row(1, c10, c11, c12, c13)
	}
	if mv > 2 {
		row(2, c20, c21, c22, c23)
	}
	if mv > 3 {
		row(3, c30, c31, c32, c33)
	}
}
