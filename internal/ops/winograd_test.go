package ops

import (
	"testing"
	"testing/quick"

	"unigpu/internal/tensor"
)

func TestWinogradMatchesDirect(t *testing.T) {
	cases := []ConvWorkload{
		{N: 1, CIn: 4, H: 8, W: 8, COut: 6, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1},
		{N: 2, CIn: 3, H: 7, W: 9, COut: 2, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}, // odd output sizes
		{N: 1, CIn: 8, H: 6, W: 6, COut: 8, KH: 3, KW: 3, StrideH: 1, StrideW: 1},                   // no padding
		{N: 1, CIn: 2, H: 10, W: 10, COut: 3, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, HasBias: true, FusedActivation: ActReLU},
	}
	for _, w := range cases {
		in, weight, bias := randomConvInputs(w, 17)
		want := Conv2D(in, weight, bias, w)
		got := Conv2DWinograd(in, weight, bias, w)
		if !tensor.AllClose(got, want, 1e-4) {
			t.Errorf("%s: Winograd diverges from direct conv (max diff %g)",
				w.Key(), tensor.MaxAbsDiff(got, want))
		}
	}
}

func TestWinogradRejectsUnsupported(t *testing.T) {
	bad := []ConvWorkload{
		{N: 1, CIn: 2, H: 8, W: 8, COut: 2, KH: 5, KW: 5, StrideH: 1, StrideW: 1, PadH: 2, PadW: 2},
		{N: 1, CIn: 2, H: 8, W: 8, COut: 2, KH: 3, KW: 3, StrideH: 2, StrideW: 2, PadH: 1, PadW: 1},
		{N: 1, CIn: 2, H: 8, W: 8, COut: 2, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, Groups: 2},
	}
	for _, w := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: Winograd should reject this workload", w.Key())
				}
			}()
			in, weight, _ := randomConvInputs(w, 1)
			Conv2DWinograd(in, weight, nil, w)
		}()
	}
}

func TestWinogradTransformIdentity(t *testing.T) {
	// A delta filter (identity kernel) must pass the input through.
	w := ConvWorkload{N: 1, CIn: 1, H: 6, W: 6, COut: 1, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	in := tensor.New(1, 1, 6, 6)
	in.FillRandom(9)
	weight := tensor.New(1, 1, 3, 3)
	weight.Set(1, 0, 0, 1, 1) // center tap
	got := Conv2DWinograd(in, weight, nil, w)
	if !tensor.AllClose(got, in, 1e-5) {
		t.Fatalf("identity kernel should reproduce input, diff %g", tensor.MaxAbsDiff(got, in))
	}
}

func TestPropertyWinogradEqualsDirect(t *testing.T) {
	f := func(seed int64) bool {
		w := ConvWorkload{N: 1, CIn: 3, H: 9, W: 7, COut: 4, KH: 3, KW: 3,
			StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
		in, weight, _ := randomConvInputs(w, seed)
		return tensor.AllClose(Conv2DWinograd(in, weight, nil, w), Conv2D(in, weight, nil, w), 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestWinogradReductionConstant(t *testing.T) {
	if WinogradMultiplyReduction != 2.25 {
		t.Fatalf("F(2x2,3x3) saves 36/16 = 2.25x multiplies, got %v", WinogradMultiplyReduction)
	}
}
