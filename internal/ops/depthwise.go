package ops

import "unigpu/internal/tensor"

// Conv2DDepthwise computes a depthwise convolution (Groups == CIn == COut),
// one filter per channel. It avoids the grouped general path's per-group
// channel arithmetic entirely: each (n, c) job reads one input plane and one
// KHxKW filter.
func Conv2DDepthwise(in, weight, bias *tensor.Tensor, w ConvWorkload) *tensor.Tensor {
	out := tensor.New(w.N, w.COut, w.OutH(), w.OutW())
	Conv2DDepthwiseInto(out, in, weight, bias, w)
	return out
}

// Conv2DDepthwiseInto is Conv2DDepthwise computing into a caller-provided
// (N, COut, OutH, OutW) tensor. Taps accumulate in ascending (ky, kx) order
// with the bias as the initial value, so results are bit-identical to the
// direct kernel.
func Conv2DDepthwiseInto(out, in, weight, bias *tensor.Tensor, w ConvWorkload) {
	conv2DDepthwiseInto(out, in, weight, bias, nil, w, false)
}

// conv2DDepthwiseInto is the depthwise kernel with the full fused epilogue
// (bias, optional residual row, activation); see convEpilogue.
func conv2DDepthwiseInto(out, in, weight, bias *tensor.Tensor, rd []float32, w ConvWorkload, postAct bool) {
	oh, ow := w.OutH(), w.OutW()
	ind := in.Data()
	wd := weight.Data()
	od := out.Data()
	var bd []float32
	if bias != nil {
		bd = bias.Data()
	}

	parallelFor(w.N*w.COut, func(job int) {
		n := job / w.COut
		c := job % w.COut
		var b float32
		if bd != nil {
			b = bd[c]
		}
		wBase := c * w.KH * w.KW
		iPlane := (n*w.CIn + c) * w.H * w.W
		for y := 0; y < oh; y++ {
			iy0 := y*w.StrideH - w.PadH
			ky0, ky1 := clampKernelRange(iy0, w.H, w.KH)
			for x := 0; x < ow; x++ {
				ix0 := x*w.StrideW - w.PadW
				kx0, kx1 := clampKernelRange(ix0, w.W, w.KW)
				sum := b
				iBase := iPlane + ix0
				for ky := ky0; ky < ky1; ky++ {
					iRow := iBase + (iy0+ky)*w.W
					wRow := wBase + ky*w.KW
					for kx := kx0; kx < kx1; kx++ {
						sum += ind[iRow+kx] * wd[wRow+kx]
					}
				}
				oi := ((n*w.COut+c)*oh+y)*ow + x
				od[oi] = convEpilogue(sum, rd, oi, w.FusedActivation, postAct)
			}
		}
	})
}
