package ops

import (
	"fmt"
	"testing"

	"unigpu/internal/tensor"
)

// zooConvWorkloads are representative conv shapes from the model zoo
// (batch 1, NCHW). Names are stable so BENCH_runtime.json tracks each
// (workload, kernel) pair's trajectory across commits.
var zooConvWorkloads = []struct {
	name string
	w    ConvWorkload
}{
	{"resnet50_c64_56x56_3x3s1", ConvWorkload{N: 1, CIn: 64, COut: 64, H: 56, W: 56,
		KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, HasBias: true, FusedActivation: ActReLU}},
	{"resnet50_c256_14x14_3x3s1", ConvWorkload{N: 1, CIn: 256, COut: 256, H: 14, W: 14,
		KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, HasBias: true, FusedActivation: ActReLU}},
	{"yolov3_c128_52x52_3x3s1", ConvWorkload{N: 1, CIn: 128, COut: 128, H: 52, W: 52,
		KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, HasBias: true, FusedActivation: ActLeakyReLU}},
	{"mobilenet_c128_28x28_dw3x3s1", ConvWorkload{N: 1, CIn: 128, COut: 128, H: 28, W: 28,
		KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, Groups: 128, HasBias: true, FusedActivation: ActReLU}},
	{"mobilenet_c128_28x28_1x1s1", ConvWorkload{N: 1, CIn: 128, COut: 256, H: 28, W: 28,
		KH: 1, KW: 1, StrideH: 1, StrideW: 1, HasBias: true, FusedActivation: ActReLU}},
	{"squeezenet_c3_111x111_7x7s2", ConvWorkload{N: 1, CIn: 3, COut: 64, H: 111, W: 111,
		KH: 7, KW: 7, StrideH: 2, StrideW: 2, PadH: 3, PadW: 3, HasBias: true, FusedActivation: ActReLU}},
}

// BenchmarkConvKernels measures every applicable algorithm on every zoo
// workload: direct (hoisted bounds), the blocked-layout packed kernel,
// depthwise, Winograd, and im2col-GEMM (prepacked weights + reused
// scratch, as the runtime runs it). The im2col-GEMM rows are the
// acceptance check: they must beat direct on the 3x3 stride-1 workloads.
func BenchmarkConvKernels(b *testing.B) {
	for _, tc := range zooConvWorkloads {
		w := tc.w
		in, weight, bias := convInputs(w, 11)
		out := tensor.New(w.N, w.COut, w.OutH(), w.OutW())

		for _, k := range ConvKernels {
			if !KernelSupported(k, w) {
				continue
			}
			p := PrepareConv(w, k, weight)
			scratch := make([]float32, p.ScratchElems())
			b.Run(tc.name+"/"+k.String(), func(b *testing.B) {
				b.ReportMetric(w.FLOPs(), "flops")
				for i := 0; i < b.N; i++ {
					p.RunInto(out, in, bias, scratch)
				}
			})
		}

		// Per-dtype rows: the same workload over fp16 and int8 storage
		// (fp32 accumulation), input conversion and weight packing outside
		// the timed loop as the runtime runs them. Winograd is fp32-only,
		// int8 is GEMM-only, so each dtype benches its selected kernel.
		for _, dt := range []tensor.DType{tensor.Float16, tensor.Int8} {
			p := PrepareConvDType(w, KernelAuto, weight, dt)
			scratch := make([]float32, p.ScratchElems())
			var scratch8 []int8
			if p.ScratchDType() == tensor.Int8 {
				scratch8 = make([]int8, p.ScratchElems())
			}
			tin := tensor.Convert(in, dt, 0)
			tout := tensor.NewTyped(tensor.Float16, w.N, w.COut, w.OutH(), w.OutW())
			b.Run(tc.name+"/"+p.Kernel().String()+"@"+dt.String(), func(b *testing.B) {
				b.ReportMetric(w.FLOPs(), "flops")
				for i := 0; i < b.N; i++ {
					p.RunIntoEpilogue(tout, tin, bias, nil, scratch, scratch8, false)
				}
			})
		}

		// The blocked-NCHW[x]c packed kernel needs converted operands;
		// conversion happens outside the timed loop (it is a plan-time
		// layout decision, like GEMM prepacking).
		if max(1, w.Groups) == 1 {
			const block = 4
			layout := tensor.Layout(fmt.Sprintf("NCHW%dc", block))
			packedIn := tensor.ConvertNCHW(in, "NCHW", layout, w.N, w.CIn, w.H, w.W)
			packedW := tensor.ConvertOIHW(weight, block)
			b.Run(tc.name+"/packed", func(b *testing.B) {
				b.ReportMetric(w.FLOPs(), "flops")
				for i := 0; i < b.N; i++ {
					Conv2DPacked(packedIn, packedW, bias, w, block)
				}
			})
		}
	}
}
