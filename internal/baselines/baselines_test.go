package baselines

import (
	"testing"

	"unigpu/internal/models"
	"unigpu/internal/ops"
	"unigpu/internal/sim"
)

func TestClassify(t *testing.T) {
	cases := []struct {
		w    ops.ConvWorkload
		want Class
	}{
		{ops.ConvWorkload{CIn: 64, H: 14, W: 14, COut: 64, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}, Conv3x3},
		{ops.ConvWorkload{CIn: 64, H: 56, W: 56, COut: 64, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}, Conv3x3Big},
		{ops.ConvWorkload{CIn: 64, H: 14, W: 14, COut: 256, KH: 1, KW: 1, StrideH: 1, StrideW: 1}, Conv1x1},
		{ops.ConvWorkload{CIn: 3, H: 224, W: 224, COut: 64, KH: 7, KW: 7, StrideH: 2, StrideW: 2, PadH: 3, PadW: 3}, ConvLarge},
		{ops.ConvWorkload{CIn: 32, H: 28, W: 28, COut: 32, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, Groups: 32}, Depthwise},
		{ops.ConvWorkload{CIn: 512, H: 1, W: 1, COut: 1000, KH: 1, KW: 1, StrideH: 1, StrideW: 1}, DenseFC},
	}
	for _, c := range cases {
		if got := Classify(c.w); got != c.want {
			t.Errorf("Classify(%s) = %v, want %v", c.w.Key(), got, c.want)
		}
	}
}

func TestForPlatform(t *testing.T) {
	if ForPlatform(sim.DeepLens) != OpenVINO ||
		ForPlatform(sim.AiSage) != ACL ||
		ForPlatform(sim.JetsonNano) != CuDNN {
		t.Fatal("platform-to-vendor mapping wrong (§4.1)")
	}
}

func TestOpenVINOCoverageGap(t *testing.T) {
	cls := models.Build("ResNet50_v1", 224, true)
	det := models.Build("SSD_ResNet50", 128, true)
	if !OpenVINO.Supports(cls) {
		t.Fatal("OpenVINO supports classification models")
	}
	if OpenVINO.Supports(det) {
		t.Fatal("OpenVINO must not support the detection models (Table 1's dashes)")
	}
	if _, ok := OpenVINO.ModelMs(det); ok {
		t.Fatal("ModelMs must report the coverage gap")
	}
	if !ACL.Supports(det) || !CuDNN.Supports(det) {
		t.Fatal("ACL and cuDNN cover detection (via framework paths)")
	}
}

func TestBaselineLatencyPositiveAndOrdered(t *testing.T) {
	small := models.Build("SqueezeNet1.0", 224, true)
	big := models.Build("ResNet50_v1", 224, true)
	for _, pr := range []*Profile{OpenVINO, ACL, CuDNN} {
		s, ok := pr.ModelMs(small)
		if !ok || s <= 0 {
			t.Fatalf("%s: bad SqueezeNet latency %v", pr.Name, s)
		}
		b, _ := pr.ModelMs(big)
		if b <= s {
			t.Errorf("%s: ResNet50 (%.1f ms) should cost more than SqueezeNet (%.1f ms)", pr.Name, b, s)
		}
	}
}

func TestDetectionBaselinesIncludeCPUVisionTail(t *testing.T) {
	det := models.Build("SSD_MobileNet1.0", 512, true)
	for _, pr := range []*Profile{ACL, CuDNN} {
		if v := pr.VisionMs(det); v <= 0 {
			t.Errorf("%s: detection baseline must pay a CPU NMS tail, got %v", pr.Name, v)
		}
	}
	cls := models.Build("MobileNet1.0", 224, true)
	if ACL.VisionMs(cls) != 0 {
		t.Error("classification models have no vision tail")
	}
}

func TestProfilesMatchPaperBaselinesWithin15Pct(t *testing.T) {
	// The fitted profiles should land near the published baseline numbers
	// they were calibrated to.
	targets := []struct {
		pr    *Profile
		model string
		size  int
		want  float64
	}{
		{OpenVINO, "ResNet50_v1", 224, 203.60},
		{OpenVINO, "SqueezeNet1.0", 224, 42.01},
		{ACL, "ResNet50_v1", 224, 358.17},
		{ACL, "MobileNet1.0", 224, 95.00},
		{CuDNN, "ResNet50_v1", 224, 117.22},
		{CuDNN, "SqueezeNet1.0", 224, 42.98},
	}
	for _, c := range targets {
		m := models.Build(c.model, c.size, true)
		got, ok := c.pr.ModelMs(m)
		if !ok {
			t.Fatalf("%s should support %s", c.pr.Name, c.model)
		}
		if got < c.want*0.80 || got > c.want*1.20 {
			t.Errorf("%s %s: %.1f ms vs paper %.1f ms (outside 20%%)", c.pr.Name, c.model, got, c.want)
		}
	}
}
