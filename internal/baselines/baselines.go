// Package baselines models the vendor-library comparison points of §4:
// Intel OpenVINO/clDNN on DeepLens, ARM Compute Library on aiSage, and
// cuDNN (via MXNet) on Jetson Nano.
//
// The real libraries are closed binaries for hardware Go cannot drive, so
// each is substituted by a performance profile: a per-operator-class
// efficiency table expressing how well that vendor's hand-written kernels
// cover each workload class on its device, calibrated against the paper's
// own baseline measurements (Tables 1-3). Coverage gaps are reproduced
// faithfully: OpenVINO supports only the image-classification models. The
// profile preserves exactly what the comparison needs — who wins, by what
// factor, and where coverage ends — which is the paper's claim under test.
package baselines

import (
	"unigpu/internal/models"
	"unigpu/internal/ops"
	"unigpu/internal/sim"
	"unigpu/internal/vision"
)

// Class buckets conv workloads the way vendor kernel libraries do.
type Class int

const (
	Conv3x3    Class = iota
	Conv3x3Big       // 3x3 on large feature maps (detection backbones)
	Conv1x1
	ConvLarge // 5x5, 7x7 stems
	Depthwise
	DenseFC
	NumClasses
)

// Classify maps a workload to its vendor-kernel class.
func Classify(w ops.ConvWorkload) Class {
	switch {
	case w.IsDepthwise():
		return Depthwise
	case w.H == 1 && w.W == 1:
		return DenseFC
	case w.Is1x1():
		return Conv1x1
	case w.KH >= 5:
		return ConvLarge
	case w.OutH() >= 32:
		return Conv3x3Big
	default:
		return Conv3x3
	}
}

// Profile is one vendor library on one device.
type Profile struct {
	Name              string
	Device            *sim.Device
	CPU               *sim.Device
	SupportsDetection bool
	// LaunchUs is the per-kernel dispatch cost of the vendor inference
	// pipeline. The engines pre-compile and pre-enqueue their graphs, so
	// this is far below the JIT-compiled OpenCL dispatch path.
	LaunchUs float64
	// eff is the achieved fraction of the device's BaseEfficiency-adjusted
	// peak per workload class. Calibrated from the paper's Tables 1-3.
	eff map[Class]float64
	// visionOnCPU: the framework executes NMS/decode on the CPU (the MXNet
	// + cuDNN and ACL paths); OpenVINO simply lacks the models.
	visionOnCPU bool
}

// OpenVINO models Intel's inference toolkit on DeepLens: strong on the
// stem-heavy classification nets (clDNN's hand-tuned kernels), with no
// object-detection support for the GluonCV models (Table 1's dashes).
var OpenVINO = &Profile{
	Name: "OpenVINO", Device: sim.IntelHD505, CPU: sim.AtomE3930,
	SupportsDetection: false, LaunchUs: 30,
	// Fitted to Table 1: clDNN's Winograd 3x3 kernels beat direct-conv
	// flop counting — eff > 1 corresponds to the F(2x2,3x3) multiply
	// reduction demonstrated by ops.Conv2DWinograd — while its depthwise
	// coverage is weak.
	eff: map[Class]float64{
		Conv3x3: 5.9, Conv3x3Big: 0.93, Conv1x1: 0.71, ConvLarge: 0.73,
		Depthwise: 0.084, DenseFC: 5.9,
	},
	visionOnCPU: true,
}

// ACL models the ARM Compute Library (v19.02) path on aiSage, reached by
// hand-registering operators (§4.1): good direct conv kernels, weaker
// depthwise and 1x1 coverage on Midgard.
var ACL = &Profile{
	Name: "ACL", Device: sim.MaliT860, CPU: sim.RK3399CPU,
	SupportsDetection: true, LaunchUs: 60,
	// Fitted to Table 2.
	eff: map[Class]float64{
		Conv3x3: 5.36, Conv3x3Big: 1.34, Conv1x1: 0.72, ConvLarge: 0.55,
		Depthwise: 0.080, DenseFC: 0.094,
	},
	visionOnCPU: true,
}

// CuDNN models MXNet v1.4 + cuDNN v7 on Jetson Nano: excellent 3x3
// coverage, but the edge-oriented 1x1/depthwise workloads of MobileNet and
// SqueezeNet are not where cuDNN's kernels shine (§4.2's observation).
var CuDNN = &Profile{
	Name: "cuDNN", Device: sim.MaxwellNano, CPU: sim.CortexA57,
	SupportsDetection: true, LaunchUs: 20,
	// Fitted to Table 3: strong large-map 3x3 coverage, weaker on the
	// edge-oriented small workloads (§4.2's observation).
	eff: map[Class]float64{
		Conv3x3: 0.68, Conv3x3Big: 1.87, Conv1x1: 1.52, ConvLarge: 0.33,
		Depthwise: 0.05, DenseFC: 0.05,
	},
	visionOnCPU: true,
}

// ForPlatform returns the vendor baseline used on each platform in §4.1.
func ForPlatform(p *sim.Platform) *Profile {
	switch p {
	case sim.DeepLens:
		return OpenVINO
	case sim.AiSage:
		return ACL
	default:
		return CuDNN
	}
}

// Supports reports whether the vendor stack can run the model at all.
func (pr *Profile) Supports(m *models.Model) bool {
	return !m.IsDetection() || pr.SupportsDetection
}

// ConvMs prices the model's convolutions under the vendor profile. The
// profile is compute-only: a vendor kernel's memory behaviour is folded
// into its fitted class efficiency.
func (pr *Profile) ConvMs(m *models.Model) float64 {
	var total float64
	d := pr.Device
	for _, w := range m.Convs {
		e := pr.eff[Classify(w)]
		total += (w.FLOPs()/(d.PeakGFLOPs*1e9*d.BaseEfficiency*e) + pr.LaunchUs*1e-6) * 1e3
	}
	return total
}

// VisionMs prices the detection tail: these frameworks run sorting and NMS
// on the companion CPU (there is no vendor GPU implementation, §2.2).
func (pr *Profile) VisionMs(m *models.Model) float64 {
	if !m.IsDetection() {
		return 0
	}
	v := m.Vision
	nms := vision.CPUNMSCost(pr.CPU, v.Boxes, v.Kept)
	copyCost := sim.CopyCost(&sim.Platform{GPU: pr.Device, CPU: pr.CPU}, float64(v.Boxes*6*4)) * 2
	return (nms + copyCost) * 1e3
}

// ModelMs is the vendor baseline's end-to-end latency; ok=false when the
// model is unsupported (Table 1's "—").
func (pr *Profile) ModelMs(m *models.Model) (float64, bool) {
	if !pr.Supports(m) {
		return 0, false
	}
	return pr.ConvMs(m) + pr.VisionMs(m), true
}
