package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestShapeNumElements(t *testing.T) {
	cases := []struct {
		s    Shape
		want int
	}{
		{Shape{}, 1},
		{Shape{3}, 3},
		{Shape{2, 3, 4}, 24},
		{Shape{1, 1, 1, 1}, 1},
	}
	for _, c := range cases {
		if got := c.s.NumElements(); got != c.want {
			t.Errorf("NumElements(%v) = %d, want %d", c.s, got, c.want)
		}
	}
}

func TestShapeEqualAndClone(t *testing.T) {
	a := Shape{2, 3}
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone should equal original")
	}
	b[0] = 9
	if a.Equal(b) {
		t.Fatal("mutated clone should differ")
	}
	if a.Equal(Shape{2, 3, 1}) {
		t.Fatal("different ranks must not be equal")
	}
}

func TestStridesRowMajor(t *testing.T) {
	st := Shape{2, 3, 4}.Strides()
	want := []int{12, 4, 1}
	for i := range want {
		if st[i] != want[i] {
			t.Fatalf("strides = %v, want %v", st, want)
		}
	}
}

func TestAtSetOffset(t *testing.T) {
	tt := New(2, 3, 4)
	tt.Set(7.5, 1, 2, 3)
	if got := tt.At(1, 2, 3); got != 7.5 {
		t.Fatalf("At = %v, want 7.5", got)
	}
	if off := tt.Offset(1, 2, 3); off != 23 {
		t.Fatalf("Offset = %d, want 23", off)
	}
	if tt.Data()[23] != 7.5 {
		t.Fatal("backing buffer not updated")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range index")
		}
	}()
	New(2, 2).At(2, 0)
}

func TestWrongRankPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on wrong index rank")
		}
	}()
	New(2, 2).At(1)
}

func TestFromDataLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	FromData(make([]float32, 5), 2, 3)
}

func TestReshapeSharesBuffer(t *testing.T) {
	a := New(2, 6)
	b := a.Reshape(3, 4)
	b.Set(1.5, 2, 3)
	if a.At(1, 5) != 1.5 {
		t.Fatal("reshape must share the backing buffer")
	}
}

func TestReshapeBadSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, 3).Reshape(5)
}

func TestCloneIndependence(t *testing.T) {
	a := New(4)
	a.Fill(2)
	b := a.Clone()
	b.Set(9, 0)
	if a.At(0) != 2 {
		t.Fatal("clone must not alias original")
	}
}

func TestFillRandomDeterministic(t *testing.T) {
	a, b := New(100), New(100)
	a.FillRandom(42)
	b.FillRandom(42)
	if !AllClose(a, b, 0) {
		t.Fatal("same seed must give identical contents")
	}
	c := New(100)
	c.FillRandom(43)
	if AllClose(a, c, 0) {
		t.Fatal("different seeds should differ")
	}
	for _, v := range a.Data() {
		if v < -1 || v >= 1 {
			t.Fatalf("value %v outside [-1,1)", v)
		}
	}
}

func TestMaxAbsDiff(t *testing.T) {
	a, b := New(3), New(3)
	a.Data()[1] = 1
	b.Data()[1] = 1.1
	d := MaxAbsDiff(a, b)
	if math.Abs(d-0.1/1.1) > 1e-6 {
		t.Fatalf("MaxAbsDiff = %v", d)
	}
	if !math.IsInf(MaxAbsDiff(New(2), New(3)), 1) {
		t.Fatal("shape mismatch must be +Inf")
	}
}

func TestLayoutParse(t *testing.T) {
	axes := Layout("NCHW8c").Parse()
	if len(axes) != 5 || axes[4].Name != 'c' || axes[4].Block != 8 {
		t.Fatalf("parse NCHW8c = %+v", axes)
	}
	if Layout("NCHW16c").BlockOf('C') != 16 {
		t.Fatal("BlockOf C should be 16")
	}
	if Layout("NCHW").BlockOf('C') != 0 {
		t.Fatal("unblocked layout should report 0")
	}
	if Layout("OIHW4o").BlockOf('O') != 4 {
		t.Fatal("BlockOf O should be 4")
	}
}

func TestLayoutMalformedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Layout("NC4").Parse()
}

func TestNCHWShape(t *testing.T) {
	if got := Layout("NCHW").NCHWShape(1, 3, 8, 8); !got.Equal(Shape{1, 3, 8, 8}) {
		t.Fatalf("NCHW shape = %v", got)
	}
	if got := Layout("NHWC").NCHWShape(1, 3, 8, 8); !got.Equal(Shape{1, 8, 8, 3}) {
		t.Fatalf("NHWC shape = %v", got)
	}
	// 5 channels blocked by 4 pads to 2 blocks.
	if got := Layout("NCHW4c").NCHWShape(1, 5, 8, 8); !got.Equal(Shape{1, 2, 8, 8, 4}) {
		t.Fatalf("NCHW4c shape = %v", got)
	}
}

func TestConvertNCHWRoundTrip(t *testing.T) {
	layouts := []Layout{"NCHW", "NHWC", "NCHW4c", "NCHW8c"}
	n, c, h, w := 2, 6, 5, 7
	src := New(n, c, h, w)
	src.FillRandom(1)
	for _, from := range layouts {
		a := ConvertNCHW(src, "NCHW", from, n, c, h, w)
		for _, to := range layouts {
			b := ConvertNCHW(a, from, to, n, c, h, w)
			back := ConvertNCHW(b, to, "NCHW", n, c, h, w)
			if !AllClose(src, back, 0) {
				t.Fatalf("round trip NCHW->%s->%s->NCHW lost data", from, to)
			}
		}
	}
}

func TestConvertSameLayoutClones(t *testing.T) {
	src := New(1, 2, 3, 3)
	src.FillRandom(2)
	dst := ConvertNCHW(src, "NCHW", "NCHW", 1, 2, 3, 3)
	dst.Set(99, 0, 0, 0, 0)
	if src.At(0, 0, 0, 0) == 99 {
		t.Fatal("same-layout convert must clone, not alias")
	}
}

func TestConvertOIHW(t *testing.T) {
	w := New(5, 3, 3, 3)
	w.FillRandom(3)
	b := ConvertOIHW(w, 4)
	if !b.Shape().Equal(Shape{2, 3, 3, 3, 4}) {
		t.Fatalf("blocked shape = %v", b.Shape())
	}
	for o := 0; o < 5; o++ {
		if b.At(o/4, 1, 2, 0, o%4) != w.At(o, 1, 2, 0) {
			t.Fatalf("element mismatch at o=%d", o)
		}
	}
	// Padding lanes are zero.
	for i := 0; i < 3; i++ {
		if b.At(1, i, 0, 0, 3) != 0 {
			t.Fatal("padding lanes should be zero")
		}
	}
}

func TestTransformCost(t *testing.T) {
	if TransformCost("NCHW", "NCHW", 1, 3, 8, 8) != 0 {
		t.Fatal("same layout should be free")
	}
	c := TransformCost("NCHW", "NCHW4c", 1, 5, 8, 8)
	// 5*64 reads + padded 2*4*64 writes.
	if c != 5*64+8*64 {
		t.Fatalf("TransformCost = %d", c)
	}
}

func TestPropertyConvertPreservesValues(t *testing.T) {
	f := func(seed int64) bool {
		n, c, h, w := 1, 3+int(uint(seed)%5), 4, 4
		src := New(n, c, h, w)
		src.FillRandom(seed)
		blocked := ConvertNCHW(src, "NCHW", "NCHW4c", n, c, h, w)
		back := ConvertNCHW(blocked, "NCHW4c", "NCHW", n, c, h, w)
		return AllClose(src, back, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
