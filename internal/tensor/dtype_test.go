package tensor_test

import (
	"math"
	"testing"

	"unigpu/internal/tensor"
)

// TestF16RoundTripEdgeCases pins the binary16 conversion on the IEEE 754
// edge cases: signed zero, subnormal boundaries, the largest finite
// half, overflow to infinity, and round-to-nearest-even ties.
func TestF16RoundTripEdgeCases(t *testing.T) {
	cases := []struct {
		in   float32
		bits uint16
	}{
		{0, 0x0000},
		{float32(math.Copysign(0, -1)), 0x8000},
		{1, 0x3C00},
		{-2, 0xC000},
		{65504, 0x7BFF},             // largest finite half
		{65536, 0x7C00},             // overflow -> +inf
		{-1e9, 0xFC00},              // overflow -> -inf
		{5.9604645e-8, 0x0001},      // smallest subnormal
		{6.097555e-5, 0x03FF},       // largest subnormal
		{6.1035156e-5, 0x0400},      // smallest normal
		{2.9802322e-8, 0x0000},      // half of smallest subnormal: RNE ties to even (zero)
		{8.940697e-8, 0x0002},       // 1.5x smallest subnormal: ties to even (2)
		{1.00048828125, 0x3C00},     // 1 + half-ulp: RNE tie to even
		{1.0004884, 0x3C01},         // just above the tie: rounds up
		{float32(math.Inf(1)), 0x7C00},
		{float32(math.Inf(-1)), 0xFC00},
	}
	for _, tc := range cases {
		if got := tensor.F16Encode(tc.in); got != tc.bits {
			t.Errorf("F16Encode(%g) = %#04x, want %#04x", tc.in, got, tc.bits)
		}
	}
	// NaN must stay NaN.
	if v := tensor.F16Decode(tensor.F16Encode(float32(math.NaN()))); !math.IsNaN(float64(v)) {
		t.Errorf("NaN round-trip produced %g", v)
	}
	// Every representable half value must round-trip exactly through fp32.
	for bits := 0; bits < 1<<16; bits++ {
		v := tensor.F16Decode(uint16(bits))
		if math.IsNaN(float64(v)) {
			continue
		}
		if back := tensor.F16Encode(v); back != uint16(bits) {
			t.Fatalf("half %#04x decodes to %g which re-encodes to %#04x", bits, v, back)
		}
	}
}

// TestQuantizeInt8 pins the symmetric quantizer: saturation at +-127,
// round-to-nearest-even, zero preserved exactly, degenerate scales safe.
func TestQuantizeInt8(t *testing.T) {
	s := tensor.Int8Scale(127) // scale 1
	if s != 1 {
		t.Fatalf("Int8Scale(127) = %g, want 1", s)
	}
	cases := []struct {
		v    float32
		want int8
	}{
		{0, 0}, {1, 1}, {-1, -1}, {126.6, 127}, {1000, 127}, {-1000, -127},
		{0.5, 0}, {1.5, 2}, {2.5, 2}, // ties to even
	}
	for _, tc := range cases {
		if got := tensor.QuantizeInt8(tc.v, s); got != tc.want {
			t.Errorf("QuantizeInt8(%g, 1) = %d, want %d", tc.v, got, tc.want)
		}
	}
	if got := tensor.QuantizeInt8(5, 0); got != 0 {
		t.Errorf("zero scale must quantize to code 0, got %d", got)
	}
	if s := tensor.Int8Scale(0); s != 1 {
		t.Errorf("degenerate Int8Scale(0) = %g, want 1", s)
	}
}

// TestConvertAndCopy: fp32 -> fp16 -> fp32 stays within half precision;
// fp32 -> int8 -> fp32 within the quantization step; Copy moves values
// across dtypes without allocating new storage semantics surprises.
func TestConvertAndCopy(t *testing.T) {
	src := tensor.New(2, 3, 4, 4)
	src.FillRandom(11)

	h := tensor.Convert(src, tensor.Float16, 0)
	if h.DType() != tensor.Float16 {
		t.Fatalf("Convert dtype = %v", h.DType())
	}
	for i := 0; i < src.Size(); i++ {
		want := tensor.F16Round(src.GetF(i))
		if got := h.GetF(i); got != want {
			t.Fatalf("elem %d: fp16 %g, want %g", i, got, want)
		}
	}

	q := tensor.Convert(src, tensor.Int8, 0)
	if q.Scale() <= 0 {
		t.Fatalf("int8 convert must derive a positive scale, got %g", q.Scale())
	}
	for i := 0; i < src.Size(); i++ {
		if d := math.Abs(float64(q.GetF(i) - src.GetF(i))); d > float64(q.Scale())/2+1e-7 {
			t.Fatalf("elem %d: int8 error %g exceeds half step %g", i, d, q.Scale()/2)
		}
	}

	// Cross-dtype Copy widens back to fp32.
	back := tensor.New(2, 3, 4, 4)
	tensor.Copy(back, h)
	for i := 0; i < src.Size(); i++ {
		if back.GetF(i) != h.GetF(i) {
			t.Fatalf("Copy fp16->fp32 elem %d: %g vs %g", i, back.GetF(i), h.GetF(i))
		}
	}

	// Same-dtype int8 Copy must carry the scale.
	q2 := tensor.NewTyped(tensor.Int8, 2, 3, 4, 4)
	tensor.Copy(q2, q)
	if q2.Scale() != q.Scale() {
		t.Fatalf("int8 Copy dropped scale: %g vs %g", q2.Scale(), q.Scale())
	}
}

// TestArenaMixed: the mixed arena hands out dtype-segregated slices and
// Bytes() accounts each pool at its element width.
func TestArenaMixed(t *testing.T) {
	a := tensor.NewArenaMixed(100, 60, 40)
	if got, want := a.Bytes(), 4*100+2*60+40; got != want {
		t.Fatalf("Bytes() = %d, want %d", got, want)
	}
	f := a.Alloc(100)
	h := a.Alloc16(60)
	q := a.Alloc8(40)
	if len(f) != 100 || len(h) != 60 || len(q) != 40 {
		t.Fatalf("alloc lengths %d/%d/%d", len(f), len(h), len(q))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("exhausted pool must panic")
		}
	}()
	a.Alloc16(1)
}
