package tensor

import "fmt"

// Arena is a fixed-capacity bump allocator for tensor storage. A compiled
// execution plan sizes one arena up front (static memory planning), carves
// per-buffer slots out of it once, and then reuses the same storage on
// every inference — the steady-state run loop never touches the heap for
// intermediate tensors.
//
// An arena is not safe for concurrent allocation; allocate everything at
// session-build time and only read/write the carved tensors afterwards.
type Arena struct {
	buf []float32
	off int
}

// NewArena allocates an arena holding elems float32 values.
func NewArena(elems int) *Arena {
	return &Arena{buf: make([]float32, elems)}
}

// Alloc carves the next elems values off the arena. The returned slice has
// full capacity equal to its length, so appends never bleed into the
// neighbouring slot. Alloc panics when the arena is exhausted: plans size
// arenas exactly, so running out is a planner bug, never a runtime
// condition to handle.
func (a *Arena) Alloc(elems int) []float32 {
	if a.off+elems > len(a.buf) {
		panic(fmt.Sprintf("tensor: arena exhausted: need %d elements, %d of %d left",
			elems, len(a.buf)-a.off, len(a.buf)))
	}
	s := a.buf[a.off : a.off+elems : a.off+elems]
	a.off += elems
	return s
}

// Reset rewinds the arena so the storage can be carved again. Tensors
// handed out before the reset alias any new allocations.
func (a *Arena) Reset() { a.off = 0 }

// Cap returns the arena capacity in elements.
func (a *Arena) Cap() int { return len(a.buf) }

// Used returns the number of elements allocated so far.
func (a *Arena) Used() int { return a.off }

// Bytes returns the arena capacity in bytes.
func (a *Arena) Bytes() int { return 4 * len(a.buf) }

// NewIn allocates an arena-backed tensor of the given shape: the pooled
// counterpart of New. The tensor's storage lives inside the arena and is
// reused (not zeroed) across arena resets.
func NewIn(a *Arena, shape ...int) *Tensor {
	n := Shape(shape).NumElements()
	return FromData(a.Alloc(n), shape...)
}
