package tensor

import "fmt"

// Arena is a fixed-capacity bump allocator for tensor storage. A compiled
// execution plan sizes one arena up front (static memory planning), carves
// per-buffer slots out of it once, and then reuses the same storage on
// every inference — the steady-state run loop never touches the heap for
// intermediate tensors.
//
// Mixed-precision plans carve from three width-segregated pools (float32,
// binary16, int8) sized independently, so a half-precision slot really
// occupies half the bytes of its fp32 counterpart.
//
// An arena is not safe for concurrent allocation; allocate everything at
// session-build time and only read/write the carved tensors afterwards.
type Arena struct {
	buf   []float32
	off   int
	buf16 []uint16
	off16 int
	buf8  []int8
	off8  int
}

// NewArena allocates an arena holding elems float32 values (no reduced-
// precision pools); the historical fp32-only constructor.
func NewArena(elems int) *Arena {
	return &Arena{buf: make([]float32, elems)}
}

// NewArenaMixed allocates an arena with per-dtype pool capacities in
// elements: e32 float32s, e16 binary16s, e8 int8s.
func NewArenaMixed(e32, e16, e8 int) *Arena {
	a := &Arena{buf: make([]float32, e32)}
	if e16 > 0 {
		a.buf16 = make([]uint16, e16)
	}
	if e8 > 0 {
		a.buf8 = make([]int8, e8)
	}
	return a
}

// Alloc carves the next elems float32 values off the arena. The returned
// slice has full capacity equal to its length, so appends never bleed into
// the neighbouring slot. Alloc panics when the arena is exhausted: plans
// size arenas exactly, so running out is a planner bug, never a runtime
// condition to handle.
func (a *Arena) Alloc(elems int) []float32 {
	if a.off+elems > len(a.buf) {
		panic(fmt.Sprintf("tensor: arena exhausted: need %d elements, %d of %d left",
			elems, len(a.buf)-a.off, len(a.buf)))
	}
	s := a.buf[a.off : a.off+elems : a.off+elems]
	a.off += elems
	return s
}

// Alloc16 carves the next elems binary16 values off the fp16 pool.
func (a *Arena) Alloc16(elems int) []uint16 {
	if a.off16+elems > len(a.buf16) {
		panic(fmt.Sprintf("tensor: fp16 arena pool exhausted: need %d elements, %d of %d left",
			elems, len(a.buf16)-a.off16, len(a.buf16)))
	}
	s := a.buf16[a.off16 : a.off16+elems : a.off16+elems]
	a.off16 += elems
	return s
}

// Alloc8 carves the next elems int8 values off the int8 pool.
func (a *Arena) Alloc8(elems int) []int8 {
	if a.off8+elems > len(a.buf8) {
		panic(fmt.Sprintf("tensor: int8 arena pool exhausted: need %d elements, %d of %d left",
			elems, len(a.buf8)-a.off8, len(a.buf8)))
	}
	s := a.buf8[a.off8 : a.off8+elems : a.off8+elems]
	a.off8 += elems
	return s
}

// Reset rewinds every pool so the storage can be carved again. Tensors
// handed out before the reset alias any new allocations.
func (a *Arena) Reset() { a.off, a.off16, a.off8 = 0, 0, 0 }

// Cap returns the fp32 pool capacity in elements.
func (a *Arena) Cap() int { return len(a.buf) }

// Used returns the number of fp32 elements allocated so far.
func (a *Arena) Used() int { return a.off }

// Bytes returns the arena capacity in bytes across all width pools.
func (a *Arena) Bytes() int { return 4*len(a.buf) + 2*len(a.buf16) + len(a.buf8) }

// NewIn allocates an arena-backed float32 tensor of the given shape: the
// pooled counterpart of New. The tensor's storage lives inside the arena
// and is reused (not zeroed) across arena resets.
func NewIn(a *Arena, shape ...int) *Tensor {
	n := Shape(shape).NumElements()
	return FromData(a.Alloc(n), shape...)
}

// NewInTyped allocates an arena-backed tensor of the given dtype; scale is
// the Int8 dequantization scale (ignored for other dtypes).
func NewInTyped(a *Arena, dt DType, scale float32, shape ...int) *Tensor {
	n := Shape(shape).NumElements()
	switch dt {
	case Float16:
		return FromHalf(a.Alloc16(n), shape...)
	case Int8:
		return FromInt8(a.Alloc8(n), scale, shape...)
	default:
		return FromData(a.Alloc(n), shape...)
	}
}
