package tensor

import (
	"fmt"
	"strconv"
	"strings"
)

// Layout describes how a logical 4-D activation or weight tensor is stored.
// Upper-case letters are primary axes; a lower-case letter is a blocked
// sub-axis of the preceding matching upper-case axis, with its block size.
// Examples: "NCHW", "NHWC", "NCHW8c" (channel blocked by 8), "OIHW",
// "OIHW16o" (output-channel blocked by 16).
type Layout string

// Axes decomposes the layout into axis names; blocked sub-axes keep the
// block size, e.g. "NCHW8c" -> [{N 0} {C 0} {H 0} {W 0} {c 8}].
type LayoutAxis struct {
	Name  byte
	Block int // 0 for primary axes
}

// Parse splits the layout string into axes. It panics on malformed layouts;
// layouts are compile-time constants in practice.
func (l Layout) Parse() []LayoutAxis {
	var axes []LayoutAxis
	s := string(l)
	for i := 0; i < len(s); {
		c := s[i]
		if c >= 'A' && c <= 'Z' {
			axes = append(axes, LayoutAxis{Name: c})
			i++
			continue
		}
		// A digit sequence followed by a lower-case axis letter.
		j := i
		for j < len(s) && s[j] >= '0' && s[j] <= '9' {
			j++
		}
		if j == i || j >= len(s) || s[j] < 'a' || s[j] > 'z' {
			panic(fmt.Sprintf("tensor: malformed layout %q", l))
		}
		blk, _ := strconv.Atoi(s[i:j])
		axes = append(axes, LayoutAxis{Name: s[j], Block: blk})
		i = j + 1
	}
	return axes
}

// BlockOf returns the block size for the given primary axis (e.g. 'C'), or
// 0 when the axis is not blocked in this layout.
func (l Layout) BlockOf(primary byte) int {
	for _, a := range l.Parse() {
		if a.Block > 0 && a.Name == primary+('a'-'A') {
			return a.Block
		}
	}
	return 0
}

func (l Layout) String() string { return string(l) }

// IsBlockedChannel reports whether the layout blocks the channel axis
// (NCHW[x]c family).
func (l Layout) IsBlockedChannel() bool { return l.BlockOf('C') > 0 }

// NCHWShape returns the storage shape for a logical (n, c, h, w) activation
// under this layout. Supported: NCHW, NHWC, NCHW[x]c.
func (l Layout) NCHWShape(n, c, h, w int) Shape {
	switch {
	case l == "NCHW":
		return Shape{n, c, h, w}
	case l == "NHWC":
		return Shape{n, h, w, c}
	case strings.HasPrefix(string(l), "NCHW") && l.IsBlockedChannel():
		blk := l.BlockOf('C')
		return Shape{n, ceilDiv(c, blk), h, w, blk}
	}
	panic(fmt.Sprintf("tensor: unsupported activation layout %q", l))
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// ConvertNCHW converts an activation tensor between the supported layouts.
// src must be stored under from; the result is stored under to. The logical
// shape (n, c, h, w) must be supplied because blocked layouts may pad C.
func ConvertNCHW(src *Tensor, from, to Layout, n, c, h, w int) *Tensor {
	if from == to {
		return src.Clone()
	}
	get := activationGetter(src, from)
	dst := New(to.NCHWShape(n, c, h, w)...)
	set := activationSetter(dst, to)
	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < c; ci++ {
			for hi := 0; hi < h; hi++ {
				for wi := 0; wi < w; wi++ {
					set(ni, ci, hi, wi, get(ni, ci, hi, wi))
				}
			}
		}
	}
	return dst
}

func activationGetter(t *Tensor, l Layout) func(n, c, h, w int) float32 {
	switch {
	case l == "NCHW":
		return func(n, c, h, w int) float32 { return t.At(n, c, h, w) }
	case l == "NHWC":
		return func(n, c, h, w int) float32 { return t.At(n, h, w, c) }
	case l.IsBlockedChannel():
		blk := l.BlockOf('C')
		return func(n, c, h, w int) float32 { return t.At(n, c/blk, h, w, c%blk) }
	}
	panic(fmt.Sprintf("tensor: unsupported activation layout %q", l))
}

func activationSetter(t *Tensor, l Layout) func(n, c, h, w int, v float32) {
	switch {
	case l == "NCHW":
		return func(n, c, h, w int, v float32) { t.Set(v, n, c, h, w) }
	case l == "NHWC":
		return func(n, c, h, w int, v float32) { t.Set(v, n, h, w, c) }
	case l.IsBlockedChannel():
		blk := l.BlockOf('C')
		return func(n, c, h, w int, v float32) { t.Set(v, n, c/blk, h, w, c%blk) }
	}
	panic(fmt.Sprintf("tensor: unsupported activation layout %q", l))
}

// ConvertOIHW converts a weight tensor from OIHW to OIHW[x]o blocked layout
// (output channels padded to a multiple of the block).
func ConvertOIHW(src *Tensor, block int) *Tensor {
	s := src.Shape()
	o, i, kh, kw := s[0], s[1], s[2], s[3]
	dst := New(ceilDiv(o, block), i, kh, kw, block)
	for oo := 0; oo < o; oo++ {
		for ii := 0; ii < i; ii++ {
			for y := 0; y < kh; y++ {
				for x := 0; x < kw; x++ {
					dst.Set(src.At(oo, ii, y, x), oo/block, ii, y, x, oo%block)
				}
			}
		}
	}
	return dst
}

// TransformCost estimates the number of elements that must be moved to
// convert an activation of logical shape (n,c,h,w) between two layouts.
// It is zero when the layouts match. Used by the graph tuner to price
// layout-transform nodes.
func TransformCost(from, to Layout, n, c, h, w int) int {
	if from == to {
		return 0
	}
	// One read + one write per logical element; blocked targets also touch
	// their padding.
	elems := n * c * h * w
	padded := to.NCHWShape(n, c, h, w).NumElements()
	return elems + padded
}
