package tensor

import "fmt"

// Typed (reduced-precision) tensor construction and access. The float32
// fast paths elsewhere in the stack are untouched: a Float32 tensor
// behaves exactly as before, and reduced-precision tensors only flow
// through dtype-aware code.

// NewTyped allocates a zero-filled tensor of the given dtype and shape.
func NewTyped(dt DType, shape ...int) *Tensor {
	s := Shape(shape).Clone()
	t := &Tensor{shape: s, strides: s.Strides(), dtype: dt}
	switch dt {
	case Float16:
		t.half = make([]uint16, s.NumElements())
	case Int8:
		t.qdata = make([]int8, s.NumElements())
		t.scale = 1
	default:
		t.data = make([]float32, s.NumElements())
	}
	return t
}

// FromHalf wraps a binary16 backing slice (not copied) in a Float16
// tensor. It panics if the length does not match the shape.
func FromHalf(h []uint16, shape ...int) *Tensor {
	s := Shape(shape).Clone()
	if len(h) != s.NumElements() {
		panic(fmt.Sprintf("tensor: half data length %d does not match shape %v (%d elements)",
			len(h), s, s.NumElements()))
	}
	return &Tensor{shape: s, strides: s.Strides(), half: h, dtype: Float16}
}

// FromInt8 wraps a quantized backing slice (not copied) in an Int8 tensor
// with the given per-tensor dequantization scale.
func FromInt8(q []int8, scale float32, shape ...int) *Tensor {
	s := Shape(shape).Clone()
	if len(q) != s.NumElements() {
		panic(fmt.Sprintf("tensor: int8 data length %d does not match shape %v (%d elements)",
			len(q), s, s.NumElements()))
	}
	if scale == 0 {
		scale = 1
	}
	return &Tensor{shape: s, strides: s.Strides(), qdata: q, dtype: Int8, scale: scale}
}

// DType returns the tensor's element storage type.
func (t *Tensor) DType() DType { return t.dtype }

// Half exposes the binary16 backing buffer of a Float16 tensor.
func (t *Tensor) Half() []uint16 {
	if t.dtype != Float16 {
		panic("tensor: Half() on " + t.dtype.String() + " tensor")
	}
	return t.half
}

// Int8Data exposes the quantized backing buffer of an Int8 tensor.
func (t *Tensor) Int8Data() []int8 {
	if t.dtype != Int8 {
		panic("tensor: Int8Data() on " + t.dtype.String() + " tensor")
	}
	return t.qdata
}

// Scale returns the Int8 dequantization scale (1 for other dtypes).
func (t *Tensor) Scale() float32 {
	if t.dtype != Int8 || t.scale == 0 {
		return 1
	}
	return t.scale
}

// SetScale sets the Int8 dequantization scale. The stored codes are not
// rescaled; callers set the scale before writing values through SetF.
func (t *Tensor) SetScale(s float32) {
	if s == 0 {
		s = 1
	}
	t.scale = s
}

// GetF returns element i (flat, row-major) widened to float32.
func (t *Tensor) GetF(i int) float32 {
	switch t.dtype {
	case Float16:
		return F16Decode(t.half[i])
	case Int8:
		return t.scale * float32(t.qdata[i])
	default:
		return t.data[i]
	}
}

// SetF stores v into element i (flat, row-major), narrowing to the
// tensor's dtype: round-to-nearest-even for fp16, saturating symmetric
// quantization under the tensor's scale for int8.
func (t *Tensor) SetF(i int, v float32) {
	switch t.dtype {
	case Float16:
		t.half[i] = F16Encode(v)
	case Int8:
		t.qdata[i] = QuantizeInt8(v, t.scale)
	default:
		t.data[i] = v
	}
}

// Copy copies src into dst, converting element type when the dtypes
// differ (fp16 narrowing rounds to nearest even; int8 narrowing quantizes
// under dst's scale, so set it first). Shapes must match. Same-dtype
// copies are raw buffer copies; dst's int8 scale is taken from src then.
// Copy never allocates, so the pooled runtime uses it on arena buffers.
func Copy(dst, src *Tensor) {
	if !dst.shape.Equal(src.shape) {
		panic(fmt.Sprintf("tensor: Copy shape mismatch %v vs %v", dst.shape, src.shape))
	}
	if dst.dtype == src.dtype {
		switch dst.dtype {
		case Float16:
			copy(dst.half, src.half)
		case Int8:
			copy(dst.qdata, src.qdata)
			dst.scale = src.scale
		default:
			copy(dst.data, src.data)
		}
		return
	}
	n := src.Size()
	switch {
	case dst.dtype == Float16 && src.dtype == Float32:
		for i := 0; i < n; i++ {
			dst.half[i] = F16Encode(src.data[i])
		}
	case dst.dtype == Float32 && src.dtype == Float16:
		for i := 0; i < n; i++ {
			dst.data[i] = F16Decode(src.half[i])
		}
	default:
		for i := 0; i < n; i++ {
			dst.SetF(i, src.GetF(i))
		}
	}
}

// Convert returns a copy of t in the given dtype. An Int8 target uses the
// provided scale (0 derives a symmetric scale from t's max-abs value).
func Convert(t *Tensor, dt DType, scale float32) *Tensor {
	c := NewTyped(dt, t.shape...)
	if dt == Int8 {
		if scale == 0 {
			maxAbs := 0.0
			n := t.Size()
			for i := 0; i < n; i++ {
				v := float64(t.GetF(i))
				if v < 0 {
					v = -v
				}
				if v > maxAbs {
					maxAbs = v
				}
			}
			scale = Int8Scale(maxAbs)
		}
		c.scale = scale
	}
	Copy(c, t)
	return c
}
