package tensor

import "testing"

func TestArenaCarvesDisjointSlots(t *testing.T) {
	a := NewArena(10)
	x := a.Alloc(4)
	y := a.Alloc(6)
	if a.Used() != 10 || a.Cap() != 10 || a.Bytes() != 40 {
		t.Fatalf("used/cap/bytes = %d/%d/%d", a.Used(), a.Cap(), a.Bytes())
	}
	for i := range x {
		x[i] = 1
	}
	for i := range y {
		y[i] = 2
	}
	for i, v := range x {
		if v != 1 {
			t.Fatalf("slot x clobbered at %d: %v", i, v)
		}
	}
	// Full-capacity slices: append must reallocate, never bleed into y.
	x2 := append(x, 9)
	if y[0] != 2 {
		t.Fatalf("append into x bled into y: %v", y[0])
	}
	_ = x2
}

func TestArenaExhaustionPanics(t *testing.T) {
	a := NewArena(4)
	a.Alloc(3)
	defer func() {
		if recover() == nil {
			t.Fatal("over-allocation must panic: plans size arenas exactly")
		}
	}()
	a.Alloc(2)
}

func TestArenaResetReusesStorage(t *testing.T) {
	a := NewArena(8)
	x := a.Alloc(8)
	x[0] = 7
	a.Reset()
	if a.Used() != 0 {
		t.Fatalf("used after reset = %d", a.Used())
	}
	y := a.Alloc(8)
	if &y[0] != &x[0] {
		t.Fatal("reset must hand back the same storage")
	}
	if y[0] != 7 {
		t.Fatal("reset must not zero the storage")
	}
}

func TestNewInShapesArenaTensor(t *testing.T) {
	a := NewArena(24)
	tt := NewIn(a, 2, 3, 4)
	if !tt.Shape().Equal(Shape{2, 3, 4}) {
		t.Fatalf("shape %v", tt.Shape())
	}
	if a.Used() != 24 {
		t.Fatalf("used = %d", a.Used())
	}
	tt.Set(5, 1, 2, 3)
	if tt.At(1, 2, 3) != 5 {
		t.Fatal("arena tensor must be addressable")
	}
}
