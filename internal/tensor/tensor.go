// Package tensor provides the dense n-dimensional array substrate used by
// every layer of the stack: the operator library computes on Tensors, the
// lowered-IR interpreter reads and writes their backing buffers, and the
// graph runtime moves them between (simulated) devices.
//
// Tensors are always float32 row-major over an explicit Shape. Data layouts
// relevant to CNN inference (NCHW, NHWC, the blocked NCHW[x]c family used by
// the graph tuner, and the weight layouts OIHW / OIHW[x]o) are first-class:
// see layout.go for conversions.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
)

// Shape is the extent of each tensor dimension, outermost first.
type Shape []int

// NumElements returns the product of all dimensions. An empty shape is a
// scalar and has one element.
func (s Shape) NumElements() int {
	n := 1
	for _, d := range s {
		n *= d
	}
	return n
}

// Equal reports whether two shapes have identical rank and extents.
func (s Shape) Equal(o Shape) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// Clone returns a copy of the shape.
func (s Shape) Clone() Shape {
	c := make(Shape, len(s))
	copy(c, s)
	return c
}

func (s Shape) String() string {
	parts := make([]string, len(s))
	for i, d := range s {
		parts[i] = fmt.Sprint(d)
	}
	return "(" + strings.Join(parts, ",") + ")"
}

// Strides returns row-major strides for the shape.
func (s Shape) Strides() []int {
	st := make([]int, len(s))
	acc := 1
	for i := len(s) - 1; i >= 0; i-- {
		st[i] = acc
		acc *= s[i]
	}
	return st
}

// Tensor is a dense n-dimensional array. The default (and overwhelmingly
// common) element type is float32; reduced-precision tensors carry a DType
// tag and use the matching backing slice instead (see dtype.go). Exactly
// one backing slice is non-nil.
type Tensor struct {
	shape   Shape
	strides []int
	data    []float32 // Float32 backing
	half    []uint16  // Float16 backing (IEEE 754 binary16 bits)
	qdata   []int8    // Int8 backing
	dtype   DType
	scale   float32 // Int8 dequantization scale: value = scale * q
}

// New allocates a zero-filled tensor of the given shape.
func New(shape ...int) *Tensor {
	s := Shape(shape).Clone()
	return &Tensor{shape: s, strides: s.Strides(), data: make([]float32, s.NumElements())}
}

// FromData wraps the given backing slice (not copied) in a tensor of the
// given shape. It panics if the length does not match the shape.
func FromData(data []float32, shape ...int) *Tensor {
	s := Shape(shape).Clone()
	if len(data) != s.NumElements() {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (%d elements)",
			len(data), s, s.NumElements()))
	}
	return &Tensor{shape: s, strides: s.Strides(), data: data}
}

// Shape returns the tensor's shape. The returned slice must not be mutated.
func (t *Tensor) Shape() Shape { return t.shape }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// Size returns the total number of elements.
func (t *Tensor) Size() int { return t.shape.NumElements() }

// Bytes returns the size of the backing buffer in bytes, accounting for
// the element width of the tensor's dtype.
func (t *Tensor) Bytes() int { return t.dtype.Size() * t.shape.NumElements() }

// Data exposes the flat float32 backing buffer in row-major order. It
// panics on a reduced-precision tensor: dtype-blind code must never read a
// half/int8 buffer as float32, so the mistake surfaces loudly. Use GetF /
// SetF (or Half / Int8) for dtype-aware access.
func (t *Tensor) Data() []float32 {
	if t.dtype != Float32 {
		panic("tensor: Data() on " + t.dtype.String() + " tensor; use GetF/SetF or the typed accessor")
	}
	return t.data
}

// Offset computes the flat index for the given coordinates.
func (t *Tensor) Offset(idx ...int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: got %d indices for rank-%d tensor", len(idx), len(t.shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %d out of range [0,%d) in dim %d", x, t.shape[i], i))
		}
		off += x * t.strides[i]
	}
	return off
}

// At returns the element at the given coordinates (widened to float32 for
// reduced-precision tensors).
func (t *Tensor) At(idx ...int) float32 { return t.GetF(t.Offset(idx...)) }

// Set stores v at the given coordinates (narrowed to the tensor's dtype).
func (t *Tensor) Set(v float32, idx ...int) { t.SetF(t.Offset(idx...), v) }

// Clone returns a deep copy with the same dtype (and scale).
func (t *Tensor) Clone() *Tensor {
	c := NewTyped(t.dtype, t.shape...)
	c.scale = t.scale
	switch t.dtype {
	case Float16:
		copy(c.half, t.half)
	case Int8:
		copy(c.qdata, t.qdata)
	default:
		copy(c.data, t.data)
	}
	return c
}

// Reshape returns a view with a new shape sharing the same backing buffer.
// The element count must match.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	s := Shape(shape).Clone()
	if s.NumElements() != t.Size() {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d) to %v (%d)",
			t.shape, t.Size(), s, s.NumElements()))
	}
	return &Tensor{shape: s, strides: s.Strides(),
		data: t.data, half: t.half, qdata: t.qdata, dtype: t.dtype, scale: t.scale}
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	n := t.Size()
	for i := 0; i < n; i++ {
		t.SetF(i, v)
	}
}

// FillFunc sets element i (flat index) to f(i).
func (t *Tensor) FillFunc(f func(i int) float32) {
	n := t.Size()
	for i := 0; i < n; i++ {
		t.SetF(i, f(i))
	}
}

// FillRandom fills the tensor with deterministic pseudo-random values in
// [-1, 1) derived from seed. The same seed always yields the same contents.
func (t *Tensor) FillRandom(seed int64) {
	rng := rand.New(rand.NewSource(seed))
	n := t.Size()
	for i := 0; i < n; i++ {
		t.SetF(i, rng.Float32()*2-1)
	}
}

// String renders small tensors fully and large ones as a summary.
func (t *Tensor) String() string {
	if t.dtype == Float32 && len(t.data) <= 16 {
		return fmt.Sprintf("Tensor%v%v", t.shape, t.data)
	}
	if t.dtype != Float32 {
		return fmt.Sprintf("Tensor[%s]%v[%d elements]", t.dtype, t.shape, t.Size())
	}
	return fmt.Sprintf("Tensor%v[%d elements]", t.shape, len(t.data))
}

// AllClose reports whether the two tensors have the same shape and all
// elements within the given absolute-or-relative tolerance.
func AllClose(a, b *Tensor, tol float64) bool {
	return MaxAbsDiff(a, b) <= tol
}

// MaxAbsDiff returns the maximum elementwise |a-b| scaled by
// max(1, |a|, |b|); +Inf if shapes differ. The operands may have different
// dtypes (reduced-precision values are widened first), which is how the
// mixed-precision tolerance harness compares fp16/int8 outputs against the
// fp32 reference.
func MaxAbsDiff(a, b *Tensor) float64 {
	if !a.shape.Equal(b.shape) {
		return math.Inf(1)
	}
	worst := 0.0
	n := a.Size()
	for i := 0; i < n; i++ {
		av, bv := float64(a.GetF(i)), float64(b.GetF(i))
		den := math.Max(1, math.Max(math.Abs(av), math.Abs(bv)))
		if d := math.Abs(av-bv) / den; d > worst {
			worst = d
		}
	}
	return worst
}
