package tensor

import "math"

// DType identifies the element storage type of a tensor. The zero value is
// Float32, so every pre-existing construction path keeps full-precision
// semantics without change.
//
// Reduced-precision tensors follow the accumulate-in-fp32 discipline: fp16
// and int8 are *storage* formats (what lives in the arena and moves over
// the simulated memory bus); kernels widen on load, accumulate in float32,
// and narrow once on store.
type DType uint8

const (
	// Float32 is the full-precision reference format.
	Float32 DType = iota
	// Float16 is IEEE 754 binary16 storage (fp32 accumulate).
	Float16
	// Int8 is symmetric signed-8-bit quantized storage: value = scale * q,
	// q in [-127, 127]. The scale rides on the tensor (per-tensor) or, for
	// prepacked conv weights, per output channel.
	Int8
)

// Size returns the element width in bytes.
func (d DType) Size() int {
	switch d {
	case Float16:
		return 2
	case Int8:
		return 1
	}
	return 4
}

func (d DType) String() string {
	switch d {
	case Float16:
		return "fp16"
	case Int8:
		return "int8"
	}
	return "fp32"
}

// ParseDType recognizes the names used by tuning records and the -dtype
// CLI flag ("fp32"/"float32", "fp16"/"float16", "int8").
func ParseDType(s string) (DType, bool) {
	switch s {
	case "fp32", "float32", "":
		return Float32, true
	case "fp16", "float16", "half":
		return Float16, true
	case "int8":
		return Int8, true
	}
	return Float32, false
}

// F16Encode converts a float32 to IEEE 754 binary16 with round-to-nearest-
// even, the hardware rounding mode. Overflow saturates to infinity;
// subnormal halves are produced exactly; NaN stays NaN.
func F16Encode(f float32) uint16 {
	b := math.Float32bits(f)
	sign := uint16(b>>16) & 0x8000
	exp := int32(b>>23&0xff) - 127
	man := b & 0x7fffff
	switch {
	case exp == 128: // inf or NaN
		if man != 0 {
			return sign | 0x7e00 // quiet NaN
		}
		return sign | 0x7c00
	case exp > 15: // overflow -> inf
		return sign | 0x7c00
	case exp >= -14: // normal range: drop 13 mantissa bits with RNE
		m := man >> 13
		rem := man & 0x1fff
		h := sign | uint16(exp+15)<<10 | uint16(m)
		if rem > 0x1000 || (rem == 0x1000 && m&1 == 1) {
			h++ // mantissa carry ripples into the exponent, which is exact
		}
		return h
	case exp >= -24: // subnormal half
		sig := man | 0x800000
		shift := uint32(-exp - 1) // in [14, 23]
		m := sig >> shift
		rem := sig & (1<<shift - 1)
		half := uint32(1) << (shift - 1)
		h := sign | uint16(m)
		if rem > half || (rem == half && m&1 == 1) {
			h++
		}
		return h
	default: // underflow to signed zero
		return sign
	}
}

// F16Decode converts an IEEE 754 binary16 to float32 exactly (every half
// value is representable in single precision).
func F16Decode(h uint16) float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h >> 10 & 0x1f)
	man := uint32(h & 0x3ff)
	switch {
	case exp == 0x1f: // inf or NaN
		if man != 0 {
			return math.Float32frombits(sign | 0x7fc00000 | man<<13)
		}
		return math.Float32frombits(sign | 0x7f800000)
	case exp == 0:
		if man == 0 {
			return math.Float32frombits(sign) // signed zero
		}
		// Subnormal half: normalize into the float32 format.
		e := uint32(113) // 127 - 15 + 1
		for man&0x400 == 0 {
			man <<= 1
			e--
		}
		return math.Float32frombits(sign | e<<23 | (man&0x3ff)<<13)
	default:
		return math.Float32frombits(sign | (exp+112)<<23 | man<<13)
	}
}

// F16Round is the value a float32 takes after a round trip through fp16
// storage — what a kernel reading an fp16 tensor actually sees.
func F16Round(f float32) float32 { return F16Decode(F16Encode(f)) }

// Int8Scale returns the symmetric per-tensor quantization scale mapping
// [-maxAbs, maxAbs] onto [-127, 127]. A degenerate (zero or non-finite)
// range yields scale 1 so quantizing a constant-zero tensor stays exact.
func Int8Scale(maxAbs float64) float32 {
	if !(maxAbs > 0) || math.IsInf(maxAbs, 0) {
		return 1
	}
	return float32(maxAbs / 127)
}

// QuantizeInt8 maps v to its quantized code under scale: round-to-nearest,
// saturating at ±127.
func QuantizeInt8(v, scale float32) int8 {
	if scale == 0 {
		return 0
	}
	q := math.RoundToEven(float64(v) / float64(scale))
	if q > 127 {
		q = 127
	} else if q < -127 {
		q = -127
	}
	return int8(q)
}
