package ir

// WalkStmt calls fn for every statement in the tree, parents before
// children. Returning false from fn skips the node's children.
func WalkStmt(s Stmt, fn func(Stmt) bool) {
	if s == nil || !fn(s) {
		return
	}
	switch v := s.(type) {
	case *For:
		WalkStmt(v.Body, fn)
	case *LetStmt:
		WalkStmt(v.Body, fn)
	case *IfThenElse:
		WalkStmt(v.Then, fn)
		WalkStmt(v.Else, fn)
	case *Allocate:
		WalkStmt(v.Body, fn)
	case *Seq:
		for _, st := range v.Stmts {
			WalkStmt(st, fn)
		}
	}
}

// WalkExpr calls fn for every expression node, parents before children.
func WalkExpr(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch v := e.(type) {
	case *Binary:
		WalkExpr(v.A, fn)
		WalkExpr(v.B, fn)
	case *Select:
		WalkExpr(v.Cond, fn)
		WalkExpr(v.A, fn)
		WalkExpr(v.B, fn)
	case *Load:
		WalkExpr(v.Index, fn)
	case *Call:
		for _, a := range v.Args {
			WalkExpr(a, fn)
		}
	case *Cast:
		WalkExpr(v.Value, fn)
	case *Ramp:
		WalkExpr(v.Base, fn)
	}
}

// WalkStmtExprs calls fn on every expression occurring anywhere in the
// statement tree.
func WalkStmtExprs(s Stmt, fn func(Expr)) {
	WalkStmt(s, func(st Stmt) bool {
		switch v := st.(type) {
		case *For:
			WalkExpr(v.Min, fn)
			WalkExpr(v.Extent, fn)
		case *Store:
			WalkExpr(v.Index, fn)
			WalkExpr(v.Value, fn)
		case *LetStmt:
			WalkExpr(v.Value, fn)
		case *IfThenElse:
			WalkExpr(v.Cond, fn)
		case *Allocate:
			WalkExpr(v.Size, fn)
		case *Evaluate:
			WalkExpr(v.Value, fn)
		}
		return true
	})
}

// SubstExpr returns e with every occurrence of the variable name replaced
// by repl. Expression trees are immutable, so shared subtrees are rebuilt
// only along modified paths.
func SubstExpr(e Expr, name string, repl Expr) Expr {
	switch v := e.(type) {
	case *Var:
		if v.Name == name {
			return repl
		}
		return v
	case *Binary:
		a, b := SubstExpr(v.A, name, repl), SubstExpr(v.B, name, repl)
		if a == v.A && b == v.B {
			return v
		}
		return fold(&Binary{v.Op, a, b})
	case *Select:
		c := SubstExpr(v.Cond, name, repl)
		a, b := SubstExpr(v.A, name, repl), SubstExpr(v.B, name, repl)
		if c == v.Cond && a == v.A && b == v.B {
			return v
		}
		return &Select{c, a, b}
	case *Load:
		idx := SubstExpr(v.Index, name, repl)
		if idx == v.Index {
			return v
		}
		return &Load{v.Buffer, idx, v.Type}
	case *Call:
		changed := false
		args := make([]Expr, len(v.Args))
		for i, a := range v.Args {
			args[i] = SubstExpr(a, name, repl)
			changed = changed || args[i] != a
		}
		if !changed {
			return v
		}
		return &Call{v.Fn, args, v.Type}
	case *Cast:
		val := SubstExpr(v.Value, name, repl)
		if val == v.Value {
			return v
		}
		return &Cast{val, v.To}
	case *Ramp:
		base := SubstExpr(v.Base, name, repl)
		if base == v.Base {
			return v
		}
		return &Ramp{base, v.Stride, v.Lanes}
	default:
		return e
	}
}

// SubstStmt returns s with the variable name replaced by repl everywhere.
func SubstStmt(s Stmt, name string, repl Expr) Stmt {
	switch v := s.(type) {
	case *For:
		if v.Var.Name == name { // inner binding shadows
			return v
		}
		return &For{v.Var, SubstExpr(v.Min, name, repl), SubstExpr(v.Extent, name, repl), v.Kind, SubstStmt(v.Body, name, repl)}
	case *Store:
		return &Store{v.Buffer, SubstExpr(v.Index, name, repl), SubstExpr(v.Value, name, repl)}
	case *LetStmt:
		val := SubstExpr(v.Value, name, repl)
		if v.Var.Name == name {
			return &LetStmt{v.Var, val, v.Body}
		}
		return &LetStmt{v.Var, val, SubstStmt(v.Body, name, repl)}
	case *IfThenElse:
		var els Stmt
		if v.Else != nil {
			els = SubstStmt(v.Else, name, repl)
		}
		return &IfThenElse{SubstExpr(v.Cond, name, repl), SubstStmt(v.Then, name, repl), els}
	case *Allocate:
		return &Allocate{v.Buffer, v.Type, SubstExpr(v.Size, name, repl), v.Scope, SubstStmt(v.Body, name, repl)}
	case *Seq:
		out := make([]Stmt, len(v.Stmts))
		for i, st := range v.Stmts {
			out[i] = SubstStmt(st, name, repl)
		}
		return &Seq{Stmts: out}
	case *Barrier:
		return v
	case *Evaluate:
		return &Evaluate{SubstExpr(v.Value, name, repl)}
	default:
		return s
	}
}
