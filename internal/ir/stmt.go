package ir

import (
	"fmt"
	"strings"
)

// ForKind classifies how a loop axis executes. Schedule primitives rewrite
// serial loops into the other kinds; the interpreter, the cost model, and
// codegen all dispatch on it.
type ForKind int

const (
	// ForSerial executes iterations in order on one lane.
	ForSerial ForKind = iota
	// ForParallel marks CPU-side data parallelism (fallback operators).
	ForParallel
	// ForUnrolled is fully unrolled by codegen; the cost model credits
	// reduced control overhead and better ILP (§3.2.2).
	ForUnrolled
	// ForVectorized maps iterations onto SIMD lanes.
	ForVectorized
	// ForThreadBlock binds the axis to blockIdx / OpenCL work-group id.
	ForThreadBlock
	// ForThread binds the axis to threadIdx / OpenCL local id.
	ForThread
	// ForSubgroup binds the axis to an Intel subgroup lane sharing the
	// hardware thread's register file (§3.2.1).
	ForSubgroup
)

func (k ForKind) String() string {
	switch k {
	case ForSerial:
		return "for"
	case ForParallel:
		return "parallel"
	case ForUnrolled:
		return "unrolled"
	case ForVectorized:
		return "vectorized"
	case ForThreadBlock:
		return "blockIdx"
	case ForThread:
		return "threadIdx"
	case ForSubgroup:
		return "subgroup"
	}
	return "?"
}

// IsGPUBound reports whether the axis maps to a hardware scheduling
// dimension rather than an in-kernel loop.
func (k ForKind) IsGPUBound() bool {
	return k == ForThreadBlock || k == ForThread || k == ForSubgroup
}

// MemScope is where an allocation lives in the device memory hierarchy.
type MemScope int

const (
	// ScopeGlobal is off-chip DRAM shared between CPU and integrated GPU.
	ScopeGlobal MemScope = iota
	// ScopeShared is per-block shared/local memory (absent on Mali).
	ScopeShared
	// ScopeLocal is per-thread registers (GRFs on Intel).
	ScopeLocal
)

func (s MemScope) String() string {
	switch s {
	case ScopeGlobal:
		return "global"
	case ScopeShared:
		return "shared"
	case ScopeLocal:
		return "local"
	}
	return "?"
}

// Stmt is an imperative statement in the lowered loop program.
type Stmt interface {
	isStmt()
	pretty(w *strings.Builder, indent int)
}

// For is a loop over [Min, Min+Extent) with the given kind.
type For struct {
	Var    *Var
	Min    Expr
	Extent Expr
	Kind   ForKind
	Body   Stmt
}

func (*For) isStmt() {}

// Store writes Value to Buffer[Index].
type Store struct {
	Buffer string
	Index  Expr
	Value  Expr
}

func (*Store) isStmt() {}

// LetStmt binds Var to Value within Body.
type LetStmt struct {
	Var   *Var
	Value Expr
	Body  Stmt
}

func (*LetStmt) isStmt() {}

// IfThenElse executes Then when Cond holds, otherwise Else (may be nil).
// Inside GPU thread loops this is the construct that causes divergence,
// which the cost model penalises.
type IfThenElse struct {
	Cond Expr
	Then Stmt
	Else Stmt
}

func (*IfThenElse) isStmt() {}

// Allocate introduces a buffer of Size elements in the given scope for the
// duration of Body.
type Allocate struct {
	Buffer string
	Type   DType
	Size   Expr
	Scope  MemScope
	Body   Stmt
}

func (*Allocate) isStmt() {}

// Seq executes statements in order.
type Seq struct{ Stmts []Stmt }

func (*Seq) isStmt() {}

// SeqOf builds a Seq, flattening nested Seqs and dropping nils.
func SeqOf(stmts ...Stmt) Stmt {
	var flat []Stmt
	for _, s := range stmts {
		switch v := s.(type) {
		case nil:
		case *Seq:
			flat = append(flat, v.Stmts...)
		default:
			flat = append(flat, s)
		}
	}
	if len(flat) == 1 {
		return flat[0]
	}
	return &Seq{Stmts: flat}
}

// Barrier synchronises all threads of a block (CUDA __syncthreads /
// OpenCL barrier). Scope records which memory it orders.
type Barrier struct{ Scope MemScope }

func (*Barrier) isStmt() {}

// Evaluate executes an expression for its side effect (intrinsic calls).
type Evaluate struct{ Value Expr }

func (*Evaluate) isStmt() {}

// Pretty-printing ------------------------------------------------------------

func ind(w *strings.Builder, n int) {
	for i := 0; i < n; i++ {
		w.WriteString("  ")
	}
}

func (f *For) pretty(w *strings.Builder, n int) {
	ind(w, n)
	fmt.Fprintf(w, "%s %s in [%s, %s+%s) {\n", f.Kind, f.Var, f.Min, f.Min, f.Extent)
	f.Body.pretty(w, n+1)
	ind(w, n)
	w.WriteString("}\n")
}

func (s *Store) pretty(w *strings.Builder, n int) {
	ind(w, n)
	fmt.Fprintf(w, "%s[%s] = %s\n", s.Buffer, s.Index, s.Value)
}

func (l *LetStmt) pretty(w *strings.Builder, n int) {
	ind(w, n)
	fmt.Fprintf(w, "let %s = %s\n", l.Var, l.Value)
	l.Body.pretty(w, n)
}

func (i *IfThenElse) pretty(w *strings.Builder, n int) {
	ind(w, n)
	fmt.Fprintf(w, "if %s {\n", i.Cond)
	i.Then.pretty(w, n+1)
	ind(w, n)
	if i.Else != nil {
		w.WriteString("} else {\n")
		i.Else.pretty(w, n+1)
		ind(w, n)
	}
	w.WriteString("}\n")
}

func (a *Allocate) pretty(w *strings.Builder, n int) {
	ind(w, n)
	fmt.Fprintf(w, "alloc %s %s[%s] @%s\n", a.Type, a.Buffer, a.Size, a.Scope)
	a.Body.pretty(w, n)
}

func (s *Seq) pretty(w *strings.Builder, n int) {
	for _, st := range s.Stmts {
		st.pretty(w, n)
	}
}

func (b *Barrier) pretty(w *strings.Builder, n int) {
	ind(w, n)
	fmt.Fprintf(w, "barrier(%s)\n", b.Scope)
}

func (e *Evaluate) pretty(w *strings.Builder, n int) {
	ind(w, n)
	fmt.Fprintf(w, "%s\n", e.Value)
}

// Print renders the statement tree as indented pseudo-code.
func Print(s Stmt) string {
	var w strings.Builder
	s.pretty(&w, 0)
	return w.String()
}

// CountLines returns the number of IR lines in the printed form; used by
// the §3.1.1 conciseness experiment (≈100 lines of IR vs 325 lines CUDA).
func CountLines(s Stmt) int {
	return strings.Count(Print(s), "\n")
}
