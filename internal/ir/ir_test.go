package ir

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestConstantFolding(t *testing.T) {
	cases := []struct {
		got  Expr
		want int
	}{
		{Add(Imm(2), Imm(3)), 5},
		{Sub(Imm(2), Imm(3)), -1},
		{Mul(Imm(4), Imm(3)), 12},
		{Div(Imm(7), Imm(2)), 3},
		{Mod(Imm(7), Imm(2)), 1},
		{Min(Imm(7), Imm(2)), 2},
		{Max(Imm(7), Imm(2)), 7},
	}
	for _, c := range cases {
		imm, ok := c.got.(*IntImm)
		if !ok || imm.Value != c.want {
			t.Errorf("fold gave %v, want %d", c.got, c.want)
		}
	}
}

func TestIdentityFolding(t *testing.T) {
	x := NewVar("x")
	if Add(x, Imm(0)) != Expr(x) {
		t.Error("x+0 should fold to x")
	}
	if Add(Imm(0), x) != Expr(x) {
		t.Error("0+x should fold to x")
	}
	if Mul(x, Imm(1)) != Expr(x) {
		t.Error("x*1 should fold to x")
	}
	if v, ok := Mul(x, Imm(0)).(*IntImm); !ok || v.Value != 0 {
		t.Error("x*0 should fold to 0")
	}
	if Div(x, Imm(1)) != Expr(x) {
		t.Error("x/1 should fold to x")
	}
	if Sub(x, Imm(0)) != Expr(x) {
		t.Error("x-0 should fold to x")
	}
}

func TestDivModByZeroNotFolded(t *testing.T) {
	if _, ok := Div(Imm(1), Imm(0)).(*Binary); !ok {
		t.Error("division by zero must not fold")
	}
	if _, ok := Mod(Imm(1), Imm(0)).(*Binary); !ok {
		t.Error("mod by zero must not fold")
	}
}

func TestDTypes(t *testing.T) {
	x := NewVar("x")
	if x.DType() != Int32 {
		t.Error("NewVar should be int32")
	}
	if FImm(1).DType() != Float32 {
		t.Error("FImm should be float32")
	}
	if LT(x, Imm(1)).DType() != Bool {
		t.Error("comparison should be bool")
	}
	if Add(FImm(1), FImm(2)).DType() != Float32 {
		t.Error("float add should be float32")
	}
	sel := &Select{Cond: LT(x, Imm(1)), A: FImm(1), B: FImm(2)}
	if sel.DType() != Float32 {
		t.Error("select dtype follows branches")
	}
	if (&Cast{Value: x, To: Float32}).DType() != Float32 {
		t.Error("cast dtype")
	}
}

func TestExprStrings(t *testing.T) {
	x := NewVar("x")
	cases := []struct {
		e    Expr
		want string
	}{
		{Add(x, Imm(1)), "(x + 1)"},
		{Min(x, Imm(3)), "min(x, 3)"},
		{LoadF("A", x), "A[x]"},
		{&Call{Fn: "exp", Args: []Expr{x}, Type: Float32}, "exp(x)"},
		{&Ramp{Base: x, Stride: 1, Lanes: 4}, "ramp(x, 1, 4)"},
		{FImm(2.5), "2.5f"},
	}
	for _, c := range cases {
		if got := c.e.String(); got != c.want {
			t.Errorf("String = %q, want %q", got, c.want)
		}
	}
}

func loopNest() Stmt {
	i, j := NewVar("i"), NewVar("j")
	return &For{Var: i, Min: Imm(0), Extent: Imm(4), Kind: ForThreadBlock,
		Body: &For{Var: j, Min: Imm(0), Extent: Imm(8), Kind: ForThread,
			Body: &Store{Buffer: "C", Index: Add(Mul(i, Imm(8)), j),
				Value: Add(LoadF("A", j), LoadF("B", i))}}}
}

func TestPrint(t *testing.T) {
	s := Print(loopNest())
	for _, want := range []string{"blockIdx i", "threadIdx j", "C[((i * 8) + j)] = (A[j] + B[i])"} {
		if !strings.Contains(s, want) {
			t.Errorf("printed IR missing %q:\n%s", want, s)
		}
	}
}

func TestSeqOfFlattens(t *testing.T) {
	a := &Barrier{Scope: ScopeShared}
	s := SeqOf(a, nil, SeqOf(a, a))
	seq, ok := s.(*Seq)
	if !ok || len(seq.Stmts) != 3 {
		t.Fatalf("SeqOf should flatten to 3 stmts, got %v", s)
	}
	if single := SeqOf(a); single != Stmt(a) {
		t.Error("single-element SeqOf should unwrap")
	}
}

func TestWalkStmtVisitsAll(t *testing.T) {
	var kinds []string
	WalkStmt(loopNest(), func(s Stmt) bool {
		switch s.(type) {
		case *For:
			kinds = append(kinds, "for")
		case *Store:
			kinds = append(kinds, "store")
		}
		return true
	})
	if len(kinds) != 3 {
		t.Fatalf("visited %v, want 2 fors + 1 store", kinds)
	}
}

func TestWalkStmtSkipChildren(t *testing.T) {
	count := 0
	WalkStmt(loopNest(), func(s Stmt) bool {
		count++
		return false
	})
	if count != 1 {
		t.Fatalf("returning false should stop descent, visited %d", count)
	}
}

func TestWalkStmtExprs(t *testing.T) {
	loads := 0
	WalkStmtExprs(loopNest(), func(e Expr) {
		if _, ok := e.(*Load); ok {
			loads++
		}
	})
	if loads != 2 {
		t.Fatalf("found %d loads, want 2", loads)
	}
}

func TestSubstExpr(t *testing.T) {
	x, y := NewVar("x"), NewVar("y")
	e := Add(Mul(x, Imm(2)), y)
	got := SubstExpr(e, "x", Imm(3))
	if got.String() != "(6 + y)" {
		t.Fatalf("subst = %s", got)
	}
	// Untouched expression returns the same node.
	if SubstExpr(e, "z", Imm(1)) != e {
		t.Error("no-op substitution should return the original node")
	}
}

func TestSubstStmtShadowing(t *testing.T) {
	i := NewVar("i")
	inner := &For{Var: i, Min: Imm(0), Extent: Imm(2), Kind: ForSerial,
		Body: &Store{Buffer: "A", Index: i, Value: FImm(1)}}
	// i is rebound by the loop, so substitution must not reach inside.
	got := SubstStmt(inner, "i", Imm(9)).(*For)
	if got.Body.(*Store).Index != Expr(i) {
		t.Error("substitution must respect loop shadowing")
	}
	// But a different name substitutes through.
	s2 := &Store{Buffer: "A", Index: NewVar("j"), Value: FImm(1)}
	got2 := SubstStmt(s2, "j", Imm(4)).(*Store)
	if got2.Index.String() != "4" {
		t.Error("substitution should replace free variables")
	}
}

func TestSubstInsideSelectCallCast(t *testing.T) {
	x := NewVar("x")
	e := &Select{Cond: LT(x, Imm(1)), A: &Call{Fn: "exp", Args: []Expr{x}, Type: Float32}, B: &Cast{Value: x, To: Float32}}
	got := SubstExpr(e, "x", Imm(5))
	found := false
	WalkExpr(got, func(e Expr) {
		if v, ok := e.(*Var); ok && v.Name == "x" {
			found = true
		}
	})
	if found {
		t.Fatalf("x remains after substitution: %s", got)
	}
}

func TestForKindProperties(t *testing.T) {
	if !ForThread.IsGPUBound() || !ForThreadBlock.IsGPUBound() || !ForSubgroup.IsGPUBound() {
		t.Error("thread axes are GPU bound")
	}
	if ForSerial.IsGPUBound() || ForVectorized.IsGPUBound() {
		t.Error("serial/vectorized are not GPU bound")
	}
}

func TestCountLines(t *testing.T) {
	if n := CountLines(loopNest()); n != 5 {
		t.Fatalf("CountLines = %d, want 5 (2 headers + store + 2 braces)", n)
	}
}

func TestPropertyFoldMatchesArithmetic(t *testing.T) {
	f := func(a, b int16) bool {
		x, y := int(a), int(b)
		add := Add(Imm(x), Imm(y)).(*IntImm).Value
		mul := Mul(Imm(x), Imm(y))
		mulv := 0
		if imm, ok := mul.(*IntImm); ok {
			mulv = imm.Value
		}
		return add == x+y && mulv == x*y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
