// Package ir defines the unified low-level tensor intermediate
// representation at the heart of the stack (the "unified IR" of the paper).
// A scheduled tensor computation lowers to a loop nest of ir.Stmt whose
// leaves are ir.Expr trees. The same lowered IR is
//
//   - interpreted by internal/exec for functional validation,
//   - priced by internal/sim's device cost models, and
//   - printed as CUDA or OpenCL kernel source by internal/codegen.
//
// Loop axes carry a ForKind (serial, parallel, unrolled, vectorized, or
// bound to a GPU block/thread/subgroup axis), which is how schedule
// decisions reach all three consumers.
package ir

import (
	"fmt"
	"strings"
)

// DType is the element type of an expression. The stack computes in float32
// with int32 indices, mirroring edge-inference practice.
type DType int

const (
	Float32 DType = iota
	Int32
	Bool
)

func (d DType) String() string {
	switch d {
	case Float32:
		return "float32"
	case Int32:
		return "int32"
	case Bool:
		return "bool"
	}
	return "unknown"
}

// Expr is a side-effect-free scalar expression.
type Expr interface {
	isExpr()
	DType() DType
	String() string
}

// Var is a named scalar variable: a loop index, a kernel parameter, or a
// let-bound temporary.
type Var struct {
	Name string
	Type DType
}

func (*Var) isExpr()          {}
func (v *Var) DType() DType   { return v.Type }
func (v *Var) String() string { return v.Name }

// NewVar returns an int32 variable, the common case for loop indices.
func NewVar(name string) *Var { return &Var{Name: name, Type: Int32} }

// IntImm is an integer constant.
type IntImm struct{ Value int }

func (*IntImm) isExpr()          {}
func (*IntImm) DType() DType     { return Int32 }
func (i *IntImm) String() string { return fmt.Sprint(i.Value) }

// Imm is shorthand for an integer immediate.
func Imm(v int) *IntImm { return &IntImm{Value: v} }

// FloatImm is a float32 constant.
type FloatImm struct{ Value float32 }

func (*FloatImm) isExpr()          {}
func (*FloatImm) DType() DType     { return Float32 }
func (f *FloatImm) String() string { return fmt.Sprintf("%gf", f.Value) }

// FImm is shorthand for a float immediate.
func FImm(v float32) *FloatImm { return &FloatImm{Value: v} }

// BinOp enumerates binary operators.
type BinOp int

const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpDiv // integer division truncates toward zero like Go
	OpMod
	OpMin
	OpMax
	OpLT
	OpLE
	OpGT
	OpGE
	OpEQ
	OpNE
	OpAnd
	OpOr
)

var binOpNames = map[BinOp]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpMod: "%",
	OpMin: "min", OpMax: "max",
	OpLT: "<", OpLE: "<=", OpGT: ">", OpGE: ">=", OpEQ: "==", OpNE: "!=",
	OpAnd: "&&", OpOr: "||",
}

func (op BinOp) String() string { return binOpNames[op] }

// IsCompare reports whether the operator yields a boolean.
func (op BinOp) IsCompare() bool { return op >= OpLT && op <= OpNE }

// Binary applies op to two operands.
type Binary struct {
	Op   BinOp
	A, B Expr
}

func (*Binary) isExpr() {}
func (b *Binary) DType() DType {
	if b.Op.IsCompare() || b.Op == OpAnd || b.Op == OpOr {
		return Bool
	}
	return b.A.DType()
}
func (b *Binary) String() string {
	if b.Op == OpMin || b.Op == OpMax {
		return fmt.Sprintf("%s(%s, %s)", b.Op, b.A, b.B)
	}
	return fmt.Sprintf("(%s %s %s)", b.A, b.Op, b.B)
}

// Convenience constructors.
func Add(a, b Expr) Expr { return fold(&Binary{OpAdd, a, b}) }
func Sub(a, b Expr) Expr { return fold(&Binary{OpSub, a, b}) }
func Mul(a, b Expr) Expr { return fold(&Binary{OpMul, a, b}) }
func Div(a, b Expr) Expr { return fold(&Binary{OpDiv, a, b}) }
func Mod(a, b Expr) Expr { return fold(&Binary{OpMod, a, b}) }
func Min(a, b Expr) Expr { return fold(&Binary{OpMin, a, b}) }
func Max(a, b Expr) Expr { return fold(&Binary{OpMax, a, b}) }
func LT(a, b Expr) Expr  { return &Binary{OpLT, a, b} }
func LE(a, b Expr) Expr  { return &Binary{OpLE, a, b} }
func GE(a, b Expr) Expr  { return &Binary{OpGE, a, b} }
func And(a, b Expr) Expr { return &Binary{OpAnd, a, b} }

// fold performs trivial constant folding so lowered loop bounds stay
// readable and the interpreter does less work.
func fold(b *Binary) Expr {
	ai, aok := b.A.(*IntImm)
	bi, bok := b.B.(*IntImm)
	if aok && bok {
		switch b.Op {
		case OpAdd:
			return Imm(ai.Value + bi.Value)
		case OpSub:
			return Imm(ai.Value - bi.Value)
		case OpMul:
			return Imm(ai.Value * bi.Value)
		case OpDiv:
			if bi.Value != 0 {
				return Imm(ai.Value / bi.Value)
			}
		case OpMod:
			if bi.Value != 0 {
				return Imm(ai.Value % bi.Value)
			}
		case OpMin:
			return Imm(min(ai.Value, bi.Value))
		case OpMax:
			return Imm(max(ai.Value, bi.Value))
		}
	}
	switch b.Op {
	case OpAdd:
		if aok && ai.Value == 0 {
			return b.B
		}
		if bok && bi.Value == 0 {
			return b.A
		}
	case OpSub:
		if bok && bi.Value == 0 {
			return b.A
		}
	case OpMul:
		if aok && ai.Value == 1 {
			return b.B
		}
		if bok && bi.Value == 1 {
			return b.A
		}
		if (aok && ai.Value == 0) || (bok && bi.Value == 0) {
			return Imm(0)
		}
	case OpDiv:
		if bok && bi.Value == 1 {
			return b.A
		}
	}
	return b
}

// Select is a ternary: cond ? a : b. On GPUs this compiles to a predicated
// move and, unlike an if-statement, causes no thread divergence — the
// divergence-free NMS in internal/vision relies on that distinction.
type Select struct {
	Cond Expr
	A, B Expr
}

func (*Select) isExpr()        {}
func (s *Select) DType() DType { return s.A.DType() }
func (s *Select) String() string {
	return fmt.Sprintf("select(%s, %s, %s)", s.Cond, s.A, s.B)
}

// Load reads Buffer[Index]. Buffer names refer to allocations or kernel
// parameters; scope is resolved at execution time.
type Load struct {
	Buffer string
	Index  Expr
	Type   DType
}

func (*Load) isExpr()          {}
func (l *Load) DType() DType   { return l.Type }
func (l *Load) String() string { return fmt.Sprintf("%s[%s]", l.Buffer, l.Index) }

// LoadF is shorthand for a float32 load.
func LoadF(buf string, idx Expr) *Load { return &Load{Buffer: buf, Index: idx, Type: Float32} }

// Call invokes an intrinsic (exp, sqrt, sigmoid, ...), including the Intel
// subgroup primitives intel_sub_group_block_read / _shuffle that the Intel
// conv template emits.
type Call struct {
	Fn   string
	Args []Expr
	Type DType
}

func (*Call) isExpr()        {}
func (c *Call) DType() DType { return c.Type }
func (c *Call) String() string {
	parts := make([]string, len(c.Args))
	for i, a := range c.Args {
		parts[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", c.Fn, strings.Join(parts, ", "))
}

// Cast converts between dtypes.
type Cast struct {
	Value Expr
	To    DType
}

func (*Cast) isExpr()          {}
func (c *Cast) DType() DType   { return c.To }
func (c *Cast) String() string { return fmt.Sprintf("(%s)(%s)", c.To, c.Value) }

// Ramp is a vector of Lanes consecutive indices starting at Base with the
// given Stride; it appears as the index of vectorized loads/stores.
type Ramp struct {
	Base   Expr
	Stride int
	Lanes  int
}

func (*Ramp) isExpr()        {}
func (r *Ramp) DType() DType { return Int32 }
func (r *Ramp) String() string {
	return fmt.Sprintf("ramp(%s, %d, %d)", r.Base, r.Stride, r.Lanes)
}
