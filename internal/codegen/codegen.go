// Package codegen renders one lowered kernel as CUDA and as OpenCL source
// text — the paper's "universal GPU IR ... works for both CUDA and OpenCL"
// (Figure 1). GPU-bound loop axes become grid/block bindings, unrolled loops
// get unroll pragmas, vectorized loops get vectorization hints, shared
// allocations become __shared__ / __local arrays, and Intel subgroup axes
// use the Intel OpenCL subgroup extension (§3.2.1).
//
// The emitted source is not compiled in this reproduction (there is no GPU
// driver to hand it to); it is validated structurally by tests and used by
// the §3.1.1 engineering-effort experiment, while functional validation of
// the same IR goes through internal/exec.
package codegen

import (
	"fmt"
	"strings"

	"unigpu/internal/ir"
	"unigpu/internal/obs"
	"unigpu/internal/te"
)

// Target selects the output dialect.
type Target int

const (
	// CUDA targets Nvidia integrated GPUs (Jetson family).
	CUDA Target = iota
	// OpenCL targets Intel Graphics and ARM Mali.
	OpenCL
)

func (t Target) String() string {
	if t == CUDA {
		return "cuda"
	}
	return "opencl"
}

// LaunchConfig is the grid/block shape implied by the kernel's bound axes.
type LaunchConfig struct {
	Grid    [3]int // blockIdx x,y,z extents
	Block   [3]int // threadIdx x,y,z extents (subgroup lanes land here too)
	Threads int    // total threads per block
	Blocks  int    // total blocks
}

// Launch extracts the launch configuration from a kernel's bound axes.
func Launch(k *te.Kernel) LaunchConfig {
	lc := LaunchConfig{Grid: [3]int{1, 1, 1}, Block: [3]int{1, 1, 1}}
	gi, ti := 0, 0
	ir.WalkStmt(k.Body, func(s ir.Stmt) bool {
		f, ok := s.(*ir.For)
		if !ok {
			return true
		}
		ext := 1
		if imm, isImm := f.Extent.(*ir.IntImm); isImm {
			ext = imm.Value
		}
		switch f.Kind {
		case ir.ForThreadBlock:
			if gi < 3 {
				lc.Grid[gi] = ext
				gi++
			}
		case ir.ForThread, ir.ForSubgroup:
			if ti < 3 {
				lc.Block[ti] = ext
				ti++
			}
		}
		return true
	})
	lc.Blocks = lc.Grid[0] * lc.Grid[1] * lc.Grid[2]
	lc.Threads = lc.Block[0] * lc.Block[1] * lc.Block[2]
	return lc
}

// Emit renders the kernel in the given dialect.
func Emit(k *te.Kernel, target Target) string {
	sp := obs.Start("codegen.emit",
		obs.KV("kernel", k.Name), obs.KV("target", target.String()))
	g := &generator{target: target, dims: map[string]string{}}
	src := g.kernel(k)
	sp.SetAttrs(obs.KVInt("lines", LineCount(src)))
	sp.End()
	obs.Count("codegen.kernels", 1)
	return src
}

// LineCount returns the number of non-blank source lines Emit produces;
// used by the engineering-effort comparison (§3.1.1).
func LineCount(src string) int {
	n := 0
	for _, line := range strings.Split(src, "\n") {
		if strings.TrimSpace(line) != "" {
			n++
		}
	}
	return n
}

type generator struct {
	target Target
	b      strings.Builder
	indent int
	dims   map[string]string // loop var -> hardware index expression
}

// cname sanitizes an IR variable name into a C identifier (split axes are
// named with dots, e.g. "ax1.o").
func cname(name string) string {
	return strings.NewReplacer(".", "_", "-", "_").Replace(name)
}

func (g *generator) kernel(k *te.Kernel) string {
	lc := Launch(k)
	fmt.Fprintf(&g.b, "// kernel %s: grid=(%d,%d,%d) block=(%d,%d,%d)\n",
		k.Name, lc.Grid[0], lc.Grid[1], lc.Grid[2], lc.Block[0], lc.Block[1], lc.Block[2])

	params := make([]string, 0, len(k.Inputs)+1)
	for _, in := range k.Inputs {
		params = append(params, g.param(in, true))
	}
	params = append(params, g.param(k.Output.Name, false))

	switch g.target {
	case CUDA:
		fmt.Fprintf(&g.b, "extern \"C\" __global__ void %s(%s) {\n", k.Name, strings.Join(params, ", "))
	case OpenCL:
		fmt.Fprintf(&g.b, "__kernel void %s(%s) {\n", k.Name, strings.Join(params, ", "))
	}
	g.indent++
	g.bindHardwareAxes(k.Body)
	g.stmt(k.Body)
	g.indent--
	g.b.WriteString("}\n")
	return g.b.String()
}

func (g *generator) param(name string, in bool) string {
	constq := ""
	if in {
		constq = "const "
	}
	if g.target == OpenCL {
		return fmt.Sprintf("__global %sfloat* restrict %s", constq, name)
	}
	return fmt.Sprintf("%sfloat* __restrict__ %s", constq, name)
}

// bindHardwareAxes assigns grid/block dimension names to bound loop axes in
// order of appearance.
func (g *generator) bindHardwareAxes(body ir.Stmt) {
	dims := []string{"x", "y", "z"}
	gi, ti := 0, 0
	ir.WalkStmt(body, func(s ir.Stmt) bool {
		f, ok := s.(*ir.For)
		if !ok {
			return true
		}
		switch f.Kind {
		case ir.ForThreadBlock:
			if gi < 3 {
				if g.target == CUDA {
					g.dims[f.Var.Name] = "blockIdx." + dims[gi]
				} else {
					g.dims[f.Var.Name] = fmt.Sprintf("get_group_id(%d)", gi)
				}
				gi++
			}
		case ir.ForThread:
			if ti < 3 {
				if g.target == CUDA {
					g.dims[f.Var.Name] = "threadIdx." + dims[ti]
				} else {
					g.dims[f.Var.Name] = fmt.Sprintf("get_local_id(%d)", ti)
				}
				ti++
			}
		case ir.ForSubgroup:
			if g.target == CUDA {
				// CUDA has no subgroup concept distinct from the warp; lanes
				// map onto the warp-synchronous thread index.
				if ti < 3 {
					g.dims[f.Var.Name] = "threadIdx." + dims[ti]
					ti++
				}
			} else {
				g.dims[f.Var.Name] = "get_sub_group_local_id()"
			}
		}
		return true
	})
}

func (g *generator) line(format string, args ...any) {
	for i := 0; i < g.indent; i++ {
		g.b.WriteString("  ")
	}
	fmt.Fprintf(&g.b, format, args...)
	g.b.WriteByte('\n')
}

func (g *generator) stmt(s ir.Stmt) {
	switch v := s.(type) {
	case *ir.For:
		g.forStmt(v)
	case *ir.Store:
		g.line("%s[%s] = %s;", v.Buffer, g.expr(v.Index), g.expr(v.Value))
	case *ir.LetStmt:
		g.line("%s %s = %s;", g.ctype(v.Var.Type), cname(v.Var.Name), g.expr(v.Value))
		g.stmt(v.Body)
	case *ir.IfThenElse:
		g.line("if (%s) {", g.expr(v.Cond))
		g.indent++
		g.stmt(v.Then)
		g.indent--
		if v.Else != nil {
			g.line("} else {")
			g.indent++
			g.stmt(v.Else)
			g.indent--
		}
		g.line("}")
	case *ir.Allocate:
		qual := ""
		switch v.Scope {
		case ir.ScopeShared:
			if g.target == CUDA {
				qual = "__shared__ "
			} else {
				qual = "__local "
			}
		case ir.ScopeLocal:
			// Registers / private memory: plain automatic array.
		case ir.ScopeGlobal:
			qual = "/*global*/ "
		}
		g.line("%s%s %s[%s];", qual, g.ctype(v.Type), v.Buffer, g.expr(v.Size))
		g.stmt(v.Body)
	case *ir.Seq:
		for _, st := range v.Stmts {
			g.stmt(st)
		}
	case *ir.Barrier:
		if g.target == CUDA {
			g.line("__syncthreads();")
		} else if v.Scope == ir.ScopeShared {
			g.line("barrier(CLK_LOCAL_MEM_FENCE);")
		} else {
			g.line("barrier(CLK_GLOBAL_MEM_FENCE);")
		}
	case *ir.Evaluate:
		g.line("%s;", g.expr(v.Value))
	default:
		panic(fmt.Sprintf("codegen: unknown statement %T", s))
	}
}

func (g *generator) forStmt(f *ir.For) {
	name := cname(f.Var.Name)
	if hw, ok := g.dims[f.Var.Name]; ok {
		g.line("const int %s = %s;", name, hw)
		g.stmt(f.Body)
		return
	}
	if ext, ok := f.Extent.(*ir.IntImm); ok && ext.Value == 1 {
		g.line("const int %s = %s;", name, g.expr(f.Min))
		g.stmt(f.Body)
		return
	}
	switch f.Kind {
	case ir.ForUnrolled:
		g.line("#pragma unroll")
	case ir.ForVectorized:
		if g.target == OpenCL {
			g.line("// vectorized (vloadN/vstoreN)")
		} else {
			g.line("#pragma unroll // vectorized")
		}
	case ir.ForParallel:
		g.line("// parallel (host-side)")
	}
	g.line("for (int %s = %s; %s < %s + %s; ++%s) {",
		name, g.expr(f.Min), name, g.expr(f.Min), g.expr(f.Extent), name)
	g.indent++
	g.stmt(f.Body)
	g.indent--
	g.line("}")
}

func (g *generator) ctype(t ir.DType) string {
	switch t {
	case ir.Float32:
		return "float"
	case ir.Int32:
		return "int"
	case ir.Bool:
		if g.target == CUDA {
			return "bool"
		}
		return "int"
	}
	return "void"
}

func (g *generator) expr(e ir.Expr) string {
	switch v := e.(type) {
	case *ir.Var:
		return cname(v.Name)
	case *ir.IntImm:
		return fmt.Sprint(v.Value)
	case *ir.FloatImm:
		return fmt.Sprintf("%gf", v.Value)
	case *ir.Binary:
		return g.binary(v)
	case *ir.Select:
		return fmt.Sprintf("(%s ? %s : %s)", g.expr(v.Cond), g.expr(v.A), g.expr(v.B))
	case *ir.Load:
		return fmt.Sprintf("%s[%s]", v.Buffer, g.expr(v.Index))
	case *ir.Call:
		return g.call(v)
	case *ir.Cast:
		return fmt.Sprintf("((%s)%s)", g.ctype(v.To), g.expr(v.Value))
	case *ir.Ramp:
		return fmt.Sprintf("/*ramp*/(%s)", g.expr(v.Base))
	}
	panic(fmt.Sprintf("codegen: unknown expression %T", e))
}

func (g *generator) binary(b *ir.Binary) string {
	a, c := g.expr(b.A), g.expr(b.B)
	isFloat := b.A.DType() == ir.Float32
	switch b.Op {
	case ir.OpMin:
		if g.target == CUDA && isFloat {
			return fmt.Sprintf("fminf(%s, %s)", a, c)
		}
		return fmt.Sprintf("min(%s, %s)", a, c)
	case ir.OpMax:
		if g.target == CUDA && isFloat {
			return fmt.Sprintf("fmaxf(%s, %s)", a, c)
		}
		return fmt.Sprintf("max(%s, %s)", a, c)
	default:
		return fmt.Sprintf("(%s %s %s)", a, b.Op, c)
	}
}

func (g *generator) call(c *ir.Call) string {
	args := make([]string, len(c.Args))
	for i, a := range c.Args {
		args[i] = g.expr(a)
	}
	fn := c.Fn
	if g.target == CUDA {
		switch fn {
		case "exp", "log", "sqrt", "pow", "floor":
			fn += "f"
		case "abs":
			fn = "fabsf"
		case "sigmoid":
			return fmt.Sprintf("(1.0f / (1.0f + expf(-%s)))", args[0])
		case "intel_sub_group_block_read", "intel_sub_group_shuffle":
			// Warp-synchronous equivalent on Nvidia.
			fn = "__shfl_sync"
			args = append([]string{"0xffffffff"}, args...)
		}
	} else {
		switch fn {
		case "abs":
			fn = "fabs"
		case "sigmoid":
			return fmt.Sprintf("(1.0f / (1.0f + exp(-%s)))", args[0])
		}
	}
	return fmt.Sprintf("%s(%s)", fn, strings.Join(args, ", "))
}
