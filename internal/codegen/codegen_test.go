package codegen

import (
	"strings"
	"testing"

	"unigpu/internal/ir"
	"unigpu/internal/te"
)

func scheduledMatmul() *te.Kernel {
	A := te.Placeholder("A", 8, 8)
	B := te.Placeholder("B", 8, 8)
	C := te.Sum("C", []int{8, 8}, []int{8}, func(ax, r []ir.Expr) ir.Expr {
		return ir.Mul(A.Access(ax[0], r[0]), B.Access(r[0], ax[1]))
	})
	s := te.NewSchedule(C)
	ax := s.SpatialAxes()
	s.Bind(ax[0], ir.ForThreadBlock)
	no, ni := s.Split(ax[1], 4)
	s.Bind(no, ir.ForThread)
	s.Vectorize(ni)
	r := s.ReduceAxes()
	_, ri := s.Split(r[0], 4)
	s.Unroll(ri)
	return te.Lower("matmul", s)
}

func TestEmitCUDA(t *testing.T) {
	src := Emit(scheduledMatmul(), CUDA)
	wants := []string{
		`extern "C" __global__ void matmul(`,
		"const float* __restrict__ A",
		"float* __restrict__ C",
		"blockIdx.x",
		"threadIdx.x",
		"#pragma unroll",
		"float matmul_acc[1];",
	}
	for _, w := range wants {
		if !strings.Contains(src, w) {
			t.Errorf("CUDA source missing %q:\n%s", w, src)
		}
	}
	if strings.Contains(src, "get_group_id") {
		t.Error("CUDA source must not contain OpenCL intrinsics")
	}
}

func TestEmitOpenCL(t *testing.T) {
	src := Emit(scheduledMatmul(), OpenCL)
	wants := []string{
		"__kernel void matmul(",
		"__global const float* restrict A",
		"get_group_id(0)",
		"get_local_id(0)",
	}
	for _, w := range wants {
		if !strings.Contains(src, w) {
			t.Errorf("OpenCL source missing %q:\n%s", w, src)
		}
	}
	if strings.Contains(src, "blockIdx") {
		t.Error("OpenCL source must not contain CUDA builtins")
	}
}

func TestSameIRBothDialects(t *testing.T) {
	// The unified-IR claim: one kernel emits in both dialects without
	// re-lowering.
	k := scheduledMatmul()
	cu := Emit(k, CUDA)
	cl := Emit(k, OpenCL)
	if cu == "" || cl == "" || cu == cl {
		t.Fatal("both dialects must emit distinct non-empty source")
	}
	// The loop structure (unrolled reduce split) survives in both.
	for _, src := range []string{cu, cl} {
		if !strings.Contains(src, "for (int") {
			t.Error("emitted source should contain loops")
		}
	}
}

func TestLaunchConfig(t *testing.T) {
	lc := Launch(scheduledMatmul())
	if lc.Grid[0] != 8 || lc.Blocks != 8 {
		t.Fatalf("grid = %v", lc.Grid)
	}
	if lc.Block[0] != 2 || lc.Threads != 2 {
		t.Fatalf("block = %v", lc.Block)
	}
}

func TestSubgroupEmission(t *testing.T) {
	A := te.Placeholder("A", 16)
	C := te.Compute("C", []int{16}, func(ax []ir.Expr) ir.Expr {
		return &ir.Call{Fn: "intel_sub_group_shuffle", Args: []ir.Expr{A.Access(ax[0])}, Type: ir.Float32}
	})
	s := te.NewSchedule(C)
	ax := s.SpatialAxes()
	o, i := s.Split(ax[0], 8)
	s.Bind(o, ir.ForThreadBlock)
	s.Bind(i, ir.ForSubgroup)
	k := te.Lower("shuf", s)

	cl := Emit(k, OpenCL)
	if !strings.Contains(cl, "get_sub_group_local_id()") {
		t.Errorf("OpenCL should use the Intel subgroup extension:\n%s", cl)
	}
	if !strings.Contains(cl, "intel_sub_group_shuffle(") {
		t.Errorf("OpenCL should keep the subgroup intrinsic:\n%s", cl)
	}
	cu := Emit(k, CUDA)
	if !strings.Contains(cu, "__shfl_sync(0xffffffff,") {
		t.Errorf("CUDA should lower subgroup shuffle to warp shuffle:\n%s", cu)
	}
}

func TestSharedAllocationAndBarrier(t *testing.T) {
	body := &ir.Allocate{Buffer: "smem", Type: ir.Float32, Size: ir.Imm(64), Scope: ir.ScopeShared,
		Body: ir.SeqOf(
			&ir.Store{Buffer: "smem", Index: ir.Imm(0), Value: ir.FImm(1)},
			&ir.Barrier{Scope: ir.ScopeShared},
			&ir.Store{Buffer: "out", Index: ir.Imm(0), Value: ir.LoadF("smem", ir.Imm(0))},
		)}
	out := te.Placeholder("out", 1)
	k := &te.Kernel{Name: "stage", Output: out, Body: body}

	cu := Emit(k, CUDA)
	if !strings.Contains(cu, "__shared__ float smem[64];") || !strings.Contains(cu, "__syncthreads();") {
		t.Errorf("CUDA shared/barrier emission wrong:\n%s", cu)
	}
	cl := Emit(k, OpenCL)
	if !strings.Contains(cl, "__local float smem[64];") || !strings.Contains(cl, "barrier(CLK_LOCAL_MEM_FENCE);") {
		t.Errorf("OpenCL shared/barrier emission wrong:\n%s", cl)
	}
}

func TestMathIntrinsics(t *testing.T) {
	A := te.Placeholder("A", 4)
	C := te.Compute("C", []int{4}, func(ax []ir.Expr) ir.Expr {
		e := &ir.Call{Fn: "exp", Args: []ir.Expr{A.Access(ax[0])}, Type: ir.Float32}
		return ir.Max(e, ir.FImm(0))
	})
	k := te.Lower("m", te.NewSchedule(C))
	cu := Emit(k, CUDA)
	if !strings.Contains(cu, "expf(") || !strings.Contains(cu, "fmaxf(") {
		t.Errorf("CUDA intrinsics wrong:\n%s", cu)
	}
	cl := Emit(k, OpenCL)
	if !strings.Contains(cl, "exp(") || !strings.Contains(cl, "max(") {
		t.Errorf("OpenCL intrinsics wrong:\n%s", cl)
	}
}

func TestSelectEmitsTernary(t *testing.T) {
	A := te.Placeholder("A", 4)
	C := te.Compute("C", []int{4}, func(ax []ir.Expr) ir.Expr {
		return te.If(ir.LT(A.Access(ax[0]), ir.FImm(0)), ir.FImm(0), A.Access(ax[0]))
	})
	src := Emit(te.Lower("relu", te.NewSchedule(C)), CUDA)
	if !strings.Contains(src, "?") || !strings.Contains(src, ":") {
		t.Errorf("select should emit a ternary (predication, no divergence):\n%s", src)
	}
}

func TestLineCount(t *testing.T) {
	if LineCount("a\n\n b\n") != 2 {
		t.Fatal("LineCount should skip blank lines")
	}
	src := Emit(scheduledMatmul(), CUDA)
	if LineCount(src) < 10 {
		t.Fatalf("matmul kernel should be >10 lines, got %d", LineCount(src))
	}
}

func TestUnitExtentLoopCollapses(t *testing.T) {
	// Batch-1 loops become a const binding, not a for statement.
	A := te.Placeholder("A", 1, 4)
	C := te.Compute("C", []int{1, 4}, func(ax []ir.Expr) ir.Expr {
		return A.Access(ax[0], ax[1])
	})
	src := Emit(te.Lower("copy", te.NewSchedule(C)), CUDA)
	if strings.Contains(src, "for (int C_ax0") {
		t.Errorf("extent-1 loop should collapse to a const:\n%s", src)
	}
	if !strings.Contains(src, "const int C_ax0 = 0;") {
		t.Errorf("missing collapsed binding:\n%s", src)
	}
}

func TestSplitAxisNamesAreValidC(t *testing.T) {
	A := te.Placeholder("A", 16)
	C := te.Compute("C", []int{16}, func(ax []ir.Expr) ir.Expr { return A.Access(ax[0]) })
	s := te.NewSchedule(C)
	ax := s.SpatialAxes()
	o, i := s.Split(ax[0], 4)
	_, ii := s.Split(i, 2)
	s.Bind(o, ir.ForThreadBlock)
	s.Unroll(ii)
	for _, target := range []Target{CUDA, OpenCL} {
		src := Emit(te.Lower("k", s), target)
		for _, line := range strings.Split(src, "\n") {
			if strings.Contains(line, ".o") || strings.Contains(line, ".i") {
				t.Errorf("%s: identifier with dot leaked into source: %q", target, line)
			}
		}
	}
}

func TestEmitIsPure(t *testing.T) {
	k := scheduledMatmul()
	if Emit(k, CUDA) != Emit(k, CUDA) {
		t.Fatal("Emit must be deterministic and side-effect free")
	}
}
