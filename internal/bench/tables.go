package bench

import (
	"fmt"
	"strings"

	"unigpu/internal/baselines"
	"unigpu/internal/sim"
)

// Row is one line of a Tables 1-3 comparison.
type Row struct {
	Model      string
	OursMs     float64
	BaselineMs float64
	Supported  bool // baseline coverage (OpenVINO lacks detection)
	Speedup    float64
}

// Table is one overall-performance table (1, 2 or 3).
type Table struct {
	Number   int
	Platform *sim.Platform
	Baseline string
	Rows     []Row
}

// OverallTable regenerates Table 1 (DeepLens vs OpenVINO), Table 2 (aiSage
// vs ACL) or Table 3 (Jetson Nano vs cuDNN).
func (e *Estimator) OverallTable(num int) Table {
	var p *sim.Platform
	switch num {
	case 1:
		p = sim.DeepLens
	case 2:
		p = sim.AiSage
	case 3:
		p = sim.JetsonNano
	default:
		panic("bench: tables 1-3 only")
	}
	prof := baselines.ForPlatform(p)
	t := Table{Number: num, Platform: p, Baseline: prof.Name}
	for _, name := range modelOrder {
		ours := e.OursMs(name, p, true, true)
		m := e.Model(name, p)
		base, ok := prof.ModelMs(m)
		r := Row{Model: name, OursMs: ours, BaselineMs: base, Supported: ok}
		if ok {
			r.Speedup = base / ours
		}
		t.Rows = append(t.Rows, r)
	}
	return t
}

var modelOrder = []string{"ResNet50_v1", "MobileNet1.0", "SqueezeNet1.0",
	"SSD_MobileNet1.0", "SSD_ResNet50", "Yolov3"}

// AblationRow is one line of Tables 4-5.
type AblationRow struct {
	Device   string
	Model    string
	BeforeMs float64
	AfterMs  float64
	Speedup  float64
}

// VisionAblation regenerates Table 4: detection models with and without
// the §3.1 vision-specific operator optimizations, per device.
func (e *Estimator) VisionAblation() []AblationRow {
	var rows []AblationRow
	for _, p := range sim.Platforms() {
		for _, name := range modelOrder[3:] {
			before := e.OursMs(name, p, true, false)
			after := e.OursMs(name, p, true, true)
			rows = append(rows, AblationRow{
				Device: p.Name, Model: name,
				BeforeMs: before, AfterMs: after, Speedup: before / after,
			})
		}
	}
	return rows
}

// TuningAblation regenerates Table 5: classification models with default
// vs searched convolution schedules, per device.
func (e *Estimator) TuningAblation() []AblationRow {
	var rows []AblationRow
	for _, p := range sim.Platforms() {
		for _, name := range modelOrder[:3] {
			before := e.OursMs(name, p, false, true)
			after := e.OursMs(name, p, true, true)
			rows = append(rows, AblationRow{
				Device: p.Name, Model: name,
				BeforeMs: before, AfterMs: after, Speedup: before / after,
			})
		}
	}
	return rows
}

// FallbackResult is the §3.1.2 experiment: SSD_ResNet50 on DeepLens, all
// on the integrated GPU vs NMS fallen back to the CPU.
type FallbackResult struct {
	AllGPUMs    float64
	FallbackMs  float64
	OverheadPct float64
}

// FallbackExperiment reproduces the paper's fallback overhead measurement
// (1010.23 ms vs 1015.14 ms, <0.5% overhead).
func (e *Estimator) FallbackExperiment() FallbackResult {
	p := sim.DeepLens
	m := e.Model("SSD_ResNet50", p)
	base := e.TunedConvMs(m, p.GPU).TotalMs + e.OtherOpsMs(m, p.GPU)
	all := base + OptimizedVisionMs(m.Vision, p.GPU)
	fb := base + FallbackVisionMs(m.Vision, p)
	return FallbackResult{
		AllGPUMs:    all,
		FallbackMs:  fb,
		OverheadPct: (fb - all) / all * 100,
	}
}

// Rendering -------------------------------------------------------------

// Format renders a table in the paper's layout.
func (t Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table %d: ours vs %s on %s\n", t.Number, t.Baseline, t.Platform.Name)
	fmt.Fprintf(&b, "%-18s %12s %14s %9s\n", "Models", "Ours (ms)", t.Baseline+" (ms)", "Speedup")
	for _, r := range t.Rows {
		if r.Supported {
			fmt.Fprintf(&b, "%-18s %12.2f %14.2f %9.2f\n", r.Model, r.OursMs, r.BaselineMs, r.Speedup)
		} else {
			fmt.Fprintf(&b, "%-18s %12.2f %14s %9s\n", r.Model, r.OursMs, "—", "—")
		}
	}
	return b.String()
}

// FormatAblation renders Tables 4-5.
func FormatAblation(title string, rows []AblationRow) string {
	var b strings.Builder
	fmt.Fprintln(&b, title)
	fmt.Fprintf(&b, "%-22s %-18s %12s %12s %9s\n", "Devices", "Models", "Before (ms)", "After (ms)", "Speedup")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s %-18s %12.2f %12.2f %9.2f\n", r.Device, r.Model, r.BeforeMs, r.AfterMs, r.Speedup)
	}
	return b.String()
}
