package bench

// Published numbers from the paper's evaluation, used by EXPERIMENTS.md
// generation and the shape-checking tests (paper-vs-measured).

// PaperRow holds (ours, baseline) milliseconds; baseline < 0 means
// unsupported ("—").
type PaperRow struct{ Ours, Baseline float64 }

// PaperTables1to3 records Tables 1-3 keyed by table number then model.
var PaperTables1to3 = map[int]map[string]PaperRow{
	1: { // AWS DeepLens vs OpenVINO
		"ResNet50_v1":      {186.15, 203.60},
		"MobileNet1.0":     {85.58, 53.48},
		"SqueezeNet1.0":    {52.10, 42.01},
		"SSD_MobileNet1.0": {398.48, -1},
		"SSD_ResNet50":     {1006.01, -1},
		"Yolov3":           {1004.13, -1},
	},
	2: { // Acer aiSage vs ACL
		"ResNet50_v1":      {345.60, 358.17},
		"MobileNet1.0":     {78.83, 95.00},
		"SqueezeNet1.0":    {66.61, 77.10},
		"SSD_MobileNet1.0": {243.16, 216.87},
		"SSD_ResNet50":     {777.26, 737.90},
		"Yolov3":           {1097.47, 1042.90},
	},
	3: { // Nvidia Jetson Nano vs cuDNN
		"ResNet50_v1":      {113.81, 117.22},
		"MobileNet1.0":     {20.63, 30.71},
		"SqueezeNet1.0":    {26.58, 42.98},
		"SSD_MobileNet1.0": {135.5, 197.3},
		"SSD_ResNet50":     {371.32, 478.33},
		"Yolov3":           {553.79, 802.41},
	},
}

// PaperAblation holds (before, after) milliseconds keyed by device then
// model.
type PaperAblation struct{ Before, After float64 }

// PaperTable4 is the vision-specific-operator ablation.
var PaperTable4 = map[string]map[string]PaperAblation{
	"AWS DeepLens": {
		"SSD_MobileNet1.0": {966.20, 398.48},
		"SSD_ResNet50":     {1491.30, 1006.01},
		"Yolov3":           {2610.13, 1004.13},
	},
	"Acer aiSage": {
		"SSD_MobileNet1.0": {1098.11, 243.16},
		"SSD_ResNet50":     {1631.30, 777.26},
		"Yolov3":           {6429.69, 1097.47},
	},
	"Nvidia Jetson Nano": {
		"SSD_MobileNet1.0": {264, 135.5},
		"SSD_ResNet50":     {490.4, 371.32},
		"Yolov3":           {1350, 553.79},
	},
}

// PaperTable5 is the convolution-tuning ablation.
var PaperTable5 = map[string]map[string]PaperAblation{
	"AWS DeepLens": {
		"ResNet50_v1":   {260, 186.15},
		"MobileNet1.0":  {558.15, 85.58},
		"SqueezeNet1.0": {64, 52.1},
	},
	"Acer aiSage": {
		"ResNet50_v1":   {727.29, 345.6},
		"MobileNet1.0":  {655.18, 78.83},
		"SqueezeNet1.0": {1362.2, 106.61},
	},
	"Nvidia Jetson Nano": {
		"ResNet50_v1":   {1088.55, 113.81},
		"MobileNet1.0":  {155.14, 20.63},
		"SqueezeNet1.0": {1045, 26.58},
	},
}

// PaperFallback is the §3.1.2 measurement on DeepLens (SSD_ResNet50).
var PaperFallback = FallbackResult{AllGPUMs: 1010.23, FallbackMs: 1015.14, OverheadPct: 0.49}
