package bench

import (
	"fmt"
	"strings"

	"unigpu/internal/codegen"
	"unigpu/internal/ir"
	"unigpu/internal/sim"
	"unigpu/internal/te"
	"unigpu/internal/vision"
)

// ExperimentsReport renders the full paper-vs-measured markdown document
// (EXPERIMENTS.md): every table and figure of the evaluation, regenerated
// on the simulated platforms, next to the paper's published numbers.
func (e *Estimator) ExperimentsReport() string {
	var b strings.Builder
	b.WriteString(`# EXPERIMENTS — paper vs. measured

Every table and figure of the paper's evaluation (§4), regenerated with
this repository. Regenerate with ` + "`go run ./cmd/unigpu-bench -experiments`" + `
(or per artifact: ` + "`-table 1..5 | fallback | irsize`" + `).

Absolute milliseconds come from the calibrated analytical device models
(see DESIGN.md, "Hardware substitution") — the reproduction targets the
*shape* of each result: who wins, by roughly what factor, where coverage
gaps and crossovers fall. "paper" columns quote the publication verbatim.

**Known deviations** (documented, not hidden):

- The paper does not state YOLOv3's input resolution; 416 makes the
  published latencies inconsistent with the ResNet-calibrated device
  efficiencies on all three platforms, so this reproduction uses 320 (a
  standard GluonCV yolo3 size) — see DESIGN.md.
- Vendor baselines are fitted per-class efficiency profiles (the real
  libraries are closed binaries for hardware Go cannot drive), so their
  per-model errors are a few percent by construction; coverage gaps
  (OpenVINO's missing detection support) are structural, not fitted.
- Tables 4 and 5 compare against the paper within bands: the "Before"
  configurations are reconstructions of unoptimized implementations the
  paper never fully specifies.

`)

	// Tables 1-3.
	for n := 1; n <= 3; n++ {
		t := e.OverallTable(n)
		paper := PaperTables1to3[n]
		fmt.Fprintf(&b, "## Table %d — ours vs %s on %s\n\n", n, t.Baseline, t.Platform.Name)
		fmt.Fprintf(&b, "| Model | Ours (ms) | paper | %s (ms) | paper | Speedup | paper |\n", t.Baseline)
		b.WriteString("|---|---|---|---|---|---|---|\n")
		for _, r := range t.Rows {
			p := paper[r.Model]
			if !r.Supported {
				fmt.Fprintf(&b, "| %s | %.2f | %.2f | — | — | — | — |\n", r.Model, r.OursMs, p.Ours)
				continue
			}
			fmt.Fprintf(&b, "| %s | %.2f | %.2f | %.2f | %.2f | %.2f | %.2f |\n",
				r.Model, r.OursMs, p.Ours, r.BaselineMs, p.Baseline, r.Speedup, p.Baseline/p.Ours)
		}
		b.WriteString("\n")
	}

	// Table 4.
	b.WriteString("## Table 4 — vision-specific operator optimizations (§3.1)\n\n")
	b.WriteString("| Device | Model | Before (ms) | paper | After (ms) | paper | Speedup | paper |\n")
	b.WriteString("|---|---|---|---|---|---|---|---|\n")
	for _, r := range e.VisionAblation() {
		p := PaperTable4[r.Device][r.Model]
		fmt.Fprintf(&b, "| %s | %s | %.2f | %.2f | %.2f | %.2f | %.2f | %.2f |\n",
			r.Device, r.Model, r.BeforeMs, p.Before, r.AfterMs, p.After, r.Speedup, p.Before/p.After)
	}
	b.WriteString("\nShape check: every entry speeds up; aiSage (Mali, no shared memory) gains the most — §4.3.\n\n")

	// Table 5.
	b.WriteString("## Table 5 — tuning-based convolution optimizations (§3.2)\n\n")
	b.WriteString("| Device | Model | Before (ms) | paper | After (ms) | paper | Speedup | paper |\n")
	b.WriteString("|---|---|---|---|---|---|---|---|\n")
	for _, r := range e.TuningAblation() {
		p := PaperTable5[r.Device][r.Model]
		fmt.Fprintf(&b, "| %s | %s | %.2f | %.2f | %.2f | %.2f | %.2f | %.2f |\n",
			r.Device, r.Model, r.BeforeMs, p.Before, r.AfterMs, p.After, r.Speedup, p.Before/p.After)
	}
	b.WriteString("\nShape check: tuning always helps; the Jetson Nano gains the most (its default CUDA schedule fills 1/8 of a warp).\n\n")

	// Fallback experiment.
	f := e.FallbackExperiment()
	b.WriteString("## §3.1.2 — CPU-fallback overhead (SSD_ResNet50, AWS DeepLens)\n\n")
	b.WriteString("| Configuration | ms | paper (ms) |\n|---|---|---|\n")
	fmt.Fprintf(&b, "| entirely on integrated GPU | %.2f | %.2f |\n", f.AllGPUMs, PaperFallback.AllGPUMs)
	fmt.Fprintf(&b, "| NMS fallback to CPU | %.2f | %.2f |\n", f.FallbackMs, PaperFallback.FallbackMs)
	fmt.Fprintf(&b, "| overhead | %.2f%% | %.2f%% (<0.5%%) |\n\n", f.OverheadPct, PaperFallback.OverheadPct)

	// Figures 2 and 3.
	b.WriteString(`## Figure 2 — segmented sort pipeline

Reproduced as the executable algorithm in ` + "`internal/vision/sort.go`" + `:
flatten → equal-size blocks → parallel block sort → cooperative merge
rounds (coop 2, 4, 8, ...) touching only active interfaces. Property tests
verify segment isolation, permutation and ordering against a per-segment
reference; ` + "`BenchmarkFigure2_*`" + ` measures it against the naive
per-segment baseline; modelled GPU costs:

| Device | naive per-segment sort (ms) | segmented sort (ms) |
|---|---|---|
`)
	for _, p := range sim.Platforms() {
		fmt.Fprintf(&b, "| %s | %.2f | %.2f |\n",
			p.Name,
			vision.NaiveSortCost(p.GPU, 24528, 20)*1e3,
			vision.SegmentedSortCost(p.GPU, 24528)*1e3)
	}
	b.WriteString(`
## Figure 3 — three-stage prefix sum

The paper's exact example (18 elements, 5 processors) is a unit test
(` + "`TestFigure3PrefixSumExample`" + `): up-sweep reductions 14 9 7 12 4,
Hillis–Steele scan 14 23 30 42 46, down-sweep output
5 12 13 14 17 21 23 23 26 27 28 30 36 37 39 42 43 46. Modelled GPU costs
for a 1M-element scan:

| Device | Hillis–Steele (log n syncs) (ms) | register-blocked 3-stage (ms) |
|---|---|---|
`)
	for _, p := range sim.Platforms() {
		fmt.Fprintf(&b, "| %s | %.2f | %.2f |\n",
			p.Name, vision.NaiveScanCost(p.GPU, 1<<20)*1e3, vision.ScanCost(p.GPU, 1<<20)*1e3)
	}

	// IR-size experiment.
	irL, cuL, clL := IRSizeExperiment()
	b.WriteString(fmt.Sprintf(`
## §3.1.1 — engineering effort (unified IR vs hand-written CUDA)

The vision pipeline (predicated NMS suppression, register-blocked scan
up-sweep, box decoding) authored once in the unified IR and emitted to
both backends (`+"`internal/vision/irkernels.go`"+`):

| authored IR lines | generated CUDA lines | generated OpenCL lines |
|---|---|---|
| %d | %d | %d |

The paper reports ~100 lines of IR replacing 325 lines of CUDA for its
(larger) operator set; the ratio — one concise IR source serving two
backend implementations — is what this experiment checks.
`, irL, cuL, clL))

	return b.String()
}

// IRSizeExperiment measures the §3.1.1 conciseness comparison.
func IRSizeExperiment() (irLines, cudaLines, openclLines int) {
	for _, k := range []*te.Kernel{
		vision.NMSSuppressKernel(4096, 0.5),
		vision.ScanUpSweepKernel(4096, 64),
		vision.DecodeBoxKernel(4096),
	} {
		irLines += ir.CountLines(k.Body)
		cudaLines += codegen.LineCount(codegen.Emit(k, codegen.CUDA))
		openclLines += codegen.LineCount(codegen.Emit(k, codegen.OpenCL))
	}
	return
}
