package bench

import (
	"fmt"
	"strings"

	"unigpu/internal/sim"
	"unigpu/internal/vision"
)

func platforms() []*sim.Platform { return sim.Platforms() }

// Figure2Demo traces the segmented-sort pipeline of Figure 2 on a small
// example: per-segment data, block sorting, and the final per-segment
// ordering, with the modelled GPU cost comparison.
func Figure2Demo() string {
	var b strings.Builder
	b.WriteString("Figure 2 — segmented sort pipeline\n\n")
	data := []float32{9, 3, 7, 1, 8, 8, 2, 5, 4, 6, 0, 2, 7}
	segs := vision.NewEvenSegments(4, 6, 3)
	fmt.Fprintf(&b, "flattened input: %v\n", data)
	fmt.Fprintf(&b, "segment starts : %v (3 variable-length segments)\n\n", segs.Starts)

	order := vision.SegmentedArgsort(data, segs, true)
	for s := 0; s < segs.NumSegments(); s++ {
		lo, hi := segs.Starts[s], segs.Starts[s+1]
		vals := make([]float32, 0, hi-lo)
		for _, idx := range order[lo:hi] {
			vals = append(vals, data[idx])
		}
		fmt.Fprintf(&b, "segment %d sorted (desc): %v  (source indices %v)\n", s, vals, order[lo:hi])
	}

	b.WriteString("\nmodelled GPU cost, 24528 boxes (SSD512), 20 classes:\n")
	for _, p := range platforms() {
		fmt.Fprintf(&b, "  %-22s naive per-segment %8.2f ms   segmented %6.2f ms\n",
			p.Name, vision.NaiveSortCost(p.GPU, 24528, 20)*1e3, vision.SegmentedSortCost(p.GPU, 24528)*1e3)
	}
	return b.String()
}

// Figure3Demo reproduces the paper's exact prefix-sum example (18
// elements, 5 processors) stage by stage.
func Figure3Demo() string {
	var b strings.Builder
	b.WriteString("Figure 3 — prefix sum (scan) pipeline, the paper's exact example\n\n")
	input := []float32{5, 7, 1, 1, 3, 4, 2, 0, 3, 1, 1, 2, 6, 1, 2, 3, 1, 3}
	procs := 5
	chunk := (len(input) + procs - 1) / procs
	fmt.Fprintf(&b, "input (18 elements, %d processors, chunk %d):\n  %v\n\n", procs, chunk, input)

	// Up-sweep: per-processor inclusive scans and reductions.
	b.WriteString("up-sweep (sequential scan inside each processor):\n")
	sums := make([]float32, 0, procs)
	for p := 0; p < procs; p++ {
		lo := p * chunk
		hi := min(lo+chunk, len(input))
		var acc float32
		scanned := make([]float32, 0, hi-lo)
		for _, v := range input[lo:hi] {
			acc += v
			scanned = append(scanned, acc)
		}
		sums = append(sums, acc)
		fmt.Fprintf(&b, "  proc %d: %v  (reduction %g)\n", p, scanned, acc)
	}

	// Scan over the reductions.
	fmt.Fprintf(&b, "\nscan (Hillis–Steele over reductions %v):\n", sums)
	cur := append([]float32(nil), sums...)
	for d, pass := 1, 0; d < len(cur); d, pass = d*2, pass+1 {
		next := make([]float32, len(cur))
		copy(next, cur)
		for i := d; i < len(cur); i++ {
			next[i] = cur[i] + cur[i-d]
		}
		cur = next
		fmt.Fprintf(&b, "  pass %d (i-%d): %v\n", pass, d, cur)
	}

	// Down-sweep.
	out := vision.PrefixSum(input, procs)
	fmt.Fprintf(&b, "\ndown-sweep (add carries back):\n  %v\n", out)

	b.WriteString("\nmodelled GPU cost, 1M elements:\n")
	for _, p := range platforms() {
		fmt.Fprintf(&b, "  %-22s Hillis–Steele %8.2f ms   3-stage register-blocked %6.2f ms\n",
			p.Name, vision.NaiveScanCost(p.GPU, 1<<20)*1e3, vision.ScanCost(p.GPU, 1<<20)*1e3)
	}
	return b.String()
}
