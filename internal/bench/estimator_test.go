package bench

import (
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"unigpu/internal/autotvm"
	"unigpu/internal/graphtuner"
	"unigpu/internal/models"
	"unigpu/internal/obs"
	"unigpu/internal/ops"
	"unigpu/internal/sim"
)

// tuneModel builds a synthetic conv sequence with distinct workloads so
// estimator tests exercise real fan-out without the cost of a full zoo
// model.
func tuneModel(n int) *models.Model {
	ws := make([]ops.ConvWorkload, n)
	for i := range ws {
		ws[i] = ops.ConvWorkload{N: 1, CIn: 16 + 8*(i%4), H: 28, W: 28,
			COut: 32 + 16*(i%3), KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	}
	return &models.Model{Name: "synthetic", Convs: ws}
}

func trialsCounted() int64 { return obs.DefaultRegistry.Counter("tune.trials").Value() }

func TestParallelTuningMatchesSerial(t *testing.T) {
	m := tuneModel(8)
	d := sim.MaxwellNano
	serial := NewEstimator()
	serial.Budget, serial.Jobs = 8, 1
	parallel := NewEstimator()
	parallel.Budget, parallel.Jobs = 8, 8
	ps := serial.TunedConvMs(m, d)
	pp := parallel.TunedConvMs(m, d)
	if !reflect.DeepEqual(ps, pp) {
		t.Fatalf("parallel plan diverged from serial:\n serial %+v\nparallel %+v", ps, pp)
	}
}

func TestCandidatesSingleflight(t *testing.T) {
	// Six copies of the same workload, tuned concurrently by four
	// goroutines: the search must run exactly once.
	w := ops.ConvWorkload{N: 1, CIn: 32, H: 28, W: 28, COut: 64, KH: 3, KW: 3,
		StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	m := &models.Model{Name: "dup", Convs: []ops.ConvWorkload{w, w, w, w, w, w}}
	d := sim.MaxwellNano

	// Reference trial count of exactly one search at this budget.
	before := trialsCounted()
	graphtuner.CandidatesFor(w, d, 8, 1)
	oneSearch := trialsCounted() - before

	e := NewEstimator()
	e.Budget, e.Jobs = 8, 4
	before = trialsCounted()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e.TunedConvMs(m, d)
		}()
	}
	wg.Wait()
	if got := trialsCounted() - before; got != oneSearch {
		t.Fatalf("concurrent duplicate tuning ran %d trials, want exactly one search (%d)", got, oneSearch)
	}
}

func TestWarmDBSkipsSearchAndReproducesPlan(t *testing.T) {
	path := filepath.Join(t.TempDir(), "records.json")
	m := tuneModel(5)
	d := sim.MaxwellNano

	db, err := autotvm.OpenDB(path)
	if err != nil {
		t.Fatal(err)
	}
	cold := NewEstimator()
	cold.Budget, cold.DB = 8, db
	planCold := cold.TunedConvMs(m, d)
	if db.Len() != 5 { // tuneModel(5) produces 5 distinct workloads
		t.Fatalf("expected 5 candidate records, got %d", db.Len())
	}
	if err := db.Save(); err != nil {
		t.Fatal(err)
	}

	db2, err := autotvm.OpenDB(path)
	if err != nil {
		t.Fatal(err)
	}
	warm := NewEstimator()
	warm.Budget, warm.DB = 8, db2
	before := trialsCounted()
	planWarm := warm.TunedConvMs(m, d)
	if got := trialsCounted() - before; got != 0 {
		t.Fatalf("warm DB must skip search entirely, counted %d trials", got)
	}
	if !reflect.DeepEqual(planCold, planWarm) {
		t.Fatalf("warm plan diverged from cold search:\n cold %+v\nwarm %+v", planCold, planWarm)
	}
}

func TestDeeperBudgetInvalidatesShallowDBRecords(t *testing.T) {
	db := autotvm.NewDB("")
	m := tuneModel(3)
	d := sim.MaxwellNano
	shallow := NewEstimator()
	shallow.Budget, shallow.DB = 4, db
	shallow.TunedConvMs(m, d)

	deep := NewEstimator()
	deep.Budget, deep.DB = 16, db
	before := trialsCounted()
	deep.TunedConvMs(m, d)
	if got := trialsCounted() - before; got == 0 {
		t.Fatal("a deeper budget must re-search shallow candidate records")
	}
}

func benchTunedConv(b *testing.B, jobs int) {
	m := tuneModel(12)
	d := sim.MaxwellNano
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := NewEstimator() // fresh cache per iteration so the search really runs
		e.Budget, e.Jobs = 24, jobs
		e.TunedConvMs(m, d)
	}
}

// BenchmarkTunedConvMsSerial vs BenchmarkTunedConvMsParallel demonstrate
// the tuning-pipeline fan-out (EXPERIMENTS.md "Parallel tuning").
func BenchmarkTunedConvMsSerial(b *testing.B)   { benchTunedConv(b, 1) }
func BenchmarkTunedConvMsParallel(b *testing.B) { benchTunedConv(b, 0) }
