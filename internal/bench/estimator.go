// Package bench is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (§4) from the stack — tuned and untuned
// schedules from templates+autotvm+graphtuner, vision-operator costs from
// internal/vision, vendor baselines from internal/baselines, all priced on
// the simulated platforms of internal/sim.
package bench

import (
	"runtime"
	"sync"

	"unigpu/internal/autotvm"
	"unigpu/internal/graph"
	"unigpu/internal/graphtuner"
	"unigpu/internal/models"
	"unigpu/internal/obs"
	"unigpu/internal/ops"
	"unigpu/internal/sim"
	"unigpu/internal/templates"
	"unigpu/internal/vision"
)

// Estimator prices models on platforms, caching tuning results per
// (device, workload) the way the paper's tuning database does. With a DB
// attached the cache is persistent: searches consult the database first
// and store their winners, so a warm database makes a cold process's
// first compilation near-instant.
type Estimator struct {
	Budget int   // per-layout search budget
	Seed   int64 // deterministic searches
	// Jobs bounds the worker pool tuning a model's conv workloads in
	// parallel; 0 means GOMAXPROCS. Set before the first search.
	Jobs int
	// DB is the optional persistent tuning-records database (§3.2.3). Set
	// before the first search; nil keeps the cache in-memory only.
	DB *autotvm.DB

	mu     sync.Mutex
	cands  map[string]*candEntry
	graphs map[string]*models.Model
}

// candEntry is one singleflight slot of the candidates cache: the first
// goroutine to claim a key runs the search inside once; concurrent
// requests for the same (device, workload) block on it instead of
// duplicating the search.
type candEntry struct {
	once  sync.Once
	cands []graphtuner.Candidate
}

// NewEstimator returns an estimator with the default search budget.
func NewEstimator() *Estimator {
	return &Estimator{Budget: 48, Seed: 1,
		cands: map[string]*candEntry{}, graphs: map[string]*models.Model{}}
}

// jobs resolves the tuning worker-pool size.
func (e *Estimator) jobs() int {
	if e.Jobs > 0 {
		return e.Jobs
	}
	return runtime.GOMAXPROCS(0)
}

// Model returns the (lite, graph-optimized) model for pricing, cached.
// Input size follows §4.1: the model default, except SSD on aiSage at 300.
func (e *Estimator) Model(name string, p *sim.Platform) *models.Model {
	size := models.DefaultInputSize(name)
	if p == sim.AiSage && (name == "SSD_MobileNet1.0" || name == "SSD_ResNet50") {
		size = 300 // memory limitation of the Mali GPU (§4.2)
	}
	key := name + "@" + itoa(size)
	e.mu.Lock()
	defer e.mu.Unlock()
	if m, ok := e.graphs[key]; ok {
		return m
	}
	m := models.Build(name, size, true)
	graph.Optimize(m.Graph)
	e.graphs[key] = m
	return m
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// candidates tunes one workload per candidate layout, cached per device
// with singleflight semantics: concurrent callers of the same key share
// one search. With a DB attached, the database is consulted before
// searching and the winners stored after.
func (e *Estimator) candidates(w ops.ConvWorkload, d *sim.Device, parent *obs.Span) []graphtuner.Candidate {
	key := d.Name + "|" + w.Key()
	e.mu.Lock()
	ent, ok := e.cands[key]
	if !ok {
		ent = &candEntry{}
		e.cands[key] = ent
	}
	e.mu.Unlock()
	ent.once.Do(func() {
		if e.DB != nil {
			if stored, ok := e.DB.LookupCandidates(d.Name, w.Key(), e.Budget); ok {
				ent.cands = candidatesFromStored(stored)
				obs.Count("tune.db_hits", 1)
				return
			}
		}
		ent.cands = graphtuner.CandidatesForUnder(parent, w, d, e.Budget, e.Seed)
		if e.DB != nil {
			e.DB.StoreCandidates(d.Name, w.Key(), e.Budget, candidatesToStored(ent.cands))
		}
	})
	return ent.cands
}

// candidatesFromStored / candidatesToStored round-trip graph-tuner
// candidate sets through the records database.
func candidatesFromStored(stored []autotvm.StoredCandidate) []graphtuner.Candidate {
	out := make([]graphtuner.Candidate, len(stored))
	for i, s := range stored {
		out[i] = graphtuner.Candidate{Block: s.Block, Config: s.Config, KernelMs: s.KernelMs}
	}
	return out
}

func candidatesToStored(cands []graphtuner.Candidate) []autotvm.StoredCandidate {
	out := make([]autotvm.StoredCandidate, len(cands))
	for i, c := range cands {
		out[i] = autotvm.StoredCandidate{Block: c.Block, Config: c.Config, KernelMs: c.KernelMs}
	}
	return out
}

// TunedConvMs runs the graph tuner's DP over the model's conv sequence and
// returns total kernel+transform milliseconds. Per-workload candidate
// generation fans out over a bounded worker pool (Jobs workers); the
// singleflight cache deduplicates repeated workloads, and the layout DP
// stays sequential (it is cheap and order-dependent).
func (e *Estimator) TunedConvMs(m *models.Model, d *sim.Device) graphtuner.Plan {
	sp := obs.Start("tune.conv_plan",
		obs.KVInt("convs", len(m.Convs)), obs.KV("device", d.Name))
	defer sp.End()
	cands := make([][]graphtuner.Candidate, len(m.Convs))
	jobs := e.jobs()
	if jobs > len(m.Convs) {
		jobs = len(m.Convs)
	}
	if jobs <= 1 {
		for i, w := range m.Convs {
			cands[i] = e.candidates(w, d, sp)
		}
	} else {
		var wg sync.WaitGroup
		sem := make(chan struct{}, jobs)
		for i, w := range m.Convs {
			wg.Add(1)
			sem <- struct{}{}
			go func(i int, w ops.ConvWorkload) {
				defer wg.Done()
				defer func() { <-sem }()
				cands[i] = e.candidates(w, d, sp)
			}(i, w)
		}
		wg.Wait()
	}
	plan := graphtuner.Optimize(m.Convs, cands, d)
	sp.SetAttrs(obs.KVFloat("total_ms", plan.TotalMs))
	return plan
}

// UntunedConvMs prices every conv with the pre-tuning default schedule
// (the "Before" of Table 5).
func (e *Estimator) UntunedConvMs(m *models.Model, d *sim.Device) float64 {
	var total float64
	for _, w := range m.Convs {
		total += templates.CostMs(w, templates.DeviceDefaultConfig(w, d), d)
	}
	return total
}

// OtherOpsMs prices the non-convolution graph nodes (pooling, residual
// adds, concats, reshapes): bandwidth-bound elementwise kernels.
func (e *Estimator) OtherOpsMs(m *models.Model, d *sim.Device) float64 {
	var total float64
	for _, n := range m.Graph.OpNodes() {
		switch n.Op.Kind() {
		case "conv2d", "dense", "flatten", "batch_norm",
			"box_nms", "multibox_detection", "yolo_decode", "device_copy":
			continue // conv/dense in the plan; vision in the profile
		}
		outE := float64(n.OutShape.NumElements())
		bytes := outE * float64(n.StorageDType().Size())
		for _, in := range n.Inputs {
			if in.Op != nil || in.IsInput() {
				e := float64(in.OutShape.NumElements())
				bytes += e * float64(in.StorageDType().Size())
			}
		}
		// Traffic counts each tensor at its storage width (fp16 carriers
		// halve it); elementwise flops stay priced at full rate.
		total += sim.CostFlopsBytes(d, 2*outE, bytes/4, 4, 1) * 1e3
	}
	return total
}

// OptimizedVisionMs prices the §3.1.1 post-processing pipeline: one
// segmented sort over all boxes, the register-blocked compaction scan, the
// divergence-free NMS, plus the per-head decode kernels.
func OptimizedVisionMs(v *models.VisionProfile, d *sim.Device) float64 {
	if v == nil {
		return 0
	}
	decode := float64(v.Heads) * sim.LaunchCost(d)
	s := vision.SegmentedSortCost(d, v.Boxes) +
		vision.ScanCost(d, v.Boxes) +
		vision.NMSCost(d, v.Boxes, v.Kept) +
		decode
	return s * 1e3
}

// NaiveVisionMs prices the pre-optimization formulation the paper improves
// on (Table 4's "Before"): per-class fine-grained sorting, a whole-array
// Hillis-Steele scan per head, and a branching per-class NMS loop on GPU.
func NaiveVisionMs(v *models.VisionProfile, d *sim.Device) float64 {
	if v == nil {
		return 0
	}
	const keptPerClass = 64 // suppression iterations per class in the naive loop
	s := vision.NaiveSortCost(d, v.Boxes, v.Classes) +
		float64(v.Heads)*vision.NaiveScanCost(d, v.Boxes) +
		float64(v.Classes)*vision.NaiveNMSCost(d, v.Boxes, keptPerClass)
	return s * 1e3
}

// FallbackVisionMs prices NMS fallen back to the companion CPU (§3.1.2):
// the sequential algorithm plus two device copies of the detection tensor
// over shared DRAM.
func FallbackVisionMs(v *models.VisionProfile, p *sim.Platform) float64 {
	if v == nil {
		return 0
	}
	bytes := float64(v.Boxes * vision.DetWidth * 4)
	s := vision.CPUNMSCost(p.CPU, v.Boxes, v.Kept) + 2*sim.CopyCost(p, bytes) +
		float64(v.Heads)*sim.LaunchCost(p.GPU)
	return s * 1e3
}

// OursMs is the end-to-end latency of our stack for a model on a platform.
// tuned selects searched vs default conv schedules (Table 5); visionOpt
// selects the §3.1.1 operators vs the naive formulation (Table 4).
func (e *Estimator) OursMs(name string, p *sim.Platform, tuned, visionOpt bool) float64 {
	m := e.Model(name, p)
	var conv float64
	if tuned {
		conv = e.TunedConvMs(m, p.GPU).TotalMs
	} else {
		conv = e.UntunedConvMs(m, p.GPU)
	}
	other := e.OtherOpsMs(m, p.GPU)
	var vis float64
	if visionOpt {
		vis = OptimizedVisionMs(m.Vision, p.GPU)
	} else {
		vis = NaiveVisionMs(m.Vision, p.GPU)
	}
	return conv + other + vis
}
