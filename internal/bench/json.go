package bench

import (
	"encoding/json"
	"io"
	"os"
)

// PerfRecord is one machine-readable benchmark result, the unit of the
// perf trajectory unigpu-bench -json emits: later PRs diff these files to
// see whether a change moved the predicted latencies.
type PerfRecord struct {
	Model       string  `json:"model"`
	Platform    string  `json:"platform"`
	PredictedMs float64 `json:"predicted_ms"`
	Baseline    string  `json:"baseline,omitempty"`
	BaselineMs  float64 `json:"baseline_ms,omitempty"`
	Speedup     float64 `json:"speedup,omitempty"`
}

// PerfRecords prices every model of Tables 1-3 on its platform and pairs
// it with the vendor baseline where one exists.
func (e *Estimator) PerfRecords() []PerfRecord {
	var out []PerfRecord
	for n := 1; n <= 3; n++ {
		t := e.OverallTable(n)
		for _, r := range t.Rows {
			rec := PerfRecord{
				Model:       r.Model,
				Platform:    t.Platform.Name,
				PredictedMs: r.OursMs,
			}
			if r.Supported {
				rec.Baseline = t.Baseline
				rec.BaselineMs = r.BaselineMs
				rec.Speedup = r.Speedup
			}
			out = append(out, rec)
		}
	}
	return out
}

// WritePerfJSON renders records as indented JSON.
func WritePerfJSON(w io.Writer, recs []PerfRecord) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(recs)
}

// WritePerfJSONFile writes records to a file; unigpu-bench's -json flag
// lands here.
func WritePerfJSONFile(path string, recs []PerfRecord) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WritePerfJSON(f, recs); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
