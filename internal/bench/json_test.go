package bench

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestPerfRecordsRoundTrip(t *testing.T) {
	recs := []PerfRecord{
		{Model: "SqueezeNet1.0", Platform: "DeepLens (Intel)", PredictedMs: 10.5,
			Baseline: "OpenVINO", BaselineMs: 21, Speedup: 2},
		{Model: "Yolov3", Platform: "Jetson Nano (Nvidia)", PredictedMs: 99.9},
	}
	var buf bytes.Buffer
	if err := WritePerfJSON(&buf, recs); err != nil {
		t.Fatal(err)
	}
	var back []PerfRecord
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("perf JSON does not parse: %v", err)
	}
	if len(back) != 2 || back[0] != recs[0] || back[1] != recs[1] {
		t.Fatalf("round trip mismatch: %+v", back)
	}
	// Unsupported baselines are omitted, not zero-filled.
	if bytes.Contains(buf.Bytes(), []byte(`"baseline_ms": 0`)) {
		t.Fatal("omitempty lost on baseline fields")
	}
}
