package bench

import (
	"math"
	"strings"
	"sync"
	"testing"

	"unigpu/internal/sim"
)

// The experiment harness is expensive (it tunes every workload on every
// device), so all tests share one estimator and compute each artifact once.
var (
	once    sync.Once
	est     *Estimator
	tables  [4]Table // index 1..3
	visRows []AblationRow
	tuning  []AblationRow
	fallbck FallbackResult
)

func artifacts() {
	once.Do(func() {
		est = NewEstimator()
		for n := 1; n <= 3; n++ {
			tables[n] = est.OverallTable(n)
		}
		visRows = est.VisionAblation()
		tuning = est.TuningAblation()
		fallbck = est.FallbackExperiment()
	})
}

// sideMatches reports whether a measured speedup falls on the same side of
// 1.0 as the paper's, treating near-ties (within 12%) as compatible.
func sideMatches(got, paper float64) bool {
	if (got >= 1) == (paper >= 1) {
		return true
	}
	return math.Abs(got-1) < 0.12 || math.Abs(paper-1) < 0.07
}

func TestTables1to3ReproducePaperShape(t *testing.T) {
	artifacts()
	for n := 1; n <= 3; n++ {
		paper := PaperTables1to3[n]
		for _, r := range tables[n].Rows {
			want := paper[r.Model]
			if want.Baseline < 0 {
				if r.Supported {
					t.Errorf("table %d %s: baseline should be unsupported (OpenVINO gap)", n, r.Model)
				}
				continue
			}
			if !r.Supported {
				t.Errorf("table %d %s: baseline unexpectedly unsupported", n, r.Model)
				continue
			}
			paperSpeedup := want.Baseline / want.Ours
			if !sideMatches(r.Speedup, paperSpeedup) {
				t.Errorf("table %d %s: speedup %.2f on wrong side of paper's %.2f",
					n, r.Model, r.Speedup, paperSpeedup)
			}
		}
	}
}

func TestOursWithinFactorTwoOfPaper(t *testing.T) {
	artifacts()
	for n := 1; n <= 3; n++ {
		paper := PaperTables1to3[n]
		for _, r := range tables[n].Rows {
			ratio := r.OursMs / paper[r.Model].Ours
			if ratio < 0.5 || ratio > 2.0 {
				t.Errorf("table %d %s: ours %.1f ms vs paper %.1f ms (x%.2f) outside the 2x band",
					n, r.Model, r.OursMs, paper[r.Model].Ours, ratio)
			}
		}
	}
}

func TestHeadlineSpeedupUpTo162(t *testing.T) {
	artifacts()
	// The abstract's claim: similar or better performance, up to ~1.62x.
	best := 0.0
	for n := 1; n <= 3; n++ {
		for _, r := range tables[n].Rows {
			if r.Supported && r.Speedup > best {
				best = r.Speedup
			}
		}
	}
	if best < 1.2 || best > 2.2 {
		t.Errorf("best speedup %.2f should be a clear win in the 1.2-2.2 band (paper: 1.62)", best)
	}
}

func TestTable4VisionOptimizationAlwaysHelps(t *testing.T) {
	artifacts()
	paper := PaperTable4
	perDevice := map[string]float64{}
	for _, r := range visRows {
		if r.Speedup <= 1.0 {
			t.Errorf("%s %s: vision optimization must speed things up, got %.2f",
				r.Device, r.Model, r.Speedup)
		}
		want := paper[r.Device][r.Model]
		paperSpeed := want.Before / want.After
		// Within a 3x band of the paper's ratio (substrate is a model).
		if r.Speedup > paperSpeed*3 || r.Speedup < paperSpeed/3 {
			t.Errorf("%s %s: speedup %.2f vs paper %.2f outside 3x band",
				r.Device, r.Model, r.Speedup, paperSpeed)
		}
		perDevice[r.Device] += r.Speedup
	}
	// §4.3: "aiSage benefits most from the vision-specific operations".
	if perDevice["Acer aiSage"] <= perDevice["AWS DeepLens"] ||
		perDevice["Acer aiSage"] <= perDevice["Nvidia Jetson Nano"] {
		t.Errorf("aiSage should gain the most: %v", perDevice)
	}
}

func TestTable5TuningAlwaysHelps(t *testing.T) {
	artifacts()
	perDevice := map[string]float64{}
	for _, r := range tuning {
		if r.Speedup < 1.4 {
			t.Errorf("%s %s: tuning speedup only %.2f", r.Device, r.Model, r.Speedup)
		}
		perDevice[r.Device] += r.Speedup
	}
	// The Jetson Nano shows the largest tuning gains (paper: up to 39.3x;
	// its default CUDA schedule fills 1/8 of a warp).
	if perDevice["Nvidia Jetson Nano"] <= perDevice["AWS DeepLens"] ||
		perDevice["Nvidia Jetson Nano"] <= perDevice["Acer aiSage"] {
		t.Errorf("Nano should gain the most from tuning: %v", perDevice)
	}
}

func TestFallbackOverheadUnderHalfPercent(t *testing.T) {
	artifacts()
	if fallbck.OverheadPct <= 0 {
		t.Errorf("fallback must cost something (copies), got %.3f%%", fallbck.OverheadPct)
	}
	if fallbck.OverheadPct >= 0.5 {
		t.Errorf("fallback overhead %.2f%% should stay under the paper's 0.5%%", fallbck.OverheadPct)
	}
	if fallbck.FallbackMs <= fallbck.AllGPUMs {
		t.Error("fallback path should be slightly slower than all-GPU")
	}
}

func TestAiSageUses300Input(t *testing.T) {
	artifacts()
	m := est.Model("SSD_ResNet50", sim.AiSage)
	if m.InputSize != 300 {
		t.Fatalf("aiSage SSD input = %d, want 300 (§4.2 memory limitation)", m.InputSize)
	}
	if est.Model("SSD_ResNet50", sim.DeepLens).InputSize != 512 {
		t.Fatal("other platforms use 512")
	}
}

func TestEstimatorDeterminism(t *testing.T) {
	artifacts()
	e2 := NewEstimator()
	again := e2.OverallTable(3)
	for i, r := range tables[3].Rows {
		if math.Abs(r.OursMs-again.Rows[i].OursMs) > 1e-9 {
			t.Fatalf("%s: %.6f vs %.6f — estimator must be deterministic",
				r.Model, r.OursMs, again.Rows[i].OursMs)
		}
	}
}

func TestTunedBeatsUntunedEverywhere(t *testing.T) {
	artifacts()
	for _, p := range sim.Platforms() {
		for _, name := range modelOrder[:3] {
			m := est.Model(name, p)
			tuned := est.TunedConvMs(m, p.GPU).TotalMs
			untuned := est.UntunedConvMs(m, p.GPU)
			if tuned >= untuned {
				t.Errorf("%s %s: tuned %.2f >= untuned %.2f", p.Name, name, tuned, untuned)
			}
		}
	}
}

func TestFormatRendering(t *testing.T) {
	artifacts()
	s := tables[1].Format()
	for _, want := range []string{"Table 1", "OpenVINO", "—", "ResNet50_v1"} {
		if !containsStr(s, want) {
			t.Errorf("formatted table missing %q:\n%s", want, s)
		}
	}
	a := FormatAblation("Table 5", tuning)
	if !containsStr(a, "Before (ms)") || !containsStr(a, "Nvidia Jetson Nano") {
		t.Errorf("ablation format wrong:\n%s", a)
	}
}

func containsStr(s, sub string) bool { return strings.Contains(s, sub) }

func TestFamilyVariantsTrackRepresentative(t *testing.T) {
	// §4.1: "Performance comparison result of one model is similar to its
	// variants of the same family." Within the ResNet family, tuned
	// latency must be ordered by depth on every platform.
	artifacts()
	for _, p := range sim.Platforms() {
		prev := 0.0
		for _, name := range []string{"ResNet18_v1", "ResNet34_v1", "ResNet50_v1", "ResNet101_v1"} {
			m := est.Model(name, p)
			ms := est.TunedConvMs(m, p.GPU).TotalMs
			if ms <= prev {
				t.Errorf("%s: %s (%.2f ms) should cost more than its shallower sibling (%.2f ms)",
					p.Name, name, ms, prev)
			}
			prev = ms
		}
	}
}

func TestExperimentsReportRenders(t *testing.T) {
	artifacts()
	rep := est.ExperimentsReport()
	for _, want := range []string{
		"Table 1", "Table 5", "OpenVINO", "cuDNN",
		"Figure 2", "Figure 3", "CPU-fallback overhead",
		"| ResNet50_v1 |", "unified IR",
	} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q", want)
		}
	}
	irL, cuL, clL := IRSizeExperiment()
	if irL <= 0 || irL >= cuL || cuL+clL < 2*irL {
		t.Errorf("IR size experiment inconsistent: %d IR, %d CUDA, %d OpenCL", irL, cuL, clL)
	}
}
