package vision

import (
	"math"

	"unigpu/internal/tensor"
)

// MultiboxPrior generates SSD anchor (prior) boxes for one feature map of
// size fh×fw: one box per (size, first ratio) pair plus one per extra
// ratio, centered on every cell, in normalized corner coordinates.
// Output shape: (1, fh*fw*numAnchors, 4).
func MultiboxPrior(fh, fw int, sizes, ratios []float32) *tensor.Tensor {
	numAnchors := len(sizes) + len(ratios) - 1
	out := tensor.New(1, fh*fw*numAnchors, 4)
	idx := 0
	for y := 0; y < fh; y++ {
		cy := (float32(y) + 0.5) / float32(fh)
		for x := 0; x < fw; x++ {
			cx := (float32(x) + 0.5) / float32(fw)
			emit := func(w, h float32) {
				out.Set(cx-w/2, 0, idx, 0)
				out.Set(cy-h/2, 0, idx, 1)
				out.Set(cx+w/2, 0, idx, 2)
				out.Set(cy+h/2, 0, idx, 3)
				idx++
			}
			// First ratio with every size.
			r0 := float32(math.Sqrt(float64(ratios[0])))
			for _, s := range sizes {
				emit(s*r0, s/r0)
			}
			// Remaining ratios with the first size.
			for _, r := range ratios[1:] {
				rs := float32(math.Sqrt(float64(r)))
				emit(sizes[0]*rs, sizes[0]/rs)
			}
		}
	}
	return out
}

// MultiboxDetection decodes SSD predictions into detections and applies
// NMS. clsProb is (batch, numClasses, numAnchors) with class 0 =
// background; locPred is (batch, numAnchors*4) center-offset regressions;
// anchors is (1, numAnchors, 4) corner boxes. Variances follow the SSD
// convention (0.1, 0.1, 0.2, 0.2).
func MultiboxDetection(clsProb, locPred, anchors *tensor.Tensor, cfg NMSConfig) *tensor.Tensor {
	s := clsProb.Shape()
	batch, numClasses, numAnchors := s[0], s[1], s[2]
	dets := tensor.New(batch, numAnchors, DetWidth)
	for b := 0; b < batch; b++ {
		for a := 0; a < numAnchors; a++ {
			// Pick the best foreground class.
			bestCls, bestScore := -1, float32(0)
			for c := 1; c < numClasses; c++ {
				if p := clsProb.At(b, c, a); p > bestScore {
					bestScore = p
					bestCls = c - 1
				}
			}
			box := DecodeBox(
				[4]float32{anchors.At(0, a, 0), anchors.At(0, a, 1), anchors.At(0, a, 2), anchors.At(0, a, 3)},
				[4]float32{locPred.At(b, a*4), locPred.At(b, a*4+1), locPred.At(b, a*4+2), locPred.At(b, a*4+3)},
			)
			dets.Set(float32(bestCls), b, a, 0)
			dets.Set(bestScore, b, a, 1)
			for k := 0; k < 4; k++ {
				dets.Set(box[k], b, a, 2+k)
			}
		}
	}
	return BoxNMS(dets, cfg)
}

// DecodeBox applies SSD center-variance decoding of a location regression
// against its anchor, returning a corner-format box.
func DecodeBox(anchor, loc [4]float32) [4]float32 {
	const vx, vy, vw, vh = 0.1, 0.1, 0.2, 0.2
	aw := anchor[2] - anchor[0]
	ah := anchor[3] - anchor[1]
	acx := anchor[0] + aw/2
	acy := anchor[1] + ah/2
	cx := loc[0]*vx*aw + acx
	cy := loc[1]*vy*ah + acy
	w := float32(math.Exp(float64(loc[2]*vw))) * aw
	h := float32(math.Exp(float64(loc[3]*vh))) * ah
	return [4]float32{cx - w/2, cy - h/2, cx + w/2, cy + h/2}
}

// ROIAlign extracts fixed-size features for each region of interest with
// bilinear sampling (no quantization). features is NCHW; rois is
// (numRois, 5) rows of [batchIdx, x1, y1, x2, y2] in input coordinates;
// spatialScale maps input coordinates to feature coordinates.
func ROIAlign(features, rois *tensor.Tensor, pooledH, pooledW int, spatialScale float32, samplingRatio int) *tensor.Tensor {
	fs := features.Shape()
	c, fh, fw := fs[1], fs[2], fs[3]
	numRois := rois.Shape()[0]
	out := tensor.New(numRois, c, pooledH, pooledW)
	for r := 0; r < numRois; r++ {
		b := int(rois.At(r, 0))
		x1 := rois.At(r, 1) * spatialScale
		y1 := rois.At(r, 2) * spatialScale
		x2 := rois.At(r, 3) * spatialScale
		y2 := rois.At(r, 4) * spatialScale
		roiW := maxf(x2-x1, 1)
		roiH := maxf(y2-y1, 1)
		binW := roiW / float32(pooledW)
		binH := roiH / float32(pooledH)
		sr := samplingRatio
		if sr <= 0 {
			sr = int(math.Ceil(float64(binH)))
			if sr < 1 {
				sr = 1
			}
		}
		for ci := 0; ci < c; ci++ {
			for py := 0; py < pooledH; py++ {
				for px := 0; px < pooledW; px++ {
					var sum float32
					for sy := 0; sy < sr; sy++ {
						yy := y1 + float32(py)*binH + (float32(sy)+0.5)*binH/float32(sr)
						for sx := 0; sx < sr; sx++ {
							xx := x1 + float32(px)*binW + (float32(sx)+0.5)*binW/float32(sr)
							sum += bilinear(features, b, ci, yy, xx, fh, fw)
						}
					}
					out.Set(sum/float32(sr*sr), r, ci, py, px)
				}
			}
		}
	}
	return out
}

func bilinear(t *tensor.Tensor, b, c int, y, x float32, h, w int) float32 {
	if y < -1 || y > float32(h) || x < -1 || x > float32(w) {
		return 0
	}
	y = maxf(y, 0)
	x = maxf(x, 0)
	y0, x0 := int(y), int(x)
	y1, x1 := y0+1, x0+1
	ly, lx := y-float32(y0), x-float32(x0)
	if y0 >= h-1 {
		y0, y1 = h-1, h-1
		ly = 0
	}
	if x0 >= w-1 {
		x0, x1 = w-1, w-1
		lx = 0
	}
	v00 := t.At(b, c, y0, x0)
	v01 := t.At(b, c, y0, x1)
	v10 := t.At(b, c, y1, x0)
	v11 := t.At(b, c, y1, x1)
	return v00*(1-ly)*(1-lx) + v01*(1-ly)*lx + v10*ly*(1-lx) + v11*ly*lx
}

// YoloDecode turns one YOLOv3 detection head output (batch,
// anchors*(5+classes), gh, gw) into raw detections (batch, gh*gw*anchors,
// 6). anchorsWH are the head's anchor sizes in input pixels; stride is the
// input-to-grid downsampling.
func YoloDecode(feat *tensor.Tensor, anchorsWH [][2]float32, numClasses, stride int) *tensor.Tensor {
	s := feat.Shape()
	batch, gh, gw := s[0], s[2], s[3]
	na := len(anchorsWH)
	attrs := 5 + numClasses
	out := tensor.New(batch, gh*gw*na, DetWidth)
	sig := func(v float32) float32 { return float32(1 / (1 + math.Exp(-float64(v)))) }
	for b := 0; b < batch; b++ {
		idx := 0
		for y := 0; y < gh; y++ {
			for x := 0; x < gw; x++ {
				for a := 0; a < na; a++ {
					ch := a * attrs
					tx := sig(feat.At(b, ch+0, y, x))
					ty := sig(feat.At(b, ch+1, y, x))
					tw := feat.At(b, ch+2, y, x)
					th := feat.At(b, ch+3, y, x)
					obj := sig(feat.At(b, ch+4, y, x))
					bestCls, bestP := 0, float32(0)
					for c := 0; c < numClasses; c++ {
						if p := sig(feat.At(b, ch+5+c, y, x)); p > bestP {
							bestP = p
							bestCls = c
						}
					}
					cx := (float32(x) + tx) * float32(stride)
					cy := (float32(y) + ty) * float32(stride)
					bw := anchorsWH[a][0] * float32(math.Exp(float64(tw)))
					bh := anchorsWH[a][1] * float32(math.Exp(float64(th)))
					out.Set(float32(bestCls), b, idx, 0)
					out.Set(obj*bestP, b, idx, 1)
					out.Set(cx-bw/2, b, idx, 2)
					out.Set(cy-bh/2, b, idx, 3)
					out.Set(cx+bw/2, b, idx, 4)
					out.Set(cy+bh/2, b, idx, 5)
					idx++
				}
			}
		}
	}
	return out
}
