package vision

import "sync"

// PrefixSum computes the inclusive prefix sum with the three-stage scheme
// of Figure 3: register-blocked up-sweep, a Hillis–Steele scan over the
// per-processor reductions, and a parallel down-sweep that adds each
// processor's carry back. numProcs models the number of parallel
// processors; the flat array is divided into ceil(n/numProcs)-sized chunks,
// one per processor, so no global synchronization is needed inside a chunk
// — that is the register-blocking idea (§3.1.1).
func PrefixSum(data []float32, numProcs int) []float32 {
	n := len(data)
	out := make([]float32, n)
	if n == 0 {
		return out
	}
	if numProcs < 1 {
		numProcs = 1
	}
	chunk := (n + numProcs - 1) / numProcs
	procs := (n + chunk - 1) / chunk

	// Up-sweep: sequential inclusive scan inside each processor's chunk,
	// all processors in parallel.
	sums := make([]float32, procs)
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		lo := p * chunk
		hi := min(lo+chunk, n)
		wg.Add(1)
		go func(p, lo, hi int) {
			defer wg.Done()
			var acc float32
			for i := lo; i < hi; i++ {
				acc += data[i]
				out[i] = acc
			}
			sums[p] = acc
		}(p, lo, hi)
	}
	wg.Wait()

	// Scan: Hillis–Steele inclusive scan across the per-processor
	// reductions (log(procs) passes over a tiny array — no global sync
	// over the full input).
	carries := HillisSteeleScan(sums)

	// Down-sweep: add the carry of everything before each processor.
	for p := 1; p < procs; p++ {
		lo := p * chunk
		hi := min(lo+chunk, n)
		carry := carries[p-1]
		wg.Add(1)
		go func(lo, hi int, carry float32) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				out[i] += carry
			}
		}(lo, hi, carry)
	}
	wg.Wait()
	return out
}

// HillisSteeleScan is the classic O(n log n) inclusive scan [15]: in pass
// d, element i-2^d is added to element i. Used directly over the
// per-processor reductions, and standalone as the naive whole-array GPU
// scan baseline (each pass costs a global synchronization on real
// hardware, which is what the register blocking avoids).
func HillisSteeleScan(data []float32) []float32 {
	n := len(data)
	cur := make([]float32, n)
	copy(cur, data)
	next := make([]float32, n)
	for d := 1; d < n; d *= 2 {
		for i := 0; i < n; i++ {
			if i >= d {
				next[i] = cur[i] + cur[i-d]
			} else {
				next[i] = cur[i]
			}
		}
		cur, next = next, cur
	}
	return cur
}

// SequentialScan is the trivial CPU reference (§3.1.1: "a trivial
// sequential algorithm on the CPU").
func SequentialScan(data []float32) []float32 {
	out := make([]float32, len(data))
	var acc float32
	for i, v := range data {
		acc += v
		out[i] = acc
	}
	return out
}

// ScanPasses returns the number of Hillis–Steele passes for n elements,
// i.e. ceil(log2(n)) — each pass is a global synchronization in the naive
// GPU formulation.
func ScanPasses(n int) int {
	p := 0
	for d := 1; d < n; d *= 2 {
		p++
	}
	return p
}
