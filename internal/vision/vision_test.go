package vision

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"unigpu/internal/sim"
	"unigpu/internal/tensor"
)

func TestFigure3PrefixSumExample(t *testing.T) {
	// The paper's exact Figure 3 example: 18 elements, 5 processors.
	input := []float32{5, 7, 1, 1, 3, 4, 2, 0, 3, 1, 1, 2, 6, 1, 2, 3, 1, 3}
	want := []float32{5, 12, 13, 14, 17, 21, 23, 23, 26, 27, 28, 30, 36, 37, 39, 42, 43, 46}
	got := PrefixSum(input, 5)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PrefixSum[%d] = %v, want %v (full: %v)", i, got[i], want[i], got)
		}
	}
}

func TestFigure3UpSweepReductions(t *testing.T) {
	// The per-processor reductions in Figure 3 are 14, 9, 7, 12, 4 and
	// their Hillis–Steele scan is 14, 23, 30, 42, 46.
	sums := []float32{14, 9, 7, 12, 4}
	scan := HillisSteeleScan(sums)
	want := []float32{14, 23, 30, 42, 46}
	for i := range want {
		if scan[i] != want[i] {
			t.Fatalf("scan = %v, want %v", scan, want)
		}
	}
}

func TestPrefixSumMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{0, 1, 2, 7, 100, 1000, 4097} {
		data := make([]float32, n)
		for i := range data {
			data[i] = float32(rng.Intn(9))
		}
		want := SequentialScan(data)
		for _, procs := range []int{1, 3, 5, 16, 64} {
			got := PrefixSum(data, procs)
			for i := range want {
				if math.Abs(float64(got[i]-want[i])) > 1e-3 {
					t.Fatalf("n=%d procs=%d: PrefixSum[%d]=%v want %v", n, procs, i, got[i], want[i])
				}
			}
		}
	}
}

func TestHillisSteeleMatchesSequential(t *testing.T) {
	f := func(raw []uint8) bool {
		data := make([]float32, len(raw))
		for i, v := range raw {
			data[i] = float32(v % 16)
		}
		got := HillisSteeleScan(data)
		want := SequentialScan(data)
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestScanPasses(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 1024: 10, 1025: 11}
	for n, want := range cases {
		if got := ScanPasses(n); got != want {
			t.Errorf("ScanPasses(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestSegmentOf(t *testing.T) {
	segs := NewEvenSegments(3, 0, 4, 2)
	wants := []int{0, 0, 0, 2, 2, 2, 2, 3, 3}
	for p, want := range wants {
		if got := segs.SegmentOf(p); got != want {
			t.Errorf("SegmentOf(%d) = %d, want %d", p, got, want)
		}
	}
	if segs.Len() != 9 || segs.NumSegments() != 4 {
		t.Fatal("segment accounting wrong")
	}
}

func checkSegmentedSorted(t *testing.T, data []float32, segs Segments, order []int32, descending bool) {
	t.Helper()
	if len(order) != len(data) {
		t.Fatalf("order length %d != data %d", len(order), len(data))
	}
	seen := map[int32]bool{}
	for p, src := range order {
		// Permutation property.
		if seen[src] {
			t.Fatalf("index %d appears twice", src)
		}
		seen[src] = true
		// Elements stay within their segment.
		if segs.SegmentOf(p) != segs.SegmentOf(int(src)) {
			t.Fatalf("position %d (segment %d) filled from segment %d",
				p, segs.SegmentOf(p), segs.SegmentOf(int(src)))
		}
	}
	// Ordered within each segment.
	for s := 0; s < segs.NumSegments(); s++ {
		for p := segs.Starts[s] + 1; p < segs.Starts[s+1]; p++ {
			a, b := data[order[p-1]], data[order[p]]
			if descending && a < b {
				t.Fatalf("segment %d not descending at %d: %v < %v", s, p, a, b)
			}
			if !descending && a > b {
				t.Fatalf("segment %d not ascending at %d: %v > %v", s, p, a, b)
			}
		}
	}
}

func TestSegmentedArgsortBasic(t *testing.T) {
	data := []float32{3, 1, 2, 9, 8, 7, 6, 0.5}
	segs := NewEvenSegments(3, 4, 1)
	order := SegmentedArgsort(data, segs, true)
	checkSegmentedSorted(t, data, segs, order, true)
	// First segment sorted descending: 3,2,1 -> indices 0,2,1.
	if order[0] != 0 || order[1] != 2 || order[2] != 1 {
		t.Fatalf("segment 0 order = %v", order[:3])
	}
}

func TestSegmentedArgsortMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		numSegs := 1 + rng.Intn(8)
		sizes := make([]int, numSegs)
		total := 0
		for i := range sizes {
			sizes[i] = rng.Intn(700)
			total += sizes[i]
		}
		segs := NewEvenSegments(sizes...)
		data := make([]float32, total)
		for i := range data {
			data[i] = float32(rng.Intn(50))
		}
		for _, desc := range []bool{true, false} {
			fast := SegmentedArgsort(data, segs, desc)
			slow := NaiveSegmentedArgsort(data, segs, desc)
			checkSegmentedSorted(t, data, segs, fast, desc)
			for i := range fast {
				if data[fast[i]] != data[slow[i]] {
					t.Fatalf("trial %d: value mismatch at %d", trial, i)
				}
			}
		}
	}
}

func TestSegmentedArgsortCrossesBlockBoundaries(t *testing.T) {
	// One big segment far larger than the block size exercises every
	// cooperative merge round of Figure 2.
	n := 5000
	rng := rand.New(rand.NewSource(4))
	data := make([]float32, n)
	for i := range data {
		data[i] = rng.Float32()
	}
	segs := NewEvenSegments(n)
	order := SegmentedArgsort(data, segs, false)
	checkSegmentedSorted(t, data, segs, order, false)
}

func TestArgsortSingleSegment(t *testing.T) {
	order := Argsort([]float32{0.3, 0.9, 0.1}, true)
	if order[0] != 1 || order[1] != 0 || order[2] != 2 {
		t.Fatalf("argsort = %v", order)
	}
}

func TestSegmentedArgsortStability(t *testing.T) {
	data := []float32{5, 5, 5, 5}
	order := SegmentedArgsort(data, NewEvenSegments(4), true)
	for i := range order {
		if order[i] != int32(i) {
			t.Fatalf("equal keys must keep original order, got %v", order)
		}
	}
}

func TestPropertySegmentedSortPermutation(t *testing.T) {
	f := func(raw []uint8, cut uint8) bool {
		if len(raw) == 0 {
			return true
		}
		data := make([]float32, len(raw))
		for i, v := range raw {
			data[i] = float32(v)
		}
		c := int(cut) % len(raw)
		segs := NewEvenSegments(c, len(raw)-c)
		order := SegmentedArgsort(data, segs, true)
		seen := make([]bool, len(data))
		for _, o := range order {
			if seen[o] {
				return false
			}
			seen[o] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestIoU(t *testing.T) {
	a := [4]float32{0, 0, 2, 2}
	if got := IoU(a, a); math.Abs(float64(got)-1) > 1e-6 {
		t.Fatalf("self IoU = %v", got)
	}
	b := [4]float32{1, 1, 3, 3}
	if got := IoU(a, b); math.Abs(float64(got)-1.0/7) > 1e-6 {
		t.Fatalf("IoU = %v, want 1/7", got)
	}
	if IoU(a, [4]float32{5, 5, 6, 6}) != 0 {
		t.Fatal("disjoint boxes must have IoU 0")
	}
	if IoU(a, [4]float32{3, 3, 1, 1}) != 0 {
		t.Fatal("degenerate boxes must have IoU 0")
	}
}

func makeDets(rows ...[6]float32) *tensor.Tensor {
	out := tensor.New(1, len(rows), DetWidth)
	for i, r := range rows {
		for k, v := range r {
			out.Set(v, 0, i, k)
		}
	}
	return out
}

func TestBoxNMSSuppressesOverlaps(t *testing.T) {
	dets := makeDets(
		[6]float32{0, 0.9, 0, 0, 10, 10},
		[6]float32{0, 0.8, 1, 1, 11, 11}, // heavy overlap with row 0 -> dies
		[6]float32{0, 0.7, 50, 50, 60, 60},
		[6]float32{1, 0.6, 0, 0, 10, 10}, // other class -> survives
	)
	out := BoxNMS(dets, NMSConfig{IoUThreshold: 0.5})
	if out.At(0, 0, 1) != 0.9 || out.At(0, 1, 1) != 0.7 || out.At(0, 2, 1) != 0.6 {
		t.Fatalf("kept scores = %v %v %v", out.At(0, 0, 1), out.At(0, 1, 1), out.At(0, 2, 1))
	}
	if out.At(0, 3, 0) != -1 {
		t.Fatal("fourth row should be invalid")
	}
}

func TestBoxNMSForceSuppress(t *testing.T) {
	dets := makeDets(
		[6]float32{0, 0.9, 0, 0, 10, 10},
		[6]float32{1, 0.8, 0, 0, 10, 10},
	)
	out := BoxNMS(dets, NMSConfig{IoUThreshold: 0.5, ForceSuppress: true})
	if out.At(0, 0, 1) != 0.9 || out.At(0, 1, 0) != -1 {
		t.Fatal("force suppress must kill the cross-class duplicate")
	}
}

func TestBoxNMSScoreThresholdAndMaxOutput(t *testing.T) {
	dets := makeDets(
		[6]float32{0, 0.9, 0, 0, 1, 1},
		[6]float32{0, 0.05, 5, 5, 6, 6}, // below threshold
		[6]float32{0, 0.8, 10, 10, 11, 11},
		[6]float32{0, 0.7, 20, 20, 21, 21},
	)
	out := BoxNMS(dets, NMSConfig{IoUThreshold: 0.5, ScoreThreshold: 0.1, MaxOutput: 2})
	if out.At(0, 0, 1) != 0.9 || out.At(0, 1, 1) != 0.8 {
		t.Fatal("top-2 by score expected")
	}
	if out.At(0, 2, 0) != -1 {
		t.Fatal("MaxOutput=2 must invalidate the rest")
	}
}

func TestBoxNMSMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 15; trial++ {
		batch, num := 1+rng.Intn(3), 1+rng.Intn(60)
		dets := tensor.New(batch, num, DetWidth)
		for b := 0; b < batch; b++ {
			for i := 0; i < num; i++ {
				x := rng.Float32() * 50
				y := rng.Float32() * 50
				dets.Set(float32(rng.Intn(3)), b, i, 0)
				dets.Set(rng.Float32(), b, i, 1)
				dets.Set(x, b, i, 2)
				dets.Set(y, b, i, 3)
				dets.Set(x+1+rng.Float32()*20, b, i, 4)
				dets.Set(y+1+rng.Float32()*20, b, i, 5)
			}
		}
		cfg := NMSConfig{IoUThreshold: 0.4, ScoreThreshold: 0.05}
		fast := BoxNMS(dets, cfg)
		slow := SequentialNMS(dets, cfg)
		if !tensor.AllClose(fast, slow, 1e-6) {
			t.Fatalf("trial %d: GPU-style NMS diverges from sequential (max diff %g)",
				trial, tensor.MaxAbsDiff(fast, slow))
		}
	}
}

func TestMultiboxPrior(t *testing.T) {
	p := MultiboxPrior(2, 2, []float32{0.2, 0.4}, []float32{1, 2})
	// anchors per cell = len(sizes) + len(ratios) - 1 = 3.
	if !p.Shape().Equal(tensor.Shape{1, 12, 4}) {
		t.Fatalf("prior shape = %v", p.Shape())
	}
	// First anchor of first cell: center (0.25, 0.25), size 0.2, ratio 1.
	if math.Abs(float64(p.At(0, 0, 0))-0.15) > 1e-6 || math.Abs(float64(p.At(0, 0, 2))-0.35) > 1e-6 {
		t.Fatalf("first anchor = [%v %v %v %v]", p.At(0, 0, 0), p.At(0, 0, 1), p.At(0, 0, 2), p.At(0, 0, 3))
	}
	// Ratio-2 anchor is wider than tall.
	w := p.At(0, 2, 2) - p.At(0, 2, 0)
	h := p.At(0, 2, 3) - p.At(0, 2, 1)
	if w <= h {
		t.Fatalf("ratio-2 anchor should be wide: w=%v h=%v", w, h)
	}
}

func TestDecodeBoxIdentity(t *testing.T) {
	anchor := [4]float32{0.1, 0.2, 0.5, 0.8}
	got := DecodeBox(anchor, [4]float32{0, 0, 0, 0})
	for k := 0; k < 4; k++ {
		if math.Abs(float64(got[k]-anchor[k])) > 1e-6 {
			t.Fatalf("zero regression must return the anchor, got %v", got)
		}
	}
	// Positive dx moves the box right.
	moved := DecodeBox(anchor, [4]float32{1, 0, 0, 0})
	if moved[0] <= anchor[0] {
		t.Fatal("positive dx should move right")
	}
}

func TestMultiboxDetectionEndToEnd(t *testing.T) {
	// Two anchors, three classes (background + 2): anchor 0 strongly
	// class 1, anchor 1 background.
	anchors := tensor.FromData([]float32{0.1, 0.1, 0.3, 0.3, 0.6, 0.6, 0.9, 0.9}, 1, 2, 4)
	clsProb := tensor.FromData([]float32{
		0.05, 0.9, // background prob per anchor
		0.9, 0.05, // class 1
		0.05, 0.05, // class 2
	}, 1, 3, 2)
	loc := tensor.New(1, 8)
	out := MultiboxDetection(clsProb, loc, anchors, NMSConfig{IoUThreshold: 0.5, ScoreThreshold: 0.2})
	if out.At(0, 0, 0) != 0 || out.At(0, 0, 1) != 0.9 {
		t.Fatalf("first detection = class %v score %v", out.At(0, 0, 0), out.At(0, 0, 1))
	}
	if math.Abs(float64(out.At(0, 0, 2))-0.1) > 1e-5 {
		t.Fatalf("decoded box x1 = %v", out.At(0, 0, 2))
	}
}

func TestROIAlignConstantField(t *testing.T) {
	feat := tensor.New(1, 2, 8, 8)
	feat.Fill(3)
	rois := tensor.FromData([]float32{0, 1, 1, 6, 6}, 1, 5)
	out := ROIAlign(feat, rois, 2, 2, 1.0, 2)
	if !out.Shape().Equal(tensor.Shape{1, 2, 2, 2}) {
		t.Fatalf("roialign shape = %v", out.Shape())
	}
	for i, v := range out.Data() {
		if math.Abs(float64(v)-3) > 1e-5 {
			t.Fatalf("constant field should pool to 3, got %v at %d", v, i)
		}
	}
}

func TestROIAlignGradientField(t *testing.T) {
	// f(y,x) = x: pooled left half < pooled right half.
	feat := tensor.New(1, 1, 8, 8)
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			feat.Set(float32(x), 0, 0, y, x)
		}
	}
	rois := tensor.FromData([]float32{0, 0, 0, 7, 7}, 1, 5)
	out := ROIAlign(feat, rois, 1, 2, 1.0, 2)
	if out.At(0, 0, 0, 0) >= out.At(0, 0, 0, 1) {
		t.Fatalf("left %v should be < right %v", out.At(0, 0, 0, 0), out.At(0, 0, 0, 1))
	}
}

func TestYoloDecode(t *testing.T) {
	numClasses := 2
	anchors := [][2]float32{{10, 20}}
	feat := tensor.New(1, 1*(5+numClasses), 2, 2)
	// Cell (0,0): high objectness, class 1.
	feat.Set(5, 0, 4, 0, 0)  // objectness logit
	feat.Set(4, 0, 6, 0, 0)  // class-1 logit
	feat.Set(-5, 0, 5, 0, 0) // class-0 logit
	out := YoloDecode(feat, anchors, numClasses, 32)
	if !out.Shape().Equal(tensor.Shape{1, 4, DetWidth}) {
		t.Fatalf("yolo decode shape = %v", out.Shape())
	}
	if out.At(0, 0, 0) != 1 {
		t.Fatalf("best class = %v, want 1", out.At(0, 0, 0))
	}
	if out.At(0, 0, 1) < 0.9 {
		t.Fatalf("confidence = %v", out.At(0, 0, 1))
	}
	// Box centered in cell (0,0) at stride 32 with sigmoid(0)=0.5: cx=16.
	cx := (out.At(0, 0, 2) + out.At(0, 0, 4)) / 2
	if math.Abs(float64(cx)-16) > 1e-4 {
		t.Fatalf("cx = %v, want 16", cx)
	}
	// Width = anchor width when tw=0.
	if w := out.At(0, 0, 4) - out.At(0, 0, 2); math.Abs(float64(w)-10) > 1e-4 {
		t.Fatalf("w = %v, want 10", w)
	}
}

func TestVisionCostShapes(t *testing.T) {
	for _, d := range []*sim.Device{sim.IntelHD505, sim.MaliT860, sim.MaxwellNano} {
		n := 10000
		// Optimized formulations must beat naive ones decisively.
		if SegmentedSortCost(d, n) >= NaiveSortCost(d, n, 4) {
			t.Errorf("%s: segmented sort not faster than naive", d.Name)
		}
		if ScanCost(d, n) >= NaiveScanCost(d, n) {
			t.Errorf("%s: 3-stage scan not faster than Hillis-Steele", d.Name)
		}
		if NMSCost(d, n, 100) >= NaiveNMSCost(d, n, 100) {
			t.Errorf("%s: optimized NMS not faster than branching NMS", d.Name)
		}
	}
	// Mali (no shared memory) must benefit relatively more from the
	// optimization than Nvidia (§4.3 Table 4).
	gainMali := NaiveSortCost(sim.MaliT860, 10000, 4) / SegmentedSortCost(sim.MaliT860, 10000)
	gainNano := NaiveSortCost(sim.MaxwellNano, 10000, 4) / SegmentedSortCost(sim.MaxwellNano, 10000)
	if gainMali <= gainNano {
		t.Errorf("Mali sort gain %.1fx should exceed Nvidia %.1fx", gainMali, gainNano)
	}
}

func TestCPUNMSCheaperThanNaiveGPU(t *testing.T) {
	// The rationale for fallback (§3.1.2): sequential control flow is
	// cheaper on the CPU than a naive GPU port.
	for _, p := range sim.Platforms() {
		cpu := CPUNMSCost(p.CPU, 6000, 100)
		gpu := NaiveNMSCost(p.GPU, 6000, 100)
		if cpu >= gpu {
			t.Errorf("%s: CPU NMS %.4fs should beat naive GPU NMS %.4fs", p.Name, cpu, gpu)
		}
	}
}
