package vision

import (
	"unigpu/internal/tensor"
)

// Detection layout used throughout: each row is
// [class_id, score, x1, y1, x2, y2]; class_id < 0 marks an invalid row.
// This matches MXNet's box_nms convention the paper targets.
const DetWidth = 6

// NMSConfig configures box non-maximum suppression.
type NMSConfig struct {
	IoUThreshold   float32 // overlap above which the lower-scored box dies
	ScoreThreshold float32 // rows below this score are invalid from the start
	TopK           int     // consider only the K highest-scored rows (<=0: all)
	MaxOutput      int     // keep at most this many rows (<=0: all)
	ForceSuppress  bool    // suppress regardless of class when true
}

// IoU computes intersection-over-union of two corner-format boxes.
func IoU(a, b [4]float32) float32 {
	x1 := maxf(a[0], b[0])
	y1 := maxf(a[1], b[1])
	x2 := minf(a[2], b[2])
	y2 := minf(a[3], b[3])
	iw := maxf(0, x2-x1)
	ih := maxf(0, y2-y1)
	inter := iw * ih
	areaA := maxf(0, a[2]-a[0]) * maxf(0, a[3]-a[1])
	areaB := maxf(0, b[2]-b[0]) * maxf(0, b[3]-b[1])
	union := areaA + areaB - inter
	if union <= 0 {
		return 0
	}
	return inter / union
}

func maxf(a, b float32) float32 {
	if a > b {
		return a
	}
	return b
}

func minf(a, b float32) float32 {
	if a < b {
		return a
	}
	return b
}

// BoxNMS suppresses duplicate detections in a (batch, num, 6) tensor and
// returns a tensor of the same shape with surviving rows first (ordered by
// descending score) and every other row invalidated (class_id = -1).
//
// This is the optimized formulation of §4.3: all output rows start invalid
// (no comparison-style writes), the candidate order comes from one
// segmented argsort over the whole batch (one kernel, load-balanced), and
// the suppression mask for each accepted box is computed over all later
// candidates in a data-parallel sweep with predicated updates (no
// divergent branching in the inner loop).
func BoxNMS(dets *tensor.Tensor, cfg NMSConfig) *tensor.Tensor {
	s := dets.Shape()
	batch, num := s[0], s[1]
	out := tensor.New(batch, num, DetWidth)
	// Initialize all output to invalid, not comparison-by-comparison.
	for i := 0; i < batch*num; i++ {
		out.Data()[i*DetWidth] = -1
	}

	// One segmented sort across the whole batch (scores descending).
	scores := make([]float32, batch*num)
	for b := 0; b < batch; b++ {
		for i := 0; i < num; i++ {
			scores[b*num+i] = dets.At(b, i, 1)
		}
	}
	sizes := make([]int, batch)
	for b := range sizes {
		sizes[b] = num
	}
	order := SegmentedArgsort(scores, NewEvenSegments(sizes...), true)

	for b := 0; b < batch; b++ {
		nmsOneBatch(dets, out, order[b*num:(b+1)*num], b, num, cfg)
	}
	return out
}

func nmsOneBatch(dets, out *tensor.Tensor, order []int32, b, num int, cfg NMSConfig) {
	limit := num
	if cfg.TopK > 0 && cfg.TopK < limit {
		limit = cfg.TopK
	}
	type cand struct {
		cls   float32
		score float32
		box   [4]float32
	}
	cands := make([]cand, 0, limit)
	for _, flat := range order[:limit] {
		i := int(flat) - b*num
		c := cand{
			cls:   dets.At(b, i, 0),
			score: dets.At(b, i, 1),
			box:   [4]float32{dets.At(b, i, 2), dets.At(b, i, 3), dets.At(b, i, 4), dets.At(b, i, 5)},
		}
		if c.cls < 0 || c.score < cfg.ScoreThreshold {
			continue
		}
		cands = append(cands, c)
	}

	alive := make([]bool, len(cands))
	for i := range alive {
		alive[i] = true
	}
	kept := 0
	maxOut := len(cands)
	if cfg.MaxOutput > 0 && cfg.MaxOutput < maxOut {
		maxOut = cfg.MaxOutput
	}
	for i := 0; i < len(cands) && kept < maxOut; i++ {
		if !alive[i] {
			continue
		}
		c := cands[i]
		out.Set(c.cls, b, kept, 0)
		out.Set(c.score, b, kept, 1)
		for k := 0; k < 4; k++ {
			out.Set(c.box[k], b, kept, 2+k)
		}
		kept++
		// Predicated parallel suppression sweep over later candidates.
		for j := i + 1; j < len(cands); j++ {
			sameClass := cfg.ForceSuppress || cands[j].cls == c.cls
			suppress := sameClass && IoU(c.box, cands[j].box) > cfg.IoUThreshold
			alive[j] = alive[j] && !suppress
		}
	}
}

// SequentialNMS is the straightforward CPU reference used by property
// tests and by the fallback experiment (§3.1.2): greedy per-batch
// suppression with an explicit per-segment sort.
func SequentialNMS(dets *tensor.Tensor, cfg NMSConfig) *tensor.Tensor {
	s := dets.Shape()
	batch, num := s[0], s[1]
	out := tensor.New(batch, num, DetWidth)
	for i := 0; i < batch*num; i++ {
		out.Data()[i*DetWidth] = -1
	}
	for b := 0; b < batch; b++ {
		scores := make([]float32, num)
		for i := 0; i < num; i++ {
			scores[i] = dets.At(b, i, 1)
		}
		order := NaiveSegmentedArgsort(scores, NewEvenSegments(num), true)
		ord := make([]int32, num)
		for i, o := range order {
			ord[i] = o + int32(b*num)
		}
		nmsOneBatch(dets, out, ord, b, num, cfg)
	}
	return out
}
