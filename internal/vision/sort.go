// Package vision implements the vision-specific operators of §3.1 —
// segmented argsort (Figure 2), the three-stage register-blocked prefix sum
// (Figure 3), divergence-free box NMS, multibox prior/detection, ROIAlign
// and YOLO box decoding — using the same parallel decompositions the paper
// lowers to integrated GPUs, with host goroutines standing in for thread
// blocks. Each operator ships with a sequential reference used by the
// property tests, and internal/vision/cost.go prices the optimized and the
// naive GPU implementations on the simulated devices for the Table 4
// ablation.
package vision

import (
	"sort"
	"sync"
)

// Segments describes a flattened batch of variable-length segments:
// segment i occupies [Starts[i], Starts[i+1]) of the flat data array.
// Starts has length numSegments+1.
type Segments struct {
	Starts []int
}

// NumSegments returns the number of segments.
func (s Segments) NumSegments() int { return len(s.Starts) - 1 }

// Len returns the total flattened length.
func (s Segments) Len() int { return s.Starts[len(s.Starts)-1] }

// SegmentOf returns the segment containing flat position p.
func (s Segments) SegmentOf(p int) int {
	// Binary search over starts.
	lo, hi := 0, s.NumSegments()-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if s.Starts[mid] <= p {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// NewEvenSegments builds n segments of the given sizes.
func NewEvenSegments(sizes ...int) Segments {
	starts := make([]int, len(sizes)+1)
	for i, sz := range sizes {
		starts[i+1] = starts[i] + sz
	}
	return Segments{Starts: starts}
}

type keyed struct {
	key float32
	seg int32
	idx int32 // original flat position
}

// SegmentedArgsort sorts every segment of the flattened array independently
// (descending by default, as NMS consumes scores), returning for each flat
// position the original index of the element now stored there.
//
// The implementation follows Figure 2: the data is already flat; it is
// chopped into equal-size blocks (not per-segment pieces), each block is
// sorted locally in parallel ("block sorting"), and then cooperative merge
// rounds double the merged width until the whole array is ordered. Segment
// identity is the major sort key, so segments — contiguous in the flat
// array — never interleave, and only blocks spanning an active interface
// between two runs do comparison work in a merge round.
func SegmentedArgsort(data []float32, segs Segments, descending bool) []int32 {
	n := segs.Len()
	if n != len(data) {
		panic("vision: segment starts do not cover the data")
	}
	items := make([]keyed, n)
	for i := range items {
		items[i] = keyed{key: data[i], seg: int32(segs.SegmentOf(i)), idx: int32(i)}
	}
	less := lessFn(descending)

	const blockSize = 256
	numBlocks := (n + blockSize - 1) / blockSize

	// Block sorting: one "thread block" per chunk, in parallel.
	var wg sync.WaitGroup
	for b := 0; b < numBlocks; b++ {
		lo := b * blockSize
		hi := min(lo+blockSize, n)
		wg.Add(1)
		go func(part []keyed) {
			defer wg.Done()
			sort.SliceStable(part, func(i, j int) bool { return less(part[i], part[j]) })
		}(items[lo:hi])
	}
	wg.Wait()

	// Cooperative merge: coop 2, coop 4, ... (Figure 2). Each round merges
	// adjacent sorted runs of `width` blocks; runs whose interface is
	// already ordered are skipped (the "active interface" optimization).
	buf := make([]keyed, n)
	for width := blockSize; width < n; width *= 2 {
		var mg sync.WaitGroup
		for lo := 0; lo < n; lo += 2 * width {
			mid := min(lo+width, n)
			hi := min(lo+2*width, n)
			if mid >= hi {
				continue
			}
			if !less(items[mid], items[mid-1]) {
				continue // interface already ordered; no work
			}
			mg.Add(1)
			go func(lo, mid, hi int) {
				defer mg.Done()
				mergeRuns(items, buf, lo, mid, hi, less)
			}(lo, mid, hi)
		}
		mg.Wait()
	}

	out := make([]int32, n)
	for i, it := range items {
		out[i] = it.idx
	}
	return out
}

func lessFn(descending bool) func(a, b keyed) bool {
	if descending {
		return func(a, b keyed) bool {
			if a.seg != b.seg {
				return a.seg < b.seg
			}
			if a.key != b.key {
				return a.key > b.key
			}
			return a.idx < b.idx // stable within equal keys
		}
	}
	return func(a, b keyed) bool {
		if a.seg != b.seg {
			return a.seg < b.seg
		}
		if a.key != b.key {
			return a.key < b.key
		}
		return a.idx < b.idx
	}
}

func mergeRuns(items, buf []keyed, lo, mid, hi int, less func(a, b keyed) bool) {
	i, j, k := lo, mid, lo
	for i < mid && j < hi {
		if less(items[j], items[i]) {
			buf[k] = items[j]
			j++
		} else {
			buf[k] = items[i]
			i++
		}
		k++
	}
	copy(buf[k:], items[i:mid])
	copy(buf[k+(mid-i):], items[j:hi])
	copy(items[lo:hi], buf[lo:hi])
}

// NaiveSegmentedArgsort is the per-segment baseline: each variable-length
// segment is sorted on its own. On a GPU this is the fine-grained,
// load-imbalanced formulation Figure 2 replaces; it is kept as the ablation
// baseline and as a reference implementation.
func NaiveSegmentedArgsort(data []float32, segs Segments, descending bool) []int32 {
	out := make([]int32, len(data))
	for s := 0; s < segs.NumSegments(); s++ {
		lo, hi := segs.Starts[s], segs.Starts[s+1]
		idx := make([]int32, hi-lo)
		for i := range idx {
			idx[i] = int32(lo + i)
		}
		sort.SliceStable(idx, func(i, j int) bool {
			a, b := data[idx[i]], data[idx[j]]
			if a == b {
				return idx[i] < idx[j]
			}
			if descending {
				return a > b
			}
			return a < b
		})
		copy(out[lo:hi], idx)
	}
	return out
}

// Argsort sorts one flat array, returning source indices; the single-
// segment case of SegmentedArgsort.
func Argsort(data []float32, descending bool) []int32 {
	return SegmentedArgsort(data, NewEvenSegments(len(data)), descending)
}
