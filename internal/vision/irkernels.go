package vision

import (
	"unigpu/internal/ir"
	"unigpu/internal/te"
)

// This file expresses the vision-specific operators in the unified tensor
// IR — the §3.1.1 engineering-effort claim: "our approach only requires
// around 100 lines of TVM IR code (vs 325 lines of CUDA code in the
// original implementation) to generate efficient code for both CUDA and
// OpenCL supported platforms". The kernels below lower through the same
// te/ir pipeline as the convolutions, emit in both dialects via
// internal/codegen, and are functionally validated by the interpreter.

// NMSSuppressKernel builds the divergence-free suppression sweep of box
// NMS in the IR: given the currently accepted box (by index k in a
// one-element buffer) the kernel predicates every later candidate's
// validity on its IoU against the accepted box — Select, not branches, so
// warps never diverge (§4.3).
//
// Buffers: boxes (n x 4 corner format), valid (n), keptBox (4).
func NMSSuppressKernel(n int, iouThreshold float32) *te.Kernel {
	boxes := te.Placeholder("boxes", n, 4)
	kept := te.Placeholder("keptBox", 4)
	valid := te.Placeholder("valid", n)

	out := te.Compute("validOut", []int{n}, func(ax []ir.Expr) ir.Expr {
		i := ax[0]
		bx1 := boxes.Access(i, ir.Imm(0))
		by1 := boxes.Access(i, ir.Imm(1))
		bx2 := boxes.Access(i, ir.Imm(2))
		by2 := boxes.Access(i, ir.Imm(3))
		kx1 := kept.Access(ir.Imm(0))
		ky1 := kept.Access(ir.Imm(1))
		kx2 := kept.Access(ir.Imm(2))
		ky2 := kept.Access(ir.Imm(3))

		iw := ir.Max(ir.Sub(ir.Min(bx2, kx2), ir.Max(bx1, kx1)), ir.FImm(0))
		ih := ir.Max(ir.Sub(ir.Min(by2, ky2), ir.Max(by1, ky1)), ir.FImm(0))
		inter := ir.Mul(iw, ih)
		areaB := ir.Mul(ir.Sub(bx2, bx1), ir.Sub(by2, by1))
		areaK := ir.Mul(ir.Sub(kx2, kx1), ir.Sub(ky2, ky1))
		union := ir.Max(ir.Sub(ir.Add(areaB, areaK), inter), ir.FImm(1e-9))
		overlap := ir.GE(inter, ir.Mul(ir.FImm(iouThreshold), union))

		// Predicated update: survivors keep their validity; overlapping
		// candidates are zeroed. No divergent branch.
		return te.If(overlap, ir.FImm(0), valid.Access(i))
	})

	s := te.NewSchedule(out)
	ax := s.SpatialAxes()
	blk, thr := s.Split(ax[0], 64)
	s.Bind(blk, ir.ForThreadBlock)
	s.Bind(thr, ir.ForThread)
	return te.Lower("nms_suppress", s)
}

// ScanUpSweepKernel builds the register-blocked up-sweep of Figure 3 in
// the IR: each processor sequentially scans its chunk and records the
// chunk reduction — the stage that avoids per-pass global synchronization.
// Buffers: data (n), partial (n), sums (numProcs).
func ScanUpSweepKernel(n, numProcs int) *te.Kernel {
	chunk := (n + numProcs - 1) / numProcs
	data := te.Placeholder("data", n)

	sums := te.Sum("sums", []int{numProcs}, []int{chunk}, func(ax, r []ir.Expr) ir.Expr {
		idx := ir.Add(ir.Mul(ax[0], ir.Imm(chunk)), r[0])
		return te.If(ir.LT(idx, ir.Imm(n)), data.Access(ir.Min(idx, ir.Imm(n-1))), ir.FImm(0))
	})

	s := te.NewSchedule(sums)
	ax := s.SpatialAxes()
	s.Bind(ax[0], ir.ForThread) // one processor per chunk, no global sync inside
	return te.Lower("scan_upsweep", s)
}

// DecodeBoxKernel builds the SSD location decoding in the IR: anchors and
// regressions to corner boxes, fully data-parallel.
// Buffers: anchors (n x 4), loc (n x 4), out (n x 4).
func DecodeBoxKernel(n int) *te.Kernel {
	anchors := te.Placeholder("anchors", n, 4)
	loc := te.Placeholder("loc", n, 4)

	out := te.Compute("decoded", []int{n, 4}, func(ax []ir.Expr) ir.Expr {
		i, k := ax[0], ax[1]
		aw := ir.Sub(anchors.Access(i, ir.Imm(2)), anchors.Access(i, ir.Imm(0)))
		ah := ir.Sub(anchors.Access(i, ir.Imm(3)), anchors.Access(i, ir.Imm(1)))
		acx := ir.Add(anchors.Access(i, ir.Imm(0)), ir.Mul(aw, ir.FImm(0.5)))
		acy := ir.Add(anchors.Access(i, ir.Imm(1)), ir.Mul(ah, ir.FImm(0.5)))
		cx := ir.Add(ir.Mul(ir.Mul(loc.Access(i, ir.Imm(0)), ir.FImm(0.1)), aw), acx)
		cy := ir.Add(ir.Mul(ir.Mul(loc.Access(i, ir.Imm(1)), ir.FImm(0.1)), ah), acy)
		w := ir.Mul(&ir.Call{Fn: "exp", Args: []ir.Expr{ir.Mul(loc.Access(i, ir.Imm(2)), ir.FImm(0.2))}, Type: ir.Float32}, aw)
		h := ir.Mul(&ir.Call{Fn: "exp", Args: []ir.Expr{ir.Mul(loc.Access(i, ir.Imm(3)), ir.FImm(0.2))}, Type: ir.Float32}, ah)
		half := ir.FImm(0.5)
		x1 := ir.Sub(cx, ir.Mul(w, half))
		y1 := ir.Sub(cy, ir.Mul(h, half))
		x2 := ir.Add(cx, ir.Mul(w, half))
		y2 := ir.Add(cy, ir.Mul(h, half))
		return &ir.Select{Cond: ir.LT(k, ir.Imm(1)), A: x1,
			B: &ir.Select{Cond: ir.LT(k, ir.Imm(2)), A: y1,
				B: &ir.Select{Cond: ir.LT(k, ir.Imm(3)), A: x2, B: y2}}}
	})

	s := te.NewSchedule(out)
	ax := s.SpatialAxes()
	blk, thr := s.Split(ax[0], 64)
	s.Bind(blk, ir.ForThreadBlock)
	s.Bind(thr, ir.ForThread)
	s.Unroll(ax[1])
	return te.Lower("decode_box", s)
}
