package vision_test

import (
	"strings"
	"testing"

	"unigpu/internal/codegen"
	"unigpu/internal/exec"
	"unigpu/internal/ir"
	"unigpu/internal/vision"
)

func TestNMSSuppressKernelMatchesIoU(t *testing.T) {
	n := 8
	k := vision.NMSSuppressKernel(n, 0.5)
	boxes := make([]float32, n*4)
	valid := make([]float32, n)
	for i := 0; i < n; i++ {
		valid[i] = 1
		f := float32(i * 3)
		boxes[i*4+0] = f
		boxes[i*4+1] = f
		boxes[i*4+2] = f + 4
		boxes[i*4+3] = f + 4
	}
	keptBox := []float32{0, 0, 4, 4} // equals box 0, overlaps box 1 slightly
	out := make([]float32, n)
	env := exec.NewEnv()
	env.Bind("boxes", boxes)
	env.Bind("keptBox", keptBox)
	env.Bind("valid", valid)
	env.Bind("validOut", out)
	if err := exec.RunKernel(k, env); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		b := [4]float32{boxes[i*4], boxes[i*4+1], boxes[i*4+2], boxes[i*4+3]}
		want := float32(1)
		if vision.IoU([4]float32{0, 0, 4, 4}, b) > 0.5 {
			want = 0
		}
		if out[i] != want {
			t.Fatalf("box %d: valid = %v, want %v (IoU %v)", i, out[i],
				want, vision.IoU([4]float32{0, 0, 4, 4}, b))
		}
	}
}

func TestNMSSuppressKernelHasNoBranches(t *testing.T) {
	// The §4.3 claim: suppression is predicated (Select), never a
	// divergent if-statement in the thread body.
	k := vision.NMSSuppressKernel(128, 0.5)
	ir.WalkStmt(k.Body, func(s ir.Stmt) bool {
		if _, ok := s.(*ir.IfThenElse); ok {
			t.Fatal("NMS kernel must not contain branching statements")
		}
		return true
	})
	cu := codegen.Emit(k, codegen.CUDA)
	if strings.Contains(cu, "if (") {
		t.Fatalf("emitted CUDA should be branch-free:\n%s", cu)
	}
	if !strings.Contains(cu, "?") {
		t.Fatal("suppression should be a predicated ternary")
	}
}

func TestScanUpSweepKernelComputesChunkSums(t *testing.T) {
	n, procs := 18, 5
	k := vision.ScanUpSweepKernel(n, procs)
	data := []float32{5, 7, 1, 1, 3, 4, 2, 0, 3, 1, 1, 2, 6, 1, 2, 3, 1, 3}
	sums := make([]float32, procs)
	env := exec.NewEnv()
	env.Bind("data", data)
	env.Bind("sums", sums)
	if err := exec.RunKernel(k, env); err != nil {
		t.Fatal(err)
	}
	want := []float32{14, 9, 7, 12, 4} // Figure 3's per-processor reductions
	for i := range want {
		if sums[i] != want[i] {
			t.Fatalf("sums = %v, want %v", sums, want)
		}
	}
}

func TestDecodeBoxKernelMatchesReference(t *testing.T) {
	n := 6
	k := vision.DecodeBoxKernel(n)
	anchors := make([]float32, n*4)
	loc := make([]float32, n*4)
	for i := 0; i < n; i++ {
		anchors[i*4+0] = float32(i) * 0.1
		anchors[i*4+1] = 0.2
		anchors[i*4+2] = float32(i)*0.1 + 0.3
		anchors[i*4+3] = 0.6
		loc[i*4+0] = float32(i)*0.3 - 1
		loc[i*4+1] = 0.5
		loc[i*4+2] = -0.2
		loc[i*4+3] = 0.4
	}
	out := make([]float32, n*4)
	env := exec.NewEnv()
	env.Bind("anchors", anchors)
	env.Bind("loc", loc)
	env.Bind("decoded", out)
	if err := exec.RunKernel(k, env); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		want := vision.DecodeBox(
			[4]float32{anchors[i*4], anchors[i*4+1], anchors[i*4+2], anchors[i*4+3]},
			[4]float32{loc[i*4], loc[i*4+1], loc[i*4+2], loc[i*4+3]})
		for c := 0; c < 4; c++ {
			got := out[i*4+c]
			if diff := got - want[c]; diff > 1e-5 || diff < -1e-5 {
				t.Fatalf("box %d coord %d: %v vs %v", i, c, got, want[c])
			}
		}
	}
}

func TestIRConcisenessClaim(t *testing.T) {
	// §3.1.1: ~100 lines of IR replace 325 lines of CUDA, and the same IR
	// serves both backends. Measure the vision pipeline's IR size against
	// its generated CUDA.
	irLines := 0
	cudaLines := 0
	openclLines := 0
	for _, build := range []func() (irL, cuL, clL int){
		func() (int, int, int) {
			k := vision.NMSSuppressKernel(4096, 0.5)
			return ir.CountLines(k.Body), codegen.LineCount(codegen.Emit(k, codegen.CUDA)), codegen.LineCount(codegen.Emit(k, codegen.OpenCL))
		},
		func() (int, int, int) {
			k := vision.ScanUpSweepKernel(4096, 64)
			return ir.CountLines(k.Body), codegen.LineCount(codegen.Emit(k, codegen.CUDA)), codegen.LineCount(codegen.Emit(k, codegen.OpenCL))
		},
		func() (int, int, int) {
			k := vision.DecodeBoxKernel(4096)
			return ir.CountLines(k.Body), codegen.LineCount(codegen.Emit(k, codegen.CUDA)), codegen.LineCount(codegen.Emit(k, codegen.OpenCL))
		},
	} {
		i, cu, cl := build()
		irLines += i
		cudaLines += cu
		openclLines += cl
	}
	if irLines >= cudaLines {
		t.Fatalf("IR (%d lines) should be more concise than CUDA (%d lines)", irLines, cudaLines)
	}
	// One IR serves both dialects: total backend code is ~2x the generated
	// CUDA, while the authored IR is written once.
	if cudaLines+openclLines < 2*irLines {
		t.Fatalf("backend code (%d+%d) should dwarf the single IR source (%d)",
			cudaLines, openclLines, irLines)
	}
	t.Logf("vision pipeline: %d IR lines -> %d CUDA + %d OpenCL lines", irLines, cudaLines, openclLines)
}
