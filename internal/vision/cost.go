package vision

import (
	"math"

	"unigpu/internal/sim"
)

// This file prices the vision-specific operators on the simulated devices,
// for both the optimized formulations of §3.1.1 and the naive GPU
// formulations they replace. The Table 4 ablation ("with and without
// vision-specific operator optimizations") is the sum of these costs over
// each detection model's post-processing pipeline.
//
// Model inputs per device:
//   - compareThroughput: simple compare/move ops run at a fraction of peak;
//   - GlobalSyncCost: every device-wide step of a cooperative algorithm on
//     a real GPU is a kernel relaunch;
//   - single-lane work (sequential control flow on a GPU) runs on one lane
//     of one compute unit — the reason control-heavy operators are so
//     painful on GPUs (§2.2);
//   - devices without shared memory (Mali) pay extra for every data
//     exchange between cooperating threads, which is why aiSage gains the
//     most from these optimizations (§4.3).

// compareThroughput is the device's effective simple-op throughput (ops/s).
func compareThroughput(d *sim.Device) float64 {
	return d.PeakGFLOPs * 1e9 * d.BaseEfficiency * 0.5
}

// singleLaneThroughput is the throughput of one thread on one lane:
// peak divided by the device's total SIMD lanes (ComputeUnits x SIMDWidth).
func singleLaneThroughput(d *sim.Device) float64 {
	lanes := float64(d.ComputeUnits * d.SIMDWidth)
	return math.Max(1e6, d.PeakGFLOPs*1e9/lanes*0.5)
}

// noSharedMemPenalty inflates cooperative-step costs on architectures
// where threads can only exchange data through DRAM.
func noSharedMemPenalty(d *sim.Device) float64 {
	if d.IsGPU && !d.HasSharedMem {
		return 5.0
	}
	return 1
}

// SortBlockSize is the block size used by the segmented sort pipeline.
const SortBlockSize = 256

// SegmentedSortCost prices the Figure 2 pipeline for n total elements:
// parallel block sort plus ceil(log2(numBlocks)) cooperative merge rounds,
// each a kernel (one global sync) streaming the array once.
func SegmentedSortCost(d *sim.Device, n int) float64 {
	if n <= 1 {
		return sim.LaunchCost(d)
	}
	thr := compareThroughput(d)
	numBlocks := (n + SortBlockSize - 1) / SortBlockSize
	blockSort := float64(n) * math.Log2(SortBlockSize) / thr
	rounds := float64(ScanPasses(numBlocks))
	merge := rounds * (float64(n)/thr*noSharedMemPenalty(d) + sim.GlobalSyncCost(d))
	return sim.LaunchCost(d) + blockSort + merge
}

// NaiveSortCost prices the pre-optimization formulation: fine-grained
// per-segment sorting with one workgroup per segment. Occupancy collapses
// when there are few segments, the longest segment dominates (load
// imbalance), and the O(len^2) in-group odd-even ordering pays a
// synchronization per pass.
func NaiveSortCost(d *sim.Device, n, numSegments int) float64 {
	if n <= 1 {
		return sim.LaunchCost(d)
	}
	if numSegments < 1 {
		numSegments = 1
	}
	maxSeg := (n + numSegments - 1) / numSegments
	thr := compareThroughput(d)
	// Occupancy: segments << compute units leaves lanes idle.
	occ := math.Min(1, float64(numSegments)/float64(d.ComputeUnits*d.ThreadsPerUnit))
	occ = math.Max(occ, 0.02)
	passes := float64(maxSeg)
	perPass := float64(maxSeg)/(thr*occ)*noSharedMemPenalty(d) + sim.GlobalSyncCost(d)*0.5
	// Divergent small imbalanced problems: both warp paths execute.
	divergence := 2.0
	return sim.LaunchCost(d) + passes*perPass*divergence
}

// ScanCost prices the three-stage register-blocked prefix sum (Figure 3):
// two array sweeps plus a tiny Hillis–Steele over per-processor sums, with
// only two device-wide synchronizations.
func ScanCost(d *sim.Device, n int) float64 {
	thr := compareThroughput(d)
	procs := float64(d.ComputeUnits * d.ThreadsPerUnit)
	sweeps := 2 * float64(n) / thr
	tiny := procs * math.Log2(math.Max(2, procs)) / thr
	return sim.LaunchCost(d) + sweeps + tiny + 2*sim.GlobalSyncCost(d)
}

// NaiveScanCost prices the whole-array Hillis–Steele scan: ceil(log2 n)
// passes, each streaming the array and paying a global synchronization.
func NaiveScanCost(d *sim.Device, n int) float64 {
	thr := compareThroughput(d)
	passes := float64(ScanPasses(n))
	return sim.LaunchCost(d) + passes*(float64(n)/thr*noSharedMemPenalty(d)+sim.GlobalSyncCost(d))
}

// NMSCost prices the optimized box_nms of §4.3: invalid-initialized
// outputs, inner loop aligned with threads, predicated suppression. kept is
// the number of accepted boxes that run a suppression sweep over n
// candidates.
func NMSCost(d *sim.Device, n, kept int) float64 {
	if kept < 1 {
		kept = 1
	}
	thr := compareThroughput(d)
	// Each accepted box sweeps the candidate list in parallel; IoU is ~16
	// flops per pair, predicated (no divergence).
	sweep := float64(kept) * float64(n) * 16 / thr
	syncs := float64(kept) * sim.GlobalSyncCost(d) * 0.25 // batched sweeps
	return sim.LaunchCost(d) + sweep + syncs
}

// NaiveNMSCost prices the branching formulation: the greedy loop runs
// effectively on a single lane (sequential control flow), comparisons
// branch per element, and output writes are comparison-guarded.
func NaiveNMSCost(d *sim.Device, n, kept int) float64 {
	if kept < 1 {
		kept = 1
	}
	// Wide-warp devices execute even the branching inner loop with some
	// warp-level parallelism; narrow devices do not.
	lane := singleLaneThroughput(d) * math.Max(0.5, float64(d.WarpSize)/8)
	work := float64(kept) * float64(n) * 16 / lane
	return sim.LaunchCost(d) + work*noSharedMemPenalty(d)
}

// CPUNMSCost prices NMS fallen back to the companion CPU (§3.1.2): the
// sequential greedy algorithm at scalar CPU throughput — simple and fast
// because the control flow is CPU-friendly.
func CPUNMSCost(d *sim.Device, n, kept int) float64 {
	if kept < 1 {
		kept = 1
	}
	perCore := d.PeakGFLOPs * 1e9 * d.BaseEfficiency / float64(d.ComputeUnits*d.SIMDWidth)
	sortCost := float64(n) * math.Log2(math.Max(2, float64(n))) / perCore
	sweep := float64(kept) * float64(n) * 16 / (perCore * 2)
	return sortCost + sweep
}
