package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (format version 0.0.4) of the registry:
// counters and gauges one sample each, histograms as summaries with
// precomputed 0.5/0.9/0.99 quantiles plus _sum and _count. Metric names
// are sanitized to the Prometheus charset (dots become underscores), and
// output is sorted by name so scrapes — and golden tests — are stable.

// promName sanitizes a registry metric name for Prometheus: every rune
// outside [a-zA-Z0-9_:] becomes '_', and a leading digit is prefixed.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, r := range name {
		if r >= '0' && r <= '9' && i == 0 {
			b.WriteByte('_')
			b.WriteRune(r)
			continue
		}
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9')
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

func promFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WritePrometheus renders every metric in the Prometheus text exposition
// format, sorted by metric name.
func (r *Registry) WritePrometheus(w io.Writer) error {
	type metric struct {
		name string
		body string
	}
	r.mu.Lock()
	ms := make([]metric, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for name, c := range r.counters {
		pn := promName(name)
		ms = append(ms, metric{pn, fmt.Sprintf("# TYPE %s counter\n%s %d\n", pn, pn, c.Value())})
	}
	for name, g := range r.gauges {
		v, ok := g.Value()
		if !ok {
			continue
		}
		pn := promName(name)
		ms = append(ms, metric{pn, fmt.Sprintf("# TYPE %s gauge\n%s %s\n", pn, pn, promFloat(v))})
	}
	for name, h := range r.hists {
		pn := promName(name)
		var b strings.Builder
		fmt.Fprintf(&b, "# TYPE %s summary\n", pn)
		for _, q := range []float64{0.5, 0.9, 0.99} {
			fmt.Fprintf(&b, "%s{quantile=%q} %s\n", pn, promFloat(q), promFloat(h.Quantile(q)))
		}
		fmt.Fprintf(&b, "%s_sum %s\n%s_count %d\n", pn, promFloat(h.Sum()), pn, h.Count())
		ms = append(ms, metric{pn, b.String()})
	}
	r.mu.Unlock()
	sort.Slice(ms, func(i, j int) bool { return ms[i].name < ms[j].name })
	for _, m := range ms {
		if _, err := io.WriteString(w, m.body); err != nil {
			return err
		}
	}
	return nil
}

// WritePrometheus renders the default registry.
func WritePrometheus(w io.Writer) error { return DefaultRegistry.WritePrometheus(w) }
