package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestQuantileExactOnBoundary: a population sitting exactly on a bucket
// boundary (every sample equal) must report the true value, not the
// bucket's upper bound — the historic failure mode of pure
// upper-bound estimation was up to 2x high at powers of two.
func TestQuantileExactOnBoundary(t *testing.T) {
	for _, v := range []float64{1, 2, 100, 1024, 5e6} {
		var h Histogram
		for i := 0; i < 1000; i++ {
			h.Observe(v)
		}
		for _, q := range []float64{0, 0.5, 0.99, 1} {
			if got := h.Quantile(q); got != v {
				t.Errorf("all-equal %g: Quantile(%g) = %g, want exact", v, q, got)
			}
		}
	}
}

// TestQuantileMonotoneAndClamped: quantiles are monotone in q and stay
// inside the observed [min, max] even across sparse buckets.
func TestQuantileMonotoneAndClamped(t *testing.T) {
	var h Histogram
	for _, v := range []float64{3, 3, 3, 900, 900, 1e6} {
		h.Observe(v)
	}
	prev := h.Quantile(0)
	if prev != 3 {
		t.Fatalf("p0 = %g, want min 3", prev)
	}
	for q := 0.05; q <= 1.0001; q += 0.05 {
		v := h.Quantile(q)
		if v < prev-1e-9 {
			t.Fatalf("Quantile not monotone: q=%.2f gives %g after %g", q, v, prev)
		}
		if v < 3 || v > 1e6 {
			t.Fatalf("Quantile(%.2f) = %g outside observed [3, 1e6]", q, v)
		}
		prev = v
	}
	if got := h.Quantile(1); got != 1e6 {
		t.Fatalf("p100 = %g, want max 1e6", got)
	}
}

// TestPrometheusGolden: the exposition output is byte-stable — sorted by
// name, sanitized charset, counters/gauges as single samples, histograms
// as summaries with exact quantiles for a deterministic population.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("fault.retries").Add(7)
	r.Gauge("pool.in_flight.resnet-50").Set(2)
	h := r.Histogram("pool.queue_wait_ns")
	for i := 0; i < 10; i++ {
		h.Observe(512)
	}

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE fault_retries counter
fault_retries 7
# TYPE pool_in_flight_resnet_50 gauge
pool_in_flight_resnet_50 2
# TYPE pool_queue_wait_ns summary
pool_queue_wait_ns{quantile="0.5"} 512
pool_queue_wait_ns{quantile="0.9"} 512
pool_queue_wait_ns{quantile="0.99"} 512
pool_queue_wait_ns_sum 5120
pool_queue_wait_ns_count 10
`
	if got := buf.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestPromNameSanitize(t *testing.T) {
	cases := map[string]string{
		"slo.p99_ms.ResNet50_v1": "slo_p99_ms_ResNet50_v1",
		"9lives":                 "_9lives",
		"a:b-c d":                "a:b_c_d",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestRegistryReadUnderConcurrentWrite hammers one registry from writer
// goroutines (counters, gauges, histograms, resets) while readers render
// both text formats; run under -race this is the data-race gate for the
// scrape path the live /metrics endpoint uses.
func TestRegistryReadUnderConcurrentWrite(t *testing.T) {
	r := NewRegistry()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := fmt.Sprintf("m.%d", w)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				r.Counter("c." + name).Inc()
				r.Gauge("g." + name).Set(float64(i))
				r.Histogram("h." + name).Observe(float64(i%1000 + 1))
				if i%256 == 0 {
					r.Reset()
				}
			}
		}(w)
	}
	for rd := 0; rd < 2; rd++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var buf bytes.Buffer
			for {
				select {
				case <-stop:
					return
				default:
				}
				buf.Reset()
				if err := r.WriteText(&buf); err != nil {
					t.Errorf("WriteText: %v", err)
					return
				}
				buf.Reset()
				if err := r.WritePrometheus(&buf); err != nil {
					t.Errorf("WritePrometheus: %v", err)
					return
				}
			}
		}()
	}
	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()
}

// TestProfilerSamplingAndSnapshot: 1-in-N run sampling, aggregation into
// the rolling table hottest-first, top-K truncation, and the
// per-(model, kind) histogram reaching the registry.
func TestProfilerSamplingAndSnapshot(t *testing.T) {
	reg := NewRegistry()
	p := NewProfiler(ProfilerOptions{SampleEvery: 4, TopK: 2, Registry: reg})
	sampled := 0
	for i := 0; i < 16; i++ {
		if p.SampleRun() {
			sampled++
		}
	}
	if sampled != 4 {
		t.Fatalf("sampled %d of 16 runs, want 4 (1 in 4)", sampled)
	}

	hot := p.Handle(ProfKey{Model: "m", Node: "conv1", Kind: "conv2d/gemm", Device: "gpu"})
	warm := p.Handle(ProfKey{Model: "m", Node: "relu1", Kind: "relu", Device: "gpu"})
	cold := p.Handle(ProfKey{Model: "m", Node: "flatten", Kind: "flatten", Device: "cpu"})
	for i := 0; i < 10; i++ {
		hot.Record(1e6)
	}
	warm.Record(5e5)
	cold.Record(100)

	snap := p.Snapshot()
	if len(snap.Top) != 2 {
		t.Fatalf("top-K = %d rows, want 2", len(snap.Top))
	}
	if snap.Top[0].Node != "conv1" || snap.Top[1].Node != "relu1" {
		t.Fatalf("rows not hottest-first: %s then %s", snap.Top[0].Node, snap.Top[1].Node)
	}
	r0 := snap.Top[0]
	if r0.Count != 10 || r0.TotalMs != 10 || r0.MeanUs != 1000 {
		t.Fatalf("hot row = %+v", r0)
	}
	if r0.Kind != "conv2d/gemm" || r0.Device != "gpu" {
		t.Fatalf("key fields lost: %+v", r0)
	}
	if c := reg.Histogram("profile.node_ns.m.conv2d/gemm").Count(); c != 10 {
		t.Fatalf("registry histogram count = %d, want 10", c)
	}
	text := FormatProfile(snap)
	if !strings.Contains(text, "conv1") || !strings.Contains(text, "conv2d/gemm") {
		t.Fatalf("FormatProfile missing hot row:\n%s", text)
	}
}

// TestProfilerNilAndDisabled: nil profilers and negative SampleEvery are
// inert, so sessions without telemetry never branch on it.
func TestProfilerNilAndDisabled(t *testing.T) {
	var p *Profiler
	if p.SampleRun() {
		t.Fatal("nil profiler must not sample")
	}
	p.Handle(ProfKey{}).Record(1) // must not panic
	if snap := p.Snapshot(); len(snap.Top) != 0 {
		t.Fatal("nil profiler snapshot must be empty")
	}
	off := NewProfiler(ProfilerOptions{SampleEvery: -1, Registry: NewRegistry()})
	for i := 0; i < 100; i++ {
		if off.SampleRun() {
			t.Fatal("disabled profiler must never sample")
		}
	}
}

// TestRequestTrackerSegments: every request gets an ID, sampled ones a
// recorder whose segments tile the wall clock — Overhead is defined as
// the remainder, and never negative.
func TestRequestTrackerSegments(t *testing.T) {
	tr := NewRequestTracker(RequestTrackerOptions{SampleEvery: 1, Keep: 8})
	req := tr.Start("m")
	if req == nil {
		t.Fatal("SampleEvery 1 must sample every request")
	}
	if req.ID() != 1 {
		t.Fatalf("first request ID = %d, want 1", req.ID())
	}
	req.MarkAdmitted()
	req.MarkAcquired()
	// Segments come from real elapsed time so they fit inside the wall
	// clock and Overhead absorbs exactly the unaccounted remainder.
	start := time.Now()
	time.Sleep(2 * time.Millisecond)
	exec := time.Since(start)
	req.AddNode("conv1", "conv2d/gemm", "gpu/0", start, exec, false)
	t0 := time.Now()
	time.Sleep(time.Millisecond)
	retry := time.Since(t0)
	req.AddRetry(retry)
	t0 = time.Now()
	time.Sleep(time.Millisecond)
	reexec := time.Since(t0)
	req.AddNode("conv1", "conv2d/gemm", "cpu/0", t0, reexec, true)
	req.Finish(errors.New("boom"))

	traces := tr.Snapshot()
	if len(traces) != 1 {
		t.Fatalf("traces = %d, want 1", len(traces))
	}
	got := traces[0]
	if got.Exec != exec || got.Retry != retry || got.Reexec != reexec {
		t.Fatalf("segments = exec %v retry %v reexec %v, want %v %v %v",
			got.Exec, got.Retry, got.Reexec, exec, retry, reexec)
	}
	if got.Err != "boom" {
		t.Fatalf("err = %q", got.Err)
	}
	if sum := got.Admission + got.Queue + got.Exec + got.Retry + got.Reexec + got.Overhead; sum != got.Wall {
		t.Fatalf("segments sum to %v, wall is %v", sum, got.Wall)
	}
	if got.Overhead < 0 {
		t.Fatalf("overhead went negative: %v", got.Overhead)
	}
	if len(got.Nodes) != 2 || !got.Nodes[1].Reexec || got.Nodes[0].Lane != "gpu/0" {
		t.Fatalf("node events = %+v", got.Nodes)
	}
}

// TestRequestTrackerSamplingAndRing: IDs are assigned to every request
// even when unsampled, and the finished-trace ring keeps the most recent
// Keep traces in order.
func TestRequestTrackerSamplingAndRing(t *testing.T) {
	tr := NewRequestTracker(RequestTrackerOptions{SampleEvery: 2, Keep: 3})
	for i := 0; i < 10; i++ {
		req := tr.Start("m")
		req.Finish(nil) // nil-safe for the unsampled half
	}
	if n := tr.Requests(); n != 10 {
		t.Fatalf("requests = %d, want 10 (IDs for everything)", n)
	}
	traces := tr.Snapshot()
	if len(traces) != 3 {
		t.Fatalf("ring kept %d, want 3", len(traces))
	}
	for i := 1; i < len(traces); i++ {
		if traces[i].ID <= traces[i-1].ID {
			t.Fatalf("ring out of order: %d then %d", traces[i-1].ID, traces[i].ID)
		}
	}
	var nilTracker *RequestTracker
	if nilTracker.Start("m") != nil || nilTracker.Requests() != 0 {
		t.Fatal("nil tracker must be inert")
	}
}

// TestRequestChromeExportLanes: the request-trace Chrome export puts each
// dispatch lane on its own tid with thread_name metadata, segments on
// tid 1.
func TestRequestChromeExportLanes(t *testing.T) {
	tr := NewRequestTracker(RequestTrackerOptions{SampleEvery: 1, Keep: 4})
	req := tr.Start("m")
	req.MarkAdmitted()
	req.MarkAcquired()
	now := time.Now()
	req.AddNode("a", "conv2d", "gpu/0", now, time.Millisecond, false)
	req.AddNode("b", "conv2d", "gpu/1", now, time.Millisecond, false)
	req.AddNode("c", "relu", "cpu/0", now, time.Millisecond, false)
	req.Finish(nil)

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Pid  int               `json:"pid"`
			Tid  int               `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	laneTid := map[string]int{}
	nodeTid := map[string]int{}
	for _, ev := range parsed.TraceEvents {
		if ev.Ph == "M" && ev.Name == "thread_name" && ev.Tid >= 2 {
			laneTid[ev.Args["name"]] = ev.Tid
		}
		if ev.Ph == "X" && strings.HasPrefix(ev.Name, "node:") {
			nodeTid[strings.TrimPrefix(ev.Name, "node:")] = ev.Tid
		}
	}
	if len(laneTid) != 3 {
		t.Fatalf("lane threads = %v, want cpu/0 gpu/0 gpu/1", laneTid)
	}
	// Sorted lane names get ascending tids starting at 2.
	if laneTid["cpu/0"] != 2 || laneTid["gpu/0"] != 3 || laneTid["gpu/1"] != 4 {
		t.Fatalf("lane tid assignment = %v", laneTid)
	}
	if nodeTid["a"] != laneTid["gpu/0"] || nodeTid["b"] != laneTid["gpu/1"] || nodeTid["c"] != laneTid["cpu/0"] {
		t.Fatalf("nodes on wrong lanes: nodes %v lanes %v", nodeTid, laneTid)
	}
	for _, ev := range parsed.TraceEvents {
		if ev.Ph == "X" && !strings.HasPrefix(ev.Name, "node:") && ev.Tid != 1 {
			t.Fatalf("segment %q on tid %d, want the request thread 1", ev.Name, ev.Tid)
		}
	}
}

// TestTracerChromeLanes: spans carrying the reserved lane attribute land
// on per-lane tids; a lane-less trace keeps tid 1 with no metadata
// events, byte-compatible with pre-lane consumers.
func TestTracerChromeLanes(t *testing.T) {
	tr := NewTracer()
	tr.Enable()
	root := tr.Start("run")
	a := root.Child("node:a", KV(LaneAttr, "gpu/0"))
	a.End()
	b := root.Child("node:b", KV(LaneAttr, "cpu/0"))
	b.End()
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Tid  int               `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatal(err)
	}
	tids := map[string]int{}
	meta := 0
	for _, ev := range parsed.TraceEvents {
		if ev.Ph == "M" {
			meta++
			continue
		}
		tids[ev.Name] = ev.Tid
	}
	if meta != 3 { // main + two lanes
		t.Fatalf("metadata events = %d, want 3", meta)
	}
	if tids["run"] != 1 {
		t.Fatalf("unlaned root on tid %d, want 1", tids["run"])
	}
	// Sorted: cpu/0 -> 2, gpu/0 -> 3.
	if tids["node:b"] != 2 || tids["node:a"] != 3 {
		t.Fatalf("lane tids = %v", tids)
	}

	// Lane-less traces stay single-track with no metadata.
	tr2 := NewTracer()
	tr2.Enable()
	sp := tr2.Start("plain")
	sp.End()
	buf.Reset()
	if err := tr2.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "thread_name") {
		t.Fatal("lane-less trace must not emit thread metadata")
	}
}

// TestSLOMonitorWindowAndBurn: outcomes fold into rolling per-model
// stats; errors and sheds burn the budget, the alarm trips past the
// configured burn rate, and Publish mirrors everything into gauges.
func TestSLOMonitorWindowAndBurn(t *testing.T) {
	reg := NewRegistry()
	m := NewSLOMonitor(SLOOptions{Window: time.Minute, ErrorBudget: 0.1, BurnAlarm: 2, Registry: reg})
	for i := 0; i < 95; i++ {
		m.Record("m", 2*time.Millisecond, OutcomeOK)
	}
	for i := 0; i < 3; i++ {
		m.Record("m", 0, OutcomeError)
	}
	m.Record("m", 0, OutcomeShed)
	m.Record("m", 0, OutcomeShed)

	st := m.Stats("m")
	if st.Requests != 100 || st.Errors != 3 || st.Shed != 2 {
		t.Fatalf("counts = %+v", st)
	}
	if st.BadRate != 0.05 {
		t.Fatalf("bad rate = %g, want 0.05", st.BadRate)
	}
	if st.BurnRate != 0.5 || st.Alarm {
		t.Fatalf("burn = %g alarm %v, want 0.5 and no alarm", st.BurnRate, st.Alarm)
	}
	if st.P50 != 2*time.Millisecond {
		t.Fatalf("p50 = %v, want 2ms (all-equal population)", st.P50)
	}

	// Push the bad rate past 2x the budget: the alarm trips.
	for i := 0; i < 40; i++ {
		m.Record("m", 0, OutcomeError)
	}
	stats := m.Publish()
	if len(stats) != 1 || !stats[0].Alarm {
		t.Fatalf("alarm did not trip: %+v", stats)
	}
	if v, ok := reg.Gauge("slo.alarm.m").Value(); !ok || v != 1 {
		t.Fatalf("slo.alarm.m gauge = %v %v, want 1", v, ok)
	}
	if v, ok := reg.Gauge("slo.p50_ms.m").Value(); !ok || v != 2 {
		t.Fatalf("slo.p50_ms.m gauge = %v %v, want 2", v, ok)
	}
	if !strings.Contains(FormatSLO(stats), "alarm=true") {
		t.Fatalf("FormatSLO missing alarm: %s", FormatSLO(stats))
	}

	// A latency objective turns slow successes into bad requests.
	m2 := NewSLOMonitor(SLOOptions{Objective: time.Millisecond, ErrorBudget: 0.1, Registry: reg})
	m2.Record("m", 5*time.Millisecond, OutcomeOK)
	if st := m2.Stats("m"); st.BadRate != 1 {
		t.Fatalf("slow success not counted bad: %+v", st)
	}
}

// TestServeEndpoints drives the telemetry handler over httptest: the
// Prometheus scrape, health flipping 200/503 with the registered
// sources, the debug-source fallback, and the request-trace export.
func TestServeEndpoints(t *testing.T) {
	srv := httptest.NewServer(Handler())
	defer srv.Close()

	DefaultRegistry.Counter("serve.test_counter").Add(5)
	t.Cleanup(DefaultRegistry.Reset)

	get := func(path string) (*http.Response, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		resp.Body.Close()
		return resp, buf.String()
	}

	resp, body := get("/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4" {
		t.Fatalf("/metrics content-type %q", ct)
	}
	if !strings.Contains(body, "serve_test_counter 5") {
		t.Fatalf("/metrics missing counter:\n%s", body)
	}

	RegisterHealth("test.ok", func() HealthStatus { return HealthStatus{OK: true, Detail: "fine"} })
	t.Cleanup(func() { UnregisterHealth("test.ok") })
	resp, body = get("/healthz")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, `"ok": true`) {
		t.Fatalf("/healthz healthy: status %d body %s", resp.StatusCode, body)
	}
	RegisterHealth("test.bad", func() HealthStatus { return HealthStatus{OK: false, Detail: "breaker open"} })
	resp, body = get("/healthz")
	UnregisterHealth("test.bad")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/healthz with failing source: status %d, want 503", resp.StatusCode)
	}
	if !strings.Contains(body, "breaker open") {
		t.Fatalf("/healthz body missing detail: %s", body)
	}

	RegisterDebug("teststate", func() any { return map[string]int{"answer": 42} })
	resp, body = get("/debug/teststate")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, `"answer": 42`) {
		t.Fatalf("/debug/teststate: status %d body %s", resp.StatusCode, body)
	}
	resp, body = get("/debug/nosuch")
	if resp.StatusCode != http.StatusNotFound || !strings.Contains(body, "teststate") {
		t.Fatalf("unknown debug source must 404 and list sources: status %d body %s", resp.StatusCode, body)
	}

	for _, path := range []string{"/debug/profile", "/debug/slo", "/debug/requests", "/debug/requests?format=chrome", "/debug/trace"} {
		resp, body = get(path)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s status %d", path, resp.StatusCode)
		}
		if !json.Valid([]byte(body)) {
			t.Fatalf("%s is not valid JSON: %s", path, body)
		}
	}
}

// TestServeListener: the opt-in listener binds, answers, reports its
// bound address, and shuts down on Close.
func TestServeListener(t *testing.T) {
	srv, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + srv.Addr() + "/healthz")
	if err != nil {
		t.Fatalf("GET via listener: %v", err)
	}
	resp.Body.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + srv.Addr() + "/healthz"); err == nil {
		t.Fatal("listener still answering after Close")
	}
}
