package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Profiler is the continuous serving profiler: a low-overhead sampling
// aggregator that folds per-node kernel timings across requests into
// rolling top-K tables, so a live system can answer "which workload is
// hot right now" without tracing every request.
//
// Sampling is per run: SampleRun admits 1 in SampleEvery runs, and only
// sampled runs pay the per-node clock reads. Recording goes through
// pre-resolved ProfHandles (one map lookup at session construction, none
// at run time) and is allocation-free. Aggregates roll over two
// half-windows — Snapshot reports the last one to two Window spans, so a
// workload that went cold ages out instead of haunting the table forever.
//
// Per-(model, kind) latency histograms are additionally published into a
// metrics Registry under profile.node_ns.<model>.<kind>, where kind is
// the operator kind refined by the selected kernel for convolutions
// (e.g. conv2d/gemm), so quantiles reach the /metrics endpoint.
type Profiler struct {
	opts ProfilerOptions
	reg  *Registry

	runs atomic.Uint64 // run counter driving the sampling decision

	mu      sync.Mutex
	entries map[ProfKey]*profEntry
	epoch   time.Time // start of the current half-window
}

// ProfilerOptions configures a Profiler; the zero value selects the
// defaults noted per field.
type ProfilerOptions struct {
	// SampleEvery admits 1 in N runs to profiling (default 8; 1 profiles
	// every run; negative disables sampling entirely).
	SampleEvery int
	// TopK bounds the snapshot table (default 12).
	TopK int
	// Window is the rolling half-window; aggregates older than two
	// windows age out (default 30s).
	Window time.Duration
	// Registry receives the per-(model, kind) histograms (default
	// DefaultRegistry).
	Registry *Registry
}

// ProfKey identifies one profiled node.
type ProfKey struct {
	Model  string
	Node   string
	Kind   string // operator kind, refined by conv kernel (e.g. conv2d/gemm)
	Device string
}

// profCell is one half-window of accumulation for one node.
type profCell struct {
	count int64
	sumNs float64
	maxNs float64
}

type profEntry struct {
	key ProfKey
	mu  sync.Mutex
	cur profCell
	prv profCell
}

// ProfHandle records samples for one node; resolve it once per session
// with Profiler.Handle and call Record per sampled execution.
type ProfHandle struct {
	e *profEntry
	h *Histogram
}

// NewProfiler creates a profiler; zero options select the defaults.
func NewProfiler(opts ProfilerOptions) *Profiler {
	if opts.SampleEvery == 0 {
		opts.SampleEvery = 8
	}
	if opts.TopK <= 0 {
		opts.TopK = 12
	}
	if opts.Window <= 0 {
		opts.Window = 30 * time.Second
	}
	if opts.Registry == nil {
		opts.Registry = DefaultRegistry
	}
	return &Profiler{opts: opts, reg: opts.Registry, entries: map[ProfKey]*profEntry{}, epoch: time.Now()}
}

// SampleRun decides whether the next run is profiled: 1 in SampleEvery,
// via one atomic increment. Nil-safe (false).
func (p *Profiler) SampleRun() bool {
	if p == nil || p.opts.SampleEvery < 0 {
		return false
	}
	return p.runs.Add(1)%uint64(p.opts.SampleEvery) == 0
}

// Handle resolves (creating if needed) the recording handle for one node.
// Call at session construction, not per run.
func (p *Profiler) Handle(key ProfKey) ProfHandle {
	if p == nil {
		return ProfHandle{}
	}
	p.mu.Lock()
	e, ok := p.entries[key]
	if !ok {
		e = &profEntry{key: key}
		p.entries[key] = e
	}
	p.mu.Unlock()
	return ProfHandle{e: e, h: p.reg.Histogram("profile.node_ns." + key.Model + "." + key.Kind)}
}

// Record folds one node execution into the aggregates; allocation-free.
func (h ProfHandle) Record(wallNs float64) {
	if h.e == nil {
		return
	}
	h.e.mu.Lock()
	h.e.cur.count++
	h.e.cur.sumNs += wallNs
	if wallNs > h.e.cur.maxNs {
		h.e.cur.maxNs = wallNs
	}
	h.e.mu.Unlock()
	h.h.Observe(wallNs)
}

// rotate ages the half-windows when the current one has run its span.
// Called with p.mu held.
func (p *Profiler) rotateLocked(now time.Time) {
	if now.Sub(p.epoch) < p.opts.Window {
		return
	}
	// More than two windows idle: both halves are stale.
	drop := now.Sub(p.epoch) >= 2*p.opts.Window
	for _, e := range p.entries {
		e.mu.Lock()
		if drop {
			e.prv = profCell{}
		} else {
			e.prv = e.cur
		}
		e.cur = profCell{}
		e.mu.Unlock()
	}
	p.epoch = now
}

// ProfileEntry is one row of a profile snapshot, aggregated over the
// rolling window.
type ProfileEntry struct {
	Model   string  `json:"model"`
	Node    string  `json:"node"`
	Kind    string  `json:"kind"`
	Device  string  `json:"device"`
	Count   int64   `json:"count"`
	TotalMs float64 `json:"total_ms"`
	MeanUs  float64 `json:"mean_us"`
	MaxUs   float64 `json:"max_us"`
}

// ProfileSnapshot is the rolling top-K view of where execution time goes.
type ProfileSnapshot struct {
	Taken       time.Time      `json:"taken"`
	Window      time.Duration  `json:"window_ns"`
	SampledRuns uint64         `json:"sampled_runs"`
	Top         []ProfileEntry `json:"top"`
}

// Snapshot returns the rolling top-K table, hottest (by total time) first.
func (p *Profiler) Snapshot() ProfileSnapshot {
	if p == nil {
		return ProfileSnapshot{}
	}
	now := time.Now()
	p.mu.Lock()
	p.rotateLocked(now)
	rows := make([]ProfileEntry, 0, len(p.entries))
	for _, e := range p.entries {
		e.mu.Lock()
		count := e.cur.count + e.prv.count
		sum := e.cur.sumNs + e.prv.sumNs
		max := e.cur.maxNs
		if e.prv.maxNs > max {
			max = e.prv.maxNs
		}
		e.mu.Unlock()
		if count == 0 {
			continue
		}
		rows = append(rows, ProfileEntry{
			Model: e.key.Model, Node: e.key.Node, Kind: e.key.Kind, Device: e.key.Device,
			Count: count, TotalMs: sum / 1e6, MeanUs: sum / float64(count) / 1e3, MaxUs: max / 1e3,
		})
	}
	p.mu.Unlock()
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].TotalMs != rows[j].TotalMs {
			return rows[i].TotalMs > rows[j].TotalMs
		}
		return rows[i].Node < rows[j].Node // deterministic ties
	})
	if len(rows) > p.opts.TopK {
		rows = rows[:p.opts.TopK]
	}
	var sampled uint64
	if p.opts.SampleEvery > 0 {
		sampled = p.runs.Load() / uint64(p.opts.SampleEvery)
	}
	return ProfileSnapshot{Taken: now, Window: 2 * p.opts.Window, SampledRuns: sampled, Top: rows}
}

// FormatProfile renders a snapshot as the unigpu-bench -profile table.
func FormatProfile(s ProfileSnapshot) string {
	var b strings.Builder
	fmt.Fprintf(&b, "profiler top-%d (rolling %v, %d sampled runs)\n",
		len(s.Top), s.Window.Round(time.Second), s.SampledRuns)
	fmt.Fprintf(&b, "%-16s %-24s %-16s %-6s %8s %10s %10s %10s\n",
		"model", "node", "kind", "dev", "count", "total ms", "mean µs", "max µs")
	for _, r := range s.Top {
		fmt.Fprintf(&b, "%-16s %-24s %-16s %-6s %8d %10.2f %10.1f %10.1f\n",
			r.Model, r.Node, r.Kind, r.Device, r.Count, r.TotalMs, r.MeanUs, r.MaxUs)
	}
	return b.String()
}

// DefaultProfiler is the profiler the serving runtime feeds by default.
var DefaultProfiler = NewProfiler(ProfilerOptions{})

// Profile snapshots the default profiler.
func Profile() ProfileSnapshot { return DefaultProfiler.Snapshot() }
