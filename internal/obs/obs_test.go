package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestDisabledTracerIsNoop(t *testing.T) {
	tr := NewTracer()
	sp := tr.Start("root", KV("k", "v"))
	if sp != noopSpan {
		t.Fatal("disabled tracer must hand out the shared no-op span")
	}
	sp.SetAttrs(KVInt("n", 1)) // must not panic or record
	sp.End()
	if got := tr.Records(); len(got) != 0 {
		t.Fatalf("disabled tracer recorded %d spans", len(got))
	}
}

func TestSpanNesting(t *testing.T) {
	tr := NewTracer()
	tr.Enable()
	root := tr.Start("root")
	child := tr.Start("child")
	grand := tr.Start("grand")
	grand.End()
	child.End()
	sib := tr.Start("sibling")
	sib.End()
	root.End()

	recs := tr.Records()
	if len(recs) != 4 {
		t.Fatalf("records = %d, want 4", len(recs))
	}
	byName := map[string]SpanRecord{}
	for _, r := range recs {
		byName[r.Name] = r
	}
	if byName["root"].ParentID != 0 {
		t.Errorf("root parent = %d, want 0", byName["root"].ParentID)
	}
	if byName["child"].ParentID != byName["root"].ID {
		t.Errorf("child parent = %d, want root %d", byName["child"].ParentID, byName["root"].ID)
	}
	if byName["grand"].ParentID != byName["child"].ID {
		t.Errorf("grand parent = %d, want child %d", byName["grand"].ParentID, byName["child"].ID)
	}
	if byName["sibling"].ParentID != byName["root"].ID {
		t.Errorf("sibling parent = %d, want root %d", byName["sibling"].ParentID, byName["root"].ID)
	}
}

func TestExplicitChildConcurrent(t *testing.T) {
	tr := NewTracer()
	tr.Enable()
	root := tr.Start("root")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sp := root.Child("worker")
			sp.End()
		}()
	}
	wg.Wait()
	root.End()
	workers := 0
	for _, r := range tr.Records() {
		if r.Name == "worker" {
			workers++
			if r.ParentID != 1 {
				t.Errorf("worker parent = %d, want root", r.ParentID)
			}
		}
	}
	if workers != 8 {
		t.Fatalf("workers = %d, want 8", workers)
	}
}

func TestMetricsRegistry(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.count").Add(3)
	r.Counter("a.count").Inc()
	if v := r.Counter("a.count").Value(); v != 4 {
		t.Fatalf("counter = %d, want 4", v)
	}
	r.Gauge("b.gauge").Set(2.5)
	if v, ok := r.Gauge("b.gauge").Value(); !ok || v != 2.5 {
		t.Fatalf("gauge = %v %v", v, ok)
	}
	h := r.Histogram("c.hist")
	for _, v := range []float64{1, 100, 1000, 1e6} {
		h.Observe(v)
	}
	if h.Count() != 4 || h.Sum() != 1001101 {
		t.Fatalf("hist count=%d sum=%g", h.Count(), h.Sum())
	}
	if q := h.Quantile(0); q > 100 {
		t.Errorf("p0 = %g, want near min", q)
	}
	if q := h.Quantile(0.99); q < 1000 {
		t.Errorf("p99 = %g, want near max", q)
	}

	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{"counter a.count 4", "gauge   b.gauge 2.5", "hist    c.hist count=4"} {
		if !strings.Contains(text, want) {
			t.Errorf("dump missing %q:\n%s", want, text)
		}
	}

	// Reset keeps handles valid but zeroes values.
	r.Reset()
	if v := r.Counter("a.count").Value(); v != 0 {
		t.Fatalf("counter after reset = %d", v)
	}
	if _, ok := r.Gauge("b.gauge").Value(); ok {
		t.Fatal("gauge should be unset after reset")
	}
	if h.Count() != 0 {
		t.Fatal("histogram handle should be zeroed in place")
	}
}

func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		v    float64
		want int
	}{{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {1024, 10}, {1e300, histBuckets - 1}}
	for _, c := range cases {
		if got := bucketFor(c.v); got != c.want {
			t.Errorf("bucketFor(%g) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestChromeTraceExport(t *testing.T) {
	tr := NewTracer()
	tr.Enable()
	root := tr.Start("outer", KV("model", "m"))
	time.Sleep(time.Millisecond)
	in := tr.Start("inner")
	in.End()
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Ts   float64           `json:"ts"`
			Dur  float64           `json:"dur"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(parsed.TraceEvents) != 2 {
		t.Fatalf("events = %d, want 2", len(parsed.TraceEvents))
	}
	outer, inner := parsed.TraceEvents[0], parsed.TraceEvents[1]
	if outer.Name != "outer" || inner.Name != "inner" {
		t.Fatalf("event order: %q then %q", outer.Name, inner.Name)
	}
	if outer.Ph != "X" {
		t.Errorf("ph = %q, want X", outer.Ph)
	}
	if outer.Args["model"] != "m" {
		t.Errorf("attr lost: %v", outer.Args)
	}
	if inner.Args["parent_id"] != outer.Args["span_id"] {
		t.Errorf("inner parent %s != outer id %s", inner.Args["parent_id"], outer.Args["span_id"])
	}
	// Time containment, as a viewer would nest them.
	if inner.Ts < outer.Ts || inner.Ts+inner.Dur > outer.Ts+outer.Dur+1e-3 {
		t.Errorf("inner [%g,%g] not contained in outer [%g,%g]",
			inner.Ts, inner.Ts+inner.Dur, outer.Ts, outer.Ts+outer.Dur)
	}
}

// BenchmarkStartDisabled measures the disabled-tracing fast path the whole
// pipeline pays when observability is off.
func BenchmarkStartDisabled(b *testing.B) {
	tr := NewTracer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Start("node")
		sp.End()
	}
}

// BenchmarkStartEnabled is the cost of a live span, for comparison.
func BenchmarkStartEnabled(b *testing.B) {
	tr := NewTracer()
	tr.Enable()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Start("node")
		sp.End()
	}
	b.StopTimer()
	tr.Reset()
}
