// Package obs is the observability layer of the stack: hierarchical
// tracing spans and a metrics registry threaded through the whole pipeline
// (graph passes, layout tuning, schedule search, codegen, execution), with
// exporters for the Chrome trace-event format (chrome://tracing, Perfetto)
// and a plain-text metrics dump.
//
// The layer is zero-dependency and off by default: Start returns a shared
// no-op span until Enable is called, so instrumented hot paths pay only an
// atomic load when tracing is disabled. Spans nest via an implicit
// current-span stack:
//
//	sp := obs.Start("compile", obs.KV("model", name))
//	defer sp.End()
//
// Concurrent goroutines that need correct parentage should derive children
// explicitly with Span.Child; the implicit stack assumes the pipeline's
// (sequential) call structure.
package obs

import (
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string
	Value string
}

// KV builds a string attribute.
func KV(key, value string) Attr { return Attr{Key: key, Value: value} }

// KVInt builds an integer attribute.
func KVInt(key string, v int) Attr { return Attr{Key: key, Value: strconv.Itoa(v)} }

// KVFloat builds a float attribute.
func KVFloat(key string, v float64) Attr {
	return Attr{Key: key, Value: strconv.FormatFloat(v, 'g', 6, 64)}
}

// Span is one timed region of the pipeline. The zero span (returned while
// tracing is disabled) is a no-op: End and SetAttrs do nothing.
type Span struct {
	tracer *Tracer
	parent *Span
	id     int64
	name   string
	attrs  []Attr
	start  time.Time
}

// noopSpan is handed out while tracing is disabled.
var noopSpan = &Span{}

// SetAttrs appends attributes to the span (e.g. results known only at End).
func (s *Span) SetAttrs(attrs ...Attr) {
	if s.tracer == nil {
		return
	}
	s.tracer.mu.Lock()
	s.attrs = append(s.attrs, attrs...)
	s.tracer.mu.Unlock()
}

// Child starts a span explicitly parented under s, bypassing the implicit
// stack; safe for concurrent producers.
func (s *Span) Child(name string, attrs ...Attr) *Span {
	if s.tracer == nil {
		return noopSpan
	}
	return s.tracer.startWithParent(s, name, attrs)
}

// End finishes the span and records it with the tracer.
func (s *Span) End() {
	if s.tracer == nil {
		return
	}
	s.tracer.end(s)
}

// SpanRecord is one finished span.
type SpanRecord struct {
	ID       int64
	ParentID int64 // 0 for root spans
	Name     string
	Attrs    []Attr
	Start    time.Time
	Duration time.Duration
}

// Tracer collects finished spans while enabled.
type Tracer struct {
	enabled atomic.Bool

	mu      sync.Mutex
	nextID  int64
	current *Span // top of the implicit nesting stack
	spans   []SpanRecord
	epoch   time.Time
}

// NewTracer returns a disabled tracer.
func NewTracer() *Tracer { return &Tracer{} }

// Enable turns span collection on.
func (t *Tracer) Enable() {
	t.mu.Lock()
	if t.epoch.IsZero() {
		t.epoch = time.Now()
	}
	t.mu.Unlock()
	t.enabled.Store(true)
}

// Disable turns span collection off; already-collected spans are kept.
func (t *Tracer) Disable() { t.enabled.Store(false) }

// Enabled reports whether spans are being collected.
func (t *Tracer) Enabled() bool { return t.enabled.Load() }

// Start begins a span nested under the tracer's current span.
func (t *Tracer) Start(name string, attrs ...Attr) *Span {
	if !t.enabled.Load() {
		return noopSpan
	}
	return t.startWithParent(nil, name, attrs)
}

// startWithParent creates a live span. A nil parent means "use the implicit
// stack"; an explicit parent bypasses it (and does not alter the stack).
func (t *Tracer) startWithParent(parent *Span, name string, attrs []Attr) *Span {
	t.mu.Lock()
	t.nextID++
	s := &Span{tracer: t, id: t.nextID, name: name, attrs: attrs, start: time.Now()}
	if parent != nil {
		s.parent = parent
	} else {
		s.parent = t.current
		t.current = s
	}
	t.mu.Unlock()
	return s
}

func (t *Tracer) end(s *Span) {
	dur := time.Since(s.start)
	t.mu.Lock()
	rec := SpanRecord{
		ID: s.id, Name: s.name, Attrs: s.attrs,
		Start: s.start, Duration: dur,
	}
	if s.parent != nil {
		rec.ParentID = s.parent.id
	}
	t.spans = append(t.spans, rec)
	// Pop the implicit stack. Out-of-order Ends (explicit children, or a
	// span ended twice) leave the stack untouched.
	if t.current == s {
		t.current = s.parent
	}
	t.mu.Unlock()
}

// Records returns a snapshot of the finished spans.
func (t *Tracer) Records() []SpanRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, len(t.spans))
	copy(out, t.spans)
	return out
}

// Reset drops collected spans and restarts the trace clock; the enabled
// state is preserved.
func (t *Tracer) Reset() {
	t.mu.Lock()
	t.spans = nil
	t.current = nil
	t.epoch = time.Now()
	t.mu.Unlock()
}

// Default globals --------------------------------------------------------

// DefaultTracer and DefaultRegistry are what the package-level helpers and
// the instrumented pipeline use.
var (
	DefaultTracer   = NewTracer()
	DefaultRegistry = NewRegistry()
)

// Enable turns on the default tracer (and with it, hot-path metrics that
// gate on Enabled).
func Enable() { DefaultTracer.Enable() }

// Disable turns off the default tracer.
func Disable() { DefaultTracer.Disable() }

// Enabled reports whether the default tracer is collecting.
func Enabled() bool { return DefaultTracer.Enabled() }

// Start begins a span on the default tracer.
func Start(name string, attrs ...Attr) *Span { return DefaultTracer.Start(name, attrs...) }

// Records snapshots the default tracer's finished spans.
func Records() []SpanRecord { return DefaultTracer.Records() }

// Count adds to a counter in the default registry.
func Count(name string, delta int64) { DefaultRegistry.Counter(name).Add(delta) }

// SetGauge sets a gauge in the default registry.
func SetGauge(name string, v float64) { DefaultRegistry.Gauge(name).Set(v) }

// Observe records a histogram sample in the default registry.
func Observe(name string, v float64) { DefaultRegistry.Histogram(name).Observe(v) }

// Reset clears the default tracer's spans and zeroes the default
// registry's metrics (handles stay valid).
func Reset() {
	DefaultTracer.Reset()
	DefaultRegistry.Reset()
}
