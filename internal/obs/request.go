package obs

import (
	"context"
	"encoding/json"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Request-scoped tracing: every serving request gets a request ID, and
// sampled requests additionally carry an ActiveRequest recorder through
// their context. The runtime attributes wall time to segments — admission
// wait, queue wait, per-node execution, the fault-dispatch gate
// (retries/backoff), and CPU re-execution — and records a per-node event
// stream with the dispatch lane each node ran on. Finished traces land in
// a bounded ring, exportable as compact records or as a Chrome trace with
// one process per request and one thread row per dispatch lane.

// RequestTrackerOptions configures a RequestTracker; the zero value
// selects the defaults noted per field.
type RequestTrackerOptions struct {
	// SampleEvery traces 1 in N requests (default 1: every request;
	// negative disables tracing while still assigning request IDs).
	SampleEvery int
	// Keep bounds the ring of finished traces (default 128).
	Keep int
	// MaxNodes caps the per-trace node-event stream (default 4096);
	// segment totals keep accumulating past the cap.
	MaxNodes int
}

// RequestTracker assigns request IDs and collects sampled request traces.
// All methods are safe for concurrent use and nil-safe.
type RequestTracker struct {
	opts RequestTrackerOptions
	seq  atomic.Uint64 // request IDs, every request
	n    atomic.Uint64 // sampling counter

	mu    sync.Mutex
	ring  []RequestTrace
	next  int
	total int64 // finished traces ever collected
}

// NewRequestTracker creates a tracker; zero options select the defaults.
func NewRequestTracker(opts RequestTrackerOptions) *RequestTracker {
	if opts.SampleEvery == 0 {
		opts.SampleEvery = 1
	}
	if opts.Keep <= 0 {
		opts.Keep = 128
	}
	if opts.MaxNodes <= 0 {
		opts.MaxNodes = 4096
	}
	return &RequestTracker{opts: opts}
}

// NodeEvent is one node execution inside a request trace.
type NodeEvent struct {
	Name   string        `json:"name"`
	Kind   string        `json:"kind"`
	Lane   string        `json:"lane"` // dispatch lane, e.g. gpu/0, cpu/1
	Start  time.Time     `json:"start"`
	Dur    time.Duration `json:"dur_ns"`
	Reexec bool          `json:"reexec,omitempty"` // CPU re-execution of a failed GPU node
}

// RequestTrace is the compact per-request record: the wall clock split
// into non-overlapping segments plus the node event stream. For serial
// sessions Admission+Queue+Exec+Retry+Reexec+Overhead equals Wall by
// construction (Overhead absorbs scheduling gaps); under concurrent
// dispatch Exec sums per-lane busy time and may exceed Wall.
type RequestTrace struct {
	ID        uint64        `json:"id"`
	Model     string        `json:"model"`
	Start     time.Time     `json:"start"`
	Wall      time.Duration `json:"wall_ns"`
	Admission time.Duration `json:"admission_ns"` // admission decision
	Queue     time.Duration `json:"queue_ns"`     // waiting for a pooled session
	Exec      time.Duration `json:"exec_ns"`      // node execution (first attempt)
	Retry     time.Duration `json:"retry_ns"`     // failed dispatches, retries, backoff
	Reexec    time.Duration `json:"reexec_ns"`    // CPU re-execution of GPU nodes
	Gather    time.Duration `json:"gather_ns,omitempty"`  // copying feeds into a batched input
	Scatter   time.Duration `json:"scatter_ns,omitempty"` // copying a batched output row back out
	Overhead  time.Duration `json:"overhead_ns"`  // wall minus the accounted segments
	BatchSize int           `json:"batch,omitempty"` // coalesced batch the request rode in
	Shed      bool          `json:"shed,omitempty"`
	Err       string        `json:"err,omitempty"`
	Nodes     []NodeEvent   `json:"nodes,omitempty"`
}

// ActiveRequest is the in-flight recorder for one sampled request. All
// methods are nil-safe, so instrumented code calls them unconditionally;
// node-level appends are mutex-guarded for concurrent worker lanes.
type ActiveRequest struct {
	t *RequestTracker

	mu sync.Mutex
	tr RequestTrace
}

// Start assigns the next request ID and, when the request is sampled,
// returns its recorder (nil otherwise, and for a nil tracker).
func (t *RequestTracker) Start(model string) *ActiveRequest {
	if t == nil {
		return nil
	}
	id := t.seq.Add(1)
	if t.opts.SampleEvery < 0 || t.n.Add(1)%uint64(t.opts.SampleEvery) != 0 {
		return nil
	}
	return &ActiveRequest{t: t, tr: RequestTrace{ID: id, Model: model, Start: time.Now()}}
}

// Requests reports how many request IDs have been assigned.
func (t *RequestTracker) Requests() uint64 {
	if t == nil {
		return 0
	}
	return t.seq.Load()
}

// ID returns the request ID (0 for nil).
func (r *ActiveRequest) ID() uint64 {
	if r == nil {
		return 0
	}
	return r.tr.ID
}

// MarkAdmitted closes the admission segment: the time deciding whether to
// accept the request.
func (r *ActiveRequest) MarkAdmitted() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.tr.Admission = time.Since(r.tr.Start)
	r.mu.Unlock()
}

// MarkAcquired closes the queue segment: the time from admission until a
// session was available.
func (r *ActiveRequest) MarkAcquired() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.tr.Queue = time.Since(r.tr.Start) - r.tr.Admission
	if r.tr.Queue < 0 {
		r.tr.Queue = 0
	}
	r.mu.Unlock()
}

// AddNode records one node execution on a dispatch lane, accumulating it
// into the Exec (or, for a CPU re-execution, Reexec) segment.
func (r *ActiveRequest) AddNode(name, kind, lane string, start time.Time, dur time.Duration, reexec bool) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if reexec {
		r.tr.Reexec += dur
	} else {
		r.tr.Exec += dur
	}
	if len(r.tr.Nodes) < r.t.opts.MaxNodes {
		r.tr.Nodes = append(r.tr.Nodes, NodeEvent{
			Name: name, Kind: kind, Lane: lane, Start: start, Dur: dur, Reexec: reexec,
		})
	}
	r.mu.Unlock()
}

// AddRetry accumulates time spent in the fault-dispatch gate: failed
// dispatches (including injected hangs) and retry backoff.
func (r *ActiveRequest) AddRetry(d time.Duration) {
	if r == nil || d <= 0 {
		return
	}
	r.mu.Lock()
	r.tr.Retry += d
	r.mu.Unlock()
}

// AddGather accumulates time spent copying this request's feeds into the
// batched input tensors.
func (r *ActiveRequest) AddGather(d time.Duration) {
	if r == nil || d <= 0 {
		return
	}
	r.mu.Lock()
	r.tr.Gather += d
	r.mu.Unlock()
}

// AddScatter accumulates time spent copying this request's rows out of the
// batched output tensors.
func (r *ActiveRequest) AddScatter(d time.Duration) {
	if r == nil || d <= 0 {
		return
	}
	r.mu.Lock()
	r.tr.Scatter += d
	r.mu.Unlock()
}

// SetBatchSize records the size of the coalesced batch the request was
// executed in (1 for the per-request path).
func (r *ActiveRequest) SetBatchSize(n int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.tr.BatchSize = n
	r.mu.Unlock()
}

// MarkShed flags the request as shed by admission control.
func (r *ActiveRequest) MarkShed() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.tr.Shed = true
	r.mu.Unlock()
}

// Finish seals the trace — Wall is measured, Overhead absorbs whatever
// the segments did not account for — and files it with the tracker.
func (r *ActiveRequest) Finish(err error) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.tr.Wall = time.Since(r.tr.Start)
	accounted := r.tr.Admission + r.tr.Queue + r.tr.Exec + r.tr.Retry + r.tr.Reexec + r.tr.Gather + r.tr.Scatter
	if r.tr.Overhead = r.tr.Wall - accounted; r.tr.Overhead < 0 {
		r.tr.Overhead = 0 // concurrent lanes overlap; see RequestTrace docs
	}
	if err != nil {
		r.tr.Err = err.Error()
	}
	tr := r.tr
	r.mu.Unlock()

	t := r.t
	t.mu.Lock()
	if len(t.ring) < t.opts.Keep {
		t.ring = append(t.ring, tr)
	} else {
		t.ring[t.next] = tr
	}
	t.next = (t.next + 1) % t.opts.Keep
	t.total++
	t.mu.Unlock()
}

// Snapshot returns the retained traces, most recent last.
func (t *RequestTracker) Snapshot() []RequestTrace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]RequestTrace, 0, len(t.ring))
	if len(t.ring) < t.opts.Keep {
		out = append(out, t.ring...)
	} else {
		out = append(out, t.ring[t.next:]...)
		out = append(out, t.ring[:t.next]...)
	}
	return out
}

// WriteJSON dumps the retained traces as a JSON array.
func (t *RequestTracker) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t.Snapshot())
}

// WriteChromeTrace exports the retained request traces in the Chrome
// trace-event format: one process per request (named by ID and model),
// a "request" thread carrying the segment spans, and one thread per
// dispatch lane so concurrent GPU/CPU lanes render as separate tracks.
func (t *RequestTracker) WriteChromeTrace(w io.Writer) error {
	traces := t.Snapshot()
	var epoch time.Time
	for _, tr := range traces {
		if epoch.IsZero() || tr.Start.Before(epoch) {
			epoch = tr.Start
		}
	}
	us := func(at time.Time) float64 { return float64(at.Sub(epoch).Nanoseconds()) / 1e3 }
	out := chromeTrace{DisplayTimeUnit: "ms"}
	for pi, tr := range traces {
		pid := pi + 1
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid, Tid: 0,
			Args: map[string]string{"name": "request " + strconv.FormatUint(tr.ID, 10) + " (" + tr.Model + ")"},
		}, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: pid, Tid: 1,
			Args: map[string]string{"name": "request"},
		})
		// Segment spans on the request thread, laid end to end in their
		// real order: admission, queue, then the run (exec+retry+reexec
		// interleave inside it, so the run span covers the remainder).
		at := tr.Start
		seg := func(name string, d time.Duration) {
			if d <= 0 {
				return
			}
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: name, Ph: "X", Pid: pid, Tid: 1,
				Ts: us(at), Dur: float64(d.Nanoseconds()) / 1e3,
				Args: map[string]string{"request_id": strconv.FormatUint(tr.ID, 10)},
			})
			at = at.Add(d)
		}
		seg("admission", tr.Admission)
		seg("queue", tr.Queue)
		seg("run", tr.Wall-tr.Admission-tr.Queue)

		lanes := map[string]int{}
		for _, n := range tr.Nodes {
			if _, ok := lanes[n.Lane]; !ok {
				lanes[n.Lane] = 0
			}
		}
		names := make([]string, 0, len(lanes))
		for l := range lanes {
			names = append(names, l)
		}
		sort.Strings(names)
		for i, l := range names {
			lanes[l] = i + 2 // tid 1 is the request thread
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: i + 2,
				Args: map[string]string{"name": l},
			})
		}
		for _, n := range tr.Nodes {
			args := map[string]string{"kind": n.Kind}
			if n.Reexec {
				args["reexec"] = "true"
			}
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "node:" + n.Name, Ph: "X", Pid: pid, Tid: lanes[n.Lane],
				Ts: us(n.Start), Dur: float64(n.Dur.Nanoseconds()) / 1e3, Args: args,
			})
		}
	}
	return json.NewEncoder(w).Encode(out)
}

// Context plumbing --------------------------------------------------------

type reqCtxKey struct{}

// ContextWithRequest attaches a request recorder to the context; the
// runtime picks it up in Session.RunContext.
func ContextWithRequest(ctx context.Context, r *ActiveRequest) context.Context {
	if r == nil {
		return ctx
	}
	return context.WithValue(ctx, reqCtxKey{}, r)
}

// RequestFromContext returns the attached recorder, or nil.
func RequestFromContext(ctx context.Context) *ActiveRequest {
	r, _ := ctx.Value(reqCtxKey{}).(*ActiveRequest)
	return r
}

// DefaultRequests is the tracker serving pools feed by default: request
// IDs for everything, a 1-in-16 sampled trace ring for the live
// /debug/requests endpoint.
var DefaultRequests = NewRequestTracker(RequestTrackerOptions{SampleEvery: 16, Keep: 64})
