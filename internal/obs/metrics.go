package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter.
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value reads the counter.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a last-value metric.
type Gauge struct {
	mu  sync.Mutex
	v   float64
	set bool
}

// Set records the gauge's current value.
func (g *Gauge) Set(v float64) {
	g.mu.Lock()
	g.v, g.set = v, true
	g.mu.Unlock()
}

// Value reads the gauge; ok is false if it was never set.
func (g *Gauge) Value() (v float64, ok bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v, g.set
}

// histBuckets is the number of fixed exponential buckets. Bucket i counts
// samples in (2^(i-1), 2^i]; bucket 0 counts samples <= 1; the last bucket
// is the overflow. Powers of two span nanosecond timings to multi-second
// wall clocks (2^62 ns) in one fixed layout.
const histBuckets = 64

// Histogram accumulates positive-ish samples into fixed exponential
// power-of-two buckets.
type Histogram struct {
	mu       sync.Mutex
	counts   [histBuckets]int64
	n        int64
	sum      float64
	min, max float64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	h.counts[bucketFor(v)]++
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if h.n == 0 || v > h.max {
		h.max = v
	}
	h.n++
	h.sum += v
	h.mu.Unlock()
}

// bucketFor maps a sample to its bucket index: ceil(log2(v)), clamped.
func bucketFor(v float64) int {
	if v <= 1 {
		return 0
	}
	b := int(math.Ceil(math.Log2(v)))
	if b >= histBuckets {
		return histBuckets - 1
	}
	return b
}

// Count returns the number of samples.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// Sum returns the sum of samples.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Quantile estimates the q-quantile (0..1) by linear interpolation between
// per-sample position estimates, clamped to the observed [min, max]. The
// estimate for a position inside a bucket interpolates across the bucket's
// value range instead of snapping to its upper bound, so a population
// sitting exactly on a bucket boundary (e.g. every sample equal) reports
// the true value rather than up to 2x high, and quantiles stay monotone
// in q. Allocation-free.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.quantileLocked(q)
}

func (h *Histogram) quantileLocked(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	r := q * float64(h.n-1)
	k := int64(r)
	v := h.valueAt(k)
	if frac := r - float64(k); frac > 0 && k+1 < h.n {
		v += frac * (h.valueAt(k+1) - v)
	}
	return v
}

// valueAt estimates the value of the k-th (0-based) sample in sorted
// order: the midpoint-interpolated position inside its bucket, with the
// bucket's range clamped to the observed [min, max].
func (h *Histogram) valueAt(k int64) float64 {
	var seen int64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		if k < seen+c {
			lo, hi := bucketBounds(i)
			if lo < h.min {
				lo = h.min
			}
			if hi > h.max {
				hi = h.max
			}
			if hi < lo {
				hi = lo
			}
			frac := (float64(k-seen) + 0.5) / float64(c)
			return lo + frac*(hi-lo)
		}
		seen += c
	}
	return h.max
}

// bucketBounds returns bucket i's value range: bucket 0 holds samples
// <= 1, bucket i holds (2^(i-1), 2^i].
func bucketBounds(i int) (lo, hi float64) {
	if i == 0 {
		return 0, 1
	}
	return math.Pow(2, float64(i-1)), math.Pow(2, float64(i))
}

// Registry holds named metrics. Lookups create on first use, so the
// instrumented code never registers anything up front.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Reset zeroes every metric in place: existing Counter/Gauge/Histogram
// handles held by instrumented code stay valid.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.mu.Lock()
		g.v, g.set = 0, false
		g.mu.Unlock()
	}
	for _, h := range r.hists {
		h.mu.Lock()
		h.counts = [histBuckets]int64{}
		h.n, h.sum, h.min, h.max = 0, 0, 0, 0
		h.mu.Unlock()
	}
}

// WriteText dumps every metric, one line each, sorted by name:
//
//	counter tune.trials 384
//	gauge   tune.best_ms 0.1234
//	hist    exec.node_wall_ns count=66 sum=1.2e+07 min=100 max=5e+06 p50=8192 p99=4.1e+06
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	lines := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for name, c := range r.counters {
		lines = append(lines, fmt.Sprintf("counter %s %d", name, c.Value()))
	}
	for name, g := range r.gauges {
		if v, ok := g.Value(); ok {
			lines = append(lines, fmt.Sprintf("gauge   %s %g", name, v))
		}
	}
	for name, h := range r.hists {
		lines = append(lines, fmt.Sprintf(
			"hist    %s count=%d sum=%g min=%g max=%g p50=%g p99=%g",
			name, h.Count(), h.Sum(), h.minV(), h.maxV(),
			h.Quantile(0.50), h.Quantile(0.99)))
	}
	r.mu.Unlock()
	sort.Slice(lines, func(i, j int) bool {
		return lines[i][8:] < lines[j][8:] // order by name, not metric kind
	})
	_, err := io.WriteString(w, strings.Join(lines, "\n")+"\n")
	return err
}

func (h *Histogram) minV() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.min
}

func (h *Histogram) maxV() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// DumpMetrics renders the default registry as text.
func DumpMetrics() string {
	var b strings.Builder
	DefaultRegistry.WriteText(&b)
	return b.String()
}
