package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"sort"
	"sync"
)

// Live telemetry endpoints: an opt-in HTTP listener exposing the default
// registry as Prometheus text (/metrics), liveness wired to registered
// health sources such as breaker and pool state (/healthz), compiled-plan
// metadata (/debug/plans), recent sampled request traces
// (/debug/requests, ?format=chrome for a per-lane Chrome trace), the
// rolling profiler table (/debug/profile), and the default tracer's spans
// (/debug/trace). Everything is pull-based: handlers snapshot shared
// state under the same locks the hot path uses, so scraping a live
// serving process is safe.

// HealthStatus is one health source's report.
type HealthStatus struct {
	OK     bool   `json:"ok"`
	Detail string `json:"detail,omitempty"`
}

var (
	healthMu     sync.Mutex
	healthChecks = map[string]func() HealthStatus{}

	debugMu      sync.Mutex
	debugSources = map[string]func() any{}
)

// RegisterHealth installs (or replaces) a named health source consulted
// by /healthz. The runtime registers breaker and session-pool state here.
func RegisterHealth(name string, fn func() HealthStatus) {
	healthMu.Lock()
	healthChecks[name] = fn
	healthMu.Unlock()
}

// UnregisterHealth removes a health source.
func UnregisterHealth(name string) {
	healthMu.Lock()
	delete(healthChecks, name)
	healthMu.Unlock()
}

// Health runs every registered source and reports overall liveness.
func Health() (ok bool, checks map[string]HealthStatus) {
	healthMu.Lock()
	fns := make(map[string]func() HealthStatus, len(healthChecks))
	for name, fn := range healthChecks {
		fns[name] = fn
	}
	healthMu.Unlock()
	ok = true
	checks = make(map[string]HealthStatus, len(fns))
	for name, fn := range fns {
		st := fn()
		checks[name] = st
		ok = ok && st.OK
	}
	return ok, checks
}

// RegisterDebug installs (or replaces) a named debug source served as
// JSON at /debug/<name>. The runtime registers "plans" (compiled-plan
// metadata) here.
func RegisterDebug(name string, fn func() any) {
	debugMu.Lock()
	debugSources[name] = fn
	debugMu.Unlock()
}

// UnregisterDebug removes a debug source (a closed Fleet retires its
// "fleet" snapshot so a later fleet can register fresh state).
func UnregisterDebug(name string) {
	debugMu.Lock()
	delete(debugSources, name)
	debugMu.Unlock()
}

func debugSource(name string) (func() any, bool) {
	debugMu.Lock()
	defer debugMu.Unlock()
	fn, ok := debugSources[name]
	return fn, ok
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// Handler returns the telemetry endpoint mux backed by the package
// defaults (registry, SLO monitor, profiler, request tracker, tracer).
func Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		DefaultSLO.Publish() // refresh slo.* gauges before exposition
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		DefaultRegistry.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		ok, checks := Health()
		status := http.StatusOK
		if !ok {
			status = http.StatusServiceUnavailable
		}
		writeJSON(w, status, struct {
			OK     bool                    `json:"ok"`
			Checks map[string]HealthStatus `json:"checks"`
		}{ok, checks})
	})
	mux.HandleFunc("/debug/requests", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("format") == "chrome" {
			w.Header().Set("Content-Type", "application/json")
			DefaultRequests.WriteChromeTrace(w)
			return
		}
		writeJSON(w, http.StatusOK, DefaultRequests.Snapshot())
	})
	mux.HandleFunc("/debug/profile", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, http.StatusOK, Profile())
	})
	mux.HandleFunc("/debug/slo", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, http.StatusOK, DefaultSLO.Publish())
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		DefaultTracer.WriteChromeTrace(w)
	})
	mux.HandleFunc("/debug/", func(w http.ResponseWriter, req *http.Request) {
		name := req.URL.Path[len("/debug/"):]
		fn, ok := debugSource(name)
		if !ok {
			debugMu.Lock()
			names := make([]string, 0, len(debugSources))
			for n := range debugSources {
				names = append(names, n)
			}
			debugMu.Unlock()
			sort.Strings(names)
			writeJSON(w, http.StatusNotFound, struct {
				Error   string   `json:"error"`
				Sources []string `json:"sources"`
			}{"unknown debug source " + name, names})
			return
		}
		writeJSON(w, http.StatusOK, fn())
	})
	return mux
}

// Server is a running telemetry listener; Close shuts it down.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts the telemetry endpoints on addr (e.g. "localhost:9090";
// ":0" picks a free port — read it back with Addr). The listener runs on
// a background goroutine until Close.
func Serve(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: Handler()}
	go srv.Serve(ln)
	return &Server{ln: ln, srv: srv}, nil
}

// Addr is the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the listener down.
func (s *Server) Close() error { return s.srv.Close() }
