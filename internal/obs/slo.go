package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// SLO monitoring: rolling per-model latency and error-rate windows with a
// burn-rate alarm. Record classifies every finished request; Stats folds
// the live window into p50/p99 latency, bad-request rate, and the burn
// rate (bad rate over the configured error budget). Publish mirrors the
// stats into registry gauges (slo.p99_ms.<model>, slo.burn_rate.<model>,
// slo.alarm.<model>) so they reach the /metrics endpoint.

// Outcome classifies one finished request for the SLO monitor.
type Outcome int

const (
	// OutcomeOK: the request completed successfully.
	OutcomeOK Outcome = iota
	// OutcomeError: the request failed in execution.
	OutcomeError
	// OutcomeShed: admission control shed the request because the system
	// was overloaded (true ErrOverloaded). Sheds burn error budget but
	// record no latency.
	OutcomeShed
	// OutcomeDeadline: the request's own deadline expired (or its context
	// was cancelled) before it reached a session. Deadline burn is the
	// caller's latency budget, not the server shedding — tracked apart
	// from sheds so the shed rate reflects real overload.
	OutcomeDeadline
)

// SLOOptions configures an SLOMonitor; the zero value selects the
// defaults noted per field.
type SLOOptions struct {
	// Window is the rolling horizon (default 60s).
	Window time.Duration
	// Buckets is the ring granularity inside the window (default 12).
	Buckets int
	// Objective is the per-request latency objective; a slower success
	// counts as a bad request (default 0: errors and sheds only).
	Objective time.Duration
	// ErrorBudget is the tolerated bad-request fraction (default 0.01).
	ErrorBudget float64
	// BurnAlarm raises the alarm when the burn rate — bad rate over
	// budget — exceeds it (default 2).
	BurnAlarm float64
	// Registry receives the published gauges (default DefaultRegistry).
	Registry *Registry
}

// sloBucket is one time slice of the rolling window.
type sloBucket struct {
	id     int64 // bucket epoch; a stale slot is reset when touched or read
	counts [histBuckets]int64
	n      int64 // latency samples
	sumNs  float64
	minNs  float64
	maxNs  float64
	total    int64 // all requests, including sheds
	errs     int64
	shed     int64
	deadline int64
	bad      int64
}

type sloModel struct {
	buckets []sloBucket
	gP50    *Gauge
	gP99    *Gauge
	gBad    *Gauge
	gBurn   *Gauge
	gAlarm  *Gauge
}

// SLOMonitor tracks rolling serving health per model. Safe for concurrent
// use; nil-safe.
type SLOMonitor struct {
	opts      SLOOptions
	bucketDur time.Duration

	mu     sync.Mutex
	models map[string]*sloModel
}

// NewSLOMonitor creates a monitor; zero options select the defaults.
func NewSLOMonitor(opts SLOOptions) *SLOMonitor {
	if opts.Window <= 0 {
		opts.Window = 60 * time.Second
	}
	if opts.Buckets <= 0 {
		opts.Buckets = 12
	}
	if opts.ErrorBudget <= 0 {
		opts.ErrorBudget = 0.01
	}
	if opts.BurnAlarm <= 0 {
		opts.BurnAlarm = 2
	}
	if opts.Registry == nil {
		opts.Registry = DefaultRegistry
	}
	return &SLOMonitor{
		opts:      opts,
		bucketDur: opts.Window / time.Duration(opts.Buckets),
		models:    map[string]*sloModel{},
	}
}

func (m *SLOMonitor) modelLocked(model string) *sloModel {
	sm, ok := m.models[model]
	if !ok {
		r := m.opts.Registry
		sm = &sloModel{
			buckets: make([]sloBucket, m.opts.Buckets),
			gP50:    r.Gauge("slo.p50_ms." + model),
			gP99:    r.Gauge("slo.p99_ms." + model),
			gBad:    r.Gauge("slo.bad_rate." + model),
			gBurn:   r.Gauge("slo.burn_rate." + model),
			gAlarm:  r.Gauge("slo.alarm." + model),
		}
		m.models[model] = sm
	}
	return sm
}

// Record classifies one finished request into the rolling window.
func (m *SLOMonitor) Record(model string, lat time.Duration, oc Outcome) {
	if m == nil {
		return
	}
	now := time.Now()
	id := now.UnixNano() / int64(m.bucketDur)
	m.mu.Lock()
	sm := m.modelLocked(model)
	b := &sm.buckets[id%int64(len(sm.buckets))]
	if b.id != id {
		*b = sloBucket{id: id}
	}
	b.total++
	bad := false
	switch oc {
	case OutcomeError:
		b.errs++
		bad = true
	case OutcomeShed:
		b.shed++
		bad = true
	case OutcomeDeadline:
		b.deadline++
		bad = true
	default:
		ns := float64(lat.Nanoseconds())
		b.counts[bucketFor(ns)]++
		if b.n == 0 || ns < b.minNs {
			b.minNs = ns
		}
		if b.n == 0 || ns > b.maxNs {
			b.maxNs = ns
		}
		b.n++
		b.sumNs += ns
		bad = m.opts.Objective > 0 && lat > m.opts.Objective
	}
	if bad {
		b.bad++
	}
	m.mu.Unlock()
}

// SLOStats is the rolling view of one model's serving health.
type SLOStats struct {
	Model    string        `json:"model"`
	Window   time.Duration `json:"window_ns"`
	Requests int64         `json:"requests"`
	Errors   int64         `json:"errors"`
	Shed     int64         `json:"shed"`
	Deadline int64         `json:"deadline"`
	P50      time.Duration `json:"p50_ns"`
	P99      time.Duration `json:"p99_ns"`
	MeanMs   float64       `json:"mean_ms"`
	BadRate  float64       `json:"bad_rate"`
	BurnRate float64       `json:"burn_rate"`
	Alarm    bool          `json:"alarm"`
}

// Stats folds the live window for one model.
func (m *SLOMonitor) Stats(model string) SLOStats {
	if m == nil {
		return SLOStats{Model: model}
	}
	now := time.Now()
	minID := now.UnixNano()/int64(m.bucketDur) - int64(m.opts.Buckets) + 1
	m.mu.Lock()
	defer m.mu.Unlock()
	sm, ok := m.models[model]
	if !ok {
		return SLOStats{Model: model, Window: m.opts.Window}
	}
	return m.statsLocked(model, sm, minID)
}

func (m *SLOMonitor) statsLocked(model string, sm *sloModel, minID int64) SLOStats {
	// Merge live buckets into one histogram and fold quantiles off it.
	var h Histogram
	st := SLOStats{Model: model, Window: m.opts.Window}
	var bad int64
	for i := range sm.buckets {
		b := &sm.buckets[i]
		if b.id < minID {
			continue
		}
		st.Requests += b.total
		st.Errors += b.errs
		st.Shed += b.shed
		st.Deadline += b.deadline
		bad += b.bad
		for j, c := range b.counts {
			h.counts[j] += c
		}
		if b.n > 0 {
			if h.n == 0 || b.minNs < h.min {
				h.min = b.minNs
			}
			if h.n == 0 || b.maxNs > h.max {
				h.max = b.maxNs
			}
			h.n += b.n
			h.sum += b.sumNs
		}
	}
	if h.n > 0 {
		st.P50 = time.Duration(h.quantileLocked(0.50))
		st.P99 = time.Duration(h.quantileLocked(0.99))
		st.MeanMs = h.sum / float64(h.n) / 1e6
	}
	if st.Requests > 0 {
		st.BadRate = float64(bad) / float64(st.Requests)
		st.BurnRate = st.BadRate / m.opts.ErrorBudget
		st.Alarm = st.BurnRate > m.opts.BurnAlarm
	}
	return st
}

// Models lists the models the monitor has seen, sorted.
func (m *SLOMonitor) Models() []string {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.models))
	for name := range m.models {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Publish refreshes the registry gauges for every tracked model and
// returns the stats, sorted by model.
func (m *SLOMonitor) Publish() []SLOStats {
	if m == nil {
		return nil
	}
	now := time.Now()
	minID := now.UnixNano()/int64(m.bucketDur) - int64(m.opts.Buckets) + 1
	m.mu.Lock()
	names := make([]string, 0, len(m.models))
	for name := range m.models {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]SLOStats, 0, len(names))
	for _, name := range names {
		sm := m.models[name]
		st := m.statsLocked(name, sm, minID)
		sm.gP50.Set(float64(st.P50.Nanoseconds()) / 1e6)
		sm.gP99.Set(float64(st.P99.Nanoseconds()) / 1e6)
		sm.gBad.Set(st.BadRate)
		sm.gBurn.Set(st.BurnRate)
		alarm := 0.0
		if st.Alarm {
			alarm = 1
		}
		sm.gAlarm.Set(alarm)
		out = append(out, st)
	}
	m.mu.Unlock()
	return out
}

// FormatSLO renders stats as the unigpu-bench -faults summary lines.
func FormatSLO(stats []SLOStats) string {
	var b strings.Builder
	for _, st := range stats {
		fmt.Fprintf(&b, "slo %s: %d req (%d err, %d shed, %d deadline) p50 %v p99 %v bad %.2f%% burn %.2fx alarm=%v\n",
			st.Model, st.Requests, st.Errors, st.Shed, st.Deadline,
			st.P50.Round(time.Microsecond), st.P99.Round(time.Microsecond),
			100*st.BadRate, st.BurnRate, st.Alarm)
	}
	return b.String()
}

// DefaultSLO is the monitor serving pools record into by default.
var DefaultSLO = NewSLOMonitor(SLOOptions{})
