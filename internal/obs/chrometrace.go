package obs

import (
	"encoding/json"
	"io"
	"os"
	"sort"
	"strconv"
)

// chromeEvent is one entry of the Chrome trace-event format's traceEvents
// array (complete-duration events, ph="X"); timestamps and durations are
// microseconds. The file loads in chrome://tracing and Perfetto.
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// LaneAttr is the reserved span attribute naming the dispatch lane a span
// ran on (e.g. "gpu/0", "cpu/2"). The Chrome exporter maps each distinct
// lane to its own tid so concurrent GPU command queues and CPU workers
// render as separate tracks instead of stacking on one row.
const LaneAttr = "lane"

// WriteChromeTrace exports the tracer's finished spans as Chrome
// trace-event JSON. Span identity and parentage are preserved in each
// event's args ("span_id", "parent_id") so tools and tests can recover the
// exact hierarchy; viewers additionally nest events by time containment.
// Spans carrying the LaneAttr attribute land on per-lane tids, announced
// with "thread_name" metadata events; traces without lanes keep the single
// tid 1 and emit no metadata.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	t.mu.Lock()
	epoch := t.epoch
	recs := make([]SpanRecord, len(t.spans))
	copy(recs, t.spans)
	t.mu.Unlock()

	// Stable visual order: by start time, ties broken by id (parents were
	// started before their children).
	sort.Slice(recs, func(i, j int) bool {
		if !recs[i].Start.Equal(recs[j].Start) {
			return recs[i].Start.Before(recs[j].Start)
		}
		return recs[i].ID < recs[j].ID
	})

	// Assign tids: 1 is the unlaned main track; each distinct lane gets the
	// next tid in sorted-name order so the mapping is deterministic.
	laneOf := func(r SpanRecord) string {
		for _, a := range r.Attrs {
			if a.Key == LaneAttr {
				return a.Value
			}
		}
		return ""
	}
	laneSet := map[string]bool{}
	for _, r := range recs {
		if lane := laneOf(r); lane != "" {
			laneSet[lane] = true
		}
	}
	lanes := make([]string, 0, len(laneSet))
	for lane := range laneSet {
		lanes = append(lanes, lane)
	}
	sort.Strings(lanes)
	laneTid := make(map[string]int, len(lanes))
	for i, lane := range lanes {
		laneTid[lane] = i + 2
	}

	out := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: make([]chromeEvent, 0, len(recs)+len(lanes))}
	if len(lanes) > 0 {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: 1,
			Args: map[string]string{"name": "main"},
		})
		for _, lane := range lanes {
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: 1, Tid: laneTid[lane],
				Args: map[string]string{"name": lane},
			})
		}
	}
	for _, r := range recs {
		tid := 1
		if lane := laneOf(r); lane != "" {
			tid = laneTid[lane]
		}
		ev := chromeEvent{
			Name: r.Name,
			Ph:   "X",
			Ts:   float64(r.Start.Sub(epoch).Nanoseconds()) / 1e3,
			Dur:  float64(r.Duration.Nanoseconds()) / 1e3,
			Pid:  1,
			Tid:  tid,
			Args: map[string]string{
				"span_id":   strconv.FormatInt(r.ID, 10),
				"parent_id": strconv.FormatInt(r.ParentID, 10),
			},
		}
		for _, a := range r.Attrs {
			ev.Args[a.Key] = a.Value
		}
		out.TraceEvents = append(out.TraceEvents, ev)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// WriteChromeTrace exports the default tracer.
func WriteChromeTrace(w io.Writer) error { return DefaultTracer.WriteChromeTrace(w) }

// WriteChromeTraceFile writes the default tracer's trace to a file; the
// CLIs' -trace flag lands here.
func WriteChromeTraceFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := DefaultTracer.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
