package runtime_test

import (
	"context"
	"errors"
	"fmt"
	"os"
	goruntime "runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"unigpu/internal/graph"
	"unigpu/internal/models"
	"unigpu/internal/obs"
	"unigpu/internal/runtime"
	"unigpu/internal/sim"
	"unigpu/internal/tensor"
)

// poisonOp panics on execution after `healthy` calls — the poisoned
// operator of the panic-recovery regression tests.
type poisonOp struct{}

func (poisonOp) Kind() string                                { return "poison" }
func (poisonOp) InferShape(ins []tensor.Shape) tensor.Shape  { return ins[0].Clone() }
func (poisonOp) GPUFriendly() bool                           { return true }
func (poisonOp) Execute(ins []*tensor.Tensor) *tensor.Tensor { panic("poisoned operator") }

// buildPoisonedGraph places a panicking operator mid-graph.
func buildPoisonedGraph() (*graph.Graph, map[string]*tensor.Tensor) {
	g := graph.New()
	in := g.Input("data", 1, 4, 4, 4)
	a := g.Apply("a", &graph.SigmoidOp{}, in)
	p := g.Apply("poisoned", poisonOp{}, a)
	b := g.Apply("b", &graph.FlattenOp{}, p)
	g.SetOutputs(b)
	feed := tensor.New(1, 4, 4, 4)
	feed.FillRandom(5)
	return g, map[string]*tensor.Tensor{"data": feed}
}

// faultSessionOpts keeps fault-path tests fast: tight backoff, default
// retries.
func faultSessionOpts(inj *sim.FaultInjector) runtime.SessionOptions {
	return runtime.SessionOptions{Faults: inj, RetryBackoff: 10 * time.Microsecond}
}

// TestPanicRecoverySerial: a poisoned operator panic in the serial Run
// surfaces as a structured *NodeError (node, device, stack) instead of
// crashing the process, and the session stays reusable.
func TestPanicRecoverySerial(t *testing.T) {
	g, feeds := buildPoisonedGraph()
	plan, err := runtime.NewPlan(g)
	if err != nil {
		t.Fatal(err)
	}
	s := plan.NewSession()
	_, err = s.Run(feeds)
	if err == nil {
		t.Fatal("poisoned run must error")
	}
	var ne *runtime.NodeError
	if !errors.As(err, &ne) {
		t.Fatalf("error is %T, want *runtime.NodeError: %v", err, err)
	}
	if ne.Node != "poisoned" {
		t.Fatalf("error names node %q, want \"poisoned\"", ne.Node)
	}
	if !strings.Contains(ne.Cause.Error(), "poisoned operator") {
		t.Fatalf("cause %v does not carry the panic value", ne.Cause)
	}
	if len(ne.Stack) == 0 || !strings.Contains(string(ne.Stack), "goroutine") {
		t.Fatal("NodeError must capture debug.Stack()")
	}
	// The session survives the panic for subsequent (failing) runs.
	if _, err := s.Run(feeds); err == nil {
		t.Fatal("second poisoned run must also error, not crash")
	}
}

// TestPanicRecoveryConcurrent: a worker-lane panic converts to an error
// without deadlocking sibling lanes or leaking goroutines.
func TestPanicRecoveryConcurrent(t *testing.T) {
	g, feeds := buildPoisonedGraph()
	plan, err := runtime.NewPlan(g)
	if err != nil {
		t.Fatal(err)
	}
	baseline := goruntime.NumGoroutine()
	s := plan.NewSessionWith(runtime.SessionOptions{Workers: 4, GPUStreams: 2})
	for i := 0; i < 5; i++ {
		_, err = s.Run(feeds)
		var ne *runtime.NodeError
		if !errors.As(err, &ne) || ne.Node != "poisoned" {
			t.Fatalf("run %d: got %v, want *NodeError on \"poisoned\"", i, err)
		}
	}
	assertNoGoroutineLeak(t, baseline)
}

// TestTransientFaultRetry: a scripted transient kernel fault is retried
// with backoff and the run succeeds bit-identically, on the GPU, without
// CPU re-execution.
func TestTransientFaultRetry(t *testing.T) {
	g, feeds := buildSerialOpsGraph()
	want, err := executeReference(g, feeds)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := runtime.NewPlan(g)
	if err != nil {
		t.Fatal(err)
	}
	retries0 := obs.DefaultRegistry.Counter("fault.retries").Value()
	reexec0 := obs.DefaultRegistry.Counter("fault.cpu_reexec").Value()
	inj := sim.NewFaultInjector(sim.FaultConfig{}).
		Script(sim.FaultTransientKernel, sim.FaultMemPressure)
	s := plan.NewSessionWith(faultSessionOpts(inj))
	got, err := s.Run(feeds)
	if err != nil {
		t.Fatal(err)
	}
	tensorsEqual(t, "transient-retry", got, want)
	if d := obs.DefaultRegistry.Counter("fault.retries").Value() - retries0; d < 2 {
		t.Fatalf("fault.retries grew by %d, want >= 2", d)
	}
	if d := obs.DefaultRegistry.Counter("fault.cpu_reexec").Value() - reexec0; d != 0 {
		t.Fatalf("transient faults must not re-execute on CPU, counter grew by %d", d)
	}
}

// TestDeviceLossQuarantine: device loss fails GPU dispatches permanently;
// nodes re-execute on the CPU lane, the circuit breaker opens after the
// failure threshold, and outputs stay bit-identical.
func TestDeviceLossQuarantine(t *testing.T) {
	g, feeds := buildSerialOpsGraph()
	want, err := executeReference(g, feeds)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := runtime.NewPlan(g)
	if err != nil {
		t.Fatal(err)
	}
	reexec0 := obs.DefaultRegistry.Counter("fault.cpu_reexec").Value()
	inj := sim.NewFaultInjector(sim.FaultConfig{}).Script(sim.FaultDeviceLost)
	br := runtime.NewBreaker(runtime.BreakerOptions{Threshold: 2, Probation: time.Hour})
	opts := faultSessionOpts(inj)
	opts.Breaker = br
	s := plan.NewSessionWith(opts)
	got, err := s.Run(feeds)
	if err != nil {
		t.Fatal(err)
	}
	tensorsEqual(t, "device-loss", got, want)
	if br.State() != runtime.BreakerOpen {
		t.Fatalf("breaker %v, want open after device loss", br.State())
	}
	reexec := obs.DefaultRegistry.Counter("fault.cpu_reexec").Value() - reexec0
	if int(reexec) != plan.NumNodes() {
		t.Fatalf("every node is GPU-placed and the device is lost: cpu_reexec=%d, want %d",
			reexec, plan.NumNodes())
	}
	// Quarantined: subsequent runs skip the dispatch gate entirely and
	// still match.
	got, err = s.Run(feeds)
	if err != nil {
		t.Fatal(err)
	}
	tensorsEqual(t, "quarantined", got, want)
	if inj.Injected(sim.FaultDeviceLost) != 1 {
		t.Fatalf("quarantine must stop dispatch attempts, injector saw %d device-lost probes",
			inj.Injected(sim.FaultDeviceLost))
	}
}

// TestBreakerHalfOpenRecovery: after probation the breaker lets one probe
// through; a healed device closes it and traffic returns to the GPU.
func TestBreakerHalfOpenRecovery(t *testing.T) {
	g, feeds := buildSerialOpsGraph()
	plan, err := runtime.NewPlan(g)
	if err != nil {
		t.Fatal(err)
	}
	want, err := executeReference(g, feeds)
	if err != nil {
		t.Fatal(err)
	}
	inj := sim.NewFaultInjector(sim.FaultConfig{}).Script(sim.FaultDeviceLost)
	br := runtime.NewBreaker(runtime.BreakerOptions{Threshold: 1, Probation: 20 * time.Millisecond})
	opts := faultSessionOpts(inj)
	opts.Breaker = br
	s := plan.NewSessionWith(opts)
	if _, err := s.Run(feeds); err != nil {
		t.Fatal(err)
	}
	if br.State() != runtime.BreakerOpen {
		t.Fatalf("breaker %v, want open", br.State())
	}
	inj.Heal()
	time.Sleep(25 * time.Millisecond)
	dispatches0 := inj.Total()
	got, err := s.Run(feeds)
	if err != nil {
		t.Fatal(err)
	}
	tensorsEqual(t, "half-open recovery", got, want)
	if br.State() != runtime.BreakerClosed {
		t.Fatalf("breaker %v after healthy probe, want closed", br.State())
	}
	if inj.Total() != dispatches0 {
		t.Fatalf("healed device must not fault: %d new faults", inj.Total()-dispatches0)
	}
}

// TestBreakerReopensOnFailedProbe: a probe against a still-lost device
// re-opens the breaker immediately.
func TestBreakerReopensOnFailedProbe(t *testing.T) {
	g, feeds := buildSerialOpsGraph()
	plan, err := runtime.NewPlan(g)
	if err != nil {
		t.Fatal(err)
	}
	inj := sim.NewFaultInjector(sim.FaultConfig{}).Script(sim.FaultDeviceLost)
	br := runtime.NewBreaker(runtime.BreakerOptions{Threshold: 1, Probation: time.Millisecond})
	opts := faultSessionOpts(inj)
	opts.Breaker = br
	s := plan.NewSessionWith(opts)
	if _, err := s.Run(feeds); err != nil {
		t.Fatal(err)
	}
	time.Sleep(2 * time.Millisecond)
	if _, err := s.Run(feeds); err != nil { // probe fails, breaker re-opens
		t.Fatal(err)
	}
	if br.State() != runtime.BreakerOpen {
		t.Fatalf("breaker %v after failed probe, want open", br.State())
	}
}

// TestGoldenZooUnderFaults is the acceptance criterion: with every fault
// kind injected, whole-zoo outputs stay bit-identical to the fault-free
// reference — CPU re-execution uses the same kernels. Serial and
// concurrent sessions both degrade correctly.
func TestGoldenZooUnderFaults(t *testing.T) {
	var seed int64 = 11
	for name, size := range goldenModelCases() {
		t.Run(name, func(t *testing.T) {
			m := models.Build(name, size, false)
			graph.Optimize(m.Graph)
			graph.PlaceDevices(m.Graph, graph.PlacementOptions{})
			feed := tensor.New(1, 3, size, size)
			feed.FillRandom(7)
			feeds := map[string]*tensor.Tensor{"data": feed}
			want, err := executeReference(m.Graph, feeds)
			if err != nil {
				t.Fatal(err)
			}
			plan, err := runtime.NewPlan(m.Graph)
			if err != nil {
				t.Fatal(err)
			}
			for _, conc := range []bool{false, true} {
				seed++
				inj := sim.NewFaultInjector(sim.FaultConfig{
					Seed: seed, Rate: 0.4, HangLatency: 50 * time.Microsecond,
				})
				opts := faultSessionOpts(inj)
				if conc {
					opts.Workers, opts.GPUStreams = 3, 2
				}
				s := plan.NewSessionWith(opts)
				for run := 0; run < 2; run++ {
					got, err := s.Run(feeds)
					if err != nil {
						t.Fatalf("conc=%v run %d: %v", conc, run, err)
					}
					tensorsEqual(t, fmt.Sprintf("faulted conc=%v run %d", conc, run), got, want)
				}
			}
		})
	}
}

// TestEveryFaultKindBitIdentical exercises each kind in isolation through
// the scripted injector and requires bit-identity.
func TestEveryFaultKindBitIdentical(t *testing.T) {
	g, feeds := buildSerialOpsGraph()
	want, err := executeReference(g, feeds)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := runtime.NewPlan(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range sim.AllFaultKinds {
		t.Run(kind.String(), func(t *testing.T) {
			inj := sim.NewFaultInjector(sim.FaultConfig{HangLatency: 50 * time.Microsecond}).
				Script(kind, kind, kind)
			s := plan.NewSessionWith(faultSessionOpts(inj))
			got, err := s.Run(feeds)
			if err != nil {
				t.Fatal(err)
			}
			tensorsEqual(t, kind.String(), got, want)
			if inj.Injected(kind) == 0 {
				t.Fatalf("fault kind %s was never injected", kind)
			}
		})
	}
}

// TestRunContextCancel: cancellation during an injected queue hang returns
// context.Canceled promptly (well before the hang latency) in both serial
// and concurrent sessions, with no goroutine leak, and the session stays
// reusable.
func TestRunContextCancel(t *testing.T) {
	g, feeds := buildSerialOpsGraph()
	want, err := executeReference(g, feeds)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := runtime.NewPlan(g)
	if err != nil {
		t.Fatal(err)
	}
	baseline := goruntime.NumGoroutine()
	for _, conc := range []bool{false, true} {
		inj := sim.NewFaultInjector(sim.FaultConfig{HangLatency: 30 * time.Second}).
			Script(sim.FaultQueueHang)
		opts := faultSessionOpts(inj)
		if conc {
			opts.Workers, opts.GPUStreams = 3, 2
		}
		s := plan.NewSessionWith(opts)
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(20 * time.Millisecond)
			cancel()
		}()
		start := time.Now()
		_, err := s.RunContext(ctx, feeds)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("conc=%v: got %v, want context.Canceled", conc, err)
		}
		if elapsed := time.Since(start); elapsed > 2*time.Second {
			t.Fatalf("conc=%v: cancellation took %v", conc, elapsed)
		}
		// The cancelled session is reusable and still correct.
		got, err := s.Run(feeds)
		if err != nil {
			t.Fatalf("conc=%v: session must survive cancellation: %v", conc, err)
		}
		tensorsEqual(t, fmt.Sprintf("post-cancel conc=%v", conc), got, want)
	}
	assertNoGoroutineLeak(t, baseline)
}

// TestRunContextDeadline: an already-expired deadline fails fast with
// DeadlineExceeded before any node runs.
func TestRunContextDeadline(t *testing.T) {
	g, feeds := buildSerialOpsGraph()
	plan, err := runtime.NewPlan(g)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := plan.NewSession().RunContext(ctx, feeds); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}
}

// TestConcurrentFaultNoDeadlock (run with -race): mid-run faults under
// GPUStreams>1 neither deadlock nor leak goroutines, across many runs with
// randomized injection.
func TestConcurrentFaultNoDeadlock(t *testing.T) {
	g, feeds := buildSerialOpsGraph()
	want, err := executeReference(g, feeds)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := runtime.NewPlan(g)
	if err != nil {
		t.Fatal(err)
	}
	baseline := goruntime.NumGoroutine()
	for run := 0; run < 30; run++ {
		inj := sim.NewFaultInjector(sim.FaultConfig{
			Seed: int64(run), Rate: 0.5, HangLatency: 20 * time.Microsecond,
		})
		opts := faultSessionOpts(inj)
		opts.Workers, opts.GPUStreams = 1+run%4, 2+run%3
		s := plan.NewSessionWith(opts)
		got, err := s.Run(feeds)
		if err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		tensorsEqual(t, fmt.Sprintf("run %d", run), got, want)
	}
	assertNoGoroutineLeak(t, baseline)
}

// TestFaultSoak is the CI soak job (make soak): N seeded runs with random
// faults of every kind over a real zoo model, serial and concurrent,
// every output bit-identical to the fault-free reference. N defaults to a
// quick 25 and is raised to 500 by UNIGPU_SOAK_RUNS in the soak job.
func TestFaultSoak(t *testing.T) {
	runs := 25
	if v := os.Getenv("UNIGPU_SOAK_RUNS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			t.Fatalf("UNIGPU_SOAK_RUNS=%q: %v", v, err)
		}
		runs = n
	}
	size := 48
	m := models.Build("SqueezeNet1.0", size, false)
	graph.Optimize(m.Graph)
	graph.PlaceDevices(m.Graph, graph.PlacementOptions{})
	feed := tensor.New(1, 3, size, size)
	feed.FillRandom(13)
	feeds := map[string]*tensor.Tensor{"data": feed}
	want, err := executeReference(m.Graph, feeds)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := runtime.NewPlan(m.Graph)
	if err != nil {
		t.Fatal(err)
	}
	baseline := goruntime.NumGoroutine()
	var injected [4]int64
	for run := 0; run < runs; run++ {
		inj := sim.NewFaultInjector(sim.FaultConfig{
			Seed: int64(run), Rate: 0.3, HangLatency: 10 * time.Microsecond,
		})
		opts := faultSessionOpts(inj)
		if run%2 == 1 {
			opts.Workers, opts.GPUStreams = 1+run%3, 1+run%4
		}
		s := plan.NewSessionWith(opts)
		got, err := s.Run(feeds)
		if err != nil {
			t.Fatalf("soak run %d: %v", run, err)
		}
		tensorsEqual(t, fmt.Sprintf("soak run %d", run), got, want)
		for k, kind := range sim.AllFaultKinds {
			injected[k] += inj.Injected(kind)
		}
	}
	for k, kind := range sim.AllFaultKinds {
		if injected[k] == 0 {
			t.Errorf("soak never injected %s", kind)
		}
	}
	assertNoGoroutineLeak(t, baseline)
}

// TestFeedValidation: mismatched feeds fail fast with errors naming the
// input, the expectation, and what was fed.
func TestFeedValidation(t *testing.T) {
	g, _ := buildSerialOpsGraph()
	plan, err := runtime.NewPlan(g)
	if err != nil {
		t.Fatal(err)
	}
	s := plan.NewSession()
	cases := []struct {
		name  string
		feeds map[string]*tensor.Tensor
		want  []string
	}{
		{"missing", map[string]*tensor.Tensor{}, []string{`"data"`, "not fed"}},
		{"nil", map[string]*tensor.Tensor{"data": nil}, []string{`"data"`, "nil tensor", "(1,8,8,8)"}},
		{"shape", map[string]*tensor.Tensor{"data": tensor.New(1, 8, 8)},
			[]string{`"data"`, "(1,8,8)", "(1,8,8,8)"}},
	}
	for _, tc := range cases {
		_, err := s.Run(tc.feeds)
		if err == nil {
			t.Fatalf("%s: want error", tc.name)
		}
		for _, frag := range tc.want {
			if !strings.Contains(err.Error(), frag) {
				t.Fatalf("%s: error %q missing %q", tc.name, err, frag)
			}
		}
	}
}

// assertNoGoroutineLeak polls until the goroutine count returns to the
// baseline (workers park asynchronously after Run returns).
func assertNoGoroutineLeak(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		n := goruntime.NumGoroutine()
		if n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: %d > baseline %d\n%s",
				n, baseline, buf[:goruntime.Stack(buf, true)])
		}
		time.Sleep(5 * time.Millisecond)
	}
}
