package runtime_test

import (
	"context"
	"errors"
	"fmt"
	"os"
	goruntime "runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"unigpu/internal/graph"
	"unigpu/internal/models"
	"unigpu/internal/ops"
	"unigpu/internal/runtime"
	"unigpu/internal/sim"
	"unigpu/internal/tensor"
)

// zooPlanBuilder returns a PlanFor for one zoo model: rebuild at batch n,
// same graph passes as the per-request plan. Weight seeding is batch-
// independent, so every batch size computes the identical function per row.
func zooPlanBuilder(name string, size int) func(n int) (*runtime.Plan, error) {
	return func(n int) (*runtime.Plan, error) {
		m := models.BuildN(name, size, n, false)
		graph.Optimize(m.Graph)
		graph.PlaceDevices(m.Graph, graph.PlacementOptions{})
		return runtime.NewPlan(m.Graph)
	}
}

// TestBatchedBitIdentityZoo: every zoo model served through the batching
// front-end must return outputs bit-identical to the frozen reference
// executor run per request — gather, the batch-N plan, and scatter must
// never change a single ULP of any request's result.
func TestBatchedBitIdentityZoo(t *testing.T) {
	const clients = 3
	for name, size := range goldenModelCases() {
		t.Run(name, func(t *testing.T) {
			build := zooPlanBuilder(name, size)

			// Per-request references on an independently built graph.
			mref := models.Build(name, size, false)
			graph.Optimize(mref.Graph)
			graph.PlaceDevices(mref.Graph, graph.PlacementOptions{})
			inputs := make([]map[string]*tensor.Tensor, clients)
			want := make([][]*tensor.Tensor, clients)
			for i := 0; i < clients; i++ {
				in := tensor.New(1, 3, size, size)
				in.FillRandom(int64(100 + i))
				inputs[i] = map[string]*tensor.Tensor{"data": in}
				w, err := executeReference(mref.Graph, inputs[i])
				if err != nil {
					t.Fatal(err)
				}
				want[i] = w
			}

			plan1, err := build(1)
			if err != nil {
				t.Fatal(err)
			}
			pool := runtime.NewSessionPool(plan1, runtime.PoolOptions{
				Sessions: 2, QueueDepth: clients, DisableTelemetry: true,
				Batch: &runtime.BatcherOptions{
					MaxBatch: clients, MaxLinger: 500 * time.Millisecond, PlanFor: build,
				},
			})
			defer pool.Close()
			if err := pool.Batcher().Warm(clients); err != nil {
				t.Fatalf("warm: %v", err)
			}

			got := make([][]*tensor.Tensor, clients)
			errs := make([]error, clients)
			var wg sync.WaitGroup
			wg.Add(clients)
			for i := 0; i < clients; i++ {
				go func(i int) {
					defer wg.Done()
					got[i], errs[i] = pool.Run(context.Background(), inputs[i])
				}(i)
			}
			wg.Wait()
			for i := 0; i < clients; i++ {
				if errs[i] != nil {
					t.Fatalf("client %d: %v", i, errs[i])
				}
				tensorsEqual(t, fmt.Sprintf("client %d", i), got[i], want[i])
			}
		})
	}
}

// TestBatcherScatterMixedDeadlines: requests cancelled or expired while a
// batch forms get their own context error, and the surviving members of
// the same batch still succeed with bit-identical outputs.
func TestBatcherScatterMixedDeadlines(t *testing.T) {
	const name, size = "SqueezeNet1.0", 48
	build := zooPlanBuilder(name, size)
	mref := models.Build(name, size, false)
	graph.Optimize(mref.Graph)
	graph.PlaceDevices(mref.Graph, graph.PlacementOptions{})

	mkInput := func(seed int64) map[string]*tensor.Tensor {
		in := tensor.New(1, 3, size, size)
		in.FillRandom(seed)
		return map[string]*tensor.Tensor{"data": in}
	}
	liveA, liveB := mkInput(1), mkInput(2)
	wantA, err := executeReference(mref.Graph, liveA)
	if err != nil {
		t.Fatal(err)
	}
	wantB, err := executeReference(mref.Graph, liveB)
	if err != nil {
		t.Fatal(err)
	}

	plan1, err := build(1)
	if err != nil {
		t.Fatal(err)
	}
	pool := runtime.NewSessionPool(plan1, runtime.PoolOptions{
		Sessions: 1, QueueDepth: 8, DisableTelemetry: true,
		Batch: &runtime.BatcherOptions{
			// MaxBatch larger than the live requests: the batch can only
			// close via the linger timer, giving the cancellations below
			// time to land while the batch forms.
			MaxBatch: 6, MaxLinger: 150 * time.Millisecond, PlanFor: build,
		},
	})
	defer pool.Close()
	if err := pool.Batcher().Warm(2, 3, 4); err != nil {
		t.Fatalf("warm: %v", err)
	}

	type result struct {
		outs []*tensor.Tensor
		err  error
	}
	var wg sync.WaitGroup
	results := make([]result, 4)
	run := func(i int, ctx context.Context, feeds map[string]*tensor.Tensor) {
		defer wg.Done()
		outs, err := pool.Run(ctx, feeds)
		results[i] = result{outs, err}
	}
	cancelCtx, cancelNow := context.WithCancel(context.Background())
	deadlineCtx, cancelDeadline := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancelDeadline()
	wg.Add(4)
	go run(0, context.Background(), liveA)
	go run(1, context.Background(), liveB)
	go run(2, cancelCtx, mkInput(3))
	go run(3, deadlineCtx, mkInput(4))
	time.Sleep(20 * time.Millisecond) // all four are queued or lingering
	cancelNow()
	wg.Wait()

	if results[0].err != nil || results[1].err != nil {
		t.Fatalf("live requests failed: %v / %v", results[0].err, results[1].err)
	}
	tensorsEqual(t, "live A", results[0].outs, wantA)
	tensorsEqual(t, "live B", results[1].outs, wantB)
	if !errors.Is(results[2].err, context.Canceled) {
		t.Fatalf("cancelled request: got %v, want context.Canceled", results[2].err)
	}
	if !errors.Is(results[3].err, context.DeadlineExceeded) {
		t.Fatalf("expired request: got %v, want context.DeadlineExceeded", results[3].err)
	}
}

// TestBatcherMaxBatchTrigger: with an effectively infinite linger, a full
// batch must still fire as soon as MaxBatch requests are queued.
func TestBatcherMaxBatchTrigger(t *testing.T) {
	build := zooPlanBuilder("SqueezeNet1.0", 32)
	plan1, err := build(1)
	if err != nil {
		t.Fatal(err)
	}
	pool := runtime.NewSessionPool(plan1, runtime.PoolOptions{
		Sessions: 1, QueueDepth: 4, DisableTelemetry: true,
		Batch: &runtime.BatcherOptions{
			MaxBatch: 2, MaxLinger: time.Hour, PlanFor: build,
		},
	})
	defer pool.Close()
	if err := pool.Batcher().Warm(2); err != nil {
		t.Fatalf("warm: %v", err)
	}
	in := tensor.New(1, 3, 32, 32)
	in.FillRandom(5)
	feeds := map[string]*tensor.Tensor{"data": in}

	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(2)
	for i := 0; i < 2; i++ {
		go func(i int) {
			defer wg.Done()
			_, errs[i] = pool.Run(context.Background(), feeds)
		}(i)
	}
	wg.Wait()
	if errs[0] != nil || errs[1] != nil {
		t.Fatalf("runs failed: %v / %v", errs[0], errs[1])
	}
	// With the hour-long linger, completion inside the test timeout proves
	// the max-batch trigger fired; bound it loosely for slow CI anyway.
	if wall := time.Since(start); wall > time.Minute {
		t.Fatalf("full batch took %v; max-batch trigger did not fire", wall)
	}
}

// TestBatcherLingerTrigger: a lone request must not wait for a full batch —
// the linger timer closes the batch and the request completes (on the
// per-request fallback path for n=1).
func TestBatcherLingerTrigger(t *testing.T) {
	build := zooPlanBuilder("SqueezeNet1.0", 32)
	plan1, err := build(1)
	if err != nil {
		t.Fatal(err)
	}
	const linger = 60 * time.Millisecond
	pool := runtime.NewSessionPool(plan1, runtime.PoolOptions{
		Sessions: 1, QueueDepth: 4, DisableTelemetry: true,
		Batch: &runtime.BatcherOptions{
			MaxBatch: 8, MaxLinger: linger, PlanFor: build,
		},
	})
	defer pool.Close()
	in := tensor.New(1, 3, 32, 32)
	in.FillRandom(6)
	start := time.Now()
	if _, err := pool.Run(context.Background(), map[string]*tensor.Tensor{"data": in}); err != nil {
		t.Fatal(err)
	}
	wall := time.Since(start)
	// The lone request rides the linger window before executing; allow
	// generous slack both ways for coarse timers and slow CI.
	if wall < linger/2 {
		t.Fatalf("lone request completed in %v, before the %v linger window", wall, linger)
	}
	if wall > time.Minute {
		t.Fatalf("lone request took %v; linger trigger did not fire", wall)
	}
}

// TestBatcherPlanSingleflight (meaningful under -race): concurrent batches
// of the same size must compile that size's plan exactly once, however many
// requests race on the cold cache.
func TestBatcherPlanSingleflight(t *testing.T) {
	var calls sync.Map // batch size -> *atomic.Int32
	inner := zooPlanBuilder("SqueezeNet1.0", 32)
	build := func(n int) (*runtime.Plan, error) {
		c, _ := calls.LoadOrStore(n, new(atomic.Int32))
		c.(*atomic.Int32).Add(1)
		return inner(n)
	}
	plan1, err := inner(1)
	if err != nil {
		t.Fatal(err)
	}
	pool := runtime.NewSessionPool(plan1, runtime.PoolOptions{
		Sessions: 2, QueueDepth: 32, DisableTelemetry: true,
		Batch: &runtime.BatcherOptions{
			MaxBatch: 4, MaxLinger: 5 * time.Millisecond, PlanFor: build,
		},
	})
	defer pool.Close()

	in := tensor.New(1, 3, 32, 32)
	in.FillRandom(9)
	feeds := map[string]*tensor.Tensor{"data": in}
	const clients, rounds = 8, 3
	var wg sync.WaitGroup
	wg.Add(clients)
	for c := 0; c < clients; c++ {
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if _, err := pool.Run(context.Background(), feeds); err != nil {
					t.Errorf("run: %v", err)
					return
				}
			}
		}()
	}
	// Concurrent Warm calls race with the dispatcher's own misses.
	wg.Add(2)
	for w := 0; w < 2; w++ {
		go func() {
			defer wg.Done()
			if err := pool.Batcher().Warm(2, 3, 4); err != nil {
				t.Errorf("warm: %v", err)
			}
		}()
	}
	wg.Wait()

	total := 0
	calls.Range(func(k, v any) bool {
		n := v.(*atomic.Int32).Load()
		if n > 1 {
			t.Errorf("PlanFor(%v) called %d times, want at most 1", k, n)
		}
		total += int(n)
		return true
	})
	if total == 0 {
		t.Fatal("PlanFor never called; batching path not exercised")
	}
}

// TestBatchedFaultSoak: seeded random faults under the batching front-end.
// Batched runs that fault degrade to the per-request sessions, where
// retries, CPU re-execution and the shared breaker recover them — every
// request must still return bit-identical outputs, and closing the pool
// must leave no goroutine behind.
func TestBatchedFaultSoak(t *testing.T) {
	runs := 5
	if v := os.Getenv("UNIGPU_SOAK_RUNS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			t.Fatalf("UNIGPU_SOAK_RUNS=%q: %v", v, err)
		}
		if runs = n / 10; runs < 5 {
			runs = 5
		}
	}
	const name, size, clients = "SqueezeNet1.0", 32, 6
	build := zooPlanBuilder(name, size)
	mref := models.Build(name, size, false)
	graph.Optimize(mref.Graph)
	graph.PlaceDevices(mref.Graph, graph.PlacementOptions{})
	inputs := make([]map[string]*tensor.Tensor, clients)
	want := make([][]*tensor.Tensor, clients)
	for i := range inputs {
		in := tensor.New(1, 3, size, size)
		in.FillRandom(int64(31 + i))
		inputs[i] = map[string]*tensor.Tensor{"data": in}
		w, err := executeReference(mref.Graph, inputs[i])
		if err != nil {
			t.Fatal(err)
		}
		want[i] = w
	}
	plan1, err := build(1)
	if err != nil {
		t.Fatal(err)
	}

	baseline := goruntime.NumGoroutine()
	for run := 0; run < runs; run++ {
		inj := sim.NewFaultInjector(sim.FaultConfig{
			Seed: int64(run), Rate: 0.2, HangLatency: 10 * time.Microsecond,
		})
		pool := runtime.NewSessionPool(plan1, runtime.PoolOptions{
			Sessions: 2, QueueDepth: 2 * clients, DisableTelemetry: true,
			Session: faultSessionOpts(inj),
			Batch: &runtime.BatcherOptions{
				MaxBatch: clients, MaxLinger: 5 * time.Millisecond, PlanFor: build,
			},
		})
		var wg sync.WaitGroup
		wg.Add(clients)
		for i := 0; i < clients; i++ {
			go func(i int) {
				defer wg.Done()
				outs, err := pool.Run(context.Background(), inputs[i])
				if err != nil {
					t.Errorf("soak run %d client %d: %v", run, i, err)
					return
				}
				tensorsEqual(t, fmt.Sprintf("soak run %d client %d", run, i), outs, want[i])
			}(i)
		}
		wg.Wait()
		pool.Close()
		if t.Failed() {
			return
		}
	}
	assertNoGoroutineLeak(t, baseline)
}

// TestBatcherPoolClose: Close fails queued requests with ErrPoolClosed and
// subsequent Runs are rejected instead of hanging on a dead dispatcher.
func TestBatcherPoolClose(t *testing.T) {
	build := zooPlanBuilder("SqueezeNet1.0", 32)
	plan1, err := build(1)
	if err != nil {
		t.Fatal(err)
	}
	pool := runtime.NewSessionPool(plan1, runtime.PoolOptions{
		Sessions: 1, QueueDepth: 4, DisableTelemetry: true,
		Batch: &runtime.BatcherOptions{MaxBatch: 4, MaxLinger: time.Millisecond, PlanFor: build},
	})
	in := tensor.New(1, 3, 32, 32)
	in.FillRandom(11)
	feeds := map[string]*tensor.Tensor{"data": in}
	if _, err := pool.Run(context.Background(), feeds); err != nil {
		t.Fatal(err)
	}
	pool.Close()
	if _, err := pool.Run(context.Background(), feeds); !errors.Is(err, runtime.ErrPoolClosed) {
		t.Fatalf("run after close: got %v, want ErrPoolClosed", err)
	}
	pool.Close() // idempotent
}

// serialBatchPlanBuilder is a PlanFor over the cheap serial-ops function:
// batch n widens the leading data dimension, every row computes the same
// function, and no convolutions keep each compile and run fast enough to
// hammer the close path hundreds of times.
func serialBatchPlanBuilder() func(n int) (*runtime.Plan, error) {
	return func(n int) (*runtime.Plan, error) {
		g := graph.New()
		in := g.Input("data", n, 8, 8, 8)
		a := g.Apply("a", &graph.ActivationOp{Act: ops.ActReLU}, in)
		l := g.Apply("l", &graph.SigmoidOp{}, a)
		j := g.Apply("j", &graph.AddOp{}, l, a)
		sm := g.Apply("sm", &graph.SoftmaxOp{}, j)
		g.SetOutputs(sm)
		return runtime.NewPlan(g)
	}
}

// TestPoolCloseWhileBatchedInFlight is the Close-race regression test
// (satellite of the fleet PR): Close racing concurrent batched Runs must
// drain every request — each caller gets a result or ErrPoolClosed /
// ErrOverloaded, never a hang — without leaking goroutines or panicking in
// scatter. Before the closeMu fix, a request could slip into the queue
// after the dispatcher's final drain and block its caller forever; this
// test hung. Run under -race in CI.
func TestPoolCloseWhileBatchedInFlight(t *testing.T) {
	build := serialBatchPlanBuilder()
	baseline := goruntime.NumGoroutine()
	for round := 0; round < 30; round++ {
		plan, err := build(1)
		if err != nil {
			t.Fatal(err)
		}
		pool := runtime.NewSessionPool(plan, runtime.PoolOptions{
			Sessions: 2, QueueDepth: 8, DisableTelemetry: true,
			Batch: &runtime.BatcherOptions{MaxBatch: 4, MaxLinger: 50 * time.Microsecond, PlanFor: build},
		})
		start := make(chan struct{})
		var wg sync.WaitGroup
		for c := 0; c < 8; c++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				in := tensor.New(1, 8, 8, 8)
				in.FillRandom(seed)
				feeds := map[string]*tensor.Tensor{"data": in}
				<-start
				for k := 0; k < 40; k++ {
					_, err := pool.Run(context.Background(), feeds)
					if err != nil {
						if errors.Is(err, runtime.ErrPoolClosed) || errors.Is(err, runtime.ErrOverloaded) {
							continue // closing or momentarily full: both fine
						}
						t.Errorf("round %d: unexpected error: %v", round, err)
						return
					}
				}
			}(int64(round*10 + c))
		}
		close(start)
		// Vary the close point from "immediately" to "mid-steady-state" so
		// different rounds race Close against enqueue, linger, and scatter.
		time.Sleep(time.Duration(round%6) * 50 * time.Microsecond)
		pool.Close()
		wg.Wait() // the regression: a pre-fix race left a caller stuck here
	}
	assertNoGoroutineLeak(t, baseline)
}
