// Package runtime executes optimized computational graphs functionally —
// the heterogeneous graph executor of the stack. Nodes tagged OnCPU and
// OnGPU both run on the host here (the GPU is simulated; see internal/sim
// for latency), but the executor honours the placement structurally:
// device_copy nodes materialise buffer handoffs, and per-node profiles
// record which device each operator was assigned to.
package runtime

import (
	"fmt"
	"time"

	"unigpu/internal/graph"
	"unigpu/internal/obs"
	"unigpu/internal/tensor"
)

// NodeProfile records one executed node.
type NodeProfile struct {
	Name     string
	Kind     string
	Device   graph.DeviceClass
	Wall     time.Duration
	OutBytes int
}

// Result is the outcome of one inference.
type Result struct {
	Outputs  []*tensor.Tensor
	Profile  []NodeProfile
	PeakLive int // peak bytes of simultaneously live intermediate tensors
}

// Execute runs the graph on the given feeds (by input-node name). The
// executor frees intermediate tensors as soon as their last consumer has
// run (reference-counted memory planning).
func Execute(g *graph.Graph, feeds map[string]*tensor.Tensor) (*Result, error) {
	// Per-node spans and the exec.node_wall_ns histogram are gated on the
	// tracing flag so the disabled path stays allocation-free.
	traceOn := obs.Enabled()
	sp := obs.Start("runtime.execute")
	if traceOn {
		sp.SetAttrs(obs.KVInt("nodes", len(g.Nodes)))
	}
	defer sp.End()
	if err := g.Validate(); err != nil {
		return nil, err
	}
	// Reference counts for memory planning.
	refs := map[*graph.Node]int{}
	for _, n := range g.Nodes {
		for _, in := range n.Inputs {
			refs[in]++
		}
	}
	for _, o := range g.Outputs {
		refs[o]++ // outputs stay live
	}

	values := map[*graph.Node]*tensor.Tensor{}
	live := 0
	peak := 0
	res := &Result{}

	for _, n := range g.Nodes {
		switch {
		case n.IsConstant():
			values[n] = n.Value
		case n.IsInput():
			t, ok := feeds[n.Name]
			if !ok {
				return nil, fmt.Errorf("runtime: input %q not fed", n.Name)
			}
			if !t.Shape().Equal(n.OutShape) {
				return nil, fmt.Errorf("runtime: input %q shape %v, want %v", n.Name, t.Shape(), n.OutShape)
			}
			values[n] = t
		default:
			ins := make([]*tensor.Tensor, len(n.Inputs))
			for i, in := range n.Inputs {
				v, ok := values[in]
				if !ok {
					return nil, fmt.Errorf("runtime: node %q input %q has no value", n.Name, in.Name)
				}
				ins[i] = v
			}
			var nsp *obs.Span
			if traceOn {
				nsp = sp.Child("node:"+n.Name,
					obs.KV("kind", n.Op.Kind()), obs.KV("device", n.Device.String()))
			}
			start := time.Now()
			out := n.Op.Execute(ins)
			wall := time.Since(start)
			if traceOn {
				nsp.SetAttrs(obs.KVInt("out_bytes", out.Bytes()))
				nsp.End()
				obs.Observe("exec.node_wall_ns", float64(wall.Nanoseconds()))
			}
			if !out.Shape().Equal(n.OutShape) {
				return nil, fmt.Errorf("runtime: node %q produced %v, inferred %v", n.Name, out.Shape(), n.OutShape)
			}
			values[n] = out
			live += out.Bytes()
			if live > peak {
				peak = live
			}
			res.Profile = append(res.Profile, NodeProfile{
				Name: n.Name, Kind: n.Op.Kind(), Device: n.Device,
				Wall: wall, OutBytes: out.Bytes(),
			})
			// Release inputs whose last consumer has run.
			for _, in := range n.Inputs {
				if in.Op == nil {
					continue // feeds and constants are caller-owned
				}
				refs[in]--
				if refs[in] == 0 {
					live -= values[in].Bytes()
					delete(values, in)
				}
			}
			// A node with no consumers that is not a graph output dies
			// immediately (dead branches the passes keep for profiling);
			// without this its buffer stayed live to the end of the run and
			// inflated live/PeakLive.
			if refs[n] == 0 {
				live -= out.Bytes()
				delete(values, n)
			}
		}
	}

	res.PeakLive = peak
	res.Outputs = make([]*tensor.Tensor, len(g.Outputs))
	for i, o := range g.Outputs {
		v, ok := values[o]
		if !ok {
			return nil, fmt.Errorf("runtime: output %q has no value", o.Name)
		}
		res.Outputs[i] = v
	}
	return res, nil
}
