// Package runtime executes optimized computational graphs — the
// heterogeneous graph executor of the stack. Execution is split into a
// one-time compilation step (NewPlan: validation, topological scheduling,
// dependency counting, liveness-based arena-slot assignment) and a
// reusable steady-state run loop (Plan.NewSession / Session.Run) that
// performs zero heap allocations for intermediate tensors.
//
// Nodes tagged OnCPU and OnGPU both run on the host here (the GPU is
// simulated; see internal/sim for latency), but the executor honours the
// placement structurally: device_copy nodes materialise buffer handoffs,
// GPU-placed nodes serialize through a simulated in-order command queue
// under the concurrent scheduler, and per-node profiles record which
// device each operator was assigned to.
package runtime

import (
	"time"

	"unigpu/internal/graph"
	"unigpu/internal/tensor"
)

// NodeProfile records one executed node.
type NodeProfile struct {
	Name     string
	Kind     string
	Device   graph.DeviceClass
	Wall     time.Duration
	OutBytes int
}

// Result is the outcome of one inference.
type Result struct {
	Outputs  []*tensor.Tensor
	Profile  []NodeProfile
	PeakLive int // peak bytes of simultaneously live intermediate tensors
}

// Execute runs the graph on the given feeds (by input-node name) through a
// throwaway single-run plan and session. It keeps the original one-shot
// API — profiles always collected, PeakLive reported from the
// reference-counted liveness analysis — but repeated inference should
// compile once with NewPlan and reuse Sessions, which amortises planning
// and reuses the arena across runs.
func Execute(g *graph.Graph, feeds map[string]*tensor.Tensor) (*Result, error) {
	plan, err := NewPlan(g)
	if err != nil {
		return nil, err
	}
	s := plan.NewSessionWith(SessionOptions{Profile: true})
	outs, err := s.Run(feeds)
	if err != nil {
		return nil, err
	}
	return &Result{Outputs: outs, Profile: s.Profile(), PeakLive: plan.PeakLiveBytes()}, nil
}
