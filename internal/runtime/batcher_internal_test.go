package runtime

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"unigpu/internal/graph"
	"unigpu/internal/ops"
	"unigpu/internal/tensor"
)

// TestBatcherCloseEnqueueRace (whitebox): a batched Run that passed the
// closed check must have its enqueue covered by the dispatcher's final
// drain. The testBatchEnqueuePause hook pins the race deterministically:
// it starts Close exactly inside the check-to-enqueue window and gives it
// time to run. Under the closeMu fix, Close blocks until the enqueue
// finishes and the drain resolves the request with ErrPoolClosed; before
// the fix, Close drained an empty queue first and the late enqueue
// stranded the caller forever.
func TestBatcherCloseEnqueueRace(t *testing.T) {
	build := func(n int) (*Plan, error) {
		g := graph.New()
		in := g.Input("data", n, 4)
		g.SetOutputs(g.Apply("act", &graph.ActivationOp{Act: ops.ActReLU}, in))
		return NewPlan(g)
	}
	plan, err := build(1)
	if err != nil {
		t.Fatal(err)
	}
	sp := NewSessionPool(plan, PoolOptions{
		Sessions: 1, DisableTelemetry: true,
		Batch: &BatcherOptions{MaxBatch: 4, MaxLinger: time.Millisecond, PlanFor: build},
	})

	closeDone := make(chan struct{})
	var once sync.Once
	testBatchEnqueuePause = func() {
		once.Do(func() {
			go func() {
				sp.Close()
				close(closeDone)
			}()
			// Give Close every chance to win the race: with the fix it
			// parks on closeMu until this Run's enqueue is done; without
			// it, it finishes the final drain before the enqueue lands.
			time.Sleep(50 * time.Millisecond)
		})
	}
	defer func() { testBatchEnqueuePause = nil }()

	in := tensor.New(1, 4)
	in.FillRandom(3)
	runDone := make(chan error, 1)
	go func() {
		_, err := sp.Run(context.Background(), map[string]*tensor.Tensor{"data": in})
		runDone <- err
	}()

	select {
	case err := <-runDone:
		if err != nil && !errors.Is(err, ErrPoolClosed) {
			t.Fatalf("raced Run: got %v, want success or ErrPoolClosed", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run stranded by a Close that raced its enqueue")
	}
	<-closeDone
}
