package runtime_test

import (
	"fmt"
	"sync"
	"testing"

	"unigpu/internal/runtime"
)

// TestRouterPrefersCheapOracle: with no load and full weights, the router
// ranks replicas by the cost oracle alone — the cheapest device first.
func TestRouterPrefersCheapOracle(t *testing.T) {
	r := runtime.NewRouter([]float64{5, 1, 3}, runtime.RouterOptions{})
	if got := r.Pick(); got != 1 {
		t.Fatalf("Pick = %d, want 1 (cheapest oracle)", got)
	}
	want := []int{1, 2, 0}
	got := r.Rank()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Rank = %v, want %v", got, want)
		}
	}
}

// TestRouterLoadSteersAway: in-flight requests raise a replica's score, so
// placement spills to the next-cheapest replica instead of queueing on one.
func TestRouterLoadSteersAway(t *testing.T) {
	r := runtime.NewRouter([]float64{1, 3}, runtime.RouterOptions{})
	if got := r.Pick(); got != 0 {
		t.Fatalf("idle Pick = %d, want 0", got)
	}
	// Replica 0 at 1ms with 2 in flight scores 1*(1+2)=3; replica 1 idle
	// scores 3 — tie breaks to the lower index. A third in-flight tips it.
	r.Begin(0)
	r.Begin(0)
	r.Begin(0)
	if got := r.Pick(); got != 1 {
		t.Fatalf("loaded Pick = %d, want 1", got)
	}
	r.End(0)
	r.End(0)
	r.End(0)
	if got := r.Pick(); got != 0 {
		t.Fatalf("drained Pick = %d, want 0", got)
	}
}

// TestRouterZeroWeightRanksLast: a quarantined (zero-weight) replica is
// never excluded — it ranks after every weighted replica as a last resort,
// and returns once its weight recovers.
func TestRouterZeroWeightRanksLast(t *testing.T) {
	r := runtime.NewRouter([]float64{1, 2, 3}, runtime.RouterOptions{})
	r.SetWeight(0, 0)
	got := r.Rank()
	want := []int{1, 2, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Rank = %v, want %v", got, want)
		}
	}
	// Partial weight (the heal ramp): 1ms/0.25 = 4 effective, still after
	// the 2ms and 3ms healthy replicas but ahead of nothing-at-all.
	r.SetWeight(0, 0.25)
	got = r.Rank()
	for i, w := range []int{1, 2, 0} {
		if got[i] != w {
			t.Fatalf("ramping Rank = %v, want [1 2 0]", got)
		}
	}
	r.SetWeight(0, 1)
	if got := r.Pick(); got != 0 {
		t.Fatalf("recovered Pick = %d, want 0", got)
	}
}

// TestRouterEWMACorrection: observed latencies drift the estimate away
// from the oracle; with feedback disabled (negative alpha) Observe is a
// no-op and the estimate stays the pure oracle.
func TestRouterEWMACorrection(t *testing.T) {
	r := runtime.NewRouter([]float64{1, 1}, runtime.RouterOptions{EWMAAlpha: 0.5})
	r.Observe(0, 9) // 1 + 0.5*(9-1) = 5
	if got := r.Estimate(0); got != 5 {
		t.Fatalf("Estimate(0) = %v, want 5", got)
	}
	// Replica 0 now looks 5x slower than its oracle: placement flips.
	if got := r.Pick(); got != 1 {
		t.Fatalf("Pick = %d, want 1 after slow observations", got)
	}

	det := runtime.NewRouter([]float64{1, 1}, runtime.RouterOptions{EWMAAlpha: -1})
	det.Observe(0, 1000)
	if got := det.Estimate(0); got != 1 {
		t.Fatalf("deterministic Estimate(0) = %v, want 1 (Observe disabled)", got)
	}
}

// TestRouterPlacementDeterminism: two routers fed the identical operation
// sequence produce identical rankings at every step — the property the
// fleet's placement-determinism guarantee is built on. Run under -race in
// CI (make verify).
func TestRouterPlacementDeterminism(t *testing.T) {
	run := func() []string {
		r := runtime.NewRouter([]float64{2.5, 1.0, 4.0}, runtime.RouterOptions{EWMAAlpha: -1})
		var trace []string
		step := func() {
			trace = append(trace, fmt.Sprint(r.Rank()))
		}
		step()
		r.Begin(1)
		step()
		r.Begin(1)
		r.Begin(0)
		step()
		r.SetWeight(1, 0) // quarantine the favourite
		step()
		r.End(1)
		r.End(1)
		r.SetWeight(1, 0.25) // heal ramp, step 1
		step()
		r.SetWeight(1, 1)
		r.End(0)
		step()
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("step %d: placements diverge: %s vs %s", i, a[i], b[i])
		}
	}
}

// TestRouterConcurrentSafety: hammer every router method from parallel
// goroutines; the -race CI job turns any unsynchronized access into a
// failure, and ranks must always be a permutation.
func TestRouterConcurrentSafety(t *testing.T) {
	r := runtime.NewRouter([]float64{1, 2, 3, 4}, runtime.RouterOptions{EWMAAlpha: 0.2})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; k < 500; k++ {
				i := (g + k) % r.Len()
				r.Begin(i)
				r.Observe(i, float64(1+k%7))
				r.SetWeight(i, float64(k%5)/4)
				order := r.Rank()
				seen := make([]bool, r.Len())
				for _, j := range order {
					seen[j] = true
				}
				for j, ok := range seen {
					if !ok {
						t.Errorf("Rank %v missing replica %d", order, j)
						break
					}
				}
				r.End(i)
			}
		}(g)
	}
	wg.Wait()
}
