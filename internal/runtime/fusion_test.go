package runtime_test

import (
	"fmt"
	"testing"

	"unigpu/internal/graph"
	"unigpu/internal/models"
	"unigpu/internal/ops"
	"unigpu/internal/runtime"
	"unigpu/internal/tensor"
)

// buildZooGraph builds one zoo model and runs the requested slice of the
// pass pipeline. "unfused" applies only the numerics-changing passes
// (batch-norm folding, constant pre-computation) so it computes the exact
// same floats as the fused graph, node by node; "prefusion" additionally
// runs the original single-activation fusion — the pipeline as it stood
// before the generalized fusion passes; "fused" is the full Optimize.
func buildZooGraph(name string, size int, variant string) *graph.Graph {
	m := models.Build(name, size, false)
	switch variant {
	case "unfused":
		graph.FoldBatchNorm(m.Graph)
		graph.PrecomputeConstants(m.Graph)
		m.Graph.EliminateDead()
	case "prefusion":
		graph.FoldBatchNorm(m.Graph)
		graph.FuseActivations(m.Graph)
		graph.PrecomputeConstants(m.Graph)
		m.Graph.EliminateDead()
	default:
		graph.Optimize(m.Graph)
	}
	graph.PlaceDevices(m.Graph, graph.PlacementOptions{})
	return m.Graph
}

// TestFusedVsUnfusedAllModels cross-checks the fusion passes end to end:
// for every zoo model the fully fused graph — run through the pooled
// serial session AND the concurrent scheduler — must be bit-identical to
// the frozen reference executor running the UNFUSED graph, across multiple
// random inputs. Unlike TestGoldenAllModels (which runs the same optimized
// graph on both sides), this proves the fusion rewrites themselves never
// change a single ULP.
func TestFusedVsUnfusedAllModels(t *testing.T) {
	for name, size := range goldenModelCases() {
		t.Run(name, func(t *testing.T) {
			unfused := buildZooGraph(name, size, "unfused")
			fused := buildZooGraph(name, size, "fused")
			plan, err := runtime.NewPlan(fused)
			if err != nil {
				t.Fatal(err)
			}
			serial := plan.NewSession()
			conc := plan.NewSessionWith(runtime.SessionOptions{Workers: 4, GPUStreams: 4})
			for _, seed := range []int64{7, 23} {
				feed := tensor.New(1, 3, size, size)
				feed.FillRandom(seed)
				feeds := map[string]*tensor.Tensor{"data": feed}

				want, err := executeReference(unfused, feeds)
				if err != nil {
					t.Fatal(err)
				}
				got, err := serial.Run(feeds)
				if err != nil {
					t.Fatal(err)
				}
				tensorsEqual(t, fmt.Sprintf("serial seed %d", seed), got, want)
				got, err = conc.Run(feeds)
				if err != nil {
					t.Fatal(err)
				}
				tensorsEqual(t, fmt.Sprintf("concurrent seed %d", seed), got, want)
			}
		})
	}
}

// TestFusionReducesScheduleAndTraffic quantifies the fusion win against
// the pre-fusion pipeline: the residual-style models (ResNet, SSD-ResNet,
// YOLOv3) must lose at least 20% of their schedule nodes and strictly
// shrink per-run intermediate traffic; no model may regress on either
// metric, nor grow its arena.
func TestFusionReducesScheduleAndTraffic(t *testing.T) {
	residualStyle := map[string]bool{"ResNet50_v1": true, "SSD_ResNet50": true, "Yolov3": true}
	for name, size := range goldenModelCases() {
		t.Run(name, func(t *testing.T) {
			before, err := runtime.NewPlan(buildZooGraph(name, size, "prefusion"))
			if err != nil {
				t.Fatal(err)
			}
			after, err := runtime.NewPlan(buildZooGraph(name, size, "fused"))
			if err != nil {
				t.Fatal(err)
			}
			if after.NumNodes() > before.NumNodes() {
				t.Fatalf("fusion grew the schedule: %d -> %d nodes", before.NumNodes(), after.NumNodes())
			}
			if after.ArenaBytes() > before.ArenaBytes() {
				t.Fatalf("fusion grew the arena: %d -> %d bytes", before.ArenaBytes(), after.ArenaBytes())
			}
			if after.IntermediateBytes() > before.IntermediateBytes() {
				t.Fatalf("fusion grew intermediate traffic: %d -> %d bytes",
					before.IntermediateBytes(), after.IntermediateBytes())
			}
			if residualStyle[name] {
				drop := float64(before.NumNodes()-after.NumNodes()) / float64(before.NumNodes())
				if drop < 0.20 {
					t.Fatalf("node count dropped %.1f%% (%d -> %d), want >= 20%%",
						100*drop, before.NumNodes(), after.NumNodes())
				}
				if after.IntermediateBytes() >= before.IntermediateBytes() {
					t.Fatalf("intermediate traffic did not shrink: %d -> %d bytes",
						before.IntermediateBytes(), after.IntermediateBytes())
				}
			}
		})
	}
}

// TestFusionNodeCountGoldens pins the exact optimized schedule size of
// every zoo model. A failure means a pass started fusing more, less, or
// differently — update the goldens only after confirming the change is
// intended and the fused-vs-unfused cross-checks still pass.
func TestFusionNodeCountGoldens(t *testing.T) {
	golden := map[string]int{
		"ResNet50_v1":      58,
		"MobileNet1.0":     31,
		"SqueezeNet1.0":    40,
		"SSD_MobileNet1.0": 66,
		"SSD_ResNet50":     93,
		"Yolov3":           84,
	}
	for _, name := range models.Names() {
		t.Run(name, func(t *testing.T) {
			want, ok := golden[name]
			if !ok {
				t.Fatalf("no node-count golden for zoo model %q; add one", name)
			}
			size := 64
			switch name {
			case "SSD_MobileNet1.0", "SSD_ResNet50":
				size = 128
			case "Yolov3":
				size = 96
			}
			m := models.Build(name, size, false)
			graph.Optimize(m.Graph)
			if got := len(m.Graph.OpNodes()); got != want {
				t.Fatalf("optimized %s has %d op nodes, golden %d", name, got, want)
			}
		})
	}
}

// TestFusedElementwiseZeroAllocs: collapsing an elementwise chain must
// preserve the serial session's zero-allocation guarantee — the fused
// kernel resolves its add operands into fixed-size stack state. (Conv
// nodes are excluded, as in TestSessionZeroAllocs: their worker-pool
// dispatch predates this pass and allocates goroutine state.)
func TestFusedElementwiseZeroAllocs(t *testing.T) {
	g := graph.New()
	in := g.Input("data", 1, 8, 8, 8)
	relu := g.Apply("relu", &graph.ActivationOp{Act: ops.ActReLU}, in)
	sig := g.Apply("sig", &graph.SigmoidOp{}, relu)
	leaky := g.Apply("leaky", &graph.ActivationOp{Act: ops.ActLeakyReLU, Alpha: 0.3}, sig)
	tail := g.Apply("tail", &graph.AddOp{}, leaky, in)
	g.SetOutputs(tail)
	graph.Optimize(g)
	if n := len(g.OpNodes()); n != 1 {
		t.Fatalf("optimize left %d op nodes, want a lone fused_elementwise", n)
	}
	if kind := g.OpNodes()[0].Op.Kind(); kind != "fused_elementwise" {
		t.Fatalf("optimize left a %q node, want fused_elementwise", kind)
	}

	plan, err := runtime.NewPlan(g)
	if err != nil {
		t.Fatal(err)
	}
	s := plan.NewSession()
	feed := tensor.New(1, 8, 8, 8)
	feed.FillRandom(9)
	feeds := map[string]*tensor.Tensor{"data": feed}
	if _, err := s.Run(feeds); err != nil { // warm-up
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := s.Run(feeds); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("fused Session.Run allocated %v times per run, want 0", allocs)
	}
}
