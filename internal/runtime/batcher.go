package runtime

import (
	"context"
	"errors"
	"sync"
	"time"

	"unigpu/internal/obs"
	"unigpu/internal/tensor"
)

// Batching front-end for SessionPool: concurrent single-image requests are
// coalesced into one batched execution. A single dispatcher goroutine pulls
// requests off a bounded queue, lingers up to MaxLinger (or until MaxBatch
// requests are waiting), gathers the per-request feeds into one batched
// input tensor, runs a plan compiled for exactly that batch size, and
// scatters the output rows back to the callers. Plans are compiled lazily
// per batch size — one singleflight compile each, re-walking the tuning-DB
// warm path — and until a size's plan is ready its requests degrade to the
// pool's per-request sessions, so enabling batching never stalls traffic
// behind a compile.

// ErrPoolClosed is returned for requests still queued (or arriving) when
// the pool is closed.
var ErrPoolClosed = errors.New("runtime: session pool closed")

// BatcherOptions configures the batching front-end of a SessionPool.
type BatcherOptions struct {
	// MaxBatch caps how many requests one execution coalesces (default 8).
	MaxBatch int
	// MaxLinger bounds how long the dispatcher holds the first request of
	// a forming batch waiting for companions (default 2ms).
	MaxLinger time.Duration
	// QueueDepth bounds the request queue; a request arriving when it is
	// full is shed with ErrOverloaded (default 4*MaxBatch). With batching
	// enabled this queue is the pool's admission point.
	QueueDepth int
	// PlanFor compiles a plan for the given batch size (required). It is
	// invoked at most once per size (singleflight) from a background
	// goroutine; the result is cached for the life of the pool.
	PlanFor func(batch int) (*Plan, error)
}

// batchResult is what a coalesced request resolves to.
type batchResult struct {
	outs []*tensor.Tensor
	err  error
}

// batchRequest is one caller waiting in the batching queue.
type batchRequest struct {
	ctx   context.Context
	feeds map[string]*tensor.Tensor
	res   chan batchResult // buffered 1: completion never blocks the dispatcher
	start time.Time
	req   *obs.ActiveRequest
}

func (r *batchRequest) complete(outs []*tensor.Tensor, err error) {
	select {
	case r.res <- batchResult{outs: outs, err: err}:
	default:
	}
}

// batchEntry caches one batch size's compiled plan, its dedicated session,
// and the reusable gather buffers. done closes when the compile finishes.
type batchEntry struct {
	done  chan struct{}
	plan  *Plan
	sess  *Session
	feeds map[string]*tensor.Tensor
	err   error
}

func (e *batchEntry) readyNow() bool {
	select {
	case <-e.done:
		return true
	default:
		return false
	}
}

// Batcher coalesces SessionPool requests into batched executions.
type Batcher struct {
	opts  BatcherOptions
	pool  *SessionPool
	queue chan *batchRequest

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
	wg       sync.WaitGroup

	// closeMu makes enqueue and close mutually exclusive: run enqueues
	// under the read lock, close flips closed under the write lock before
	// signalling stop. Without it a request could slip into the queue after
	// the dispatcher's final drain and hang its caller forever.
	closeMu sync.RWMutex
	closed  bool

	mu      sync.Mutex
	entries map[int]*batchEntry

	// Telemetry (nil when the pool's telemetry is disabled).
	hBatchSize *obs.Histogram
	hLinger    *obs.Histogram
	cFormed    *obs.Counter
	cDegraded  *obs.Counter
}

// newBatcher wires a batching front-end onto sp and starts the dispatcher.
func newBatcher(sp *SessionPool, opts BatcherOptions) *Batcher {
	if opts.MaxBatch < 1 {
		opts.MaxBatch = 8
	}
	if opts.MaxLinger <= 0 {
		opts.MaxLinger = 2 * time.Millisecond
	}
	if opts.QueueDepth < 1 {
		opts.QueueDepth = 4 * opts.MaxBatch
	}
	b := &Batcher{
		opts:    opts,
		pool:    sp,
		queue:   make(chan *batchRequest, opts.QueueDepth),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
		entries: map[int]*batchEntry{},
	}
	if sp.gInflight != nil {
		b.hBatchSize = obs.DefaultRegistry.Histogram("batch.size." + sp.label)
		b.hLinger = obs.DefaultRegistry.Histogram("batch.linger_wait_ns")
		b.cFormed = obs.DefaultRegistry.Counter("batch.formed." + sp.label)
		b.cDegraded = obs.DefaultRegistry.Counter("batch.degraded." + sp.label)
	}
	go b.dispatch()
	return b
}

// MaxBatch reports the configured batch-size cap.
func (b *Batcher) MaxBatch() int { return b.opts.MaxBatch }

// Warm compiles (and caches) the plans for the given batch sizes,
// blocking until each is ready. Benchmarks call it so steady-state
// measurements exclude the one-time compile.
func (b *Batcher) Warm(sizes ...int) error {
	var firstErr error
	for _, n := range sizes {
		if n < 2 || n > b.opts.MaxBatch {
			continue
		}
		e := b.entry(n)
		<-e.done
		if e.err != nil && firstErr == nil {
			firstErr = e.err
		}
	}
	return firstErr
}

// entry returns the cache slot for batch size n, launching the singleflight
// compile on first request.
func (b *Batcher) entry(n int) *batchEntry {
	b.mu.Lock()
	e, ok := b.entries[n]
	if !ok {
		e = &batchEntry{done: make(chan struct{})}
		b.entries[n] = e
		b.wg.Add(1)
		go func() {
			defer b.wg.Done()
			defer close(e.done)
			plan, err := b.opts.PlanFor(n)
			if err != nil {
				e.err = err
				return
			}
			e.plan = plan
			e.sess = plan.NewSessionWith(b.pool.sessOpts)
			e.feeds = make(map[string]*tensor.Tensor, len(plan.inputs))
			for _, in := range plan.inputs {
				e.feeds[in.name] = tensor.New(in.shape...)
			}
		}()
	}
	b.mu.Unlock()
	return e
}

// testBatchEnqueuePause, when set (tests only), runs between the closed
// check and the enqueue — the window where a concurrent close could
// otherwise drain the queue first and strand the request.
var testBatchEnqueuePause func()

// run is SessionPool.Run routed through the batcher: bounded-queue
// admission, then wait for the dispatcher to resolve the request.
func (b *Batcher) run(ctx context.Context, feeds map[string]*tensor.Tensor) ([]*tensor.Tensor, error) {
	sp := b.pool
	req := sp.requests.Start(sp.model)
	start := time.Now()
	finish := func(err error, oc obs.Outcome) error {
		req.Finish(err)
		sp.slo.Record(sp.model, time.Since(start), oc)
		return err
	}
	if err := ctx.Err(); err != nil {
		mAdmissionShed.Inc()
		return nil, finish(err, obs.OutcomeDeadline)
	}
	// Feed shapes are validated against the per-request plan up front so a
	// malformed request can never poison a formed batch.
	if err := sp.plan.validateFeeds(feeds); err != nil {
		return nil, finish(err, obs.OutcomeError)
	}
	br := &batchRequest{ctx: ctx, feeds: feeds, res: make(chan batchResult, 1), start: start, req: req}
	b.closeMu.RLock()
	if b.closed {
		b.closeMu.RUnlock()
		return nil, finish(ErrPoolClosed, obs.OutcomeError)
	}
	if testBatchEnqueuePause != nil {
		testBatchEnqueuePause()
	}
	select {
	case b.queue <- br:
		b.closeMu.RUnlock()
		req.MarkAdmitted()
	default:
		b.closeMu.RUnlock()
		mAdmissionShed.Inc()
		req.MarkShed()
		return nil, finish(ErrOverloaded, obs.OutcomeShed)
	}
	select {
	case res := <-br.res:
		if res.err != nil {
			switch {
			case errors.Is(res.err, context.Canceled), errors.Is(res.err, context.DeadlineExceeded):
				mAdmissionShed.Inc()
				return nil, finish(res.err, obs.OutcomeDeadline)
			default:
				return nil, finish(res.err, obs.OutcomeError)
			}
		}
		return res.outs, finish(nil, obs.OutcomeOK)
	case <-ctx.Done():
		// The dispatcher may still pick the request up; its buffered result
		// channel absorbs the late completion.
		mAdmissionShed.Inc()
		return nil, finish(ctx.Err(), obs.OutcomeDeadline)
	}
}

// dispatch is the single batching loop: pull one request, linger for
// companions, execute the formed batch.
func (b *Batcher) dispatch() {
	defer close(b.done)
	for {
		var first *batchRequest
		select {
		case first = <-b.queue:
		case <-b.stop:
			b.drain()
			return
		}
		batch := append(make([]*batchRequest, 0, b.opts.MaxBatch), first)
		linger0 := time.Now()
		timer := time.NewTimer(b.opts.MaxLinger)
	gathering:
		for len(batch) < b.opts.MaxBatch {
			select {
			case r := <-b.queue:
				batch = append(batch, r)
			case <-timer.C:
				break gathering
			case <-b.stop:
				break gathering
			}
		}
		timer.Stop()
		if b.hLinger != nil {
			b.hLinger.Observe(float64(time.Since(linger0).Nanoseconds()))
		}
		// Drop members whose context expired while the batch formed.
		live := batch[:0]
		for _, r := range batch {
			if err := r.ctx.Err(); err != nil {
				r.complete(nil, err)
				continue
			}
			live = append(live, r)
		}
		b.execute(live)
		select {
		case <-b.stop:
			b.drain()
			return
		default:
		}
	}
}

// drain fails everything still queued once the pool is closing.
func (b *Batcher) drain() {
	for {
		select {
		case r := <-b.queue:
			r.complete(nil, ErrPoolClosed)
		default:
			return
		}
	}
}

// execute resolves one formed batch: batched run when that size's plan is
// cached and ready, per-request degradation otherwise.
func (b *Batcher) execute(live []*batchRequest) {
	n := len(live)
	if n == 0 {
		return
	}
	if n == 1 {
		b.observeBatch(1)
		live[0].req.SetBatchSize(1)
		b.fallback(live[0])
		return
	}
	e := b.entry(n)
	if !e.readyNow() || e.err != nil {
		// Plan still compiling (or failed to compile): degrade to the
		// pooled per-request sessions rather than stalling the dispatcher.
		if b.cDegraded != nil {
			b.cDegraded.Inc()
		}
		for _, r := range live {
			r.req.SetBatchSize(1)
			rr := r
			b.wg.Add(1)
			go func() {
				defer b.wg.Done()
				b.fallback(rr)
			}()
		}
		return
	}
	b.observeBatch(n)

	// Gather: copy each member's feed into its row of the batched input.
	t0 := time.Now()
	for _, in := range e.plan.inputs {
		dst := e.feeds[in.name]
		row := dst.Size() / n
		for i, r := range live {
			copy(dst.Data()[i*row:(i+1)*row], r.feeds[in.name].Data())
		}
	}
	gather := time.Since(t0)
	for _, r := range live {
		r.req.AddGather(gather)
		r.req.SetBatchSize(n)
	}

	// The batched run is cancelled only when every member has given up.
	runCtx, cancel := context.WithCancel(context.Background())
	watchDone := make(chan struct{})
	go func() {
		defer cancel()
		for _, r := range live {
			select {
			case <-r.ctx.Done():
			case <-watchDone:
				return
			}
		}
	}()
	outs, err := e.sess.RunContext(runCtx, e.feeds)
	close(watchDone)
	cancel()
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			for _, r := range live {
				cerr := r.ctx.Err()
				if cerr == nil {
					cerr = err
				}
				r.complete(nil, cerr)
			}
			return
		}
		// A poisoned batch must not fail its siblings collectively: retry
		// each member on the per-request path, where retries, re-exec and
		// the breaker handle the fault individually.
		if b.cDegraded != nil {
			b.cDegraded.Inc()
		}
		for _, r := range live {
			rr := r
			b.wg.Add(1)
			go func() {
				defer b.wg.Done()
				b.fallback(rr)
			}()
		}
		return
	}

	// Scatter: each member gets fresh row tensors it owns outright.
	for i, r := range live {
		t1 := time.Now()
		rows := make([]*tensor.Tensor, len(outs))
		for j, o := range outs {
			shape := append([]int{1}, o.Shape()[1:]...)
			rowElems := o.Size() / n
			rt := tensor.New(shape...)
			copy(rt.Data(), o.Data()[i*rowElems:(i+1)*rowElems])
			rows[j] = rt
		}
		r.req.AddScatter(time.Since(t1))
		r.complete(rows, nil)
	}
}

func (b *Batcher) observeBatch(n int) {
	if b.hBatchSize != nil {
		b.hBatchSize.Observe(float64(n))
		b.cFormed.Inc()
	}
}

// fallback executes one request on the pool's per-request sessions. The
// request already passed admission (the batching queue), so the acquire
// blocks instead of shedding on queue depth.
func (b *Batcher) fallback(r *batchRequest) {
	sp := b.pool
	var s *Session
	select {
	case s = <-sp.idle:
	case <-r.ctx.Done():
		r.complete(nil, r.ctx.Err())
		return
	}
	r.req.MarkAcquired()
	if sp.gInflight != nil {
		sp.gInflight.Set(float64(cap(sp.idle) - len(sp.idle)))
	}
	ctx := r.ctx
	if r.req != nil {
		ctx = obs.ContextWithRequest(ctx, r.req)
	}
	outs, err := s.RunContext(ctx, r.feeds)
	if err != nil {
		sp.release(s)
		r.complete(nil, err)
		return
	}
	res := make([]*tensor.Tensor, len(outs))
	for i, o := range outs {
		res[i] = o.Clone()
	}
	sp.release(s)
	r.complete(res, nil)
}

// close stops the dispatcher, fails queued requests with ErrPoolClosed,
// and waits for in-flight compiles and degraded runs to finish.
func (b *Batcher) close() {
	b.stopOnce.Do(func() {
		// Take the write lock before signalling stop: every in-flight run
		// has either finished its enqueue (the dispatcher's final drain will
		// sweep it) or will observe closed and shed — nothing can land in
		// the queue after the drain.
		b.closeMu.Lock()
		b.closed = true
		b.closeMu.Unlock()
		close(b.stop)
	})
	<-b.done
	b.wg.Wait()
}
