package runtime

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"unigpu/internal/graph"
	"unigpu/internal/obs"
	"unigpu/internal/sim"
)

// Fault-tolerance metrics. Handles are cached once; Registry.Reset zeroes
// them in place, so they stay valid across resets.
var (
	mFaultRetries = obs.DefaultRegistry.Counter("fault.retries")
	mCPUReexec    = obs.DefaultRegistry.Counter("fault.cpu_reexec")
	mBreakerState = obs.DefaultRegistry.Gauge("breaker.state")
)

// NodeError is a structured failure of one scheduled node: a recovered
// operator panic or a node-level execution error, attributed to the node
// and the device it was placed on. Panics carry the goroutine stack.
type NodeError struct {
	Node   string
	Device graph.DeviceClass
	Cause  error
	Stack  []byte
}

func (e *NodeError) Error() string {
	if len(e.Stack) > 0 {
		return fmt.Sprintf("runtime: node %q (%s): %v\n%s", e.Node, e.Device, e.Cause, e.Stack)
	}
	return fmt.Sprintf("runtime: node %q (%s): %v", e.Node, e.Device, e.Cause)
}

func (e *NodeError) Unwrap() error { return e.Cause }

// BreakerState is the circuit breaker's tri-state.
type BreakerState int32

const (
	// BreakerClosed: the device is healthy; GPU dispatches proceed.
	BreakerClosed BreakerState = iota
	// BreakerOpen: the device is quarantined; GPU-placed nodes route to
	// the CPU without attempting a dispatch until probation elapses.
	BreakerOpen
	// BreakerHalfOpen: probation elapsed and one probe dispatch is in
	// flight; its outcome closes or re-opens the breaker.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return fmt.Sprintf("state(%d)", int32(s))
}

// BreakerOptions configures a circuit breaker.
type BreakerOptions struct {
	// Threshold is how many consecutive persistent GPU-node failures open
	// the breaker (default 3).
	Threshold int
	// Probation is how long the breaker stays open before letting one
	// probe dispatch through (default 250ms).
	Probation time.Duration
	// Device labels the breaker's state gauge with the replica it guards
	// (breaker.state.<device>), so a fleet scrape distinguishes which
	// device is quarantined. Empty keeps the single-device gauge name
	// breaker.state unchanged.
	Device string
}

// Breaker is a per-device circuit breaker. While closed, GPU dispatches
// proceed and persistent failures accumulate; at Threshold consecutive
// failures it opens, quarantining the device so GPU-placed nodes route
// straight to the CPU. After Probation it half-opens: exactly one dispatch
// probes the device, and its outcome closes or re-opens the breaker.
// A Breaker is safe for concurrent use and is meant to be shared by every
// session serving the same device (SessionPool does this); a nil *Breaker
// always allows dispatch. The gauge breaker.state tracks transitions
// (0 closed, 1 open, 2 half-open).
type Breaker struct {
	opts  BreakerOptions
	state atomic.Int32
	gauge *obs.Gauge

	mu       sync.Mutex
	failures int
	openedAt time.Time
}

// NewBreaker creates a closed breaker; zero options select the defaults.
func NewBreaker(opts BreakerOptions) *Breaker {
	if opts.Threshold <= 0 {
		opts.Threshold = 3
	}
	if opts.Probation <= 0 {
		opts.Probation = 250 * time.Millisecond
	}
	g := mBreakerState
	if opts.Device != "" {
		g = obs.DefaultRegistry.Gauge("breaker.state." + opts.Device)
		// A per-device gauge reads closed from birth; the legacy shared
		// gauge keeps its set-on-first-transition behaviour (the metrics
		// goldens depend on it).
		g.Set(float64(BreakerClosed))
	}
	return &Breaker{opts: opts, gauge: g}
}

// State returns the breaker's current state.
func (b *Breaker) State() BreakerState {
	if b == nil {
		return BreakerClosed
	}
	return BreakerState(b.state.Load())
}

func (b *Breaker) setState(s BreakerState) {
	b.state.Store(int32(s))
	b.gauge.Set(float64(s))
}

// Expire ends an open breaker's probation immediately, so the next Allow
// caller becomes the half-open probe. The fleet's heal scheduler calls it
// right after a driver reset (FaultInjector.Heal), replacing the passive
// probation timer with its own probe schedule; a closed or half-open
// breaker is unchanged.
func (b *Breaker) Expire() {
	if b == nil {
		return
	}
	b.mu.Lock()
	if BreakerState(b.state.Load()) == BreakerOpen {
		b.openedAt = time.Time{}
	}
	b.mu.Unlock()
}

// Allow reports whether a GPU dispatch may be attempted. Closed: always.
// Open: false until probation elapses, then the first caller transitions
// the breaker to half-open and becomes the probe. Half-open: false (a
// probe is already in flight). The fast path is one atomic load.
func (b *Breaker) Allow() bool {
	if b == nil {
		return true
	}
	if BreakerState(b.state.Load()) == BreakerClosed {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch BreakerState(b.state.Load()) {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if time.Since(b.openedAt) < b.opts.Probation {
			return false
		}
		b.setState(BreakerHalfOpen)
		return true // this caller is the probe
	default: // half-open, probe in flight
		return false
	}
}

// Success records a successful GPU dispatch: it closes a half-open breaker
// and resets the consecutive-failure count.
func (b *Breaker) Success() {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.failures = 0
	if BreakerState(b.state.Load()) != BreakerClosed {
		b.setState(BreakerClosed)
	}
	b.mu.Unlock()
}

// Failure records a persistent GPU-node failure (retries exhausted or the
// device lost). It re-opens a half-open breaker immediately and opens a
// closed one once Threshold consecutive failures accumulate.
func (b *Breaker) Failure() {
	if b == nil {
		return
	}
	b.mu.Lock()
	switch BreakerState(b.state.Load()) {
	case BreakerHalfOpen:
		b.openedAt = time.Now()
		b.setState(BreakerOpen)
	case BreakerClosed:
		b.failures++
		if b.failures >= b.opts.Threshold {
			b.openedAt = time.Now()
			b.setState(BreakerOpen)
		}
	}
	b.mu.Unlock()
}

// sleepCtx sleeps for d or until ctx is cancelled; it reports whether the
// full duration elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	select {
	case <-ctx.Done():
		t.Stop()
		return false
	case <-t.C:
		return true
	}
}

// jitter is a tiny lock-free xorshift PRNG for backoff jitter; it avoids
// math/rand so concurrent worker lanes never contend on a shared source.
func (s *Session) jitter() uint64 {
	for {
		old := s.jitterState.Load()
		x := old
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		if s.jitterState.CompareAndSwap(old, x) {
			return x
		}
	}
}

// backoffFor returns the jittered exponential backoff before retry
// `attempt` (0-based): base<<attempt plus up to one base of jitter.
func (s *Session) backoffFor(attempt int) time.Duration {
	base := s.retryBackoff
	if attempt > 10 {
		attempt = 10
	}
	d := base << uint(attempt)
	return d + time.Duration(s.jitter()%uint64(base+1))
}

// gpuGate passes one GPU-placed node through the device-health machinery:
// the circuit breaker, the fault injector, and bounded jittered retries of
// transient faults. It returns ok=true when the dispatch succeeded and the
// node may execute "on the GPU"; ok=false when the node must re-execute on
// the CPU lane instead (persistent fault, or quarantined device). A
// non-nil error is terminal (context cancelled during a hang or backoff).
func (s *Session) gpuGate(ctx context.Context, i int32) (ok bool, err error) {
	pn := &s.plan.nodes[i]
	req := s.req // sampled request recorder, nil on the fault-free hot path
	if !s.breaker.Allow() {
		return false, nil // quarantined: route to CPU without dispatching
	}
	for attempt := 0; ; attempt++ {
		var t0 time.Time
		if req != nil {
			t0 = time.Now()
		}
		derr := s.faults.Dispatch(ctx, pn.name)
		if derr == nil {
			s.breaker.Success()
			return true, nil
		}
		if req != nil {
			// Attribute the failed dispatch — including an injected queue
			// hang — to the request's retry segment.
			req.AddRetry(time.Since(t0))
		}
		if ctx.Err() != nil {
			return false, ctx.Err()
		}
		var f *sim.Fault
		if errors.As(derr, &f) && f.Transient() && attempt < s.maxRetries {
			mFaultRetries.Inc()
			if req != nil {
				t0 = time.Now()
			}
			slept := sleepCtx(ctx, s.backoffFor(attempt))
			if req != nil {
				req.AddRetry(time.Since(t0)) // backoff is retry time too
			}
			if !slept {
				return false, ctx.Err()
			}
			continue
		}
		// Persistent: retries exhausted or the device is lost.
		s.breaker.Failure()
		return false, nil
	}
}
