package runtime_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"unigpu/internal/obs"
	"unigpu/internal/runtime"
	"unigpu/internal/sim"
)

// Regression tests for three serving-edge bugs: a wait-queue gauge that
// stuck at its last value when a queued waiter left on a deadline, context
// errors misclassified as overload sheds in the SLO window, and a wrongful
// shed when a session was released between the admission fast path and the
// queue-depth check (whitebox twin in pool_internal_test.go).

// TestPoolWaitQueueGaugeRefreshOnExit: the pool.wait_queue.<model> gauge
// must return to the real waiter count when a queued request leaves on its
// deadline — not only when the next waiter happens to enter the queue.
func TestPoolWaitQueueGaugeRefreshOnExit(t *testing.T) {
	g, feeds := buildSerialOpsGraph()
	plan, err := runtime.NewPlan(g)
	if err != nil {
		t.Fatal(err)
	}
	inj := sim.NewFaultInjector(sim.FaultConfig{HangLatency: 200 * time.Millisecond}).
		Script(sim.FaultQueueHang)
	pool := runtime.NewSessionPool(plan, runtime.PoolOptions{
		Sessions: 1, QueueDepth: 4,
		Session: runtime.SessionOptions{
			Faults: inj, RetryBackoff: time.Microsecond, Model: "gaugetest",
		},
	})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := pool.Run(context.Background(), feeds); err != nil {
			t.Errorf("held run: %v", err)
		}
	}()
	time.Sleep(20 * time.Millisecond) // the hold is now inside the hang
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := pool.Run(ctx, feeds); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued past deadline: got %v, want DeadlineExceeded", err)
	}
	// The deadline waiter is gone; the gauge must say so immediately.
	if v, ok := obs.DefaultRegistry.Gauge("pool.wait_queue.gaugetest").Value(); !ok || v != 0 {
		t.Fatalf("wait-queue gauge after deadline exit: %v (ok=%v), want 0", v, ok)
	}
	wg.Wait()
}

// TestPoolOutcomeClassification: the SLO window must count an expired or
// cancelled request as a deadline outcome and reserve the shed counter for
// true ErrOverloaded admission sheds.
func TestPoolOutcomeClassification(t *testing.T) {
	g, feeds := buildSerialOpsGraph()
	plan, err := runtime.NewPlan(g)
	if err != nil {
		t.Fatal(err)
	}
	slo := obs.NewSLOMonitor(obs.SLOOptions{})
	inj := sim.NewFaultInjector(sim.FaultConfig{HangLatency: 150 * time.Millisecond}).
		Script(sim.FaultQueueHang)
	pool := runtime.NewSessionPool(plan, runtime.PoolOptions{
		Sessions: 1, QueueDepth: 0, SLO: slo,
		Session: runtime.SessionOptions{
			Faults: inj, RetryBackoff: time.Microsecond, Model: "octest",
		},
	})

	// 1: an already-expired context is a deadline outcome, not a shed.
	expired, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Millisecond))
	defer cancel()
	if _, err := pool.Run(expired, feeds); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired run: got %v, want DeadlineExceeded", err)
	}
	st := slo.Stats("octest")
	if st.Deadline != 1 || st.Shed != 0 {
		t.Fatalf("after expired run: deadline=%d shed=%d, want 1/0", st.Deadline, st.Shed)
	}

	// 2: a queue-full rejection is a shed outcome.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := pool.Run(context.Background(), feeds); err != nil {
			t.Errorf("held run: %v", err)
		}
	}()
	time.Sleep(20 * time.Millisecond) // the hold is now inside the hang
	if _, err := pool.Run(context.Background(), feeds); !errors.Is(err, runtime.ErrOverloaded) {
		t.Fatalf("overloaded run: got %v, want ErrOverloaded", err)
	}
	st = slo.Stats("octest")
	if st.Deadline != 1 || st.Shed != 1 {
		t.Fatalf("after overload: deadline=%d shed=%d, want 1/1", st.Deadline, st.Shed)
	}
	wg.Wait()
}
