package runtime_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"unigpu/internal/obs"
	"unigpu/internal/runtime"
	"unigpu/internal/sim"
)

// TestPoolRunCopiesOutputs: pool results own their storage — two
// back-to-back runs through the same pooled session must not alias.
func TestPoolRunCopiesOutputs(t *testing.T) {
	g, feeds := buildSerialOpsGraph()
	plan, err := runtime.NewPlan(g)
	if err != nil {
		t.Fatal(err)
	}
	want, err := executeReference(g, feeds)
	if err != nil {
		t.Fatal(err)
	}
	pool := runtime.NewSessionPool(plan, runtime.PoolOptions{Sessions: 1})
	a, err := pool.Run(context.Background(), feeds)
	if err != nil {
		t.Fatal(err)
	}
	b, err := pool.Run(context.Background(), feeds)
	if err != nil {
		t.Fatal(err)
	}
	tensorsEqual(t, "pool run a", a, want)
	tensorsEqual(t, "pool run b", b, want)
	if &a[0].Data()[0] == &b[0].Data()[0] {
		t.Fatal("pool outputs must be copies, not arena-backed aliases")
	}
}

// TestPoolShedsWhenOverloaded: with every session busy and the queue
// full, requests shed immediately with ErrOverloaded and the
// admission.shed counter grows.
func TestPoolShedsWhenOverloaded(t *testing.T) {
	g, feeds := buildSerialOpsGraph()
	plan, err := runtime.NewPlan(g)
	if err != nil {
		t.Fatal(err)
	}
	// One session, no queue; the only session is pinned down by a long
	// injected queue hang.
	inj := sim.NewFaultInjector(sim.FaultConfig{HangLatency: 300 * time.Millisecond}).
		Script(sim.FaultQueueHang)
	pool := runtime.NewSessionPool(plan, runtime.PoolOptions{
		Sessions: 1, QueueDepth: 0,
		Session: runtime.SessionOptions{Faults: inj, RetryBackoff: time.Microsecond},
	})
	shed0 := obs.DefaultRegistry.Counter("admission.shed").Value()

	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		close(started)
		if _, err := pool.Run(context.Background(), feeds); err != nil {
			t.Errorf("held run: %v", err)
		}
	}()
	<-started
	time.Sleep(50 * time.Millisecond) // the hold is now inside the hang
	if _, err := pool.Run(context.Background(), feeds); !errors.Is(err, runtime.ErrOverloaded) {
		t.Fatalf("got %v, want ErrOverloaded", err)
	}
	if d := obs.DefaultRegistry.Counter("admission.shed").Value() - shed0; d < 1 {
		t.Fatalf("admission.shed grew by %d, want >= 1", d)
	}
	wg.Wait()
	// Pool drained: requests are admitted again.
	if _, err := pool.Run(context.Background(), feeds); err != nil {
		t.Fatalf("post-drain run: %v", err)
	}
}

// TestPoolQueueAdmitsWithinDepth: a request that fits in the wait queue
// blocks until a session frees and then succeeds.
func TestPoolQueueAdmitsWithinDepth(t *testing.T) {
	g, feeds := buildSerialOpsGraph()
	plan, err := runtime.NewPlan(g)
	if err != nil {
		t.Fatal(err)
	}
	inj := sim.NewFaultInjector(sim.FaultConfig{HangLatency: 100 * time.Millisecond}).
		Script(sim.FaultQueueHang)
	pool := runtime.NewSessionPool(plan, runtime.PoolOptions{
		Sessions: 1, QueueDepth: 1,
		Session: runtime.SessionOptions{Faults: inj, RetryBackoff: time.Microsecond},
	})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := pool.Run(context.Background(), feeds); err != nil {
			t.Errorf("held run: %v", err)
		}
	}()
	time.Sleep(20 * time.Millisecond)
	if _, err := pool.Run(context.Background(), feeds); err != nil {
		t.Fatalf("queued run within depth must succeed, got %v", err)
	}
	wg.Wait()
}

// TestPoolDeadlineShedding: an expired deadline sheds before running, and
// a deadline that fires while queued sheds the waiter.
func TestPoolDeadlineShedding(t *testing.T) {
	g, feeds := buildSerialOpsGraph()
	plan, err := runtime.NewPlan(g)
	if err != nil {
		t.Fatal(err)
	}
	pool := runtime.NewSessionPool(plan, runtime.PoolOptions{Sessions: 1, QueueDepth: 4})
	expired, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Millisecond))
	defer cancel()
	if _, err := pool.Run(expired, feeds); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired deadline: got %v, want DeadlineExceeded", err)
	}

	// Pin the only session, then queue a request whose deadline fires
	// while it waits.
	inj := sim.NewFaultInjector(sim.FaultConfig{HangLatency: 200 * time.Millisecond}).
		Script(sim.FaultQueueHang)
	pool = runtime.NewSessionPool(plan, runtime.PoolOptions{
		Sessions: 1, QueueDepth: 4,
		Session: runtime.SessionOptions{Faults: inj, RetryBackoff: time.Microsecond},
	})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := pool.Run(context.Background(), feeds); err != nil {
			t.Errorf("held run: %v", err)
		}
	}()
	time.Sleep(20 * time.Millisecond)
	ctx, cancel2 := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel2()
	if _, err := pool.Run(ctx, feeds); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued past deadline: got %v, want DeadlineExceeded", err)
	}
	wg.Wait()
}

// TestPoolConcurrentServing (run with -race): many clients through a small
// pool with faults injected; admitted requests must return bit-identical
// outputs, shed ones exactly ErrOverloaded, and the shared breaker keeps a
// consistent state.
func TestPoolConcurrentServing(t *testing.T) {
	g, feeds := buildSerialOpsGraph()
	plan, err := runtime.NewPlan(g)
	if err != nil {
		t.Fatal(err)
	}
	want, err := executeReference(g, feeds)
	if err != nil {
		t.Fatal(err)
	}
	inj := sim.NewFaultInjector(sim.FaultConfig{Seed: 3, Rate: 0.2, HangLatency: 20 * time.Microsecond})
	pool := runtime.NewSessionPool(plan, runtime.PoolOptions{
		Sessions: 3, QueueDepth: 8,
		Session: runtime.SessionOptions{Faults: inj, RetryBackoff: 5 * time.Microsecond},
	})
	if pool.Breaker() == nil {
		t.Fatal("fault-injected pool must install a shared breaker")
	}
	const clients, requests = 8, 20
	var wg sync.WaitGroup
	wg.Add(clients)
	for c := 0; c < clients; c++ {
		go func() {
			defer wg.Done()
			for r := 0; r < requests; r++ {
				outs, err := pool.Run(context.Background(), feeds)
				if errors.Is(err, runtime.ErrOverloaded) {
					continue // shed under load: expected
				}
				if err != nil {
					t.Errorf("pool run: %v", err)
					return
				}
				for i, v := range want[0].Data() {
					if outs[0].Data()[i] != v {
						t.Errorf("output differs at %d", i)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

// TestPoolDeviceLabels (fleet satellite): PoolOptions.Device suffixes the
// pool's metrics, health entry, and pool-installed breaker gauge with the
// replica name, so a fleet scrape can tell devices apart; an unset Device
// keeps the original single-device names (see TestTelemetryWiring and the
// Prometheus golden for the legacy shape).
func TestPoolDeviceLabels(t *testing.T) {
	g, feeds := buildSerialOpsGraph()
	plan, err := runtime.NewPlan(g)
	if err != nil {
		t.Fatal(err)
	}
	inj := sim.NewFaultInjector(sim.FaultConfig{})
	so := faultSessionOpts(inj)
	so.Model = "labelled"
	sp := runtime.NewSessionPool(plan, runtime.PoolOptions{
		Sessions: 1, Device: "dev-a", Session: so,
	})
	if _, err := sp.Run(context.Background(), feeds); err != nil {
		t.Fatal(err)
	}
	if v, ok := obs.DefaultRegistry.Gauge("pool.in_flight.labelled.dev-a").Value(); !ok || v != 0 {
		t.Fatalf("pool.in_flight.labelled.dev-a = %v %v, want 0 after drain", v, ok)
	}
	if v, ok := obs.DefaultRegistry.Gauge("breaker.state.dev-a").Value(); !ok || v != float64(runtime.BreakerClosed) {
		t.Fatalf("breaker.state.dev-a = %v %v, want closed", v, ok)
	}
	// Check only this pool's entry: earlier tests in the package may have
	// left other health sources registered (and unhealthy).
	_, checks := obs.Health()
	st, present := checks["pool.labelled.dev-a"]
	if !present {
		t.Fatalf("health entry pool.labelled.dev-a missing; have %v", keysOf(checks))
	}
	if !st.OK {
		t.Fatalf("health entry pool.labelled.dev-a not ok: %+v", st)
	}
	obs.UnregisterHealth("pool.labelled.dev-a")
}

func keysOf(m map[string]obs.HealthStatus) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
