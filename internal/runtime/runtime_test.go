package runtime_test

import (
	"testing"

	"unigpu/internal/graph"
	"unigpu/internal/ops"
	"unigpu/internal/runtime"
	"unigpu/internal/tensor"
)

func TestExecuteConstantsAndProfile(t *testing.T) {
	g := graph.New()
	in := g.Input("data", 1, 4)
	c := tensor.FromData([]float32{1, 2, 3, 4}, 1, 4)
	sum := g.Apply("sum", &graph.AddOp{}, in, g.Constant("c", c))
	relu := g.Apply("relu", &graph.ActivationOp{Act: ops.ActReLU}, sum)
	g.SetOutputs(relu)

	feed := tensor.FromData([]float32{-5, 0, 1, 2}, 1, 4)
	res, err := runtime.Execute(g, map[string]*tensor.Tensor{"data": feed})
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{0, 2, 4, 6}
	for i, v := range want {
		if res.Outputs[0].Data()[i] != v {
			t.Fatalf("output = %v, want %v", res.Outputs[0].Data(), want)
		}
	}
	if len(res.Profile) != 2 {
		t.Fatalf("profile entries = %d, want 2", len(res.Profile))
	}
	if res.Profile[0].Kind != "add" || res.Profile[1].Kind != "relu" {
		t.Fatalf("profile kinds = %v %v", res.Profile[0].Kind, res.Profile[1].Kind)
	}
	if res.Profile[0].OutBytes != 16 {
		t.Fatalf("profile bytes = %d", res.Profile[0].OutBytes)
	}
}

func TestExecuteMultipleOutputs(t *testing.T) {
	g := graph.New()
	in := g.Input("data", 2, 2)
	a := g.Apply("a", &graph.ActivationOp{Act: ops.ActReLU}, in)
	b := g.Apply("b", &graph.SigmoidOp{}, in)
	g.SetOutputs(a, b)
	feed := tensor.New(2, 2)
	res, err := runtime.Execute(g, map[string]*tensor.Tensor{"data": feed})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outputs) != 2 {
		t.Fatalf("outputs = %d", len(res.Outputs))
	}
}

func TestExecuteInvalidGraph(t *testing.T) {
	g := graph.New()
	in := g.Input("data", 1)
	orphan := graph.New().Input("other", 1)
	bad := g.Apply("bad", &graph.AddOp{}, in, orphan)
	g.SetOutputs(bad)
	if _, err := runtime.Execute(g, map[string]*tensor.Tensor{"data": tensor.New(1)}); err == nil {
		t.Fatal("cross-graph reference must fail validation")
	}
}

func TestOutputsStayLiveDespitePlanning(t *testing.T) {
	// An intermediate that is also a graph output must not be freed.
	g := graph.New()
	in := g.Input("data", 1, 8)
	mid := g.Apply("mid", &graph.ActivationOp{Act: ops.ActReLU}, in)
	end := g.Apply("end", &graph.SigmoidOp{}, mid)
	g.SetOutputs(mid, end)
	feed := tensor.New(1, 8)
	feed.Fill(1)
	res, err := runtime.Execute(g, map[string]*tensor.Tensor{"data": feed})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs[0] == nil || res.Outputs[0].At(0, 0) != 1 {
		t.Fatal("mid output should survive memory planning")
	}
}
