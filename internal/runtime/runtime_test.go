package runtime_test

import (
	"testing"

	"unigpu/internal/graph"
	"unigpu/internal/obs"
	"unigpu/internal/ops"
	"unigpu/internal/runtime"
	"unigpu/internal/tensor"
)

func TestExecuteConstantsAndProfile(t *testing.T) {
	g := graph.New()
	in := g.Input("data", 1, 4)
	c := tensor.FromData([]float32{1, 2, 3, 4}, 1, 4)
	sum := g.Apply("sum", &graph.AddOp{}, in, g.Constant("c", c))
	relu := g.Apply("relu", &graph.ActivationOp{Act: ops.ActReLU}, sum)
	g.SetOutputs(relu)

	feed := tensor.FromData([]float32{-5, 0, 1, 2}, 1, 4)
	res, err := runtime.Execute(g, map[string]*tensor.Tensor{"data": feed})
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{0, 2, 4, 6}
	for i, v := range want {
		if res.Outputs[0].Data()[i] != v {
			t.Fatalf("output = %v, want %v", res.Outputs[0].Data(), want)
		}
	}
	if len(res.Profile) != 2 {
		t.Fatalf("profile entries = %d, want 2", len(res.Profile))
	}
	if res.Profile[0].Kind != "add" || res.Profile[1].Kind != "relu" {
		t.Fatalf("profile kinds = %v %v", res.Profile[0].Kind, res.Profile[1].Kind)
	}
	if res.Profile[0].OutBytes != 16 {
		t.Fatalf("profile bytes = %d", res.Profile[0].OutBytes)
	}
}

func TestExecuteMultipleOutputs(t *testing.T) {
	g := graph.New()
	in := g.Input("data", 2, 2)
	a := g.Apply("a", &graph.ActivationOp{Act: ops.ActReLU}, in)
	b := g.Apply("b", &graph.SigmoidOp{}, in)
	g.SetOutputs(a, b)
	feed := tensor.New(2, 2)
	res, err := runtime.Execute(g, map[string]*tensor.Tensor{"data": feed})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outputs) != 2 {
		t.Fatalf("outputs = %d", len(res.Outputs))
	}
}

func TestExecuteInvalidGraph(t *testing.T) {
	g := graph.New()
	in := g.Input("data", 1)
	orphan := graph.New().Input("other", 1)
	bad := g.Apply("bad", &graph.AddOp{}, in, orphan)
	g.SetOutputs(bad)
	if _, err := runtime.Execute(g, map[string]*tensor.Tensor{"data": tensor.New(1)}); err == nil {
		t.Fatal("cross-graph reference must fail validation")
	}
}

func TestPeakLiveRefCounted(t *testing.T) {
	// A chain a -> b -> c of equally sized intermediates: naive liveness
	// (every intermediate held to the end) would claim 3x the tensor size,
	// but reference counting frees each one after its single consumer, so
	// at most two are ever live together.
	g := graph.New()
	in := g.Input("data", 1, 256) // 1 KiB per intermediate
	a := g.Apply("a", &graph.ActivationOp{Act: ops.ActReLU}, in)
	b := g.Apply("b", &graph.ActivationOp{Act: ops.ActReLU}, a)
	c := g.Apply("c", &graph.ActivationOp{Act: ops.ActReLU}, b)
	g.SetOutputs(c)

	feed := tensor.New(1, 256)
	res, err := runtime.Execute(g, map[string]*tensor.Tensor{"data": feed})
	if err != nil {
		t.Fatal(err)
	}
	const tensorBytes = 256 * 4
	naive := 3 * tensorBytes
	if res.PeakLive != 2*tensorBytes {
		t.Fatalf("PeakLive = %d, want %d (naive liveness would say %d)",
			res.PeakLive, 2*tensorBytes, naive)
	}
}

func TestPeakLiveDiamond(t *testing.T) {
	// A diamond: both branches are live simultaneously (plus the join),
	// and the branch inputs are only freed once BOTH consumers have run.
	g := graph.New()
	in := g.Input("data", 1, 64) // 256 B per intermediate
	top := g.Apply("top", &graph.ActivationOp{Act: ops.ActReLU}, in)
	l := g.Apply("l", &graph.ActivationOp{Act: ops.ActReLU}, top)
	r := g.Apply("r", &graph.SigmoidOp{}, top)
	join := g.Apply("join", &graph.AddOp{}, l, r)
	g.SetOutputs(join)

	res, err := runtime.Execute(g, map[string]*tensor.Tensor{"data": tensor.New(1, 64)})
	if err != nil {
		t.Fatal(err)
	}
	// Executing join: top freed (after l and r both ran), but l, r and
	// join's output coexist.
	const tb = 64 * 4
	if res.PeakLive != 3*tb {
		t.Fatalf("PeakLive = %d, want %d", res.PeakLive, 3*tb)
	}
}

func TestProfileDeviceAttribution(t *testing.T) {
	// Placement with a forced CPU fallback inserts device_copy nodes; the
	// execution profile must attribute every node (including the copies)
	// to the device the placement pass chose.
	g := graph.New()
	in := g.Input("data", 1, 8)
	a := g.Apply("a", &graph.ActivationOp{Act: ops.ActReLU}, in)
	s := g.Apply("s", &graph.SigmoidOp{}, a)
	b := g.Apply("b", &graph.ActivationOp{Act: ops.ActReLU}, s)
	g.SetOutputs(b)

	copies := graph.PlaceDevices(g, graph.PlacementOptions{
		FallbackKinds: map[string]bool{"sigmoid": true},
	})
	if copies != 2 {
		t.Fatalf("copies inserted = %d, want 2 (GPU->CPU and CPU->GPU)", copies)
	}

	res, err := runtime.Execute(g, map[string]*tensor.Tensor{"data": tensor.New(1, 8)})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]runtime.NodeProfile{}
	for _, p := range res.Profile {
		byName[p.Name] = p
	}
	wantDev := map[string]graph.DeviceClass{
		"a":      graph.OnGPU,
		"a_copy": graph.OnCPU, // copy runs on (is attributed to) its consumer's device
		"s":      graph.OnCPU,
		"s_copy": graph.OnGPU,
		"b":      graph.OnGPU,
	}
	if len(byName) != len(wantDev) {
		t.Fatalf("profile has %d entries, want %d: %v", len(byName), len(wantDev), res.Profile)
	}
	for name, want := range wantDev {
		p, ok := byName[name]
		if !ok {
			t.Fatalf("profile missing node %q", name)
		}
		if p.Device != want {
			t.Errorf("node %q attributed to %v, want %v", name, p.Device, want)
		}
	}
	if byName["a_copy"].Kind != "device_copy" {
		t.Errorf("a_copy kind = %q", byName["a_copy"].Kind)
	}
}

func TestOutputsStayLiveDespitePlanning(t *testing.T) {
	// An intermediate that is also a graph output must not be freed.
	g := graph.New()
	in := g.Input("data", 1, 8)
	mid := g.Apply("mid", &graph.ActivationOp{Act: ops.ActReLU}, in)
	end := g.Apply("end", &graph.SigmoidOp{}, mid)
	g.SetOutputs(mid, end)
	feed := tensor.New(1, 8)
	feed.Fill(1)
	res, err := runtime.Execute(g, map[string]*tensor.Tensor{"data": feed})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs[0] == nil || res.Outputs[0].At(0, 0) != 1 {
		t.Fatal("mid output should survive memory planning")
	}
}

// buildChain makes an n-node elementwise chain for overhead benchmarks.
func buildChain(n int) (*graph.Graph, map[string]*tensor.Tensor) {
	g := graph.New()
	cur := g.Input("data", 1, 64)
	feed := tensor.New(1, 64)
	for i := 0; i < n; i++ {
		cur = g.Apply("n"+string(rune('a'+i%26))+string(rune('0'+i/26)),
			&graph.ActivationOp{Act: ops.ActReLU}, cur)
	}
	g.SetOutputs(cur)
	return g, map[string]*tensor.Tensor{"data": feed}
}

// BenchmarkExecuteObsDisabled is the default configuration: the no-op
// exporter. Compare against BenchmarkExecuteObsEnabled to bound the
// tracing overhead (the ISSUE-1 acceptance criterion).
func BenchmarkExecuteObsDisabled(b *testing.B) {
	g, feeds := buildChain(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := runtime.Execute(g, feeds); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExecuteObsEnabled measures the same execution with live spans
// and the exec.node_wall_ns histogram.
func BenchmarkExecuteObsEnabled(b *testing.B) {
	obs.Enable()
	defer func() {
		obs.Disable()
		obs.Reset()
	}()
	g, feeds := buildChain(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if i%64 == 0 {
			obs.DefaultTracer.Reset() // bound span accumulation
		}
		if _, err := runtime.Execute(g, feeds); err != nil {
			b.Fatal(err)
		}
	}
}

func TestPeakLiveDeadBranchFreed(t *testing.T) {
	// A node with zero consumers that is not a graph output must be freed
	// immediately after it runs; it used to stay live to the end of the
	// run and inflate PeakLive.
	g := graph.New()
	in := g.Input("data", 1, 256)
	a := g.Apply("a", &graph.ActivationOp{Act: ops.ActReLU}, in)
	g.Apply("dead", &graph.SigmoidOp{}, a) // no consumers, not an output
	b := g.Apply("b", &graph.ActivationOp{Act: ops.ActReLU}, a)
	c := g.Apply("c", &graph.ActivationOp{Act: ops.ActReLU}, b)
	g.SetOutputs(c)

	res, err := runtime.Execute(g, map[string]*tensor.Tensor{"data": tensor.New(1, 256)})
	if err != nil {
		t.Fatal(err)
	}
	// Worst coexistence: {a, dead} or {a, b} or {b, c} — never three.
	const tb = 256 * 4
	if res.PeakLive != 2*tb {
		t.Fatalf("PeakLive = %d, want %d (dead branch must be freed immediately)", res.PeakLive, 2*tb)
	}
}
