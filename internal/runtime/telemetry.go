package runtime

import (
	"sync"

	"unigpu/internal/obs"
)

// Compiled-plan registry behind the /debug/plans endpoint: every NewPlan
// files its metadata here (bounded; oldest dropped) so a live serving
// process can be asked what it has compiled. Plans hold no arenas —
// sessions do — so retaining them is cheap.

const maxRegisteredPlans = 64

var (
	plansMu  sync.Mutex
	plansReg []*Plan
)

func init() {
	obs.RegisterDebug("plans", func() any { return PlanInfos() })
}

func registerPlan(p *Plan) {
	plansMu.Lock()
	plansReg = append(plansReg, p)
	if len(plansReg) > maxRegisteredPlans {
		plansReg = plansReg[len(plansReg)-maxRegisteredPlans:]
	}
	plansMu.Unlock()
}

// SetLabel names the plan in telemetry (the /debug/plans dump); unigpu
// sets it to the compiled model's name.
func (p *Plan) SetLabel(label string) {
	p.label.Store(&label)
}

// Label returns the telemetry label ("" until SetLabel).
func (p *Plan) Label() string {
	if l := p.label.Load(); l != nil {
		return *l
	}
	return ""
}

// PlanInfo is the compiled-plan metadata dumped at /debug/plans.
type PlanInfo struct {
	Label             string         `json:"label,omitempty"`
	Nodes             int            `json:"nodes"`
	GPUNodes          int            `json:"gpu_nodes"`
	CPUNodes          int            `json:"cpu_nodes"`
	Inputs            int            `json:"inputs"`
	Outputs           int            `json:"outputs"`
	ArenaBytes        int            `json:"arena_bytes"`
	PeakLiveBytes     int            `json:"peak_live_bytes"`
	IntermediateBytes int            `json:"intermediate_bytes"`
	Kernels           map[string]int `json:"kernels,omitempty"` // selected conv kernels by name
}

// Info summarizes the plan for telemetry.
func (p *Plan) Info() PlanInfo {
	info := PlanInfo{
		Label:             p.Label(),
		Nodes:             len(p.nodes),
		Inputs:            len(p.inputs),
		Outputs:           len(p.outputs),
		ArenaBytes:        p.ArenaBytes(),
		PeakLiveBytes:     p.peakLive,
		IntermediateBytes: p.interBytes,
	}
	for i := range p.nodes {
		pn := &p.nodes[i]
		if pn.gpu {
			info.GPUNodes++
		} else {
			info.CPUNodes++
		}
		if pn.conv != nil {
			if info.Kernels == nil {
				info.Kernels = map[string]int{}
			}
			info.Kernels[pn.conv.Kernel().String()]++
		}
	}
	return info
}

// PlanInfos snapshots the registered plans, oldest first.
func PlanInfos() []PlanInfo {
	plansMu.Lock()
	ps := make([]*Plan, len(plansReg))
	copy(ps, plansReg)
	plansMu.Unlock()
	out := make([]PlanInfo, len(ps))
	for i, p := range ps {
		out[i] = p.Info()
	}
	return out
}
