//go:build !race

package runtime_test

const raceEnabled = false
