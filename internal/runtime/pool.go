package runtime

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"unigpu/internal/obs"
	"unigpu/internal/tensor"
)

// ErrOverloaded is returned by SessionPool.Run when the admission
// controller sheds the request: every pooled session is busy and the
// bounded wait queue is full (or the request's deadline cannot be met).
var ErrOverloaded = errors.New("runtime: session pool overloaded, request shed")

var mAdmissionShed = obs.DefaultRegistry.Counter("admission.shed")

// PoolOptions configures a SessionPool.
type PoolOptions struct {
	// Sessions is the number of pooled sessions — the maximum concurrent
	// in-flight runs (default 1). Each costs one arena.
	Sessions int
	// QueueDepth bounds how many requests may wait for a session beyond
	// the in-flight ones; a request arriving past that is shed immediately
	// with ErrOverloaded (default 0: no queueing, shed as soon as every
	// session is busy).
	QueueDepth int
	// Session configures every pooled session. When Session.Faults is set
	// and Session.Breaker is nil, the pool installs one shared circuit
	// breaker — the sessions serve the same simulated device, so its
	// quarantine state must be shared. Session.Model labels every pool
	// metric, trace and SLO window (default "default").
	Session SessionOptions
	// Device labels this pool's metrics and health entry with the device
	// replica it serves: pool.in_flight.<model>.<device> and friends, plus
	// a breaker.state.<device> gauge on the pool-installed breaker. Empty
	// keeps the single-device metric names (pool.in_flight.<model>,
	// breaker.state) backward-compatible. The Fleet sets it per replica.
	Device string

	// Requests assigns request IDs and samples per-request traces (default
	// obs.DefaultRequests). SLO is the rolling health monitor (default
	// obs.DefaultSLO). DisableTelemetry turns the pool's telemetry off
	// entirely: no request tracking, no SLO, no profiler, no gauges, no
	// health registration.
	Requests         *obs.RequestTracker
	SLO              *obs.SLOMonitor
	DisableTelemetry bool

	// Batch enables the batching front-end: concurrent Run calls are
	// coalesced into one execution on a plan compiled for that batch size
	// (see BatcherOptions). Nil — or a nil Batch.PlanFor — keeps the
	// per-request path.
	Batch *BatcherOptions
}

// SessionPool is the serving edge over one compiled Plan: a fixed set of
// pooled sessions behind an admission controller. Run admits a request if
// a session is idle or the bounded queue has room, sheds it with
// ErrOverloaded otherwise (counter admission.shed), and honours request
// deadlines while queued. All methods are safe for concurrent use.
//
// By default every request gets an ID (sampled ones a full trace), the
// pooled sessions feed obs.DefaultProfiler, finished requests land in
// obs.DefaultSLO's rolling windows, and the pool registers a /healthz
// source reflecting breaker and occupancy state. PoolOptions.
// DisableTelemetry opts out of all of it.
type SessionPool struct {
	plan     *Plan
	idle     chan *Session
	breaker  *Breaker
	depth    int32
	waiters  atomic.Int32
	sessOpts SessionOptions
	batcher  *Batcher

	// Telemetry (nil/zero when disabled). Gauge and histogram handles are
	// resolved once; Registry.Reset zeroes them in place, keeping handles
	// valid. label is model plus the optional ".<device>" suffix used in
	// metric and health names.
	model      string
	label      string
	requests   *obs.RequestTracker
	slo        *obs.SLOMonitor
	gInflight  *obs.Gauge
	gWait      *obs.Gauge
	hQueueWait *obs.Histogram
}

// NewSessionPool builds the pool and preallocates every session's arena.
func NewSessionPool(p *Plan, opts PoolOptions) *SessionPool {
	n := opts.Sessions
	if n < 1 {
		n = 1
	}
	so := opts.Session
	if so.Faults != nil && so.Breaker == nil {
		so.Breaker = NewBreaker(BreakerOptions{Device: opts.Device})
	}
	model := so.Model
	if model == "" {
		model = "default"
	}
	label := model
	if opts.Device != "" {
		label = model + "." + opts.Device
	}
	if !opts.DisableTelemetry && so.Profiler == nil {
		so.Profiler = obs.DefaultProfiler
	}
	sp := &SessionPool{
		plan:     p,
		idle:     make(chan *Session, n),
		breaker:  so.Breaker,
		depth:    int32(opts.QueueDepth),
		model:    model,
		label:    label,
		sessOpts: so,
	}
	if !opts.DisableTelemetry {
		sp.requests = opts.Requests
		if sp.requests == nil {
			sp.requests = obs.DefaultRequests
		}
		sp.slo = opts.SLO
		if sp.slo == nil {
			sp.slo = obs.DefaultSLO
		}
		sp.gInflight = obs.DefaultRegistry.Gauge("pool.in_flight." + label)
		sp.gWait = obs.DefaultRegistry.Gauge("pool.wait_queue." + label)
		sp.hQueueWait = obs.DefaultRegistry.Histogram("pool.queue_wait_ns")
		sp.gInflight.Set(0)
		sp.gWait.Set(0)
		sp.registerHealth()
	}
	for i := 0; i < n; i++ {
		sp.idle <- p.NewSessionWith(so)
	}
	if opts.Batch != nil && opts.Batch.PlanFor != nil {
		sp.batcher = newBatcher(sp, *opts.Batch)
	}
	return sp
}

// Batcher returns the batching front-end, or nil when batching is off.
func (sp *SessionPool) Batcher() *Batcher { return sp.batcher }

// Close stops the batching front-end (if any), failing queued requests
// with ErrPoolClosed. The per-request path keeps working; Close exists so
// tests and servers can retire the dispatcher goroutine deterministically.
func (sp *SessionPool) Close() {
	if sp.batcher != nil {
		sp.batcher.close()
	}
}

// registerHealth wires the pool into /healthz: unhealthy while the shared
// circuit breaker has the device quarantined, with breaker state and
// occupancy in the detail either way. A later pool serving the same model
// replaces the entry.
func (sp *SessionPool) registerHealth() {
	obs.RegisterHealth("pool."+sp.label, func() obs.HealthStatus {
		st := sp.breaker.State()
		busy := cap(sp.idle) - len(sp.idle)
		return obs.HealthStatus{
			OK: st != BreakerOpen,
			Detail: fmt.Sprintf("breaker %s, %d/%d sessions busy, %d queued",
				st, busy, cap(sp.idle), sp.waiters.Load()),
		}
	})
}

// Sessions is the pool size (maximum concurrent runs).
func (sp *SessionPool) Sessions() int { return cap(sp.idle) }

// Breaker returns the circuit breaker shared by the pooled sessions, or
// nil when the pool runs without fault injection.
func (sp *SessionPool) Breaker() *Breaker { return sp.breaker }

// acquire admits the request and returns an idle session. Sheds with
// ErrOverloaded when the queue is full; a request whose context is already
// done — or whose deadline fires while queued — is shed with ctx.Err().
// The sampled recorder (nil otherwise) gets its admission and queue
// segments closed here.
// testAdmissionPause, when set (tests only), runs between the idle-session
// fast path and the queue-depth check, widening the race window where a
// released session could be missed.
var testAdmissionPause func()

func (sp *SessionPool) acquire(ctx context.Context, req *obs.ActiveRequest) (*Session, error) {
	if err := ctx.Err(); err != nil {
		mAdmissionShed.Inc()
		return nil, err
	}
	select {
	case s := <-sp.idle:
		req.MarkAdmitted()
		req.MarkAcquired()
		return s, nil
	default:
	}
	if testAdmissionPause != nil {
		testAdmissionPause()
	}
	if sp.waiters.Add(1) > sp.depth {
		sp.waiters.Add(-1)
		// A session may have been released between the fast-path probe and
		// the depth check; re-probe before shedding, or a request would be
		// wrongly shed with sessions sitting idle.
		select {
		case s := <-sp.idle:
			req.MarkAdmitted()
			req.MarkAcquired()
			return s, nil
		default:
		}
		mAdmissionShed.Inc()
		return nil, ErrOverloaded
	}
	defer func() {
		// Refresh the wait-queue gauge on every waiter exit — success,
		// cancellation, or deadline — not only when another waiter enters,
		// so it cannot stick at a stale depth.
		sp.waiters.Add(-1)
		if sp.gWait != nil {
			sp.gWait.Set(float64(sp.waiters.Load()))
		}
	}()
	req.MarkAdmitted()
	var t0 time.Time
	if sp.hQueueWait != nil {
		sp.gWait.Set(float64(sp.waiters.Load()))
		t0 = time.Now()
	}
	select {
	case s := <-sp.idle:
		if sp.hQueueWait != nil {
			sp.hQueueWait.Observe(float64(time.Since(t0).Nanoseconds()))
		}
		req.MarkAcquired()
		return s, nil
	case <-ctx.Done():
		mAdmissionShed.Inc()
		return nil, ctx.Err()
	}
}

// release returns a session to the pool and refreshes the occupancy gauges.
func (sp *SessionPool) release(s *Session) {
	sp.idle <- s
	if sp.gInflight != nil {
		sp.gInflight.Set(float64(cap(sp.idle) - len(sp.idle)))
		sp.gWait.Set(float64(sp.waiters.Load()))
	}
}

// Run admits the request, executes it on a pooled session, and returns
// copies of the outputs (unlike Session.Run, the results own their storage
// — the session and its arena go back to the pool before Run returns).
// Every Run is one tracked request: it gets an ID, a sampled subset gets a
// full per-request trace, and its outcome lands in the SLO window.
func (sp *SessionPool) Run(ctx context.Context, feeds map[string]*tensor.Tensor) ([]*tensor.Tensor, error) {
	if sp.batcher != nil {
		return sp.batcher.run(ctx, feeds)
	}
	req := sp.requests.Start(sp.model) // nil unless this request is sampled
	start := time.Now()
	s, err := sp.acquire(ctx, req)
	if err != nil {
		// Only a true overload shed counts as OutcomeShed; a request whose
		// own context expired or was cancelled is a distinct deadline
		// outcome, so the shed rate reflects real server overload.
		oc := obs.OutcomeDeadline
		if errors.Is(err, ErrOverloaded) {
			req.MarkShed()
			oc = obs.OutcomeShed
		}
		req.Finish(err)
		sp.slo.Record(sp.model, time.Since(start), oc)
		return nil, err
	}
	if sp.gInflight != nil {
		sp.gInflight.Set(float64(cap(sp.idle) - len(sp.idle)))
	}
	if req != nil {
		ctx = obs.ContextWithRequest(ctx, req)
	}
	outs, err := s.RunContext(ctx, feeds)
	if err != nil {
		sp.release(s)
		req.Finish(err)
		sp.slo.Record(sp.model, time.Since(start), obs.OutcomeError)
		return nil, err
	}
	res := make([]*tensor.Tensor, len(outs))
	for i, o := range outs {
		res[i] = o.Clone()
	}
	sp.release(s)
	req.Finish(nil)
	sp.slo.Record(sp.model, time.Since(start), obs.OutcomeOK)
	return res, nil
}
