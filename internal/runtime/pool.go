package runtime

import (
	"context"
	"errors"
	"sync/atomic"

	"unigpu/internal/obs"
	"unigpu/internal/tensor"
)

// ErrOverloaded is returned by SessionPool.Run when the admission
// controller sheds the request: every pooled session is busy and the
// bounded wait queue is full (or the request's deadline cannot be met).
var ErrOverloaded = errors.New("runtime: session pool overloaded, request shed")

var mAdmissionShed = obs.DefaultRegistry.Counter("admission.shed")

// PoolOptions configures a SessionPool.
type PoolOptions struct {
	// Sessions is the number of pooled sessions — the maximum concurrent
	// in-flight runs (default 1). Each costs one arena.
	Sessions int
	// QueueDepth bounds how many requests may wait for a session beyond
	// the in-flight ones; a request arriving past that is shed immediately
	// with ErrOverloaded (default 0: no queueing, shed as soon as every
	// session is busy).
	QueueDepth int
	// Session configures every pooled session. When Session.Faults is set
	// and Session.Breaker is nil, the pool installs one shared circuit
	// breaker — the sessions serve the same simulated device, so its
	// quarantine state must be shared.
	Session SessionOptions
}

// SessionPool is the serving edge over one compiled Plan: a fixed set of
// pooled sessions behind an admission controller. Run admits a request if
// a session is idle or the bounded queue has room, sheds it with
// ErrOverloaded otherwise (counter admission.shed), and honours request
// deadlines while queued. All methods are safe for concurrent use.
type SessionPool struct {
	plan    *Plan
	idle    chan *Session
	breaker *Breaker
	depth   int32
	waiters atomic.Int32
}

// NewSessionPool builds the pool and preallocates every session's arena.
func NewSessionPool(p *Plan, opts PoolOptions) *SessionPool {
	n := opts.Sessions
	if n < 1 {
		n = 1
	}
	so := opts.Session
	if so.Faults != nil && so.Breaker == nil {
		so.Breaker = NewBreaker(BreakerOptions{})
	}
	sp := &SessionPool{
		plan:    p,
		idle:    make(chan *Session, n),
		breaker: so.Breaker,
		depth:   int32(opts.QueueDepth),
	}
	for i := 0; i < n; i++ {
		sp.idle <- p.NewSessionWith(so)
	}
	return sp
}

// Sessions is the pool size (maximum concurrent runs).
func (sp *SessionPool) Sessions() int { return cap(sp.idle) }

// Breaker returns the circuit breaker shared by the pooled sessions, or
// nil when the pool runs without fault injection.
func (sp *SessionPool) Breaker() *Breaker { return sp.breaker }

// acquire admits the request and returns an idle session. Sheds with
// ErrOverloaded when the queue is full; a request whose context is already
// done — or whose deadline fires while queued — is shed with ctx.Err().
func (sp *SessionPool) acquire(ctx context.Context) (*Session, error) {
	if err := ctx.Err(); err != nil {
		mAdmissionShed.Inc()
		return nil, err
	}
	select {
	case s := <-sp.idle:
		return s, nil
	default:
	}
	if sp.waiters.Add(1) > sp.depth {
		sp.waiters.Add(-1)
		mAdmissionShed.Inc()
		return nil, ErrOverloaded
	}
	defer sp.waiters.Add(-1)
	select {
	case s := <-sp.idle:
		return s, nil
	case <-ctx.Done():
		mAdmissionShed.Inc()
		return nil, ctx.Err()
	}
}

// Run admits the request, executes it on a pooled session, and returns
// copies of the outputs (unlike Session.Run, the results own their storage
// — the session and its arena go back to the pool before Run returns).
func (sp *SessionPool) Run(ctx context.Context, feeds map[string]*tensor.Tensor) ([]*tensor.Tensor, error) {
	s, err := sp.acquire(ctx)
	if err != nil {
		return nil, err
	}
	outs, err := s.RunContext(ctx, feeds)
	if err != nil {
		sp.idle <- s
		return nil, err
	}
	res := make([]*tensor.Tensor, len(outs))
	for i, o := range outs {
		res[i] = o.Clone()
	}
	sp.idle <- s
	return res, nil
}
