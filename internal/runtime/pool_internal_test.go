package runtime

import (
	"context"
	"sync"
	"testing"

	"unigpu/internal/graph"
	"unigpu/internal/ops"
)

// TestAcquireRetriesFastPathBeforeShed (whitebox): a session released in
// the window between the admission fast-path probe and the queue-depth
// check must be picked up by the re-probe instead of shedding the request
// with sessions sitting idle. The testAdmissionPause hook pins the race
// deterministically: it releases the only session exactly inside that
// window.
func TestAcquireRetriesFastPathBeforeShed(t *testing.T) {
	g := graph.New()
	in := g.Input("data", 1, 4)
	g.SetOutputs(g.Apply("act", &graph.ActivationOp{Act: ops.ActReLU}, in))
	plan, err := NewPlan(g)
	if err != nil {
		t.Fatal(err)
	}
	sp := NewSessionPool(plan, PoolOptions{Sessions: 1, QueueDepth: 0, DisableTelemetry: true})

	held := <-sp.idle // every session is busy; depth 0 would shed
	var once sync.Once
	testAdmissionPause = func() {
		once.Do(func() { sp.idle <- held })
	}
	defer func() { testAdmissionPause = nil }()

	s, err := sp.acquire(context.Background(), nil)
	if err != nil {
		t.Fatalf("acquire shed %v with an idle session released mid-admission", err)
	}
	sp.idle <- s
}
