package runtime

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Latency-predictive request router for fleet serving. Each replica starts
// from a static cost-oracle estimate (the roofline model's predicted
// latency for the compiled plan — sim.Device.AlgoSeconds summed over the
// graph) and is corrected online by an EWMA of observed request latencies,
// so a replica whose device underdelivers relative to its roofline drifts
// toward its real cost. Placement scores combine the latency estimate with
// instantaneous load (queueing-theory style: expected wait grows with the
// number of requests already in flight) and the replica's health weight,
// so quarantined and ramping replicas shed traffic proportionally.

// RouterOptions configures placement scoring.
type RouterOptions struct {
	// EWMAAlpha is the smoothing factor applied to observed latencies when
	// correcting the static cost oracle (default 0.2). Zero selects the
	// default; a negative value disables observation feedback entirely,
	// making placement a pure function of the oracle, load, and weights —
	// the deterministic mode the placement-determinism tests rely on.
	EWMAAlpha float64
}

// routerReplica is one replica's routing state.
type routerReplica struct {
	predictMs float64       // static cost-oracle estimate, never mutated
	ewmaBits  atomic.Uint64 // EWMA-corrected latency estimate (float64 bits)
	inflight  atomic.Int64  // requests currently placed here
	weight    atomic.Int64  // health weight in [0, weightScale]
}

// weightScale is the fixed-point denominator for replica weights: a weight
// of weightScale is full traffic share, 0 is quarantined.
const weightScale = 1 << 16

// Router places requests across fleet replicas by predicted latency, load,
// and health weight. All methods are safe for concurrent use.
type Router struct {
	opts     RouterOptions
	replicas []routerReplica

	mu sync.Mutex // serializes EWMA read-modify-write in Observe
}

// NewRouter builds a router over len(predictMs) replicas, seeding each
// replica's latency estimate with its cost-oracle prediction (milliseconds).
func NewRouter(predictMs []float64, opts RouterOptions) *Router {
	if opts.EWMAAlpha == 0 {
		opts.EWMAAlpha = 0.2
	}
	r := &Router{opts: opts, replicas: make([]routerReplica, len(predictMs))}
	for i, p := range predictMs {
		if p <= 0 {
			p = 1e-3 // degenerate oracle: tiny but positive so scores stay ordered
		}
		r.replicas[i].predictMs = p
		r.replicas[i].ewmaBits.Store(math.Float64bits(p))
		r.replicas[i].weight.Store(weightScale)
	}
	return r
}

// Len returns the number of replicas.
func (r *Router) Len() int { return len(r.replicas) }

// Begin records that a request was placed on replica i.
func (r *Router) Begin(i int) { r.replicas[i].inflight.Add(1) }

// End records that replica i finished (or failed) a placed request.
func (r *Router) End(i int) { r.replicas[i].inflight.Add(-1) }

// InFlight returns replica i's current in-flight count.
func (r *Router) InFlight(i int) int { return int(r.replicas[i].inflight.Load()) }

// Observe folds one observed request latency (milliseconds) into replica
// i's EWMA-corrected estimate. A no-op when observation feedback is
// disabled (negative EWMAAlpha) so placement stays deterministic.
func (r *Router) Observe(i int, ms float64) {
	if r.opts.EWMAAlpha < 0 || ms <= 0 {
		return
	}
	a := r.opts.EWMAAlpha
	r.mu.Lock()
	old := math.Float64frombits(r.replicas[i].ewmaBits.Load())
	r.replicas[i].ewmaBits.Store(math.Float64bits(old + a*(ms-old)))
	r.mu.Unlock()
}

// SetWeight sets replica i's health weight in [0, 1]: 1 is full traffic
// share, 0 quarantines the replica (ranked last, used only when every
// weighted replica has failed). The heal ramp walks it back up stepwise.
func (r *Router) SetWeight(i int, w float64) {
	if w < 0 {
		w = 0
	}
	if w > 1 {
		w = 1
	}
	r.replicas[i].weight.Store(int64(w * weightScale))
}

// Weight returns replica i's health weight in [0, 1].
func (r *Router) Weight(i int) float64 {
	return float64(r.replicas[i].weight.Load()) / weightScale
}

// Estimate returns replica i's current latency estimate in milliseconds
// (the EWMA-corrected oracle).
func (r *Router) Estimate(i int) float64 {
	return math.Float64frombits(r.replicas[i].ewmaBits.Load())
}

// score is replica i's placement cost: estimated latency scaled by the
// queue ahead of the request and inversely by health weight. Lower wins.
// Zero-weight replicas return +Inf and are ordered after every weighted
// one by Rank.
func (r *Router) score(i int) float64 {
	w := r.replicas[i].weight.Load()
	if w <= 0 {
		return math.Inf(1)
	}
	est := math.Float64frombits(r.replicas[i].ewmaBits.Load())
	load := float64(r.replicas[i].inflight.Load())
	return est * (1 + load) * float64(weightScale) / float64(w)
}

// Rank returns every replica index ordered by ascending placement score:
// the best target first, quarantined (zero-weight) replicas last as a
// final resort — their pools still serve correctly via CPU re-execution,
// so the fleet degrades instead of failing when all devices are unhealthy.
// Ties break by ascending index (stable), which is what makes placement
// reproducible run-to-run under a fixed request order.
func (r *Router) Rank() []int {
	n := len(r.replicas)
	order := make([]int, n)
	scores := make([]float64, n)
	for i := 0; i < n; i++ {
		order[i] = i
		scores[i] = r.score(i)
	}
	sort.SliceStable(order, func(a, b int) bool {
		return scores[order[a]] < scores[order[b]]
	})
	return order
}

// Pick returns the single best replica index (Rank's first entry) without
// allocating the full order.
func (r *Router) Pick() int {
	best, bestScore := 0, math.Inf(1)
	for i := range r.replicas {
		if s := r.score(i); s < bestScore {
			best, bestScore = i, s
		}
	}
	return best
}
