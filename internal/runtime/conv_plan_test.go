package runtime_test

import (
	"fmt"
	"testing"

	"unigpu/internal/graph"
	"unigpu/internal/ops"
	"unigpu/internal/runtime"
	"unigpu/internal/tensor"
)

// buildConvGraph is a diamond of convolutions with constant weights: two
// parallel GEMM-eligible branches (so the concurrent scheduler can run two
// prepacked convs — and their arena scratch slots — simultaneously), a
// depthwise stage, and a join.
func buildConvGraph(kernel ops.ConvKernel) (*graph.Graph, map[string]*tensor.Tensor) {
	g := graph.New()
	mk := func(seed int64, shape ...int) *tensor.Tensor {
		t := tensor.New(shape...)
		t.FillRandom(seed)
		return t
	}
	in := g.Input("data", 1, 8, 12, 12)
	w3 := ops.ConvWorkload{N: 1, CIn: 8, COut: 8, H: 12, W: 12, KH: 3, KW: 3,
		StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, HasBias: true, FusedActivation: ops.ActReLU}
	left := g.Apply("left", &graph.ConvOp{W: w3, Kernel: kernel}, in,
		g.Constant("wl", mk(1, 8, 8, 3, 3)), g.Constant("bl", mk(2, 8)))
	right := g.Apply("right", &graph.ConvOp{W: w3, Kernel: kernel}, in,
		g.Constant("wr", mk(3, 8, 8, 3, 3)), g.Constant("br", mk(4, 8)))
	wdw := ops.ConvWorkload{N: 1, CIn: 8, COut: 8, H: 12, W: 12, KH: 3, KW: 3,
		StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, Groups: 8, HasBias: true}
	dw := g.Apply("dw", &graph.ConvOp{W: wdw}, left,
		g.Constant("wdw", mk(5, 8, 1, 3, 3)), g.Constant("bdw", mk(6, 8)))
	join := g.Apply("join", &graph.AddOp{}, dw, right)
	g.SetOutputs(join)
	feed := tensor.New(1, 8, 12, 12)
	feed.FillRandom(7)
	return g, map[string]*tensor.Tensor{"data": feed}
}

// TestConvPlanScratchSlots: GEMM-selected convs get plan-time prepack plus
// an arena scratch slot — the arena grows beyond the intermediate-tensor
// slots — and serial and concurrent sessions stay bit-identical to the
// reference executor.
func TestConvPlanScratchSlots(t *testing.T) {
	for _, kernel := range []ops.ConvKernel{ops.KernelAuto, ops.KernelGEMM, ops.KernelDirect} {
		t.Run(kernel.String(), func(t *testing.T) {
			g, feeds := buildConvGraph(kernel)
			want, err := executeReference(g, feeds)
			if err != nil {
				t.Fatal(err)
			}
			plan, err := runtime.NewPlan(g)
			if err != nil {
				t.Fatal(err)
			}
			if kernel != ops.KernelDirect && plan.ArenaBytes() < plan.PeakLiveBytes() {
				t.Fatalf("arena %d B below liveness peak %d B", plan.ArenaBytes(), plan.PeakLiveBytes())
			}

			serial := plan.NewSession()
			got, err := serial.Run(feeds)
			if err != nil {
				t.Fatal(err)
			}
			tensorsEqual(t, "serial/"+kernel.String(), got, want)

			conc := plan.NewSessionWith(runtime.SessionOptions{Workers: 4, GPUStreams: 2})
			for rep := 0; rep < 5; rep++ { // repeats shake out scratch-slot races
				got, err := conc.Run(feeds)
				if err != nil {
					t.Fatal(err)
				}
				tensorsEqual(t, fmt.Sprintf("concurrent/%s/rep%d", kernel, rep), got, want)
			}
		})
	}
}

// TestConvPlanScratchArenaGrowth: forcing GEMM must reserve scratch in the
// arena (bigger than the direct-kernel plan of the same graph), while
// IntermediateBytes/PeakLiveBytes keep the seed executor's semantics and
// stay kernel-independent.
func TestConvPlanScratchArenaGrowth(t *testing.T) {
	gDirect, _ := buildConvGraph(ops.KernelDirect)
	gGemm, _ := buildConvGraph(ops.KernelGEMM)
	pd, err := runtime.NewPlan(gDirect)
	if err != nil {
		t.Fatal(err)
	}
	pg, err := runtime.NewPlan(gGemm)
	if err != nil {
		t.Fatal(err)
	}
	if pg.ArenaBytes() <= pd.ArenaBytes() {
		t.Fatalf("GEMM plan arena %d B should exceed direct plan arena %d B (im2col scratch)",
			pg.ArenaBytes(), pd.ArenaBytes())
	}
	if pg.IntermediateBytes() != pd.IntermediateBytes() || pg.PeakLiveBytes() != pd.PeakLiveBytes() {
		t.Fatalf("liveness accounting must not include scratch: inter %d vs %d, peak %d vs %d",
			pg.IntermediateBytes(), pd.IntermediateBytes(), pg.PeakLiveBytes(), pd.PeakLiveBytes())
	}
}

// TestConvPlanSharedAcrossSessions: the prepacked weights live on the plan;
// many sessions (run concurrently) share them read-only.
func TestConvPlanSharedAcrossSessions(t *testing.T) {
	g, feeds := buildConvGraph(ops.KernelGEMM)
	want, err := executeReference(g, feeds)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := runtime.NewPlan(g)
	if err != nil {
		t.Fatal(err)
	}
	const sessions = 4
	errs := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		go func() {
			s := plan.NewSession()
			for rep := 0; rep < 3; rep++ {
				got, err := s.Run(feeds)
				if err != nil {
					errs <- err
					return
				}
				for k := range want {
					gd, wd := got[k].Data(), want[k].Data()
					for j := range wd {
						if gd[j] != wd[j] {
							errs <- fmt.Errorf("output %d differs at %d", k, j)
							return
						}
					}
				}
			}
			errs <- nil
		}()
	}
	for i := 0; i < sessions; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}
