package runtime

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"unigpu/internal/obs"
	"unigpu/internal/sim"
	"unigpu/internal/tensor"
)

// Fleet serving: N device replicas — typically the paper's three platforms
// (DeepLens/Intel HD 505, aiSage/Mali T-860, Jetson Nano/Maxwell) — each
// with its own compiled Plan, SessionPool, fault injector and circuit
// breaker. The Router places each request by predicted latency, load and
// health weight; the Fleet adds the robustness lifecycle on top: a replica
// whose breaker opens (or whose device is lost) is quarantined and its
// traffic drained to the survivors, a heal schedule later resets the
// device (FaultInjector.Heal), probes it through the breaker's half-open
// path, and ramps it back to full traffic share stepwise instead of
// slamming it. Every replica computes bit-identical outputs — the devices
// differ only in simulated timing, and a quarantined replica still serves
// correctly via CPU re-execution — so failover never changes results.

// ErrNoReplicas is returned by Fleet.Run on a fleet with zero replicas.
var ErrNoReplicas = errors.New("runtime: fleet has no replicas")

// ReplicaState is one replica's position in the drain/heal lifecycle.
type ReplicaState int32

const (
	// ReplicaActive: healthy, full traffic share.
	ReplicaActive ReplicaState = iota
	// ReplicaQuarantined: breaker open or device lost; weight zero, used
	// only as a last resort (its pool still serves via CPU re-exec).
	ReplicaQuarantined
	// ReplicaProbing: the heal schedule has reset the device and one probe
	// inference is deciding whether it recovered.
	ReplicaProbing
	// ReplicaRamping: probe succeeded; traffic share climbs stepwise back
	// to full as successes accumulate.
	ReplicaRamping
)

func (s ReplicaState) String() string {
	switch s {
	case ReplicaActive:
		return "active"
	case ReplicaQuarantined:
		return "quarantined"
	case ReplicaProbing:
		return "probing"
	case ReplicaRamping:
		return "ramping"
	}
	return fmt.Sprintf("state(%d)", int32(s))
}

// ReplicaConfig describes one fleet replica.
type ReplicaConfig struct {
	// Name labels the replica everywhere: metrics (fleet.served.<name>,
	// breaker.state.<name>, ...), /healthz (fleet.<name>), stats tables.
	Name string
	// Plan is the replica's compiled plan (per-device tuning baked in).
	Plan *Plan
	// PredictMs seeds the router's latency estimate — the cost oracle's
	// predicted per-request latency on this replica's device, in
	// milliseconds (unigpu uses CompiledModel.PredictedLatencyMs).
	PredictMs float64
	// Pool configures the replica's SessionPool. Pool.Device is
	// overwritten with Name; Pool.Session.Faults should carry the
	// replica's injector so the lifecycle has something to quarantine on.
	Pool PoolOptions
}

// HealPolicy schedules how a quarantined replica returns to service.
type HealPolicy struct {
	// ProbeAfter is how long a replica stays quarantined before the first
	// heal probe (default 100ms). Negative disables automatic healing —
	// Fleet.HealNow still probes on demand.
	ProbeAfter time.Duration
	// ProbeEvery is the retry interval after a failed probe (default:
	// ProbeAfter).
	ProbeEvery time.Duration
	// ProbeTimeout bounds the probe inference (default 2s).
	ProbeTimeout time.Duration
	// RampSteps is how many partial-weight steps a healed replica climbs
	// before full traffic share (default 3: weight 1/4 → 2/4 → 3/4 → 1).
	RampSteps int
	// RampSuccesses is how many successful requests advance one ramp step
	// (default 4).
	RampSuccesses int
}

func (h HealPolicy) withDefaults() HealPolicy {
	if h.ProbeAfter == 0 {
		h.ProbeAfter = 100 * time.Millisecond
	}
	if h.ProbeEvery <= 0 {
		h.ProbeEvery = h.ProbeAfter
	}
	if h.ProbeTimeout <= 0 {
		h.ProbeTimeout = 2 * time.Second
	}
	if h.RampSteps <= 0 {
		h.RampSteps = 3
	}
	if h.RampSuccesses <= 0 {
		h.RampSuccesses = 4
	}
	return h
}

// FleetOptions configures NewFleet.
type FleetOptions struct {
	// Replicas are the fleet members (at least one).
	Replicas []ReplicaConfig
	// Router configures placement scoring (EWMA correction of the cost
	// oracle by observed latency).
	Router RouterOptions
	// Heal schedules quarantined-replica recovery.
	Heal HealPolicy
	// CheckInterval is the supervisor's health-scan period (default 10ms).
	// The supervisor only drives timed heal probes; quarantine detection
	// also happens inline on every Run, so detection latency does not
	// depend on it.
	CheckInterval time.Duration
	// DisableTelemetry turns off the fleet's metrics, health and debug
	// registrations (the per-pool flag is separate, in ReplicaConfig.Pool).
	DisableTelemetry bool
}

// fleetReplica is one replica plus its lifecycle state.
type fleetReplica struct {
	name    string
	plan    *Plan
	pool    *SessionPool
	inj     *sim.FaultInjector
	breaker *Breaker

	state  atomic.Int32 // ReplicaState
	served atomic.Int64

	// Lifecycle bookkeeping, guarded by Fleet.mu.
	quarantinedAt time.Time
	lastProbe     time.Time
	rampStep      int
	rampOK        int

	// probeFeeds are zero-valued input tensors synthesized from the plan,
	// reused by every heal probe (probes are serialized by the supervisor).
	probeFeeds map[string]*tensor.Tensor

	// Latency ring for per-replica p50/p99 (milliseconds).
	latMu  sync.Mutex
	lat    [512]float64
	latN   int
	latIdx int

	gState *obs.Gauge   // fleet.replica.state.<name>
	cServe *obs.Counter // fleet.served.<name>
}

func (r *fleetReplica) observeLatency(ms float64) {
	r.latMu.Lock()
	r.lat[r.latIdx] = ms
	r.latIdx = (r.latIdx + 1) % len(r.lat)
	if r.latN < len(r.lat) {
		r.latN++
	}
	r.latMu.Unlock()
}

// percentiles returns the replica's observed p50 and p99 latency (ms) over
// the ring window, zero when nothing has been served yet.
func (r *fleetReplica) percentiles() (p50, p99 float64) {
	r.latMu.Lock()
	n := r.latN
	buf := make([]float64, n)
	copy(buf, r.lat[:n])
	r.latMu.Unlock()
	if n == 0 {
		return 0, 0
	}
	sort.Float64s(buf)
	idx := func(q float64) int {
		i := int(q * float64(n-1))
		return i
	}
	return buf[idx(0.50)], buf[idx(0.99)]
}

func (r *fleetReplica) setState(s ReplicaState) {
	r.state.Store(int32(s))
	if r.gState != nil {
		r.gState.Set(float64(s))
	}
}

// ReplicaStats is one replica's row in Fleet.Stats.
type ReplicaStats struct {
	Name       string
	State      ReplicaState
	Weight     float64
	EstimateMs float64 // router's EWMA-corrected latency estimate
	Served     int64
	InFlight   int
	P50Ms      float64
	P99Ms      float64
	DeviceLost bool
	Breaker    BreakerState
	Faults     map[string]int64
}

// Fleet owns the replicas, the router and the heal lifecycle. All methods
// are safe for concurrent use.
type Fleet struct {
	replicas []*fleetReplica
	router   *Router
	heal     HealPolicy
	interval time.Duration

	mu sync.Mutex // lifecycle transitions + heal bookkeeping

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}

	telemetry   bool
	cFailover   *obs.Counter
	cQuarantine *obs.Counter
	cHeal       *obs.Counter
	cProbe      *obs.Counter
}

// NewFleet builds the fleet, its per-replica pools, and starts the heal
// supervisor.
func NewFleet(opts FleetOptions) (*Fleet, error) {
	if len(opts.Replicas) == 0 {
		return nil, ErrNoReplicas
	}
	heal := opts.Heal.withDefaults()
	interval := opts.CheckInterval
	if interval <= 0 {
		interval = 10 * time.Millisecond
	}
	predict := make([]float64, len(opts.Replicas))
	f := &Fleet{
		heal:      heal,
		interval:  interval,
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
		telemetry: !opts.DisableTelemetry,
	}
	if f.telemetry {
		f.cFailover = obs.DefaultRegistry.Counter("fleet.failover")
		f.cQuarantine = obs.DefaultRegistry.Counter("fleet.quarantines")
		f.cHeal = obs.DefaultRegistry.Counter("fleet.heals")
		f.cProbe = obs.DefaultRegistry.Counter("fleet.probes")
	}
	seen := make(map[string]bool, len(opts.Replicas))
	for i, rc := range opts.Replicas {
		if rc.Plan == nil {
			return nil, fmt.Errorf("runtime: fleet replica %d has no plan", i)
		}
		name := rc.Name
		if name == "" {
			name = fmt.Sprintf("replica-%d", i)
		}
		if seen[name] {
			return nil, fmt.Errorf("runtime: duplicate fleet replica name %q", name)
		}
		seen[name] = true
		po := rc.Pool
		po.Device = name
		pool := NewSessionPool(rc.Plan, po)
		r := &fleetReplica{
			name:    name,
			plan:    rc.Plan,
			pool:    pool,
			inj:     po.Session.Faults,
			breaker: pool.Breaker(),
		}
		r.probeFeeds = make(map[string]*tensor.Tensor, len(rc.Plan.inputs))
		for _, in := range rc.Plan.inputs {
			r.probeFeeds[in.name] = tensor.New(in.shape...)
		}
		if f.telemetry {
			r.gState = obs.DefaultRegistry.Gauge("fleet.replica.state." + name)
			r.cServe = obs.DefaultRegistry.Counter("fleet.served." + name)
			r.gState.Set(float64(ReplicaActive))
		}
		predict[i] = rc.PredictMs
		f.replicas = append(f.replicas, r)
	}
	f.router = NewRouter(predict, opts.Router)
	if f.telemetry {
		f.registerTelemetry()
	}
	go f.supervise()
	return f, nil
}

// registerTelemetry wires the fleet into /healthz (one source per replica)
// and /debug/fleet (the Stats snapshot).
func (f *Fleet) registerTelemetry() {
	for i, r := range f.replicas {
		i, r := i, r
		obs.RegisterHealth("fleet."+r.name, func() obs.HealthStatus {
			st := ReplicaState(r.state.Load())
			return obs.HealthStatus{
				OK: st == ReplicaActive || st == ReplicaRamping,
				Detail: fmt.Sprintf("%s, weight %.2f, breaker %s, served %d, %d in flight",
					st, f.router.Weight(i), r.breaker.State(), r.served.Load(), f.router.InFlight(i)),
			}
		})
	}
	obs.RegisterDebug("fleet", func() any { return f.Stats() })
}

// Len returns the number of replicas.
func (f *Fleet) Len() int { return len(f.replicas) }

// Name returns replica i's name.
func (f *Fleet) Name(i int) string { return f.replicas[i].name }

// State returns replica i's lifecycle state.
func (f *Fleet) State(i int) ReplicaState {
	return ReplicaState(f.replicas[i].state.Load())
}

// Router exposes the placement router (tests and benchmarks read
// weights/estimates through it).
func (f *Fleet) Router() *Router { return f.router }

// Pool returns replica i's session pool.
func (f *Fleet) Pool(i int) *SessionPool { return f.replicas[i].pool }

// Kill deterministically loses replica i's device (FaultInjector.Kill), as
// a soak's kill script does. The next request or supervisor tick
// quarantines the replica. No-op when the replica runs without an injector.
func (f *Fleet) Kill(i int) {
	f.replicas[i].inj.Kill()
	f.checkHealth(i)
}

// checkHealth quarantines replica i when its breaker is open or its device
// is lost. It runs inline on every Run (detection is request-ordered and
// deterministic, not dependent on supervisor timing) and from the
// supervisor tick. Probing replicas are left alone: the probe owns the
// breaker's half-open excursion.
func (f *Fleet) checkHealth(i int) {
	r := f.replicas[i]
	st := ReplicaState(r.state.Load())
	if st != ReplicaActive && st != ReplicaRamping {
		return
	}
	if r.breaker.State() != BreakerOpen && !r.inj.DeviceLost() {
		return
	}
	f.mu.Lock()
	st = ReplicaState(r.state.Load())
	if st == ReplicaActive || st == ReplicaRamping {
		r.setState(ReplicaQuarantined)
		r.quarantinedAt = time.Now()
		r.lastProbe = time.Time{}
		f.router.SetWeight(i, 0)
		if f.cQuarantine != nil {
			f.cQuarantine.Inc()
		}
	}
	f.mu.Unlock()
}

// supervise is the heal scheduler: scan replica health, probe quarantined
// replicas once their wait elapses.
func (f *Fleet) supervise() {
	defer close(f.done)
	t := time.NewTicker(f.interval)
	defer t.Stop()
	for {
		select {
		case <-f.stop:
			return
		case <-t.C:
		}
		for i := range f.replicas {
			f.checkHealth(i)
			if f.probeDue(i) {
				f.probe(i)
			}
		}
	}
}

// probeDue reports whether quarantined replica i's heal probe should fire.
func (f *Fleet) probeDue(i int) bool {
	if f.heal.ProbeAfter < 0 {
		return false // automatic healing disabled
	}
	r := f.replicas[i]
	if ReplicaState(r.state.Load()) != ReplicaQuarantined {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if ReplicaState(r.state.Load()) != ReplicaQuarantined {
		return false
	}
	if r.lastProbe.IsZero() {
		return time.Since(r.quarantinedAt) >= f.heal.ProbeAfter
	}
	return time.Since(r.lastProbe) >= f.heal.ProbeEvery
}

// probe heals replica i's device and sends one real inference through it:
// FaultInjector.Heal resets the device (the driver reset), Breaker.Expire
// ends probation so the probe request becomes the breaker's half-open
// dispatch, and the probe only counts as recovery when the inference
// succeeded, the device stayed up, and the breaker closed — a quarantined
// pool answers correctly via CPU re-exec, so success alone proves nothing
// about the device. On recovery the replica enters the ramp.
func (f *Fleet) probe(i int) bool {
	r := f.replicas[i]
	f.mu.Lock()
	if ReplicaState(r.state.Load()) != ReplicaQuarantined {
		f.mu.Unlock()
		return false
	}
	r.setState(ReplicaProbing)
	r.lastProbe = time.Now()
	f.mu.Unlock()
	if f.cProbe != nil {
		f.cProbe.Inc()
	}

	r.inj.Heal()
	r.breaker.Expire()
	ctx, cancel := context.WithTimeout(context.Background(), f.heal.ProbeTimeout)
	_, err := r.pool.Run(ctx, r.probeFeeds)
	cancel()
	healthy := err == nil && !r.inj.DeviceLost() && r.breaker.State() == BreakerClosed

	f.mu.Lock()
	defer f.mu.Unlock()
	if ReplicaState(r.state.Load()) != ReplicaProbing {
		return false
	}
	if !healthy {
		r.setState(ReplicaQuarantined)
		return false
	}
	r.rampStep = 1
	r.rampOK = 0
	r.setState(ReplicaRamping)
	f.router.SetWeight(i, float64(r.rampStep)/float64(f.heal.RampSteps+1))
	if f.cHeal != nil {
		f.cHeal.Inc()
	}
	return true
}

// HealNow probes replica i immediately, bypassing the ProbeAfter wait —
// the soak's scripted "heal" event. It reports whether the probe recovered
// the replica.
func (f *Fleet) HealNow(i int) bool { return f.probe(i) }

// onSuccess advances a ramping replica's traffic share.
func (f *Fleet) onSuccess(i int) {
	r := f.replicas[i]
	if ReplicaState(r.state.Load()) != ReplicaRamping {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if ReplicaState(r.state.Load()) != ReplicaRamping {
		return
	}
	r.rampOK++
	if r.rampOK < f.heal.RampSuccesses {
		return
	}
	r.rampOK = 0
	r.rampStep++
	if r.rampStep > f.heal.RampSteps {
		r.setState(ReplicaActive)
		f.router.SetWeight(i, 1)
		return
	}
	f.router.SetWeight(i, float64(r.rampStep)/float64(f.heal.RampSteps+1))
}

// Run places the request on the best replica and fails over down the
// router's ranking when a replica errors (overload shed, poisoned batch,
// lost device mid-run): queued work drains to survivors instead of
// failing. A request whose own context is done is not failed over — that
// is the caller's deadline, the one failure mode a fleet cannot absorb.
// Outputs are bit-identical regardless of which replica served.
func (f *Fleet) Run(ctx context.Context, feeds map[string]*tensor.Tensor) ([]*tensor.Tensor, error) {
	outs, _, err := f.RunRouted(ctx, feeds)
	return outs, err
}

// RunRouted is Run, also reporting which replica served the request
// (-1 when no attempt succeeded). The placement-determinism tests assert
// on it directly.
func (f *Fleet) RunRouted(ctx context.Context, feeds map[string]*tensor.Tensor) ([]*tensor.Tensor, int, error) {
	if len(f.replicas) == 0 {
		return nil, -1, ErrNoReplicas
	}
	// Inline health scan before ranking: a device lost since the last
	// request is quarantined now, in request order, so placement after a
	// kill is deterministic rather than racing the supervisor tick.
	for i := range f.replicas {
		f.checkHealth(i)
	}
	order := f.router.Rank()
	var lastErr error
	for _, i := range order {
		if err := ctx.Err(); err != nil {
			return nil, -1, err
		}
		r := f.replicas[i]
		f.router.Begin(i)
		t0 := time.Now()
		outs, err := r.pool.Run(ctx, feeds)
		elapsed := time.Since(t0)
		f.router.End(i)
		if err != nil {
			lastErr = err
			if ctx.Err() != nil {
				return nil, -1, err // caller's deadline, not failover-able
			}
			f.checkHealth(i) // the failure may have tripped the breaker
			if f.cFailover != nil {
				f.cFailover.Inc()
			}
			continue
		}
		f.router.Observe(i, float64(elapsed.Nanoseconds())/1e6)
		r.served.Add(1)
		r.observeLatency(float64(elapsed.Nanoseconds()) / 1e6)
		if r.cServe != nil {
			r.cServe.Inc()
		}
		f.onSuccess(i)
		return outs, i, nil
	}
	return nil, -1, lastErr
}

// Served returns how many requests replica i has served.
func (f *Fleet) Served(i int) int64 { return f.replicas[i].served.Load() }

// Stats snapshots every replica's serving state, in replica order.
func (f *Fleet) Stats() []ReplicaStats {
	out := make([]ReplicaStats, len(f.replicas))
	for i, r := range f.replicas {
		p50, p99 := r.percentiles()
		out[i] = ReplicaStats{
			Name:       r.name,
			State:      ReplicaState(r.state.Load()),
			Weight:     f.router.Weight(i),
			EstimateMs: f.router.Estimate(i),
			Served:     r.served.Load(),
			InFlight:   f.router.InFlight(i),
			P50Ms:      p50,
			P99Ms:      p99,
			DeviceLost: r.inj.DeviceLost(),
			Breaker:    r.breaker.State(),
			Faults:     r.inj.Counts(),
		}
	}
	return out
}

// Close stops the heal supervisor, closes every replica pool (draining
// their batchers), and retires the fleet's health and debug registrations.
func (f *Fleet) Close() {
	f.stopOnce.Do(func() { close(f.stop) })
	<-f.done
	for _, r := range f.replicas {
		r.pool.Close()
	}
	if f.telemetry {
		for _, r := range f.replicas {
			obs.UnregisterHealth("fleet." + r.name)
			// Retire the pool's own health entry too: a replica closed
			// while quarantined must not linger unhealthy on /healthz.
			obs.UnregisterHealth("pool." + r.pool.label)
		}
		obs.UnregisterDebug("fleet")
	}
}
