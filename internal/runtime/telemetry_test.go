package runtime_test

import (
	"context"
	"os"
	"testing"
	"time"

	"unigpu/internal/obs"
	"unigpu/internal/ops"
	"unigpu/internal/runtime"
	"unigpu/internal/sim"
)

// TestRequestTraceAttributionSerial: for serial sessions the request
// trace's segments — admission, queue, exec, retry, reexec, overhead —
// tile the wall clock exactly, including under injected faults where
// retry backoff and CPU re-execution eat real time.
func TestRequestTraceAttributionSerial(t *testing.T) {
	g, feeds := buildSerialOpsGraph()
	plan, err := runtime.NewPlan(g)
	if err != nil {
		t.Fatal(err)
	}
	checkTiling := func(t *testing.T, tr obs.RequestTrace) {
		t.Helper()
		sum := tr.Admission + tr.Queue + tr.Exec + tr.Retry + tr.Reexec + tr.Overhead
		if sum != tr.Wall {
			t.Fatalf("request %d: segments sum to %v, wall is %v (adm %v queue %v exec %v retry %v reexec %v ovh %v)",
				tr.ID, sum, tr.Wall, tr.Admission, tr.Queue, tr.Exec, tr.Retry, tr.Reexec, tr.Overhead)
		}
		if len(tr.Nodes) == 0 {
			t.Fatalf("request %d: no node events", tr.ID)
		}
		for _, n := range tr.Nodes {
			if n.Lane == "" {
				t.Fatalf("request %d: node %s without a lane", tr.ID, n.Name)
			}
			if n.Reexec && n.Lane != "cpu/0" {
				t.Fatalf("request %d: re-execution on lane %s, want cpu/0", tr.ID, n.Lane)
			}
		}
	}

	// Phase 1: transient faults and queue hangs — dispatches eventually
	// succeed on the GPU, so traces carry exec time plus attributed retry
	// time, and the segments tile the wall clock.
	inj := sim.NewFaultInjector(sim.FaultConfig{HangLatency: time.Millisecond}).
		Script(sim.FaultTransientKernel, sim.FaultQueueHang, sim.FaultTransientKernel)
	tracker := obs.NewRequestTracker(obs.RequestTrackerOptions{SampleEvery: 1, Keep: 64})
	pool := runtime.NewSessionPool(plan, runtime.PoolOptions{
		Sessions: 1, QueueDepth: 4,
		Session:  runtime.SessionOptions{Model: "attrib", Faults: inj, RetryBackoff: 50 * time.Microsecond},
		Requests: tracker,
		SLO:      obs.NewSLOMonitor(obs.SLOOptions{Registry: obs.NewRegistry()}),
	})
	const runs = 12
	for i := 0; i < runs; i++ {
		if _, err := pool.Run(context.Background(), feeds); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
	if n := tracker.Requests(); n != runs {
		t.Fatalf("request IDs assigned = %d, want %d (every request)", n, runs)
	}
	traces := tracker.Snapshot()
	if len(traces) != runs {
		t.Fatalf("sampled traces = %d, want %d (SampleEvery 1)", len(traces), runs)
	}
	var sawRetry bool
	for _, tr := range traces {
		if tr.Model != "attrib" {
			t.Fatalf("trace model = %q", tr.Model)
		}
		if tr.Exec <= 0 {
			t.Fatalf("request %d: exec segment empty", tr.ID)
		}
		checkTiling(t, tr)
		sawRetry = sawRetry || tr.Retry > 0
	}
	if !sawRetry {
		t.Error("no trace attributed retry time despite scripted transient faults")
	}

	// Phase 2: device loss quarantines the GPU, so every node re-executes
	// on the CPU lane — the wall clock lands in the reexec segment and the
	// tiling still holds.
	injLost := sim.NewFaultInjector(sim.FaultConfig{}).Script(sim.FaultDeviceLost)
	trackerLost := obs.NewRequestTracker(obs.RequestTrackerOptions{SampleEvery: 1, Keep: 8})
	poolLost := runtime.NewSessionPool(plan, runtime.PoolOptions{
		Sessions: 1,
		Session:  runtime.SessionOptions{Model: "attrib-lost", Faults: injLost, RetryBackoff: 50 * time.Microsecond},
		Requests: trackerLost,
		SLO:      obs.NewSLOMonitor(obs.SLOOptions{Registry: obs.NewRegistry()}),
	})
	for i := 0; i < 2; i++ {
		if _, err := poolLost.Run(context.Background(), feeds); err != nil {
			t.Fatalf("lost-device run %d: %v", i, err)
		}
	}
	var sawReexec bool
	for _, tr := range trackerLost.Snapshot() {
		checkTiling(t, tr)
		sawReexec = sawReexec || tr.Reexec > 0
	}
	if !sawReexec {
		t.Error("no trace attributed CPU re-execution despite scripted device loss")
	}
	obs.UnregisterHealth("pool.attrib")
	obs.UnregisterHealth("pool.attrib-lost")
}

// TestPoolTelemetryWiring: the pool publishes occupancy gauges and a
// queue-wait histogram into the default registry and registers a
// /healthz source keyed by model.
func TestPoolTelemetryWiring(t *testing.T) {
	g, feeds := buildSerialOpsGraph()
	plan, err := runtime.NewPlan(g)
	if err != nil {
		t.Fatal(err)
	}
	pool := runtime.NewSessionPool(plan, runtime.PoolOptions{
		Sessions: 1,
		Session:  runtime.SessionOptions{Model: "wiring"},
		Requests: obs.NewRequestTracker(obs.RequestTrackerOptions{}),
		SLO:      obs.NewSLOMonitor(obs.SLOOptions{Registry: obs.NewRegistry()}),
	})
	if _, err := pool.Run(context.Background(), feeds); err != nil {
		t.Fatal(err)
	}
	if v, ok := obs.DefaultRegistry.Gauge("pool.in_flight.wiring").Value(); !ok || v != 0 {
		t.Fatalf("pool.in_flight.wiring = %v %v, want 0 after drain", v, ok)
	}
	if _, ok := obs.DefaultRegistry.Gauge("pool.wait_queue.wiring").Value(); !ok {
		t.Fatal("pool.wait_queue.wiring gauge missing")
	}
	_, checks := obs.Health()
	st, ok := checks["pool.wiring"]
	if !ok {
		t.Fatalf("health source pool.wiring missing: %v", checks)
	}
	if !st.OK {
		t.Fatalf("fault-free pool unhealthy: %+v", st)
	}
	t.Cleanup(func() { obs.UnregisterHealth("pool.wiring") })
}

// TestSessionProfilerRecords: a session with a profiler sampling every
// run reports every plan node in the snapshot under the session's model,
// with the conv kind refined by the chosen kernel.
func TestSessionProfilerRecords(t *testing.T) {
	g, feeds := buildSerialOpsGraph()
	plan, err := runtime.NewPlan(g)
	if err != nil {
		t.Fatal(err)
	}
	prof := obs.NewProfiler(obs.ProfilerOptions{SampleEvery: 1, TopK: 64, Registry: obs.NewRegistry()})
	s := plan.NewSessionWith(runtime.SessionOptions{Model: "profme", Profiler: prof})
	const runs = 3
	for i := 0; i < runs; i++ {
		if _, err := s.Run(feeds); err != nil {
			t.Fatal(err)
		}
	}
	snap := prof.Snapshot()
	if len(snap.Top) == 0 {
		t.Fatal("profiler snapshot empty after sampled runs")
	}
	var total int64
	for _, row := range snap.Top {
		if row.Model != "profme" {
			t.Fatalf("row model = %q", row.Model)
		}
		if row.Count != runs {
			t.Fatalf("node %s count = %d, want %d", row.Node, row.Count, runs)
		}
		total += row.Count
	}
	if snap.SampledRuns != runs {
		t.Fatalf("sampled runs = %d, want %d", snap.SampledRuns, runs)
	}
}

// TestPlanDebugInfo: compiled plans self-register for /debug/plans with
// node, kernel and memory metadata.
func TestPlanDebugInfo(t *testing.T) {
	g, _ := buildConvGraph(ops.KernelAuto)
	plan, err := runtime.NewPlan(g)
	if err != nil {
		t.Fatal(err)
	}
	plan.SetLabel("debug-info-test")
	found := false
	for _, info := range runtime.PlanInfos() {
		if info.Label != "debug-info-test" {
			continue
		}
		found = true
		if info.Nodes == 0 || len(info.Kernels) == 0 {
			t.Fatalf("plan info incomplete: %+v", info)
		}
		if info.GPUNodes+info.CPUNodes != info.Nodes {
			t.Fatalf("device split %d+%d != %d nodes", info.GPUNodes, info.CPUNodes, info.Nodes)
		}
	}
	if !found {
		t.Fatal("compiled plan missing from PlanInfos")
	}
}

// TestProfilerOverheadGate re-runs the BenchmarkSessionRun body with the
// serving profiler attached at its production sampling rate and fails if
// the attached profiler costs more than the gate allows. CI machines are
// noisy, so the default gate is lenient; UNIGPU_BENCH_GATE=strict enforces
// the 3% budget the design targets.
func TestProfilerOverheadGate(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark gate skipped in -short")
	}
	if raceEnabled {
		t.Skip("benchmark gate meaningless under -race")
	}
	g, feeds := buildSerialOpsGraph()
	plan, err := runtime.NewPlan(g)
	if err != nil {
		t.Fatal(err)
	}
	run := func(opts runtime.SessionOptions) float64 {
		s := plan.NewSessionWith(opts)
		if _, err := s.Run(feeds); err != nil {
			t.Fatal(err)
		}
		best := 0.0
		for i := 0; i < 5; i++ {
			r := testing.Benchmark(func(b *testing.B) {
				for j := 0; j < b.N; j++ {
					if _, err := s.Run(feeds); err != nil {
						b.Fatal(err)
					}
				}
			})
			if ns := float64(r.NsPerOp()); best == 0 || ns < best {
				best = ns
			}
		}
		return best
	}
	base := run(runtime.SessionOptions{})
	prof := obs.NewProfiler(obs.ProfilerOptions{Registry: obs.NewRegistry()}) // production 1-in-8 sampling
	profiled := run(runtime.SessionOptions{Model: "gate", Profiler: prof})

	limit := 12.0 // lenient: shared CI machines jitter far more than the real cost
	if os.Getenv("UNIGPU_BENCH_GATE") == "strict" {
		limit = 3.0
	}
	overhead := 100 * (profiled/base - 1)
	t.Logf("session run: base %.0f ns/op, profiled %.0f ns/op, overhead %+.2f%% (limit %.0f%%)", base, profiled, overhead, limit)
	if overhead > limit {
		t.Fatalf("profiler overhead %.2f%% exceeds the %.0f%% gate", overhead, limit)
	}
}

// BenchmarkSessionRunProfiled is BenchmarkSessionRun with the serving
// profiler attached at the production sampling rate — the diff against
// the plain benchmark is the continuous-profiling overhead.
func BenchmarkSessionRunProfiled(b *testing.B) {
	g, feeds := buildSerialOpsGraph()
	plan, err := runtime.NewPlan(g)
	if err != nil {
		b.Fatal(err)
	}
	prof := obs.NewProfiler(obs.ProfilerOptions{Registry: obs.NewRegistry()})
	s := plan.NewSessionWith(runtime.SessionOptions{Model: "bench", Profiler: prof})
	if _, err := s.Run(feeds); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Run(feeds); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPoolRunTraced is the fully-observed serving path: pooled
// session, every request traced (SampleEvery 1), SLO recording — the
// upper bound of telemetry cost.
func BenchmarkPoolRunTraced(b *testing.B) {
	g, feeds := buildSerialOpsGraph()
	plan, err := runtime.NewPlan(g)
	if err != nil {
		b.Fatal(err)
	}
	pool := runtime.NewSessionPool(plan, runtime.PoolOptions{
		Sessions: 1,
		Session:  runtime.SessionOptions{Model: "bench-traced"},
		Requests: obs.NewRequestTracker(obs.RequestTrackerOptions{SampleEvery: 1, Keep: 16}),
		SLO:      obs.NewSLOMonitor(obs.SLOOptions{Registry: obs.NewRegistry()}),
	})
	ctx := context.Background()
	if _, err := pool.Run(ctx, feeds); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pool.Run(ctx, feeds); err != nil {
			b.Fatal(err)
		}
	}
}
