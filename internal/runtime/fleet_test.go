package runtime_test

import (
	"context"
	"fmt"
	"os"
	goruntime "runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"unigpu/internal/runtime"
	"unigpu/internal/sim"
	"unigpu/internal/tensor"
)

// healOff disables automatic healing; tests drive HealNow explicitly.
var healOff = runtime.HealPolicy{ProbeAfter: -1}

// newTestFleet builds one fleet replica per predictMs entry, each with its
// own plan (fresh serial-ops graph, identical function) and a scripted
// fault injector (Rate 0: faults only via Fleet.Kill). It returns the
// fleet, the shared feeds, and the reference outputs every replica must
// reproduce bit-identically.
func newTestFleet(t *testing.T, predict []float64, heal runtime.HealPolicy,
	ropts runtime.RouterOptions, check time.Duration) (*runtime.Fleet, map[string]*tensor.Tensor, []*tensor.Tensor) {
	t.Helper()
	reps := make([]runtime.ReplicaConfig, len(predict))
	for i := range predict {
		g, _ := buildSerialOpsGraph()
		plan, err := runtime.NewPlan(g)
		if err != nil {
			t.Fatal(err)
		}
		name := fmt.Sprintf("dev-%d", i)
		inj := sim.NewFaultInjector(sim.FaultConfig{Seed: int64(i), Device: name})
		reps[i] = runtime.ReplicaConfig{
			Name:      name,
			Plan:      plan,
			PredictMs: predict[i],
			Pool: runtime.PoolOptions{
				Sessions:   2,
				QueueDepth: 8,
				Session:    faultSessionOpts(inj),
			},
		}
	}
	fleet, err := runtime.NewFleet(runtime.FleetOptions{
		Replicas:      reps,
		Router:        ropts,
		Heal:          heal,
		CheckInterval: check,
	})
	if err != nil {
		t.Fatal(err)
	}
	gref, feeds := buildSerialOpsGraph()
	want, err := executeReference(gref, feeds)
	if err != nil {
		t.Fatal(err)
	}
	return fleet, feeds, want
}

// outputsEqual is tensorsEqual without t.Fatalf, safe for client goroutines.
func outputsEqual(got, want []*tensor.Tensor) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if !got[i].Shape().Equal(want[i].Shape()) {
			return false
		}
		g, w := got[i].Data(), want[i].Data()
		for j := range g {
			if g[j] != w[j] {
				return false
			}
		}
	}
	return true
}

// TestFleetBitIdentity: requests served through the fleet — serial and
// concurrent, across heterogeneous replicas — return outputs bit-identical
// to the single-device reference execution.
func TestFleetBitIdentity(t *testing.T) {
	fleet, feeds, want := newTestFleet(t, []float64{1.2, 0.8, 2.5}, healOff,
		runtime.RouterOptions{}, 0)
	defer fleet.Close()
	for i := 0; i < 10; i++ {
		got, err := fleet.Run(context.Background(), feeds)
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		tensorsEqual(t, fmt.Sprintf("serial run %d", i), got, want)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for k := 0; k < 5; k++ {
				got, err := fleet.Run(context.Background(), feeds)
				if err != nil {
					errs <- fmt.Errorf("client %d run %d: %v", c, k, err)
					return
				}
				if !outputsEqual(got, want) {
					errs <- fmt.Errorf("client %d run %d: outputs diverged", c, k)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestFleetPlacementDeterminism (satellite): same seeds + same fault
// script ⇒ identical placement decisions. Observation feedback is off
// (negative EWMAAlpha) and requests are serial, so placement is a pure
// function of the oracle, quarantine state, and request order. Runs under
// -race in CI (make verify).
func TestFleetPlacementDeterminism(t *testing.T) {
	script := func() ([]int, error) {
		fleet, feeds, _ := newTestFleet(t, []float64{2.0, 1.0, 3.0}, healOff,
			runtime.RouterOptions{EWMAAlpha: -1}, time.Hour)
		defer fleet.Close()
		var placements []int
		for i := 0; i < 15; i++ {
			if i == 5 {
				fleet.Kill(1) // lose the favourite mid-script
			}
			_, idx, err := fleet.RunRouted(context.Background(), feeds)
			if err != nil {
				return nil, fmt.Errorf("request %d: %w", i, err)
			}
			placements = append(placements, idx)
		}
		return placements, nil
	}
	a, err := script()
	if err != nil {
		t.Fatal(err)
	}
	b, err := script()
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("placements diverge at request %d: %v vs %v", i, a, b)
		}
	}
	// The script's shape is also fixed: the favourite serves until the
	// kill, then traffic drains to the next-cheapest replica.
	for i := 0; i < 5; i++ {
		if a[i] != 1 {
			t.Fatalf("request %d placed on %d, want 1 (cheapest oracle)", i, a[i])
		}
	}
	for i := 5; i < 15; i++ {
		if a[i] != 0 {
			t.Fatalf("request %d placed on %d, want 0 (drain target)", i, a[i])
		}
	}
}

// TestFleetQuarantineDrains: killing a device quarantines its replica and
// drains traffic to survivors with zero request failures; the quarantined
// replica's weight drops to 0 and its state is visible in Stats.
func TestFleetQuarantineDrains(t *testing.T) {
	fleet, feeds, want := newTestFleet(t, []float64{1.0, 2.0, 3.0}, healOff,
		runtime.RouterOptions{EWMAAlpha: -1}, 0)
	defer fleet.Close()
	if _, idx, err := fleet.RunRouted(context.Background(), feeds); err != nil || idx != 0 {
		t.Fatalf("healthy placement = %d (%v), want 0", idx, err)
	}
	fleet.Kill(0)
	if got := fleet.State(0); got != runtime.ReplicaQuarantined {
		t.Fatalf("state after kill = %v, want quarantined", got)
	}
	if w := fleet.Router().Weight(0); w != 0 {
		t.Fatalf("weight after kill = %v, want 0", w)
	}
	for i := 0; i < 10; i++ {
		got, idx, err := fleet.RunRouted(context.Background(), feeds)
		if err != nil {
			t.Fatalf("post-kill run %d failed: %v", i, err)
		}
		if idx == 0 {
			t.Fatalf("post-kill run %d placed on the quarantined replica", i)
		}
		tensorsEqual(t, fmt.Sprintf("post-kill run %d", i), got, want)
	}
	st := fleet.Stats()
	if st[0].State != runtime.ReplicaQuarantined || !st[0].DeviceLost {
		t.Fatalf("stats[0] = %+v, want quarantined + device lost", st[0])
	}
	if st[1].Served+st[2].Served < 10 {
		t.Fatalf("survivors served %d+%d, want >= 10", st[1].Served, st[2].Served)
	}
}

// TestFleetHealRamp: a healed replica re-enters at partial weight and
// climbs stepwise — probe → 1/4 → 2/4 → 3/4 → full — as successes
// accumulate, rather than being slammed with full traffic.
func TestFleetHealRamp(t *testing.T) {
	heal := runtime.HealPolicy{ProbeAfter: -1, RampSteps: 3, RampSuccesses: 4}
	fleet, feeds, _ := newTestFleet(t, []float64{1.0, 10.0, 10.0}, heal,
		runtime.RouterOptions{EWMAAlpha: -1}, 0)
	defer fleet.Close()
	fleet.Kill(0)
	if _, _, err := fleet.RunRouted(context.Background(), feeds); err != nil {
		t.Fatal(err)
	}
	if got := fleet.State(0); got != runtime.ReplicaQuarantined {
		t.Fatalf("state = %v, want quarantined", got)
	}
	if !fleet.HealNow(0) {
		t.Fatal("HealNow failed on a healed device")
	}
	if got := fleet.State(0); got != runtime.ReplicaRamping {
		t.Fatalf("state after probe = %v, want ramping", got)
	}
	// Weight staircase: 1/4 for the first RampSuccesses successes, then
	// 2/4, 3/4, and finally full weight + active. The ramping replica's
	// effective score (1ms / weight) stays below the 10ms alternatives, so
	// every serial request lands on it and advances the ramp.
	wantWeights := []float64{0.25, 0.5, 0.75}
	for step, w := range wantWeights {
		if got := fleet.Router().Weight(0); got != w {
			t.Fatalf("ramp step %d: weight = %v, want %v", step, got, w)
		}
		for k := 0; k < heal.RampSuccesses; k++ {
			_, idx, err := fleet.RunRouted(context.Background(), feeds)
			if err != nil {
				t.Fatal(err)
			}
			if idx != 0 {
				t.Fatalf("ramp request placed on %d, want 0", idx)
			}
		}
	}
	if got := fleet.State(0); got != runtime.ReplicaActive {
		t.Fatalf("state after ramp = %v, want active", got)
	}
	if got := fleet.Router().Weight(0); got != 1 {
		t.Fatalf("weight after ramp = %v, want 1", got)
	}
}

// TestFleetAutoHeal (satellite): the supervisor wires FaultInjector.Heal
// into the breaker's half-open probe path — a killed device recovers and
// serves again with no explicit HealNow call from the serving layer's
// user.
func TestFleetAutoHeal(t *testing.T) {
	heal := runtime.HealPolicy{
		ProbeAfter: 20 * time.Millisecond, ProbeEvery: 20 * time.Millisecond,
		RampSteps: 1, RampSuccesses: 1,
	}
	fleet, feeds, _ := newTestFleet(t, []float64{1.0, 10.0, 10.0}, heal,
		runtime.RouterOptions{EWMAAlpha: -1}, 2*time.Millisecond)
	defer fleet.Close()
	fleet.Kill(0)
	if _, _, err := fleet.RunRouted(context.Background(), feeds); err != nil {
		t.Fatal(err)
	}
	if got := fleet.State(0); got != runtime.ReplicaQuarantined {
		t.Fatalf("state = %v, want quarantined", got)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := fleet.State(0)
		if st == runtime.ReplicaRamping || st == runtime.ReplicaActive {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica never auto-healed; state %v", st)
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Heal was actually applied to the device, not just the bookkeeping.
	if fleet.Stats()[0].DeviceLost {
		t.Fatal("device still lost after auto-heal probe")
	}
	// And the healed replica demonstrably serves traffic again.
	before := fleet.Served(0)
	for i := 0; i < 8; i++ {
		if _, _, err := fleet.RunRouted(context.Background(), feeds); err != nil {
			t.Fatal(err)
		}
	}
	if fleet.Served(0) <= before {
		t.Fatalf("healed replica served %d then %d, want it serving again",
			before, fleet.Served(0))
	}
}

// TestFleetAllQuarantinedStillServes: with every device lost, requests
// still succeed bit-identically — quarantined pools serve via CPU
// re-execution, so the fleet degrades instead of failing.
func TestFleetAllQuarantinedStillServes(t *testing.T) {
	fleet, feeds, want := newTestFleet(t, []float64{1.0, 2.0}, healOff,
		runtime.RouterOptions{EWMAAlpha: -1}, 0)
	defer fleet.Close()
	fleet.Kill(0)
	fleet.Kill(1)
	got, err := fleet.Run(context.Background(), feeds)
	if err != nil {
		t.Fatalf("all-quarantined run failed: %v", err)
	}
	tensorsEqual(t, "all-quarantined", got, want)
	for i := 0; i < fleet.Len(); i++ {
		if fleet.State(i) != runtime.ReplicaQuarantined {
			t.Fatalf("replica %d state = %v, want quarantined", i, fleet.State(i))
		}
	}
}

// TestFleetSoak is the CI fleet soak (make soak): concurrent clients over
// a three-replica fleet, the favourite device killed a third of the way
// in and healed at two thirds. Asserts zero non-deadline request failures,
// every output bit-identical to single-device execution, the healed
// replica demonstrably serving again, and no goroutine leaks. Scaled by
// UNIGPU_SOAK_RUNS like the other soaks; run under -race in the soak job.
func TestFleetSoak(t *testing.T) {
	runs := 25
	if v := os.Getenv("UNIGPU_SOAK_RUNS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			t.Fatalf("UNIGPU_SOAK_RUNS=%q: %v", v, err)
		}
		runs = n
	}
	total := runs * 3
	const clients = 6
	baseline := goruntime.NumGoroutine()
	heal := runtime.HealPolicy{ProbeAfter: -1, RampSteps: 2, RampSuccesses: 2}
	// Observation feedback off: the victim keeps the cheapest oracle, so
	// post-heal traffic reliably reaches it even at partial ramp weight.
	fleet, feeds, want := newTestFleet(t, []float64{1.0, 5.0, 8.0}, heal,
		runtime.RouterOptions{EWMAAlpha: -1}, 0)
	const victim = 0
	killAt, healAt := total/3, 2*total/3
	var (
		counter      atomic.Int64
		killOnce     sync.Once
		healOnce     sync.Once
		servedAtHeal atomic.Int64
	)
	servedAtHeal.Store(-1)
	errs := make(chan error, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for {
				n := int(counter.Add(1))
				if n > total {
					return
				}
				if n >= killAt {
					killOnce.Do(func() { fleet.Kill(victim) })
				}
				if n >= healAt {
					healOnce.Do(func() {
						for !fleet.HealNow(victim) {
							time.Sleep(time.Millisecond)
						}
						servedAtHeal.Store(fleet.Served(victim))
					})
				}
				got, err := fleet.Run(context.Background(), feeds)
				if err != nil {
					errs <- fmt.Errorf("client %d request %d: %v", c, n, err)
					return
				}
				if !outputsEqual(got, want) {
					errs <- fmt.Errorf("client %d request %d: outputs diverged", c, n)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if servedAtHeal.Load() < 0 {
		t.Fatal("heal script never ran")
	}
	if after := fleet.Served(victim); after <= servedAtHeal.Load() {
		t.Errorf("healed replica served %d before heal and %d after; want post-heal traffic",
			servedAtHeal.Load(), after)
	}
	if st := fleet.State(victim); st == runtime.ReplicaQuarantined {
		t.Errorf("victim still quarantined at soak end")
	}
	fleet.Close()
	assertNoGoroutineLeak(t, baseline)
}
