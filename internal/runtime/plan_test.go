package runtime_test

import (
	"fmt"
	"sync"
	"testing"

	"unigpu/internal/graph"
	"unigpu/internal/models"
	"unigpu/internal/ops"
	"unigpu/internal/runtime"
	"unigpu/internal/sim"
	"unigpu/internal/tensor"
)

// executeReference is a frozen copy of the seed serial executor (pre-plan,
// pre-arena): functional Execute with fresh allocations per node. The
// pooled and concurrent runtimes must stay bit-identical to it.
func executeReference(g *graph.Graph, feeds map[string]*tensor.Tensor) ([]*tensor.Tensor, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	refs := map[*graph.Node]int{}
	for _, n := range g.Nodes {
		for _, in := range n.Inputs {
			refs[in]++
		}
	}
	for _, o := range g.Outputs {
		refs[o]++
	}
	values := map[*graph.Node]*tensor.Tensor{}
	for _, n := range g.Nodes {
		switch {
		case n.IsConstant():
			values[n] = n.Value
		case n.IsInput():
			t, ok := feeds[n.Name]
			if !ok {
				return nil, fmt.Errorf("input %q not fed", n.Name)
			}
			values[n] = t
		default:
			ins := make([]*tensor.Tensor, len(n.Inputs))
			for i, in := range n.Inputs {
				ins[i] = values[in]
			}
			values[n] = n.Op.Execute(ins)
			for _, in := range n.Inputs {
				if in.Op == nil {
					continue
				}
				refs[in]--
				if refs[in] == 0 {
					delete(values, in)
				}
			}
		}
	}
	outs := make([]*tensor.Tensor, len(g.Outputs))
	for i, o := range g.Outputs {
		outs[i] = values[o]
	}
	return outs, nil
}

func tensorsEqual(t *testing.T, name string, got, want []*tensor.Tensor) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d outputs, want %d", name, len(got), len(want))
	}
	for k := range want {
		if !got[k].Shape().Equal(want[k].Shape()) {
			t.Fatalf("%s output %d: shape %v, want %v", name, k, got[k].Shape(), want[k].Shape())
		}
		gd, wd := got[k].Data(), want[k].Data()
		for i := range wd {
			if gd[i] != wd[i] { // bit-identical, not approximately equal
				t.Fatalf("%s output %d differs at %d: %v != %v", name, k, i, gd[i], wd[i])
			}
		}
	}
}

// goldenModelCases builds the full model zoo at reduced input sizes.
// Under the race detector the two heaviest models are dropped (see
// race_on_test.go); the complete zoo always runs in the race-free suite.
func goldenModelCases() map[string]int {
	sizes := map[string]int{}
	for _, name := range models.Names() {
		switch name {
		case "SSD_MobileNet1.0", "SSD_ResNet50":
			sizes[name] = 128
		case "Yolov3":
			sizes[name] = 96
		default:
			sizes[name] = 64
		}
	}
	if raceEnabled {
		// Keep one branchy classifier, one depthwise classifier and one
		// detection pipeline; shrink the detection input. Full-zoo
		// bit-identity runs in the race-free tier-1 suite.
		delete(sizes, "ResNet50_v1")
		delete(sizes, "SSD_ResNet50")
		delete(sizes, "Yolov3")
		sizes["SSD_MobileNet1.0"] = 96
	}
	return sizes
}

// TestGoldenAllModels runs every model in the zoo through the pooled
// serial session AND the concurrent scheduler and requires both to be
// bit-identical to the frozen reference executor — arena reuse and
// out-of-order dispatch must never change a single ULP.
func TestGoldenAllModels(t *testing.T) {
	for name, size := range goldenModelCases() {
		t.Run(name, func(t *testing.T) {
			m := models.Build(name, size, false)
			graph.Optimize(m.Graph)
			graph.PlaceDevices(m.Graph, graph.PlacementOptions{})
			feed := tensor.New(1, 3, size, size)
			feed.FillRandom(7)
			feeds := map[string]*tensor.Tensor{"data": feed}

			want, err := executeReference(m.Graph, feeds)
			if err != nil {
				t.Fatal(err)
			}
			plan, err := runtime.NewPlan(m.Graph)
			if err != nil {
				t.Fatal(err)
			}

			serial := plan.NewSession()
			for run := 0; run < 2; run++ { // second run reuses the arena
				got, err := serial.Run(feeds)
				if err != nil {
					t.Fatal(err)
				}
				tensorsEqual(t, fmt.Sprintf("serial run %d", run), got, want)
			}

			conc := plan.NewSessionWith(runtime.SessionOptions{Workers: 4, GPUStreams: 4})
			for run := 0; run < 2; run++ {
				got, err := conc.Run(feeds)
				if err != nil {
					t.Fatal(err)
				}
				tensorsEqual(t, fmt.Sprintf("concurrent run %d", run), got, want)
			}
		})
	}
}

// TestGoldenDetectionWithFallback covers the heterogeneous schedule:
// box_nms/multibox_detection on the CPU with device_copy queue crossings,
// GPU nodes overlapping CPU ones under the concurrent scheduler.
func TestGoldenDetectionWithFallback(t *testing.T) {
	size := 128
	if raceEnabled {
		size = 96
	}
	m := models.Build("SSD_MobileNet1.0", size, false)
	graph.Optimize(m.Graph)
	copies := graph.PlaceDevices(m.Graph, graph.PlacementOptions{
		FallbackKinds: map[string]bool{"box_nms": true, "multibox_detection": true},
	})
	if copies == 0 {
		t.Fatal("expected device_copy nodes from the fallback placement")
	}
	feed := tensor.New(1, 3, size, size)
	feed.FillRandom(3)
	feeds := map[string]*tensor.Tensor{"data": feed}

	want, err := executeReference(m.Graph, feeds)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := runtime.NewPlan(m.Graph)
	if err != nil {
		t.Fatal(err)
	}
	got, err := plan.NewSessionWith(runtime.SessionOptions{Workers: 3, GPUStreams: 2}).Run(feeds)
	if err != nil {
		t.Fatal(err)
	}
	tensorsEqual(t, "fallback concurrent", got, want)
}

// TestSharedPlanConcurrentSessions exercises many goroutines running
// private sessions off one shared Plan simultaneously (run with -race).
// A cheap branchy graph keeps every iteration in the scheduler, not the
// conv kernels, so the race detector sees many full Run interleavings.
func TestSharedPlanConcurrentSessions(t *testing.T) {
	g, feeds := buildSerialOpsGraph()
	plan, err := runtime.NewPlan(g)
	if err != nil {
		t.Fatal(err)
	}
	want, err := executeReference(g, feeds)
	if err != nil {
		t.Fatal(err)
	}

	const clients = 16
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	wg.Add(clients)
	for c := 0; c < clients; c++ {
		go func(c int) {
			defer wg.Done()
			// Mix serial and concurrent sessions over the same plan.
			s := plan.NewSessionWith(runtime.SessionOptions{Workers: 1 + c%3, GPUStreams: 1 + c%2})
			for run := 0; run < 50; run++ {
				got, err := s.Run(feeds)
				if err != nil {
					errs <- fmt.Errorf("client %d run %d: %v", c, run, err)
					return
				}
				for i, v := range want[0].Data() {
					if got[0].Data()[i] != v {
						errs <- fmt.Errorf("client %d run %d: output differs at %d", c, run, i)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// buildSerialOpsGraph is a branchy all-Into graph (conv-free so each Run is
// cheap): every operator on the path implements ExecuteInto and runs
// without goroutines, making the whole Run provably allocation-free.
func buildSerialOpsGraph() (*graph.Graph, map[string]*tensor.Tensor) {
	g := graph.New()
	in := g.Input("data", 1, 8, 8, 8)
	a := g.Apply("a", &graph.ActivationOp{Act: ops.ActReLU}, in)
	l := g.Apply("l", &graph.SigmoidOp{}, a)
	r := g.Apply("r", &graph.ActivationOp{Act: ops.ActLeakyReLU}, a)
	j := g.Apply("j", &graph.AddOp{}, l, r)
	cat := g.Apply("cat", &graph.ConcatOp{}, j, a)
	p := g.Apply("p", &graph.PoolOp{PoolKind: ops.MaxPool, Kernel: 2, Stride: 2}, cat)
	gp := g.Apply("gp", &graph.GlobalPoolOp{}, p)
	f := g.Apply("f", &graph.FlattenOp{}, gp)
	sm := g.Apply("sm", &graph.SoftmaxOp{}, f)
	g.SetOutputs(sm)
	feed := tensor.New(1, 8, 8, 8)
	feed.FillRandom(21)
	return g, map[string]*tensor.Tensor{"data": feed}
}

// TestSessionZeroAllocs is the tentpole acceptance criterion: a serial
// session's steady-state Run performs ZERO heap allocations — every
// intermediate lives in the preallocated arena.
func TestSessionZeroAllocs(t *testing.T) {
	g, feeds := buildSerialOpsGraph()
	plan, err := runtime.NewPlan(g)
	if err != nil {
		t.Fatal(err)
	}
	s := plan.NewSession()
	if _, err := s.Run(feeds); err != nil { // warm-up
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := s.Run(feeds); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Session.Run allocated %v times per run, want 0", allocs)
	}
}

// TestProfileOptIn: profiling is off by default (keeping Run
// allocation-free) and collected per node when requested.
func TestProfileOptIn(t *testing.T) {
	g, feeds := buildSerialOpsGraph()
	plan, err := runtime.NewPlan(g)
	if err != nil {
		t.Fatal(err)
	}
	s := plan.NewSession()
	if _, err := s.Run(feeds); err != nil {
		t.Fatal(err)
	}
	if s.Profile() != nil {
		t.Fatal("default session must not collect profiles")
	}
	ps := plan.NewSessionWith(runtime.SessionOptions{Profile: true})
	if _, err := ps.Run(feeds); err != nil {
		t.Fatal(err)
	}
	prof := ps.Profile()
	if len(prof) != plan.NumNodes() {
		t.Fatalf("profile has %d entries, want %d", len(prof), plan.NumNodes())
	}
	if prof[0].Kind == "" || prof[0].OutBytes == 0 {
		t.Fatalf("profile entry not populated: %+v", prof[0])
	}
}

// TestArenaReuseAcrossRuns: intermediates occupy the same arena storage on
// every Run (no per-run allocation), and slot reuse makes the arena
// strictly smaller than the sum of all intermediates.
func TestArenaReuseAcrossRuns(t *testing.T) {
	g, feeds := buildSerialOpsGraph()
	plan, err := runtime.NewPlan(g)
	if err != nil {
		t.Fatal(err)
	}
	if plan.ArenaBytes() >= plan.IntermediateBytes() {
		t.Fatalf("arena %d B should be smaller than total intermediates %d B",
			plan.ArenaBytes(), plan.IntermediateBytes())
	}
	if plan.ArenaBytes() < plan.PeakLiveBytes() {
		t.Fatalf("arena %d B cannot be below the liveness peak %d B",
			plan.ArenaBytes(), plan.PeakLiveBytes())
	}
	s := plan.NewSession()
	out1, err := s.Run(feeds)
	if err != nil {
		t.Fatal(err)
	}
	d1 := &out1[0].Data()[0]
	out2, err := s.Run(feeds)
	if err != nil {
		t.Fatal(err)
	}
	if &out2[0].Data()[0] != d1 {
		t.Fatal("output must reuse the same arena storage across Runs")
	}
}

// TestPlanMatchesExecuteSemantics: the wrapper keeps the legacy error
// contract (all inputs must be fed, shapes checked).
func TestPlanMatchesExecuteSemantics(t *testing.T) {
	g, _ := buildSerialOpsGraph()
	plan, err := runtime.NewPlan(g)
	if err != nil {
		t.Fatal(err)
	}
	s := plan.NewSession()
	if _, err := s.Run(map[string]*tensor.Tensor{}); err == nil {
		t.Fatal("missing feed must error")
	}
	if _, err := s.Run(map[string]*tensor.Tensor{"data": tensor.New(1, 2)}); err == nil {
		t.Fatal("wrong feed shape must error")
	}
	// A failed Run leaves the session reusable.
	_, feeds := buildSerialOpsGraph()
	if _, err := s.Run(feeds); err != nil {
		t.Fatalf("session must recover after a failed Run: %v", err)
	}
}

// BenchmarkSessionRun measures the pooled serial hot path at every
// storage dtype on the serial-ops graph; the benchmem acceptance
// criterion is 0 allocs/op for each dtype path — fp16 carriers, cast
// nodes and mixed-width arena slots must stay as allocation-free as the
// fp32 path. (Convolution kernels parallelize internally with goroutine
// fan-out, so their wall clock per dtype is tracked separately in
// BenchmarkConvKernels.)
func BenchmarkSessionRun(b *testing.B) {
	for _, mode := range []graph.QuantMode{
		graph.QuantOff, graph.QuantFP16, graph.QuantINT8, graph.QuantAuto,
	} {
		b.Run("dtype="+mode.String(), func(b *testing.B) {
			g, feeds := buildSerialOpsGraph()
			if _, err := graph.QuantizeGraph(g,
				graph.QuantizeOptions{Mode: mode, Device: sim.IntelHD505}); err != nil {
				b.Fatal(err)
			}
			plan, err := runtime.NewPlan(g)
			if err != nil {
				b.Fatal(err)
			}
			s := plan.NewSession()
			if _, err := s.Run(feeds); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Run(feeds); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExecuteLegacy is the same graph through the one-shot Execute
// wrapper (plan + session per call), bounding the compile-once win.
func BenchmarkExecuteLegacy(b *testing.B) {
	g, feeds := buildSerialOpsGraph()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := runtime.Execute(g, feeds); err != nil {
			b.Fatal(err)
		}
	}
}

func benchmarkSqueezeNet(b *testing.B, opts runtime.SessionOptions) {
	m := models.Build("SqueezeNet1.0", 64, false)
	graph.Optimize(m.Graph)
	graph.PlaceDevices(m.Graph, graph.PlacementOptions{})
	plan, err := runtime.NewPlan(m.Graph)
	if err != nil {
		b.Fatal(err)
	}
	s := plan.NewSessionWith(opts)
	feed := tensor.New(1, 3, 64, 64)
	feed.FillRandom(2)
	feeds := map[string]*tensor.Tensor{"data": feed}
	if _, err := s.Run(feeds); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Run(feeds); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSessionSqueezeNetSerial vs ...Concurrent: the branchy Fire
// modules admit node-level parallelism; on a multi-core host the
// concurrent variant shows the dispatch win (on a single-core CI box the
// two are expected to tie).
func BenchmarkSessionSqueezeNetSerial(b *testing.B) {
	benchmarkSqueezeNet(b, runtime.SessionOptions{})
}

func BenchmarkSessionSqueezeNetConcurrent(b *testing.B) {
	benchmarkSqueezeNet(b, runtime.SessionOptions{Workers: 4, GPUStreams: 4})
}
