package runtime

import (
	"context"
	"fmt"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"unigpu/internal/graph"
	"unigpu/internal/obs"
	"unigpu/internal/ops"
	"unigpu/internal/sim"
	"unigpu/internal/tensor"
)

// Serving metrics. Handles are cached once: Registry.Reset zeroes metrics
// in place, so these stay valid across resets.
var (
	mArenaReused   = obs.DefaultRegistry.Counter("arena.bytes_reused")
	mQueueWait     = obs.DefaultRegistry.Histogram("sched.ready_queue_wait_ns")
	mParallelNodes = obs.DefaultRegistry.Histogram("sched.parallel_nodes")
)

// srcKind says where a node input (or graph output) value comes from.
type srcKind uint8

const (
	srcNode  srcKind = iota // another operator node's output
	srcConst                // a compile-time constant
	srcFeed                 // a graph input, bound per Run
)

// valueRef resolves one input or output value.
type valueRef struct {
	kind srcKind
	node int            // srcNode: plan-node index
	tens *tensor.Tensor // srcConst: the constant
	name string         // srcFeed: graph-input name
}

// inputSpec is one graph input the caller must feed.
type inputSpec struct {
	name  string
	shape tensor.Shape
}

// feedArg is an argument slot that must be refreshed from feeds per Run.
type feedArg struct {
	node, arg int
	name      string
}

// planNode is one operator in the compiled schedule.
type planNode struct {
	name     string
	kind     string
	profKind string // kind refined by the selected kernel (e.g. conv2d/gemm)
	device   graph.DeviceClass
	op       graph.Operator
	into     graph.IntoOperator // nil: fall back to Execute + copy
	args     []valueRef
	outShape tensor.Shape
	elems    int
	slot     int  // arena slot index
	gpu      bool // serialized through the simulated GPU command queue

	// dtype is the storage type of the node's output buffer (from the
	// graph node, set by the quantization pass; Float32 otherwise) and
	// qscale the Int8 dequantization scale. Slots are dtype-segregated:
	// a buffer is only ever reused at its own element width.
	dtype  tensor.DType
	qscale float32

	// conv is the prepacked convolution for conv nodes with constant
	// weights: the selected kernel's weight layout is built once at plan
	// time and shared read-only by every session. scratchSlot/scratchElems
	// reserve the kernel's per-run workspace (im2col panels) in the arena
	// so Session.Run stays allocation-free; scratchSlot is -1 when the
	// kernel needs none.
	conv         *ops.PreparedConv
	scratchSlot  int
	scratchElems int
	scratchDT    tensor.DType // int8 GEMM packs codes; else float32
	// biasArg/resArg are the prepacked conv's optional bias and fused
	// residual positions in args (-1 when absent); postAct orders the
	// residual add after the fused activation (see ops.RunIntoEpilogue).
	biasArg int
	resArg  int
	postAct bool

	// consumers are the plan-node indices to notify on completion: the data
	// edges plus the anti-dependency (buffer-reuse) edges; pending is the
	// matching initial countdown.
	consumers []int32
	pending   int32
}

// Plan is a compiled execution plan for one optimized graph: the
// topological schedule, per-node dependency counts, and a liveness-based
// static assignment of every intermediate tensor to an arena slot. A Plan
// is immutable and safe to share between any number of Sessions; the graph
// it was compiled from must not be mutated afterwards.
//
// This is the one-time half of the split the steady-state serving loop
// needs: everything Execute used to recompute per call (validation,
// reference counts, allocation decisions) happens exactly once here.
type Plan struct {
	nodes     []planNode
	inputs    []inputSpec
	feedArgs  []feedArg
	outputs   []valueRef
	slotElems []int
	slotDType []tensor.DType
	// Per-width arena pool capacities in elements. arenaElems keeps the
	// historical fp32 name (and value) so fp32-only plans are unchanged.
	arenaElems   int // float32 pool
	arenaElems16 int // binary16 pool
	arenaElems8  int // int8 pool
	peakLive     int // refcount-liveness peak, as the seed executor measured
	interBytes   int // total intermediate bytes per run (without reuse)

	label atomic.Pointer[string] // telemetry label, see SetLabel
}

// NewPlan validates and compiles the graph into an execution plan.
func NewPlan(g *graph.Graph) (*Plan, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	p := &Plan{}
	idx := make(map[*graph.Node]int)
	var gnodes []*graph.Node // op nodes, parallel to p.nodes

	for _, n := range g.Nodes {
		if n.IsInput() {
			p.inputs = append(p.inputs, inputSpec{name: n.Name, shape: n.OutShape})
		}
	}

	// Reference counts for liveness, exactly as the seed executor built
	// them: one per consuming edge, plus one pin per graph output.
	refs := map[*graph.Node]int{}
	for _, n := range g.Nodes {
		for _, in := range n.Inputs {
			refs[in]++
		}
	}
	for _, o := range g.Outputs {
		refs[o]++
	}

	// Pass 1: plan nodes and data-dependency edges.
	for _, n := range g.Nodes {
		if n.Op == nil {
			continue
		}
		i := len(p.nodes)
		idx[n] = i
		pn := planNode{
			name: n.Name, kind: n.Op.Kind(), device: n.Device,
			op: n.Op, outShape: n.OutShape, elems: n.OutShape.NumElements(),
			gpu: n.Device == graph.OnGPU, scratchSlot: -1,
			biasArg: -1, resArg: -1,
			dtype: n.DType, qscale: n.QScale,
		}
		if io, ok := n.Op.(graph.IntoOperator); ok {
			pn.into = io
		}
		// Prepack conv weights for the selected kernel (and storage dtype).
		// Only convs with constant weights qualify (a fed or computed weight
		// could change between runs); those fall back to the generic
		// ExecuteInto path.
		pn.profKind = pn.kind
		if convOp, ok := n.Op.(*graph.ConvOp); ok &&
			len(n.Inputs) > 1 && n.Inputs[1].IsConstant() {
			pn.conv = ops.PrepareConvDType(convOp.W, convOp.Kernel, n.Inputs[1].Value, convOp.DType)
			pn.scratchElems = pn.conv.ScratchElems()
			pn.scratchDT = pn.conv.ScratchDType()
			pn.biasArg, pn.resArg = convOp.ArgIndices(len(n.Inputs))
			pn.postAct = convOp.ResidualPostAct
			pn.profKind = pn.kind + "/" + pn.conv.Kernel().String()
			if dt := pn.conv.DType(); dt != tensor.Float32 {
				pn.profKind += "@" + dt.String()
			}
			obs.Count("kernel.selected."+pn.conv.Kernel().String(), 1)
		}
		pn.args = make([]valueRef, len(n.Inputs))
		for ai, in := range n.Inputs {
			switch {
			case in.IsConstant():
				pn.args[ai] = valueRef{kind: srcConst, tens: in.Value}
			case in.IsInput():
				pn.args[ai] = valueRef{kind: srcFeed, name: in.Name}
				p.feedArgs = append(p.feedArgs, feedArg{node: i, arg: ai, name: in.Name})
			default:
				j := idx[in]
				pn.args[ai] = valueRef{kind: srcNode, node: j}
				pn.pending++
				p.nodes[j].consumers = append(p.nodes[j].consumers, int32(i))
			}
		}
		p.nodes = append(p.nodes, pn)
		gnodes = append(gnodes, n)
	}

	// Snapshot the pure data-consumer lists before anti-dependency edges
	// are appended below: only data consumers actually read a buffer.
	dataEdges := make([]int, len(p.nodes))
	for i := range p.nodes {
		dataEdges[i] = len(p.nodes[i].consumers)
	}
	readersOf := func(j int) []int32 {
		cons := p.nodes[j].consumers[:dataEdges[j]]
		out := make([]int32, 0, len(cons))
		for _, c := range cons {
			dup := false
			for _, seen := range out {
				if seen == c {
					dup = true
					break
				}
			}
			if !dup {
				out = append(out, c)
			}
		}
		return out
	}

	// Pass 2: replay the seed executor's reference-counted liveness in
	// serial topological order, assigning each intermediate a reusable
	// arena slot (best fit, growing the largest free slot when nothing
	// fits). Reusing a slot under concurrent dispatch is only safe once
	// every reader of the previous occupant has finished, so reuse adds
	// anti-dependency edges reader -> new occupant.
	type slotState struct {
		elems   int
		dtype   tensor.DType // slots only ever hold one element width
		readers []int32      // must complete before the slot is re-occupied
	}
	var slots []slotState
	var free []int
	antiSeen := map[[2]int32]bool{}
	addAnti := func(r int32, y int) {
		if int(r) == y || antiSeen[[2]int32{r, int32(y)}] {
			return
		}
		for _, a := range p.nodes[y].args {
			if a.kind == srcNode && a.node == int(r) {
				return // y already waits on r through a data edge
			}
		}
		antiSeen[[2]int32{r, int32(y)}] = true
		p.nodes[r].consumers = append(p.nodes[r].consumers, int32(y))
		p.nodes[y].pending++
	}

	// acquire takes the best-fitting free slot of the right dtype for elems
	// (growing the largest free same-dtype slot when nothing fits,
	// appending when none are free) and anti-depends node i on every reader
	// of the slot's previous occupant, so the buffer is never re-occupied
	// while still being read. Slots are never reused across element widths:
	// each lives in its dtype's arena pool.
	acquire := func(elems int, dt tensor.DType, i int) int {
		s := -1
		bestIdx, largestIdx := -1, -1
		for fi, fs := range free {
			if slots[fs].dtype != dt {
				continue
			}
			c := slots[fs].elems
			if c >= elems && (bestIdx == -1 || c < slots[free[bestIdx]].elems) {
				bestIdx = fi
			}
			if largestIdx == -1 || c > slots[free[largestIdx]].elems {
				largestIdx = fi
			}
		}
		pick := bestIdx
		if pick == -1 {
			pick = largestIdx
		}
		if pick >= 0 {
			s = free[pick]
			free = append(free[:pick], free[pick+1:]...)
			if slots[s].elems < elems {
				slots[s].elems = elems
			}
		} else {
			slots = append(slots, slotState{elems: elems, dtype: dt})
			s = len(slots) - 1
		}
		for _, r := range slots[s].readers {
			addAnti(r, i)
		}
		slots[s].readers = nil
		return s
	}

	live, peak := 0, 0
	for i, n := range gnodes {
		pn := &p.nodes[i]
		bytes := pn.dtype.Size() * pn.elems
		p.interBytes += bytes

		// Acquire the output slot before releasing inputs, so a node never
		// writes over a buffer it is still reading.
		s := acquire(pn.elems, pn.dtype, i)
		pn.slot = s

		// A prepacked conv's scratch lives only while the node runs:
		// acquire a slot, mark this node its sole reader, and free it at
		// once so the very next node may reuse it (guarded by the
		// anti-dependency edge). Scratch is deliberately excluded from the
		// liveness accounting — peakLive/interBytes keep the seed
		// executor's intermediate-tensor semantics.
		if pn.scratchElems > 0 {
			sc := acquire(pn.scratchElems, pn.scratchDT, i)
			pn.scratchSlot = sc
			slots[sc].readers = []int32{int32(i)}
			free = append(free, sc)
		}

		live += bytes
		if live > peak {
			peak = live
		}
		// Release inputs whose last consumer has run.
		for _, in := range n.Inputs {
			if in.Op == nil {
				continue // feeds and constants are caller-owned
			}
			refs[in]--
			if refs[in] == 0 {
				j := idx[in]
				live -= p.nodes[j].dtype.Size() * p.nodes[j].elems
				free = append(free, p.nodes[j].slot)
				slots[p.nodes[j].slot].readers = readersOf(j)
			}
		}
		// A node with no consumers that is not an output dies immediately.
		if refs[n] == 0 {
			live -= bytes
			free = append(free, s)
			slots[s].readers = []int32{int32(i)}
		}
	}
	p.peakLive = peak

	p.slotElems = make([]int, len(slots))
	p.slotDType = make([]tensor.DType, len(slots))
	for si, st := range slots {
		p.slotElems[si] = st.elems
		p.slotDType[si] = st.dtype
		switch st.dtype {
		case tensor.Float16:
			p.arenaElems16 += st.elems
		case tensor.Int8:
			p.arenaElems8 += st.elems
		default:
			p.arenaElems += st.elems
		}
	}

	p.outputs = make([]valueRef, len(g.Outputs))
	for k, o := range g.Outputs {
		switch {
		case o.IsConstant():
			p.outputs[k] = valueRef{kind: srcConst, tens: o.Value}
		case o.IsInput():
			p.outputs[k] = valueRef{kind: srcFeed, name: o.Name}
		default:
			p.outputs[k] = valueRef{kind: srcNode, node: idx[o]}
		}
	}
	registerPlan(p)
	return p, nil
}

// ArenaBytes is the planned arena size: what one Session preallocates for
// all intermediate tensors, summed across the per-width pools (4-byte
// fp32, 2-byte fp16, 1-byte int8 slots each count at their real width).
func (p *Plan) ArenaBytes() int { return 4*p.arenaElems + 2*p.arenaElems16 + p.arenaElems8 }

// PeakLiveBytes is the reference-counted liveness peak the seed executor
// would report for this graph — the lower bound the slot assignment
// approaches.
func (p *Plan) PeakLiveBytes() int { return p.peakLive }

// IntermediateBytes is the total bytes of intermediates produced per run
// (what a pool-less executor allocates every inference).
func (p *Plan) IntermediateBytes() int { return p.interBytes }

// NumNodes is the number of operator nodes in the schedule.
func (p *Plan) NumNodes() int { return len(p.nodes) }

// SessionOptions configures one execution session.
type SessionOptions struct {
	// Workers bounds the CPU-side worker pool for concurrent node
	// dispatch. Values <= 1 select the serial in-place loop, which
	// performs zero heap allocations per Run.
	Workers int
	// GPUStreams is the number of simulated GPU command queues. 0 or 1
	// serializes every GPU-placed node through a single in-order queue —
	// the paper's execution model, where only CPU-fallback nodes overlap
	// with the GPU — while larger values admit that many GPU nodes in
	// flight (multi-stream serving). Only meaningful with Workers > 1 or
	// GPUStreams > 1, which enable the concurrent scheduler.
	GPUStreams int
	// Profile enables per-node NodeProfile collection (off by default so
	// the hot path stays allocation-free).
	Profile bool

	// Model labels this session's telemetry — profiler rows, request
	// traces and SLO windows (default "default"). unigpu sets it to the
	// compiled model's name.
	Model string
	// Profiler receives sampled per-node timings from this session's runs
	// (nil: none). Handles are resolved once here, so a sampled run costs
	// two clock reads per node and no allocations. SessionPool installs
	// obs.DefaultProfiler unless telemetry is disabled.
	Profiler *obs.Profiler

	// Faults attaches a simulated device-fault injector: every GPU-placed
	// node's dispatch passes through it, and injected faults exercise the
	// degraded paths — bounded jittered retries for transient faults, and
	// dynamic re-execution on the CPU lane (same bit-identical kernels)
	// for persistent ones. Nil disables the whole gate; the fault-free hot
	// path costs one pointer check per node and zero allocations.
	Faults *sim.FaultInjector
	// Breaker is the per-device circuit breaker quarantining a failing
	// GPU. Share one Breaker across every session serving the same device
	// (SessionPool does); when nil and Faults is set, the session creates
	// a private one with default options.
	Breaker *Breaker
	// MaxRetries bounds per-node dispatch retries of transient faults
	// (0 = default 2, negative = no retries).
	MaxRetries int
	// RetryBackoff is the base jittered exponential backoff between
	// retries (0 = default 200µs).
	RetryBackoff time.Duration
}

// Session is the reusable steady-state run loop over one Plan: it owns a
// preallocated arena holding every intermediate tensor, so Run performs no
// heap allocations for intermediates. A Session is not safe for concurrent
// use; concurrent serving uses one Session per goroutine over a shared
// Plan.
type Session struct {
	plan       *Plan
	opts       SessionOptions
	concurrent bool
	arena      *tensor.Arena
	outs       []*tensor.Tensor   // per-node arena-backed outputs
	scratch    [][]float32        // per-node arena-backed conv workspace (nil when unused)
	scratch8   [][]int8           // per-node int8 conv workspace (quantized GEMM only)
	args       [][]*tensor.Tensor // per-node inputs; feed entries refreshed per Run
	results    []*tensor.Tensor
	pending    []int32
	profile    []NodeProfile
	readyNs    []int64 // per-node enqueue time, tracing only

	// Telemetry. profH holds the per-node profiler handles resolved at
	// construction; req and profSampled are per-run state set by RunContext
	// before any worker lane starts (and therefore safely read by all of
	// them). laneGPU/laneCPU are the precomputed dispatch-lane names.
	prof        *obs.Profiler
	profH       []obs.ProfHandle
	profSampled bool
	req         *obs.ActiveRequest
	laneGPU     []string
	laneCPU     []string

	// Fault tolerance (see SessionOptions).
	faults       *sim.FaultInjector
	breaker      *Breaker
	maxRetries   int
	retryBackoff time.Duration
	jitterState  atomic.Uint64
}

// NewSession creates a serial zero-allocation session: nodes run in
// topological order on the calling goroutine.
func (p *Plan) NewSession() *Session { return p.NewSessionWith(SessionOptions{}) }

// NewSessionWith creates a session with explicit scheduling options.
func (p *Plan) NewSessionWith(opts SessionOptions) *Session {
	s := &Session{
		plan:         p,
		opts:         opts,
		concurrent:   opts.Workers > 1 || opts.GPUStreams > 1,
		arena:        tensor.NewArenaMixed(p.arenaElems, p.arenaElems16, p.arenaElems8),
		faults:       opts.Faults,
		breaker:      opts.Breaker,
		maxRetries:   opts.MaxRetries,
		retryBackoff: opts.RetryBackoff,
	}
	if s.maxRetries == 0 {
		s.maxRetries = 2
	} else if s.maxRetries < 0 {
		s.maxRetries = 0
	}
	if s.retryBackoff <= 0 {
		s.retryBackoff = 200 * time.Microsecond
	}
	if s.faults != nil && s.breaker == nil {
		s.breaker = NewBreaker(BreakerOptions{})
	}
	s.jitterState.Store(0x9e3779b97f4a7c15)
	// Carve one buffer per slot out of the width-matching arena pool.
	slotBuf := make([][]float32, len(p.slotElems))
	slotBuf16 := make([][]uint16, len(p.slotElems))
	slotBuf8 := make([][]int8, len(p.slotElems))
	for si, e := range p.slotElems {
		switch p.slotDType[si] {
		case tensor.Float16:
			slotBuf16[si] = s.arena.Alloc16(e)
		case tensor.Int8:
			slotBuf8[si] = s.arena.Alloc8(e)
		default:
			slotBuf[si] = s.arena.Alloc(e)
		}
	}
	s.outs = make([]*tensor.Tensor, len(p.nodes))
	s.scratch = make([][]float32, len(p.nodes))
	s.scratch8 = make([][]int8, len(p.nodes))
	s.args = make([][]*tensor.Tensor, len(p.nodes))
	for i := range p.nodes {
		pn := &p.nodes[i]
		switch pn.dtype {
		case tensor.Float16:
			s.outs[i] = tensor.FromHalf(slotBuf16[pn.slot][:pn.elems:pn.elems], pn.outShape...)
		case tensor.Int8:
			s.outs[i] = tensor.FromInt8(slotBuf8[pn.slot][:pn.elems:pn.elems], pn.qscale, pn.outShape...)
		default:
			s.outs[i] = tensor.FromData(slotBuf[pn.slot][:pn.elems:pn.elems], pn.outShape...)
		}
		if pn.scratchSlot >= 0 {
			if pn.scratchDT == tensor.Int8 {
				s.scratch8[i] = slotBuf8[pn.scratchSlot][:pn.scratchElems:pn.scratchElems]
			} else {
				s.scratch[i] = slotBuf[pn.scratchSlot][:pn.scratchElems:pn.scratchElems]
			}
		}
		a := make([]*tensor.Tensor, len(pn.args))
		for ai, vr := range pn.args {
			switch vr.kind {
			case srcConst:
				a[ai] = vr.tens
			case srcNode:
				a[ai] = s.outs[vr.node]
			}
		}
		s.args[i] = a
	}
	s.results = make([]*tensor.Tensor, len(p.outputs))
	s.pending = make([]int32, len(p.nodes))
	if opts.Profile {
		s.profile = make([]NodeProfile, len(p.nodes))
	}

	// Telemetry: dispatch-lane names (serial sessions use gpu/0 and cpu/0)
	// and, with a profiler attached, one pre-resolved handle per node so
	// sampled runs record without a map lookup or allocation.
	gpuLanes, cpuLanes := 1, 1
	if opts.GPUStreams > gpuLanes {
		gpuLanes = opts.GPUStreams
	}
	if opts.Workers > cpuLanes {
		cpuLanes = opts.Workers
	}
	s.laneGPU = make([]string, gpuLanes)
	for i := range s.laneGPU {
		s.laneGPU[i] = "gpu/" + strconv.Itoa(i)
	}
	s.laneCPU = make([]string, cpuLanes)
	for i := range s.laneCPU {
		s.laneCPU[i] = "cpu/" + strconv.Itoa(i)
	}
	if opts.Profiler != nil {
		model := opts.Model
		if model == "" {
			model = "default"
		}
		s.prof = opts.Profiler
		s.profH = make([]obs.ProfHandle, len(p.nodes))
		for i := range p.nodes {
			pn := &p.nodes[i]
			s.profH[i] = s.prof.Handle(obs.ProfKey{
				Model: model, Node: pn.name, Kind: pn.profKind, Device: pn.device.String(),
			})
		}
	}
	return s
}

// Profile returns the last Run's per-node profiles in schedule order, or
// nil unless the session was created with Profile: true. The slice is
// reused across Runs.
func (s *Session) Profile() []NodeProfile { return s.profile }

// validateFeeds checks every plan input against the fed tensors before
// any kernel runs, so a mismatch surfaces as a named error instead of a
// deep kernel panic or silent corruption. All tensors in this stack are
// dense float32, so shape and element count fully determine the type.
func (p *Plan) validateFeeds(feeds map[string]*tensor.Tensor) error {
	for _, in := range p.inputs {
		t, ok := feeds[in.name]
		if !ok {
			return fmt.Errorf("runtime: input %q not fed", in.name)
		}
		if t == nil {
			return fmt.Errorf("runtime: input %q fed a nil tensor, want shape %v", in.name, in.shape)
		}
		if !t.Shape().Equal(in.shape) {
			return fmt.Errorf("runtime: input %q shape %v, want %v", in.name, t.Shape(), in.shape)
		}
		if t.DType() != tensor.Float32 {
			return fmt.Errorf("runtime: input %q fed a %s tensor; graph inputs are float32 (the quantization pass inserts casts)", in.name, t.DType())
		}
		if len(t.Data()) != in.shape.NumElements() {
			return fmt.Errorf("runtime: input %q backing data has %d elements, shape %v needs %d",
				in.name, len(t.Data()), in.shape, in.shape.NumElements())
		}
	}
	return nil
}

// Run executes the plan against the given feeds. The returned output
// tensors are arena-backed: they are valid until the session's next Run
// and must be copied to outlive it. The result slice itself is also reused
// across Runs.
func (s *Session) Run(feeds map[string]*tensor.Tensor) ([]*tensor.Tensor, error) {
	return s.RunContext(context.Background(), feeds)
}

// RunContext is Run with cancellation: the context is honoured between
// node dispatches, inside the simulated GPU queue wait, and during retry
// backoff, returning ctx.Err() promptly without deadlocking or leaking
// worker lanes. A cancelled run leaves the session reusable.
func (s *Session) RunContext(ctx context.Context, feeds map[string]*tensor.Tensor) ([]*tensor.Tensor, error) {
	p := s.plan
	if err := p.validateFeeds(feeds); err != nil {
		return nil, err
	}
	for _, fa := range p.feedArgs {
		s.args[fa.node][fa.arg] = feeds[fa.name]
	}

	traceOn := obs.Enabled()
	// Per-run telemetry state: the request recorder rides the context (only
	// sampled requests carry one), and the profiler admits 1 in N runs. Both
	// are read-only while worker lanes exist, so setting them here is safe.
	s.req = obs.RequestFromContext(ctx)
	s.profSampled = s.profH != nil && s.prof.SampleRun()
	defer s.clearRunTelemetry()
	sp := obs.Start("runtime.execute")
	if traceOn {
		sp.SetAttrs(obs.KVInt("nodes", len(p.nodes)))
		mArenaReused.Add(int64(p.interBytes - p.ArenaBytes()))
	}
	defer sp.End()

	var err error
	if s.concurrent {
		err = s.runConcurrent(ctx, sp, traceOn)
	} else {
		err = s.runSerial(ctx, sp, traceOn)
	}
	if err != nil {
		return nil, err
	}
	for k, vr := range p.outputs {
		switch vr.kind {
		case srcNode:
			s.results[k] = s.outs[vr.node]
		case srcConst:
			s.results[k] = vr.tens
		case srcFeed:
			s.results[k] = feeds[vr.name]
		}
	}
	return s.results, nil
}

// runSerial executes the schedule in topological order on the calling
// goroutine, checking for cancellation between node dispatches. With no
// fault injector attached this loop performs zero heap allocations.
func (s *Session) runSerial(ctx context.Context, sp *obs.Span, traceOn bool) error {
	p := s.plan
	for i := range p.nodes {
		if err := ctx.Err(); err != nil {
			return err
		}
		redo := false
		if p.nodes[i].gpu && s.faults != nil {
			ok, err := s.gpuGate(ctx, int32(i))
			if err != nil {
				return err
			}
			if !ok {
				// Persistent GPU failure or quarantined device: re-execute
				// on the host CPU with the same bit-identical kernels.
				mCPUReexec.Inc()
				redo = true
			}
		}
		lane := s.laneCPU[0]
		if p.nodes[i].gpu && !redo {
			lane = s.laneGPU[0]
		}
		if err := s.execNode(int32(i), sp, traceOn, lane, redo); err != nil {
			return err
		}
	}
	return nil
}

// execNode runs one node, converting an operator panic into a structured
// *NodeError carrying the node, its device and the goroutine stack —
// mirroring exec.Run's recovery — so a poisoned kernel surfaces as an
// error instead of crashing the process (or deadlocking sibling lanes
// under the concurrent scheduler).
func (s *Session) execNode(i int32, parent *obs.Span, traceOn bool, lane string, redo bool) (err error) {
	defer func() {
		if r := recover(); r != nil {
			pn := &s.plan.nodes[i]
			err = &NodeError{
				Node: pn.name, Device: pn.device,
				Cause: fmt.Errorf("panic: %v", r),
				Stack: debug.Stack(),
			}
		}
	}()
	return s.runNode(i, parent, traceOn, lane, redo)
}

// clearRunTelemetry drops the per-run telemetry state when RunContext
// returns, so a finished request is not held past its run.
func (s *Session) clearRunTelemetry() {
	s.req = nil
	s.profSampled = false
}

// runNode executes one scheduled node into its arena slot. lane names the
// dispatch lane the node ran on (e.g. gpu/0, cpu/1) and redo marks a CPU
// re-execution of a failed GPU dispatch; both flow into the node's trace
// span, the sampled profiler, and the request recorder when present.
func (s *Session) runNode(i int32, parent *obs.Span, traceOn bool, lane string, redo bool) error {
	pn := &s.plan.nodes[i]
	ins := s.args[i]
	var nsp *obs.Span
	if traceOn {
		nsp = parent.Child("node:"+pn.name,
			obs.KV("kind", pn.kind), obs.KV("device", pn.device.String()),
			obs.KV(obs.LaneAttr, lane))
	}
	profiled := s.profile != nil
	timed := profiled || traceOn || s.profSampled || s.req != nil
	var start time.Time
	if timed {
		start = time.Now()
	}
	if pn.conv != nil {
		// Prepacked convolution: selected kernel, plan-time weight layout,
		// arena-backed scratch — no per-run packing or allocation. The fused
		// residual (FuseConvResidual) rides in as an extra input; the output
		// slot is acquired before input slots are released, so the residual
		// never aliases the buffer being written.
		var bias, res *tensor.Tensor
		if pn.biasArg >= 0 {
			bias = ins[pn.biasArg]
		}
		if pn.resArg >= 0 {
			res = ins[pn.resArg]
		}
		pn.conv.RunIntoEpilogue(s.outs[i], ins[0], bias, res, s.scratch[i], s.scratch8[i], pn.postAct)
	} else if pn.into != nil {
		pn.into.ExecuteInto(s.outs[i], ins)
	} else {
		out := pn.op.Execute(ins)
		if !out.Shape().Equal(pn.outShape) {
			if traceOn {
				nsp.End()
			}
			return fmt.Errorf("runtime: node %q produced %v, inferred %v", pn.name, out.Shape(), pn.outShape)
		}
		tensor.Copy(s.outs[i], out)
	}
	if timed {
		wall := time.Since(start)
		if traceOn {
			nsp.SetAttrs(obs.KVInt("out_bytes", pn.dtype.Size()*pn.elems))
			nsp.End()
			obs.Observe("exec.node_wall_ns", float64(wall.Nanoseconds()))
		}
		if profiled {
			s.profile[i] = NodeProfile{
				Name: pn.name, Kind: pn.kind, Device: pn.device,
				Wall: wall, OutBytes: pn.dtype.Size() * pn.elems,
			}
		}
		if s.profSampled {
			s.profH[i].Record(float64(wall.Nanoseconds()))
		}
		s.req.AddNode(pn.name, pn.profKind, lane, start, wall, redo) // nil-safe
	}
	return nil
}

// redoFlag marks a channel entry as a CPU re-execution of a GPU-placed
// node whose dispatch failed persistently (or whose device is
// quarantined): the node runs on the CPU lane without re-entering the
// fault gate. Plans are far below 2^30 nodes, so the bit is free.
const redoFlag int32 = 1 << 30

// runConcurrent dispatches nodes whose dependency count hits zero to a
// bounded worker pool. Device semantics are honoured structurally: every
// GPU-placed node goes through the GPU command-queue lane(s) (a single
// in-order queue by default), CPU-fallback nodes run on the CPU pool and
// overlap with the GPU, and device_copy nodes — placed on their consumer's
// device — mark the queue-crossing points. With a fault injector attached,
// GPU dispatches pass through the gate (breaker + retries) and persistent
// failures bounce the node to the CPU lane; a panic in any worker lane
// converts to a *NodeError without deadlocking sibling lanes. Context
// cancellation is honoured between dispatches and inside the queue wait.
func (s *Session) runConcurrent(ctx context.Context, sp *obs.Span, traceOn bool) error {
	p := s.plan
	n := len(p.nodes)
	if n == 0 {
		return ctx.Err()
	}
	for i := range p.nodes {
		s.pending[i] = p.nodes[i].pending
	}
	if traceOn && s.readyNs == nil {
		s.readyNs = make([]int64, n)
	}

	gpuCh := make(chan int32, n)
	cpuCh := make(chan int32, 2*n) // original CPU nodes + every possible GPU redo
	done := make(chan struct{})
	var closeOnce sync.Once
	finish := func() { closeOnce.Do(func() { close(done) }) }
	var errMu sync.Mutex
	var firstErr error
	setErr := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		finish()
	}
	var remaining, inflight atomic.Int32
	remaining.Store(int32(n))

	enqueue := func(i int32) {
		if traceOn {
			s.readyNs[i] = time.Now().UnixNano()
		}
		if p.nodes[i].gpu {
			gpuCh <- i
		} else {
			cpuCh <- i
		}
	}
	worker := func(ch <-chan int32, lane string) {
		for {
			select {
			case i := <-ch:
				redo := i&redoFlag != 0
				i &^= redoFlag
				if traceOn && !redo {
					mQueueWait.Observe(float64(time.Now().UnixNano() - s.readyNs[i]))
				}
				if p.nodes[i].gpu && !redo && s.faults != nil {
					ok, gerr := s.gpuGate(ctx, i)
					if gerr != nil {
						setErr(gerr)
						return
					}
					if !ok {
						// Bounce to the CPU lane: the node re-executes
						// there with the same bit-identical kernels.
						mCPUReexec.Inc()
						cpuCh <- i | redoFlag
						continue
					}
				}
				if traceOn {
					mParallelNodes.Observe(float64(inflight.Add(1)))
				}
				err := s.execNode(i, sp, traceOn, lane, redo)
				if traceOn {
					inflight.Add(-1)
				}
				if err != nil {
					setErr(err)
					return
				}
				for _, c := range p.nodes[i].consumers {
					if atomic.AddInt32(&s.pending[c], -1) == 0 {
						enqueue(c)
					}
				}
				if remaining.Add(-1) == 0 {
					finish()
				}
			case <-done:
				return
			}
		}
	}

	for i := range p.nodes {
		if s.pending[i] == 0 {
			enqueue(int32(i))
		}
	}
	gpuWorkers := s.opts.GPUStreams
	if gpuWorkers < 1 {
		gpuWorkers = 1
	}
	cpuWorkers := s.opts.Workers
	if cpuWorkers < 1 {
		cpuWorkers = 1
	}
	var wg sync.WaitGroup
	wg.Add(gpuWorkers + cpuWorkers)
	for w := 0; w < gpuWorkers; w++ {
		lane := s.laneGPU[w]
		go func() { defer wg.Done(); worker(gpuCh, lane) }()
	}
	for w := 0; w < cpuWorkers; w++ {
		lane := s.laneCPU[w]
		go func() { defer wg.Done(); worker(cpuCh, lane) }()
	}
	// Cancellation watcher: closing done releases every worker blocked on
	// its queue (the "GPU queue wait"), so RunContext returns promptly.
	// The watcher itself exits through done on normal completion.
	if ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				setErr(ctx.Err())
			case <-done:
			}
		}()
	}
	wg.Wait()
	errMu.Lock()
	defer errMu.Unlock()
	return firstErr
}
