//go:build race

package runtime_test

// raceEnabled trims the golden-model matrix under the race detector: the
// scheduler's interleavings are exercised by graph structure, not model
// scale, and the full zoo runs race-free in the tier-1 suite. The 10-20x
// race slowdown on the two heaviest models would dominate `make verify`.
const raceEnabled = true
