package graph

import (
	"testing"

	"unigpu/internal/autotvm"
	"unigpu/internal/ops"
	"unigpu/internal/sim"
	"unigpu/internal/tensor"
)

func buildSelectGraph() (*Graph, *Node, *Node, *Node) {
	g := New()
	in := g.Input("data", 1, 64, 56, 56)
	w3 := ops.ConvWorkload{N: 1, CIn: 64, COut: 64, H: 56, W: 56, KH: 3, KW: 3,
		StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	c3 := g.Apply("c3", &ConvOp{W: w3}, in, g.Constant("w3", tensor.New(64, 64, 3, 3)))
	wdw := ops.ConvWorkload{N: 1, CIn: 64, COut: 64, H: 56, W: 56, KH: 3, KW: 3,
		StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, Groups: 64}
	cdw := g.Apply("cdw", &ConvOp{W: wdw}, c3, g.Constant("wdw", tensor.New(64, 1, 3, 3)))
	w1 := ops.ConvWorkload{N: 1, CIn: 64, COut: 128, H: 56, W: 56, KH: 1, KW: 1,
		StrideH: 2, StrideW: 2}
	c1 := g.Apply("c1", &ConvOp{W: w1}, cdw, g.Constant("w1", tensor.New(128, 64, 1, 1)))
	g.SetOutputs(c1)
	return g, c3, cdw, c1
}

// TestSelectConvKernels: the roofline cost model sends large 3x3 stride-1
// convs to GEMM, depthwise convs to the depthwise kernel, and never picks
// Winograd unless allowed.
func TestSelectConvKernels(t *testing.T) {
	g, c3, cdw, c1 := buildSelectGraph()
	counts := SelectConvKernels(g, KernelSelection{Device: sim.IntelHD505})
	if got := opMust[*ConvOp](t, c3).Kernel; got != ops.KernelGEMM {
		t.Fatalf("3x3 s1 conv got %v, want gemm", got)
	}
	if got := opMust[*ConvOp](t, cdw).Kernel; got != ops.KernelDepthwise {
		t.Fatalf("depthwise conv got %v, want depthwise", got)
	}
	if got := opMust[*ConvOp](t, c1).Kernel; got != ops.KernelGEMM {
		t.Fatalf("1x1 s2 conv got %v, want gemm", got)
	}
	if counts[ops.KernelWinograd] != 0 {
		t.Fatal("winograd selected without AllowWinograd")
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 3 {
		t.Fatalf("selected %d convs, want 3", total)
	}
}

// TestSelectConvKernelsWinogradOptIn: with AllowWinograd the 2.25x multiply
// saving makes F(2x2,3x3) win the big stride-1 conv; unsupported shapes
// (depthwise, 1x1 stride-2) are untouched by it.
func TestSelectConvKernelsWinogradOptIn(t *testing.T) {
	g, c3, cdw, c1 := buildSelectGraph()
	SelectConvKernels(g, KernelSelection{Device: sim.IntelHD505, AllowWinograd: true})
	if got := opMust[*ConvOp](t, c3).Kernel; got != ops.KernelWinograd {
		t.Fatalf("3x3 s1 conv got %v, want winograd", got)
	}
	if got := opMust[*ConvOp](t, cdw).Kernel; got == ops.KernelWinograd {
		t.Fatal("winograd selected for a depthwise conv")
	}
	if got := opMust[*ConvOp](t, c1).Kernel; got == ops.KernelWinograd {
		t.Fatal("winograd selected for a 1x1 conv")
	}
}

// TestSelectConvKernelsDBOverride: a KindKernel tuning record pins the
// choice regardless of what the cost model prefers, and model-made choices
// are written back to the database.
func TestSelectConvKernelsDBOverride(t *testing.T) {
	g, c3, _, _ := buildSelectGraph()
	dev := sim.IntelHD505
	db := autotvm.NewDB("")
	w := opMust[*ConvOp](t, c3).W
	db.StoreKernelChoice(dev.Name, w.Key(), "direct", 1.0)

	SelectConvKernels(g, KernelSelection{Device: dev, DB: db})
	if got := opMust[*ConvOp](t, c3).Kernel; got != ops.KernelDirect {
		t.Fatalf("DB override ignored: got %v, want direct", got)
	}
	// The other convs' model decisions were recorded.
	wdw := ops.ConvWorkload{N: 1, CIn: 64, COut: 64, H: 56, W: 56, KH: 3, KW: 3,
		StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, Groups: 64}
	if name, ok := db.LookupKernelChoice(dev.Name, wdw.Key()); !ok || name != "depthwise" {
		t.Fatalf("depthwise decision not recorded: %q, %v", name, ok)
	}
}

// TestSelectConvKernelsDBWinogradGate: a stored winograd record must not
// leak through when AllowWinograd is off — selection falls back to the
// cost model.
func TestSelectConvKernelsDBWinogradGate(t *testing.T) {
	g, c3, _, _ := buildSelectGraph()
	dev := sim.IntelHD505
	db := autotvm.NewDB("")
	db.StoreKernelChoice(dev.Name, opMust[*ConvOp](t, c3).W.Key(), "winograd", 1.0)

	SelectConvKernels(g, KernelSelection{Device: dev, DB: db})
	if got := opMust[*ConvOp](t, c3).Kernel; got == ops.KernelWinograd {
		t.Fatal("winograd DB record honoured despite AllowWinograd=false")
	}
	SelectConvKernels(g, KernelSelection{Device: dev, DB: db, AllowWinograd: true})
	if got := opMust[*ConvOp](t, c3).Kernel; got != ops.KernelWinograd {
		t.Fatalf("winograd DB record ignored with AllowWinograd=true: got %v", got)
	}
}

// TestForceConvKernel: the ablation helper sets every conv, falling back
// to direct where the kernel does not apply.
func TestForceConvKernel(t *testing.T) {
	g, c3, cdw, c1 := buildSelectGraph()
	if n := ForceConvKernel(g, ops.KernelWinograd); n != 3 {
		t.Fatalf("touched %d convs, want 3", n)
	}
	if got := opMust[*ConvOp](t, c3).Kernel; got != ops.KernelWinograd {
		t.Fatalf("3x3 s1 conv got %v, want winograd", got)
	}
	if got := opMust[*ConvOp](t, cdw).Kernel; got != ops.KernelDirect {
		t.Fatalf("depthwise conv got %v, want direct fallback", got)
	}
	if got := opMust[*ConvOp](t, c1).Kernel; got != ops.KernelDirect {
		t.Fatalf("1x1 s2 conv got %v, want direct fallback", got)
	}
}

// TestSelectWithoutDevice: with no cost model the shape heuristic applies.
func TestSelectWithoutDevice(t *testing.T) {
	g, c3, cdw, _ := buildSelectGraph()
	SelectConvKernels(g, KernelSelection{})
	if got := opMust[*ConvOp](t, c3).Kernel; got != ops.KernelGEMM {
		t.Fatalf("heuristic gave %v for 3x3 s1, want gemm", got)
	}
	if got := opMust[*ConvOp](t, cdw).Kernel; got != ops.KernelDepthwise {
		t.Fatalf("heuristic gave %v for depthwise, want depthwise", got)
	}
}

func opMust[T Operator](t *testing.T, n *Node) T {
	t.Helper()
	op, ok := opAs[T](n)
	if !ok {
		t.Fatalf("node %q is not a %T", n.Name, op)
	}
	return op
}
