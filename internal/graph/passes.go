package graph

import (
	"unigpu/internal/obs"
	"unigpu/internal/ops"
	"unigpu/internal/tensor"
)

// FoldBatchNorm folds every batch_norm whose data input is a conv2d with
// constant weights into the convolution itself (§3.2.3: "pre-computing,
// simplifying inference for batch-norm"): the conv weights are scaled per
// output channel and the shift becomes (or adjusts) the conv bias. Returns
// the number of batch norms folded.
func FoldBatchNorm(g *Graph) int {
	folded := 0
	for _, n := range g.OpNodes() {
		bn, ok := n.Op.(*BatchNormOp)
		if !ok {
			continue
		}
		conv := n.Inputs[0]
		convOp, isConv := opAs[*ConvOp](conv)
		if !isConv {
			continue
		}
		weightNode := conv.Inputs[1]
		if !weightNode.IsConstant() {
			continue
		}
		gamma, beta, mean, variance := n.Inputs[1], n.Inputs[2], n.Inputs[3], n.Inputs[4]
		if !gamma.IsConstant() || !beta.IsConstant() || !mean.IsConstant() || !variance.IsConstant() {
			continue
		}
		scale, shift := ops.FoldBatchNorm(gamma.Value, beta.Value, mean.Value, variance.Value, bn.Eps)

		// New weights: W'[o,...] = W[o,...] * scale[o].
		w := weightNode.Value.Clone()
		perOut := w.Size() / w.Shape()[0]
		for o := 0; o < w.Shape()[0]; o++ {
			s := scale.At(o)
			for i := 0; i < perOut; i++ {
				w.Data()[o*perOut+i] *= s
			}
		}
		// New bias: b' = b*scale + shift.
		b := shift.Clone()
		if len(conv.Inputs) > 2 && conv.Inputs[2].IsConstant() {
			old := conv.Inputs[2].Value
			for o := 0; o < b.Size(); o++ {
				b.Data()[o] += old.At(o) * scale.At(o)
			}
		}

		newW := g.Constant(weightNode.Name+"_bnfold", w)
		newB := g.Constant(conv.Name+"_bias_bnfold", b)
		newOp := *convOp
		newOp.W.HasBias = true
		newConv := g.Apply(conv.Name+"_bn", &newOp, conv.Inputs[0], newW, newB)
		g.replaceUses(n, newConv)
		folded++
	}
	if folded > 0 {
		g.EliminateDead()
		resort(g)
	}
	return folded
}

// FuseActivations merges relu/leaky_relu nodes into the epilogue of the
// conv2d or dense producer that feeds them (operator fusion, §3.2.3). A
// fuse is legal only when the producer's value is not observable anywhere
// else: it must have the activation as its sole consumer, must not itself
// be a graph output, and must sit on the same device. Leaky activations
// fuse only at the kernels' compiled-in slope (ops.LeakyAlpha); other
// slopes are left for FuseElementwise. The consumers map is recomputed
// after every rewrite — replaceUses changes edges, and a stale map can
// approve a second fuse onto a producer that meanwhile gained consumers.
func FuseActivations(g *Graph) int {
	fused := 0
	for {
		consumers := g.Consumers()
		outputs := outputSet(g)
		progress := false
		for _, n := range g.OpNodes() {
			act, ok := n.Op.(*ActivationOp)
			if !ok {
				continue
			}
			if act.Act == ops.ActLeakyReLU && act.Alpha != ops.LeakyAlpha {
				continue // kernel epilogues hardcode the slope
			}
			prod := n.Inputs[0]
			if len(consumers[prod]) != 1 || outputs[prod] || prod.Device != n.Device {
				continue // producer value observable elsewhere; cannot fuse
			}
			switch op := prod.Op.(type) {
			case *ConvOp:
				if op.W.FusedActivation != ops.ActNone {
					continue // epilogue slot already taken
				}
				if op.Residual && op.ResidualPostAct {
					continue // act would land before the post-act residual add
				}
				newOp := *op
				newOp.W.FusedActivation = act.Act
				prod.Op = &newOp
				obs.Count("fusion.nodes_fused.activation", 1)
			case *DenseOp:
				if op.Act != ops.ActNone {
					continue
				}
				newOp := *op
				newOp.Act = act.Act
				prod.Op = &newOp
				obs.Count("fusion.nodes_fused.dense", 1)
			default:
				continue
			}
			g.replaceUses(n, prod)
			fused++
			progress = true
			break // edges changed; rebuild consumers before the next fuse
		}
		if !progress {
			break
		}
	}
	if fused > 0 {
		g.EliminateDead()
		resort(g)
	}
	return fused
}

// FuseConvResidual folds an elementwise add of a convolution's output with
// a same-shaped tensor into the convolution's epilogue (the ResNet
// conv→add[→relu] and Darknet conv+act→add skip connections), so the
// residual row is read once during the conv's output write instead of in a
// separate full-tensor pass. The add runs before the conv's fused
// activation when none is attached yet (a later FuseActivations pass can
// then claim the trailing relu), and after it when the activation is
// already fused — matching the unfused dataflow order exactly, so results
// stay bit-identical. The conv must have the add as its sole consumer (this
// also rules out the residual operand depending on the conv, i.e. cycles),
// must not be a graph output, and both nodes must share a device.
func FuseConvResidual(g *Graph) int {
	fused := 0
	for {
		consumers := g.Consumers()
		outputs := outputSet(g)
		progress := false
	scan:
		for _, n := range g.OpNodes() {
			if _, ok := n.Op.(*AddOp); !ok || len(n.Inputs) != 2 {
				continue
			}
			for ci := 0; ci < 2; ci++ {
				conv := n.Inputs[ci]
				res := n.Inputs[1-ci]
				convOp, isConv := opAs[*ConvOp](conv)
				if !isConv || convOp.Residual || res == conv {
					continue
				}
				if len(consumers[conv]) != 1 || outputs[conv] || conv.Device != n.Device {
					continue
				}
				if !shapesEqual(res.OutShape, conv.OutShape) {
					continue
				}
				newOp := *convOp
				newOp.Residual = true
				newOp.ResidualPostAct = convOp.W.FusedActivation != ops.ActNone
				conv.Op = &newOp
				conv.Inputs = append(append([]*Node(nil), conv.Inputs...), res)
				g.replaceUses(n, conv)
				obs.Count("fusion.nodes_fused.residual", 1)
				fused++
				progress = true
				break scan // edges changed; rebuild consumers
			}
		}
		if !progress {
			break
		}
	}
	if fused > 0 {
		g.EliminateDead()
		resort(g)
	}
	return fused
}

// FuseElementwise collapses straight-line chains of elementwise operators
// (relu, leaky_relu, sigmoid, add) into a single FusedElementwiseOp that
// applies every stage per element in one memory pass, instead of one full
// read-modify-write sweep per node. Chain interiors must be private — a
// single consumer, not a graph output, same device — and an add extends a
// chain only through its first operand, so the fused per-element order is
// exactly the unfused order and results stay bit-identical. Device-copy
// nodes (and every other non-elementwise kind) break chains. Returns the
// number of nodes eliminated.
func FuseElementwise(g *Graph) int {
	consumers := g.Consumers()
	outputs := outputSet(g)
	claimed := map[*Node]bool{}

	elementwise := func(n *Node) bool {
		switch n.Op.(type) {
		case *ActivationOp, *SigmoidOp:
			return true
		case *AddOp:
			return len(n.Inputs) == 2
		}
		return false
	}

	// Collect maximal disjoint chains against one consumers snapshot.
	// Walking OpNodes in topological order guarantees each chain is first
	// visited at its head; later members are claimed by then.
	var chains [][]*Node
	for _, n := range g.OpNodes() {
		if claimed[n] || !elementwise(n) {
			continue
		}
		chain := []*Node{n}
		inChain := map[*Node]bool{n: true}
		for {
			cur := chain[len(chain)-1]
			if len(consumers[cur]) != 1 || outputs[cur] {
				break // interior values must not be observable elsewhere
			}
			next := consumers[cur][0]
			if claimed[next] || !elementwise(next) || next.Device != cur.Device {
				break
			}
			if next.Inputs[0] != cur {
				break // add joins the chain through operand 0 only
			}
			if len(next.Inputs) == 2 && inChain[next.Inputs[1]] {
				break // extra operand is an unmaterialized chain value
			}
			chain = append(chain, next)
			inChain[next] = true
		}
		if len(chain) < 2 {
			continue
		}
		for _, m := range chain {
			claimed[m] = true
		}
		chains = append(chains, chain)
	}

	eliminated := 0
	for _, chain := range chains {
		// Read inputs live: an earlier chain's rewrite may have rewired
		// this chain's source or extra operands via replaceUses.
		stages := make([]ops.ElementwiseStage, 0, len(chain))
		inputs := []*Node{chain[0].Inputs[0]}
		for _, m := range chain {
			switch op := m.Op.(type) {
			case *ActivationOp:
				if op.Act == ops.ActLeakyReLU {
					stages = append(stages, ops.ElementwiseStage{Kind: ops.EwLeakyReLU, Alpha: op.Alpha})
				} else {
					stages = append(stages, ops.ElementwiseStage{Kind: ops.EwReLU})
				}
			case *SigmoidOp:
				stages = append(stages, ops.ElementwiseStage{Kind: ops.EwSigmoid})
			case *AddOp:
				stages = append(stages, ops.ElementwiseStage{Kind: ops.EwAdd})
				inputs = append(inputs, m.Inputs[1])
			}
		}
		last := chain[len(chain)-1]
		fnode := g.Apply(last.Name+"_fusedew", &FusedElementwiseOp{Stages: stages}, inputs...)
		fnode.Device = last.Device
		g.replaceUses(last, fnode)
		obs.Count("fusion.nodes_fused.elementwise", int64(len(chain)-1))
		eliminated += len(chain) - 1
	}
	if len(chains) > 0 {
		g.EliminateDead()
		resort(g)
	}
	return eliminated
}

// outputSet returns the graph outputs as a set; fusion passes must not
// hide a node whose raw value the caller observes.
func outputSet(g *Graph) map[*Node]bool {
	m := make(map[*Node]bool, len(g.Outputs))
	for _, o := range g.Outputs {
		m[o] = true
	}
	return m
}

// shapesEqual reports whether two shapes match dimension for dimension.
func shapesEqual(a, b tensor.Shape) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// PrecomputeConstants evaluates operator nodes whose inputs are all
// constants at compile time (e.g. multibox priors), turning them into
// constant nodes. Returns the number of nodes pre-computed.
func PrecomputeConstants(g *Graph) int {
	done := 0
	replaced := map[*Node]bool{}
	for {
		progress := false
		for _, n := range g.OpNodes() {
			if replaced[n] {
				continue
			}
			allConst := len(n.Inputs) > 0
			for _, in := range n.Inputs {
				if !in.IsConstant() {
					allConst = false
					break
				}
			}
			if !allConst {
				continue
			}
			replaced[n] = true
			vals := make([]*tensor.Tensor, len(n.Inputs))
			for i, in := range n.Inputs {
				vals[i] = in.Value
			}
			c := g.Constant(n.Name+"_precomputed", n.Op.Execute(vals))
			g.replaceUses(n, c)
			done++
			progress = true
		}
		if !progress {
			break
		}
	}
	if done > 0 {
		g.EliminateDead()
		resort(g)
	}
	return done
}

// Optimize runs the standard graph-level pipeline. Each pass gets its own
// tracing span, and mutation counts feed the graph.pass_mutations counter.
func Optimize(g *Graph) {
	sp := obs.Start("graph.optimize", obs.KVInt("nodes", len(g.Nodes)))
	defer sp.End()
	runPass(g, "fold_batch_norm", FoldBatchNorm)
	runPass(g, "fuse_activations", FuseActivations)
	runPass(g, "fuse_conv_residual", FuseConvResidual)
	// A residual fuse frees the relu that followed the add; a second
	// activation pass claims it into the conv epilogue (pre-act order).
	runPass(g, "fuse_activations", FuseActivations)
	runPass(g, "fuse_elementwise", FuseElementwise)
	runPass(g, "precompute_constants", PrecomputeConstants)
	runPass(g, "eliminate_dead", func(g *Graph) int { return g.EliminateDead() })
}

// runPass times one graph pass and records how many nodes it mutated.
func runPass(g *Graph, name string, pass func(*Graph) int) int {
	sp := obs.Start("graph.pass." + name)
	n := pass(g)
	sp.SetAttrs(obs.KVInt("mutations", n))
	sp.End()
	obs.Count("graph.pass_mutations", int64(n))
	return n
}

// PlacementOptions configures the two-pass fallback placement (§3.1.2).
type PlacementOptions struct {
	// FallbackKinds lists operator kinds NOT in the known-GPU-performant
	// list: they are placed on the CPU. Empty means everything the
	// operator itself declares GPU-friendly stays on the GPU.
	FallbackKinds map[string]bool
}

// PlaceDevices implements the paper's simple two-pass heuristic: pass one
// tags each node GPU if its operator is in the known-performant list (and
// not forced to fall back), else CPU; pass two inserts a device_copy
// between any two directly connected nodes on different devices. Returns
// the number of copies inserted.
func PlaceDevices(g *Graph, opts PlacementOptions) int {
	sp := obs.Start("graph.place_devices", obs.KVInt("fallback_kinds", len(opts.FallbackKinds)))
	defer sp.End()
	// Pass 1: tag device properties.
	for _, n := range g.Nodes {
		if n.Op == nil {
			n.Device = OnGPU // values live where their consumer runs; copies handle the rest
			continue
		}
		if opts.FallbackKinds[n.Op.Kind()] || !n.Op.GPUFriendly() {
			n.Device = OnCPU
		} else {
			n.Device = OnGPU
		}
	}
	// Pass 2: insert copies on device-crossing edges.
	copies := 0
	for _, n := range g.OpNodes() {
		if n.Op.Kind() == "device_copy" {
			continue
		}
		for i, in := range n.Inputs {
			if in.Op == nil {
				continue // constants/inputs are visible to both (shared DRAM)
			}
			if in.Device != n.Device {
				cp := g.Apply(in.Name+"_copy", &DeviceCopyOp{To: n.Device}, in)
				cp.Device = n.Device
				n.Inputs[i] = cp
				copies++
			}
		}
	}
	resort(g)
	sp.SetAttrs(obs.KVInt("copies", copies))
	obs.Count("copy.bytes", int64(CopyBytes(g)))
	return copies
}

// CopyBytes returns the total tensor bytes crossing devices, for the
// fallback-overhead accounting.
func CopyBytes(g *Graph) float64 {
	var total float64
	for _, n := range g.OpNodes() {
		if n.Op.Kind() == "device_copy" {
			total += 4 * float64(n.OutShape.NumElements())
		}
	}
	return total
}

// resort re-establishes topological order after rewrites.
func resort(g *Graph) {
	state := map[*Node]int{} // 0 unvisited, 1 visiting, 2 done
	var order []*Node
	var visit func(n *Node)
	visit = func(n *Node) {
		if state[n] != 0 {
			return
		}
		state[n] = 1
		for _, in := range n.Inputs {
			visit(in)
		}
		state[n] = 2
		order = append(order, n)
	}
	// Keep every node currently in the graph, outputs last.
	for _, n := range g.Nodes {
		visit(n)
	}
	g.Nodes = order
}

// opAs extracts a typed operator from a node.
func opAs[T Operator](n *Node) (T, bool) {
	var zero T
	if n.Op == nil {
		return zero, false
	}
	op, ok := n.Op.(T)
	return op, ok
}

// TotalConvFLOPs sums conv workload flops, the dominant compute.
func TotalConvFLOPs(g *Graph) float64 {
	var total float64
	for _, n := range g.OpNodes() {
		if c, ok := opAs[*ConvOp](n); ok {
			total += c.W.FLOPs()
		}
	}
	return total
}
