package graph

import (
	"unigpu/internal/obs"
	"unigpu/internal/ops"
	"unigpu/internal/tensor"
)

// FoldBatchNorm folds every batch_norm whose data input is a conv2d with
// constant weights into the convolution itself (§3.2.3: "pre-computing,
// simplifying inference for batch-norm"): the conv weights are scaled per
// output channel and the shift becomes (or adjusts) the conv bias. Returns
// the number of batch norms folded.
func FoldBatchNorm(g *Graph) int {
	folded := 0
	for _, n := range g.OpNodes() {
		bn, ok := n.Op.(*BatchNormOp)
		if !ok {
			continue
		}
		conv := n.Inputs[0]
		convOp, isConv := opAs[*ConvOp](conv)
		if !isConv {
			continue
		}
		weightNode := conv.Inputs[1]
		if !weightNode.IsConstant() {
			continue
		}
		gamma, beta, mean, variance := n.Inputs[1], n.Inputs[2], n.Inputs[3], n.Inputs[4]
		if !gamma.IsConstant() || !beta.IsConstant() || !mean.IsConstant() || !variance.IsConstant() {
			continue
		}
		scale, shift := ops.FoldBatchNorm(gamma.Value, beta.Value, mean.Value, variance.Value, bn.Eps)

		// New weights: W'[o,...] = W[o,...] * scale[o].
		w := weightNode.Value.Clone()
		perOut := w.Size() / w.Shape()[0]
		for o := 0; o < w.Shape()[0]; o++ {
			s := scale.At(o)
			for i := 0; i < perOut; i++ {
				w.Data()[o*perOut+i] *= s
			}
		}
		// New bias: b' = b*scale + shift.
		b := shift.Clone()
		if len(conv.Inputs) > 2 && conv.Inputs[2].IsConstant() {
			old := conv.Inputs[2].Value
			for o := 0; o < b.Size(); o++ {
				b.Data()[o] += old.At(o) * scale.At(o)
			}
		}

		newW := g.Constant(weightNode.Name+"_bnfold", w)
		newB := g.Constant(conv.Name+"_bias_bnfold", b)
		newOp := *convOp
		newOp.W.HasBias = true
		newConv := g.Apply(conv.Name+"_bn", &newOp, conv.Inputs[0], newW, newB)
		g.replaceUses(n, newConv)
		folded++
	}
	if folded > 0 {
		g.EliminateDead()
		resort(g)
	}
	return folded
}

// FuseActivations merges relu/leaky_relu nodes whose only producer is a
// conv2d into the convolution's epilogue (operator fusion, §3.2.3).
func FuseActivations(g *Graph) int {
	consumers := g.Consumers()
	fused := 0
	for _, n := range g.OpNodes() {
		act, ok := n.Op.(*ActivationOp)
		if !ok {
			continue
		}
		conv := n.Inputs[0]
		convOp, isConv := opAs[*ConvOp](conv)
		if !isConv || len(consumers[conv]) != 1 {
			continue // conv feeds others too; cannot fuse
		}
		newOp := *convOp
		newOp.W.FusedActivation = act.Act
		conv.Op = &newOp
		g.replaceUses(n, conv)
		fused++
	}
	if fused > 0 {
		g.EliminateDead()
		resort(g)
	}
	return fused
}

// PrecomputeConstants evaluates operator nodes whose inputs are all
// constants at compile time (e.g. multibox priors), turning them into
// constant nodes. Returns the number of nodes pre-computed.
func PrecomputeConstants(g *Graph) int {
	done := 0
	replaced := map[*Node]bool{}
	for {
		progress := false
		for _, n := range g.OpNodes() {
			if replaced[n] {
				continue
			}
			allConst := len(n.Inputs) > 0
			for _, in := range n.Inputs {
				if !in.IsConstant() {
					allConst = false
					break
				}
			}
			if !allConst {
				continue
			}
			replaced[n] = true
			vals := make([]*tensor.Tensor, len(n.Inputs))
			for i, in := range n.Inputs {
				vals[i] = in.Value
			}
			c := g.Constant(n.Name+"_precomputed", n.Op.Execute(vals))
			g.replaceUses(n, c)
			done++
			progress = true
		}
		if !progress {
			break
		}
	}
	if done > 0 {
		g.EliminateDead()
		resort(g)
	}
	return done
}

// Optimize runs the standard graph-level pipeline. Each pass gets its own
// tracing span, and mutation counts feed the graph.pass_mutations counter.
func Optimize(g *Graph) {
	sp := obs.Start("graph.optimize", obs.KVInt("nodes", len(g.Nodes)))
	defer sp.End()
	runPass(g, "fold_batch_norm", FoldBatchNorm)
	runPass(g, "fuse_activations", FuseActivations)
	runPass(g, "precompute_constants", PrecomputeConstants)
	runPass(g, "eliminate_dead", func(g *Graph) int { return g.EliminateDead() })
}

// runPass times one graph pass and records how many nodes it mutated.
func runPass(g *Graph, name string, pass func(*Graph) int) int {
	sp := obs.Start("graph.pass." + name)
	n := pass(g)
	sp.SetAttrs(obs.KVInt("mutations", n))
	sp.End()
	obs.Count("graph.pass_mutations", int64(n))
	return n
}

// PlacementOptions configures the two-pass fallback placement (§3.1.2).
type PlacementOptions struct {
	// FallbackKinds lists operator kinds NOT in the known-GPU-performant
	// list: they are placed on the CPU. Empty means everything the
	// operator itself declares GPU-friendly stays on the GPU.
	FallbackKinds map[string]bool
}

// PlaceDevices implements the paper's simple two-pass heuristic: pass one
// tags each node GPU if its operator is in the known-performant list (and
// not forced to fall back), else CPU; pass two inserts a device_copy
// between any two directly connected nodes on different devices. Returns
// the number of copies inserted.
func PlaceDevices(g *Graph, opts PlacementOptions) int {
	sp := obs.Start("graph.place_devices", obs.KVInt("fallback_kinds", len(opts.FallbackKinds)))
	defer sp.End()
	// Pass 1: tag device properties.
	for _, n := range g.Nodes {
		if n.Op == nil {
			n.Device = OnGPU // values live where their consumer runs; copies handle the rest
			continue
		}
		if opts.FallbackKinds[n.Op.Kind()] || !n.Op.GPUFriendly() {
			n.Device = OnCPU
		} else {
			n.Device = OnGPU
		}
	}
	// Pass 2: insert copies on device-crossing edges.
	copies := 0
	for _, n := range g.OpNodes() {
		if n.Op.Kind() == "device_copy" {
			continue
		}
		for i, in := range n.Inputs {
			if in.Op == nil {
				continue // constants/inputs are visible to both (shared DRAM)
			}
			if in.Device != n.Device {
				cp := g.Apply(in.Name+"_copy", &DeviceCopyOp{To: n.Device}, in)
				cp.Device = n.Device
				n.Inputs[i] = cp
				copies++
			}
		}
	}
	resort(g)
	sp.SetAttrs(obs.KVInt("copies", copies))
	obs.Count("copy.bytes", int64(CopyBytes(g)))
	return copies
}

// CopyBytes returns the total tensor bytes crossing devices, for the
// fallback-overhead accounting.
func CopyBytes(g *Graph) float64 {
	var total float64
	for _, n := range g.OpNodes() {
		if n.Op.Kind() == "device_copy" {
			total += 4 * float64(n.OutShape.NumElements())
		}
	}
	return total
}

// resort re-establishes topological order after rewrites.
func resort(g *Graph) {
	state := map[*Node]int{} // 0 unvisited, 1 visiting, 2 done
	var order []*Node
	var visit func(n *Node)
	visit = func(n *Node) {
		if state[n] != 0 {
			return
		}
		state[n] = 1
		for _, in := range n.Inputs {
			visit(in)
		}
		state[n] = 2
		order = append(order, n)
	}
	// Keep every node currently in the graph, outputs last.
	for _, n := range g.Nodes {
		visit(n)
	}
	g.Nodes = order
}

// opAs extracts a typed operator from a node.
func opAs[T Operator](n *Node) (T, bool) {
	var zero T
	if n.Op == nil {
		return zero, false
	}
	op, ok := n.Op.(T)
	return op, ok
}

// TotalConvFLOPs sums conv workload flops, the dominant compute.
func TotalConvFLOPs(g *Graph) float64 {
	var total float64
	for _, n := range g.OpNodes() {
		if c, ok := opAs[*ConvOp](n); ok {
			total += c.W.FLOPs()
		}
	}
	return total
}
