package graph

import (
	"fmt"
	"math"
	"sort"

	"unigpu/internal/obs"
	"unigpu/internal/ops"
	"unigpu/internal/sim"
	"unigpu/internal/tensor"
)

// QuantMode selects the mixed-precision policy of QuantizeGraph.
type QuantMode int

const (
	// QuantOff leaves the graph in full precision (the default: fp32
	// stays bit-identical to the goldens).
	QuantOff QuantMode = iota
	// QuantFP16 stores every quantizable intermediate in binary16 and runs
	// convolutions over fp16 storage (fp32 accumulate).
	QuantFP16
	// QuantINT8 additionally runs convolutions through the symmetric int8
	// GEMM path (per-tensor input scales from calibration, per-channel
	// weight scales at prepack); non-conv intermediates ride fp16 carriers.
	QuantINT8
	// QuantAuto prices fp32/fp16/int8 per convolution with the roofline
	// model and picks the cheapest, casts included; carriers are fp16.
	QuantAuto
)

func (m QuantMode) String() string {
	switch m {
	case QuantFP16:
		return "fp16"
	case QuantINT8:
		return "int8"
	case QuantAuto:
		return "auto"
	}
	return "fp32"
}

// ParseQuantMode recognizes the -dtype flag values.
func ParseQuantMode(s string) (QuantMode, bool) {
	switch s {
	case "", "fp32", "float32", "off":
		return QuantOff, true
	case "fp16", "float16", "half":
		return QuantFP16, true
	case "int8":
		return QuantINT8, true
	case "auto":
		return QuantAuto, true
	}
	return QuantOff, false
}

// QuantizeOptions configures QuantizeGraph.
type QuantizeOptions struct {
	Mode QuantMode
	// Device prices the per-conv dtype choice in QuantAuto mode (nil falls
	// back to fp16 for every conv).
	Device *sim.Device
	// CalibBatches is the number of seeded random batches executed to
	// record per-tensor ranges (default 2; int8 scales come from these).
	CalibBatches int
	// CalibSeed seeds the calibration inputs (default 7).
	CalibSeed int64
	// Percentile, when in (0,1), clips the calibrated range to that
	// quantile of observed |v| instead of the max — robust to outliers at
	// the price of saturating the tail. 0 uses max-abs.
	Percentile float64
}

// QuantizeStats reports what the pass did.
type QuantizeStats struct {
	FP16Nodes     int // intermediates retagged to binary16 carriers
	INT8Convs     int // convolutions routed through the int8 GEMM path
	FP16Convs     int // convolutions computing over fp16 storage
	CastsInserted int // explicit cast nodes added
	CastsFused    int // casts avoided by narrowing in the producer's store
}

// fp32OnlyKinds are operators that must see full-precision inputs: the
// vision post-processing pipelines and the numerically delicate
// normalizations read raw float32 buffers, and cast/device_copy are
// precision-transparent plumbing the pass never retags.
var fp32OnlyKinds = map[string]bool{
	"softmax": true, "batch_norm": true, "dense": true,
	"box_nms": true, "multibox_detection": true, "yolo_decode": true,
	"roi_align": true, "device_copy": true, "cast": true,
}

// carrierKinds are operators whose output storage may be narrowed to
// binary16: their kernels are dtype-generic (widen on load, narrow on
// store), so retagging the node fuses the cast into the producer's store.
var carrierKinds = map[string]bool{
	"conv2d": true, "relu": true, "leaky_relu": true, "sigmoid": true,
	"add": true, "fused_elementwise": true, "pool2d": true,
	"global_avg_pool": true, "upsample": true, "concat": true,
	"flatten": true,
}

// QuantizeGraph lowers the graph to the requested mixed-precision policy:
// it calibrates per-tensor ranges on seeded random batches, retags
// quantizable intermediates to fp16 carriers, assigns each convolution a
// compute dtype, and inserts the minimal set of cast nodes so every
// kernel sees the storage type it expects. Graph outputs always stay
// float32, and the pass refuses to cast across a device_copy (the cast
// lands on the consumer side of the copy). QuantOff is a guaranteed
// no-op. Run it after Optimize and before SelectConvKernels.
func QuantizeGraph(g *Graph, opts QuantizeOptions) (QuantizeStats, error) {
	var st QuantizeStats
	if opts.Mode == QuantOff {
		return st, nil
	}
	sp := obs.Start("graph.quantize", obs.KVInt("nodes", len(g.Nodes)))
	defer sp.End()
	if opts.CalibBatches <= 0 {
		opts.CalibBatches = 2
	}
	if opts.CalibSeed == 0 {
		opts.CalibSeed = 7
	}

	maxAbs, err := calibrate(g, opts)
	if err != nil {
		return st, err
	}

	outputs := map[*Node]bool{}
	for _, o := range g.Outputs {
		outputs[o] = true
	}

	// Retag carriers: quantizable intermediates store binary16. Graph
	// outputs keep fp32 so callers always receive full-precision tensors.
	for _, n := range g.OpNodes() {
		if outputs[n] || !carrierKinds[n.Op.Kind()] {
			continue
		}
		if n.Op.Kind() == "concat" && len(n.OutShape) != 4 {
			continue // the rank-3 detection concat reads raw fp32 rows
		}
		n.DType = tensor.Float16
		st.FP16Nodes++
	}

	// Assign each convolution its compute dtype.
	for _, n := range g.OpNodes() {
		convOp, ok := opAs[*ConvOp](n)
		if !ok {
			continue
		}
		switch opts.Mode {
		case QuantFP16:
			convOp.DType = tensor.Float16
		case QuantINT8:
			convOp.DType = tensor.Int8
		case QuantAuto:
			convOp.DType = pickConvDType(convOp.W, n, opts.Device)
		}
		switch convOp.DType {
		case tensor.Int8:
			st.INT8Convs++
		case tensor.Float16:
			st.FP16Convs++
		}
	}

	// Insert casts where storage requirements are exact. Two sites:
	// a conv's data input must match its compute dtype bit-for-bit (the
	// kernels read typed buffers), and fp32-only operators must see
	// float32. Everything else widens through the generic accessors.
	// Casts are deduplicated per (producer, dtype) so shared tensors are
	// converted once, and a cast never lands between a device_copy and its
	// producer — the consumer-side edge gets it instead.
	castCache := map[castKey]*Node{}
	for _, n := range g.OpNodes() {
		kind := n.Op.Kind()
		if kind == "cast" {
			continue
		}
		convOp, isConv := opAs[*ConvOp](n)
		for ai, in := range n.Inputs {
			var want tensor.DType
			switch {
			case isConv && ai == 0:
				want = convOp.DType
			case fp32OnlyKinds[kind] && kind != "device_copy":
				want = tensor.Float32
			default:
				continue // dtype-generic consumer: no exact requirement
			}
			have := dtypeOf(in)
			if have == want {
				if isConv && ai == 0 && want == tensor.Float16 && in.Op != nil && !in.IsConstant() {
					// The producer's store already narrows to fp16: the
					// cast fused into its epilogue instead of existing.
					st.CastsFused++
				}
				continue
			}
			scale := float32(0)
			if want == tensor.Int8 {
				scale = tensor.Int8Scale(calibRange(maxAbs[in], opts.Percentile))
			}
			key := castKey{from: in, to: want, scale: scale}
			cast := castCache[key]
			if cast == nil {
				cast = g.Apply(in.Name+"_cast_"+want.String(), &CastOp{To: want, Scale: scale}, in)
				cast.DType = want
				cast.QScale = scale
				cast.Device = n.Device
				castCache[key] = cast
				st.CastsInserted++
			}
			n.Inputs[ai] = cast
		}
	}

	// Dense weights ride binary16 constants: half the weight traffic for a
	// layer that is memory-bound on every zoo model. Only exclusively-owned
	// constants convert, so a shared weight never changes under another
	// consumer. (Conv weights narrow at prepack time instead.)
	if opts.Mode != QuantOff {
		cons := g.Consumers()
		for _, n := range g.OpNodes() {
			if n.Op.Kind() != "dense" || len(n.Inputs) < 2 {
				continue
			}
			w := n.Inputs[1]
			if w.IsConstant() && len(cons[w]) == 1 && w.Value.DType() == tensor.Float32 {
				w.Value = tensor.Convert(w.Value, tensor.Float16, 0)
				w.DType = tensor.Float16
			}
		}
	}

	resort(g)
	sp.SetAttrs(obs.KVInt("casts", st.CastsInserted), obs.KVInt("fp16_nodes", st.FP16Nodes))
	return st, nil
}

// castKey deduplicates cast nodes per converted tensor.
type castKey struct {
	from  *Node
	to    tensor.DType
	scale float32
}

// dtypeOf is the storage type a node's value presents to consumers.
func dtypeOf(n *Node) tensor.DType { return n.StorageDType() }

// DTypeConvScale is the ratio of total roofline conv time at each conv's
// assigned compute dtype to the same kernels priced at fp32 — the factor
// quantization scales the tuned conv milliseconds by on this device. A
// full-precision graph (or nil device) returns exactly 1.
func DTypeConvScale(g *Graph, d *sim.Device) float64 {
	if d == nil {
		return 1
	}
	var base, quant float64
	for _, n := range g.OpNodes() {
		convOp, ok := opAs[*ConvOp](n)
		if !ok {
			continue
		}
		k := convOp.Kernel
		if k == ops.KernelAuto {
			k = ops.DefaultKernel(convOp.W)
		}
		f, e, eb, eff := kernelCost(convOp.W, k, tensor.Float32)
		base += d.AlgoSeconds(f, e, eb, eff)
		f, e, eb, eff = kernelCost(convOp.W, k, convOp.DType)
		quant += d.AlgoSeconds(f, e, eb, eff)
	}
	if base <= 0 {
		return 1
	}
	return quant / base
}

// pickConvDType prices one convolution at each storage dtype on the
// device — cheapest kernel via the roofline model, plus the cast pass
// needed to bring the fp16 carrier input into that dtype — and returns the
// cheapest. Ties break toward the wider type.
func pickConvDType(w ops.ConvWorkload, n *Node, d *sim.Device) tensor.DType {
	if d == nil {
		return tensor.Float16
	}
	inElems := float64(w.N * w.CIn * w.H * w.W)
	best, bestSec := tensor.Float16, math.Inf(1)
	for _, dt := range []tensor.DType{tensor.Float32, tensor.Float16, tensor.Int8} {
		sec := math.Inf(1)
		for _, k := range ops.ConvKernels {
			if !ops.KernelSupported(k, w) || k == ops.KernelWinograd {
				continue
			}
			if dt == tensor.Int8 && k != ops.KernelGEMM {
				continue
			}
			flops, elems, eff := ops.KernelProfile(w, k)
			if s := d.AlgoSeconds(flops, elems, float64(dt.Size()), eff); s < sec {
				sec = s
			}
		}
		if dt != tensor.Float16 {
			// The carrier is fp16: running at another dtype pays a cast
			// (read fp16 + write dt) over the conv's input activation.
			sec += sim.CostFlopsBytes(d, 0, inElems, float64(2+dt.Size())/2, 1)
		}
		if sec < bestSec-1e-12 {
			best, bestSec = dt, sec
		}
	}
	return best
}

// calibrate executes the (still full-precision) graph on seeded random
// inputs and records each value's observed max |v| per batch — the ranges
// int8 input scales quantize against.
func calibrate(g *Graph, opts QuantizeOptions) (map[*Node][]float64, error) {
	need := opts.Mode == QuantINT8 || opts.Mode == QuantAuto
	if !need {
		return nil, nil
	}
	ranges := map[*Node][]float64{}
	vals := map[*Node]*tensor.Tensor{}
	for b := 0; b < opts.CalibBatches; b++ {
		for _, n := range g.Nodes {
			switch {
			case n.IsInput():
				t := tensor.New(n.OutShape...)
				t.FillRandom(opts.CalibSeed + int64(b)*1009 + int64(n.ID))
				vals[n] = t
			case n.IsConstant():
				vals[n] = n.Value
			default:
				ins := make([]*tensor.Tensor, len(n.Inputs))
				for i, in := range n.Inputs {
					ins[i] = vals[in]
					if ins[i] == nil {
						return nil, fmt.Errorf("graph: quantize calibration: node %q input %q has no value", n.Name, in.Name)
					}
				}
				vals[n] = n.Op.Execute(ins)
			}
			t := vals[n]
			if t == nil || n.IsConstant() {
				continue
			}
			m := 0.0
			sz := t.Size()
			for i := 0; i < sz; i++ {
				v := math.Abs(float64(t.GetF(i)))
				if v > m {
					m = v
				}
			}
			ranges[n] = append(ranges[n], m)
		}
	}
	return ranges, nil
}

// calibRange reduces per-batch max-abs observations to the clip range: the
// max over batches, or — with a percentile configured — that quantile of
// the per-batch maxima (a coarse but deterministic outlier clip).
func calibRange(batchMax []float64, pct float64) float64 {
	if len(batchMax) == 0 {
		return 0
	}
	if pct > 0 && pct < 1 && len(batchMax) > 1 {
		s := append([]float64(nil), batchMax...)
		sort.Float64s(s)
		idx := int(math.Ceil(pct*float64(len(s)))) - 1
		if idx < 0 {
			idx = 0
		}
		return s[idx]
	}
	m := 0.0
	for _, v := range batchMax {
		if v > m {
			m = v
		}
	}
	return m
}
