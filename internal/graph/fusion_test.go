package graph_test

import (
	"testing"

	"unigpu/internal/graph"
	"unigpu/internal/ops"
	"unigpu/internal/runtime"
	"unigpu/internal/tensor"
)

// mustEqualBits fails unless got and want match bit for bit — the fusion
// passes promise order-preserving math, so "close" is not good enough.
func mustEqualBits(t *testing.T, name string, got, want *tensor.Tensor) {
	t.Helper()
	if !got.Shape().Equal(want.Shape()) {
		t.Fatalf("%s: shape %v, want %v", name, got.Shape(), want.Shape())
	}
	gd, wd := got.Data(), want.Data()
	for i := range gd {
		if gd[i] != wd[i] {
			t.Fatalf("%s: bit mismatch at %d: got %g want %g", name, i, gd[i], wd[i])
		}
	}
}

// kindCounts tallies operator kinds for structural assertions.
func kindCounts(g *graph.Graph) map[string]int {
	m := map[string]int{}
	for _, n := range g.OpNodes() {
		m[n.Op.Kind()]++
	}
	return m
}

func newConv(g *graph.Graph, name string, in *graph.Node, cin, cout int, seed int64) *graph.Node {
	s := in.OutShape
	wl := ops.ConvWorkload{N: s[0], CIn: cin, H: s[2], W: s[3], COut: cout,
		KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	w := tensor.New(cout, cin, 3, 3)
	w.FillRandom(seed)
	return g.Apply(name, &graph.ConvOp{W: wl}, in, g.Constant(name+"_w", w))
}

// Regression for the stale-consumers bug: with conv -> relu -> leaky, the
// old FuseActivations computed the consumers map once, fused the relu, and
// then — reading stale edges — fused the leaky as well, overwriting the
// conv's epilogue with leaky and silently dropping the relu. Only the
// first activation may fuse; the second must survive as a node.
func TestFuseActivationsStaleConsumers(t *testing.T) {
	build := func() (*graph.Graph, *tensor.Tensor) {
		g := graph.New()
		in := g.Input("data", 1, 3, 8, 8)
		conv := newConv(g, "conv0", in, 3, 4, 1)
		relu := g.Apply("relu0", &graph.ActivationOp{Act: ops.ActReLU}, conv)
		leaky := g.Apply("leaky0", &graph.ActivationOp{Act: ops.ActLeakyReLU, Alpha: ops.LeakyAlpha}, relu)
		g.SetOutputs(leaky)
		feed := tensor.New(1, 3, 8, 8)
		feed.FillRandom(7)
		return g, feed
	}
	g, feed := build()
	want := runGraph(t, g, feed)

	g2, _ := build()
	if fused := graph.FuseActivations(g2); fused != 1 {
		t.Fatalf("fused %d activations, want 1 (the relu only)", fused)
	}
	k := kindCounts(g2)
	if k["leaky_relu"] != 1 || k["relu"] != 0 {
		t.Fatalf("after fuse: kinds %v, want the leaky_relu kept and the relu gone", k)
	}
	mustEqualBits(t, "stale-consumers", runGraph(t, g2, feed), want)
}

// A leaky activation with a slope other than the kernels' compiled-in
// ops.LeakyAlpha must not fuse into a conv epilogue.
func TestFuseActivationsSkipsNonDefaultAlpha(t *testing.T) {
	g := graph.New()
	in := g.Input("data", 1, 3, 8, 8)
	conv := newConv(g, "conv0", in, 3, 4, 1)
	leaky := g.Apply("leaky0", &graph.ActivationOp{Act: ops.ActLeakyReLU, Alpha: 0.25}, conv)
	g.SetOutputs(leaky)
	if fused := graph.FuseActivations(g); fused != 0 {
		t.Fatalf("fused %d, want 0: slope 0.25 is not expressible in the epilogue", fused)
	}
}

// A producer whose raw value is a graph output must keep its node: fusing
// the downstream activation would change what the caller observes.
func TestFuseActivationsSkipsOutputProducer(t *testing.T) {
	g := graph.New()
	in := g.Input("data", 1, 3, 8, 8)
	conv := newConv(g, "conv0", in, 3, 4, 1)
	relu := g.Apply("relu0", &graph.ActivationOp{Act: ops.ActReLU}, conv)
	g.SetOutputs(conv, relu)
	if fused := graph.FuseActivations(g); fused != 0 {
		t.Fatalf("fused %d, want 0: conv's raw value is observed", fused)
	}
}

// Activations also fuse into dense epilogues, bit-identically.
func TestFuseActivationsDense(t *testing.T) {
	build := func() (*graph.Graph, *tensor.Tensor) {
		g := graph.New()
		in := g.Input("data", 2, 16)
		w := tensor.New(8, 16)
		w.FillRandom(3)
		b := tensor.New(8)
		b.FillRandom(4)
		d := g.Apply("fc", &graph.DenseOp{}, in, g.Constant("fc_w", w), g.Constant("fc_b", b))
		relu := g.Apply("relu", &graph.ActivationOp{Act: ops.ActReLU}, d)
		g.SetOutputs(relu)
		feed := tensor.New(2, 16)
		feed.FillRandom(9)
		return g, feed
	}
	g, feed := build()
	want := runGraph(t, g, feed)

	g2, _ := build()
	if fused := graph.FuseActivations(g2); fused != 1 {
		t.Fatalf("fused %d, want 1", fused)
	}
	k := kindCounts(g2)
	if k["relu"] != 0 || k["dense"] != 1 {
		t.Fatalf("after fuse: kinds %v", k)
	}
	mustEqualBits(t, "dense-act", runGraph(t, g2, feed), want)
}

// buildResidualBlock is the ResNet shape: conv -> add(shortcut) -> relu.
func buildResidualBlock() (*graph.Graph, *tensor.Tensor) {
	g := graph.New()
	in := g.Input("data", 1, 4, 8, 8)
	conv := newConv(g, "conv0", in, 4, 4, 2)
	add := g.Apply("add0", &graph.AddOp{}, conv, in)
	relu := g.Apply("relu0", &graph.ActivationOp{Act: ops.ActReLU}, add)
	g.SetOutputs(relu)
	feed := tensor.New(1, 4, 8, 8)
	feed.FillRandom(11)
	return g, feed
}

// The ResNet pattern conv -> add -> relu collapses to a single conv with a
// pre-activation residual epilogue, bit-identically.
func TestFuseConvResidualPreAct(t *testing.T) {
	g, feed := buildResidualBlock()
	want := runGraph(t, g, feed)

	g2, _ := buildResidualBlock()
	if n := graph.FuseConvResidual(g2); n != 1 {
		t.Fatalf("fused %d residual adds, want 1", n)
	}
	if n := graph.FuseActivations(g2); n != 1 {
		t.Fatalf("fused %d trailing activations, want 1", n)
	}
	k := kindCounts(g2)
	if k["add"] != 0 || k["relu"] != 0 || k["conv2d"] != 1 {
		t.Fatalf("after fuse: kinds %v, want a lone conv2d", k)
	}
	convOp := g2.OpNodes()[0].Op.(*graph.ConvOp)
	if !convOp.Residual || convOp.ResidualPostAct {
		t.Fatalf("want pre-act residual conv, got %+v", convOp)
	}
	mustEqualBits(t, "residual-preact", runGraph(t, g2, feed), want)
}

// The Darknet pattern conv(+leaky) -> add keeps the activation before the
// residual add: the fuse must mark the epilogue post-act.
func TestFuseConvResidualPostAct(t *testing.T) {
	build := func() (*graph.Graph, *tensor.Tensor) {
		g := graph.New()
		in := g.Input("data", 1, 4, 8, 8)
		conv := newConv(g, "conv0", in, 4, 4, 5)
		leaky := g.Apply("leaky0", &graph.ActivationOp{Act: ops.ActLeakyReLU, Alpha: ops.LeakyAlpha}, conv)
		add := g.Apply("add0", &graph.AddOp{}, leaky, in)
		g.SetOutputs(add)
		feed := tensor.New(1, 4, 8, 8)
		feed.FillRandom(12)
		return g, feed
	}
	g, feed := build()
	want := runGraph(t, g, feed)

	g2, _ := build()
	graph.FuseActivations(g2)
	if n := graph.FuseConvResidual(g2); n != 1 {
		t.Fatalf("fused %d residual adds, want 1", n)
	}
	convOp := g2.OpNodes()[0].Op.(*graph.ConvOp)
	if !convOp.Residual || !convOp.ResidualPostAct {
		t.Fatalf("want post-act residual conv, got %+v", convOp)
	}
	mustEqualBits(t, "residual-postact", runGraph(t, g2, feed), want)
}

// A conv whose output feeds anything beyond the add must not absorb the
// residual: its raw value is still needed elsewhere.
func TestFuseConvResidualSkipsMultiConsumer(t *testing.T) {
	g := graph.New()
	in := g.Input("data", 1, 4, 8, 8)
	conv := newConv(g, "conv0", in, 4, 4, 2)
	add := g.Apply("add0", &graph.AddOp{}, conv, in)
	sig := g.Apply("sig0", &graph.SigmoidOp{}, conv)
	g.SetOutputs(add, sig)
	if n := graph.FuseConvResidual(g); n != 0 {
		t.Fatalf("fused %d, want 0: conv has two consumers", n)
	}
}

// A conv that is itself a graph output keeps its raw value.
func TestFuseConvResidualSkipsOutputConv(t *testing.T) {
	g := graph.New()
	in := g.Input("data", 1, 4, 8, 8)
	conv := newConv(g, "conv0", in, 4, 4, 2)
	add := g.Apply("add0", &graph.AddOp{}, conv, in)
	g.SetOutputs(conv, add)
	if n := graph.FuseConvResidual(g); n != 0 {
		t.Fatalf("fused %d, want 0: conv's raw value is an output", n)
	}
}

// Residual fusion does not require constant weights: with a fed weight the
// plan cannot prepack, and the conv runs through the generic ExecuteInto
// path — which must honour the residual operand identically.
func TestFuseConvResidualFedWeight(t *testing.T) {
	build := func() (*graph.Graph, map[string]*tensor.Tensor) {
		g := graph.New()
		in := g.Input("data", 1, 4, 8, 8)
		s := in.OutShape
		wl := ops.ConvWorkload{N: s[0], CIn: 4, H: s[2], W: s[3], COut: 4,
			KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
		w := g.Input("weight", 4, 4, 3, 3)
		conv := g.Apply("conv0", &graph.ConvOp{W: wl}, in, w)
		add := g.Apply("add0", &graph.AddOp{}, conv, in)
		relu := g.Apply("relu0", &graph.ActivationOp{Act: ops.ActReLU}, add)
		g.SetOutputs(relu)
		feed := tensor.New(1, 4, 8, 8)
		feed.FillRandom(21)
		wt := tensor.New(4, 4, 3, 3)
		wt.FillRandom(22)
		return g, map[string]*tensor.Tensor{"data": feed, "weight": wt}
	}
	g, feeds := build()
	want := runGraphFeeds(t, g, feeds)

	g2, _ := build()
	if n := graph.FuseConvResidual(g2); n != 1 {
		t.Fatalf("fused %d residual adds, want 1", n)
	}
	graph.FuseActivations(g2)
	mustEqualBits(t, "fed-weight-residual", runGraphFeeds(t, g2, feeds), want)
}

// buildElementwiseChain is relu -> sigmoid -> add(extra) off one source.
func buildElementwiseChain() (*graph.Graph, *tensor.Tensor) {
	g := graph.New()
	in := g.Input("data", 1, 2, 4, 4)
	relu := g.Apply("relu0", &graph.ActivationOp{Act: ops.ActReLU}, in)
	sig := g.Apply("sig0", &graph.SigmoidOp{}, relu)
	add := g.Apply("add0", &graph.AddOp{}, sig, in)
	g.SetOutputs(add)
	feed := tensor.New(1, 2, 4, 4)
	feed.FillRandom(31)
	return g, feed
}

// An elementwise chain collapses into one FusedElementwiseOp whose staged
// math is bit-identical to the separate kernels.
func TestFuseElementwiseChain(t *testing.T) {
	g, feed := buildElementwiseChain()
	want := runGraph(t, g, feed)

	g2, _ := buildElementwiseChain()
	if n := graph.FuseElementwise(g2); n != 2 {
		t.Fatalf("eliminated %d nodes, want 2", n)
	}
	k := kindCounts(g2)
	if k["fused_elementwise"] != 1 || len(g2.OpNodes()) != 1 {
		t.Fatalf("after fuse: kinds %v, want a lone fused_elementwise", k)
	}
	fop := g2.OpNodes()[0].Op.(*graph.FusedElementwiseOp)
	if len(fop.Stages) != 3 {
		t.Fatalf("stages %v, want relu/sigmoid/add", fop.Stages)
	}
	// A non-default leaky slope is expressible here (per-stage alpha).
	mustEqualBits(t, "elementwise-chain", runGraph(t, g2, feed), want)
}

// A chain interior read by a second consumer must stay materialized.
func TestFuseElementwiseSkipsMultiConsumerInterior(t *testing.T) {
	g := graph.New()
	in := g.Input("data", 1, 2, 4, 4)
	relu := g.Apply("relu0", &graph.ActivationOp{Act: ops.ActReLU}, in)
	sig := g.Apply("sig0", &graph.SigmoidOp{}, relu)
	tap := g.Apply("add1", &graph.AddOp{}, relu, in) // second reader of relu
	g.SetOutputs(sig, tap)
	if n := graph.FuseElementwise(g); n != 0 {
		t.Fatalf("eliminated %d, want 0: relu feeds two consumers", n)
	}
}

// Device crossings break chains: a device_copy between two elementwise
// nodes must not be fused across.
func TestFuseElementwiseStopsAtDeviceCopy(t *testing.T) {
	g := graph.New()
	in := g.Input("data", 1, 2, 4, 4)
	relu := g.Apply("relu0", &graph.ActivationOp{Act: ops.ActReLU}, in)
	sig := g.Apply("sig0", &graph.SigmoidOp{}, relu)
	g.SetOutputs(sig)
	copies := graph.PlaceDevices(g, graph.PlacementOptions{FallbackKinds: map[string]bool{"sigmoid": true}})
	if copies == 0 {
		t.Fatal("placement inserted no device copies; test premise broken")
	}
	if n := graph.FuseElementwise(g); n != 0 {
		t.Fatalf("eliminated %d, want 0: the chain crosses devices", n)
	}
}

// A non-default leaky slope cannot ride a conv epilogue but fuses fine in
// an elementwise chain, which carries per-stage alphas.
func TestFuseElementwiseCarriesLeakyAlpha(t *testing.T) {
	build := func() (*graph.Graph, *tensor.Tensor) {
		g := graph.New()
		in := g.Input("data", 1, 2, 4, 4)
		leaky := g.Apply("leaky0", &graph.ActivationOp{Act: ops.ActLeakyReLU, Alpha: 0.3}, in)
		sig := g.Apply("sig0", &graph.SigmoidOp{}, leaky)
		g.SetOutputs(sig)
		feed := tensor.New(1, 2, 4, 4)
		feed.FillRandom(41)
		return g, feed
	}
	g, feed := build()
	want := runGraph(t, g, feed)

	g2, _ := build()
	if n := graph.FuseElementwise(g2); n != 1 {
		t.Fatalf("eliminated %d, want 1", n)
	}
	fop := g2.OpNodes()[0].Op.(*graph.FusedElementwiseOp)
	if fop.Stages[0].Kind != ops.EwLeakyReLU || fop.Stages[0].Alpha != 0.3 {
		t.Fatalf("stage 0 = %+v, want leaky alpha 0.3", fop.Stages[0])
	}
	mustEqualBits(t, "leaky-alpha-chain", runGraph(t, g2, feed), want)
}

// The full Optimize pipeline on a residual block leaves a single conv and
// keeps results bit-identical.
func TestOptimizeFusesResidualBlock(t *testing.T) {
	g, feed := buildResidualBlock()
	want := runGraph(t, g, feed)

	g2, _ := buildResidualBlock()
	graph.Optimize(g2)
	if n := len(g2.OpNodes()); n != 1 {
		t.Fatalf("optimize left %d op nodes, want 1: %v", n, kindCounts(g2))
	}
	mustEqualBits(t, "optimize-residual", runGraph(t, g2, feed), want)
}

func runGraphFeeds(t *testing.T, g *graph.Graph, feeds map[string]*tensor.Tensor) *tensor.Tensor {
	t.Helper()
	res, err := runtime.Execute(g, feeds)
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	return res.Outputs[0]
}
