package graph

import (
	"unigpu/internal/autotvm"
	"unigpu/internal/ops"
	"unigpu/internal/sim"
	"unigpu/internal/tensor"
)

// KernelSelection configures the conv algorithm-selection pass.
type KernelSelection struct {
	// Device drives the roofline cost model (sim.Device.AlgoSeconds); nil
	// falls back to the shape heuristic ops.DefaultKernel.
	Device *sim.Device
	// DB, when non-nil, is consulted first: a KindKernel record for the
	// (device, workload) pair overrides the cost model, and cost-model
	// decisions are written back so later compiles replay them.
	DB *autotvm.DB
	// AllowWinograd permits the F(2x2,3x3) kernel, which reassociates the
	// reduction and so changes numerics (~1e-4 vs direct). Off by default:
	// without it every selectable kernel is bit-identical to direct, so
	// whole-model golden outputs are unchanged by selection.
	AllowWinograd bool
}

// candidateKernels returns the kernels the selector may choose for w at
// storage dtype dt. Winograd has no reduced-precision variant (its
// transform reassociation compounds badly with narrowed storage); int8
// always computes through the quantized GEMM path.
func (sel KernelSelection) candidateKernels(w ops.ConvWorkload, dt tensor.DType) []ops.ConvKernel {
	if dt == tensor.Int8 {
		return []ops.ConvKernel{ops.KernelGEMM}
	}
	cands := make([]ops.ConvKernel, 0, 4)
	for _, k := range ops.ConvKernels {
		if !ops.KernelSupported(k, w) {
			continue
		}
		if k == ops.KernelWinograd && (!sel.AllowWinograd || dt != tensor.Float32) {
			continue
		}
		cands = append(cands, k)
	}
	return cands
}

// dbDType maps a storage dtype to its tuning-record key segment ("" for
// fp32, keeping pre-mixed-precision databases resolvable).
func dbDType(dt tensor.DType) string {
	if dt == tensor.Float32 {
		return ""
	}
	return dt.String()
}

// pick returns the chosen kernel for w at storage dtype dt plus its
// estimated milliseconds (NaN-free; 0 when no cost model is configured).
func (sel KernelSelection) pick(w ops.ConvWorkload, dt tensor.DType) (ops.ConvKernel, float64) {
	if sel.DB != nil && sel.Device != nil {
		if name, ok := sel.DB.LookupKernelChoiceDType(sel.Device.Name, w.Key(), dbDType(dt)); ok {
			if k, ok := ops.ParseConvKernel(name); ok && k != ops.KernelAuto &&
				ops.KernelSupported(k, w) &&
				(k != ops.KernelWinograd || (sel.AllowWinograd && dt == tensor.Float32)) &&
				(dt != tensor.Int8 || k == ops.KernelGEMM) {
				return k, 0
			}
		}
	}
	if sel.Device == nil {
		if dt == tensor.Int8 {
			return ops.KernelGEMM, 0
		}
		return ops.DefaultKernel(w), 0
	}
	best, bestSec := ops.KernelDirect, 0.0
	for i, k := range sel.candidateKernels(w, dt) {
		sec := sel.Device.AlgoSeconds(kernelCost(w, k, dt))
		if i == 0 || sec < bestSec {
			best, bestSec = k, sec
		}
	}
	return best, bestSec * 1e3
}

// kernelCost adapts ops.KernelProfile to AlgoSeconds' argument list for a
// given storage dtype.
func kernelCost(w ops.ConvWorkload, k ops.ConvKernel, dt tensor.DType) (flops, elems, elemBytes, eff float64) {
	flops, elems, eff = ops.KernelProfile(w, k)
	return flops, elems, float64(dt.Size()), eff
}

// SelectConvKernels assigns a concrete algorithm to every convolution in
// the graph — the per-workload analogue of the paper's per-workload
// schedule selection — and returns how many convs each kernel got. Choices
// made by the cost model are recorded in sel.DB (KindKernel records) so
// subsequent compiles, and external tools editing the database, can pin
// them.
func SelectConvKernels(g *Graph, sel KernelSelection) map[ops.ConvKernel]int {
	counts := map[ops.ConvKernel]int{}
	for _, n := range g.Nodes {
		convOp, ok := opAs[*ConvOp](n)
		if !ok {
			continue
		}
		k, ms := sel.pick(convOp.W, convOp.DType)
		convOp.Kernel = k
		counts[k]++
		if sel.DB != nil && sel.Device != nil {
			// Record cost-model decisions, but never clobber an existing
			// kernel record — it may be a pinned choice this pass merely
			// gated out (e.g. a winograd record with AllowWinograd off).
			dtype := dbDType(convOp.DType)
			if _, exists := sel.DB.LookupKernelChoiceDType(sel.Device.Name, convOp.W.Key(), dtype); !exists {
				sel.DB.StoreKernelChoiceDType(sel.Device.Name, convOp.W.Key(), dtype, k.String(), ms)
			}
		}
	}
	return counts
}

// ForceConvKernel sets every conv in the graph to kernel k (falling back
// to direct where k is unsupported) and returns the number of convs
// touched. Benchmarks and ablations use it to compare algorithms on the
// same model.
func ForceConvKernel(g *Graph, k ops.ConvKernel) int {
	n := 0
	for _, node := range g.Nodes {
		convOp, ok := opAs[*ConvOp](node)
		if !ok {
			continue
		}
		if ops.KernelSupported(k, convOp.W) {
			convOp.Kernel = k
		} else {
			convOp.Kernel = ops.KernelDirect
		}
		n++
	}
	return n
}
