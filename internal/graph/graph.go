// Package graph implements the computational-graph layer of Figure 1: the
// model representation consumed from the frontend, the graph-level
// optimization passes (§3.2.3 — operator fusion, batch-norm folding,
// constant pre-computation, layout assignment hooks), and the two-pass
// heterogeneous device-placement algorithm with data-copy insertion that
// realises the CPU fallback of §3.1.2.
package graph

import (
	"fmt"

	"unigpu/internal/tensor"
)

// DeviceClass is where a node is placed by the fallback pass.
type DeviceClass int

const (
	OnGPU DeviceClass = iota
	OnCPU
)

func (d DeviceClass) String() string {
	if d == OnGPU {
		return "gpu"
	}
	return "cpu"
}

// Operator is one graph-node computation.
type Operator interface {
	// Kind names the operator ("conv2d", "box_nms", ...).
	Kind() string
	// InferShape computes the output shape from input shapes.
	InferShape(ins []tensor.Shape) tensor.Shape
	// Execute computes the output functionally.
	Execute(ins []*tensor.Tensor) *tensor.Tensor
	// GPUFriendly reports whether the operator appears in the list of
	// known GPU-performant operators used by the placement pass (§3.1.2).
	GPUFriendly() bool
}

// IntoOperator is implemented by operators that can compute into a
// caller-provided output tensor of the inferred shape without allocating.
// The pooled runtime (runtime.Plan) executes these against arena-backed
// buffers; operators lacking the method fall back to Execute plus a copy.
type IntoOperator interface {
	Operator
	// ExecuteInto computes the output into out, overwriting every element.
	ExecuteInto(out *tensor.Tensor, ins []*tensor.Tensor)
}

// Node is one vertex of the computational graph.
type Node struct {
	ID     int
	Name   string
	Op     Operator
	Inputs []*Node

	OutShape tensor.Shape
	Device   DeviceClass

	// Value holds the constant for Constant nodes, and the pre-computed
	// result after the precompute pass.
	Value *tensor.Tensor

	// DType is the storage type of the node's output buffer, assigned by
	// the quantization pass (QuantizeGraph). The zero value Float32 keeps
	// every pre-existing graph full precision. QScale is the per-tensor
	// dequantization scale of an Int8-typed node (from calibration).
	DType  tensor.DType
	QScale float32
}

// IsConstant reports whether the node carries a compile-time value.
func (n *Node) IsConstant() bool { return n.Op == nil && n.Value != nil }

// IsInput reports whether the node is a graph input placeholder.
func (n *Node) IsInput() bool { return n.Op == nil && n.Value == nil }

// StorageDType is the dtype this node's value presents to consumers:
// constants report their tensor's storage, inputs are fed float32, and op
// nodes carry their assigned dtype tag.
func (n *Node) StorageDType() tensor.DType {
	if n.IsConstant() {
		return n.Value.DType()
	}
	return n.DType
}

// Graph is a DAG of operator nodes in topological order.
type Graph struct {
	Nodes   []*Node
	Outputs []*Node
	nextID  int
}

// New creates an empty graph.
func New() *Graph { return &Graph{} }

// Input adds a named graph input of the given shape.
func (g *Graph) Input(name string, shape ...int) *Node {
	n := &Node{ID: g.nextID, Name: name, OutShape: tensor.Shape(shape).Clone()}
	g.nextID++
	g.Nodes = append(g.Nodes, n)
	return n
}

// Constant adds a weight/parameter node.
func (g *Graph) Constant(name string, value *tensor.Tensor) *Node {
	n := &Node{ID: g.nextID, Name: name, Value: value, OutShape: value.Shape().Clone()}
	g.nextID++
	g.Nodes = append(g.Nodes, n)
	return n
}

// Apply adds an operator node consuming the given inputs.
func (g *Graph) Apply(name string, op Operator, inputs ...*Node) *Node {
	shapes := make([]tensor.Shape, len(inputs))
	for i, in := range inputs {
		shapes[i] = in.OutShape
	}
	n := &Node{ID: g.nextID, Name: name, Op: op, Inputs: inputs, OutShape: op.InferShape(shapes)}
	g.nextID++
	g.Nodes = append(g.Nodes, n)
	return n
}

// SetOutputs marks the graph outputs.
func (g *Graph) SetOutputs(outs ...*Node) { g.Outputs = outs }

// OpNodes returns the operator nodes (not inputs/constants) in topological
// order.
func (g *Graph) OpNodes() []*Node {
	var out []*Node
	for _, n := range g.Nodes {
		if n.Op != nil {
			out = append(out, n)
		}
	}
	return out
}

// Consumers maps each node to the nodes that read it.
func (g *Graph) Consumers() map[*Node][]*Node {
	m := make(map[*Node][]*Node)
	for _, n := range g.Nodes {
		for _, in := range n.Inputs {
			m[in] = append(m[in], n)
		}
	}
	return m
}

// Validate checks topological ordering and dangling references.
func (g *Graph) Validate() error {
	pos := make(map[*Node]int, len(g.Nodes))
	for i, n := range g.Nodes {
		pos[n] = i
	}
	for i, n := range g.Nodes {
		for _, in := range n.Inputs {
			p, ok := pos[in]
			if !ok {
				return fmt.Errorf("graph: node %q reads a node not in the graph", n.Name)
			}
			if p >= i {
				return fmt.Errorf("graph: node %q reads node %q that appears later", n.Name, in.Name)
			}
		}
	}
	for _, o := range g.Outputs {
		if _, ok := pos[o]; !ok {
			return fmt.Errorf("graph: output %q not in the graph", o.Name)
		}
	}
	return nil
}

// EliminateDead removes nodes not reachable from the outputs.
func (g *Graph) EliminateDead() int {
	live := map[*Node]bool{}
	var mark func(n *Node)
	mark = func(n *Node) {
		if live[n] {
			return
		}
		live[n] = true
		for _, in := range n.Inputs {
			mark(in)
		}
	}
	for _, o := range g.Outputs {
		mark(o)
	}
	kept := g.Nodes[:0]
	removed := 0
	for _, n := range g.Nodes {
		if live[n] || n.IsInput() {
			kept = append(kept, n)
		} else {
			removed++
		}
	}
	g.Nodes = kept
	return removed
}

// replaceUses rewires every consumer (and output) of old to read repl.
func (g *Graph) replaceUses(old, repl *Node) {
	for _, n := range g.Nodes {
		for i, in := range n.Inputs {
			if in == old {
				n.Inputs[i] = repl
			}
		}
	}
	for i, o := range g.Outputs {
		if o == old {
			g.Outputs[i] = repl
		}
	}
}

// Stats summarises the graph for reports.
type Stats struct {
	Ops       int
	Convs     int
	OnCPU     int
	Copies    int
	Constants int
}

// Summary counts node categories.
func (g *Graph) Summary() Stats {
	var s Stats
	for _, n := range g.Nodes {
		switch {
		case n.IsConstant():
			s.Constants++
		case n.Op != nil:
			s.Ops++
			if n.Op.Kind() == "conv2d" {
				s.Convs++
			}
			if n.Op.Kind() == "device_copy" {
				s.Copies++
			}
			if n.Device == OnCPU {
				s.OnCPU++
			}
		}
	}
	return s
}
